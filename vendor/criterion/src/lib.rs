//! Offline stand-in for the subset of the
//! [`criterion`](https://docs.rs/criterion) API this workspace uses:
//! `criterion_group!`/`criterion_main!`, benchmark groups,
//! `bench_function`/`bench_with_input`, `BenchmarkId`, and `black_box`.
//!
//! The build environment cannot reach crates.io, so the workspace vendors
//! this shim. Measurement is deliberately simple: per benchmark it runs a
//! short warm-up, then `sample_size` timed samples, and prints the median
//! and min per-iteration time. No statistics engine, no HTML reports —
//! but the bench binaries build and produce comparable numbers.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting a
/// computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark identifier: a function label plus a parameter label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{function_name}/{parameter}") }
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// The benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        let sample_size = self.sample_size;
        eprintln!("group {name}");
        BenchmarkGroup { _criterion: self, name, sample_size }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into().id, self.sample_size, &mut f);
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Benchmarks `f`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into().id);
        run_one(&id, self.sample_size, &mut f);
    }

    /// Benchmarks `f` against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = format!("{}/{}", self.name, id.id);
        run_one(&id, self.sample_size, &mut |b: &mut Bencher| f(b, input));
    }

    /// Ends the group (printing is incremental, so this is a no-op).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; call [`Bencher::iter`] with the code
/// under test.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `f`, collecting one sample per configured iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: two untimed runs.
        for _ in 0..2 {
            black_box(f());
        }
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed());
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, f: &mut F) {
    let mut b = Bencher { sample_size, samples: Vec::new() };
    f(&mut b);
    if b.samples.is_empty() {
        eprintln!("  {id}: no samples (Bencher::iter never called)");
        return;
    }
    b.samples.sort();
    let median = b.samples[b.samples.len() / 2];
    let min = b.samples[0];
    eprintln!("  {id}: median {median:?}, min {min:?} ({sample_size} samples)");
}

/// Declares a group of benchmark target functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
