//! Test-runner plumbing: the deterministic RNG driving generation and
//! the per-test configuration.

/// Sentinel error string distinguishing a `prop_assume!` rejection from a
/// genuine assertion failure inside a generated test body.
pub const REJECT: &str = "\u{0}__proptest_shim_reject__";

/// Deterministic generator RNG (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates an RNG from an explicit seed.
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Creates an RNG seeded from a test's name, so every test gets a
    /// distinct but reproducible stream.
    pub fn for_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng::from_seed(h)
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }

    /// Uniform `usize` in `[lo, hi]`.
    pub fn usize_inclusive(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo <= hi);
        let span = (hi - lo) as u64 + 1;
        if span == 0 {
            return self.next_u64() as usize;
        }
        lo + self.below(span) as usize
    }

    /// Uniform boolean.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

/// Per-test configuration; only the case count is honored by this shim.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` generated inputs.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}
