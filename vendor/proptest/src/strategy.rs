//! The [`Strategy`] trait and its combinators.

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no shrinking: `generate` produces one
/// value from the RNG and that is the whole story.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, builds a dependent strategy from it, and
    /// samples that.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Erases the strategy's concrete type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Always produces a clone of one value (proptest's `Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Weighted union of strategies, built by [`prop_oneof!`](crate::prop_oneof).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    /// Builds a union; every weight must be nonzero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof! weights sum to zero");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (w, s) in &self.arms {
            if pick < u64::from(*w) {
                return s.generate(rng);
            }
            pick -= u64::from(*w);
        }
        unreachable!("weighted pick out of range")
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_int_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_and_maps() {
        let mut rng = TestRng::from_seed(1);
        let s = (0i64..10).prop_map(|v| v * 2);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v % 2 == 0 && (0..20).contains(&v));
        }
    }

    #[test]
    fn flat_map_dependency() {
        let mut rng = TestRng::from_seed(2);
        let s = (1usize..5).prop_flat_map(|n| (Just(n), 0usize..n));
        for _ in 0..100 {
            let (n, k) = s.generate(&mut rng);
            assert!(k < n);
        }
    }

    #[test]
    fn union_respects_weights() {
        let mut rng = TestRng::from_seed(3);
        let s = Union::new(vec![(1, Just(0u8).boxed()), (3, Just(1u8).boxed())]);
        let ones: usize = (0..1000).map(|_| s.generate(&mut rng) as usize).sum();
        assert!(ones > 600, "weighted arm should dominate, got {ones}");
    }
}
