//! The [`Arbitrary`] trait and [`any`], for `any::<T>()` call sites.

use std::ops::RangeInclusive;

use crate::strategy::Strategy;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// The strategy type returned by [`any`].
    type Strategy: Strategy<Value = Self>;
    /// The canonical strategy generating arbitrary values of `Self`.
    fn arbitrary() -> Self::Strategy;
}

/// Returns the canonical strategy for `T` (proptest's `any::<T>()`).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

impl Arbitrary for bool {
    type Strategy = crate::bool::Any;
    fn arbitrary() -> Self::Strategy {
        crate::bool::ANY
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            type Strategy = RangeInclusive<$t>;
            fn arbitrary() -> Self::Strategy {
                <$t>::MIN..=<$t>::MAX
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);
