//! Boolean strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy type generating uniform booleans.
#[derive(Debug, Clone, Copy, Default)]
pub struct Any;

/// Uniform boolean strategy (`proptest::bool::ANY`).
pub const ANY: Any = Any;

impl Strategy for Any {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.bool()
    }
}
