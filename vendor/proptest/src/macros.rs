//! The `proptest!`, `prop_oneof!`, `prop_assert*`, and `prop_assume!`
//! macros.

/// Weighted or unweighted union of strategies producing one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strategy))),+
        ])
    };
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a test running `body` over generated inputs.
///
/// The optional leading `#![proptest_config(...)]` sets the case count.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_define! { config = { $config }; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_define! {
            config = { $crate::test_runner::ProptestConfig::default() };
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_define {
    (config = { $config:expr };
     $( $(#[$meta:meta])* fn $name:ident( $($pat:pat in $strategy:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $config;
                let mut __rng = $crate::test_runner::TestRng::for_name(stringify!($name));
                let __strategy = ( $($strategy,)+ );
                for __case in 0..__config.cases {
                    let ( $($pat,)+ ) =
                        $crate::strategy::Strategy::generate(&__strategy, &mut __rng);
                    let __outcome: ::std::result::Result<(), ::std::string::String> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match __outcome {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err(__msg)
                            if __msg == $crate::test_runner::REJECT => {}
                        ::std::result::Result::Err(__msg) => panic!(
                            "proptest `{}` failed at case #{}: {}",
                            stringify!($name), __case, __msg
                        ),
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(format!(
                "prop_assert!({}) failed at {}:{}",
                stringify!($cond), file!(), line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!(
                "prop_assert! failed at {}:{}: {}",
                file!(), line!(), format!($($fmt)+)
            ));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err(format!(
                "prop_assert_eq!({}, {}) failed at {}:{}",
                stringify!($left), stringify!($right), file!(), line!()
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err(format!(
                "prop_assert_eq!({}, {}) failed at {}:{}: {}",
                stringify!($left), stringify!($right), file!(), line!(),
                format!($($fmt)+)
            ));
        }
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if __l == __r {
            return ::std::result::Result::Err(format!(
                "prop_assert_ne!({}, {}) failed at {}:{}",
                stringify!($left), stringify!($right), file!(), line!()
            ));
        }
    }};
}

/// Rejects the current generated case (skips it without failing).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::REJECT.to_string(),
            );
        }
    };
}
