//! Collection strategies: `vec` and `btree_set`.

use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// An inclusive size range for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        rng.usize_inclusive(self.lo, self.hi)
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange { lo: r.start, hi: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange { lo: *r.start(), hi: *r.end() }
    }
}

/// Generates `Vec`s whose length falls in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// See [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Generates `BTreeSet`s with *up to* the sampled number of elements
/// (fewer when the element space is too small to yield distinct values).
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy { element, size: size.into() }
}

/// See [`btree_set`].
#[derive(Debug, Clone)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let target = self.size.sample(rng);
        let mut out = BTreeSet::new();
        // Bounded attempts: duplicates (a small value space) must not
        // spin forever.
        let mut attempts = target.saturating_mul(8) + 16;
        while out.len() < target && attempts > 0 {
            out.insert(self.element.generate(rng));
            attempts -= 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_lengths_in_range() {
        let mut rng = TestRng::from_seed(4);
        let s = vec(0i64..5, 2..6);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
        }
    }

    #[test]
    fn btree_set_distinct_and_bounded() {
        let mut rng = TestRng::from_seed(5);
        // Only 4 possible values; requesting up to 40 must terminate.
        let s = btree_set(0i64..4, 0..40);
        for _ in 0..50 {
            let set = s.generate(&mut rng);
            assert!(set.len() <= 4);
        }
    }
}
