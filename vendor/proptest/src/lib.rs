//! Offline stand-in for the subset of the
//! [`proptest`](https://docs.rs/proptest) API this workspace uses.
//!
//! The build environment cannot reach crates.io, so the workspace vendors
//! this shim. It keeps proptest's *interface* — [`Strategy`] with
//! `prop_map`/`prop_flat_map`, [`collection`], [`prop_oneof!`],
//! [`proptest!`], `prop_assert*` — but implements plain seeded random
//! generation without shrinking: a failing case reports the case number
//! and the asserted expressions instead of a minimized input. Generation
//! is deterministic per test name, so failures reproduce exactly.

#![warn(missing_docs)]

pub mod arbitrary;
pub mod bool;
pub mod collection;
pub mod strategy;
pub mod test_runner;

mod macros;

/// The commonly-used subset, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}
