//! Offline stand-in for the subset of the [`rand`](https://docs.rs/rand)
//! 0.8 API this workspace uses: `rngs::{StdRng, SmallRng}`,
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] extension methods
//! `gen_range` / `gen_bool`.
//!
//! The build environment cannot reach crates.io, so the workspace vendors
//! this shim instead. The generator is SplitMix64 — deterministic for a
//! given seed, which is all the matrix generators and tests rely on (they
//! assert reproducibility, not any particular stream).

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Core randomness source: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// Creates an RNG deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Samples a value uniformly from `self`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn next_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 uniform mantissa bits in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

fn sample_u64_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Modulo sampling; the negligible bias is irrelevant for test data.
    rng.next_u64() % span
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + sample_u64_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    // Full-width range: every u64 pattern is valid.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + sample_u64_below(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + (self.end - self.start) * next_f64(rng)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        lo + (hi - lo) * next_f64(rng)
    }
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        next_f64(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: SplitMix64 (deterministic, fast;
    /// not cryptographic — neither is the real `StdRng` contractually).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    /// Small-footprint RNG; identical to [`StdRng`] in this shim.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&v));
            let f = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let u = rng.gen_range(3usize..9);
            assert!((3..9).contains(&u));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
