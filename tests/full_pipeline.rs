//! Workspace-level integration tests: the full descriptor → synthesis →
//! optimization → execution pipeline on realistic matrices from the
//! synthetic evaluation suite, checked against the reference conversions.

use sparse_synth::baselines::{self, Library};
use sparse_synth::formats::{descriptors, CooMatrix, CscMatrix, CsrMatrix, DiaMatrix};
use sparse_synth::matgen::suite::{table3_suite, table4_suite};
use sparse_synth::synthesis::{Conversion, SynthesisOptions};

const SCALE: usize = 1024;

fn suite_matrices() -> Vec<(String, CooMatrix)> {
    table3_suite()
        .into_iter()
        .map(|s| (s.name.to_string(), s.generate(SCALE)))
        .collect()
}

#[test]
fn coo_to_csr_whole_suite() {
    let conv = Conversion::new(
        &descriptors::scoo(),
        &descriptors::csr(),
        SynthesisOptions::default(),
    )
    .unwrap();
    for (name, coo) in suite_matrices() {
        let (got, _) = conv.run_coo_to_csr(&coo).unwrap();
        assert_eq!(got, CsrMatrix::from_coo(&coo), "{name}");
    }
}

#[test]
fn coo_to_csc_whole_suite() {
    let conv = Conversion::new(
        &descriptors::scoo(),
        &descriptors::csc(),
        SynthesisOptions::default(),
    )
    .unwrap();
    for (name, coo) in suite_matrices() {
        let (got, _) = conv.run_coo_to_csc(&coo).unwrap();
        assert_eq!(got, CscMatrix::from_coo(&coo), "{name}");
    }
}

#[test]
fn csr_to_csc_whole_suite() {
    let conv = Conversion::new(
        &descriptors::csr(),
        &descriptors::csc(),
        SynthesisOptions::default(),
    )
    .unwrap();
    for (name, coo) in suite_matrices() {
        let csr = CsrMatrix::from_coo(&coo);
        let (got, _) = conv.run_csr_to_csc(&csr).unwrap();
        assert_eq!(got, CscMatrix::from_csr(&csr), "{name}");
    }
}

#[test]
fn coo_to_dia_banded_suite_linear_and_binary() {
    for binary_search in [false, true] {
        let conv = Conversion::new(
            &descriptors::scoo(),
            &descriptors::dia(),
            SynthesisOptions { optimize: true, binary_search },
        )
        .unwrap();
        for spec in table3_suite() {
            if !spec.dia_friendly() {
                continue;
            }
            let coo = spec.generate(SCALE);
            let (got, _) = conv.run_coo_to_dia(&coo).unwrap();
            assert_eq!(got, DiaMatrix::from_coo(&coo), "{} bs={binary_search}", spec.name);
        }
    }
}

#[test]
fn coo3_to_mcoo3_tensor_suite() {
    let conv = Conversion::new(
        &descriptors::scoo3(),
        &descriptors::mcoo3(),
        SynthesisOptions::default(),
    )
    .unwrap();
    for spec in table4_suite() {
        let t = spec.generate(SCALE * 32);
        let (got, _) = conv.run_coo3_to_mcoo3(&t).unwrap();
        got.validate().unwrap();
        // Agreement with the hand-written HiCOO comparator: identical
        // coordinate sequences.
        let want = baselines::hicoo_morton_sort3(&t, 7);
        assert_eq!(got.coo.i0, want.coo.i0, "{}", spec.name);
        assert_eq!(got.coo.i1, want.coo.i1, "{}", spec.name);
        assert_eq!(got.coo.i2, want.coo.i2, "{}", spec.name);
    }
}

#[test]
fn baselines_agree_with_synthesized_on_suite_sample() {
    // Synthesized code, baseline models, and reference conversions all
    // produce the same CSR on a sample of the suite.
    let conv = Conversion::new(
        &descriptors::scoo(),
        &descriptors::csr(),
        SynthesisOptions::default(),
    )
    .unwrap();
    for (name, coo) in suite_matrices().into_iter().take(6) {
        let (ours, _) = conv.run_coo_to_csr(&coo).unwrap();
        for lib in Library::ALL {
            let routine = baselines::coo_to_csr(lib);
            let (theirs, _) = baselines::run_coo_to_csr(&routine, &coo).unwrap();
            assert_eq!(ours, theirs, "{name} vs {}", lib.name());
        }
    }
}

#[test]
fn spmv_is_preserved_across_all_conversions() {
    // The semantic acid test: y = A x is identical no matter which format
    // the synthesized code produced.
    let spec = &table3_suite()[7]; // shyy161, banded
    let coo = spec.generate(SCALE);
    let x: Vec<f64> = (0..coo.nc).map(|k| ((k % 13) as f64) - 6.0).collect();
    let want = coo.spmv(&x);

    let close = |a: &[f64], b: &[f64]| {
        a.iter().zip(b).all(|(p, q)| (p - q).abs() < 1e-9)
    };

    let csr = Conversion::new(
        &descriptors::scoo(),
        &descriptors::csr(),
        SynthesisOptions::default(),
    )
    .unwrap()
    .run_coo_to_csr(&coo)
    .unwrap()
    .0;
    assert!(close(&csr.spmv(&x), &want));

    let csc = Conversion::new(
        &descriptors::scoo(),
        &descriptors::csc(),
        SynthesisOptions::default(),
    )
    .unwrap()
    .run_coo_to_csc(&coo)
    .unwrap()
    .0;
    assert!(close(&csc.spmv(&x), &want));

    let dia = Conversion::new(
        &descriptors::scoo(),
        &descriptors::dia(),
        SynthesisOptions { optimize: true, binary_search: true },
    )
    .unwrap()
    .run_coo_to_dia(&coo)
    .unwrap()
    .0;
    assert!(close(&dia.spmv(&x), &want));
}

#[test]
fn chained_conversions_round_trip() {
    // COO -> CSR -> CSC -> (to_coo) equals the column-sorted original:
    // chains of synthesized conversions compose.
    let coo = table3_suite()[5].generate(SCALE); // dixmaanl
    let to_csr = Conversion::new(
        &descriptors::scoo(),
        &descriptors::csr(),
        SynthesisOptions::default(),
    )
    .unwrap();
    let to_csc = Conversion::new(
        &descriptors::csr(),
        &descriptors::csc(),
        SynthesisOptions::default(),
    )
    .unwrap();
    let (csr, _) = to_csr.run_coo_to_csr(&coo).unwrap();
    let (csc, _) = to_csc.run_csr_to_csc(&csr).unwrap();
    assert_eq!(csc.to_dense(), coo.to_dense());
}

#[test]
fn emitted_c_is_stable_for_the_papers_running_example() {
    // Golden test: the COO -> MCOO inspector shape from §3.2 of the
    // paper (OrderedList declaration, insertion loop, rank-based copy).
    let conv = Conversion::new(
        &descriptors::scoo(),
        &descriptors::mcoo(),
        SynthesisOptions::default(),
    )
    .unwrap();
    let c = conv.emit_c();
    let expected_lines = [
        "// P = new OrderedList(2, MORTON, unique=false)",
        "P.insert(i, j);",
        "P.finalize();",
        "int p = P.rank(i, j);",
        "rowm[p] = i;",
        "colm[p] = j;",
        "Amcoo[p] = Acoo[n];",
    ];
    for line in expected_lines {
        assert!(c.contains(line), "missing `{line}` in:\n{c}");
    }
}

#[test]
fn synthesized_reorder_feeds_hicoo_construction() {
    // The Table-4 story end-to-end: the synthesized COO3D -> MCOO3
    // conversion is exactly the sorting step HiCOO construction needs;
    // building HiCOO from the synthesized output equals building it from
    // scratch.
    use sparse_synth::formats::HicooTensor;
    use sparse_synth::synthesis::SynthesisOptions;
    let t = table4_suite()[0].generate(SCALE * 64);
    let conv = Conversion::new(
        &descriptors::scoo3(),
        &descriptors::mcoo3(),
        SynthesisOptions::default(),
    )
    .unwrap();
    let (mcoo3, _) = conv.run_coo3_to_mcoo3(&t).unwrap();
    let via_synthesis = HicooTensor::from_mcoo3(&mcoo3, 4);
    let from_scratch = HicooTensor::from_coo3(&t, 4);
    assert_eq!(via_synthesis, from_scratch);
    via_synthesis.validate().unwrap();
    // And the blocked tensor computes the same TTV as the source.
    let x: Vec<f64> = (0..t.nz).map(|k| (k % 3) as f64).collect();
    assert_eq!(via_synthesis.ttv_mode2(&x), t.ttv_mode2(&x));
}

#[test]
fn descriptor_quantifiers_round_trip_through_the_parser() {
    // Every quantifier a descriptor prints parses back to its semantic
    // form (spec fidelity: the Table-1 notation is not just display).
    use sparse_synth::ir::{parse_quantifier, ParsedQuantifier};
    for d in [
        descriptors::scoo(),
        descriptors::csr(),
        descriptors::csc(),
        descriptors::dia(),
        descriptors::mcoo(),
        descriptors::mcoo3(),
    ] {
        for text in d.quantifier_texts() {
            let parsed = parse_quantifier(&text)
                .unwrap_or_else(|e| panic!("{}: `{text}`: {e}", d.name));
            match parsed {
                ParsedQuantifier::Monotonic { uf, monotonicity } => {
                    let sig = d.ufs.get(&uf).expect("quantified UF is declared");
                    assert_eq!(sig.monotonicity, Some(monotonicity), "{}", d.name);
                }
                ParsedQuantifier::Reordering { comparator, coord_ufs } => {
                    assert!(d.order.is_some(), "{}", d.name);
                    assert!(comparator.is_some(), "{}", d.name);
                    assert_eq!(coord_ufs.len(), d.rank, "{}", d.name);
                }
            }
        }
    }
}
