//! Property-based tests: for *arbitrary* sparse matrices, every
//! synthesized conversion agrees with the reference implementation —
//! the repository's central correctness invariant.

use proptest::prelude::*;
use sparse_synth::formats::{
    descriptors, CooMatrix, CscMatrix, CsrMatrix, DiaMatrix, MortonCooMatrix,
};
use sparse_synth::synthesis::{Conversion, SynthesisOptions};

/// Arbitrary sparse matrix: dimensions up to 24x24, unique coordinates,
/// arbitrary (finite, nonzero) values.
fn arb_coo(sorted: bool) -> impl Strategy<Value = CooMatrix> {
    (2usize..24, 2usize..24)
        .prop_flat_map(move |(nr, nc)| {
            let coords = proptest::collection::btree_set((0..nr, 0..nc), 0..64);
            (Just(nr), Just(nc), coords, any::<u64>())
        })
        .prop_map(move |(nr, nc, coords, seed)| {
            let mut coords: Vec<(usize, usize)> = coords.into_iter().collect();
            if !sorted {
                // Deterministic shuffle from the seed.
                let mut s = seed | 1;
                for i in (1..coords.len()).rev() {
                    s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    let j = (s >> 33) as usize % (i + 1);
                    coords.swap(i, j);
                }
            }
            let row: Vec<i64> = coords.iter().map(|&(i, _)| i as i64).collect();
            let col: Vec<i64> = coords.iter().map(|&(_, j)| j as i64).collect();
            let val: Vec<f64> = (0..coords.len()).map(|k| (k as f64) * 0.5 + 1.0).collect();
            CooMatrix::from_triplets(nr, nc, row, col, val).expect("valid by construction")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Sorted COO -> CSR with the identity-eliminated fast path.
    #[test]
    fn prop_scoo_to_csr(coo in arb_coo(true)) {
        let conv = Conversion::new(
            &descriptors::scoo(), &descriptors::csr(), SynthesisOptions::default(),
        ).unwrap();
        let (got, _) = conv.run_coo_to_csr(&coo).unwrap();
        prop_assert_eq!(got, CsrMatrix::from_coo(&coo));
    }

    /// Unsorted COO -> CSR through the full permutation machinery.
    #[test]
    fn prop_coo_to_csr_with_permutation(coo in arb_coo(false)) {
        let conv = Conversion::new(
            &descriptors::coo(), &descriptors::csr(), SynthesisOptions::default(),
        ).unwrap();
        let (got, _) = conv.run_coo_to_csr(&coo).unwrap();
        prop_assert_eq!(got, CsrMatrix::from_coo(&coo));
    }

    /// Sorted COO -> CSC (permutation required even for sorted input).
    #[test]
    fn prop_scoo_to_csc(coo in arb_coo(true)) {
        let conv = Conversion::new(
            &descriptors::scoo(), &descriptors::csc(), SynthesisOptions::default(),
        ).unwrap();
        let (got, _) = conv.run_coo_to_csc(&coo).unwrap();
        prop_assert_eq!(got, CscMatrix::from_coo(&coo));
    }

    /// CSR -> CSC transposition.
    #[test]
    fn prop_csr_to_csc(coo in arb_coo(true)) {
        let csr = CsrMatrix::from_coo(&coo);
        let conv = Conversion::new(
            &descriptors::csr(), &descriptors::csc(), SynthesisOptions::default(),
        ).unwrap();
        let (got, _) = conv.run_csr_to_csc(&csr).unwrap();
        prop_assert_eq!(got, CscMatrix::from_csr(&csr));
    }

    /// COO -> DIA, both search strategies.
    #[test]
    fn prop_scoo_to_dia(coo in arb_coo(true), binary in any::<bool>()) {
        let conv = Conversion::new(
            &descriptors::scoo(),
            &descriptors::dia(),
            SynthesisOptions { optimize: true, binary_search: binary },
        ).unwrap();
        let (got, _) = conv.run_coo_to_dia(&coo).unwrap();
        prop_assert_eq!(got, DiaMatrix::from_coo(&coo));
    }

    /// COO -> Morton COO: the ordering quantifier holds and values are
    /// preserved.
    #[test]
    fn prop_scoo_to_mcoo(coo in arb_coo(true)) {
        let conv = Conversion::new(
            &descriptors::scoo(), &descriptors::mcoo(), SynthesisOptions::default(),
        ).unwrap();
        let (got, _) = conv.run_coo_to_mcoo(&coo).unwrap();
        prop_assert_eq!(got, MortonCooMatrix::from_coo(&coo));
    }

    /// Naive (unoptimized) and optimized computations agree — the §3.3
    /// transformations are semantics-preserving.
    #[test]
    fn prop_optimization_preserves_semantics(coo in arb_coo(true)) {
        let naive = Conversion::new(
            &descriptors::scoo(), &descriptors::csr(),
            SynthesisOptions { optimize: false, binary_search: false },
        ).unwrap();
        let opt = Conversion::new(
            &descriptors::scoo(), &descriptors::csr(), SynthesisOptions::default(),
        ).unwrap();
        let (a, _) = naive.run_coo_to_csr(&coo).unwrap();
        let (b, _) = opt.run_coo_to_csr(&coo).unwrap();
        prop_assert_eq!(a, b);
    }

    /// Dense-matrix semantics survive arbitrary conversion chains.
    #[test]
    fn prop_dense_preserved_through_chain(coo in arb_coo(true)) {
        let to_csr = Conversion::new(
            &descriptors::scoo(), &descriptors::csr(), SynthesisOptions::default(),
        ).unwrap();
        let to_csc = Conversion::new(
            &descriptors::csr(), &descriptors::csc(), SynthesisOptions::default(),
        ).unwrap();
        let (csr, _) = to_csr.run_coo_to_csr(&coo).unwrap();
        let (csc, _) = to_csc.run_csr_to_csc(&csr).unwrap();
        prop_assert_eq!(csc.to_dense(), coo.to_dense());
    }
}
