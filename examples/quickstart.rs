//! Quickstart: describe two formats, synthesize the conversion, inspect
//! the generated code, and run it.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use sparse_synth::formats::{descriptors, CooMatrix, CsrMatrix};
use sparse_synth::synthesis::{Conversion, SynthesisOptions};

fn main() {
    // 1. Format descriptors (Table 1 of the paper): sorted COO and CSR.
    let src = descriptors::scoo();
    let dst = descriptors::csr();
    println!("=== Source descriptor ===\n{}", src.table1_row());
    println!("=== Destination descriptor ===\n{}", dst.table1_row());

    // 2. Synthesize the inspector. The synthesis algorithm composes the
    //    inverted destination map with the source map, classifies every
    //    constraint on the unknown UFs (Cases 1-5), and emits an SPF loop
    //    chain, which the optimizer then prunes and fuses.
    let conv = Conversion::new(&src, &dst, SynthesisOptions::default())
        .expect("COO -> CSR synthesizes");

    println!("=== Solve plan ===");
    println!("{:?}", conv.synth.plan);
    println!(
        "permutation: {:?} (identity eliminated: {})",
        conv.synth.permutation, conv.synth.identity_eliminated
    );

    // 3. The composed relation R_{A_COO -> A_CSR} (the paper's step 2).
    println!("\n=== Composed relation ===\n{}", conv.synth.composed);

    // 4. Table-2 style constraint grouping per unknown UF.
    println!("\n=== Constraints per unknown UF (Table 2) ===");
    for (uf, cs) in &conv.synth.analysis.constraint_table {
        println!("{uf}:");
        for c in cs {
            println!("    {c}");
        }
    }

    // 5. The synthesized inspector as C code. Because the source order
    //    (row-major) implies the destination order, no OrderedList
    //    appears: this is the paper's COO->CSR fast path.
    println!("\n=== Synthesized C ===\n{}", conv.emit_c());

    // 6. Execute on a small matrix and validate.
    let coo = CooMatrix::from_triplets(
        4,
        5,
        vec![0, 0, 1, 3, 3],
        vec![1, 4, 2, 0, 3],
        vec![10.0, 20.0, 30.0, 40.0, 50.0],
    )
    .expect("valid COO");
    let (csr, stats) = conv.run_coo_to_csr(&coo).expect("conversion runs");
    println!("=== Result ===");
    println!("rowptr = {:?}", csr.rowptr);
    println!("col    = {:?}", csr.col);
    println!("val    = {:?}", csr.val);
    println!("(executed {} statements)", stats.statements);

    assert_eq!(csr, CsrMatrix::from_coo(&coo));
    csr.validate().expect("CSR invariants hold");
    println!("\nMatches the reference conversion. ✓");
}
