//! The conversion engine as a serving layer: one `Engine` handling many
//! conversion requests, synthesizing each `(source, destination)` plan
//! once, and fanning batches across worker threads.
//!
//! ```text
//! cargo run --release --example engine_batch
//! ```

use sparse_synth::engine::{Engine, EngineConfig};
use sparse_synth::formats::{descriptors, AnyMatrix, CooMatrix};

/// A deterministic sorted COO matrix; `salt` varies the values so each
/// batch element is distinct.
fn make_matrix(n: usize, stride: usize, salt: u64) -> AnyMatrix {
    let mut row = Vec::new();
    let mut col = Vec::new();
    let mut val = Vec::new();
    for k in (0..n * n).step_by(stride) {
        row.push((k / n) as i64);
        col.push((k % n) as i64);
        val.push((k as u64 % 89 + salt) as f64);
    }
    AnyMatrix::Coo(CooMatrix::from_triplets(n, n, row, col, val).unwrap())
}

fn main() {
    // One engine serves every request; plans are cached by structural
    // fingerprint, so repeated pairs never re-synthesize.
    let engine = Engine::with_config(EngineConfig {
        capacity: 16,
        threads: 4,
        ..Default::default()
    });
    let scoo = descriptors::scoo();

    // A mixed stream of single conversions...
    for (dst, label) in [
        (descriptors::csr(), "CSR"),
        (descriptors::csc(), "CSC"),
        (descriptors::mcoo(), "Morton COO"),
        (descriptors::csr(), "CSR again (cached)"),
    ] {
        let out = engine.convert(&scoo, &dst, &make_matrix(64, 5, 1)).unwrap();
        println!("scoo -> {label:<20} produced `{}` ({} nnz)", out.label(), out.nnz());
    }

    // ...and a parallel batch sharing one cached plan. Each item gets its
    // own fault-isolated result, in input order.
    let batch: Vec<AnyMatrix> = (0..12).map(|i| make_matrix(48 + i, 3, i as u64)).collect();
    let results: Vec<AnyMatrix> = engine
        .convert_batch(&scoo, &descriptors::csr(), &batch)
        .unwrap()
        .into_iter()
        .map(|item| item.unwrap())
        .collect();
    println!(
        "batch of {} converted; first dims {:?}, last dims {:?}",
        results.len(),
        results[0].dims(),
        results[results.len() - 1].dims()
    );

    // The stats snapshot shows what the cache saved: 16 conversions ran,
    // but only 3 distinct plans were ever synthesized.
    let stats = engine.stats();
    println!(
        "plans synthesized: {} | cache hits: {} | conversions: {} | nnz moved: {}",
        stats.plans_synthesized, stats.cache_hits, stats.conversions, stats.nnz_moved
    );
    println!(
        "time in synthesis: {:.2?} | time executing inspectors: {:.2?}",
        stats.synth_time, stats.exec_time
    );
    assert_eq!(stats.plans_synthesized, 3);
}
