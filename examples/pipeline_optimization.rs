//! The §3.3 optimization pipeline, before and after: redundancy removal,
//! identity-permutation elimination + dead-code elimination, and loop
//! fusion — shown on the paper's COO→CSR fast path and contrasted with
//! COO→DIA, where the paper reports that the copy loop *cannot* fuse with
//! the loop building `off`.
//!
//! ```text
//! cargo run --example pipeline_optimization
//! ```

use sparse_synth::formats::descriptors;
use sparse_synth::synthesis::{synthesize, Conversion, SynthesisOptions};

fn main() {
    // ---- COO -> CSR --------------------------------------------------
    let src = descriptors::scoo();
    let dst = descriptors::csr();

    let naive_opts = SynthesisOptions { optimize: false, binary_search: false };
    let naive = synthesize(&src, &dst, naive_opts).expect("synthesizes");
    println!("=== COO -> CSR, naive loop chain ({} statements) ===", naive.naive.stmts.len());
    for s in &naive.naive.stmts {
        println!("  - {}", s.label);
    }
    println!("\nNaive C:\n{}", naive.naive.lower().unwrap().emit_c("naive_coo_csr"));

    let opt = synthesize(&src, &dst, SynthesisOptions::default()).expect("synthesizes");
    println!(
        "=== After optimization ({} statements) ===",
        opt.computation.stmts.len()
    );
    for s in &opt.computation.stmts {
        println!("  - {} [group {}]", s.label, s.fuse_group);
    }
    println!(
        "\nOptimized C:\n{}",
        opt.computation.lower().unwrap().emit_c("optimized_coo_csr")
    );
    println!(
        "The permutation chain was removed (identity_eliminated = {}), the\n\
         redundant rowptr max-update was dropped, and the col2 write, the\n\
         rowptr min-update, and the copy fused into one pass.",
        opt.identity_eliminated
    );

    // Quantify on a real matrix.
    let coo = {
        let mut m = sparse_synth::matgen::random_uniform(200, 200, 3_000, 7);
        m.sort_row_major();
        m
    };
    let run = |options: SynthesisOptions| {
        let conv = Conversion::new(&src, &dst, options).unwrap();
        let (out, stats) = conv.run_coo_to_csr(&coo).unwrap();
        (out, stats)
    };
    let (a, naive_stats) = run(naive_opts);
    let (b, opt_stats) = run(SynthesisOptions::default());
    assert_eq!(a, b);
    println!(
        "\nstatements executed: naive {} vs optimized {} ({:.2}x fewer)",
        naive_stats.statements,
        opt_stats.statements,
        naive_stats.statements as f64 / opt_stats.statements as f64
    );

    // ---- COO -> DIA: the fusion limitation ---------------------------
    let dia = synthesize(&src, &descriptors::dia(), SynthesisOptions::default())
        .expect("synthesizes");
    println!("\n=== COO -> DIA, optimized ({} statements) ===", dia.computation.stmts.len());
    for s in &dia.computation.stmts {
        println!("  - {} [group {}]", s.label, s.fuse_group);
    }
    println!(
        "\nThe copy loop reads `off`, which the preceding chain produces, so\n\
         producer-consumer fusion is illegal — exactly the limitation the\n\
         paper reports for COO_DIA (\"our optimizations cannot fuse the\n\
         loops generating offset and copy code\")."
    );
}
