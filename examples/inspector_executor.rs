//! Inspector/executor in tandem — the paper's framing: "By directly
//! synthesizing the sparse format code to SPF and expressing the original
//! computation in SPF, both can be optimized in tandem."
//!
//! This example keeps *everything* in the SPF-IR: a synthesized inspector
//! converts a sorted COO matrix to CSR, a generated executor runs
//! `y = A x` over the CSR iteration space, and both print as C and render
//! as one dataflow graph.
//!
//! ```text
//! cargo run --example inspector_executor
//! ```

use sparse_synth::formats::descriptors;
use sparse_synth::spf::{to_dot, ComparatorRegistry};
use sparse_synth::synthesis::{executor, run as synth_run, Conversion, SynthesisOptions};
use sparse_synth::codegen::runtime::RtEnv;

fn main() {
    let src = descriptors::scoo();
    let dst = descriptors::csr();

    // The inspector: synthesized COO -> CSR conversion.
    let conv = Conversion::new(&src, &dst, SynthesisOptions::default()).unwrap();
    println!("=== Inspector (synthesized) ===\n{}", conv.emit_c());

    // The executor: SpMV generated from the *destination* descriptor —
    // it iterates CSR's own sparse iteration space
    // {[i,k,j] : rowptr(i) <= k < rowptr(i+1) && j = col2(k)}.
    let spmv = executor::spmv(&dst).unwrap();
    let spmv_compiled = spmv.lower().unwrap();
    println!("=== Executor (generated SpMV) ===\n{}", spmv_compiled.emit_c("spmv_csr"));

    // Dataflow graph of the executor (render with `dot -Tpng`).
    println!("=== Executor dataflow (Graphviz) ===\n{}", to_dot(&spmv, "spmv_csr"));

    // Run the whole pipeline in one environment: inspector output feeds
    // the executor directly — no container round trip.
    let coo = {
        let mut m = sparse_synth::matgen::random_uniform(300, 300, 4_000, 5);
        m.sort_row_major();
        m
    };
    let x: Vec<f64> = (0..coo.nc).map(|k| ((k % 10) as f64) / 2.0).collect();

    let mut env = RtEnv::new();
    synth_run::bind_coo(&mut env, &conv.synth.src, &coo).unwrap();
    conv.execute_env(&mut env).expect("inspector runs");
    env.data.insert(executor::names::X.to_string(), x.clone().into());
    spmv_compiled
        .execute(&mut env, &ComparatorRegistry::new())
        .expect("executor runs");
    let y = env.data[executor::names::Y].clone();

    // Cross-check against the source matrix.
    let want = coo.spmv(&x);
    let max_err = y
        .iter()
        .zip(&want)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!(
        "pipeline: COO({} nnz) --inspector--> CSR --executor--> y ({} entries)",
        coo.nnz(),
        y.len()
    );
    println!("max |y - y_ref| = {max_err:.2e}");
    assert!(max_err < 1e-9);
    println!("Inspector and executor compose inside one SPF environment. ✓");
}
