//! Morton (Z-order) tensor reordering — the paper's running example and
//! the Table-4 experiment: convert a lexicographically sorted order-3
//! COO tensor into Morton-ordered MCOO3 for mode-agnostic locality (the
//! ordering HiCOO and ALTO build on).
//!
//! ```text
//! cargo run --release --example morton_reorder
//! ```

use std::time::Instant;

use sparse_synth::baselines::hicoo_morton_sort3;
use sparse_synth::formats::{descriptors, MortonCoo3Tensor};
use sparse_synth::matgen::skewed_tensor;
use sparse_synth::synthesis::{Conversion, SynthesisOptions};

fn main() {
    let src = descriptors::scoo3();
    let dst = descriptors::mcoo3();

    // The reordering universal quantifier that motivates the paper:
    println!("MCOO3 reordering quantifier:");
    for q in dst.quantifier_texts() {
        println!("  {q}");
    }

    let conv =
        Conversion::new(&src, &dst, SynthesisOptions::default()).expect("synthesizes");
    println!("\nSynthesized inspector:\n{}", conv.emit_c());

    // A skewed random tensor standing in for the FROSTT data (see
    // DESIGN.md, "Substitutions").
    let t = skewed_tensor((5_000, 5_000, 15_000), 25_000, 7);
    println!("tensor: 5000 x 5000 x 15000 (darpa-shaped), nnz = {}", t.nnz());

    // Synthesized conversion.
    let t0 = Instant::now();
    let (ours, _) = conv.run_coo3_to_mcoo3(&t).expect("conversion runs");
    let ours_time = t0.elapsed();

    // The hand-written HiCOO-style comparator.
    let t0 = Instant::now();
    let hicoo = hicoo_morton_sort3(&t, 7);
    let hicoo_time = t0.elapsed();

    ours.validate().expect("Morton order holds");
    hicoo.validate().expect("Morton order holds");

    // Both orderings agree coordinate-by-coordinate.
    assert_eq!(ours.coo.i0, hicoo.coo.i0);
    assert_eq!(ours.coo.i1, hicoo.coo.i1);
    assert_eq!(ours.coo.i2, hicoo.coo.i2);

    // And the reordered tensor computes the same TTV as the reference.
    let x: Vec<f64> = (0..15_000).map(|k| (k % 7) as f64).collect();
    let reference = MortonCoo3Tensor::from_coo3(&t);
    assert_eq!(ours.coo.ttv_mode2(&x), reference.coo.ttv_mode2(&x));

    println!(
        "\nsynthesized: {:.1} ms | hand-written HiCOO-style: {:.1} ms | ratio {:.2}x",
        ours_time.as_secs_f64() * 1e3,
        hicoo_time.as_secs_f64() * 1e3,
        ours_time.as_secs_f64() / hicoo_time.as_secs_f64()
    );
    println!(
        "(the paper reports a 1.64x geomean slowdown for the synthesized \
         whole-tensor sort vs HiCOO's blocked sort — Table 4; here the \
         synthesized side additionally pays the interpreter substrate tax, \
         so the measured ratio is larger — the *direction* is what the \
         experiment reproduces)"
    );
}
