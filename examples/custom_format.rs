//! Defining a *new* sparse format and synthesizing a conversion to it —
//! the extensibility claim of the paper: `n` descriptors give `n²`
//! conversions, and user-defined comparison functions let descriptors
//! express orderings no fixed format vocabulary covers.
//!
//! Here we invent **ACOO** ("anti-diagonal COO"): coordinate storage
//! whose nonzeros are sorted by anti-diagonal (`i + j`), then by row — a
//! layout a wavefront solver might want. No code in this repository
//! special-cases it; the descriptor alone drives synthesis.
//!
//! ```text
//! cargo run --example custom_format
//! ```

use std::sync::Arc;

use sparse_synth::formats::descriptors::ScanInfo;
use sparse_synth::formats::{descriptors, CooMatrix, FormatDescriptor};
use sparse_synth::ir::order::{Comparator, KeyDim, OrderKey};
use sparse_synth::ir::{parse_relation, parse_set, LinExpr, UfSignature, VarId};
use sparse_synth::synthesis::{run as synth_run, Conversion, SynthesisOptions};
use sparse_synth::codegen::runtime::RtEnv;

/// Builds the ACOO descriptor from scratch.
fn acoo() -> FormatDescriptor {
    let mut ufs = sparse_synth::ir::UfEnvironment::new();
    ufs.insert(
        UfSignature::parse(
            "rowa",
            "{ [x] : 0 <= x < NNZ }",
            "{ [i] : 0 <= i < NR }",
            None,
        )
        .unwrap(),
    );
    ufs.insert(
        UfSignature::parse(
            "cola",
            "{ [x] : 0 <= x < NNZ }",
            "{ [j] : 0 <= j < NC }",
            None,
        )
        .unwrap(),
    );
    let mut scan_set = parse_set(
        "{ [n, i, j] : i = rowa(n) && j = cola(n) && 0 <= n < NNZ }",
    )
    .unwrap();
    scan_set.simplify();
    FormatDescriptor {
        name: "ACOO".into(),
        rank: 2,
        sparse_to_dense: parse_relation(
            "{ [n, ii, jj] -> [i, j] : rowa(n) = i && cola(n) = j && ii = i && jj = j \
             && 0 <= i < NR && 0 <= j < NC && 0 <= n < NNZ }",
        )
        .unwrap(),
        data_access: parse_relation("{ [n, ii, jj] -> [d0] : d0 = n }").unwrap(),
        scan: Some(ScanInfo {
            set: scan_set,
            dense_pos: vec![1, 2],
            data_index: LinExpr::var(VarId(0)),
        }),
        ufs,
        // The reordering universal quantifier, with a user-defined
        // comparison function named WAVEFRONT. The paper: "functions that
        // appear only within universal quantifiers are user-defined and
        // full definitions must be provided" — we provide it at run time
        // through the comparator registry.
        order: Some(OrderKey {
            comparator: Comparator::UserFn("WAVEFRONT".into()),
            dims: vec![KeyDim::coord(2, 0), KeyDim::coord(2, 1)],
        }),
        data_name: "Aacoo".into(),
        data_size: vec![LinExpr::sym("NNZ")],
        dim_syms: vec!["NR".into(), "NC".into()],
        nnz_sym: "NNZ".into(),
        extra_syms: vec![],
        coord_ufs: vec![Some("rowa".into()), Some("cola".into())],
        contiguous_data: true,
    }
}

fn main() {
    let src = descriptors::scoo();
    let dst = acoo();
    println!("=== The new descriptor ===\n{}", dst.table1_row());

    let mut conv =
        Conversion::new(&src, &dst, SynthesisOptions::default()).expect("synthesizes");

    // Provide the WAVEFRONT comparator definition: anti-diagonal (i+j)
    // first, then row.
    conv.register_comparator(
        "WAVEFRONT",
        Arc::new(|a: &[i64], b: &[i64]| {
            let (ai, aj) = (a[0], a[1]);
            let (bi, bj) = (b[0], b[1]);
            (ai + aj, ai).cmp(&(bi + bj, bi))
        }),
    );

    println!("=== Synthesized inspector ===\n{}", conv.emit_c());

    // Run it.
    let coo = {
        let mut m = CooMatrix::from_triplets(
            4,
            4,
            vec![0, 0, 1, 2, 3, 3],
            vec![0, 3, 1, 0, 2, 3],
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
        )
        .unwrap();
        m.sort_row_major();
        m
    };
    let mut env = RtEnv::new();
    synth_run::bind_coo(&mut env, &conv.synth.src, &coo).unwrap();
    conv.execute_env(&mut env).expect("conversion runs");
    let out = synth_run::extract_coo(&mut env, &conv.synth.dst, coo.nr, coo.nc)
        .expect("valid output");

    println!("wavefront order (i, j, i+j):");
    let mut prev_key = (i64::MIN, i64::MIN);
    for (i, j, v) in out.iter() {
        println!("  ({i}, {j})  diag {}  = {v}", i + j);
        let key = (i + j, i);
        assert!(prev_key <= key, "wavefront order violated");
        prev_key = key;
    }
    assert_eq!(out.to_dense(), coo.to_dense());
    println!("\nWavefront ordering verified; values preserved. ✓");
}
