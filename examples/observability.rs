//! The engine's observability layer end to end: a live subscriber
//! watching stage spans, the always-on event ring catching exceptional
//! events, per-pair latency histograms, and the Prometheus-style
//! metrics page a scrape endpoint would serve.
//!
//! ```text
//! cargo run --release --example observability
//! ```

use std::sync::Arc;

use sparse_synth::engine::{CollectingSubscriber, Engine, EngineConfig};
use sparse_synth::formats::{descriptors, AnyMatrix, CooMatrix};

/// A deterministic sorted COO matrix.
fn make_matrix(n: usize, stride: usize) -> AnyMatrix {
    let mut row = Vec::new();
    let mut col = Vec::new();
    let mut val = Vec::new();
    for k in (0..n * n).step_by(stride) {
        row.push((k / n) as i64);
        col.push((k % n) as i64);
        val.push((k % 89) as f64 + 1.0);
    }
    AnyMatrix::Coo(CooMatrix::from_triplets(n, n, row, col, val).unwrap())
}

fn main() {
    // Attach a live subscriber. The default engine uses `NoopSubscriber`
    // (disabled, zero-overhead); `CollectingSubscriber` records every
    // span and event for inspection.
    let collector = Arc::new(CollectingSubscriber::new());
    let engine = Engine::with_subscriber(
        EngineConfig { verify_plans: true, ..Default::default() },
        collector.clone(),
    );
    let scoo = descriptors::scoo();

    // A healthy workload: two pairs, several conversions each.
    for dst in [descriptors::csr(), descriptors::csc()] {
        for n in [48usize, 64, 96] {
            engine.convert(&scoo, &dst, &make_matrix(n, 5)).unwrap();
        }
    }

    // ...and one request the engine refuses: the input violates the
    // sorted-COO ordering obligation, so validation rejects it before
    // any plan executes.
    let unsorted = AnyMatrix::Coo(
        CooMatrix::from_triplets(4, 4, vec![3, 0], vec![0, 1], vec![1.0, 2.0]).unwrap(),
    );
    let err = engine.convert(&scoo, &descriptors::csr(), &unsorted).unwrap_err();
    println!("rejected as expected: {err}\n");

    // 1. Stage spans, as the subscriber saw them. Every conversion walks
    //    plan -> (verify) -> validate -> kernel|interp -> extract, and
    //    each span carries the plan fingerprint, nanoseconds, and outcome.
    let spans = collector.spans();
    println!("subscriber saw {} spans; the first conversion's stages:", spans.len());
    for s in spans.iter().filter(|s| s.pair == spans[0].pair).take(5) {
        println!("  {:<10} {:>9} ns  ok={}", s.stage.as_str(), s.nanos, s.ok);
    }

    // 2. The event ring: a lock-free, fixed-capacity log of exceptional
    //    events (rejections, panics, declines) that is always on, even
    //    with the Noop subscriber.
    println!("\nevent ring ({} recorded, {} dropped):", engine.events().recorded(), engine.events().dropped());
    print!("{}", engine.events_dump());

    // 3. Per-pair latency/nnz histograms with mergeable log buckets.
    println!("\nper-pair summaries:");
    for p in engine.pair_histograms() {
        println!(
            "  {:<14} count={} p50={}ns p95={}ns p99={}ns",
            p.label,
            p.latency_nanos.count(),
            p.latency_nanos.quantile(0.50),
            p.latency_nanos.quantile(0.95),
            p.latency_nanos.quantile(0.99),
        );
    }

    // 4. The exposition page a /metrics endpoint would serve. Metric
    //    names are stable API (snapshot-tested).
    let page = engine.metrics_text();
    println!("\nmetrics_text() ({} lines); the conversion counters:", page.lines().count());
    for line in page.lines().filter(|l| l.starts_with("engine_conversions") || l.starts_with("engine_kernels_hit")) {
        println!("  {line}");
    }

    let stats = engine.stats();
    assert_eq!(stats.conversions, 6);
    assert_eq!(stats.inputs_rejected, 1);
    assert_eq!(stats.kernels_hit + stats.interp_fallbacks, stats.conversions);
}
