//! Prints every built-in format descriptor in the paper's Table-1
//! notation, and demonstrates the order-implication analysis that decides
//! when a permutation is needed.
//!
//! ```text
//! cargo run --example format_tour
//! ```

use sparse_synth::formats::descriptors;
use sparse_synth::formats::FormatDescriptor;

fn main() {
    let all: Vec<FormatDescriptor> = vec![
        descriptors::coo(),
        descriptors::scoo(),
        descriptors::coo3(),
        descriptors::scoo3(),
        descriptors::mcoo(),
        descriptors::mcoo3(),
        descriptors::csr(),
        descriptors::csc(),
        descriptors::dia(),
    ];

    println!("================ Table 1: format descriptors ================\n");
    for d in &all {
        println!("{}", d.table1_row());
    }

    println!("================ Order-implication matrix ================\n");
    println!(
        "`yes` means converting row -> column needs NO permutation (the\n\
         source order implies the destination order, so DCE removes P):\n"
    );
    print!("{:<10}", "");
    for dst in &all {
        print!("{:>8}", dst.name);
    }
    println!();
    for src in &all {
        print!("{:<10}", src.name);
        for dst in &all {
            let implied = match (&src.order, &dst.order) {
                (_, None) => true, // unordered destination: insertion order
                (Some(s), Some(d)) => s.implies(d),
                (None, Some(_)) => false,
            };
            print!("{:>8}", if implied { "yes" } else { "P" });
        }
        println!();
    }
    println!(
        "\n(`P` marks pairs where synthesis inserts the OrderedList\n\
         permutation of §3.2 — e.g. sorted COO -> CSC, or anything -> MCOO.)"
    );
}
