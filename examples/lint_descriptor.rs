//! Catalog-wide static-analysis gate: lints every format descriptor and
//! verifies the synthesized plan for every synthesizable ordered pair.
//!
//! `scripts/check.sh` runs this as a zero-diagnostics gate — the process
//! exits nonzero if any descriptor lint or plan verification produces an
//! error- or warning-severity diagnostic. Notes (e.g. SA008 sequential
//! loop nests) are informational and printed but do not fail the gate.
//!
//! ```text
//! cargo run --release --example lint_descriptor
//! ```

use std::time::{Duration, Instant};

use sparse_analyze::{lint_descriptor, verify, Parallelism, Severity};
use sparse_formats::{descriptors, FormatDescriptor};
use sparse_synthesis::{synthesize, SynthesisOptions};

fn catalog() -> Vec<FormatDescriptor> {
    vec![
        descriptors::coo(),
        descriptors::scoo(),
        descriptors::csr(),
        descriptors::csc(),
        descriptors::dia(),
        descriptors::mcoo(),
        descriptors::ell(),
        descriptors::bcsr(2, 2),
        descriptors::coo3(),
        descriptors::scoo3(),
        descriptors::mcoo3(),
    ]
}

fn main() {
    let mut errors = 0usize;
    let mut warnings = 0usize;
    let mut notes = 0usize;
    let mut tally = |sev: Severity| match sev {
        Severity::Error => errors += 1,
        Severity::Warning => warnings += 1,
        Severity::Note => notes += 1,
    };

    println!("== descriptor lints ==");
    for d in catalog() {
        let diags = lint_descriptor(&d);
        println!(
            "  {:10} {}",
            d.name,
            if diags.is_empty() { "clean" } else { "DIAGNOSTICS" }
        );
        for diag in &diags {
            tally(diag.severity);
            println!("{}", indent(&diag.render()));
        }
    }

    println!("\n== plan verification over synthesizable pairs ==");
    let mut pairs = 0usize;
    let mut parallel_nests = 0usize;
    let mut synth_total = Duration::ZERO;
    let mut verify_total = Duration::ZERO;
    for src in catalog() {
        if src.scan.is_none() {
            continue; // not usable as a conversion source (e.g. DIA)
        }
        for dst in catalog() {
            if src.rank != dst.rank || src.name == dst.name {
                continue;
            }
            // Same-family conversions (e.g. coo -> scoo) reuse UF names;
            // rename the destination the way the conversion layer does.
            let dst = if src.uf_names().iter().any(|n| dst.uf_names().contains(n)) {
                dst.with_suffix("_v")
            } else {
                dst
            };
            let t0 = Instant::now();
            let conv = match synthesize(&src, &dst, SynthesisOptions::default()) {
                Ok(c) => c,
                Err(_) => continue, // outside the synthesizable fragment
            };
            synth_total += t0.elapsed();
            let t1 = Instant::now();
            let report = verify(&conv);
            let dt = t1.elapsed();
            verify_total += dt;
            pairs += 1;
            let par = report
                .nests
                .iter()
                .filter(|n| n.parallelism == Parallelism::Parallel)
                .count();
            parallel_nests += par;
            println!(
                "  {:24} {:9} {} error(s), {} warning(s), {}/{} nest(s) parallel, {:.1?}",
                report.pair,
                if report.is_clean() && report.warning_count() == 0 {
                    "clean"
                } else {
                    "DIAGNOSTICS"
                },
                report.error_count(),
                report.warning_count(),
                par,
                report.nests.len(),
                dt,
            );
            for diag in &report.diagnostics {
                tally(diag.severity);
                if diag.severity > Severity::Note {
                    println!("{}", indent(&diag.render()));
                }
            }
        }
    }

    println!(
        "\n{pairs} pairs verified ({parallel_nests} loop nests proved parallel); \
         synthesis {synth_total:.1?}, verification {verify_total:.1?}"
    );
    println!("{errors} error(s), {warnings} warning(s), {notes} note(s)");
    if errors + warnings > 0 {
        eprintln!("lint_descriptor: FAILED (errors or warnings present)");
        std::process::exit(1);
    }
    println!("lint_descriptor: OK");
}

fn indent(text: &str) -> String {
    text.lines().map(|l| format!("      {l}")).collect::<Vec<_>>().join("\n")
}
