//! Observability contracts: stage spans cover the conversion pipeline,
//! exceptional events land in the ring and the subscriber, and the
//! Prometheus-style exposition is snapshot-stable (metric names are API).

use std::sync::Arc;

use sparse_engine::{CollectingSubscriber, Engine, EngineConfig};
use sparse_formats::descriptors;
use sparse_formats::{AnyMatrix, CooMatrix};
use sparse_obs::{EventKind, Stage};

/// Sorted row-major, 5 stored entries.
fn sample() -> AnyMatrix {
    AnyMatrix::Coo(
        CooMatrix::from_triplets(
            4,
            5,
            vec![0, 0, 1, 2, 3],
            vec![1, 3, 0, 2, 4],
            vec![1.0, 2.0, 3.0, 4.0, 5.0],
        )
        .unwrap(),
    )
}

/// Row-major sortedness violated (the `scoo` source claims it).
fn unsorted() -> AnyMatrix {
    AnyMatrix::Coo(
        CooMatrix::from_triplets(4, 5, vec![3, 0], vec![0, 1], vec![1.0, 2.0]).unwrap(),
    )
}

#[test]
fn interp_path_emits_spans_for_every_stage() {
    let collector = Arc::new(CollectingSubscriber::new());
    let engine = Engine::with_subscriber(EngineConfig::default(), collector.clone());
    engine
        .convert(&descriptors::scoo(), &descriptors::csr(), &sample())
        .unwrap();

    // Default engine (no verification, no budget): plan, validate,
    // interp, extract — in that order, all ok, all on one pair key.
    let spans = collector.spans();
    let stages: Vec<Stage> = spans.iter().map(|s| s.stage).collect();
    assert_eq!(stages, [Stage::Plan, Stage::Validate, Stage::Interp, Stage::Extract]);
    assert!(spans.iter().all(|s| s.ok), "every stage succeeded: {spans:?}");
    let pair = spans[0].pair;
    assert_ne!(pair, 0, "the plan fingerprint keys the spans");
    assert!(spans.iter().all(|s| s.pair == pair), "one conversion, one pair: {spans:?}");
    assert!(collector.events().is_empty(), "success emits no events");
}

#[test]
fn kernel_path_emits_kernel_span_instead_of_interp() {
    let collector = Arc::new(CollectingSubscriber::new());
    let engine = Engine::with_subscriber(
        EngineConfig { verify_plans: true, ..Default::default() },
        collector.clone(),
    );
    engine
        .convert(&descriptors::scoo(), &descriptors::csr(), &sample())
        .unwrap();
    assert_eq!(engine.stats().kernels_hit, 1, "scoo -> csr must be kernel-backed");

    let kernel = collector.spans_for(Stage::Kernel);
    assert_eq!(kernel.len(), 1);
    assert!(kernel[0].ok);
    assert!(collector.spans_for(Stage::Interp).is_empty(), "the kernel answered");
    assert_eq!(collector.spans_for(Stage::Verify).len(), 1, "fresh plan was verified");
}

#[test]
fn rejected_input_reaches_ring_and_subscriber() {
    let collector = Arc::new(CollectingSubscriber::new());
    let engine = Engine::with_subscriber(EngineConfig::default(), collector.clone());
    let err = engine
        .convert(&descriptors::scoo(), &descriptors::csr(), &unsorted())
        .unwrap_err();
    assert!(err.to_string().contains("ordering"), "{err}");

    let events = collector.events();
    assert_eq!(events.len(), 1);
    assert_eq!(events[0].kind, EventKind::InputRejected);
    assert_eq!(events[0].nnz, 2, "the event carries the input's nnz");
    assert_eq!(engine.events().recorded(), 1);
    let dump = engine.events_dump();
    assert!(dump.contains("input-rejected"), "{dump}");
    // The validate span reports the failure; no execution stage ran.
    let validate = collector.spans_for(Stage::Validate);
    assert_eq!(validate.len(), 1);
    assert!(!validate[0].ok);
    assert!(collector.spans_for(Stage::Interp).is_empty());
}

/// Replaces every digit run with `N` so the snapshot is independent of
/// measured latencies while still pinning every metric name, label,
/// help string, and line ordering.
fn normalize(text: &str) -> String {
    let mut out = String::new();
    let mut in_digits = false;
    for c in text.chars() {
        if c.is_ascii_digit() {
            if !in_digits {
                out.push('N');
            }
            in_digits = true;
        } else {
            in_digits = false;
            out.push(c);
        }
    }
    out
}

#[test]
fn metrics_text_is_snapshot_stable() {
    let engine = Engine::new();
    let (src, dst) = (descriptors::scoo(), descriptors::csr());
    engine.convert(&src, &dst, &sample()).unwrap();
    engine.convert(&src, &dst, &sample()).unwrap();
    assert!(engine.convert(&src, &dst, &unsorted()).is_err());

    let text = engine.metrics_text();
    // Exact counter lines first — these are deterministic.
    for line in [
        "engine_plan_lookups_total 3",
        "engine_cache_hits_total 2",
        "engine_cache_misses_total 1",
        "engine_plans_synthesized_total 1",
        "engine_conversions_total 2",
        "engine_conversions_failed_total 0",
        "engine_interp_fallbacks_total 2",
        "engine_inputs_rejected_total 1",
        "engine_nnz_moved_total 10",
        "engine_events_recorded_total 1",
        "engine_events_dropped_total 0",
        "engine_pair_latency_nanoseconds_count{pair=\"SCOO->CSR\"} 2",
        "engine_pair_nnz_sum{pair=\"SCOO->CSR\"} 10",
    ] {
        assert!(text.lines().any(|l| l == line), "missing `{line}` in:\n{text}");
    }
    // Then the full page, digit-normalized: metric names, help strings,
    // label sets, and ordering are all stable API.
    assert_eq!(normalize(&text), SNAPSHOT, "full exposition drifted:\n{text}");
}

const SNAPSHOT: &str = "\
# HELP engine_plan_lookups_total Plan lookups received.
# TYPE engine_plan_lookups_total counter
engine_plan_lookups_total N
# HELP engine_cache_hits_total Plan lookups answered from the cache.
# TYPE engine_cache_hits_total counter
engine_cache_hits_total N
# HELP engine_cache_misses_total Plan lookups that synthesized or observed a failure.
# TYPE engine_cache_misses_total counter
engine_cache_misses_total N
# HELP engine_cache_evictions_total Plans dropped under the capacity limit.
# TYPE engine_cache_evictions_total counter
engine_cache_evictions_total N
# HELP engine_cached_plans Plans currently resident.
# TYPE engine_cached_plans gauge
engine_cached_plans N
# HELP engine_plans_synthesized_total Plans built by the synthesizer.
# TYPE engine_plans_synthesized_total counter
engine_plans_synthesized_total N
# HELP engine_plan_failures_total Plan constructions that failed.
# TYPE engine_plan_failures_total counter
engine_plan_failures_total N
# HELP engine_plans_verified_total Plans run through the static verifier.
# TYPE engine_plans_verified_total counter
engine_plans_verified_total N
# HELP engine_plans_rejected_total Plans the verifier refused.
# TYPE engine_plans_rejected_total counter
engine_plans_rejected_total N
# HELP engine_parallel_plans_total Verified plans with a proved parallel loop.
# TYPE engine_parallel_plans_total counter
engine_parallel_plans_total N
# HELP engine_conversions_total Conversions that completed successfully.
# TYPE engine_conversions_total counter
engine_conversions_total N
# HELP engine_conversions_failed_total Executions that started and then failed or panicked.
# TYPE engine_conversions_failed_total counter
engine_conversions_failed_total N
# HELP engine_nnz_moved_total Stored entries moved by successful conversions.
# TYPE engine_nnz_moved_total counter
engine_nnz_moved_total N
# HELP engine_kernels_hit_total Conversions served by a native kernel.
# TYPE engine_kernels_hit_total counter
engine_kernels_hit_total N
# HELP engine_kernel_declines_total Kernel attempts that declined the input.
# TYPE engine_kernel_declines_total counter
engine_kernel_declines_total N
# HELP engine_kernel_panics_total Kernel attempts that panicked (contained).
# TYPE engine_kernel_panics_total counter
engine_kernel_panics_total N
# HELP engine_interp_fallbacks_total Successful conversions executed by the interpreter.
# TYPE engine_interp_fallbacks_total counter
engine_interp_fallbacks_total N
# HELP engine_inputs_rejected_total Inputs refused before execution (validation or admission).
# TYPE engine_inputs_rejected_total counter
engine_inputs_rejected_total N
# HELP engine_items_failed_total Batch items whose final result was an error.
# TYPE engine_items_failed_total counter
engine_items_failed_total N
# HELP engine_panics_caught_total Panics contained at an isolation boundary.
# TYPE engine_panics_caught_total counter
engine_panics_caught_total N
# HELP engine_degraded_conversions_total Batch items retried on the sequential path.
# TYPE engine_degraded_conversions_total counter
engine_degraded_conversions_total N
# HELP engine_deadline_expired_total Batch items that never started before the deadline.
# TYPE engine_deadline_expired_total counter
engine_deadline_expired_total N
# HELP engine_synth_nanoseconds_total Wall time in synthesis and lowering.
# TYPE engine_synth_nanoseconds_total counter
engine_synth_nanoseconds_total N
# HELP engine_verify_nanoseconds_total Wall time in static plan verification.
# TYPE engine_verify_nanoseconds_total counter
engine_verify_nanoseconds_total N
# HELP engine_validate_nanoseconds_total Wall time in input validation and admission estimation.
# TYPE engine_validate_nanoseconds_total counter
engine_validate_nanoseconds_total N
# HELP engine_exec_nanoseconds_total Wall time in interpreter execution.
# TYPE engine_exec_nanoseconds_total counter
engine_exec_nanoseconds_total N
# HELP engine_kernel_nanoseconds_total Wall time in native kernels that hit.
# TYPE engine_kernel_nanoseconds_total counter
engine_kernel_nanoseconds_total N
# HELP engine_kernel_declined_nanoseconds_total Wall time in kernel attempts that declined or panicked.
# TYPE engine_kernel_declined_nanoseconds_total counter
engine_kernel_declined_nanoseconds_total N
# HELP engine_events_recorded_total Exceptional events recorded.
# TYPE engine_events_recorded_total counter
engine_events_recorded_total N
# HELP engine_events_dropped_total Exceptional events dropped by the ring.
# TYPE engine_events_dropped_total counter
engine_events_dropped_total N
# HELP engine_pair_latency_nanoseconds End-to-end successful-conversion latency per pair.
# TYPE engine_pair_latency_nanoseconds summary
engine_pair_latency_nanoseconds{pair=\"SCOO->CSR\",quantile=\"N.N\"} N
engine_pair_latency_nanoseconds{pair=\"SCOO->CSR\",quantile=\"N.N\"} N
engine_pair_latency_nanoseconds{pair=\"SCOO->CSR\",quantile=\"N.N\"} N
engine_pair_latency_nanoseconds_count{pair=\"SCOO->CSR\"} N
engine_pair_latency_nanoseconds_sum{pair=\"SCOO->CSR\"} N
# HELP engine_pair_nnz Input stored-entry counts per pair.
# TYPE engine_pair_nnz summary
engine_pair_nnz{pair=\"SCOO->CSR\",quantile=\"N.N\"} N
engine_pair_nnz{pair=\"SCOO->CSR\",quantile=\"N.N\"} N
engine_pair_nnz{pair=\"SCOO->CSR\",quantile=\"N.N\"} N
engine_pair_nnz_count{pair=\"SCOO->CSR\"} N
engine_pair_nnz_sum{pair=\"SCOO->CSR\"} N
";
