//! Fault injection: every corruption class × every catalog source format
//! must surface as a typed error naming the failed check — never a panic
//! — while untouched inputs keep converting bit-exactly through the same
//! engine. Also pins the admission-control (memory budget), batch
//! deadline, and concurrent stats-exactness contracts.

use std::time::Duration;

use sparse_engine::{Engine, EngineConfig, EngineError};
use sparse_formats::descriptors;
use sparse_formats::{
    AnyMatrix, CooMatrix, CscMatrix, CsrMatrix, EllMatrix, FormatDescriptor, MortonCooMatrix,
};
use sparse_matgen::corrupt::{corrupt_matrix, Corruption};
use sparse_synthesis::RunError;

/// Sorted row-major, two entries in row 0 (so ELL has width 2 and the
/// duplicate-coordinate class applies everywhere it can).
fn sample_coo() -> CooMatrix {
    CooMatrix::from_triplets(
        4,
        5,
        vec![0, 0, 1, 2, 3],
        vec![1, 3, 0, 2, 4],
        vec![1.0, 2.0, 3.0, 4.0, 5.0],
    )
    .unwrap()
}

/// Every catalog source container with its descriptor and a
/// known-synthesizable destination.
fn sources() -> Vec<(&'static str, AnyMatrix, FormatDescriptor, FormatDescriptor)> {
    let coo = sample_coo();
    vec![
        ("scoo", AnyMatrix::Coo(coo.clone()), descriptors::scoo(), descriptors::csr()),
        ("csr", AnyMatrix::Csr(CsrMatrix::from_coo(&coo)), descriptors::csr(), descriptors::coo()),
        ("csc", AnyMatrix::Csc(CscMatrix::from_coo(&coo)), descriptors::csc(), descriptors::csr()),
        ("ell", AnyMatrix::Ell(EllMatrix::from_coo(&coo)), descriptors::ell(), descriptors::csr()),
        (
            "mcoo",
            AnyMatrix::MortonCoo(MortonCooMatrix::from_coo(&coo)),
            descriptors::mcoo(),
            descriptors::csr(),
        ),
    ]
}

/// The validator's complete check vocabulary; every rejection must cite
/// one of these.
const CHECK_NAMES: [&str; 8] = [
    "array-lengths",
    "pointer-ends",
    "pointer-monotone",
    "index-bounds",
    "ordering",
    "duplicate-coordinate",
    "value-finite",
    "padding-zero",
];

#[test]
fn every_corruption_class_yields_typed_error_or_exact_result() {
    for (label, input, src, dst) in sources() {
        let engine = Engine::new();
        let oracle = engine.convert(&src, &dst, &input).unwrap();
        let mut rejected = 0u64;
        for class in Corruption::ALL {
            let Some(mutant) = corrupt_matrix(&input, class) else {
                continue; // class has no realization for this container
            };
            match engine.convert(&src, &dst, &mutant) {
                Ok(out) if class.is_benign() => {
                    assert_eq!(out.nnz(), 0, "{label}/{class}: empty input converts empty");
                }
                Ok(_) => panic!("{label}/{class}: corrupted input was accepted"),
                Err(EngineError::Run(RunError::InvalidInput { check, detail })) => {
                    assert!(
                        !class.is_benign(),
                        "{label}/{class}: benign input rejected: [{check}] {detail}"
                    );
                    assert!(
                        CHECK_NAMES.contains(&check),
                        "{label}/{class}: unknown check `{check}`"
                    );
                    assert!(!detail.is_empty(), "{label}/{class}: empty detail");
                    rejected += 1;
                }
                Err(other) => panic!("{label}/{class}: expected InvalidInput, got: {other}"),
            }
        }
        assert!(rejected >= 6, "{label}: expected at least 6 malicious classes, got {rejected}");
        // After the full corruption sweep the untouched input still
        // round-trips bit-exactly through the same engine instance.
        assert_eq!(engine.convert(&src, &dst, &input).unwrap(), oracle, "{label}");
        let stats = engine.stats();
        assert_eq!(stats.panics_caught, 0, "{label}: zero panics allowed");
        assert_eq!(stats.inputs_rejected, rejected, "{label}: rejection count must be exact");
    }
}

#[test]
fn batch_quarantines_corrupted_item_with_exact_stats() {
    let engine = Engine::with_config(EngineConfig { threads: 4, ..Default::default() });
    let (src, dst) = (descriptors::scoo(), descriptors::csr());
    let good = AnyMatrix::Coo(sample_coo());
    let bad = corrupt_matrix(&good, Corruption::NegativeIndex).unwrap();

    let mut inputs = vec![good.clone(); 8];
    inputs[5] = bad;
    let results = engine.convert_batch(&src, &dst, &inputs).unwrap();
    assert_eq!(results.len(), 8);
    let oracle = AnyMatrix::Csr(CsrMatrix::from_coo(&sample_coo()));
    for (i, item) in results.iter().enumerate() {
        if i == 5 {
            match item {
                Err(EngineError::Run(RunError::InvalidInput { check, .. })) => {
                    assert_eq!(*check, "index-bounds");
                }
                other => panic!("item 5: expected InvalidInput, got {other:?}"),
            }
        } else {
            assert_eq!(*item.as_ref().unwrap(), oracle, "item {i}");
        }
    }
    let stats = engine.stats();
    assert_eq!(stats.items_failed, 1);
    assert_eq!(stats.inputs_rejected, 1);
    assert_eq!(stats.panics_caught, 0);
    assert_eq!(stats.degraded_conversions, 0, "deterministic rejections are not retried");
    assert_eq!(stats.conversions, 7, "the rejected item never reaches execution");
    assert_eq!(stats.nnz_moved, 7 * good.nnz() as u64);
}

#[test]
fn expired_deadline_fails_unstarted_items_with_typed_error() {
    let engine = Engine::with_config(EngineConfig {
        threads: 2,
        batch_deadline: Some(Duration::ZERO),
        ..Default::default()
    });
    let inputs = vec![AnyMatrix::Coo(sample_coo()); 4];
    let results = engine
        .convert_batch(&descriptors::scoo(), &descriptors::csr(), &inputs)
        .unwrap();
    assert_eq!(results.len(), 4, "expired items keep their slots");
    for (i, item) in results.iter().enumerate() {
        match item {
            Err(EngineError::Run(RunError::DeadlineExceeded { deadline })) => {
                assert_eq!(*deadline, Duration::ZERO, "item {i}");
            }
            other => panic!("item {i}: expected DeadlineExceeded, got {other:?}"),
        }
    }
    let stats = engine.stats();
    assert_eq!(stats.deadline_expired, 4);
    assert_eq!(stats.items_failed, 4);
    assert_eq!(stats.conversions, 0, "no expired item reaches execution");
    assert_eq!(stats.degraded_conversions, 0, "expired items are not retried");
}

#[test]
fn memory_budget_refuses_dia_blowup_before_allocation() {
    // An antidiagonal matrix puts every nonzero on its own diagonal: DIA
    // materializes nd × nr slots — 64 × 64 × 8 bytes here, plus offsets.
    let n = 64usize;
    let anti = CooMatrix::from_triplets(
        n,
        n,
        (0..n as i64).collect(),
        (0..n as i64).rev().collect(),
        vec![1.0; n],
    )
    .unwrap();
    let engine = Engine::with_config(EngineConfig {
        memory_budget: Some(10_000),
        ..Default::default()
    });
    let err = engine
        .convert(&descriptors::scoo(), &descriptors::dia(), &AnyMatrix::Coo(anti))
        .unwrap_err();
    match err {
        EngineError::Run(RunError::ResourceExhausted { what, needed, budget }) => {
            assert_eq!(what, "dia output");
            assert_eq!(budget, 10_000);
            assert!(needed > budget, "estimate {needed} must exceed the budget");
        }
        other => panic!("expected ResourceExhausted, got: {other}"),
    }
    assert_eq!(engine.stats().inputs_rejected, 1);
    assert_eq!(engine.stats().conversions, 0, "refused before execution");

    // A banded matrix of the same nnz fits the same budget comfortably.
    let diag = CooMatrix::from_triplets(
        n,
        n,
        (0..n as i64).collect(),
        (0..n as i64).collect(),
        vec![1.0; n],
    )
    .unwrap();
    engine
        .convert(&descriptors::scoo(), &descriptors::dia(), &AnyMatrix::Coo(diag))
        .unwrap();
}

#[test]
fn stats_stay_exact_under_concurrent_corrupted_batches() {
    const OS_THREADS: usize = 4;
    const BATCHES_PER_THREAD: usize = 5;
    const VALID_PER_BATCH: usize = 5;

    let engine = Engine::with_config(EngineConfig { threads: 2, ..Default::default() });
    let (src, dst) = (descriptors::scoo(), descriptors::csr());
    let good = AnyMatrix::Coo(sample_coo());
    let bad = corrupt_matrix(&good, Corruption::OversizedIndex).unwrap();

    std::thread::scope(|s| {
        for _ in 0..OS_THREADS {
            s.spawn(|| {
                for _ in 0..BATCHES_PER_THREAD {
                    let mut inputs = vec![good.clone(); VALID_PER_BATCH + 1];
                    inputs[2] = bad.clone();
                    let results = engine.convert_batch(&src, &dst, &inputs).unwrap();
                    assert_eq!(results.iter().filter(|r| r.is_ok()).count(), VALID_PER_BATCH);
                }
            });
        }
    });

    let total_batches = (OS_THREADS * BATCHES_PER_THREAD) as u64;
    let stats = engine.stats();
    assert_eq!(stats.items_failed, total_batches);
    assert_eq!(stats.inputs_rejected, total_batches);
    assert_eq!(stats.panics_caught, 0);
    assert_eq!(stats.deadline_expired, 0);
    assert_eq!(stats.conversions, total_batches * VALID_PER_BATCH as u64);
    assert_eq!(stats.nnz_moved, stats.conversions * good.nnz() as u64);
    assert_eq!(stats.plans_synthesized, 1, "every batch shares one cached plan");
}

/// Regression: `conversions` (and `interp_fallbacks`) used to increment
/// before the execution outcome was known, so failed and panicked runs
/// inflated the conversion count and the "conversions succeeded" story
/// the counter tells was a lie. Failed executions now count under
/// `conversions_failed` only.
#[test]
fn failed_runs_are_not_counted_as_conversions() {
    // Validation off: the mismatched container reaches the run path and
    // fails inside it (bind-time dispatch error) instead of being
    // rejected up front.
    let engine = Engine::with_config(EngineConfig {
        validate_inputs: false,
        ..Default::default()
    });
    let (src, dst) = (descriptors::scoo(), descriptors::csr());
    let good = AnyMatrix::Coo(sample_coo());
    let wrong = AnyMatrix::Csr(CsrMatrix::from_coo(&sample_coo()));

    engine.convert(&src, &dst, &good).unwrap();
    assert!(engine.convert(&src, &dst, &wrong).is_err());
    assert!(engine.convert(&src, &dst, &wrong).is_err());
    engine.convert(&src, &dst, &good).unwrap();

    let stats = engine.stats();
    assert_eq!(stats.conversions, 2, "only completed conversions count");
    assert_eq!(stats.conversions_failed, 2, "failed runs get their own counter");
    assert_eq!(stats.interp_fallbacks, 2, "fallbacks count successes only");
    assert_eq!(
        stats.kernels_hit + stats.interp_fallbacks,
        stats.conversions,
        "the backend-accounting invariant holds under failures"
    );
    assert_eq!(stats.inputs_rejected, 0, "nothing was rejected before execution");
    assert_eq!(stats.nnz_moved, 2 * good.nnz() as u64, "failed runs move no nnz");
    assert!(engine.events_dump().contains("run-failed"), "{}", engine.events_dump());
}

#[test]
fn corruption_sweep_stays_typed_with_kernel_backend_enabled() {
    // The native kernel backend only ever runs behind validated inputs
    // and verified plans, so enabling it must change nothing about the
    // fault-injection contract: every corruption class still surfaces as
    // a typed validation error (kernels never see corrupt data), clean
    // inputs still convert bit-exactly, and the backend accounting
    // balances.
    for (label, input, src, dst) in sources() {
        let engine = Engine::with_config(EngineConfig {
            verify_plans: true,
            ..Default::default()
        });
        let oracle = match engine.convert(&src, &dst, &input) {
            Ok(out) => out,
            // Pairs the static verifier refuses never reach execution;
            // the kernel-backend contract is vacuous for them.
            Err(EngineError::Plan(_)) => continue,
            Err(other) => panic!("{label}: clean input failed: {other}"),
        };
        let mut rejected = 0u64;
        for class in Corruption::ALL {
            let Some(mutant) = corrupt_matrix(&input, class) else { continue };
            match engine.convert(&src, &dst, &mutant) {
                Ok(out) if class.is_benign() => {
                    assert_eq!(out.nnz(), 0, "{label}/{class}: empty input converts empty");
                }
                Ok(_) => panic!("{label}/{class}: corrupted input was accepted"),
                Err(EngineError::Run(RunError::InvalidInput { .. })) => rejected += 1,
                Err(other) => panic!("{label}/{class}: expected InvalidInput, got: {other}"),
            }
        }
        assert!(rejected >= 6, "{label}: expected at least 6 malicious classes");
        assert_eq!(engine.convert(&src, &dst, &input).unwrap(), oracle, "{label}");
        let stats = engine.stats();
        assert_eq!(stats.panics_caught, 0, "{label}: zero panics allowed");
        assert_eq!(
            stats.kernels_hit + stats.interp_fallbacks,
            stats.conversions,
            "{label}: backend accounting must balance"
        );
        let kernel_backed =
            engine.plan(&src, &dst).map(|p| p.has_kernel()).unwrap_or(false);
        if kernel_backed {
            assert!(
                stats.kernels_hit > 0,
                "{label}: the kernel backend must actually engage on this pair"
            );
        } else {
            assert_eq!(stats.kernels_hit, 0, "{label}: no kernel registered");
        }
    }
}
