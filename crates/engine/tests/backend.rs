//! Execution-backend contract tests: the native kernel path engages
//! exactly when policy, validation, verification, and registration all
//! line up; every other conversion interprets; and the accounting
//! invariant `kernels_hit + interp_fallbacks == conversions` holds
//! unconditionally.

use sparse_engine::{Backend, Engine, EngineConfig, EngineStats};
use sparse_formats::descriptors;
use sparse_formats::{AnyMatrix, AnyTensor, Coo3Tensor, CooMatrix, CsrMatrix, MortonCoo3Tensor};

fn sample_scoo(nr: usize, nc: usize, per_row: usize) -> CooMatrix {
    let mut row = Vec::new();
    let mut col = Vec::new();
    let mut val = Vec::new();
    for i in 0..nr as i64 {
        for k in 0..per_row.min(nc) as i64 {
            row.push(i);
            col.push((i * 3 + k * 5) % nc as i64);
            val.push((i * 10 + k) as f64 + 0.25);
        }
    }
    let mut m = CooMatrix::from_triplets(nr, nc, row, col, val).unwrap();
    m.sort_row_major();
    m
}

fn verified() -> Engine {
    Engine::with_config(EngineConfig { verify_plans: true, ..Default::default() })
}

fn assert_invariant(stats: &EngineStats) {
    assert_eq!(
        stats.kernels_hit + stats.interp_fallbacks,
        stats.conversions,
        "every conversion is either a kernel hit or an interpreter execution"
    );
}

#[test]
fn verified_engine_serves_hot_pair_from_kernel() {
    let engine = verified();
    let coo = sample_scoo(20, 16, 3);
    let out = engine
        .convert(&descriptors::scoo(), &descriptors::csr(), &AnyMatrix::Coo(coo.clone()))
        .unwrap();
    assert_eq!(out, AnyMatrix::Csr(CsrMatrix::from_coo(&coo)));
    let stats = engine.stats();
    assert_eq!(stats.kernels_hit, 1, "verified hot pair must hit the kernel");
    assert_eq!(stats.interp_fallbacks, 0);
    assert!(stats.kernel_time > std::time::Duration::ZERO);
    assert_invariant(&stats);
}

#[test]
fn backend_choice_does_not_change_results() {
    let auto = verified();
    let interp_only = Engine::with_config(EngineConfig {
        verify_plans: true,
        backend: Backend::InterpreterOnly,
        ..Default::default()
    });
    let coo = sample_scoo(15, 12, 2);
    for (src, dst, input) in [
        (descriptors::scoo(), descriptors::csr(), AnyMatrix::Coo(coo.clone())),
        (descriptors::scoo(), descriptors::csc(), AnyMatrix::Coo(coo.clone())),
        (descriptors::csr(), descriptors::coo(), AnyMatrix::Csr(CsrMatrix::from_coo(&coo))),
    ] {
        let a = auto.convert(&src, &dst, &input).unwrap();
        let b = interp_only.convert(&src, &dst, &input).unwrap();
        assert_eq!(a, b, "{} -> {}", src.name, dst.name);
    }
    assert!(auto.stats().kernels_hit >= 1);
    assert_eq!(interp_only.stats().kernels_hit, 0, "InterpreterOnly must never use kernels");
    assert_eq!(interp_only.stats().interp_fallbacks, interp_only.stats().conversions);
    assert_invariant(&auto.stats());
    assert_invariant(&interp_only.stats());
}

#[test]
fn unverified_engine_never_uses_kernels() {
    // The default engine does not verify plans, and kernels only run
    // behind verified plans — so defaults keep the historical behavior.
    let engine = Engine::new();
    let coo = sample_scoo(10, 10, 2);
    engine
        .convert(&descriptors::scoo(), &descriptors::csr(), &AnyMatrix::Coo(coo))
        .unwrap();
    let stats = engine.stats();
    assert_eq!(stats.kernels_hit, 0);
    assert_eq!(stats.interp_fallbacks, 1);
    assert_invariant(&stats);
}

#[test]
fn unvalidated_inputs_disable_kernels() {
    // Kernels assume validated inputs; an engine that skips validation
    // must not take the kernel path even when the plan is verified.
    let engine = Engine::with_config(EngineConfig {
        verify_plans: true,
        validate_inputs: false,
        ..Default::default()
    });
    let coo = sample_scoo(10, 10, 2);
    engine
        .convert(&descriptors::scoo(), &descriptors::csr(), &AnyMatrix::Coo(coo))
        .unwrap();
    let stats = engine.stats();
    assert_eq!(stats.kernels_hit, 0);
    assert_invariant(&stats);
}

#[test]
fn long_tail_pairs_fall_back_and_invariant_holds() {
    // scoo -> dia has no registered kernel; it must interpret, and the
    // accounting must balance across a mix of hot and long-tail pairs.
    let engine = verified();
    let coo = sample_scoo(12, 12, 2);
    let input = AnyMatrix::Coo(coo);
    engine.convert(&descriptors::scoo(), &descriptors::csr(), &input).unwrap();
    engine.convert(&descriptors::scoo(), &descriptors::dia(), &input).unwrap();
    engine.convert(&descriptors::scoo(), &descriptors::mcoo(), &input).unwrap();
    let stats = engine.stats();
    assert_eq!(stats.conversions, 3);
    assert_eq!(stats.kernels_hit, 2, "csr and mcoo destinations are kernel-backed");
    assert_eq!(stats.interp_fallbacks, 1, "dia has no kernel and must interpret");
    assert_invariant(&stats);
}

#[test]
fn kernel_decline_falls_back_transparently() {
    // Unordered COO tolerates duplicate coordinates, which the sort-based
    // permutation kernels cannot reproduce (the plan collapses them
    // through first-occurrence ranks) — so the kernel declines and the
    // interpreter answers. The decline itself must never surface.
    let engine = verified();
    let dup = CooMatrix::from_triplets(
        3,
        3,
        vec![1, 0, 1, 2],
        vec![2, 1, 2, 0],
        vec![1.0, 2.0, 3.0, 4.0],
    )
    .unwrap();
    let dst = descriptors::scoo().with_suffix("_d");
    let res = engine.convert(&descriptors::coo(), &dst, &AnyMatrix::Coo(dup));
    // Whatever the interpreter decides about duplicate collapse, the
    // accounting must show a fallback, not a kernel hit.
    let stats = engine.stats();
    assert_eq!(stats.kernels_hit, 0, "declined kernels are not hits");
    assert_eq!(stats.interp_fallbacks, 1);
    assert_invariant(&stats);
    drop(res);

    // A duplicate-free input through the same (cached) plan hits the
    // kernel again.
    let clean = sample_scoo(6, 6, 2);
    let out = engine
        .convert(&descriptors::coo(), &dst, &AnyMatrix::Coo(clean.clone()))
        .unwrap();
    let mut want = clean;
    want.sort_row_major();
    assert_eq!(out, AnyMatrix::Coo(want));
    assert_eq!(engine.stats().kernels_hit, 1);
    assert_invariant(&engine.stats());
}

#[test]
fn batches_use_kernels_per_item() {
    let engine = verified();
    let coo = sample_scoo(14, 10, 2);
    let inputs: Vec<AnyMatrix> = (0..6).map(|_| AnyMatrix::Coo(coo.clone())).collect();
    let outs = engine
        .convert_batch(&descriptors::scoo(), &descriptors::csr(), &inputs)
        .unwrap();
    let want = AnyMatrix::Csr(CsrMatrix::from_coo(&coo));
    for out in outs {
        assert_eq!(out.unwrap(), want);
    }
    let stats = engine.stats();
    assert_eq!(stats.conversions, 6);
    assert_eq!(stats.kernels_hit, 6, "every batch item is kernel-eligible");
    assert_invariant(&stats);
}

#[test]
fn tensor_conversions_use_kernels_too() {
    let engine = verified();
    let t = Coo3Tensor::from_coords(
        (6, 5, 7),
        vec![0, 1, 1, 3, 5],
        vec![2, 0, 4, 1, 3],
        vec![1, 6, 0, 2, 5],
        vec![1.0, 2.0, 3.0, 4.0, 5.0],
    )
    .unwrap();
    let out = engine
        .convert_tensor(&descriptors::scoo3(), &descriptors::mcoo3(), &AnyTensor::Coo3(t.clone()))
        .unwrap();
    // scoo3 requires sorted input; this one is lexicographically sorted.
    assert_eq!(out, AnyTensor::MortonCoo3(MortonCoo3Tensor::from_coo3(&t)));
    let stats = engine.stats();
    assert_eq!(stats.kernels_hit, 1);
    assert_invariant(&stats);
}
