//! Engine behavior: generic any-to-any dispatch matches the reference
//! conversions, the plan cache is keyed structurally, warm-cache converts
//! perform zero synthesis, and the LRU evicts.

use sparse_engine::{Engine, EngineConfig, EngineError};
use sparse_formats::descriptors;
use sparse_formats::{
    AnyMatrix, AnyTensor, Coo3Tensor, CooMatrix, CscMatrix, CsrMatrix, DiaMatrix, EllMatrix,
    MortonCoo3Tensor, MortonCooMatrix,
};
use sparse_synthesis::RunError;

/// A deterministic scattered matrix, sorted row-major (the `scoo` source
/// descriptor claims sortedness).
fn sample_scoo(nr: usize, nc: usize, stride: usize) -> CooMatrix {
    let mut row = Vec::new();
    let mut col = Vec::new();
    let mut val = Vec::new();
    for k in (0..nr * nc).step_by(stride) {
        row.push((k / nc) as i64);
        col.push((k % nc) as i64);
        val.push(k as f64 + 1.0);
    }
    CooMatrix::from_triplets(nr, nc, row, col, val).unwrap()
}

/// A banded matrix (DIA-friendly), sorted row-major.
fn sample_banded(n: usize) -> CooMatrix {
    let mut row = Vec::new();
    let mut col = Vec::new();
    let mut val = Vec::new();
    for i in 0..n as i64 {
        for o in [-2i64, 0, 1] {
            let j = i + o;
            if j >= 0 && (j as usize) < n {
                row.push(i);
                col.push(j);
                val.push((i * 10 + o) as f64);
            }
        }
    }
    CooMatrix::from_triplets(n, n, row, col, val).unwrap()
}

#[test]
fn dispatch_scoo_to_csr_matches_oracle() {
    let engine = Engine::new();
    let coo = sample_scoo(17, 23, 3);
    let out = engine
        .convert(&descriptors::scoo(), &descriptors::csr(), &AnyMatrix::Coo(coo.clone()))
        .unwrap();
    assert_eq!(out, AnyMatrix::Csr(CsrMatrix::from_coo(&coo)));
}

#[test]
fn dispatch_csr_to_csc_matches_oracle() {
    let engine = Engine::new();
    let coo = sample_scoo(11, 13, 2);
    let csr = CsrMatrix::from_coo(&coo);
    let out = engine
        .convert(&descriptors::csr(), &descriptors::csc(), &AnyMatrix::Csr(csr))
        .unwrap();
    assert_eq!(out, AnyMatrix::Csc(CscMatrix::from_coo(&coo)));
}

#[test]
fn dispatch_ell_to_csr_matches_oracle() {
    let engine = Engine::new();
    let coo = sample_scoo(9, 14, 4);
    let ell = EllMatrix::from_coo(&coo);
    let out = engine
        .convert(&descriptors::ell(), &descriptors::csr(), &AnyMatrix::Ell(ell))
        .unwrap();
    assert_eq!(out, AnyMatrix::Csr(CsrMatrix::from_coo(&coo)));
}

#[test]
fn dispatch_scoo_to_dia_matches_oracle() {
    let engine = Engine::new();
    let coo = sample_banded(12);
    let out = engine
        .convert(&descriptors::scoo(), &descriptors::dia(), &AnyMatrix::Coo(coo.clone()))
        .unwrap();
    assert_eq!(out, AnyMatrix::Dia(DiaMatrix::from_coo(&coo)));
}

#[test]
fn dispatch_scoo_to_mcoo_matches_oracle() {
    let engine = Engine::new();
    let coo = sample_scoo(16, 16, 5);
    let out = engine
        .convert(&descriptors::scoo(), &descriptors::mcoo(), &AnyMatrix::Coo(coo.clone()))
        .unwrap();
    assert_eq!(out, AnyMatrix::MortonCoo(MortonCooMatrix::from_coo(&coo)));
}

#[test]
fn dispatch_tensor_scoo3_to_mcoo3_matches_oracle() {
    let engine = Engine::new();
    let t = Coo3Tensor::from_coords(
        (4, 4, 4),
        vec![0, 0, 1, 2, 3],
        vec![0, 3, 1, 2, 3],
        vec![1, 2, 0, 3, 3],
        vec![1.0, 2.0, 3.0, 4.0, 5.0],
    )
    .unwrap();
    let out = engine
        .convert_tensor(&descriptors::scoo3(), &descriptors::mcoo3(), &AnyTensor::Coo3(t.clone()))
        .unwrap();
    assert_eq!(out, AnyTensor::MortonCoo3(MortonCoo3Tensor::from_coo3(&t)));
}

#[test]
fn warm_cache_performs_zero_synthesis() {
    let engine = Engine::new();
    let src = descriptors::scoo();
    let dst = descriptors::csr();
    let input = AnyMatrix::Coo(sample_scoo(10, 10, 3));

    engine.convert(&src, &dst, &input).unwrap();
    let cold = engine.stats();
    assert_eq!(cold.plans_synthesized, 1);
    assert_eq!(cold.cache_misses, 1);
    assert!(cold.synth_time > std::time::Duration::ZERO);

    for _ in 0..5 {
        engine.convert(&src, &dst, &input).unwrap();
    }
    let warm = engine.stats();
    assert_eq!(warm.plans_synthesized, 1, "warm converts must not synthesize");
    assert_eq!(warm.cache_misses, 1);
    assert_eq!(warm.cache_hits, 5);
    assert_eq!(warm.conversions, 6);
    assert_eq!(warm.synth_time, cold.synth_time, "no further synthesis time accrued");
    assert_eq!(warm.nnz_moved, 6 * input.nnz() as u64);
}

#[test]
fn cache_key_is_structural_not_name_identity() {
    let engine = Engine::new();
    let src = descriptors::scoo();
    let dst = descriptors::csr();
    let input = AnyMatrix::Coo(sample_scoo(8, 8, 3));
    engine.convert(&src, &dst, &input).unwrap();

    // Fresh descriptor instances with different display names but the
    // same structure must hit the cached plan.
    let mut src2 = descriptors::scoo();
    src2.name = "renamed_source".into();
    let mut dst2 = descriptors::csr();
    dst2.name = "renamed_destination".into();
    engine.convert(&src2, &dst2, &input).unwrap();

    assert_eq!(engine.stats().plans_synthesized, 1);
    assert_eq!(engine.stats().cache_hits, 1);
}

#[test]
fn lru_evicts_when_over_capacity() {
    let engine = Engine::with_config(EngineConfig { capacity: 1, ..Default::default() });
    let input = AnyMatrix::Coo(sample_scoo(8, 8, 3));
    let scoo = descriptors::scoo();

    engine.convert(&scoo, &descriptors::csr(), &input).unwrap();
    engine.convert(&scoo, &descriptors::csc(), &input).unwrap(); // evicts csr plan
    engine.convert(&scoo, &descriptors::csr(), &input).unwrap(); // must re-synthesize

    let stats = engine.stats();
    assert_eq!(stats.plans_synthesized, 3);
    assert_eq!(stats.cache_evictions, 2);
    assert_eq!(stats.cached_plans, 1);
}

#[test]
fn container_descriptor_mismatch_is_reported() {
    let engine = Engine::new();
    let input = AnyMatrix::Coo(sample_scoo(6, 6, 2));
    // Source descriptor says CSR; handing it a COO container must fail
    // with a dispatch error, not garbage output.
    let err = engine
        .convert(&descriptors::csr(), &descriptors::csc(), &input)
        .unwrap_err();
    match err {
        EngineError::Run(RunError::Unsupported(msg)) => {
            assert!(msg.contains("coo"), "{msg}");
        }
        other => panic!("expected dispatch error, got: {other}"),
    }
}

#[test]
fn planning_failures_are_not_cached() {
    let engine = Engine::new();
    // DIA has no executable scan, so DIA-as-source fails synthesis.
    let Err(err) = engine.plan(&descriptors::dia(), &descriptors::csr()) else {
        panic!("DIA-as-source must fail synthesis");
    };
    assert!(matches!(err, EngineError::Plan(_)));
    let stats = engine.stats();
    assert_eq!(stats.plans_synthesized, 0);
    assert_eq!(stats.cache_misses, 1);
    assert_eq!(stats.cached_plans, 0, "failures must not occupy the cache");
    // Retrying reports the failure again (counted as a fresh miss).
    assert!(engine.plan(&descriptors::dia(), &descriptors::csr()).is_err());
    assert_eq!(engine.stats().cache_misses, 2);
}

#[test]
fn verifying_engine_rejects_broken_descriptor_and_does_not_cache() {
    // CSR with rowptr's monotonic quantifier dropped: synthesis still
    // succeeds (it simply emits no enforcement sweep), but the static
    // verifier refuses the plan at synthesis time.
    let mut broken = descriptors::csr();
    let mut rowptr = broken.ufs.get("rowptr").unwrap().clone();
    rowptr.monotonicity = None;
    broken.ufs.insert(rowptr);

    let engine =
        Engine::with_config(EngineConfig { verify_plans: true, ..Default::default() });
    match engine.plan(&descriptors::scoo(), &broken) {
        Err(EngineError::Plan(msg)) => {
            assert!(msg.contains("SA006"), "rejection must cite the diagnostic: {msg}");
        }
        Err(other) => panic!("expected a plan rejection, got: {other}"),
        Ok(_) => panic!("expected a plan rejection, got a plan"),
    }
    let stats = engine.stats();
    assert_eq!(stats.plans_verified, 1);
    assert_eq!(stats.plans_rejected, 1);
    assert_eq!(stats.cached_plans, 0, "rejected plans must not occupy the cache");

    // The same pair is accepted by a trusting (unverified) engine.
    let trusting = Engine::new();
    assert!(trusting.plan(&descriptors::scoo(), &broken).is_ok());
}

#[test]
fn verified_batch_fans_out_on_proved_parallel_plan() {
    // csr -> coo is the catalog pair whose populate nest the verifier
    // proves parallel (identity permutation + rowptr window chaining).
    let engine =
        Engine::with_config(EngineConfig { verify_plans: true, ..Default::default() });
    let coo = sample_scoo(12, 15, 3);
    let csr = CsrMatrix::from_coo(&coo);
    let inputs: Vec<AnyMatrix> = (0..4).map(|_| AnyMatrix::Csr(csr.clone())).collect();
    let outs = engine
        .convert_batch(&descriptors::csr(), &descriptors::coo(), &inputs)
        .unwrap();
    assert_eq!(outs.len(), 4);
    for out in outs {
        assert_eq!(out.unwrap(), AnyMatrix::Coo(coo.clone()));
    }
    let stats = engine.stats();
    assert_eq!(stats.plans_verified, 1);
    assert_eq!(stats.plans_rejected, 0);
    assert_eq!(stats.parallel_plans, 1, "csr -> coo must be proved parallel");
    let plan = engine.plan(&descriptors::csr(), &descriptors::coo()).unwrap();
    let report = plan.verification.as_ref().expect("verified engines attach reports");
    assert!(report.has_parallel_loop());
    assert!(report.is_clean());
}

#[test]
fn verified_batch_stays_correct_without_a_parallelism_proof() {
    // scoo -> csr interleaves min and max bounds on rowptr, which the
    // verifier conservatively keeps sequential; the batch must fall back
    // to one worker and still produce correct outputs.
    let engine =
        Engine::with_config(EngineConfig { verify_plans: true, ..Default::default() });
    let coo = sample_scoo(9, 11, 2);
    let inputs: Vec<AnyMatrix> = (0..3).map(|_| AnyMatrix::Coo(coo.clone())).collect();
    let outs = engine
        .convert_batch(&descriptors::scoo(), &descriptors::csr(), &inputs)
        .unwrap();
    for out in outs {
        assert_eq!(out.unwrap(), AnyMatrix::Csr(CsrMatrix::from_coo(&coo)));
    }
    let plan = engine.plan(&descriptors::scoo(), &descriptors::csr()).unwrap();
    let report = plan.verification.as_ref().unwrap();
    assert!(report.is_clean());
    assert!(!report.has_parallel_loop(), "min/max interleaving is not proved parallel");
}
