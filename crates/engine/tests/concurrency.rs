//! Concurrency contracts: N threads hammering one engine synthesize a
//! shared plan exactly once, and `convert_batch` agrees element-for-
//! element with sequential `convert`.

use sparse_engine::{Engine, EngineConfig};
use sparse_formats::descriptors;
use sparse_formats::{AnyMatrix, CooMatrix};

fn sample_scoo(nr: usize, nc: usize, stride: usize, salt: u64) -> CooMatrix {
    let mut row = Vec::new();
    let mut col = Vec::new();
    let mut val = Vec::new();
    for k in (0..nr * nc).step_by(stride) {
        row.push((k / nc) as i64);
        col.push((k % nc) as i64);
        val.push((k as u64 * 31 + salt) as f64);
    }
    CooMatrix::from_triplets(nr, nc, row, col, val).unwrap()
}

#[test]
fn n_threads_synthesize_exactly_once() {
    const THREADS: usize = 8;
    const CONVERTS: usize = 10;
    let engine = Engine::new();
    let src = descriptors::scoo();
    let dst = descriptors::csr();

    std::thread::scope(|s| {
        for t in 0..THREADS {
            let engine = &engine;
            let src = &src;
            let dst = &dst;
            s.spawn(move || {
                let input = AnyMatrix::Coo(sample_scoo(12, 12, 3, t as u64));
                for _ in 0..CONVERTS {
                    let out = engine.convert(src, dst, &input).unwrap();
                    assert!(matches!(out, AnyMatrix::Csr(_)));
                }
            });
        }
    });

    let stats = engine.stats();
    assert_eq!(
        stats.plans_synthesized, 1,
        "{THREADS} threads x {CONVERTS} converts must share one synthesis"
    );
    assert_eq!(stats.cache_misses, 1);
    assert_eq!(stats.cache_hits, (THREADS * CONVERTS) as u64 - 1);
    assert_eq!(stats.conversions, (THREADS * CONVERTS) as u64);
}

#[test]
fn batch_matches_sequential_element_for_element() {
    let src = descriptors::scoo();
    let dst = descriptors::csr();
    let inputs: Vec<AnyMatrix> = (0..13)
        .map(|i| AnyMatrix::Coo(sample_scoo(10 + i, 9 + i, 2 + i % 3, i as u64)))
        .collect();

    let sequential = Engine::new();
    let expected: Vec<AnyMatrix> = inputs
        .iter()
        .map(|m| sequential.convert(&src, &dst, m).unwrap())
        .collect();

    for threads in [1, 2, 4, 32] {
        let parallel =
            Engine::with_config(EngineConfig { threads, ..Default::default() });
        let got = parallel.convert_batch(&src, &dst, &inputs).unwrap();
        assert_eq!(got, expected, "threads={threads}: order or content diverged");
        let stats = parallel.stats();
        assert_eq!(stats.plans_synthesized, 1, "threads={threads}");
        assert_eq!(stats.conversions, inputs.len() as u64, "threads={threads}");
    }
}

#[test]
fn batch_handles_empty_and_single_inputs() {
    let engine = Engine::new();
    let src = descriptors::scoo();
    let dst = descriptors::csc();
    assert_eq!(engine.convert_batch(&src, &dst, &[]).unwrap(), Vec::new());
    let one = vec![AnyMatrix::Coo(sample_scoo(7, 7, 2, 0))];
    let got = engine.convert_batch(&src, &dst, &one).unwrap();
    assert_eq!(got.len(), 1);
    assert_eq!(got[0], engine.convert(&src, &dst, &one[0]).unwrap());
}

#[test]
fn batch_error_reports_lowest_failing_index_deterministically() {
    let engine = Engine::with_config(EngineConfig { threads: 4, ..Default::default() });
    let src = descriptors::scoo();
    let dst = descriptors::csr();
    // Second half of the batch has the wrong container for the source
    // descriptor; the batch must fail the same way every time.
    let mut inputs: Vec<AnyMatrix> = (0..6)
        .map(|i| AnyMatrix::Coo(sample_scoo(8, 8, 2, i)))
        .collect();
    let csr = sparse_formats::CsrMatrix::from_coo(&sample_scoo(8, 8, 2, 0));
    inputs.push(AnyMatrix::Csr(csr));
    let e1 = engine.convert_batch(&src, &dst, &inputs).unwrap_err().to_string();
    let e2 = engine.convert_batch(&src, &dst, &inputs).unwrap_err().to_string();
    assert_eq!(e1, e2);
    assert!(e1.contains("csr"), "{e1}");
}
