//! Concurrency contracts: N threads hammering one engine synthesize a
//! shared plan exactly once, and `convert_batch` agrees element-for-
//! element with sequential `convert`.

use sparse_engine::{Engine, EngineConfig};
use sparse_formats::descriptors;
use sparse_formats::{AnyMatrix, CooMatrix};

fn sample_scoo(nr: usize, nc: usize, stride: usize, salt: u64) -> CooMatrix {
    let mut row = Vec::new();
    let mut col = Vec::new();
    let mut val = Vec::new();
    for k in (0..nr * nc).step_by(stride) {
        row.push((k / nc) as i64);
        col.push((k % nc) as i64);
        val.push((k as u64 * 31 + salt) as f64);
    }
    CooMatrix::from_triplets(nr, nc, row, col, val).unwrap()
}

#[test]
fn n_threads_synthesize_exactly_once() {
    const THREADS: usize = 8;
    const CONVERTS: usize = 10;
    let engine = Engine::new();
    let src = descriptors::scoo();
    let dst = descriptors::csr();

    std::thread::scope(|s| {
        for t in 0..THREADS {
            let engine = &engine;
            let src = &src;
            let dst = &dst;
            s.spawn(move || {
                let input = AnyMatrix::Coo(sample_scoo(12, 12, 3, t as u64));
                for _ in 0..CONVERTS {
                    let out = engine.convert(src, dst, &input).unwrap();
                    assert!(matches!(out, AnyMatrix::Csr(_)));
                }
            });
        }
    });

    let stats = engine.stats();
    assert_eq!(
        stats.plans_synthesized, 1,
        "{THREADS} threads x {CONVERTS} converts must share one synthesis"
    );
    assert_eq!(stats.cache_misses, 1);
    assert_eq!(stats.cache_hits, (THREADS * CONVERTS) as u64 - 1);
    assert_eq!(stats.conversions, (THREADS * CONVERTS) as u64);
}

/// Regression: `cache_hits` used to be *derived* at snapshot time as
/// `plan_lookups - (plans_synthesized + plan_failures)`, so a snapshot
/// racing an in-flight lookup (lookup counted, outcome not yet) reported
/// phantom hits. Two contracts pin the fix:
///
/// 1. A pair that always fails synthesis can never produce a hit, in any
///    snapshot, no matter when it is taken (a sampler thread asserts
///    this while workers hammer the failing pair — under the derived
///    formula it trips within a few iterations).
/// 2. At rest, hits are exact: after a barrier-aligned stampede on one
///    pair, exactly one lookup missed and every other one hit.
#[test]
fn cache_hit_counter_is_exact_not_derived() {
    const WORKERS: usize = 4;
    const LOOKUPS: usize = 50;
    let engine = Engine::new();
    // DIA has no executable scan, so DIA-as-source always fails
    // synthesis; failures are never cached, so every lookup is a miss.
    let src = descriptors::dia();
    let dst = descriptors::csr();
    use std::sync::atomic::{AtomicUsize, Ordering};
    let remaining = AtomicUsize::new(WORKERS);

    std::thread::scope(|s| {
        for _ in 0..WORKERS {
            s.spawn(|| {
                for _ in 0..LOOKUPS {
                    assert!(engine.plan(&src, &dst).is_err());
                }
                remaining.fetch_sub(1, Ordering::Relaxed);
            });
        }
        // The sampler races snapshots against in-flight lookups until the
        // last worker retires.
        s.spawn(|| {
            while remaining.load(Ordering::Relaxed) > 0 {
                let sample = engine.stats();
                assert_eq!(
                    sample.cache_hits, 0,
                    "a pair that never synthesizes can never hit (sampled mid-flight)"
                );
                std::hint::spin_loop();
            }
        });
    });

    let stats = engine.stats();
    assert_eq!(stats.cache_hits, 0);
    assert_eq!(stats.cache_misses, (WORKERS * LOOKUPS) as u64);
    assert_eq!(stats.plan_lookups, stats.cache_hits + stats.cache_misses);

    // Contract 2: barrier-aligned stampede on a pair that synthesizes.
    const THREADS: usize = 8;
    let engine = Engine::new();
    let src = descriptors::scoo();
    let dst = descriptors::csr();
    let barrier = std::sync::Barrier::new(THREADS);
    std::thread::scope(|s| {
        for _ in 0..THREADS {
            s.spawn(|| {
                barrier.wait();
                engine.plan(&src, &dst).unwrap();
            });
        }
    });
    let stats = engine.stats();
    assert_eq!(stats.plan_lookups, THREADS as u64);
    assert_eq!(stats.cache_misses, 1, "exactly one thread ran the builder");
    assert_eq!(stats.cache_hits, THREADS as u64 - 1, "every other thread hit");
    assert_eq!(stats.plans_synthesized, 1);
}

#[test]
fn batch_matches_sequential_element_for_element() {
    let src = descriptors::scoo();
    let dst = descriptors::csr();
    let inputs: Vec<AnyMatrix> = (0..13)
        .map(|i| AnyMatrix::Coo(sample_scoo(10 + i, 9 + i, 2 + i % 3, i as u64)))
        .collect();

    let sequential = Engine::new();
    let expected: Vec<AnyMatrix> = inputs
        .iter()
        .map(|m| sequential.convert(&src, &dst, m).unwrap())
        .collect();

    for threads in [1, 2, 4, 32] {
        let parallel =
            Engine::with_config(EngineConfig { threads, ..Default::default() });
        let got: Vec<AnyMatrix> = parallel
            .convert_batch(&src, &dst, &inputs)
            .unwrap()
            .into_iter()
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(got, expected, "threads={threads}: order or content diverged");
        let stats = parallel.stats();
        assert_eq!(stats.plans_synthesized, 1, "threads={threads}");
        assert_eq!(stats.conversions, inputs.len() as u64, "threads={threads}");
        assert_eq!(stats.items_failed, 0, "threads={threads}");
        assert_eq!(stats.panics_caught, 0, "threads={threads}");
    }
}

#[test]
fn batch_handles_empty_and_single_inputs() {
    let engine = Engine::new();
    let src = descriptors::scoo();
    let dst = descriptors::csc();
    assert!(engine.convert_batch(&src, &dst, &[]).unwrap().is_empty());
    let one = vec![AnyMatrix::Coo(sample_scoo(7, 7, 2, 0))];
    let got = engine.convert_batch(&src, &dst, &one).unwrap();
    assert_eq!(got.len(), 1);
    assert_eq!(
        *got[0].as_ref().unwrap(),
        engine.convert(&src, &dst, &one[0]).unwrap()
    );
}

/// Regression test: `convert_batch` used to propagate the first error and
/// discard every sibling's completed work. One bad item must now cost
/// exactly one slot — deterministically, at its own index.
#[test]
fn batch_preserves_completed_work_around_a_failing_item() {
    let engine = Engine::with_config(EngineConfig { threads: 4, ..Default::default() });
    let src = descriptors::scoo();
    let dst = descriptors::csr();
    // Item 3 has the wrong container for the source descriptor; its
    // siblings must convert anyway, in order, every time.
    let mut inputs: Vec<AnyMatrix> = (0..6)
        .map(|i| AnyMatrix::Coo(sample_scoo(8, 8, 2, i)))
        .collect();
    let csr = sparse_formats::CsrMatrix::from_coo(&sample_scoo(8, 8, 2, 0));
    inputs.insert(3, AnyMatrix::Csr(csr));

    let first = engine.convert_batch(&src, &dst, &inputs).unwrap();
    let second = engine.convert_batch(&src, &dst, &inputs).unwrap();
    for results in [&first, &second] {
        assert_eq!(results.len(), 7);
        for (i, r) in results.iter().enumerate() {
            if i == 3 {
                let msg = r.as_ref().unwrap_err().to_string();
                assert!(msg.contains("csr"), "{msg}");
            } else {
                assert!(matches!(r.as_ref().unwrap(), AnyMatrix::Csr(_)), "item {i}");
            }
        }
    }
    let errs: Vec<String> = [&first, &second]
        .iter()
        .map(|r| r[3].as_ref().unwrap_err().to_string())
        .collect();
    assert_eq!(errs[0], errs[1], "per-item errors must be deterministic");
    let stats = engine.stats();
    assert_eq!(stats.items_failed, 2, "one failed item per batch run");
    assert_eq!(stats.panics_caught, 0);
}
