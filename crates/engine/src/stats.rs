//! Engine counters: lock-free atomics updated on the hot path, snapshot
//! into a plain [`EngineStats`] value on demand.
//!
//! Every counter increments at exactly one site, at the moment the thing
//! it counts actually happens — no counter is ever *derived* from other
//! counters (an earlier `cache_hits = lookups - misses` formula reported
//! transient garbage whenever a snapshot raced an in-flight lookup).
//! The README's stats-semantics table documents each counter's trigger
//! condition; tests assert the cross-counter invariants.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Internal atomic counters; one instance per [`crate::Engine`].
#[derive(Debug, Default)]
pub(crate) struct StatsInner {
    pub plan_lookups: AtomicU64,
    pub cache_hits: AtomicU64,
    pub cache_misses: AtomicU64,
    pub plans_synthesized: AtomicU64,
    pub plan_failures: AtomicU64,
    pub plans_verified: AtomicU64,
    pub plans_rejected: AtomicU64,
    pub parallel_plans: AtomicU64,
    pub conversions: AtomicU64,
    pub conversions_failed: AtomicU64,
    pub nnz_moved: AtomicU64,
    pub kernels_hit: AtomicU64,
    pub kernel_declines: AtomicU64,
    pub kernel_panics: AtomicU64,
    pub interp_fallbacks: AtomicU64,
    pub synth_nanos: AtomicU64,
    pub verify_nanos: AtomicU64,
    pub validate_nanos: AtomicU64,
    pub exec_nanos: AtomicU64,
    pub kernel_nanos: AtomicU64,
    pub kernel_declined_nanos: AtomicU64,
    pub inputs_rejected: AtomicU64,
    pub items_failed: AtomicU64,
    pub panics_caught: AtomicU64,
    pub degraded_conversions: AtomicU64,
    pub deadline_expired: AtomicU64,
}

impl StatsInner {
    pub fn add(counter: &AtomicU64, v: u64) {
        counter.fetch_add(v, Ordering::Relaxed);
    }

    pub fn snapshot(&self, evictions: u64, cached_plans: usize) -> EngineStats {
        EngineStats {
            plan_lookups: self.plan_lookups.load(Ordering::Relaxed),
            plans_synthesized: self.plans_synthesized.load(Ordering::Relaxed),
            plan_failures: self.plan_failures.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            cache_evictions: evictions,
            cached_plans,
            plans_verified: self.plans_verified.load(Ordering::Relaxed),
            plans_rejected: self.plans_rejected.load(Ordering::Relaxed),
            parallel_plans: self.parallel_plans.load(Ordering::Relaxed),
            conversions: self.conversions.load(Ordering::Relaxed),
            conversions_failed: self.conversions_failed.load(Ordering::Relaxed),
            nnz_moved: self.nnz_moved.load(Ordering::Relaxed),
            kernels_hit: self.kernels_hit.load(Ordering::Relaxed),
            kernel_declines: self.kernel_declines.load(Ordering::Relaxed),
            kernel_panics: self.kernel_panics.load(Ordering::Relaxed),
            interp_fallbacks: self.interp_fallbacks.load(Ordering::Relaxed),
            synth_time: Duration::from_nanos(self.synth_nanos.load(Ordering::Relaxed)),
            verify_time: Duration::from_nanos(self.verify_nanos.load(Ordering::Relaxed)),
            validate_time: Duration::from_nanos(self.validate_nanos.load(Ordering::Relaxed)),
            exec_time: Duration::from_nanos(self.exec_nanos.load(Ordering::Relaxed)),
            kernel_time: Duration::from_nanos(self.kernel_nanos.load(Ordering::Relaxed)),
            kernel_declined_time: Duration::from_nanos(
                self.kernel_declined_nanos.load(Ordering::Relaxed),
            ),
            inputs_rejected: self.inputs_rejected.load(Ordering::Relaxed),
            items_failed: self.items_failed.load(Ordering::Relaxed),
            panics_caught: self.panics_caught.load(Ordering::Relaxed),
            degraded_conversions: self.degraded_conversions.load(Ordering::Relaxed),
            deadline_expired: self.deadline_expired.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time snapshot of an engine's counters.
///
/// Counters are monotone over the engine's lifetime (except
/// `cached_plans`, which tracks current occupancy), so rates can be
/// computed by differencing two snapshots. Each counter has its own
/// atomic incremented at its trigger site; none is derived, so a
/// snapshot taken mid-flight never reports impossible combinations
/// (though unrelated counters may of course be mid-update relative to
/// each other).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineStats {
    /// Plan lookups received (`Engine::plan` calls, including the
    /// implicit one in every convert). `plan_lookups == cache_hits +
    /// cache_misses` once all in-flight lookups resolve.
    pub plan_lookups: u64,
    /// Plans built by the synthesizer (equivalently: cache misses that
    /// succeeded and were admitted). A warm cache leaves this unchanged.
    pub plans_synthesized: u64,
    /// Plan constructions that failed in synthesis/lowering (verifier
    /// rejections count separately under `plans_rejected`).
    pub plan_failures: u64,
    /// Plan lookups answered from the cache without synthesizing.
    /// Counted at the hit site, never derived from other counters.
    pub cache_hits: u64,
    /// Plan lookups that missed the cache: this thread synthesized, or
    /// observed a (briefly cached) synthesis failure.
    pub cache_misses: u64,
    /// Plans dropped to make room under the capacity limit.
    pub cache_evictions: u64,
    /// Plans currently resident in the cache.
    pub cached_plans: usize,
    /// Plans run through the static verifier (only under
    /// `EngineConfig::verify_plans`).
    pub plans_verified: u64,
    /// Plans the verifier rejected with error-severity diagnostics;
    /// rejected plans are never cached.
    pub plans_rejected: u64,
    /// Verified plans with at least one loop nest statically proved free
    /// of loop-carried dependences.
    pub parallel_plans: u64,
    /// Conversions that **completed successfully** (each batch element
    /// counts once). Failed or panicked executions count under
    /// `conversions_failed` instead, and pre-execution refusals under
    /// `inputs_rejected` — an earlier regime counted attempts here,
    /// which made `conversions` disagree with the number of outputs
    /// actually produced.
    pub conversions: u64,
    /// Executions that started and then failed: a typed interpreter
    /// error or a contained panic. Pre-execution refusals (validation,
    /// admission, deadline) are *not* counted here.
    pub conversions_failed: u64,
    /// Total stored entries moved across all successful conversions
    /// (input nnz, padding excluded).
    pub nnz_moved: u64,
    /// Conversions served by a native fused kernel (see
    /// [`crate::Backend`]). Every successful conversion is either a
    /// kernel hit or an interpreter execution: `kernels_hit +
    /// interp_fallbacks == conversions` always holds.
    pub kernels_hit: u64,
    /// Kernel attempts that declined the input (returned an error); the
    /// interpreter answered instead. Declines are not failures — the
    /// conversion's outcome is whatever the interpreter produced.
    pub kernel_declines: u64,
    /// Kernel attempts that panicked; the panic was contained, counted
    /// (also under `panics_caught`), and the interpreter answered
    /// instead. An earlier regime swallowed these entirely.
    pub kernel_panics: u64,
    /// Successful conversions executed by the SPF-IR interpreter —
    /// because no kernel is registered for the pair, the plan was not
    /// verified, the backend is [`crate::Backend::InterpreterOnly`], or
    /// a kernel declined/panicked on the input. Falling back is never an
    /// error.
    pub interp_fallbacks: u64,
    /// Cumulative wall time spent in synthesis + lowering.
    pub synth_time: Duration,
    /// Cumulative wall time spent in static plan verification.
    pub verify_time: Duration,
    /// Cumulative wall time spent validating inputs against source
    /// descriptors (and estimating admission footprints).
    pub validate_time: Duration,
    /// Cumulative wall time spent executing inspectors (summed across
    /// batch workers, so it can exceed wall-clock under parallelism).
    /// Kernel executions are counted separately in `kernel_time`.
    pub exec_time: Duration,
    /// Cumulative wall time spent in native kernels that *hit*
    /// (produced the output).
    pub kernel_time: Duration,
    /// Cumulative wall time spent in kernel attempts that declined or
    /// panicked before the interpreter took over. Separately attributed
    /// so per-conversion stage times sum to wall time — an earlier
    /// regime silently dropped this time on the floor.
    pub kernel_declined_time: Duration,
    /// Inputs refused *before* execution: validation failures
    /// (`RunError::InvalidInput`) plus admission-control refusals
    /// (`RunError::ResourceExhausted`). Refused inputs count neither as
    /// `conversions` nor as `conversions_failed`.
    pub inputs_rejected: u64,
    /// Batch items whose final (post-degradation) result was an error.
    /// Includes rejected, failed, panicked, and deadline-expired items;
    /// single `convert` calls are not counted here.
    pub items_failed: u64,
    /// Worker panics contained at an isolation boundary: per-item
    /// `catch_unwind` around the interpreter, the kernel attempt guard
    /// (also counted under `kernel_panics`), or the plan builder.
    pub panics_caught: u64,
    /// Batch items retried on the sequential path after their
    /// parallel-path attempt failed with a transient error.
    pub degraded_conversions: u64,
    /// Batch items that never started because the per-batch deadline
    /// expired first (`RunError::DeadlineExceeded`).
    pub deadline_expired: u64,
}
