//! The conversion-engine serving layer.
//!
//! `sparse-synthesis` answers "given a source and destination format
//! descriptor, synthesize an inspector and run it once". This crate turns
//! that into a long-lived service:
//!
//! * **Plan caching** — synthesis costs orders of magnitude more than
//!   executing the resulting inspector on small/medium inputs, so the
//!   engine caches compiled [`Conversion`] plans keyed by a *structural*
//!   fingerprint of `(source, destination, options)`. Equal-by-structure
//!   descriptors share a plan regardless of name or instance identity;
//!   a warm cache performs **zero** synthesis. The cache is an LRU with
//!   configurable capacity and synthesize-exactly-once semantics under
//!   concurrency (see [`cache`]).
//! * **Generic dispatch** — [`Engine::convert`] accepts any
//!   [`AnyMatrix`] and returns whichever container the destination
//!   descriptor's structural [`FormatKind`](sparse_formats::FormatKind)
//!   calls for; no per-pair entry points.
//! * **Batch parallelism** — [`Engine::convert_batch`] fans a slice of
//!   inputs over scoped worker threads that share one cached plan
//!   (`Arc<Conversion>`); each execution builds its own interpreter
//!   environment, and outputs come back in input order.
//! * **Plan verification** — with [`EngineConfig::verify_plans`], every
//!   freshly synthesized plan runs through the `sparse-analyze` static
//!   verifier at synthesis time: plans with error-severity findings are
//!   refused (and never cached), and batch fan-out is gated on the
//!   verifier's dependence verdict.
//! * **Native kernel backend** — under [`Backend::Auto`] (the default
//!   policy), conversions whose plan is *statically verified* and whose
//!   inputs are *validated* may be served by a fused hand-optimized
//!   kernel from the [`sparse_synthesis::KernelRegistry`] instead of the
//!   SPF-IR interpreter, keyed by the pair's structural fingerprints.
//!   Kernels are bit-identical to the interpreter (differential-tested);
//!   any miss, decline, or contained kernel panic falls back to the
//!   interpreter transparently — fallback is never an error.
//! * **Observability** — [`Engine::stats`] snapshots hit/miss/eviction
//!   counters, conversion and nnz totals, kernel hits vs interpreter
//!   fallbacks, verification outcomes, and cumulative synthesis vs
//!   execution vs kernel time.
//!
//! ```
//! use sparse_engine::Engine;
//! use sparse_formats::{descriptors, AnyMatrix, CooMatrix};
//!
//! let engine = Engine::new();
//! let coo = CooMatrix::from_triplets(
//!     2, 2, vec![0, 1], vec![1, 0], vec![1.0, 2.0],
//! ).unwrap();
//! let src = descriptors::coo();
//! let dst = descriptors::csr();
//! let out = engine.convert(&src, &dst, &AnyMatrix::Coo(coo)).unwrap();
//! assert!(matches!(out, AnyMatrix::Csr(_)));
//! // A second conversion reuses the cached plan: no synthesis.
//! assert_eq!(engine.stats().plans_synthesized, 1);
//! ```

#![warn(missing_docs)]
// No panicking escape hatches in production code: every failure must
// surface as a typed error (tests may assert freely; see clippy.toml).
#![deny(clippy::unwrap_used)]
#![deny(clippy::expect_used)]

mod admission;
pub mod cache;
mod stats;

use std::fmt;
use std::ops::Deref;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::{Duration, Instant};

use sparse_analyze::AnalysisReport;
use sparse_formats::descriptors::StructuralHasher;
use sparse_formats::{AnyMatrix, AnyTensor, FormatDescriptor};
use sparse_synthesis::{Conversion, RunError, SynthesisOptions};

use cache::{panic_message, Lookup, PlanCache};
use stats::StatsInner;
pub use stats::EngineStats;

/// A cached plan: the compiled conversion plus (when the engine runs with
/// [`EngineConfig::verify_plans`]) the static verification report that
/// admitted it into the cache. Derefs to [`Conversion`], so existing
/// callers of [`Engine::plan`] keep working unchanged.
pub struct Plan {
    /// The compiled conversion.
    pub conversion: Conversion,
    /// The verifier's report; `None` when verification is off. Plans with
    /// error-severity findings are rejected before caching, so a present
    /// report is always clean.
    pub verification: Option<AnalysisReport>,
}

impl Deref for Plan {
    type Target = Conversion;

    fn deref(&self) -> &Conversion {
        &self.conversion
    }
}

/// Errors raised by the engine.
#[derive(Debug)]
pub enum EngineError {
    /// Synthesizing or lowering the plan failed. Carried as the rendered
    /// message because failures are cached briefly and shared across
    /// threads.
    Plan(String),
    /// Running a plan failed (input validation, admission control,
    /// dispatch mismatch, execution, or output validation).
    Run(RunError),
    /// A worker panicked mid-conversion; the panic was contained at the
    /// item boundary (`catch_unwind`) and carries the rendered payload.
    /// The engine — cache, stats, sibling batch items — remains fully
    /// usable.
    Panicked(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Plan(m) => write!(f, "planning failed: {m}"),
            EngineError::Run(e) => write!(f, "conversion failed: {e}"),
            EngineError::Panicked(m) => write!(f, "conversion panicked (contained): {m}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<RunError> for EngineError {
    fn from(e: RunError) -> Self {
        EngineError::Run(e)
    }
}

/// Which execution backend the engine may use for a conversion.
///
/// The selection rule under [`Backend::Auto`] is: structural fingerprint
/// match in the [`sparse_synthesis::KernelRegistry`] **and** the plan
/// carries a clean static-verification report **and** input validation is
/// on — then the native kernel runs; anything else executes on the SPF-IR
/// interpreter. Falling back is never an error, and a kernel that
/// declines an input (or panics) falls back transparently too.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// Prefer a registered native kernel when the plan is verified and
    /// inputs are validated; interpret otherwise (the default).
    #[default]
    Auto,
    /// Always execute on the SPF-IR interpreter, even when a kernel is
    /// registered for the pair. Useful for differential testing and for
    /// benchmarking the interpreter itself.
    InterpreterOnly,
}

/// Engine construction knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Maximum number of cached plans (LRU beyond this). Minimum 1.
    pub capacity: usize,
    /// Worker threads for [`Engine::convert_batch`]. `0` means "use
    /// available parallelism".
    pub threads: usize,
    /// Synthesis options baked into every plan this engine builds (and
    /// into the cache key, so engines with different options never share
    /// a fingerprint).
    pub options: SynthesisOptions,
    /// Run the static verifier on every freshly synthesized plan. Plans
    /// with error-severity findings are refused (and never cached), and
    /// [`Engine::convert_batch`] only fans work across threads when the
    /// verifier proved a parallel loop; unverified engines keep the
    /// historical trust-the-synthesizer behavior.
    pub verify_plans: bool,
    /// Validate every input container against its source descriptor's
    /// quantifier obligations before binding (default `true`). The
    /// static verifier proves plans correct *assuming* those obligations
    /// hold; this is the runtime half of that contract. Disable only for
    /// trusted inputs on hot paths — violations then surface as typed
    /// execution errors at best and silent garbage at worst.
    pub validate_inputs: bool,
    /// Admission-control budget in bytes for the *estimated destination
    /// footprint* of each conversion (default `None` = unlimited).
    /// Conversions whose estimate exceeds the budget are refused with
    /// [`RunError::ResourceExhausted`] before any allocation — e.g. an
    /// antidiagonal matrix headed for DIA (`ND × NR` slots) or a
    /// skew-rowed matrix headed for ELL.
    pub memory_budget: Option<u64>,
    /// Per-batch wall-clock deadline (default `None` = unlimited). Items
    /// not yet *started* when it expires fail with
    /// [`RunError::DeadlineExceeded`]; items already executing run to
    /// completion.
    pub batch_deadline: Option<Duration>,
    /// Execution backend policy (default [`Backend::Auto`]). Kernels only
    /// ever run behind validated inputs *and* verified plans, so engines
    /// with `verify_plans: false` (the default) or `validate_inputs:
    /// false` behave identically under either variant.
    pub backend: Backend,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            capacity: 64,
            threads: 0,
            options: SynthesisOptions::default(),
            verify_plans: false,
            validate_inputs: true,
            memory_budget: None,
            batch_deadline: None,
            backend: Backend::Auto,
        }
    }
}

impl EngineConfig {
    fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        }
    }
}

/// A thread-safe conversion service with a shared plan cache.
///
/// Cheap to share by reference across threads (`&Engine` is all the batch
/// workers use); every method takes `&self`.
pub struct Engine {
    config: EngineConfig,
    cache: PlanCache<Plan>,
    stats: StatsInner,
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new()
    }
}

// The whole point of the engine is to be shared across threads; keep
// that guarantee from regressing (e.g. an `Rc` sneaking back into
// `Conversion`'s comparators).
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Engine>();
};

impl Engine {
    /// An engine with [`EngineConfig::default`].
    pub fn new() -> Self {
        Engine::with_config(EngineConfig::default())
    }

    /// An engine with explicit configuration.
    pub fn with_config(config: EngineConfig) -> Self {
        Engine {
            cache: PlanCache::new(config.capacity),
            config,
            stats: StatsInner::default(),
        }
    }

    /// This engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The cache key for a `(src, dst, options)` triple: both structural
    /// descriptor fingerprints plus the option flags. Exposed so callers
    /// can correlate engine behavior with specific pairs.
    pub fn plan_fingerprint(
        src: &FormatDescriptor,
        dst: &FormatDescriptor,
        options: SynthesisOptions,
    ) -> u64 {
        let mut h = StructuralHasher::new();
        h.write_u64(src.fingerprint());
        h.write_u64(dst.fingerprint());
        h.write_u64(options.optimize as u64);
        h.write_u64(options.binary_search as u64);
        h.finish()
    }

    /// Returns the compiled plan for `src → dst` under this engine's
    /// options, synthesizing at most once per cached lifetime of the
    /// pair. Under [`EngineConfig::verify_plans`], freshly synthesized
    /// plans additionally run through the static verifier, and plans with
    /// error-severity findings are refused *at synthesis time*.
    ///
    /// # Errors
    /// Propagates synthesis/lowering failures and verification rejections
    /// (neither is cached: a later call retries).
    pub fn plan(
        &self,
        src: &FormatDescriptor,
        dst: &FormatDescriptor,
    ) -> Result<Arc<Plan>, EngineError> {
        let options = self.config.options;
        let verify = self.config.verify_plans;
        // The verification flag changes what a cached entry *is* (plans
        // carry their report), so it is part of the key.
        let key = {
            let mut h = StructuralHasher::new();
            h.write_u64(Engine::plan_fingerprint(src, dst, options));
            h.write_u64(verify as u64);
            h.finish()
        };
        StatsInner::add(&self.stats.plan_lookups, 1);
        let lookup = self.cache.get_or_insert_with(key, || {
            // Contain synthesizer/verifier panics here so the engine's
            // counters stay exact; the cache's own catch_unwind is the
            // backstop for builders it doesn't control.
            match catch_unwind(AssertUnwindSafe(|| self.build_plan(src, dst, options, verify))) {
                Ok(built) => built,
                Err(payload) => {
                    StatsInner::add(&self.stats.panics_caught, 1);
                    StatsInner::add(&self.stats.plan_failures, 1);
                    Err(format!("plan construction panicked: {}", panic_message(&*payload)))
                }
            }
        });
        match lookup {
            Lookup::Hit(plan) | Lookup::Miss(plan) => Ok(plan),
            Lookup::Failed(msg) => Err(EngineError::Plan(msg)),
        }
    }

    /// The cache-miss path of [`Engine::plan`]: synthesize, lower, and
    /// (optionally) verify one plan, with stats accounting.
    fn build_plan(
        &self,
        src: &FormatDescriptor,
        dst: &FormatDescriptor,
        options: SynthesisOptions,
        verify: bool,
    ) -> Result<Plan, String> {
        let t0 = Instant::now();
        let built = Conversion::new(src, dst, options).map_err(|e| e.to_string());
        StatsInner::add(&self.stats.synth_nanos, t0.elapsed().as_nanos() as u64);
        match &built {
            Ok(_) => StatsInner::add(&self.stats.plans_synthesized, 1),
            Err(_) => StatsInner::add(&self.stats.plan_failures, 1),
        }
        built.and_then(|conversion| {
            if !verify {
                return Ok(Plan { conversion, verification: None });
            }
            let t1 = Instant::now();
            let report = sparse_analyze::verify(&conversion.synth);
            StatsInner::add(&self.stats.verify_nanos, t1.elapsed().as_nanos() as u64);
            StatsInner::add(&self.stats.plans_verified, 1);
            if !report.is_clean() {
                StatsInner::add(&self.stats.plans_rejected, 1);
                return Err(format!(
                    "plan verification failed for {}:\n{}",
                    report.pair,
                    report.render_errors()
                ));
            }
            if report.has_parallel_loop() {
                StatsInner::add(&self.stats.parallel_plans, 1);
            }
            Ok(Plan { conversion, verification: Some(report) })
        })
    }

    /// Converts one matrix from `src` to `dst`, returning the container
    /// the destination descriptor calls for.
    ///
    /// # Errors
    /// Fails on planning failures, a source/container mismatch, or
    /// execution/validation errors.
    pub fn convert(
        &self,
        src: &FormatDescriptor,
        dst: &FormatDescriptor,
        input: &AnyMatrix,
    ) -> Result<AnyMatrix, EngineError> {
        let plan = self.plan(src, dst)?;
        self.execute_one(&plan, input)
    }

    /// Converts one order-3 tensor from `src` to `dst`.
    ///
    /// # Errors
    /// Same contract as [`Engine::convert`].
    pub fn convert_tensor(
        &self,
        src: &FormatDescriptor,
        dst: &FormatDescriptor,
        input: &AnyTensor,
    ) -> Result<AnyTensor, EngineError> {
        let plan = self.plan(src, dst)?;
        if self.config.validate_inputs {
            if let Err(e) = sparse_formats::validate_tensor(&plan.synth.src, input.as_ref()) {
                StatsInner::add(&self.stats.inputs_rejected, 1);
                return Err(EngineError::Run(e.into()));
            }
        }
        if let Some(budget) = self.config.memory_budget {
            let (what, needed) =
                admission::estimate_tensor_output_bytes(&plan.synth.dst, input.as_ref());
            if needed > budget {
                StatsInner::add(&self.stats.inputs_rejected, 1);
                return Err(EngineError::Run(RunError::ResourceExhausted {
                    what: what.to_string(),
                    needed,
                    budget,
                }));
            }
        }
        let nnz = input.nnz();
        if self.kernel_eligible(&plan) {
            let t0 = Instant::now();
            let hit = catch_unwind(AssertUnwindSafe(|| plan.run_tensor_kernel(input.as_ref())));
            if let Ok(Some(Ok(out))) = hit {
                StatsInner::add(&self.stats.kernel_nanos, t0.elapsed().as_nanos() as u64);
                StatsInner::add(&self.stats.kernels_hit, 1);
                StatsInner::add(&self.stats.conversions, 1);
                StatsInner::add(&self.stats.nnz_moved, nnz as u64);
                return Ok(out);
            }
            // Declined, missing, or panicked: the interpreter is the
            // answer, never an error.
        }
        let t0 = Instant::now();
        let out =
            catch_unwind(AssertUnwindSafe(|| plan.run_tensor_quiet(input.as_ref())));
        StatsInner::add(&self.stats.exec_nanos, t0.elapsed().as_nanos() as u64);
        StatsInner::add(&self.stats.conversions, 1);
        StatsInner::add(&self.stats.interp_fallbacks, 1);
        match out {
            Ok(Ok(out)) => {
                StatsInner::add(&self.stats.nnz_moved, nnz as u64);
                Ok(out)
            }
            Ok(Err(e)) => Err(EngineError::Run(e)),
            Err(payload) => {
                StatsInner::add(&self.stats.panics_caught, 1);
                Err(EngineError::Panicked(panic_message(&*payload)))
            }
        }
    }

    /// Converts a batch of matrices from `src` to `dst` across this
    /// engine's worker threads, with **per-item fault isolation**: every
    /// input gets its own `Result`, in input order, and one corrupted or
    /// panicking item never discards its siblings' completed work.
    ///
    /// The plan is synthesized (or fetched) once and shared; inputs are
    /// split into contiguous chunks, one scoped thread per chunk, and
    /// each conversion builds its own interpreter environment. Worker
    /// panics are contained at the item boundary and surface as
    /// [`EngineError::Panicked`] for that item alone.
    ///
    /// Items whose parallel-path attempt fails with a *transient* error
    /// (execution fault or contained panic — not a validation, admission,
    /// dispatch, or deadline rejection) are retried **once** on the
    /// sequential reference path; each retry counts as a
    /// `degraded_conversions` stat.
    ///
    /// With [`EngineConfig::batch_deadline`] set, items not yet started
    /// when the deadline expires fail with [`RunError::DeadlineExceeded`]
    /// (already-running items complete); expired items are not retried.
    ///
    /// Under [`EngineConfig::verify_plans`], fan-out is gated on the
    /// verifier's dependence verdict: only plans with a statically proved
    /// parallel loop run across multiple workers, everything else falls
    /// back to one worker. (Batch elements are independent either way;
    /// the verdict is the engine's evidence that the plan's inspector
    /// behaves deterministically enough to be worth scheduling freely.)
    ///
    /// # Errors
    /// The outer `Err` is reserved for planning failures (there is no
    /// per-item work to preserve without a plan). Everything after
    /// planning is reported per item.
    pub fn convert_batch(
        &self,
        src: &FormatDescriptor,
        dst: &FormatDescriptor,
        inputs: &[AnyMatrix],
    ) -> Result<Vec<Result<AnyMatrix, EngineError>>, EngineError> {
        let plan = self.plan(src, dst)?;
        if inputs.is_empty() {
            return Ok(Vec::new());
        }
        let deadline = self.config.batch_deadline.map(|d| (d, Instant::now() + d));
        let proved_parallel = match &plan.verification {
            Some(report) => report.has_parallel_loop(),
            None => !self.config.verify_plans,
        };
        let max_workers = if proved_parallel { self.config.effective_threads() } else { 1 };
        let workers = max_workers.clamp(1, inputs.len());

        let mut results: Vec<Result<AnyMatrix, EngineError>> = if workers == 1 {
            inputs.iter().map(|m| self.execute_deadlined(&plan, m, deadline)).collect()
        } else {
            let chunk = inputs.len().div_ceil(workers);
            let mut slots: Vec<Option<Result<AnyMatrix, EngineError>>> = Vec::new();
            slots.resize_with(inputs.len(), || None);
            std::thread::scope(|scope| {
                for (in_chunk, out_chunk) in inputs.chunks(chunk).zip(slots.chunks_mut(chunk)) {
                    let plan = &plan;
                    scope.spawn(move || {
                        for (input, out) in in_chunk.iter().zip(out_chunk.iter_mut()) {
                            *out = Some(self.execute_deadlined(plan, input, deadline));
                        }
                    });
                }
            });
            // Per-item catch_unwind means workers always write their
            // slots; an empty slot would indicate a harness bug, reported
            // as a typed per-item error rather than a panic.
            let filled: Vec<_> = slots
                .into_iter()
                .map(|r| {
                    r.unwrap_or_else(|| {
                        Err(EngineError::Panicked("batch slot never written".to_string()))
                    })
                })
                .collect();
            filled
        };

        // Degraded retry: transient parallel-path failures get one
        // sequential attempt. Deterministic rejections (invalid input,
        // admission, dispatch, deadline) would fail identically and are
        // not retried.
        if workers > 1 {
            for (input, slot) in inputs.iter().zip(results.iter_mut()) {
                if slot.as_ref().is_err_and(transient) {
                    StatsInner::add(&self.stats.degraded_conversions, 1);
                    *slot = self.execute_one(&plan, input);
                }
            }
        }

        let failed = results.iter().filter(|r| r.is_err()).count();
        StatsInner::add(&self.stats.items_failed, failed as u64);
        Ok(results)
    }

    /// One batch item: fail fast with [`RunError::DeadlineExceeded`] when
    /// the batch deadline has already expired, execute otherwise.
    fn execute_deadlined(
        &self,
        plan: &Plan,
        input: &AnyMatrix,
        deadline: Option<(Duration, Instant)>,
    ) -> Result<AnyMatrix, EngineError> {
        if let Some((budget, at)) = deadline {
            if Instant::now() >= at {
                StatsInner::add(&self.stats.deadline_expired, 1);
                return Err(EngineError::Run(RunError::DeadlineExceeded { deadline: budget }));
            }
        }
        self.execute_one(plan, input)
    }

    /// A point-in-time snapshot of this engine's counters.
    pub fn stats(&self) -> EngineStats {
        self.stats.snapshot(self.cache.evictions(), self.cache.len())
    }

    /// Drops every cached plan (counters are kept).
    pub fn clear_cache(&self) {
        self.cache.clear();
    }

    /// The single-item execution path shared by [`Engine::convert`] and
    /// every batch item: validate → admission check → execute under
    /// `catch_unwind`. The panic guard makes this the engine's fault
    /// boundary — nothing downstream of it can take out a caller.
    fn execute_one(&self, plan: &Plan, input: &AnyMatrix) -> Result<AnyMatrix, EngineError> {
        if self.config.validate_inputs {
            if let Err(e) = sparse_formats::validate_matrix(&plan.synth.src, input.as_ref()) {
                StatsInner::add(&self.stats.inputs_rejected, 1);
                return Err(EngineError::Run(e.into()));
            }
        }
        if let Some(budget) = self.config.memory_budget {
            let (what, needed) =
                admission::estimate_matrix_output_bytes(&plan.synth.dst, input.as_ref());
            if needed > budget {
                StatsInner::add(&self.stats.inputs_rejected, 1);
                return Err(EngineError::Run(RunError::ResourceExhausted {
                    what: what.to_string(),
                    needed,
                    budget,
                }));
            }
        }
        let nnz = input.nnz();
        if self.kernel_eligible(plan) {
            let t0 = Instant::now();
            let hit = catch_unwind(AssertUnwindSafe(|| plan.run_matrix_kernel(input.as_ref())));
            if let Ok(Some(Ok(out))) = hit {
                StatsInner::add(&self.stats.kernel_nanos, t0.elapsed().as_nanos() as u64);
                StatsInner::add(&self.stats.kernels_hit, 1);
                StatsInner::add(&self.stats.conversions, 1);
                StatsInner::add(&self.stats.nnz_moved, nnz as u64);
                return Ok(out);
            }
            // Declined, missing, or panicked: fall through to the
            // interpreter — fallback is never an error.
        }
        let t0 = Instant::now();
        let out =
            catch_unwind(AssertUnwindSafe(|| plan.run_matrix_quiet(input.as_ref())));
        StatsInner::add(&self.stats.exec_nanos, t0.elapsed().as_nanos() as u64);
        StatsInner::add(&self.stats.conversions, 1);
        StatsInner::add(&self.stats.interp_fallbacks, 1);
        match out {
            Ok(Ok(out)) => {
                StatsInner::add(&self.stats.nnz_moved, nnz as u64);
                Ok(out)
            }
            Ok(Err(e)) => Err(EngineError::Run(e)),
            Err(payload) => {
                StatsInner::add(&self.stats.panics_caught, 1);
                Err(EngineError::Panicked(panic_message(&*payload)))
            }
        }
    }

    /// The kernel-backend gate: a native kernel may serve a conversion
    /// only when the policy allows it ([`Backend::Auto`]), the inputs
    /// have passed source-descriptor validation, the plan carries a
    /// clean static-verification report, and a kernel is registered for
    /// the pair's structural fingerprints. Everything else interprets.
    fn kernel_eligible(&self, plan: &Plan) -> bool {
        self.config.backend == Backend::Auto
            && self.config.validate_inputs
            && plan.verification.is_some()
            && plan.has_kernel()
    }
}

/// Whether a per-item failure is worth one sequential retry: execution
/// faults and contained panics may be scheduling artifacts; validation,
/// admission, dispatch, and deadline rejections are deterministic
/// functions of the input and would fail identically.
fn transient(e: &EngineError) -> bool {
    match e {
        EngineError::Panicked(_) => true,
        EngineError::Plan(_) => false,
        EngineError::Run(run) => matches!(
            run,
            RunError::Exec(_) | RunError::Format(_) | RunError::MissingOutput(_)
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse_formats::descriptors::{self, ScanInfo};
    use sparse_formats::CooMatrix;
    use spf_ir::order::{Comparator, KeyDim, OrderKey};
    use spf_ir::{parse_relation, parse_set, LinExpr, UfSignature, VarId};

    /// A COO-like destination ordered by a user-defined comparator — the
    /// one catalog mechanism that runs arbitrary caller code inside the
    /// interpreter, and therefore the engine's only genuine panic vector
    /// now that binds and validation are typed-error-complete.
    fn userfn_dst() -> FormatDescriptor {
        let mut ufs = spf_ir::UfEnvironment::new();
        ufs.insert(
            UfSignature::parse("rowx", "{ [x] : 0 <= x < NNZ }", "{ [i] : 0 <= i < NR }", None)
                .unwrap(),
        );
        ufs.insert(
            UfSignature::parse("colx", "{ [x] : 0 <= x < NNZ }", "{ [j] : 0 <= j < NC }", None)
                .unwrap(),
        );
        let mut scan_set =
            parse_set("{ [n, i, j] : i = rowx(n) && j = colx(n) && 0 <= n < NNZ }").unwrap();
        scan_set.simplify();
        FormatDescriptor {
            name: "XCOO".into(),
            rank: 2,
            sparse_to_dense: parse_relation(
                "{ [n, ii, jj] -> [i, j] : rowx(n) = i && colx(n) = j && ii = i && jj = j \
                 && 0 <= n < NNZ }",
            )
            .unwrap(),
            data_access: parse_relation("{ [n, ii, jj] -> [d0] : d0 = n }").unwrap(),
            scan: Some(ScanInfo {
                set: scan_set,
                dense_pos: vec![1, 2],
                data_index: LinExpr::var(VarId(0)),
            }),
            ufs,
            order: Some(OrderKey {
                comparator: Comparator::UserFn("EXPLODES".into()),
                dims: vec![KeyDim::coord(2, 0), KeyDim::coord(2, 1)],
            }),
            data_name: "Ax".into(),
            data_size: vec![LinExpr::sym("NNZ")],
            dim_syms: vec!["NR".into(), "NC".into()],
            nnz_sym: "NNZ".into(),
            extra_syms: vec![],
            coord_ufs: vec![Some("rowx".into()), Some("colx".into())],
            contiguous_data: true,
        }
    }

    #[test]
    fn execution_panic_is_contained_as_typed_error() {
        let engine = Engine::new();
        let mut conversion =
            Conversion::new(&descriptors::scoo(), &userfn_dst(), SynthesisOptions::default())
                .unwrap();
        conversion.register_comparator(
            "EXPLODES",
            Arc::new(|_: &[i64], _: &[i64]| panic!("comparator exploded")),
        );
        let plan = Plan { conversion, verification: None };
        let input = AnyMatrix::Coo(
            CooMatrix::from_triplets(
                4,
                4,
                vec![0, 1, 2, 3],
                vec![1, 0, 3, 2],
                vec![1.0, 2.0, 3.0, 4.0],
            )
            .unwrap(),
        );

        let err = engine.execute_one(&plan, &input).unwrap_err();
        match err {
            EngineError::Panicked(m) => assert!(m.contains("comparator exploded"), "{m}"),
            other => panic!("expected a contained panic, got: {other}"),
        }
        let stats = engine.stats();
        assert_eq!(stats.panics_caught, 1, "the panic must be counted");
        assert_eq!(stats.conversions, 1, "the attempt still counts as a conversion");
        assert_eq!(stats.nnz_moved, 0, "panicked conversions move no nnz");

        // The engine — cache, counters, later converts — survives intact.
        let out = engine
            .convert(&descriptors::scoo(), &descriptors::csr(), &input)
            .unwrap();
        assert!(matches!(out, AnyMatrix::Csr(_)));
        assert_eq!(engine.stats().panics_caught, 1);
    }
}
