//! The conversion-engine serving layer.
//!
//! `sparse-synthesis` answers "given a source and destination format
//! descriptor, synthesize an inspector and run it once". This crate turns
//! that into a long-lived service:
//!
//! * **Plan caching** — synthesis costs orders of magnitude more than
//!   executing the resulting inspector on small/medium inputs, so the
//!   engine caches compiled [`Conversion`] plans keyed by a *structural*
//!   fingerprint of `(source, destination, options)`. Equal-by-structure
//!   descriptors share a plan regardless of name or instance identity;
//!   a warm cache performs **zero** synthesis. The cache is an LRU with
//!   configurable capacity and synthesize-exactly-once semantics under
//!   concurrency (see [`cache`]).
//! * **Generic dispatch** — [`Engine::convert`] accepts any
//!   [`AnyMatrix`] and returns whichever container the destination
//!   descriptor's structural [`FormatKind`](sparse_formats::FormatKind)
//!   calls for; no per-pair entry points.
//! * **Batch parallelism** — [`Engine::convert_batch`] fans a slice of
//!   inputs over scoped worker threads that share one cached plan
//!   (`Arc<Conversion>`); each execution builds its own interpreter
//!   environment, and outputs come back in input order.
//! * **Plan verification** — with [`EngineConfig::verify_plans`], every
//!   freshly synthesized plan runs through the `sparse-analyze` static
//!   verifier at synthesis time: plans with error-severity findings are
//!   refused (and never cached), and batch fan-out is gated on the
//!   verifier's dependence verdict.
//! * **Native kernel backend** — under [`Backend::Auto`] (the default
//!   policy), conversions whose plan is *statically verified* and whose
//!   inputs are *validated* may be served by a fused hand-optimized
//!   kernel from the [`sparse_synthesis::KernelRegistry`] instead of the
//!   SPF-IR interpreter, keyed by the pair's structural fingerprints.
//!   Kernels are bit-identical to the interpreter (differential-tested);
//!   any miss, decline, or contained kernel panic falls back to the
//!   interpreter transparently — fallback is never an error.
//! * **Observability** — [`Engine::stats`] snapshots hit/miss/eviction
//!   counters, conversion and nnz totals, kernel hits vs interpreter
//!   fallbacks, verification outcomes, and cumulative synthesis vs
//!   execution vs kernel time; every counter increments at exactly one
//!   trigger site (see the README's stats-semantics table). Beyond the
//!   counters, the engine emits structured telemetry through the
//!   `sparse-obs` layer: a [`Subscriber`] receives one [`Span`] per
//!   completed stage (`plan`, `verify`, `validate`, `admission`,
//!   `kernel`, `interp`, `extract`), exceptional occurrences land in a
//!   lock-free [`EventRing`] (dumpable via [`Engine::events_dump`]),
//!   per-pair latency/nnz histograms accumulate behind
//!   [`Engine::pair_histograms`], and [`Engine::metrics_text`] renders
//!   everything as a Prometheus-style text page with stable metric
//!   names. The default [`NoopSubscriber`] keeps the instrumented hot
//!   path within noise of the uninstrumented one.
//!
//! ```
//! use sparse_engine::Engine;
//! use sparse_formats::{descriptors, AnyMatrix, CooMatrix};
//!
//! let engine = Engine::new();
//! let coo = CooMatrix::from_triplets(
//!     2, 2, vec![0, 1], vec![1, 0], vec![1.0, 2.0],
//! ).unwrap();
//! let src = descriptors::coo();
//! let dst = descriptors::csr();
//! let out = engine.convert(&src, &dst, &AnyMatrix::Coo(coo)).unwrap();
//! assert!(matches!(out, AnyMatrix::Csr(_)));
//! // A second conversion reuses the cached plan: no synthesis.
//! assert_eq!(engine.stats().plans_synthesized, 1);
//! ```

#![warn(missing_docs)]
// No panicking escape hatches in production code: every failure must
// surface as a typed error (tests may assert freely; see clippy.toml).
#![deny(clippy::unwrap_used)]
#![deny(clippy::expect_used)]

mod admission;
pub mod cache;
mod stats;

use std::fmt;
use std::ops::Deref;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::{Duration, Instant};

use sparse_analyze::AnalysisReport;
use sparse_formats::descriptors::StructuralHasher;
use sparse_formats::{AnyMatrix, AnyTensor, FormatDescriptor};
use sparse_obs::{Event, EventKind, EventRing, PairHistograms, PairSnapshot, Span, Stage};
use sparse_synthesis::{Conversion, RunError, SynthesisOptions};

use cache::{panic_message, Lookup, PlanCache};
use stats::StatsInner;
pub use sparse_obs::{CollectingSubscriber, NoopSubscriber, Subscriber};
pub use stats::EngineStats;

/// A cached plan: the compiled conversion plus (when the engine runs with
/// [`EngineConfig::verify_plans`]) the static verification report that
/// admitted it into the cache. Derefs to [`Conversion`], so existing
/// callers of [`Engine::plan`] keep working unchanged.
pub struct Plan {
    /// The compiled conversion.
    pub conversion: Conversion,
    /// The verifier's report; `None` when verification is off. Plans with
    /// error-severity findings are rejected before caching, so a present
    /// report is always clean.
    pub verification: Option<AnalysisReport>,
    /// The plan's cache key (structural fingerprints of `(src, dst)`,
    /// options, and the verification flag). Spans, events, and per-pair
    /// histograms are keyed by this value so telemetry can be correlated
    /// back to a specific pair.
    pub pair: u64,
}

impl Plan {
    /// A human-readable `"SRC->DST"` label for this plan's pair, used by
    /// the per-pair histograms and the metrics exposition.
    pub fn pair_label(&self) -> String {
        format!("{}->{}", self.conversion.synth.src.name, self.conversion.synth.dst.name)
    }
}

impl Deref for Plan {
    type Target = Conversion;

    fn deref(&self) -> &Conversion {
        &self.conversion
    }
}

/// Errors raised by the engine.
#[derive(Debug)]
pub enum EngineError {
    /// Synthesizing or lowering the plan failed. Carried as the rendered
    /// message because failures are cached briefly and shared across
    /// threads.
    Plan(String),
    /// Running a plan failed (input validation, admission control,
    /// dispatch mismatch, execution, or output validation).
    Run(RunError),
    /// A worker panicked mid-conversion; the panic was contained at the
    /// item boundary (`catch_unwind`) and carries the rendered payload.
    /// The engine — cache, stats, sibling batch items — remains fully
    /// usable.
    Panicked(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Plan(m) => write!(f, "planning failed: {m}"),
            EngineError::Run(e) => write!(f, "conversion failed: {e}"),
            EngineError::Panicked(m) => write!(f, "conversion panicked (contained): {m}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<RunError> for EngineError {
    fn from(e: RunError) -> Self {
        EngineError::Run(e)
    }
}

/// Which execution backend the engine may use for a conversion.
///
/// The selection rule under [`Backend::Auto`] is: structural fingerprint
/// match in the [`sparse_synthesis::KernelRegistry`] **and** the plan
/// carries a clean static-verification report **and** input validation is
/// on — then the native kernel runs; anything else executes on the SPF-IR
/// interpreter. Falling back is never an error, and a kernel that
/// declines an input (or panics) falls back transparently too.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// Prefer a registered native kernel when the plan is verified and
    /// inputs are validated; interpret otherwise (the default).
    #[default]
    Auto,
    /// Always execute on the SPF-IR interpreter, even when a kernel is
    /// registered for the pair. Useful for differential testing and for
    /// benchmarking the interpreter itself.
    InterpreterOnly,
}

/// Engine construction knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Maximum number of cached plans (LRU beyond this). Minimum 1.
    pub capacity: usize,
    /// Worker threads for [`Engine::convert_batch`]. `0` means "use
    /// available parallelism".
    pub threads: usize,
    /// Synthesis options baked into every plan this engine builds (and
    /// into the cache key, so engines with different options never share
    /// a fingerprint).
    pub options: SynthesisOptions,
    /// Run the static verifier on every freshly synthesized plan. Plans
    /// with error-severity findings are refused (and never cached), and
    /// [`Engine::convert_batch`] only fans work across threads when the
    /// verifier proved a parallel loop; unverified engines keep the
    /// historical trust-the-synthesizer behavior.
    pub verify_plans: bool,
    /// Validate every input container against its source descriptor's
    /// quantifier obligations before binding (default `true`). The
    /// static verifier proves plans correct *assuming* those obligations
    /// hold; this is the runtime half of that contract. Disable only for
    /// trusted inputs on hot paths — violations then surface as typed
    /// execution errors at best and silent garbage at worst.
    pub validate_inputs: bool,
    /// Admission-control budget in bytes for the *estimated destination
    /// footprint* of each conversion (default `None` = unlimited).
    /// Conversions whose estimate exceeds the budget are refused with
    /// [`RunError::ResourceExhausted`] before any allocation — e.g. an
    /// antidiagonal matrix headed for DIA (`ND × NR` slots) or a
    /// skew-rowed matrix headed for ELL.
    pub memory_budget: Option<u64>,
    /// Per-batch wall-clock deadline (default `None` = unlimited). Items
    /// not yet *started* when it expires fail with
    /// [`RunError::DeadlineExceeded`]; items already executing run to
    /// completion.
    pub batch_deadline: Option<Duration>,
    /// Execution backend policy (default [`Backend::Auto`]). Kernels only
    /// ever run behind validated inputs *and* verified plans, so engines
    /// with `verify_plans: false` (the default) or `validate_inputs:
    /// false` behave identically under either variant.
    pub backend: Backend,
    /// Capacity of the exceptional-event ring buffer (default 1024).
    /// When full, the oldest event is overwritten and the dropped-event
    /// counter increments; writers never block. Minimum 1.
    pub event_capacity: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            capacity: 64,
            threads: 0,
            options: SynthesisOptions::default(),
            verify_plans: false,
            validate_inputs: true,
            memory_budget: None,
            batch_deadline: None,
            backend: Backend::Auto,
            event_capacity: 1024,
        }
    }
}

impl EngineConfig {
    fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        }
    }
}

/// A thread-safe conversion service with a shared plan cache.
///
/// Cheap to share by reference across threads (`&Engine` is all the batch
/// workers use); every method takes `&self`.
pub struct Engine {
    config: EngineConfig,
    cache: PlanCache<Plan>,
    stats: StatsInner,
    subscriber: Arc<dyn Subscriber>,
    events: EventRing,
    pairs: PairHistograms,
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new()
    }
}

// The whole point of the engine is to be shared across threads; keep
// that guarantee from regressing (e.g. an `Rc` sneaking back into
// `Conversion`'s comparators).
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Engine>();
};

impl Engine {
    /// An engine with [`EngineConfig::default`].
    pub fn new() -> Self {
        Engine::with_config(EngineConfig::default())
    }

    /// An engine with explicit configuration and the default
    /// [`NoopSubscriber`] (counters, event ring, and histograms still
    /// record; only the subscriber callbacks are skipped).
    pub fn with_config(config: EngineConfig) -> Self {
        Engine::with_subscriber(config, Arc::new(NoopSubscriber))
    }

    /// An engine with explicit configuration and a span/event
    /// [`Subscriber`]. The subscriber runs inline on the conversion hot
    /// path (concurrently from every batch worker), so implementations
    /// must be cheap and non-blocking.
    pub fn with_subscriber(config: EngineConfig, subscriber: Arc<dyn Subscriber>) -> Self {
        Engine {
            cache: PlanCache::new(config.capacity),
            events: EventRing::new(config.event_capacity),
            config,
            stats: StatsInner::default(),
            subscriber,
            pairs: PairHistograms::new(),
        }
    }

    /// This engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The cache key for a `(src, dst, options)` triple: both structural
    /// descriptor fingerprints plus the option flags. Exposed so callers
    /// can correlate engine behavior with specific pairs.
    pub fn plan_fingerprint(
        src: &FormatDescriptor,
        dst: &FormatDescriptor,
        options: SynthesisOptions,
    ) -> u64 {
        let mut h = StructuralHasher::new();
        h.write_u64(src.fingerprint());
        h.write_u64(dst.fingerprint());
        h.write_u64(options.optimize as u64);
        h.write_u64(options.binary_search as u64);
        h.finish()
    }

    /// Returns the compiled plan for `src → dst` under this engine's
    /// options, synthesizing at most once per cached lifetime of the
    /// pair. Under [`EngineConfig::verify_plans`], freshly synthesized
    /// plans additionally run through the static verifier, and plans with
    /// error-severity findings are refused *at synthesis time*.
    ///
    /// # Errors
    /// Propagates synthesis/lowering failures and verification rejections
    /// (neither is cached: a later call retries).
    pub fn plan(
        &self,
        src: &FormatDescriptor,
        dst: &FormatDescriptor,
    ) -> Result<Arc<Plan>, EngineError> {
        let options = self.config.options;
        let verify = self.config.verify_plans;
        // The verification flag changes what a cached entry *is* (plans
        // carry their report), so it is part of the key.
        let key = {
            let mut h = StructuralHasher::new();
            h.write_u64(Engine::plan_fingerprint(src, dst, options));
            h.write_u64(verify as u64);
            h.finish()
        };
        StatsInner::add(&self.stats.plan_lookups, 1);
        let t0 = Instant::now();
        let lookup = self.cache.get_or_insert_with(key, || {
            // Contain synthesizer/verifier panics here so the engine's
            // counters stay exact; the cache's own catch_unwind is the
            // backstop for builders it doesn't control.
            match catch_unwind(AssertUnwindSafe(|| self.build_plan(src, dst, options, verify, key)))
            {
                Ok(built) => built,
                Err(payload) => {
                    StatsInner::add(&self.stats.panics_caught, 1);
                    StatsInner::add(&self.stats.plan_failures, 1);
                    self.note(EventKind::PlanFailed, key, 0, 0);
                    Err(format!("plan construction panicked: {}", panic_message(&*payload)))
                }
            }
        });
        // Hits and misses each have their own counter, incremented here
        // at the site where the outcome is known — never derived from
        // `lookups - misses`, which reported transient garbage whenever
        // a snapshot raced an in-flight lookup.
        let out = match lookup {
            Lookup::Hit(plan) => {
                StatsInner::add(&self.stats.cache_hits, 1);
                Ok(plan)
            }
            Lookup::Miss(plan) => {
                StatsInner::add(&self.stats.cache_misses, 1);
                Ok(plan)
            }
            Lookup::Failed(msg) => {
                StatsInner::add(&self.stats.cache_misses, 1);
                Err(EngineError::Plan(msg))
            }
        };
        if self.subscriber.enabled() {
            self.subscriber.span(Span {
                stage: Stage::Plan,
                pair: key,
                nanos: t0.elapsed().as_nanos() as u64,
                ok: out.is_ok(),
            });
        }
        out
    }

    /// The cache-miss path of [`Engine::plan`]: synthesize, lower, and
    /// (optionally) verify one plan, with stats accounting.
    fn build_plan(
        &self,
        src: &FormatDescriptor,
        dst: &FormatDescriptor,
        options: SynthesisOptions,
        verify: bool,
        pair: u64,
    ) -> Result<Plan, String> {
        let t0 = Instant::now();
        let built = Conversion::new(src, dst, options).map_err(|e| e.to_string());
        StatsInner::add(&self.stats.synth_nanos, t0.elapsed().as_nanos() as u64);
        match &built {
            Ok(_) => StatsInner::add(&self.stats.plans_synthesized, 1),
            Err(_) => {
                StatsInner::add(&self.stats.plan_failures, 1);
                self.note(EventKind::PlanFailed, pair, t0.elapsed().as_nanos() as u64, 0);
            }
        }
        built.and_then(|conversion| {
            if !verify {
                return Ok(Plan { conversion, verification: None, pair });
            }
            let t1 = Instant::now();
            let report = sparse_analyze::verify(&conversion.synth);
            let verify_nanos = t1.elapsed().as_nanos() as u64;
            StatsInner::add(&self.stats.verify_nanos, verify_nanos);
            StatsInner::add(&self.stats.plans_verified, 1);
            if self.subscriber.enabled() {
                self.subscriber.span(Span {
                    stage: Stage::Verify,
                    pair,
                    nanos: verify_nanos,
                    ok: report.is_clean(),
                });
            }
            if !report.is_clean() {
                StatsInner::add(&self.stats.plans_rejected, 1);
                self.note(EventKind::PlanRejected, pair, verify_nanos, 0);
                return Err(format!(
                    "plan verification failed for {}:\n{}",
                    report.pair,
                    report.render_errors()
                ));
            }
            if report.has_parallel_loop() {
                StatsInner::add(&self.stats.parallel_plans, 1);
            }
            Ok(Plan { conversion, verification: Some(report), pair })
        })
    }

    /// Records one exceptional occurrence: into the engine's own ring
    /// (always) and out to the subscriber (when enabled).
    fn note(&self, kind: EventKind, pair: u64, nanos: u64, nnz: u64) {
        let event = Event { kind, pair, nanos, nnz };
        self.events.push(event);
        if self.subscriber.enabled() {
            self.subscriber.event(event);
        }
    }

    /// Converts one matrix from `src` to `dst`, returning the container
    /// the destination descriptor calls for.
    ///
    /// # Errors
    /// Fails on planning failures, a source/container mismatch, or
    /// execution/validation errors.
    pub fn convert(
        &self,
        src: &FormatDescriptor,
        dst: &FormatDescriptor,
        input: &AnyMatrix,
    ) -> Result<AnyMatrix, EngineError> {
        let plan = self.plan(src, dst)?;
        self.execute_one(&plan, input)
    }

    /// Converts one order-3 tensor from `src` to `dst`.
    ///
    /// # Errors
    /// Same contract as [`Engine::convert`].
    pub fn convert_tensor(
        &self,
        src: &FormatDescriptor,
        dst: &FormatDescriptor,
        input: &AnyTensor,
    ) -> Result<AnyTensor, EngineError> {
        let plan = self.plan(src, dst)?;
        let pair = plan.pair;
        let nnz = input.nnz() as u64;
        let started = Instant::now();
        if self.config.validate_inputs {
            let t0 = Instant::now();
            let checked = sparse_formats::validate_tensor(&plan.synth.src, input.as_ref());
            self.span_validate(pair, t0.elapsed().as_nanos() as u64, checked.is_ok());
            if let Err(e) = checked {
                StatsInner::add(&self.stats.inputs_rejected, 1);
                self.note(EventKind::InputRejected, pair, 0, nnz);
                return Err(EngineError::Run(e.into()));
            }
        }
        if let Some(budget) = self.config.memory_budget {
            let t0 = Instant::now();
            let (what, needed) =
                admission::estimate_tensor_output_bytes(&plan.synth.dst, input.as_ref());
            self.span_admission(pair, t0.elapsed().as_nanos() as u64, needed <= budget);
            if needed > budget {
                StatsInner::add(&self.stats.inputs_rejected, 1);
                self.note(EventKind::AdmissionRejected, pair, 0, nnz);
                return Err(EngineError::Run(RunError::ResourceExhausted {
                    what: what.to_string(),
                    needed,
                    budget,
                }));
            }
        }
        if self.kernel_eligible(&plan) {
            let t0 = Instant::now();
            let hit = catch_unwind(AssertUnwindSafe(|| plan.run_tensor_kernel(input.as_ref())));
            let kernel_nanos = t0.elapsed().as_nanos() as u64;
            if let Some(out) = self.settle_kernel_attempt(hit, pair, kernel_nanos, nnz) {
                self.pairs.record(
                    pair,
                    || plan.pair_label(),
                    started.elapsed().as_nanos() as u64,
                    nnz,
                );
                return Ok(out);
            }
            // Declined, missing, or panicked: the interpreter is the
            // answer, never an error.
        }
        let t0 = Instant::now();
        let out = catch_unwind(AssertUnwindSafe(|| {
            plan.run_tensor_observed(input.as_ref(), pair, &*self.subscriber)
        }));
        let exec_nanos = t0.elapsed().as_nanos() as u64;
        StatsInner::add(&self.stats.exec_nanos, exec_nanos);
        match out {
            Ok(Ok(out)) => {
                StatsInner::add(&self.stats.conversions, 1);
                StatsInner::add(&self.stats.interp_fallbacks, 1);
                StatsInner::add(&self.stats.nnz_moved, nnz);
                self.pairs.record(
                    pair,
                    || plan.pair_label(),
                    started.elapsed().as_nanos() as u64,
                    nnz,
                );
                Ok(out)
            }
            Ok(Err(e)) => {
                StatsInner::add(&self.stats.conversions_failed, 1);
                self.note(EventKind::RunFailed, pair, exec_nanos, nnz);
                Err(EngineError::Run(e))
            }
            Err(payload) => {
                StatsInner::add(&self.stats.conversions_failed, 1);
                StatsInner::add(&self.stats.panics_caught, 1);
                self.note(EventKind::InterpPanic, pair, exec_nanos, nnz);
                Err(EngineError::Panicked(panic_message(&*payload)))
            }
        }
    }

    /// Converts a batch of matrices from `src` to `dst` across this
    /// engine's worker threads, with **per-item fault isolation**: every
    /// input gets its own `Result`, in input order, and one corrupted or
    /// panicking item never discards its siblings' completed work.
    ///
    /// The plan is synthesized (or fetched) once and shared; inputs are
    /// split into contiguous chunks, one scoped thread per chunk, and
    /// each conversion builds its own interpreter environment. Worker
    /// panics are contained at the item boundary and surface as
    /// [`EngineError::Panicked`] for that item alone.
    ///
    /// Items whose parallel-path attempt fails with a *transient* error
    /// (execution fault or contained panic — not a validation, admission,
    /// dispatch, or deadline rejection) are retried **once** on the
    /// sequential reference path; each retry counts as a
    /// `degraded_conversions` stat.
    ///
    /// With [`EngineConfig::batch_deadline`] set, items not yet started
    /// when the deadline expires fail with [`RunError::DeadlineExceeded`]
    /// (already-running items complete); expired items are not retried.
    ///
    /// Under [`EngineConfig::verify_plans`], fan-out is gated on the
    /// verifier's dependence verdict: only plans with a statically proved
    /// parallel loop run across multiple workers, everything else falls
    /// back to one worker. (Batch elements are independent either way;
    /// the verdict is the engine's evidence that the plan's inspector
    /// behaves deterministically enough to be worth scheduling freely.)
    ///
    /// # Errors
    /// The outer `Err` is reserved for planning failures (there is no
    /// per-item work to preserve without a plan). Everything after
    /// planning is reported per item.
    pub fn convert_batch(
        &self,
        src: &FormatDescriptor,
        dst: &FormatDescriptor,
        inputs: &[AnyMatrix],
    ) -> Result<Vec<Result<AnyMatrix, EngineError>>, EngineError> {
        let plan = self.plan(src, dst)?;
        if inputs.is_empty() {
            return Ok(Vec::new());
        }
        let deadline = self.config.batch_deadline.map(|d| (d, Instant::now() + d));
        let proved_parallel = match &plan.verification {
            Some(report) => report.has_parallel_loop(),
            None => !self.config.verify_plans,
        };
        let max_workers = if proved_parallel { self.config.effective_threads() } else { 1 };
        let workers = max_workers.clamp(1, inputs.len());

        let mut results: Vec<Result<AnyMatrix, EngineError>> = if workers == 1 {
            inputs.iter().map(|m| self.execute_deadlined(&plan, m, deadline)).collect()
        } else {
            let chunk = inputs.len().div_ceil(workers);
            let mut slots: Vec<Option<Result<AnyMatrix, EngineError>>> = Vec::new();
            slots.resize_with(inputs.len(), || None);
            std::thread::scope(|scope| {
                for (in_chunk, out_chunk) in inputs.chunks(chunk).zip(slots.chunks_mut(chunk)) {
                    let plan = &plan;
                    scope.spawn(move || {
                        for (input, out) in in_chunk.iter().zip(out_chunk.iter_mut()) {
                            *out = Some(self.execute_deadlined(plan, input, deadline));
                        }
                    });
                }
            });
            // Per-item catch_unwind means workers always write their
            // slots; an empty slot would indicate a harness bug, reported
            // as a typed per-item error rather than a panic.
            let filled: Vec<_> = slots
                .into_iter()
                .map(|r| {
                    r.unwrap_or_else(|| {
                        Err(EngineError::Panicked("batch slot never written".to_string()))
                    })
                })
                .collect();
            filled
        };

        // Degraded retry: transient parallel-path failures get one
        // sequential attempt. Deterministic rejections (invalid input,
        // admission, dispatch, deadline) would fail identically and are
        // not retried.
        if workers > 1 {
            for (input, slot) in inputs.iter().zip(results.iter_mut()) {
                if slot.as_ref().is_err_and(transient) {
                    StatsInner::add(&self.stats.degraded_conversions, 1);
                    *slot = self.execute_one(&plan, input);
                }
            }
        }

        let failed = results.iter().filter(|r| r.is_err()).count();
        StatsInner::add(&self.stats.items_failed, failed as u64);
        Ok(results)
    }

    /// One batch item: fail fast with [`RunError::DeadlineExceeded`] when
    /// the batch deadline has already expired, execute otherwise.
    fn execute_deadlined(
        &self,
        plan: &Plan,
        input: &AnyMatrix,
        deadline: Option<(Duration, Instant)>,
    ) -> Result<AnyMatrix, EngineError> {
        if let Some((budget, at)) = deadline {
            if Instant::now() >= at {
                StatsInner::add(&self.stats.deadline_expired, 1);
                self.note(EventKind::DeadlineExpired, plan.pair, 0, input.nnz() as u64);
                return Err(EngineError::Run(RunError::DeadlineExceeded { deadline: budget }));
            }
        }
        self.execute_one(plan, input)
    }

    /// A point-in-time snapshot of this engine's counters.
    pub fn stats(&self) -> EngineStats {
        self.stats.snapshot(self.cache.evictions(), self.cache.len())
    }

    /// The engine's exceptional-event ring buffer: kernel panics and
    /// declines, failed runs, rejected inputs, plan failures. Lock-free,
    /// fixed-size, drop-oldest; [`EventRing::dump`] renders it as text.
    pub fn events(&self) -> &EventRing {
        &self.events
    }

    /// A structured-text dump of the exceptional-event log (newest ring
    /// contents plus recorded/dropped totals) for debugging failed
    /// conversions.
    pub fn events_dump(&self) -> String {
        self.events.dump()
    }

    /// Point-in-time copies of every `(src, dst)` pair's latency and nnz
    /// histograms, sorted by pair label. Only *successful* conversions
    /// record here (latency is end-to-end: validation + admission +
    /// execution).
    pub fn pair_histograms(&self) -> Vec<PairSnapshot> {
        self.pairs.snapshot()
    }

    /// This engine's counters, event-log totals, and per-pair histograms
    /// rendered as a Prometheus-style text page. Metric and label names
    /// are **stable API** (snapshot-tested): dashboards may key on them.
    pub fn metrics_text(&self) -> String {
        let s = self.stats();
        let mut page = sparse_obs::expo::MetricsText::new();
        page.counter("engine_plan_lookups_total", "Plan lookups received.", s.plan_lookups);
        page.counter(
            "engine_cache_hits_total",
            "Plan lookups answered from the cache.",
            s.cache_hits,
        );
        page.counter(
            "engine_cache_misses_total",
            "Plan lookups that synthesized or observed a failure.",
            s.cache_misses,
        );
        page.counter(
            "engine_cache_evictions_total",
            "Plans dropped under the capacity limit.",
            s.cache_evictions,
        );
        page.gauge("engine_cached_plans", "Plans currently resident.", s.cached_plans as u64);
        page.counter(
            "engine_plans_synthesized_total",
            "Plans built by the synthesizer.",
            s.plans_synthesized,
        );
        page.counter(
            "engine_plan_failures_total",
            "Plan constructions that failed.",
            s.plan_failures,
        );
        page.counter(
            "engine_plans_verified_total",
            "Plans run through the static verifier.",
            s.plans_verified,
        );
        page.counter(
            "engine_plans_rejected_total",
            "Plans the verifier refused.",
            s.plans_rejected,
        );
        page.counter(
            "engine_parallel_plans_total",
            "Verified plans with a proved parallel loop.",
            s.parallel_plans,
        );
        page.counter(
            "engine_conversions_total",
            "Conversions that completed successfully.",
            s.conversions,
        );
        page.counter(
            "engine_conversions_failed_total",
            "Executions that started and then failed or panicked.",
            s.conversions_failed,
        );
        page.counter(
            "engine_nnz_moved_total",
            "Stored entries moved by successful conversions.",
            s.nnz_moved,
        );
        page.counter(
            "engine_kernels_hit_total",
            "Conversions served by a native kernel.",
            s.kernels_hit,
        );
        page.counter(
            "engine_kernel_declines_total",
            "Kernel attempts that declined the input.",
            s.kernel_declines,
        );
        page.counter(
            "engine_kernel_panics_total",
            "Kernel attempts that panicked (contained).",
            s.kernel_panics,
        );
        page.counter(
            "engine_interp_fallbacks_total",
            "Successful conversions executed by the interpreter.",
            s.interp_fallbacks,
        );
        page.counter(
            "engine_inputs_rejected_total",
            "Inputs refused before execution (validation or admission).",
            s.inputs_rejected,
        );
        page.counter(
            "engine_items_failed_total",
            "Batch items whose final result was an error.",
            s.items_failed,
        );
        page.counter(
            "engine_panics_caught_total",
            "Panics contained at an isolation boundary.",
            s.panics_caught,
        );
        page.counter(
            "engine_degraded_conversions_total",
            "Batch items retried on the sequential path.",
            s.degraded_conversions,
        );
        page.counter(
            "engine_deadline_expired_total",
            "Batch items that never started before the deadline.",
            s.deadline_expired,
        );
        page.counter(
            "engine_synth_nanoseconds_total",
            "Wall time in synthesis and lowering.",
            s.synth_time.as_nanos() as u64,
        );
        page.counter(
            "engine_verify_nanoseconds_total",
            "Wall time in static plan verification.",
            s.verify_time.as_nanos() as u64,
        );
        page.counter(
            "engine_validate_nanoseconds_total",
            "Wall time in input validation and admission estimation.",
            s.validate_time.as_nanos() as u64,
        );
        page.counter(
            "engine_exec_nanoseconds_total",
            "Wall time in interpreter execution.",
            s.exec_time.as_nanos() as u64,
        );
        page.counter(
            "engine_kernel_nanoseconds_total",
            "Wall time in native kernels that hit.",
            s.kernel_time.as_nanos() as u64,
        );
        page.counter(
            "engine_kernel_declined_nanoseconds_total",
            "Wall time in kernel attempts that declined or panicked.",
            s.kernel_declined_time.as_nanos() as u64,
        );
        page.counter(
            "engine_events_recorded_total",
            "Exceptional events recorded.",
            self.events.recorded(),
        );
        page.counter(
            "engine_events_dropped_total",
            "Exceptional events dropped by the ring.",
            self.events.dropped(),
        );
        let pairs = self.pairs.snapshot();
        for (i, snap) in pairs.iter().enumerate() {
            page.summary(
                "engine_pair_latency_nanoseconds",
                "End-to-end successful-conversion latency per pair.",
                &[("pair", &snap.label)],
                &snap.latency_nanos,
                i == 0,
            );
        }
        for (i, snap) in pairs.iter().enumerate() {
            page.summary(
                "engine_pair_nnz",
                "Input stored-entry counts per pair.",
                &[("pair", &snap.label)],
                &snap.nnz,
                i == 0,
            );
        }
        page.finish()
    }

    /// Drops every cached plan (counters are kept).
    pub fn clear_cache(&self) {
        self.cache.clear();
    }

    /// The single-item execution path shared by [`Engine::convert`] and
    /// every batch item: validate → admission check → execute under
    /// `catch_unwind`. The panic guard makes this the engine's fault
    /// boundary — nothing downstream of it can take out a caller.
    fn execute_one(&self, plan: &Plan, input: &AnyMatrix) -> Result<AnyMatrix, EngineError> {
        let pair = plan.pair;
        let nnz = input.nnz() as u64;
        let started = Instant::now();
        if self.config.validate_inputs {
            let t0 = Instant::now();
            let checked = sparse_formats::validate_matrix(&plan.synth.src, input.as_ref());
            self.span_validate(pair, t0.elapsed().as_nanos() as u64, checked.is_ok());
            if let Err(e) = checked {
                StatsInner::add(&self.stats.inputs_rejected, 1);
                self.note(EventKind::InputRejected, pair, 0, nnz);
                return Err(EngineError::Run(e.into()));
            }
        }
        if let Some(budget) = self.config.memory_budget {
            let t0 = Instant::now();
            let (what, needed) =
                admission::estimate_matrix_output_bytes(&plan.synth.dst, input.as_ref());
            self.span_admission(pair, t0.elapsed().as_nanos() as u64, needed <= budget);
            if needed > budget {
                StatsInner::add(&self.stats.inputs_rejected, 1);
                self.note(EventKind::AdmissionRejected, pair, 0, nnz);
                return Err(EngineError::Run(RunError::ResourceExhausted {
                    what: what.to_string(),
                    needed,
                    budget,
                }));
            }
        }
        if self.kernel_eligible(plan) {
            let t0 = Instant::now();
            let hit = catch_unwind(AssertUnwindSafe(|| plan.run_matrix_kernel(input.as_ref())));
            let kernel_nanos = t0.elapsed().as_nanos() as u64;
            if let Some(out) = self.settle_kernel_attempt(hit, pair, kernel_nanos, nnz) {
                self.pairs.record(
                    pair,
                    || plan.pair_label(),
                    started.elapsed().as_nanos() as u64,
                    nnz,
                );
                return Ok(out);
            }
            // Declined, missing, or panicked: fall through to the
            // interpreter — fallback is never an error. The attempt's
            // cost and cause were attributed by `settle_kernel_attempt`.
        }
        let t0 = Instant::now();
        let out = catch_unwind(AssertUnwindSafe(|| {
            plan.run_matrix_observed(input.as_ref(), pair, &*self.subscriber)
        }));
        let exec_nanos = t0.elapsed().as_nanos() as u64;
        StatsInner::add(&self.stats.exec_nanos, exec_nanos);
        match out {
            Ok(Ok(out)) => {
                StatsInner::add(&self.stats.conversions, 1);
                StatsInner::add(&self.stats.interp_fallbacks, 1);
                StatsInner::add(&self.stats.nnz_moved, nnz);
                self.pairs.record(
                    pair,
                    || plan.pair_label(),
                    started.elapsed().as_nanos() as u64,
                    nnz,
                );
                Ok(out)
            }
            Ok(Err(e)) => {
                StatsInner::add(&self.stats.conversions_failed, 1);
                self.note(EventKind::RunFailed, pair, exec_nanos, nnz);
                Err(EngineError::Run(e))
            }
            Err(payload) => {
                StatsInner::add(&self.stats.conversions_failed, 1);
                StatsInner::add(&self.stats.panics_caught, 1);
                self.note(EventKind::InterpPanic, pair, exec_nanos, nnz);
                Err(EngineError::Panicked(panic_message(&*payload)))
            }
        }
    }

    /// Settles one guarded kernel attempt, attributing its cost and
    /// outcome: a hit counts `kernels_hit`/`conversions` and returns the
    /// output; a decline or contained panic counts its own stat, banks
    /// the attempt's wall time under `kernel_declined_time` (so stage
    /// times still sum to wall time), emits an event, and returns `None`
    /// so the caller falls back to the interpreter. An earlier regime
    /// collapsed all three non-hit cases into a silent fall-through,
    /// dropping both the panic count and the attempt's time.
    fn settle_kernel_attempt<T>(
        &self,
        attempt: std::thread::Result<Option<Result<T, RunError>>>,
        pair: u64,
        kernel_nanos: u64,
        nnz: u64,
    ) -> Option<T> {
        let out = match attempt {
            Ok(Some(Ok(out))) => {
                StatsInner::add(&self.stats.kernel_nanos, kernel_nanos);
                StatsInner::add(&self.stats.kernels_hit, 1);
                StatsInner::add(&self.stats.conversions, 1);
                StatsInner::add(&self.stats.nnz_moved, nnz);
                Some(out)
            }
            Ok(Some(Err(_declined))) => {
                StatsInner::add(&self.stats.kernel_declines, 1);
                StatsInner::add(&self.stats.kernel_declined_nanos, kernel_nanos);
                self.note(EventKind::KernelDecline, pair, kernel_nanos, nnz);
                None
            }
            // A kernel registered for the other rank only: nothing ran,
            // nothing to account.
            Ok(None) => return None,
            Err(_payload) => {
                StatsInner::add(&self.stats.kernel_panics, 1);
                StatsInner::add(&self.stats.panics_caught, 1);
                StatsInner::add(&self.stats.kernel_declined_nanos, kernel_nanos);
                self.note(EventKind::KernelPanic, pair, kernel_nanos, nnz);
                None
            }
        };
        if self.subscriber.enabled() {
            self.subscriber.span(Span {
                stage: Stage::Kernel,
                pair,
                nanos: kernel_nanos,
                ok: out.is_some(),
            });
        }
        out
    }

    /// Emits one `validate` stage span (stats time is always banked; the
    /// subscriber call is skipped when disabled).
    fn span_validate(&self, pair: u64, nanos: u64, ok: bool) {
        StatsInner::add(&self.stats.validate_nanos, nanos);
        if self.subscriber.enabled() {
            self.subscriber.span(Span { stage: Stage::Validate, pair, nanos, ok });
        }
    }

    /// Emits one `admission` stage span (estimation time banked under
    /// `validate_time` alongside input validation).
    fn span_admission(&self, pair: u64, nanos: u64, ok: bool) {
        StatsInner::add(&self.stats.validate_nanos, nanos);
        if self.subscriber.enabled() {
            self.subscriber.span(Span { stage: Stage::Admission, pair, nanos, ok });
        }
    }

    /// The kernel-backend gate: a native kernel may serve a conversion
    /// only when the policy allows it ([`Backend::Auto`]), the inputs
    /// have passed source-descriptor validation, the plan carries a
    /// clean static-verification report, and a kernel is registered for
    /// the pair's structural fingerprints. Everything else interprets.
    fn kernel_eligible(&self, plan: &Plan) -> bool {
        self.config.backend == Backend::Auto
            && self.config.validate_inputs
            && plan.verification.is_some()
            && plan.has_kernel()
    }
}

/// Whether a per-item failure is worth one sequential retry: execution
/// faults and contained panics may be scheduling artifacts; validation,
/// admission, dispatch, and deadline rejections are deterministic
/// functions of the input and would fail identically.
fn transient(e: &EngineError) -> bool {
    match e {
        EngineError::Panicked(_) => true,
        EngineError::Plan(_) => false,
        EngineError::Run(run) => matches!(
            run,
            RunError::Exec(_) | RunError::Format(_) | RunError::MissingOutput(_)
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse_formats::descriptors::{self, ScanInfo};
    use sparse_formats::CooMatrix;
    use spf_ir::order::{Comparator, KeyDim, OrderKey};
    use spf_ir::{parse_relation, parse_set, LinExpr, UfSignature, VarId};

    /// A COO-like destination ordered by a user-defined comparator — the
    /// one catalog mechanism that runs arbitrary caller code inside the
    /// interpreter, and therefore the engine's only genuine panic vector
    /// now that binds and validation are typed-error-complete.
    fn userfn_dst() -> FormatDescriptor {
        let mut ufs = spf_ir::UfEnvironment::new();
        ufs.insert(
            UfSignature::parse("rowx", "{ [x] : 0 <= x < NNZ }", "{ [i] : 0 <= i < NR }", None)
                .unwrap(),
        );
        ufs.insert(
            UfSignature::parse("colx", "{ [x] : 0 <= x < NNZ }", "{ [j] : 0 <= j < NC }", None)
                .unwrap(),
        );
        let mut scan_set =
            parse_set("{ [n, i, j] : i = rowx(n) && j = colx(n) && 0 <= n < NNZ }").unwrap();
        scan_set.simplify();
        FormatDescriptor {
            name: "XCOO".into(),
            rank: 2,
            sparse_to_dense: parse_relation(
                "{ [n, ii, jj] -> [i, j] : rowx(n) = i && colx(n) = j && ii = i && jj = j \
                 && 0 <= n < NNZ }",
            )
            .unwrap(),
            data_access: parse_relation("{ [n, ii, jj] -> [d0] : d0 = n }").unwrap(),
            scan: Some(ScanInfo {
                set: scan_set,
                dense_pos: vec![1, 2],
                data_index: LinExpr::var(VarId(0)),
            }),
            ufs,
            order: Some(OrderKey {
                comparator: Comparator::UserFn("EXPLODES".into()),
                dims: vec![KeyDim::coord(2, 0), KeyDim::coord(2, 1)],
            }),
            data_name: "Ax".into(),
            data_size: vec![LinExpr::sym("NNZ")],
            dim_syms: vec!["NR".into(), "NC".into()],
            nnz_sym: "NNZ".into(),
            extra_syms: vec![],
            coord_ufs: vec![Some("rowx".into()), Some("colx".into())],
            contiguous_data: true,
        }
    }

    #[test]
    fn execution_panic_is_contained_as_typed_error() {
        let engine = Engine::new();
        let mut conversion =
            Conversion::new(&descriptors::scoo(), &userfn_dst(), SynthesisOptions::default())
                .unwrap();
        conversion.register_comparator(
            "EXPLODES",
            Arc::new(|_: &[i64], _: &[i64]| panic!("comparator exploded")),
        );
        let plan = Plan { conversion, verification: None, pair: 0 };
        let input = AnyMatrix::Coo(
            CooMatrix::from_triplets(
                4,
                4,
                vec![0, 1, 2, 3],
                vec![1, 0, 3, 2],
                vec![1.0, 2.0, 3.0, 4.0],
            )
            .unwrap(),
        );

        let err = engine.execute_one(&plan, &input).unwrap_err();
        match err {
            EngineError::Panicked(m) => assert!(m.contains("comparator exploded"), "{m}"),
            other => panic!("expected a contained panic, got: {other}"),
        }
        let stats = engine.stats();
        assert_eq!(stats.panics_caught, 1, "the panic must be counted");
        assert_eq!(stats.conversions, 0, "a panicked execution is not a conversion");
        assert_eq!(stats.conversions_failed, 1, "it is a failed conversion");
        assert_eq!(stats.interp_fallbacks, 0, "fallbacks count successes only");
        assert_eq!(stats.nnz_moved, 0, "panicked conversions move no nnz");

        // The engine — cache, counters, later converts — survives intact.
        let out = engine
            .convert(&descriptors::scoo(), &descriptors::csr(), &input)
            .unwrap();
        assert!(matches!(out, AnyMatrix::Csr(_)));
        assert_eq!(engine.stats().panics_caught, 1);
    }

    /// A kernel-eligible plan for scoo -> csr (clean verification report
    /// attached) whose native kernel is replaced by `kernel` through the
    /// fault-injection hook.
    fn kernel_plan(kernel: sparse_synthesis::MatrixKernelFn) -> Plan {
        let mut conversion =
            Conversion::new(&descriptors::scoo(), &descriptors::csr(), SynthesisOptions::default())
                .unwrap();
        let report = sparse_analyze::verify(&conversion.synth);
        assert!(report.is_clean(), "scoo -> csr must verify cleanly");
        conversion.override_matrix_kernel(kernel);
        Plan { conversion, verification: Some(report), pair: 42 }
    }

    fn sorted_input() -> AnyMatrix {
        AnyMatrix::Coo(
            CooMatrix::from_triplets(
                4,
                4,
                vec![0, 1, 2, 3],
                vec![1, 0, 3, 2],
                vec![1.0, 2.0, 3.0, 4.0],
            )
            .unwrap(),
        )
    }

    /// Regression: a panicking kernel used to be swallowed by the
    /// `if let Ok(Some(Ok(..)))` fall-through — no `panics_caught`, no
    /// event, no time attributed. The fallback behavior (interpreter
    /// answers, caller sees success) is pinned unchanged.
    #[test]
    fn panicking_kernel_is_counted_and_falls_back() {
        let engine = Engine::new();
        let plan = kernel_plan(|_| panic!("kernel exploded"));
        assert!(engine.kernel_eligible(&plan), "the test must exercise the kernel gate");

        let out = engine.execute_one(&plan, &sorted_input()).unwrap();
        assert!(matches!(out, AnyMatrix::Csr(_)), "fallback must still answer");
        let stats = engine.stats();
        assert_eq!(stats.kernel_panics, 1, "the kernel panic must be counted");
        assert_eq!(stats.panics_caught, 1, "and roll up into panics_caught");
        assert_eq!(stats.kernels_hit, 0);
        assert_eq!(stats.conversions, 1, "the interpreter completed the conversion");
        assert_eq!(stats.interp_fallbacks, 1);
        assert_eq!(stats.conversions_failed, 0, "a contained kernel panic is not a failure");
        assert!(engine.events_dump().contains("kernel-panic"), "{}", engine.events_dump());
    }

    /// Regression: a declining kernel's probe time used to be dropped on
    /// the floor (`t0` was only banked on a hit), so per-conversion stage
    /// times did not sum to wall time.
    #[test]
    fn declining_kernel_time_is_attributed() {
        let engine = Engine::new();
        let plan = kernel_plan(|_| {
            std::thread::sleep(Duration::from_millis(5));
            Err(RunError::Unsupported("declined by test".into()))
        });

        let out = engine.execute_one(&plan, &sorted_input()).unwrap();
        assert!(matches!(out, AnyMatrix::Csr(_)));
        let stats = engine.stats();
        assert_eq!(stats.kernel_declines, 1);
        assert_eq!(stats.kernels_hit, 0);
        assert_eq!(stats.kernel_time, Duration::ZERO, "no hit, no kernel_time");
        assert!(
            stats.kernel_declined_time >= Duration::from_millis(5),
            "the declined attempt's {:?} must be attributed",
            stats.kernel_declined_time
        );
        assert_eq!(stats.conversions, 1);
        assert_eq!(stats.interp_fallbacks, 1);
        assert_eq!(stats.panics_caught, 0, "declining is not a panic");
        assert!(engine.events_dump().contains("kernel-decline"), "{}", engine.events_dump());
    }
}
