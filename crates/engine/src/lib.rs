//! The conversion-engine serving layer.
//!
//! `sparse-synthesis` answers "given a source and destination format
//! descriptor, synthesize an inspector and run it once". This crate turns
//! that into a long-lived service:
//!
//! * **Plan caching** — synthesis costs orders of magnitude more than
//!   executing the resulting inspector on small/medium inputs, so the
//!   engine caches compiled [`Conversion`] plans keyed by a *structural*
//!   fingerprint of `(source, destination, options)`. Equal-by-structure
//!   descriptors share a plan regardless of name or instance identity;
//!   a warm cache performs **zero** synthesis. The cache is an LRU with
//!   configurable capacity and synthesize-exactly-once semantics under
//!   concurrency (see [`cache`]).
//! * **Generic dispatch** — [`Engine::convert`] accepts any
//!   [`AnyMatrix`] and returns whichever container the destination
//!   descriptor's structural [`FormatKind`](sparse_formats::FormatKind)
//!   calls for; no per-pair entry points.
//! * **Batch parallelism** — [`Engine::convert_batch`] fans a slice of
//!   inputs over scoped worker threads that share one cached plan
//!   (`Arc<Conversion>`); each execution builds its own interpreter
//!   environment, and outputs come back in input order.
//! * **Plan verification** — with [`EngineConfig::verify_plans`], every
//!   freshly synthesized plan runs through the `sparse-analyze` static
//!   verifier at synthesis time: plans with error-severity findings are
//!   refused (and never cached), and batch fan-out is gated on the
//!   verifier's dependence verdict.
//! * **Observability** — [`Engine::stats`] snapshots hit/miss/eviction
//!   counters, conversion and nnz totals, verification outcomes, and
//!   cumulative synthesis vs execution time.
//!
//! ```
//! use sparse_engine::Engine;
//! use sparse_formats::{descriptors, AnyMatrix, CooMatrix};
//!
//! let engine = Engine::new();
//! let coo = CooMatrix::from_triplets(
//!     2, 2, vec![0, 1], vec![1, 0], vec![1.0, 2.0],
//! ).unwrap();
//! let src = descriptors::coo();
//! let dst = descriptors::csr();
//! let out = engine.convert(&src, &dst, &AnyMatrix::Coo(coo)).unwrap();
//! assert!(matches!(out, AnyMatrix::Csr(_)));
//! // A second conversion reuses the cached plan: no synthesis.
//! assert_eq!(engine.stats().plans_synthesized, 1);
//! ```

#![warn(missing_docs)]

pub mod cache;
mod stats;

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;
use std::time::Instant;

use sparse_analyze::AnalysisReport;
use sparse_formats::descriptors::StructuralHasher;
use sparse_formats::{AnyMatrix, AnyTensor, FormatDescriptor};
use sparse_synthesis::{Conversion, RunError, SynthesisOptions};

use cache::{Lookup, PlanCache};
use stats::StatsInner;
pub use stats::EngineStats;

/// A cached plan: the compiled conversion plus (when the engine runs with
/// [`EngineConfig::verify_plans`]) the static verification report that
/// admitted it into the cache. Derefs to [`Conversion`], so existing
/// callers of [`Engine::plan`] keep working unchanged.
pub struct Plan {
    /// The compiled conversion.
    pub conversion: Conversion,
    /// The verifier's report; `None` when verification is off. Plans with
    /// error-severity findings are rejected before caching, so a present
    /// report is always clean.
    pub verification: Option<AnalysisReport>,
}

impl Deref for Plan {
    type Target = Conversion;

    fn deref(&self) -> &Conversion {
        &self.conversion
    }
}

/// Errors raised by the engine.
#[derive(Debug)]
pub enum EngineError {
    /// Synthesizing or lowering the plan failed. Carried as the rendered
    /// message because failures are cached briefly and shared across
    /// threads.
    Plan(String),
    /// Running a plan failed (dispatch mismatch, execution, or output
    /// validation).
    Run(RunError),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Plan(m) => write!(f, "planning failed: {m}"),
            EngineError::Run(e) => write!(f, "conversion failed: {e}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<RunError> for EngineError {
    fn from(e: RunError) -> Self {
        EngineError::Run(e)
    }
}

/// Engine construction knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Maximum number of cached plans (LRU beyond this). Minimum 1.
    pub capacity: usize,
    /// Worker threads for [`Engine::convert_batch`]. `0` means "use
    /// available parallelism".
    pub threads: usize,
    /// Synthesis options baked into every plan this engine builds (and
    /// into the cache key, so engines with different options never share
    /// a fingerprint).
    pub options: SynthesisOptions,
    /// Run the static verifier on every freshly synthesized plan. Plans
    /// with error-severity findings are refused (and never cached), and
    /// [`Engine::convert_batch`] only fans work across threads when the
    /// verifier proved a parallel loop; unverified engines keep the
    /// historical trust-the-synthesizer behavior.
    pub verify_plans: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            capacity: 64,
            threads: 0,
            options: SynthesisOptions::default(),
            verify_plans: false,
        }
    }
}

impl EngineConfig {
    fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        }
    }
}

/// A thread-safe conversion service with a shared plan cache.
///
/// Cheap to share by reference across threads (`&Engine` is all the batch
/// workers use); every method takes `&self`.
pub struct Engine {
    config: EngineConfig,
    cache: PlanCache<Plan>,
    stats: StatsInner,
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new()
    }
}

// The whole point of the engine is to be shared across threads; keep
// that guarantee from regressing (e.g. an `Rc` sneaking back into
// `Conversion`'s comparators).
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Engine>();
};

impl Engine {
    /// An engine with [`EngineConfig::default`].
    pub fn new() -> Self {
        Engine::with_config(EngineConfig::default())
    }

    /// An engine with explicit configuration.
    pub fn with_config(config: EngineConfig) -> Self {
        Engine {
            cache: PlanCache::new(config.capacity),
            config,
            stats: StatsInner::default(),
        }
    }

    /// This engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The cache key for a `(src, dst, options)` triple: both structural
    /// descriptor fingerprints plus the option flags. Exposed so callers
    /// can correlate engine behavior with specific pairs.
    pub fn plan_fingerprint(
        src: &FormatDescriptor,
        dst: &FormatDescriptor,
        options: SynthesisOptions,
    ) -> u64 {
        let mut h = StructuralHasher::new();
        h.write_u64(src.fingerprint());
        h.write_u64(dst.fingerprint());
        h.write_u64(options.optimize as u64);
        h.write_u64(options.binary_search as u64);
        h.finish()
    }

    /// Returns the compiled plan for `src → dst` under this engine's
    /// options, synthesizing at most once per cached lifetime of the
    /// pair. Under [`EngineConfig::verify_plans`], freshly synthesized
    /// plans additionally run through the static verifier, and plans with
    /// error-severity findings are refused *at synthesis time*.
    ///
    /// # Errors
    /// Propagates synthesis/lowering failures and verification rejections
    /// (neither is cached: a later call retries).
    pub fn plan(
        &self,
        src: &FormatDescriptor,
        dst: &FormatDescriptor,
    ) -> Result<Arc<Plan>, EngineError> {
        let options = self.config.options;
        let verify = self.config.verify_plans;
        // The verification flag changes what a cached entry *is* (plans
        // carry their report), so it is part of the key.
        let key = {
            let mut h = StructuralHasher::new();
            h.write_u64(Engine::plan_fingerprint(src, dst, options));
            h.write_u64(verify as u64);
            h.finish()
        };
        StatsInner::add(&self.stats.plan_lookups, 1);
        let lookup = self.cache.get_or_insert_with(key, || {
            let t0 = Instant::now();
            let built = Conversion::new(src, dst, options).map_err(|e| e.to_string());
            StatsInner::add(&self.stats.synth_nanos, t0.elapsed().as_nanos() as u64);
            match &built {
                Ok(_) => StatsInner::add(&self.stats.plans_synthesized, 1),
                Err(_) => StatsInner::add(&self.stats.plan_failures, 1),
            }
            built.and_then(|conversion| {
                if !verify {
                    return Ok(Plan { conversion, verification: None });
                }
                let t1 = Instant::now();
                let report = sparse_analyze::verify(&conversion.synth);
                StatsInner::add(&self.stats.verify_nanos, t1.elapsed().as_nanos() as u64);
                StatsInner::add(&self.stats.plans_verified, 1);
                if !report.is_clean() {
                    StatsInner::add(&self.stats.plans_rejected, 1);
                    return Err(format!(
                        "plan verification failed for {}:\n{}",
                        report.pair,
                        report.render_errors()
                    ));
                }
                if report.has_parallel_loop() {
                    StatsInner::add(&self.stats.parallel_plans, 1);
                }
                Ok(Plan { conversion, verification: Some(report) })
            })
        });
        match lookup {
            Lookup::Hit(plan) | Lookup::Miss(plan) => Ok(plan),
            Lookup::Failed(msg) => Err(EngineError::Plan(msg)),
        }
    }

    /// Converts one matrix from `src` to `dst`, returning the container
    /// the destination descriptor calls for.
    ///
    /// # Errors
    /// Fails on planning failures, a source/container mismatch, or
    /// execution/validation errors.
    pub fn convert(
        &self,
        src: &FormatDescriptor,
        dst: &FormatDescriptor,
        input: &AnyMatrix,
    ) -> Result<AnyMatrix, EngineError> {
        let plan = self.plan(src, dst)?;
        self.execute_one(&plan, input)
    }

    /// Converts one order-3 tensor from `src` to `dst`.
    ///
    /// # Errors
    /// Same contract as [`Engine::convert`].
    pub fn convert_tensor(
        &self,
        src: &FormatDescriptor,
        dst: &FormatDescriptor,
        input: &AnyTensor,
    ) -> Result<AnyTensor, EngineError> {
        let plan = self.plan(src, dst)?;
        let nnz = input.nnz();
        let t0 = Instant::now();
        let out = plan.run_tensor(input.as_ref()).map(|(out, _)| out);
        StatsInner::add(&self.stats.exec_nanos, t0.elapsed().as_nanos() as u64);
        StatsInner::add(&self.stats.conversions, 1);
        StatsInner::add(&self.stats.nnz_moved, nnz as u64);
        Ok(out?)
    }

    /// Converts a batch of matrices from `src` to `dst` across this
    /// engine's worker threads.
    ///
    /// The plan is synthesized (or fetched) once and shared; inputs are
    /// split into contiguous chunks, one scoped thread per chunk, and
    /// each conversion builds its own interpreter environment. Outputs
    /// are returned **in input order** regardless of scheduling; on
    /// multiple failures the lowest-index error wins, so results are
    /// deterministic either way.
    ///
    /// Under [`EngineConfig::verify_plans`], fan-out is gated on the
    /// verifier's dependence verdict: only plans with a statically proved
    /// parallel loop run across multiple workers, everything else falls
    /// back to one worker. (Batch elements are independent either way;
    /// the verdict is the engine's evidence that the plan's inspector
    /// behaves deterministically enough to be worth scheduling freely.)
    ///
    /// # Errors
    /// Fails on planning failure or the first (by index) per-element
    /// failure.
    pub fn convert_batch(
        &self,
        src: &FormatDescriptor,
        dst: &FormatDescriptor,
        inputs: &[AnyMatrix],
    ) -> Result<Vec<AnyMatrix>, EngineError> {
        let plan = self.plan(src, dst)?;
        if inputs.is_empty() {
            return Ok(Vec::new());
        }
        let proved_parallel = match &plan.verification {
            Some(report) => report.has_parallel_loop(),
            None => !self.config.verify_plans,
        };
        let max_workers = if proved_parallel { self.config.effective_threads() } else { 1 };
        let workers = max_workers.clamp(1, inputs.len());
        if workers == 1 {
            return inputs.iter().map(|m| self.execute_one(&plan, m)).collect();
        }

        let chunk = inputs.len().div_ceil(workers);
        let mut results: Vec<Option<Result<AnyMatrix, EngineError>>> = Vec::new();
        results.resize_with(inputs.len(), || None);
        std::thread::scope(|scope| {
            for (in_chunk, out_chunk) in inputs.chunks(chunk).zip(results.chunks_mut(chunk)) {
                let plan = &plan;
                scope.spawn(move || {
                    for (input, out) in in_chunk.iter().zip(out_chunk.iter_mut()) {
                        *out = Some(self.execute_one(plan, input));
                    }
                });
            }
        });
        results
            .into_iter()
            .map(|r| r.expect("every batch slot is written by its worker"))
            .collect()
    }

    /// A point-in-time snapshot of this engine's counters.
    pub fn stats(&self) -> EngineStats {
        self.stats.snapshot(self.cache.evictions(), self.cache.len())
    }

    /// Drops every cached plan (counters are kept).
    pub fn clear_cache(&self) {
        self.cache.clear();
    }

    fn execute_one(
        &self,
        plan: &Conversion,
        input: &AnyMatrix,
    ) -> Result<AnyMatrix, EngineError> {
        let nnz = input.nnz();
        let t0 = Instant::now();
        let out = plan.run_matrix(input.as_ref()).map(|(out, _)| out);
        StatsInner::add(&self.stats.exec_nanos, t0.elapsed().as_nanos() as u64);
        StatsInner::add(&self.stats.conversions, 1);
        StatsInner::add(&self.stats.nnz_moved, nnz as u64);
        Ok(out?)
    }
}
