//! Admission control: pre-conversion output-footprint estimation.
//!
//! Some destination layouts amplify storage dramatically — DIA
//! materializes `ND × NR` slots for `ND` *distinct diagonals* (a single
//! antidiagonal matrix of `n` nonzeros needs `n²` slots), and ELL pads
//! every row to the *maximum* row population. A serving engine must
//! refuse such blow-ups up front rather than OOM the process mid-batch,
//! so when [`crate::EngineConfig::memory_budget`] is set, every
//! conversion first runs through these estimators and is rejected with
//! `RunError::ResourceExhausted` when the estimate exceeds the budget.
//!
//! Estimates are **lower bounds on the destination container's resident
//! bytes** computed from a single `O(nnz)` pass over the input (distinct
//! diagonal count for DIA, max row population for ELL, plain nnz
//! otherwise). Arithmetic saturates, so adversarial dimensions report
//! `u64::MAX` instead of wrapping past the budget.

use std::collections::HashSet;

use sparse_formats::{FormatDescriptor, FormatKind, MatrixRef, TensorRef};

const IDX: u64 = std::mem::size_of::<i64>() as u64; // one stored index
const VAL: u64 = std::mem::size_of::<f64>() as u64; // one stored value

/// Calls `f(i, j)` for every stored entry of `m`, total on *any* field
/// state: every array access is bounds-guarded, so a corrupt container
/// (validation disabled) yields a partial walk, never a panic.
fn for_each_coord(m: MatrixRef<'_>, mut f: impl FnMut(i64, i64)) {
    match m {
        MatrixRef::Coo(c) => {
            for (&i, &j) in c.row.iter().zip(&c.col) {
                f(i, j);
            }
        }
        MatrixRef::MortonCoo(mc) => {
            for (&i, &j) in mc.coo.row.iter().zip(&mc.coo.col) {
                f(i, j);
            }
        }
        MatrixRef::Csr(c) => {
            for w in 0..c.nr {
                let (Some(&s), Some(&e)) = (c.rowptr.get(w), c.rowptr.get(w + 1)) else {
                    return;
                };
                let (s, e) = (s.max(0) as usize, e.max(0) as usize);
                for &j in c.col.get(s..e.min(c.col.len())).unwrap_or(&[]) {
                    f(w as i64, j);
                }
            }
        }
        MatrixRef::Csc(c) => {
            for w in 0..c.nc {
                let (Some(&s), Some(&e)) = (c.colptr.get(w), c.colptr.get(w + 1)) else {
                    return;
                };
                let (s, e) = (s.max(0) as usize, e.max(0) as usize);
                for &i in c.row.get(s..e.min(c.row.len())).unwrap_or(&[]) {
                    f(i, w as i64);
                }
            }
        }
        MatrixRef::Dia(d) => {
            let nd = d.nd();
            for i in 0..d.nr {
                for (k, &o) in d.off.iter().enumerate() {
                    let j = i as i64 + o;
                    if j < 0 || j >= d.nc as i64 {
                        continue;
                    }
                    let occupied = i
                        .checked_mul(nd)
                        .and_then(|base| base.checked_add(k))
                        .and_then(|slot| d.data.get(slot))
                        .is_some_and(|&v| v != 0.0);
                    if occupied {
                        f(i as i64, j);
                    }
                }
            }
        }
        MatrixRef::Ell(e) => {
            for i in 0..e.nr {
                for s in 0..e.width {
                    let j = i
                        .checked_mul(e.width)
                        .and_then(|base| base.checked_add(s))
                        .and_then(|slot| e.col.get(slot))
                        .copied()
                        .unwrap_or(-1);
                    if j >= 0 {
                        f(i as i64, j);
                    }
                }
            }
        }
    }
}

/// Estimated resident bytes of the container `dst`'s kind would
/// materialize for `input`, with a short label for error messages.
pub(crate) fn estimate_matrix_output_bytes(
    dst: &FormatDescriptor,
    input: MatrixRef<'_>,
) -> (&'static str, u64) {
    let (nr, nc) = input.dims();
    let nnz = {
        let mut n = 0u64;
        for_each_coord(input, |_, _| n += 1);
        n
    };
    match dst.kind() {
        FormatKind::Dia => {
            // ND × NR data slots plus the offset array.
            let mut diagonals = HashSet::new();
            for_each_coord(input, |i, j| {
                diagonals.insert(j - i);
            });
            let nd = diagonals.len() as u64;
            ("dia output", nd.saturating_mul(nr as u64).saturating_mul(VAL).saturating_add(nd * IDX))
        }
        FormatKind::Ell => {
            // NR × W col + data slots, W = max row population. Entries
            // with out-of-range rows are skipped outright: clamping a
            // negative index onto row 0 (as an earlier version did)
            // inflated row 0's population and with it the whole estimate,
            // causing spurious admission refusals on corrupt inputs that
            // validation would have rejected with a precise error.
            let mut counts = vec![0u64; nr];
            for_each_coord(input, |i, _| {
                if let Ok(i) = usize::try_from(i) {
                    if let Some(c) = counts.get_mut(i) {
                        *c += 1;
                    }
                }
            });
            let width = counts.iter().copied().max().unwrap_or(0);
            ("ell output", width.saturating_mul(nr as u64).saturating_mul(IDX + VAL))
        }
        FormatKind::Csr => {
            ("csr output", nnz.saturating_mul(IDX + VAL).saturating_add((nr as u64 + 1) * IDX))
        }
        FormatKind::Csc => {
            ("csc output", nnz.saturating_mul(IDX + VAL).saturating_add((nc as u64 + 1) * IDX))
        }
        // Coordinate destinations (and anything unrecognized, which the
        // dispatch layer will refuse anyway): row + col + val per entry.
        _ => ("coordinate output", nnz.saturating_mul(2 * IDX + VAL)),
    }
}

/// Tensor analogue of [`estimate_matrix_output_bytes`]: every shipped
/// order-3 destination is coordinate storage (three index arrays + data).
pub(crate) fn estimate_tensor_output_bytes(
    _dst: &FormatDescriptor,
    input: TensorRef<'_>,
) -> (&'static str, u64) {
    let nnz = match input {
        TensorRef::Coo3(t) => t.val.len() as u64,
        TensorRef::MortonCoo3(t) => t.coo.val.len() as u64,
    };
    ("coordinate tensor output", nnz.saturating_mul(3 * IDX + VAL))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse_formats::descriptors;
    use sparse_formats::{CooMatrix, CsrMatrix};

    /// An antidiagonal matrix: every nonzero on its own diagonal — the
    /// canonical DIA blow-up.
    fn antidiagonal(n: usize) -> CooMatrix {
        let row: Vec<i64> = (0..n as i64).collect();
        let col: Vec<i64> = (0..n as i64).rev().collect();
        let val = vec![1.0; n];
        CooMatrix::from_triplets(n, n, row, col, val).unwrap()
    }

    #[test]
    fn dia_estimate_scales_with_distinct_diagonals() {
        let m = antidiagonal(64);
        let (what, bytes) =
            estimate_matrix_output_bytes(&descriptors::dia(), MatrixRef::Coo(&m));
        assert_eq!(what, "dia output");
        // 64 diagonals × 64 rows × 8 bytes of data, plus offsets.
        assert_eq!(bytes, 64 * 64 * 8 + 64 * 8);
        // A same-nnz tridiagonal-ish matrix is orders of magnitude smaller.
        let banded = CooMatrix::from_triplets(
            64,
            64,
            (0..64).collect(),
            (0..64).collect(),
            vec![1.0; 64],
        )
        .unwrap();
        let (_, small) =
            estimate_matrix_output_bytes(&descriptors::dia(), MatrixRef::Coo(&banded));
        assert_eq!(small, 64 * 8 + 8);
    }

    #[test]
    fn ell_estimate_scales_with_max_row_population() {
        // One heavy row forces every row to its width.
        let m = CooMatrix::from_triplets(
            32,
            32,
            vec![0; 16],
            (0..16).collect(),
            vec![1.0; 16],
        )
        .unwrap();
        let (what, bytes) =
            estimate_matrix_output_bytes(&descriptors::ell(), MatrixRef::Coo(&m));
        assert_eq!(what, "ell output");
        assert_eq!(bytes, 16 * 32 * 16);
    }

    #[test]
    fn compressed_and_coordinate_estimates_follow_nnz() {
        let m = antidiagonal(10);
        let csr = CsrMatrix::from_coo(&m);
        let (_, bytes) =
            estimate_matrix_output_bytes(&descriptors::csc(), MatrixRef::Csr(&csr));
        assert_eq!(bytes, 10 * 16 + 11 * 8);
        let (_, bytes) =
            estimate_matrix_output_bytes(&descriptors::coo(), MatrixRef::Csr(&csr));
        assert_eq!(bytes, 10 * 24);
    }

    /// Regression: the ELL estimator used to clamp negative row indices
    /// onto row 0 (`i.max(0)`), inflating row 0's population and the
    /// whole width-based estimate. Out-of-range coordinates must be
    /// skipped, not relocated.
    #[test]
    fn ell_estimate_skips_out_of_range_rows() {
        // Two entries in row 1 set the true width to 2; three corrupt
        // entries with negative rows used to pile onto row 0 and push the
        // estimate to width 3.
        let mut m = CooMatrix::from_triplets(
            4,
            8,
            vec![1, 1, 2, 2, 2],
            vec![0, 1, 2, 3, 4],
            vec![1.0; 5],
        )
        .unwrap();
        m.row[2] = -1;
        m.row[3] = -7;
        m.row[4] = -2;
        let (what, bytes) =
            estimate_matrix_output_bytes(&descriptors::ell(), MatrixRef::Coo(&m));
        assert_eq!(what, "ell output");
        // width 2 × 4 rows × (8-byte col + 8-byte val) — the clamped
        // regime reported 3 × 4 × 16 = 192 instead.
        assert_eq!(bytes, 2 * 4 * 16);
        // Rows past the end are likewise skipped rather than miscounted.
        m.row[2] = 1_000;
        let (_, bytes) =
            estimate_matrix_output_bytes(&descriptors::ell(), MatrixRef::Coo(&m));
        assert_eq!(bytes, 2 * 4 * 16);
    }

    #[test]
    fn walker_is_total_on_corrupt_containers() {
        // Out-of-bounds rowptr windows must clamp the walk, not panic.
        // (The emitted coordinates are garbage — estimation quality on a
        // corrupt container is irrelevant; the engine validates first.)
        let mut csr = CsrMatrix::from_coo(&antidiagonal(8));
        csr.rowptr[3] = 1_000_000;
        let mut n = 0usize;
        for_each_coord(MatrixRef::Csr(&csr), |_, _| n += 1);
        // Every window is clamped to the col array, so the walk is
        // bounded by nr * col.len() even with absurd pointers.
        assert!(n <= 8 * 8);
    }
}
