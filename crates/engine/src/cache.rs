//! The plan cache: synthesized conversions keyed by structural
//! fingerprint, with LRU eviction and synthesize-exactly-once semantics
//! under concurrency.
//!
//! A cache entry is an [`Arc<PlanSlot>`]: the slot is inserted into the
//! map *before* synthesis runs, and the plan itself lives in a
//! [`OnceLock`] inside the slot. Concurrent requests for the same key
//! therefore all land on one slot, exactly one of them runs synthesis
//! inside `get_or_init`, and the rest block on the lock rather than
//! duplicating the (expensive) synthesis work. The outer [`RwLock`] is
//! only held for map lookups/inserts, never across synthesis.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// One cache entry. `last_used` is a logical timestamp from the cache's
/// global tick, bumped on every touch; eviction removes the minimum.
struct PlanSlot<T> {
    cell: OnceLock<Result<Arc<T>, String>>,
    last_used: AtomicU64,
}

/// Outcome of a [`PlanCache::get_or_insert_with`] call, so the caller can
/// account hits/misses precisely.
pub enum Lookup<T> {
    /// The plan was already cached (the call may still have blocked
    /// briefly while another thread finished synthesizing it).
    Hit(Arc<T>),
    /// This call ran the builder.
    Miss(Arc<T>),
    /// The builder failed (this call's, or a concurrent one whose failure
    /// this call observed). Failed entries are evicted so later calls
    /// retry.
    Failed(String),
}

/// An LRU map from `u64` fingerprints to shared plans.
pub struct PlanCache<T> {
    map: RwLock<HashMap<u64, Arc<PlanSlot<T>>>>,
    capacity: usize,
    tick: AtomicU64,
    evictions: AtomicU64,
}

impl<T> PlanCache<T> {
    /// A cache holding at most `capacity` plans (minimum 1).
    pub fn new(capacity: usize) -> Self {
        PlanCache {
            map: RwLock::new(HashMap::new()),
            capacity: capacity.max(1),
            tick: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Maximum number of cached plans.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of plans evicted so far.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Number of currently cached plans.
    pub fn len(&self) -> usize {
        self.map.read().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached plan.
    pub fn clear(&self) {
        self.map.write().unwrap_or_else(|e| e.into_inner()).clear();
    }

    fn touch(&self, slot: &PlanSlot<T>) {
        let now = self.tick.fetch_add(1, Ordering::Relaxed);
        slot.last_used.store(now, Ordering::Relaxed);
    }

    /// Returns the plan for `key`, running `build` to create it if (and
    /// only if) no other call has. Exactly one builder runs per cached
    /// lifetime of a key, no matter how many threads race.
    pub fn get_or_insert_with(
        &self,
        key: u64,
        build: impl FnOnce() -> Result<T, String>,
    ) -> Lookup<T> {
        // Fast path: shared lock only. The lock only ever guards map
        // operations (never synthesis), so a panic elsewhere cannot leave
        // the map inconsistent; recover from poisoning instead of
        // propagating it to every later caller.
        let existing = {
            let map = self.map.read().unwrap_or_else(|e| e.into_inner());
            map.get(&key).cloned()
        };
        let slot = match existing {
            Some(slot) => slot,
            None => {
                let mut map = self.map.write().unwrap_or_else(|e| e.into_inner());
                // Recheck under the exclusive lock: another thread may
                // have inserted while we upgraded.
                if let Some(slot) = map.get(&key) {
                    Arc::clone(slot)
                } else {
                    if map.len() >= self.capacity {
                        evict_lru(&mut map);
                        self.evictions.fetch_add(1, Ordering::Relaxed);
                    }
                    let slot = Arc::new(PlanSlot {
                        cell: OnceLock::new(),
                        last_used: AtomicU64::new(0),
                    });
                    map.insert(key, Arc::clone(&slot));
                    slot
                }
            }
        };
        self.touch(&slot);

        let mut built_here = false;
        let outcome = slot
            .cell
            .get_or_init(|| {
                built_here = true;
                // Contain builder panics at the slot boundary: a panic
                // must become a Failed (evicted, retryable) entry, not
                // abort the requesting thread while other threads block
                // on this OnceLock.
                match std::panic::catch_unwind(std::panic::AssertUnwindSafe(build)) {
                    Ok(built) => built.map(Arc::new),
                    Err(payload) => {
                        Err(format!("plan builder panicked: {}", panic_message(&*payload)))
                    }
                }
            })
            .clone();
        match outcome {
            Ok(plan) if built_here => Lookup::Miss(plan),
            Ok(plan) => Lookup::Hit(plan),
            Err(msg) => {
                // Drop the failed slot so a later request can retry
                // (whoever gets there first removes it; identity-checked
                // so we never evict a fresh replacement slot).
                let mut map = self.map.write().unwrap_or_else(|e| e.into_inner());
                if map.get(&key).is_some_and(|s| Arc::ptr_eq(s, &slot)) {
                    map.remove(&key);
                }
                Lookup::Failed(msg)
            }
        }
    }
}

/// Renders a caught panic payload (the `Box<dyn Any>` from
/// `catch_unwind`) as best-effort text for a typed error.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn evict_lru<T>(map: &mut HashMap<u64, Arc<PlanSlot<T>>>) {
    if let Some((&victim, _)) = map
        .iter()
        .min_by_key(|(_, slot)| slot.last_used.load(Ordering::Relaxed))
    {
        map.remove(&victim);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(cache: &PlanCache<u32>, key: u64, value: u32) -> (u32, bool) {
        match cache.get_or_insert_with(key, || Ok(value)) {
            Lookup::Hit(v) => (*v, true),
            Lookup::Miss(v) => (*v, false),
            Lookup::Failed(e) => panic!("unexpected failure: {e}"),
        }
    }

    #[test]
    fn caches_and_reports_hits() {
        let cache = PlanCache::new(4);
        assert_eq!(get(&cache, 1, 10), (10, false));
        // Second call must return the cached value, not rebuild.
        assert_eq!(get(&cache, 1, 99), (10, true));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn evicts_least_recently_used() {
        let cache = PlanCache::new(2);
        get(&cache, 1, 10);
        get(&cache, 2, 20);
        get(&cache, 1, 10); // key 2 is now LRU
        get(&cache, 3, 30); // evicts key 2
        assert_eq!(cache.evictions(), 1);
        assert_eq!(get(&cache, 1, 99), (10, true), "key 1 survived");
        assert_eq!(get(&cache, 2, 21), (21, false), "key 2 was evicted");
    }

    #[test]
    fn failed_builds_are_retried() {
        let cache = PlanCache::new(2);
        let Lookup::Failed(msg) = cache.get_or_insert_with(7, || Err("boom".into())) else {
            panic!("expected failure");
        };
        assert_eq!(msg, "boom");
        assert!(cache.is_empty());
        assert_eq!(get(&cache, 7, 70), (70, false), "retried after failure");
    }

    #[test]
    fn panicking_builder_becomes_failed_entry_and_is_retryable() {
        let cache = PlanCache::new(2);
        let Lookup::Failed(msg) = cache.get_or_insert_with(9, || panic!("builder exploded"))
        else {
            panic!("expected a contained failure");
        };
        assert!(msg.contains("builder exploded"), "{msg}");
        assert!(cache.is_empty(), "panicked builds must not occupy the cache");
        assert_eq!(get(&cache, 9, 90), (90, false), "retried after the panic");
    }

    #[test]
    fn poisoned_map_lock_is_recovered_not_propagated() {
        let cache = PlanCache::new(4);
        get(&cache, 1, 10);
        // Poison the map lock the hard way: a thread dies while holding
        // the write guard. (No engine code path panics under the lock —
        // this simulates a future regression.)
        let poisoner = std::thread::scope(|s| {
            s.spawn(|| {
                let _guard = cache.map.write().unwrap();
                panic!("thread died holding the cache lock");
            })
            .join()
        });
        assert!(poisoner.is_err(), "the poisoning thread must have panicked");
        assert!(cache.map.is_poisoned());
        // Every subsequent operation still works on the intact map state.
        assert_eq!(get(&cache, 1, 99), (10, true), "cached entry survives poisoning");
        assert_eq!(get(&cache, 2, 20), (20, false), "fresh inserts survive poisoning");
        assert_eq!(cache.len(), 2);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn concurrent_requests_build_once() {
        use std::sync::atomic::AtomicUsize;
        let cache = PlanCache::new(4);
        let builds = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..50 {
                        match cache.get_or_insert_with(1, || {
                            builds.fetch_add(1, Ordering::Relaxed);
                            Ok(42u32)
                        }) {
                            Lookup::Hit(v) | Lookup::Miss(v) => assert_eq!(*v, 42),
                            Lookup::Failed(e) => panic!("{e}"),
                        }
                    }
                });
            }
        });
        assert_eq!(builds.load(Ordering::Relaxed), 1);
    }
}
