//! Parser round-trips over the full format catalog: every descriptor's
//! sparse-to-dense map, data-access relation, and scan set must parse
//! back from its own printed form to a structurally equal value, with
//! printing a fixed point of `print . parse . print`. These are the
//! relations the synthesizer actually composes, so the textual surface
//! syntax and the in-memory algebra must agree on all of them — not just
//! on the random expressions the property tests generate.

use proptest::prelude::*;
use spf_ir::constraint::Constraint;
use spf_ir::expr::{Atom, LinExpr, VarId};
use spf_ir::formula::{Conjunction, Relation, Set};
use spf_ir::parser::{parse_relation, parse_set};
use sparse_formats::{descriptors, FormatDescriptor};

fn catalog() -> Vec<FormatDescriptor> {
    vec![
        descriptors::coo(),
        descriptors::scoo(),
        descriptors::csr(),
        descriptors::csc(),
        descriptors::dia(),
        descriptors::mcoo(),
        descriptors::ell(),
        descriptors::bcsr(2, 2),
        descriptors::coo3(),
        descriptors::scoo3(),
        descriptors::mcoo3(),
    ]
}

fn roundtrip_relation(desc: &str, what: &str, r: &Relation) {
    let text = r.to_string();
    let back = parse_relation(&text)
        .unwrap_or_else(|e| panic!("{desc}.{what}: reparse `{text}`: {e}"));
    assert_eq!(&back, r, "{desc}.{what}: `{text}` parsed to a different relation");
    assert_eq!(back.to_string(), text, "{desc}.{what}: printing is not a fixed point");
}

fn roundtrip_set(desc: &str, what: &str, s: &Set) {
    let text = s.to_string();
    let back =
        parse_set(&text).unwrap_or_else(|e| panic!("{desc}.{what}: reparse `{text}`: {e}"));
    assert_eq!(&back, s, "{desc}.{what}: `{text}` parsed to a different set");
    assert_eq!(back.to_string(), text, "{desc}.{what}: printing is not a fixed point");
}

#[test]
fn catalog_relations_roundtrip() {
    for d in catalog() {
        roundtrip_relation(&d.name, "sparse_to_dense", &d.sparse_to_dense);
        roundtrip_relation(&d.name, "data_access", &d.data_access);
        if let Some(scan) = &d.scan {
            roundtrip_set(&d.name, "scan.set", &scan.set);
        }
    }
}

/// Renamed descriptors (the `with_suffix` path that disambiguates
/// same-format conversions like `coo -> scoo`) round-trip too: renaming
/// only touches UF and symbol names, never the syntax.
#[test]
fn renamed_catalog_relations_roundtrip() {
    for d in catalog() {
        let renamed = d.with_suffix("_rt");
        roundtrip_relation(&renamed.name, "sparse_to_dense", &renamed.sparse_to_dense);
        roundtrip_relation(&renamed.name, "data_access", &renamed.data_access);
    }
}

/// Strategy for small affine expressions over two tuple variables and a
/// symbol.
fn arb_affine() -> impl Strategy<Value = LinExpr> {
    let atom = prop_oneof![
        (0u32..2).prop_map(|i| Atom::Var(VarId(i))),
        Just(Atom::Sym("N".to_string())),
    ];
    (-4i64..=4, proptest::collection::vec((-3i64..=3, atom), 0..3)).prop_map(|(c, terms)| {
        let mut e = LinExpr { constant: c, terms };
        e.canonicalize();
        e
    })
}

/// Strategy for affine constraints over two tuple variables and a symbol.
fn arb_constraint() -> impl Strategy<Value = Constraint> {
    (arb_affine(), arb_affine(), proptest::bool::ANY).prop_map(
        |(a, b, eq)| {
            if eq {
                Constraint::eq(a, b)
            } else {
                Constraint::le(a, b)
            }
        },
    )
}

proptest! {
    /// Unions of random conjunctions survive print/parse — the union
    /// syntax path the single-conjunction property tests never hit.
    #[test]
    fn union_sets_print_parse_stable(
        conjs in proptest::collection::vec(
            proptest::collection::vec(arb_constraint(), 0..4), 1..4),
    ) {
        let mut s = Set::from_conjunctions(
            vec!["i".into(), "j".into()],
            conjs
                .into_iter()
                .map(|cs| {
                    let mut conj = Conjunction::new(2);
                    for c in cs {
                        conj.add(c);
                    }
                    conj
                })
                .collect(),
        );
        s.simplify();
        prop_assume!(!s.is_empty());
        let text = s.to_string();
        let mut back =
            parse_set(&text).unwrap_or_else(|e| panic!("reparse `{text}`: {e}"));
        back.simplify();
        prop_assert_eq!(s.to_string(), back.to_string());
    }
}
