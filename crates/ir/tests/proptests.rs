//! Property-based tests for the set/relation algebra.

use proptest::prelude::*;
use spf_ir::constraint::Constraint;
use spf_ir::expr::{Atom, LinExpr, UfCall, VarId};
use spf_ir::formula::{Conjunction, Relation};
use spf_ir::order::{KeyDim, OrderKey};
use spf_ir::parser::{parse_relation, parse_set};

/// Strategy for small affine expressions over `n_vars` variables and a
/// couple of symbolic constants.
fn arb_affine(n_vars: u32) -> impl Strategy<Value = LinExpr> {
    let atom = prop_oneof![
        (0..n_vars).prop_map(|i| Atom::Var(VarId(i))),
        prop_oneof![Just("N".to_string()), Just("M".to_string())].prop_map(Atom::Sym),
    ];
    (
        -5i64..=5,
        proptest::collection::vec((-4i64..=4, atom), 0..4),
    )
        .prop_map(|(c, terms)| {
            let mut e = LinExpr { constant: c, terms };
            e.canonicalize();
            e
        })
}

/// Strategy for expressions that may contain one level of UF calls.
fn arb_expr(n_vars: u32) -> impl Strategy<Value = LinExpr> {
    let uf = (
        prop_oneof![Just("f".to_string()), Just("g".to_string())],
        arb_affine(n_vars),
    )
        .prop_map(|(name, arg)| Atom::Uf(UfCall::new(name, vec![arg])));
    let atom = prop_oneof![
        3 => (0..n_vars).prop_map(|i| Atom::Var(VarId(i))),
        1 => Just(Atom::Sym("N".to_string())),
        1 => uf,
    ];
    (
        -5i64..=5,
        proptest::collection::vec((-3i64..=3, atom), 0..4),
    )
        .prop_map(|(c, terms)| {
            let mut e = LinExpr { constant: c, terms };
            e.canonicalize();
            e
        })
}

fn arb_constraint(n_vars: u32) -> impl Strategy<Value = Constraint> {
    (arb_expr(n_vars), arb_expr(n_vars), proptest::bool::ANY).prop_map(|(a, b, eq)| {
        if eq {
            Constraint::eq(a, b)
        } else {
            Constraint::le(a, b)
        }
    })
}

fn arb_relation(in_ar: u32, out_ar: u32) -> impl Strategy<Value = Relation> {
    proptest::collection::vec(arb_constraint(in_ar + out_ar), 0..6).prop_map(move |cs| {
        let mut conj = Conjunction::new(in_ar + out_ar);
        for c in cs {
            conj.add(c);
        }
        let in_names = (0..in_ar).map(|k| format!("x{k}")).collect();
        let out_names = (0..out_ar).map(|k| format!("y{k}")).collect();
        Relation::from_conjunctions(in_names, out_names, vec![conj])
    })
}

proptest! {
    /// `add` and `sub` are inverse operations.
    #[test]
    fn expr_add_sub_roundtrip(a in arb_expr(3), b in arb_expr(3)) {
        prop_assert_eq!(a.add(&b).sub(&b), a);
    }

    /// Scaling distributes over addition.
    #[test]
    fn expr_scale_distributes(a in arb_expr(3), b in arb_expr(3), k in -4i64..=4) {
        prop_assert_eq!(a.add(&b).scaled(k), a.scaled(k).add(&b.scaled(k)));
    }

    /// Substituting a variable by itself is the identity.
    #[test]
    fn substitute_identity(a in arb_expr(3)) {
        let id = LinExpr::var(VarId(1));
        prop_assert_eq!(a.substitute_var(VarId(1), &id), a);
    }

    /// `inverse` is an involution (up to simplification).
    #[test]
    fn relation_double_inverse(r in arb_relation(2, 2)) {
        let mut twice = r.inverse().inverse();
        let mut orig = r;
        twice.simplify();
        orig.simplify();
        prop_assert_eq!(twice, orig);
    }

    /// Printing then parsing a simplified relation is stable.
    #[test]
    fn relation_print_parse_stable(r in arb_relation(2, 1)) {
        let mut a = r;
        a.simplify();
        // Only printable (non-empty) relations round-trip through text.
        prop_assume!(!a.conjunctions().is_empty());
        let text = a.to_string();
        let mut b = parse_relation(&text).unwrap_or_else(|e| panic!("reparse `{text}`: {e}"));
        b.simplify();
        prop_assert_eq!(a.to_string(), b.to_string());
    }

    /// Sets survive a print/parse/simplify round trip textually.
    #[test]
    fn set_print_parse_stable(cs in proptest::collection::vec(arb_constraint(2), 0..5)) {
        let mut conj = Conjunction::new(2);
        for c in cs { conj.add(c); }
        let mut s = spf_ir::Set::from_conjunctions(
            vec!["i".into(), "j".into()], vec![conj]);
        s.simplify();
        prop_assume!(!s.is_empty());
        let text = s.to_string();
        let mut back = parse_set(&text).unwrap_or_else(|e| panic!("reparse `{text}`: {e}"));
        back.simplify();
        prop_assert_eq!(s.to_string(), back.to_string());
    }

    /// Lexicographic order keys imply exactly their prefixes.
    #[test]
    fn order_key_prefix_implication(len_a in 1usize..4, len_b in 1usize..4) {
        let a = OrderKey::lex((0..len_a).map(|d| KeyDim::coord(4, d)).collect());
        let b = OrderKey::lex((0..len_b).map(|d| KeyDim::coord(4, d)).collect());
        prop_assert_eq!(a.implies(&b), len_b <= len_a);
    }

    /// Key dimensions evaluate as the affine form they print.
    #[test]
    fn key_dim_affine_eval(c0 in -3i64..=3, c1 in -3i64..=3, k in -5i64..=5,
                           x in 0usize..100, y in 0usize..100) {
        let d = KeyDim::affine(vec![c0, c1], k);
        prop_assert_eq!(d.eval(&[x, y]), c0 * x as i64 + c1 * y as i64 + k);
    }
}

/// Composing with the identity relation is the identity (textual check on
/// a concrete family of function relations).
#[test]
fn compose_with_identity() {
    let id = parse_relation("{ [a, b] -> [c, d] : c = a && d = b }").unwrap();
    let r = parse_relation(
        "{ [n] -> [i, j] : i = row(n) && j = col(n) && 0 <= n < NNZ }",
    )
    .unwrap();
    let mut left = id.compose(&r);
    left.simplify();
    let mut plain = r.clone();
    plain.simplify();
    // Same constraint structure: i = row(n), j = col(n), bounds.
    assert_eq!(
        left.conjunctions()[0].constraints.len(),
        plain.conjunctions()[0].constraints.len()
    );
}
