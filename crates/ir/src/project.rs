//! Variable projection via substitution and Fourier–Motzkin elimination.
//!
//! In the sparse polyhedral setting, a variable may occur inside the
//! arguments of an uninterpreted function; such occurrences cannot be
//! eliminated symbolically. Projection is still always *sound* here because
//! eliminating a tuple variable just demotes it to an existential; the
//! elimination below is an optimization that removes the existential when
//! equalities or unit-coefficient inequalities allow.

use crate::constraint::{classify_for_var, Constraint};
use crate::expr::{LinExpr, VarId};
use crate::formula::{Conjunction, Set};

/// Attempts to eliminate existential variable `v` from `conj`.
///
/// Returns `true` when the variable no longer occurs (it was eliminated via
/// an equality or exact Fourier–Motzkin); `false` when it must remain as an
/// existential (it occurs inside a UF argument or with non-unit
/// coefficients).
pub fn eliminate_existential(conj: &mut Conjunction, v: VarId) -> bool {
    // Equality substitution is handled by `Conjunction::simplify`; here we
    // handle the pure-inequality case with unit coefficients, which is
    // exact over the integers.
    let (lower, upper, eqs, opaque) = classify_for_var(&conj.constraints, v);
    if !eqs.is_empty() || !opaque.is_empty() {
        return false;
    }
    if lower.is_empty() && upper.is_empty() {
        return true; // v is unconstrained; nothing mentions it.
    }
    let unit = lower
        .iter()
        .chain(upper.iter())
        .all(|c| c.expr().coeff_of_var(v).abs() == 1);
    if !unit {
        return false;
    }
    let mut kept: Vec<Constraint> = conj
        .constraints
        .iter()
        .filter(|c| !c.uses_var(v))
        .cloned()
        .collect();
    // For every (lower, upper) pair: lo: v >= L  (expr = v - L >= 0),
    // up: v <= U (expr = U - v >= 0); combining gives U - L >= 0.
    for lo in &lower {
        for up in &upper {
            let combined = lo.expr().add(up.expr());
            debug_assert_eq!(combined.coeff_of_var(v), 0);
            kept.push(Constraint::Geq(combined));
        }
    }
    conj.constraints = kept;
    true
}

/// Projects out the tuple variable at position `pos`, returning a set over
/// the remaining tuple. The variable is eliminated when possible and kept
/// as an existential otherwise (which is still an exact projection).
pub fn project_out(set: &Set, pos: usize) -> Set {
    assert!(pos < set.arity() as usize, "projection position out of range");
    let mut tuple = set.tuple().to_vec();
    let removed_name = tuple.remove(pos);
    let new_arity = tuple.len() as u32;
    let mut out = Vec::new();
    for c in set.conjunctions() {
        let mut nc = Conjunction::new(new_arity);
        // New existential order: old existentials first, then the demoted
        // tuple variable last.
        for name in c.exists() {
            nc.fresh_exist(name.clone());
        }
        let demoted = nc.fresh_exist(removed_name.clone());
        let old_arity = set.arity();
        for con in &c.constraints {
            nc.add(con.map_vars(&mut |v: VarId| {
                let id = if v.0 as usize == pos {
                    demoted
                } else if (v.0 as usize) < pos {
                    v
                } else if v.0 < old_arity {
                    VarId(v.0 - 1)
                } else {
                    // existential: shift down by one (tuple shrank) keeping
                    // relative order before `demoted`.
                    VarId(v.0 - 1)
                };
                LinExpr::var(id)
            }));
        }
        if !nc.simplify() {
            continue;
        }
        // `simplify` may have eliminated `demoted` via an equality; if not,
        // try Fourier–Motzkin on whatever existential still carries its
        // name. FM can expose a contradiction, so re-simplify.
        let mut sat = true;
        if let Some(k) = nc.exists().iter().position(|n| *n == removed_name) {
            let vv = VarId(new_arity + k as u32);
            if eliminate_existential(&mut nc, vv) {
                sat = nc.simplify();
            }
        }
        if sat {
            out.push(nc);
        }
    }
    Set::from_conjunctions(tuple, out)
}

/// Projects the set down to exactly the tuple positions in `keep`
/// (in the given order). Positions not listed are projected out.
pub fn project_onto(set: &Set, keep: &[usize]) -> Set {
    assert!(
        keep.windows(2).all(|w| w[0] < w[1]),
        "keep positions must be strictly increasing"
    );
    let mut s = set.clone();
    // Remove from the highest position down so indices stay valid.
    let all: Vec<usize> = (0..set.arity() as usize).collect();
    for pos in all.into_iter().rev() {
        if !keep.contains(&pos) {
            s = project_out(&s, pos);
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_set;

    #[test]
    fn project_rectangle_to_interval() {
        let s = parse_set("{ [i, j] : 0 <= i < N && 0 <= j < M }").unwrap();
        let mut p = project_out(&s, 1);
        p.simplify();
        assert_eq!(p.tuple(), &["i"]);
        let c = &p.conjunctions()[0];
        assert!(c.exists().is_empty(), "j should be fully eliminated: {c:?}");
        // 0 <= i < N plus the residual feasibility fact M >= 1.
        assert_eq!(c.constraints.len(), 3);
    }

    #[test]
    fn fm_combines_bounds() {
        // {[i, j] : i <= j <= i + 5} projected on i: no residual constraint
        // except 0 <= 5 (tautology) — i unconstrained.
        let s = parse_set("{ [i, j] : i <= j && j <= i + 5 }").unwrap();
        let mut p = project_out(&s, 1);
        p.simplify();
        assert!(p.conjunctions()[0].constraints.is_empty());
    }

    #[test]
    fn fm_exposes_transitive_bound() {
        // {[i, j] : 0 <= j && j < i} projected on i gives i >= 1.
        let s = parse_set("{ [i, j] : 0 <= j && j < i }").unwrap();
        let mut p = project_out(&s, 1);
        p.simplify();
        let c = &p.conjunctions()[0];
        assert_eq!(c.constraints.len(), 1);
        let names = p.names_for(0);
        assert_eq!(
            c.constraints[0].display_with(&names).to_string(),
            "i >= 1"
        );
    }

    #[test]
    fn equality_defined_var_is_projected_by_substitution() {
        let s = parse_set("{ [k, j] : j = col(k) && 0 <= k < NNZ && j < NC }").unwrap();
        let mut p = project_out(&s, 1);
        p.simplify();
        assert_eq!(p.tuple(), &["k"]);
        let c = &p.conjunctions()[0];
        assert!(c.exists().is_empty());
        // Residual: 0 <= k < NNZ && col(k) < NC.
        assert!(c.constraints.iter().any(|x| x.mentions_uf("col")));
    }

    #[test]
    fn var_inside_uf_arg_stays_existential() {
        let s = parse_set("{ [k, j] : f(j) = k && 0 <= j }").unwrap();
        let p = project_out(&s, 1);
        let c = &p.conjunctions()[0];
        assert_eq!(c.exists(), &["j"]);
    }

    #[test]
    fn project_onto_keeps_selected_positions() {
        let s =
            parse_set("{ [a, b, c] : 0 <= a < N && 0 <= b < N && c = a + b }").unwrap();
        let mut p = project_onto(&s, &[0]);
        p.simplify();
        assert_eq!(p.tuple(), &["a"]);
    }
}
