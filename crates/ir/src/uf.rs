//! Uninterpreted-function signatures: domain, range, and index-array
//! properties (monotonicity), as required by the paper's format
//! descriptors.

use std::collections::BTreeMap;
use std::fmt;

use crate::formula::Set;
use crate::parser::{parse_set, ParseError};

/// Monotonicity of a unary uninterpreted function, expressed in the paper
/// as a universal quantifier such as
/// `∀e1,e2 : e1 <= e2 ⟺ rowptr(e1) <= rowptr(e2)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Monotonicity {
    /// `e1 < e2 ⟹ uf(e1) <= uf(e2)`; CSR's `rowptr` is the canonical
    /// example.
    NonDecreasing,
    /// `e1 < e2 ⟹ uf(e1) < uf(e2)`; DIA's `off` is the canonical example.
    Increasing,
}

impl fmt::Display for Monotonicity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Monotonicity::NonDecreasing => write!(f, "non-decreasing"),
            Monotonicity::Increasing => write!(f, "strictly increasing"),
        }
    }
}

impl Monotonicity {
    /// Renders the property as the paper's universal-quantifier notation
    /// for function `name`.
    pub fn quantifier_text(&self, name: &str) -> String {
        match self {
            Monotonicity::NonDecreasing => format!(
                "forall e1, e2 : e1 <= e2 <=> {name}(e1) <= {name}(e2)"
            ),
            Monotonicity::Increasing => {
                format!("forall e1, e2 : e1 < e2 <=> {name}(e1) < {name}(e2)")
            }
        }
    }
}

/// Declaration of one uninterpreted function used by a format descriptor:
/// its arity, domain, range, and optional monotonicity property.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UfSignature {
    /// Function name, e.g. `rowptr`.
    pub name: String,
    /// Number of arguments.
    pub arity: usize,
    /// Domain as a set over `arity` variables, e.g. `{ [x] : 0 <= x <= NR }`.
    pub domain: Set,
    /// Range as a 1-D set, e.g. `{ [y] : 0 <= y <= NNZ }`.
    pub range: Set,
    /// Optional monotonicity property (unary functions only).
    pub monotonicity: Option<Monotonicity>,
}

impl UfSignature {
    /// Convenience constructor parsing domain and range from SPF notation.
    ///
    /// # Errors
    /// Returns the underlying [`ParseError`] if either set fails to parse.
    pub fn parse(
        name: impl Into<String>,
        domain: &str,
        range: &str,
        monotonicity: Option<Monotonicity>,
    ) -> Result<Self, ParseError> {
        let domain = parse_set(domain)?;
        let range = parse_set(range)?;
        let name = name.into();
        Ok(UfSignature {
            arity: domain.arity() as usize,
            name,
            domain,
            range,
            monotonicity,
        })
    }
}

impl fmt::Display for UfSignature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "domain({}) = {}, range({}) = {}",
            self.name, self.domain, self.name, self.range
        )?;
        if let Some(m) = self.monotonicity {
            write!(f, " [{m}]")?;
        }
        Ok(())
    }
}

/// A registry of uninterpreted-function signatures, keyed by name.
///
/// Synthesis consults this to distinguish *known* UFs (from the source
/// format) from *unknown* UFs (to be populated for the destination), and to
/// derive allocation sizes and initialization bounds from domains/ranges.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct UfEnvironment {
    sigs: BTreeMap<String, UfSignature>,
}

impl UfEnvironment {
    /// Creates an empty environment.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a signature, replacing any previous entry of that name.
    pub fn insert(&mut self, sig: UfSignature) {
        self.sigs.insert(sig.name.clone(), sig);
    }

    /// Looks up a signature by name.
    pub fn get(&self, name: &str) -> Option<&UfSignature> {
        self.sigs.get(name)
    }

    /// Returns `true` if the environment declares `name`.
    pub fn contains(&self, name: &str) -> bool {
        self.sigs.contains_key(name)
    }

    /// Iterates over all signatures in name order.
    pub fn iter(&self) -> impl Iterator<Item = &UfSignature> {
        self.sigs.values()
    }

    /// Merges another environment into this one (its entries win on
    /// collision).
    pub fn extend(&mut self, other: &UfEnvironment) {
        for sig in other.iter() {
            self.insert(sig.clone());
        }
    }

    /// Number of registered signatures.
    pub fn len(&self) -> usize {
        self.sigs.len()
    }

    /// Returns `true` when no signatures are registered.
    pub fn is_empty(&self) -> bool {
        self.sigs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_signature() {
        let sig = UfSignature::parse(
            "rowptr",
            "{ [x] : 0 <= x <= NR }",
            "{ [y] : 0 <= y <= NNZ }",
            Some(Monotonicity::NonDecreasing),
        )
        .unwrap();
        assert_eq!(sig.arity, 1);
        assert_eq!(sig.name, "rowptr");
        assert!(sig.to_string().contains("non-decreasing"));
    }

    #[test]
    fn environment_lookup_and_merge() {
        let mut env = UfEnvironment::new();
        assert!(env.is_empty());
        env.insert(
            UfSignature::parse("row1", "{ [x] : 0 <= x < NNZ }", "{ [y] : 0 <= y < NR }", None)
                .unwrap(),
        );
        assert!(env.contains("row1"));
        assert_eq!(env.get("row1").unwrap().arity, 1);

        let mut other = UfEnvironment::new();
        other.insert(
            UfSignature::parse("col1", "{ [x] : 0 <= x < NNZ }", "{ [y] : 0 <= y < NC }", None)
                .unwrap(),
        );
        env.extend(&other);
        assert_eq!(env.len(), 2);
        assert_eq!(env.iter().count(), 2);
    }

    #[test]
    fn quantifier_text_matches_paper_form() {
        let t = Monotonicity::NonDecreasing.quantifier_text("rowptr");
        assert_eq!(t, "forall e1, e2 : e1 <= e2 <=> rowptr(e1) <= rowptr(e2)");
    }

    #[test]
    fn multi_arg_domain() {
        let sig = UfSignature::parse(
            "P",
            "{ [i, j] : 0 <= i < NR && 0 <= j < NC }",
            "{ [n] : 0 <= n < NNZ }",
            None,
        )
        .unwrap();
        assert_eq!(sig.arity, 2);
    }
}
