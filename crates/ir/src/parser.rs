//! Recursive-descent parser for the IEGenLib-style surface syntax.
//!
//! Accepted forms:
//!
//! ```text
//! { [i, j] : 0 <= i < N && 0 <= j < M }
//! { [n, ii, jj] -> [i, j] : row1(n) = i && col1(n) = j && ii = i && jj = j }
//! { [i] : exists(e) : e = i + 1 && e < N }
//! { [i] : i = 0 } union { [i] : i = 5 }
//! ```
//!
//! Comparison chains (`0 <= i < N`) expand to one constraint per adjacent
//! pair. Strict comparisons are normalized to non-strict integer form at
//! construction (see [`Constraint`]).

use std::fmt;

use crate::constraint::Constraint;
use crate::expr::{LinExpr, UfCall, VarId};
use crate::formula::{Conjunction, Relation, Set};

/// Error produced by the parser, with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the error in the source text.
    pub pos: usize,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for ParseError {}

type PResult<T> = Result<T, ParseError>;

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    LParen,
    RParen,
    Comma,
    Colon,
    Arrow,
    AndAnd,
    Plus,
    Minus,
    Star,
    Le,
    Lt,
    Ge,
    Gt,
    EqEq,
    Int(i64),
    Ident(String),
    KwUnion,
    KwExists,
    Eof,
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer { src: src.as_bytes(), pos: 0 }
    }

    fn err<T>(&self, msg: impl Into<String>) -> PResult<T> {
        Err(ParseError { pos: self.pos, msg: msg.into() })
    }

    fn next_tok(&mut self) -> PResult<(usize, Tok)> {
        while self.pos < self.src.len() && self.src[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
        let start = self.pos;
        if self.pos >= self.src.len() {
            return Ok((start, Tok::Eof));
        }
        let b = self.src[self.pos];
        let tok = match b {
            b'{' => {
                self.pos += 1;
                Tok::LBrace
            }
            b'}' => {
                self.pos += 1;
                Tok::RBrace
            }
            b'[' => {
                self.pos += 1;
                Tok::LBracket
            }
            b']' => {
                self.pos += 1;
                Tok::RBracket
            }
            b'(' => {
                self.pos += 1;
                Tok::LParen
            }
            b')' => {
                self.pos += 1;
                Tok::RParen
            }
            b',' => {
                self.pos += 1;
                Tok::Comma
            }
            b':' => {
                self.pos += 1;
                Tok::Colon
            }
            b'+' => {
                self.pos += 1;
                Tok::Plus
            }
            b'*' => {
                self.pos += 1;
                Tok::Star
            }
            b'-' => {
                self.pos += 1;
                if self.peek_byte() == Some(b'>') {
                    self.pos += 1;
                    Tok::Arrow
                } else {
                    Tok::Minus
                }
            }
            b'&' => {
                self.pos += 1;
                if self.peek_byte() == Some(b'&') {
                    self.pos += 1;
                    Tok::AndAnd
                } else {
                    return self.err("expected `&&`");
                }
            }
            b'<' => {
                self.pos += 1;
                if self.peek_byte() == Some(b'=') {
                    self.pos += 1;
                    Tok::Le
                } else {
                    Tok::Lt
                }
            }
            b'>' => {
                self.pos += 1;
                if self.peek_byte() == Some(b'=') {
                    self.pos += 1;
                    Tok::Ge
                } else {
                    Tok::Gt
                }
            }
            b'=' => {
                self.pos += 1;
                if self.peek_byte() == Some(b'=') {
                    self.pos += 1;
                }
                Tok::EqEq
            }
            b'0'..=b'9' => {
                let mut v: i64 = 0;
                while let Some(d @ b'0'..=b'9') = self.peek_byte() {
                    v = v
                        .checked_mul(10)
                        .and_then(|x| x.checked_add((d - b'0') as i64))
                        .ok_or(ParseError {
                            pos: start,
                            msg: "integer literal overflows i64".into(),
                        })?;
                    self.pos += 1;
                }
                Tok::Int(v)
            }
            b'A'..=b'Z' | b'a'..=b'z' | b'_' => {
                while matches!(
                    self.peek_byte(),
                    Some(b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'_' | b'\'')
                ) {
                    self.pos += 1;
                }
                let word = std::str::from_utf8(&self.src[start..self.pos]).unwrap();
                match word {
                    "union" => Tok::KwUnion,
                    "exists" => Tok::KwExists,
                    _ => Tok::Ident(word.to_string()),
                }
            }
            other => {
                return self.err(format!("unexpected character `{}`", other as char));
            }
        };
        Ok((start, tok))
    }

    fn peek_byte(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }
}

struct Parser {
    toks: Vec<(usize, Tok)>,
    idx: usize,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RelOp {
    Le,
    Lt,
    Ge,
    Gt,
    Eq,
}

impl Parser {
    fn new(src: &str) -> PResult<Self> {
        let mut lx = Lexer::new(src);
        let mut toks = Vec::new();
        loop {
            let (p, t) = lx.next_tok()?;
            let done = t == Tok::Eof;
            toks.push((p, t));
            if done {
                break;
            }
        }
        Ok(Parser { toks, idx: 0 })
    }

    fn peek(&self) -> &Tok {
        &self.toks[self.idx].1
    }

    fn pos(&self) -> usize {
        self.toks[self.idx].0
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.idx].1.clone();
        if self.idx + 1 < self.toks.len() {
            self.idx += 1;
        }
        t
    }

    fn expect(&mut self, t: &Tok, what: &str) -> PResult<()> {
        if self.peek() == t {
            self.bump();
            Ok(())
        } else {
            Err(ParseError {
                pos: self.pos(),
                msg: format!("expected {what}, found {:?}", self.peek()),
            })
        }
    }

    fn ident(&mut self, what: &str) -> PResult<String> {
        match self.bump() {
            Tok::Ident(s) => Ok(s),
            other => Err(ParseError {
                pos: self.pos(),
                msg: format!("expected {what}, found {other:?}"),
            }),
        }
    }

    fn ident_list(&mut self) -> PResult<Vec<String>> {
        let mut out = vec![self.ident("identifier")?];
        while self.peek() == &Tok::Comma {
            self.bump();
            out.push(self.ident("identifier")?);
        }
        Ok(out)
    }

    fn tuple(&mut self) -> PResult<Vec<String>> {
        self.expect(&Tok::LBracket, "`[`")?;
        if self.peek() == &Tok::RBracket {
            self.bump();
            return Ok(Vec::new());
        }
        let ids = self.ident_list()?;
        self.expect(&Tok::RBracket, "`]`")?;
        Ok(ids)
    }

    /// Parses one `{ ... }` formula; returns tuples and the conjunction.
    fn formula(&mut self) -> PResult<(Vec<String>, Option<Vec<String>>, Conjunction)> {
        self.expect(&Tok::LBrace, "`{`")?;
        let in_tuple = self.tuple()?;
        let out_tuple = if self.peek() == &Tok::Arrow {
            self.bump();
            Some(self.tuple()?)
        } else {
            None
        };
        let arity = (in_tuple.len() + out_tuple.as_ref().map_or(0, Vec::len)) as u32;
        let mut conj = Conjunction::new(arity);
        let mut scope: Vec<String> = in_tuple.clone();
        if let Some(o) = &out_tuple {
            scope.extend(o.iter().cloned());
        }
        if self.peek() == &Tok::Colon {
            self.bump();
            if self.peek() == &Tok::KwExists {
                self.bump();
                self.expect(&Tok::LParen, "`(`")?;
                let names = self.ident_list()?;
                self.expect(&Tok::RParen, "`)`")?;
                self.expect(&Tok::Colon, "`:`")?;
                for n in names {
                    conj.fresh_exist(n.clone());
                    scope.push(n);
                }
            }
            self.constraints(&mut conj, &scope)?;
        }
        self.expect(&Tok::RBrace, "`}`")?;
        Ok((in_tuple, out_tuple, conj))
    }

    fn constraints(&mut self, conj: &mut Conjunction, scope: &[String]) -> PResult<()> {
        loop {
            self.chain(conj, scope)?;
            if self.peek() == &Tok::AndAnd {
                self.bump();
            } else {
                break;
            }
        }
        Ok(())
    }

    fn relop(&mut self) -> Option<RelOp> {
        let op = match self.peek() {
            Tok::Le => RelOp::Le,
            Tok::Lt => RelOp::Lt,
            Tok::Ge => RelOp::Ge,
            Tok::Gt => RelOp::Gt,
            Tok::EqEq => RelOp::Eq,
            _ => return None,
        };
        self.bump();
        Some(op)
    }

    fn chain(&mut self, conj: &mut Conjunction, scope: &[String]) -> PResult<()> {
        let mut lhs = self.expr(scope)?;
        let mut count = 0;
        while let Some(op) = self.relop() {
            let rhs = self.expr(scope)?;
            let c = match op {
                RelOp::Le => Constraint::le(lhs.clone(), rhs.clone()),
                RelOp::Lt => Constraint::lt(lhs.clone(), rhs.clone()),
                RelOp::Ge => Constraint::ge(lhs.clone(), rhs.clone()),
                RelOp::Gt => Constraint::gt(lhs.clone(), rhs.clone()),
                RelOp::Eq => Constraint::eq(lhs.clone(), rhs.clone()),
            };
            conj.add(c);
            lhs = rhs;
            count += 1;
        }
        if count == 0 {
            return Err(ParseError {
                pos: self.pos(),
                msg: "expected a comparison operator".into(),
            });
        }
        Ok(())
    }

    fn expr(&mut self, scope: &[String]) -> PResult<LinExpr> {
        let mut acc = self.term(scope)?;
        loop {
            match self.peek() {
                Tok::Plus => {
                    self.bump();
                    let t = self.term(scope)?;
                    acc.add_assign(&t);
                }
                Tok::Minus => {
                    self.bump();
                    let t = self.term(scope)?;
                    acc.add_assign(&t.scaled(-1));
                }
                _ => break,
            }
        }
        Ok(acc)
    }

    fn term(&mut self, scope: &[String]) -> PResult<LinExpr> {
        let mut acc = self.factor(scope)?;
        while self.peek() == &Tok::Star {
            self.bump();
            let rhs = self.factor(scope)?;
            acc = match (acc.as_constant(), rhs.as_constant()) {
                (Some(c), _) => rhs.scaled(c),
                (_, Some(c)) => acc.scaled(c),
                // Products of non-constant factors (e.g. `ND * ii`)
                // become opaque product atoms.
                _ => acc.mul_expr(&rhs),
            };
        }
        Ok(acc)
    }

    fn factor(&mut self, scope: &[String]) -> PResult<LinExpr> {
        match self.bump() {
            Tok::Int(v) => Ok(LinExpr::constant(v)),
            Tok::Minus => Ok(self.factor(scope)?.scaled(-1)),
            Tok::LParen => {
                let e = self.expr(scope)?;
                self.expect(&Tok::RParen, "`)`")?;
                Ok(e)
            }
            Tok::Ident(name) => {
                if self.peek() == &Tok::LParen {
                    self.bump();
                    let mut args = Vec::new();
                    if self.peek() != &Tok::RParen {
                        args.push(self.expr(scope)?);
                        while self.peek() == &Tok::Comma {
                            self.bump();
                            args.push(self.expr(scope)?);
                        }
                    }
                    self.expect(&Tok::RParen, "`)`")?;
                    Ok(LinExpr::uf(UfCall::new(name, args)))
                } else if let Some(k) = scope.iter().position(|s| *s == name) {
                    Ok(LinExpr::var(VarId(k as u32)))
                } else {
                    Ok(LinExpr::sym(name))
                }
            }
            other => Err(ParseError {
                pos: self.pos(),
                msg: format!("expected an expression, found {other:?}"),
            }),
        }
    }

    fn at_eof(&self) -> bool {
        self.peek() == &Tok::Eof
    }
}

/// Parses a set, e.g. `{ [i, j] : 0 <= i < N && 0 <= j < M }`, including
/// unions of such formulas.
pub fn parse_set(src: &str) -> PResult<Set> {
    let mut p = Parser::new(src)?;
    let mut set: Option<Set> = None;
    loop {
        let (tuple, out, conj) = p.formula()?;
        if out.is_some() {
            return Err(ParseError {
                pos: p.pos(),
                msg: "expected a set, found a relation (`->`)".into(),
            });
        }
        let this = Set::from_conjunctions(tuple, vec![conj]);
        set = Some(match set {
            None => this,
            Some(s) => {
                if s.arity() != this.arity() {
                    return Err(ParseError {
                        pos: p.pos(),
                        msg: "union members have different arities".into(),
                    });
                }
                s.union(this)
            }
        });
        if p.peek() == &Tok::KwUnion {
            p.bump();
        } else {
            break;
        }
    }
    if !p.at_eof() {
        return Err(ParseError {
            pos: p.pos(),
            msg: "trailing input after formula".into(),
        });
    }
    Ok(set.expect("at least one formula"))
}

/// Parses a relation, e.g. `{ [n] -> [i, j] : row(n) = i && col(n) = j }`,
/// including unions.
pub fn parse_relation(src: &str) -> PResult<Relation> {
    let mut p = Parser::new(src)?;
    let mut rel: Option<Relation> = None;
    loop {
        let (in_tuple, out, conj) = p.formula()?;
        let Some(out_tuple) = out else {
            return Err(ParseError {
                pos: p.pos(),
                msg: "expected a relation (`->`), found a set".into(),
            });
        };
        let this = Relation::from_conjunctions(in_tuple, out_tuple, vec![conj]);
        rel = Some(match rel {
            None => this,
            Some(mut r) => {
                if r.in_arity() != this.in_arity() || r.out_arity() != this.out_arity() {
                    return Err(ParseError {
                        pos: p.pos(),
                        msg: "union members have different arities".into(),
                    });
                }
                r.conjunctions_mut().extend(this.conjunctions().iter().cloned());
                r
            }
        });
        if p.peek() == &Tok::KwUnion {
            p.bump();
        } else {
            break;
        }
    }
    if !p.at_eof() {
        return Err(ParseError {
            pos: p.pos(),
            msg: "trailing input after formula".into(),
        });
    }
    Ok(rel.expect("at least one formula"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_rectangle_set() {
        let s = parse_set("{ [i, j] : 0 <= i < N && 0 <= j < M }").unwrap();
        assert_eq!(s.tuple(), &["i", "j"]);
        assert_eq!(s.conjunctions().len(), 1);
        assert_eq!(s.conjunctions()[0].constraints.len(), 4);
    }

    #[test]
    fn parses_csr_iteration_space() {
        let s = parse_set(
            "{ [i, k, j] : 0 <= i < N && rowptr(i) <= k < rowptr(i + 1) && j = col(k) }",
        )
        .unwrap();
        let c = &s.conjunctions()[0];
        assert!(c.constraints.iter().any(|x| x.mentions_uf("rowptr")));
        assert!(c.constraints.iter().any(|x| x.mentions_uf("col")));
        // The chain rowptr(i) <= k < rowptr(i+1) yields two constraints.
        assert_eq!(c.constraints.len(), 5);
    }

    #[test]
    fn parses_relation_with_ufs() {
        let r = parse_relation(
            "{ [n, ii, jj] -> [i, j] : row1(n) = i && col1(n) = j && ii = i && jj = j \
             && 0 <= i < NR && 0 <= j < NC && 0 <= n < NNZ }",
        )
        .unwrap();
        assert_eq!(r.in_tuple(), &["n", "ii", "jj"]);
        assert_eq!(r.out_tuple(), &["i", "j"]);
    }

    #[test]
    fn parses_exists_clause() {
        let s = parse_set("{ [i] : exists(e) : e = i + 1 && e < N }").unwrap();
        assert_eq!(s.conjunctions()[0].exists(), &["e"]);
    }

    #[test]
    fn parses_union() {
        let s = parse_set("{ [i] : i = 0 } union { [i] : i = 5 }").unwrap();
        assert_eq!(s.conjunctions().len(), 2);
    }

    #[test]
    fn scalar_multiplication_and_parens() {
        let s = parse_set("{ [i, d] : 2 * i + 3 <= ND * 2 && (i - d) * 4 = 0 }");
        // `ND * 2` is linear (symbol times constant); `(i-d)*4` too.
        assert!(s.is_ok(), "{s:?}");
    }

    #[test]
    fn nonconstant_products_parse_as_opaque_atoms() {
        // `ND * ii` (DIA's data access) parses to a product atom.
        let s = parse_set("{ [ii, d, kd] : kd = ND * ii + d }").unwrap();
        let c = &s.conjunctions()[0].constraints[0];
        assert!(c
            .expr()
            .terms
            .iter()
            .any(|(_, a)| matches!(a, crate::expr::Atom::Prod(_))));
        // Round-trips through display.
        let back = parse_set(&s.to_string()).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn rejects_relation_where_set_expected() {
        assert!(parse_set("{ [i] -> [j] : j = i }").is_err());
        assert!(parse_relation("{ [i] : i = 0 }").is_err());
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse_set("{ [i] : i = 0 } zzz").is_err());
    }

    #[test]
    fn print_parse_round_trip_set() {
        let src = "{ [i, k, j] : 0 <= i < N && rowptr(i) <= k < rowptr(i + 1) && j = col(k) }";
        let mut a = parse_set(src).unwrap();
        a.simplify();
        let mut b = parse_set(&a.to_string()).unwrap();
        b.simplify();
        assert_eq!(a, b);
    }

    #[test]
    fn print_parse_round_trip_relation() {
        let src = "{ [n, ii, jj] -> [i, j] : row1(n) = i && col1(n) = j && ii = i \
                   && jj = j && 0 <= i < NR && 0 <= j < NC && 0 <= n < NNZ }";
        let mut a = parse_relation(src).unwrap();
        a.simplify();
        let mut b = parse_relation(&a.to_string()).unwrap();
        b.simplify();
        assert_eq!(a, b);
    }

    #[test]
    fn nested_uf_calls() {
        let s = parse_set("{ [n] : P(row(n), col(n)) = n }").unwrap();
        assert!(s.conjunctions()[0].constraints[0].mentions_uf("P"));
        assert!(s.conjunctions()[0].constraints[0].mentions_uf("row"));
    }

    #[test]
    fn double_equals_accepted() {
        let a = parse_set("{ [i] : i == 3 }").unwrap();
        let b = parse_set("{ [i] : i = 3 }").unwrap();
        assert_eq!(a, b);
    }
}
