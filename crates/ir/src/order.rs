//! Total orders on nonzeros: the semantic core of the paper's *reordering
//! universal quantifiers*.
//!
//! Every reordering quantifier in Table 1 of the paper orders the nonzeros
//! of a format by a key computed from their **dense coordinates**:
//!
//! * sorted COO / CSR order nonzeros by `(i, j)` lexicographically,
//! * CSC by `(j, i)`,
//! * DIA's `off` array by the diagonal index `j - i`,
//! * MCOO / MCOO3 by `MORTON(i, j, ...)` — a user-defined comparison
//!   function.
//!
//! [`OrderKey`] captures exactly this: a tuple of affine functions of the
//! dense coordinates, compared lexicographically or through a user-defined
//! comparator. Synthesis compares source and destination keys: when the
//! source order *implies* the destination order, the permutation `P` is the
//! identity and dead-code elimination removes it (the paper's COO→CSR fast
//! path).

use std::fmt;

/// An affine function of the dense coordinates: `constant + Σ coeff·dᵢ`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct KeyDim {
    /// One coefficient per dense dimension.
    pub coeffs: Vec<i64>,
    /// Constant offset.
    pub constant: i64,
}

impl KeyDim {
    /// The dense coordinate `d` itself.
    pub fn coord(dims: usize, d: usize) -> Self {
        let mut coeffs = vec![0; dims];
        coeffs[d] = 1;
        KeyDim { coeffs, constant: 0 }
    }

    /// An arbitrary affine combination.
    pub fn affine(coeffs: Vec<i64>, constant: i64) -> Self {
        KeyDim { coeffs, constant }
    }

    /// Evaluates the key dimension at a dense coordinate.
    pub fn eval(&self, coords: &[usize]) -> i64 {
        debug_assert_eq!(coords.len(), self.coeffs.len());
        self.constant
            + self
                .coeffs
                .iter()
                .zip(coords)
                .map(|(c, x)| c * *x as i64)
                .sum::<i64>()
    }
}

impl fmt::Display for KeyDim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names = ["i", "j", "k", "l", "m"];
        let mut first = true;
        for (d, c) in self.coeffs.iter().enumerate() {
            if *c == 0 {
                continue;
            }
            let name = names.get(d).copied().unwrap_or("?");
            if first {
                if *c == -1 {
                    write!(f, "-{name}")?;
                } else if *c == 1 {
                    write!(f, "{name}")?;
                } else {
                    write!(f, "{c}{name}")?;
                }
                first = false;
            } else if *c < 0 {
                if *c == -1 {
                    write!(f, " - {name}")?;
                } else {
                    write!(f, " - {}{name}", -c)?;
                }
            } else if *c == 1 {
                write!(f, " + {name}")?;
            } else {
                write!(f, " + {c}{name}")?;
            }
        }
        if first {
            write!(f, "{}", self.constant)?;
        } else if self.constant > 0 {
            write!(f, " + {}", self.constant)?;
        } else if self.constant < 0 {
            write!(f, " - {}", -self.constant)?;
        }
        Ok(())
    }
}

/// How the tuple of [`KeyDim`] values is compared.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Comparator {
    /// Lexicographic comparison of the key tuple.
    Lexicographic,
    /// Morton (Z-order) comparison: compare bit-interleavings of the key
    /// tuple. This is the paper's `MORTON` user-defined function.
    Morton,
    /// A named user-defined comparison function; the runtime must provide
    /// its implementation (the paper requires full definitions for
    /// functions appearing only in universal quantifiers).
    UserFn(String),
}

impl fmt::Display for Comparator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Comparator::Lexicographic => write!(f, "LEX"),
            Comparator::Morton => write!(f, "MORTON"),
            Comparator::UserFn(name) => write!(f, "{name}"),
        }
    }
}

/// The total order a format imposes on its nonzeros, as a function of
/// their dense coordinates.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct OrderKey {
    /// Comparison semantics.
    pub comparator: Comparator,
    /// Key tuple, evaluated per nonzero from its dense coordinates.
    pub dims: Vec<KeyDim>,
}

impl OrderKey {
    /// Lexicographic order over the listed key dimensions.
    pub fn lex(dims: Vec<KeyDim>) -> Self {
        OrderKey { comparator: Comparator::Lexicographic, dims }
    }

    /// Row-major (`i`, `j`, ...) lexicographic order over `rank` dense
    /// dimensions.
    pub fn row_major(rank: usize) -> Self {
        OrderKey::lex((0..rank).map(|d| KeyDim::coord(rank, d)).collect())
    }

    /// Morton (Z-order) over the dense coordinates.
    pub fn morton(rank: usize) -> Self {
        OrderKey {
            comparator: Comparator::Morton,
            dims: (0..rank).map(|d| KeyDim::coord(rank, d)).collect(),
        }
    }

    /// Returns `true` when data sorted by `self` is necessarily also sorted
    /// by `other`.
    ///
    /// The check is syntactic but sound: identical keys imply each other,
    /// and for lexicographic comparisons a key implies any *prefix* of
    /// itself. Morton/user-defined orders imply only themselves. A `false`
    /// result merely means a permutation must be synthesized.
    pub fn implies(&self, other: &OrderKey) -> bool {
        if self.comparator != other.comparator {
            return false;
        }
        match self.comparator {
            Comparator::Lexicographic => {
                other.dims.len() <= self.dims.len()
                    && self.dims[..other.dims.len()] == other.dims[..]
            }
            Comparator::Morton | Comparator::UserFn(_) => self.dims == other.dims,
        }
    }

    /// Renders the paper's reordering-quantifier notation, e.g.
    /// `forall n1, n2 : n1 < n2 <=> MORTON(row(n1), col(n1)) < MORTON(row(n2), col(n2))`.
    pub fn quantifier_text(&self, coord_ufs: &[String]) -> String {
        let render = |v: &str| -> String {
            let args: Vec<String> = self
                .dims
                .iter()
                .map(|d| {
                    // Substitute each dense coordinate with its UF applied
                    // to the position variable where the key is a plain
                    // coordinate; otherwise print the affine form over the
                    // coordinate UFs.
                    let mut parts = Vec::new();
                    for (k, c) in d.coeffs.iter().enumerate() {
                        if *c == 0 {
                            continue;
                        }
                        let base = coord_ufs
                            .get(k)
                            .map(|u| format!("{u}({v})"))
                            .unwrap_or_else(|| format!("d{k}({v})"));
                        match *c {
                            1 => parts.push(base),
                            -1 => parts.push(format!("-{base}")),
                            c => parts.push(format!("{c}*{base}")),
                        }
                    }
                    let mut s = parts.join(" + ").replace("+ -", "- ");
                    if d.constant != 0 {
                        s.push_str(&format!(" + {}", d.constant));
                    }
                    if s.is_empty() {
                        s = d.constant.to_string();
                    }
                    s
                })
                .collect();
            match &self.comparator {
                Comparator::Lexicographic => format!("({})", args.join(", ")),
                Comparator::Morton => format!("MORTON({})", args.join(", ")),
                Comparator::UserFn(f) => format!("{f}({})", args.join(", ")),
            }
        };
        format!(
            "forall n1, n2 : n1 < n2 <=> {} < {}",
            render("n1"),
            render("n2")
        )
    }
}

impl fmt::Display for OrderKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[", self.comparator)?;
        for (k, d) in self.dims.iter().enumerate() {
            if k > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_major_implies_prefix() {
        let rm = OrderKey::row_major(2);
        let row_only = OrderKey::lex(vec![KeyDim::coord(2, 0)]);
        assert!(rm.implies(&row_only));
        assert!(!row_only.implies(&rm));
        assert!(rm.implies(&rm));
    }

    #[test]
    fn csc_not_implied_by_row_major() {
        let rm = OrderKey::row_major(2);
        let cm = OrderKey::lex(vec![KeyDim::coord(2, 1), KeyDim::coord(2, 0)]);
        assert!(!rm.implies(&cm));
        assert!(!cm.implies(&rm));
    }

    #[test]
    fn morton_implies_only_itself() {
        let m2 = OrderKey::morton(2);
        let rm = OrderKey::row_major(2);
        assert!(m2.implies(&m2));
        assert!(!m2.implies(&rm));
        assert!(!rm.implies(&m2));
        let m3 = OrderKey::morton(3);
        assert!(!m2.implies(&m3));
    }

    #[test]
    fn key_dim_eval() {
        // j - i at (i=3, j=10) is 7.
        let d = KeyDim::affine(vec![-1, 1], 0);
        assert_eq!(d.eval(&[3, 10]), 7);
        assert_eq!(KeyDim::coord(2, 0).eval(&[3, 10]), 3);
    }

    #[test]
    fn display_forms() {
        let dia = OrderKey::lex(vec![KeyDim::affine(vec![-1, 1], 0)]);
        assert_eq!(dia.to_string(), "LEX[-i + j]");
        let m = OrderKey::morton(2);
        assert_eq!(m.to_string(), "MORTON[i, j]");
    }

    #[test]
    fn quantifier_text_matches_paper() {
        let m = OrderKey::morton(2);
        let t = m.quantifier_text(&["row_m".into(), "col_m".into()]);
        assert_eq!(
            t,
            "forall n1, n2 : n1 < n2 <=> MORTON(row_m(n1), col_m(n1)) < MORTON(row_m(n2), col_m(n2))"
        );
    }
}
