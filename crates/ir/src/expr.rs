//! Linear expressions over tuple variables, symbolic constants, and
//! uninterpreted-function (UF) calls.
//!
//! This is the term language of the sparse polyhedral framework: an
//! expression is an integer-linear combination of *atoms*, where an atom is
//! a tuple variable (e.g. `i`), a symbolic constant (e.g. `NNZ`), or a call
//! to an uninterpreted function whose arguments are themselves expressions
//! (e.g. `rowptr(i + 1)`).
//!
//! Expressions are kept in a canonical form: terms sorted by atom, merged,
//! and zero-coefficient terms dropped. Two expressions are semantically
//! equal iff they are structurally equal after canonicalization.

use std::cmp::Ordering;
use std::fmt;

/// Identifier of a variable inside one conjunction's variable space.
///
/// Indices `0..arity` denote tuple variables (for a relation, inputs come
/// before outputs); indices `arity..` denote existentially quantified
/// variables local to the conjunction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub u32);

impl VarId {
    /// Returns the raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A call to an uninterpreted function, such as `rowptr(i + 1)`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct UfCall {
    /// Name of the uninterpreted function.
    pub name: String,
    /// Argument expressions.
    pub args: Vec<LinExpr>,
}

impl UfCall {
    /// Creates a UF call from a name and argument list.
    pub fn new(name: impl Into<String>, args: Vec<LinExpr>) -> Self {
        UfCall { name: name.into(), args }
    }

    /// Returns `true` if any argument (recursively) mentions variable `v`.
    pub fn uses_var(&self, v: VarId) -> bool {
        self.args.iter().any(|a| a.uses_var(v))
    }

    /// Applies `f` to every variable occurrence in the arguments.
    pub fn map_vars(&self, f: &mut impl FnMut(VarId) -> LinExpr) -> UfCall {
        UfCall {
            name: self.name.clone(),
            args: self.args.iter().map(|a| a.map_vars(f)).collect(),
        }
    }
}

impl fmt::Display for UfCall {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        for (k, a) in self.args.iter().enumerate() {
            if k > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ")")
    }
}

/// An atom: the non-constant building block of a linear expression.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Atom {
    /// A tuple or existential variable.
    Var(VarId),
    /// A symbolic constant such as `NNZ` or `NR`.
    Sym(String),
    /// An uninterpreted function call such as `col(k)`.
    Uf(UfCall),
    /// A product of two or more atoms, e.g. `ND * ii` in DIA's data
    /// access relation `kd = ND * ii + d`. Products are opaque to
    /// constraint solving (like UF arguments): a variable inside a
    /// product cannot be solved for, but substitution distributes through
    /// it.
    Prod(Vec<Atom>),
}

impl Atom {
    fn rank(&self) -> u8 {
        match self {
            Atom::Var(_) => 0,
            Atom::Sym(_) => 1,
            Atom::Uf(_) => 2,
            Atom::Prod(_) => 3,
        }
    }

    /// Returns `true` if variable `v` occurs anywhere inside this atom.
    pub fn uses_var(&self, v: VarId) -> bool {
        match self {
            Atom::Var(w) => *w == v,
            Atom::Sym(_) => false,
            Atom::Uf(u) => u.uses_var(v),
            Atom::Prod(fs) => fs.iter().any(|a| a.uses_var(v)),
        }
    }
}

impl PartialOrd for Atom {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Atom {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Atom::Var(a), Atom::Var(b)) => a.cmp(b),
            (Atom::Sym(a), Atom::Sym(b)) => a.cmp(b),
            (Atom::Uf(a), Atom::Uf(b)) => a.cmp(b),
            (Atom::Prod(a), Atom::Prod(b)) => a.cmp(b),
            _ => self.rank().cmp(&other.rank()),
        }
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            // Bare variable ids; callers wanting names should use
            // `LinExpr::display_with`.
            Atom::Var(v) => write!(f, "v{}", v.0),
            Atom::Sym(s) => write!(f, "{s}"),
            Atom::Uf(u) => write!(f, "{u}"),
            Atom::Prod(fs) => {
                for (k, a) in fs.iter().enumerate() {
                    if k > 0 {
                        write!(f, " * ")?;
                    }
                    write!(f, "{a}")?;
                }
                Ok(())
            }
        }
    }
}

/// An integer-linear expression: `constant + Σ coeff·atom`.
///
/// Kept canonical: terms sorted by atom, no duplicate atoms, no zero
/// coefficients.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LinExpr {
    /// The constant part.
    pub constant: i64,
    /// `(coefficient, atom)` pairs, sorted by atom.
    pub terms: Vec<(i64, Atom)>,
}

impl LinExpr {
    /// The zero expression.
    pub fn zero() -> Self {
        LinExpr::default()
    }

    /// A constant expression.
    pub fn constant(c: i64) -> Self {
        LinExpr { constant: c, terms: Vec::new() }
    }

    /// A single variable with coefficient 1.
    pub fn var(v: VarId) -> Self {
        LinExpr { constant: 0, terms: vec![(1, Atom::Var(v))] }
    }

    /// A symbolic constant with coefficient 1.
    pub fn sym(name: impl Into<String>) -> Self {
        LinExpr { constant: 0, terms: vec![(1, Atom::Sym(name.into()))] }
    }

    /// A UF call with coefficient 1.
    pub fn uf(call: UfCall) -> Self {
        LinExpr { constant: 0, terms: vec![(1, Atom::Uf(call))] }
    }

    /// A single scaled atom.
    pub fn term(coeff: i64, atom: Atom) -> Self {
        let mut e = LinExpr { constant: 0, terms: vec![(coeff, atom)] };
        e.canonicalize();
        e
    }

    /// Returns `true` if this is the literal zero expression.
    pub fn is_zero(&self) -> bool {
        self.constant == 0 && self.terms.is_empty()
    }

    /// Returns `Some(c)` when the expression is a constant.
    pub fn as_constant(&self) -> Option<i64> {
        if self.terms.is_empty() {
            Some(self.constant)
        } else {
            None
        }
    }

    /// Returns `Some(v)` when the expression is exactly one variable with
    /// coefficient 1 and no constant.
    pub fn as_single_var(&self) -> Option<VarId> {
        match (self.constant, self.terms.as_slice()) {
            (0, [(1, Atom::Var(v))]) => Some(*v),
            _ => None,
        }
    }

    /// Re-establishes canonical form (sorted, merged, zero-free terms).
    pub fn canonicalize(&mut self) {
        self.terms.sort_by(|a, b| a.1.cmp(&b.1));
        let mut out: Vec<(i64, Atom)> = Vec::with_capacity(self.terms.len());
        for (c, a) in self.terms.drain(..) {
            match out.last_mut() {
                Some((oc, oa)) if *oa == a => *oc += c,
                _ => out.push((c, a)),
            }
        }
        out.retain(|(c, _)| *c != 0);
        self.terms = out;
    }

    /// Adds another expression in place.
    pub fn add_assign(&mut self, other: &LinExpr) {
        self.constant += other.constant;
        self.terms.extend(other.terms.iter().cloned());
        self.canonicalize();
    }

    /// Returns `self + other`.
    pub fn add(&self, other: &LinExpr) -> LinExpr {
        let mut r = self.clone();
        r.add_assign(other);
        r
    }

    /// Returns `self - other`.
    pub fn sub(&self, other: &LinExpr) -> LinExpr {
        self.add(&other.scaled(-1))
    }

    /// Returns the expression scaled by `k`.
    pub fn scaled(&self, k: i64) -> LinExpr {
        if k == 0 {
            return LinExpr::zero();
        }
        LinExpr {
            constant: self.constant * k,
            terms: self.terms.iter().map(|(c, a)| (c * k, a.clone())).collect(),
        }
    }

    /// Coefficient of variable `v` as a *top-level* term (occurrences inside
    /// UF arguments are not counted).
    pub fn coeff_of_var(&self, v: VarId) -> i64 {
        self.terms
            .iter()
            .find_map(|(c, a)| match a {
                Atom::Var(w) if *w == v => Some(*c),
                _ => None,
            })
            .unwrap_or(0)
    }

    /// Coefficient of an arbitrary atom as a top-level term.
    pub fn coeff_of(&self, atom: &Atom) -> i64 {
        self.terms
            .iter()
            .find_map(|(c, a)| if a == atom { Some(*c) } else { None })
            .unwrap_or(0)
    }

    /// Returns `true` if `v` occurs anywhere, including inside UF
    /// arguments and products.
    pub fn uses_var(&self, v: VarId) -> bool {
        self.terms.iter().any(|(_, a)| a.uses_var(v))
    }

    /// Returns `true` if `v` occurs in an *opaque* position: inside a UF
    /// argument or inside a product (at any depth). Such occurrences
    /// cannot be solved for directly.
    pub fn var_inside_uf(&self, v: VarId) -> bool {
        self.terms.iter().any(|(_, a)| match a {
            Atom::Uf(u) => u.uses_var(v),
            Atom::Prod(fs) => fs.iter().any(|x| x.uses_var(v)),
            _ => false,
        })
    }

    /// Returns `true` if the expression mentions any UF call.
    pub fn has_uf(&self) -> bool {
        self.terms.iter().any(|(_, a)| matches!(a, Atom::Uf(_)))
    }

    /// Returns `true` if the expression mentions a UF with the given name
    /// (at any nesting depth).
    pub fn mentions_uf(&self, name: &str) -> bool {
        fn atom_mentions(a: &Atom, name: &str) -> bool {
            match a {
                Atom::Uf(u) => {
                    u.name == name || u.args.iter().any(|x| x.mentions_uf(name))
                }
                Atom::Prod(fs) => fs.iter().any(|x| atom_mentions(x, name)),
                _ => false,
            }
        }
        self.terms.iter().any(|(_, a)| atom_mentions(a, name))
    }

    /// Collects every variable mentioned (including inside UF args) into
    /// `out`.
    pub fn collect_vars(&self, out: &mut Vec<VarId>) {
        fn atom_vars(a: &Atom, out: &mut Vec<VarId>) {
            match a {
                Atom::Var(v) => out.push(*v),
                Atom::Sym(_) => {}
                Atom::Uf(u) => {
                    for arg in &u.args {
                        arg.collect_vars(out);
                    }
                }
                Atom::Prod(fs) => {
                    for x in fs {
                        atom_vars(x, out);
                    }
                }
            }
        }
        for (_, a) in &self.terms {
            atom_vars(a, out);
        }
    }

    /// Rewrites every variable occurrence (including inside UF args) via
    /// `f`, which maps a variable to a replacement expression.
    pub fn map_vars(&self, f: &mut impl FnMut(VarId) -> LinExpr) -> LinExpr {
        let mut out = LinExpr::constant(self.constant);
        for (c, a) in &self.terms {
            let repl = match a {
                Atom::Var(v) => f(*v).scaled(*c),
                Atom::Sym(s) => LinExpr::term(*c, Atom::Sym(s.clone())),
                Atom::Uf(u) => LinExpr::term(*c, Atom::Uf(u.map_vars(f))),
                Atom::Prod(fs) => {
                    // Distribute the substitution through the product.
                    let mut acc = LinExpr::constant(*c);
                    for x in fs {
                        let factor = LinExpr::term(1, x.clone()).map_vars(f);
                        acc = acc.mul_expr(&factor);
                    }
                    acc
                }
            };
            out.add_assign(&repl);
        }
        out
    }

    /// Full product of two expressions, distributing term-by-term.
    /// Products of non-constant atoms become (flattened, sorted)
    /// [`Atom::Prod`] atoms.
    pub fn mul_expr(&self, other: &LinExpr) -> LinExpr {
        fn atom_product(a: &Atom, b: &Atom) -> Atom {
            let mut fs = Vec::new();
            match a {
                Atom::Prod(xs) => fs.extend(xs.iter().cloned()),
                x => fs.push(x.clone()),
            }
            match b {
                Atom::Prod(xs) => fs.extend(xs.iter().cloned()),
                x => fs.push(x.clone()),
            }
            fs.sort();
            Atom::Prod(fs)
        }
        let mut out = LinExpr::constant(self.constant * other.constant);
        for (c, a) in &self.terms {
            out.add_assign(&LinExpr::term(c * other.constant, a.clone()));
        }
        for (c, b) in &other.terms {
            out.add_assign(&LinExpr::term(c * self.constant, b.clone()));
        }
        for (ca, a) in &self.terms {
            for (cb, b) in &other.terms {
                out.add_assign(&LinExpr::term(ca * cb, atom_product(a, b)));
            }
        }
        out
    }

    /// Substitutes `v := repl` everywhere (including inside UF arguments).
    pub fn substitute_var(&self, v: VarId, repl: &LinExpr) -> LinExpr {
        self.map_vars(&mut |w| {
            if w == v {
                repl.clone()
            } else {
                LinExpr::var(w)
            }
        })
    }

    /// Greatest common divisor of all top-level term coefficients
    /// (0 when there are no terms).
    pub fn terms_gcd(&self) -> i64 {
        self.terms.iter().fold(0i64, |g, (c, _)| gcd(g, c.abs()))
    }

    /// Renders the expression using `names` to resolve variable ids.
    pub fn display_with<'a>(&'a self, names: &'a dyn VarNames) -> ExprDisplay<'a> {
        ExprDisplay { expr: self, names }
    }
}

/// Resolves [`VarId`]s to human-readable names for display.
pub trait VarNames {
    /// Returns the name of `v`.
    fn var_name(&self, v: VarId) -> String;
}

/// Names variables `v0, v1, ...` — the fallback display scheme.
pub struct DefaultNames;

impl VarNames for DefaultNames {
    fn var_name(&self, v: VarId) -> String {
        format!("v{}", v.0)
    }
}

impl VarNames for Vec<String> {
    fn var_name(&self, v: VarId) -> String {
        self.get(v.index())
            .cloned()
            .unwrap_or_else(|| format!("v{}", v.0))
    }
}

/// Display adapter returned by [`LinExpr::display_with`].
pub struct ExprDisplay<'a> {
    expr: &'a LinExpr,
    names: &'a dyn VarNames,
}

fn fmt_atom(a: &Atom, names: &dyn VarNames, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    match a {
        Atom::Var(v) => write!(f, "{}", names.var_name(*v)),
        Atom::Sym(s) => write!(f, "{s}"),
        Atom::Uf(u) => {
            write!(f, "{}(", u.name)?;
            for (k, arg) in u.args.iter().enumerate() {
                if k > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}", arg.display_with(names))?;
            }
            write!(f, ")")
        }
        Atom::Prod(fs) => {
            for (k, x) in fs.iter().enumerate() {
                if k > 0 {
                    write!(f, " * ")?;
                }
                fmt_atom(x, names, f)?;
            }
            Ok(())
        }
    }
}

impl fmt::Display for ExprDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let e = self.expr;
        if e.terms.is_empty() {
            return write!(f, "{}", e.constant);
        }
        let mut first = true;
        for (c, a) in &e.terms {
            if first {
                if *c == -1 {
                    write!(f, "-")?;
                } else if *c != 1 {
                    write!(f, "{c} * ")?;
                }
                first = false;
            } else if *c < 0 {
                if *c == -1 {
                    write!(f, " - ")?;
                } else {
                    write!(f, " - {} * ", -c)?;
                }
            } else if *c == 1 {
                write!(f, " + ")?;
            } else {
                write!(f, " + {c} * ")?;
            }
            fmt_atom(a, self.names, f)?;
        }
        if e.constant > 0 {
            write!(f, " + {}", e.constant)?;
        } else if e.constant < 0 {
            write!(f, " - {}", -e.constant)?;
        }
        Ok(())
    }
}

impl fmt::Display for LinExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.display_with(&DefaultNames))
    }
}

/// Non-negative greatest common divisor; `gcd(0, x) = |x|`.
pub fn gcd(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> VarId {
        VarId(i)
    }

    #[test]
    fn canonicalize_merges_and_sorts() {
        let mut e = LinExpr {
            constant: 3,
            terms: vec![
                (2, Atom::Var(v(1))),
                (1, Atom::Var(v(0))),
                (-2, Atom::Var(v(1))),
                (4, Atom::Sym("N".into())),
            ],
        };
        e.canonicalize();
        assert_eq!(e.terms, vec![(1, Atom::Var(v(0))), (4, Atom::Sym("N".into()))]);
        assert_eq!(e.constant, 3);
    }

    #[test]
    fn add_and_sub_are_inverse() {
        let a = LinExpr::var(v(0)).add(&LinExpr::constant(5));
        let b = LinExpr::sym("N").add(&LinExpr::var(v(1)).scaled(3));
        let s = a.add(&b);
        assert_eq!(s.sub(&b), a);
    }

    #[test]
    fn substitute_var_reaches_inside_uf_args() {
        // col(i + 1) with i := k - 1 becomes col(k)
        let call = UfCall::new("col", vec![LinExpr::var(v(0)).add(&LinExpr::constant(1))]);
        let e = LinExpr::uf(call);
        let repl = LinExpr::var(v(2)).add(&LinExpr::constant(-1));
        let out = e.substitute_var(v(0), &repl);
        let expect = LinExpr::uf(UfCall::new("col", vec![LinExpr::var(v(2))]));
        assert_eq!(out, expect);
    }

    #[test]
    fn uses_var_sees_nested_occurrences() {
        let inner = UfCall::new("f", vec![LinExpr::var(v(3))]);
        let outer = UfCall::new("g", vec![LinExpr::uf(inner)]);
        let e = LinExpr::uf(outer);
        assert!(e.uses_var(v(3)));
        assert!(!e.uses_var(v(2)));
        assert!(e.var_inside_uf(v(3)));
        assert_eq!(e.coeff_of_var(v(3)), 0);
    }

    #[test]
    fn coeff_queries() {
        let e = LinExpr {
            constant: 7,
            terms: vec![(2, Atom::Var(v(0))), (-3, Atom::Sym("NNZ".into()))],
        };
        assert_eq!(e.coeff_of_var(v(0)), 2);
        assert_eq!(e.coeff_of(&Atom::Sym("NNZ".into())), -3);
        assert_eq!(e.coeff_of_var(v(9)), 0);
    }

    #[test]
    fn display_is_readable() {
        let e = LinExpr {
            constant: -1,
            terms: vec![(1, Atom::Var(v(0))), (-2, Atom::Sym("N".into()))],
        };
        assert_eq!(e.to_string(), "v0 - 2 * N - 1");
        assert_eq!(LinExpr::zero().to_string(), "0");
        let neg = LinExpr::term(-1, Atom::Var(v(1)));
        assert_eq!(neg.to_string(), "-v1");
    }

    #[test]
    fn gcd_basics() {
        assert_eq!(gcd(0, 0), 0);
        assert_eq!(gcd(0, 5), 5);
        assert_eq!(gcd(12, -8), 4);
    }

    #[test]
    fn mentions_uf_nested() {
        let inner = UfCall::new("rowptr", vec![LinExpr::var(v(0))]);
        let outer = UfCall::new("perm", vec![LinExpr::uf(inner)]);
        let e = LinExpr::uf(outer);
        assert!(e.mentions_uf("rowptr"));
        assert!(e.mentions_uf("perm"));
        assert!(!e.mentions_uf("col"));
    }
}
