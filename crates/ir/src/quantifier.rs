//! Parsing the paper's universal-quantifier notation.
//!
//! Descriptors print their quantifiers in the Table-1 style —
//!
//! ```text
//! forall e1, e2 : e1 <= e2 <=> rowptr(e1) <= rowptr(e2)
//! forall n1, n2 : n1 < n2 <=> MORTON(row(n1), col(n1)) < MORTON(row(n2), col(n2))
//! ```
//!
//! — and this module parses that notation back into its semantic form: a
//! [`Monotonicity`] property on a single UF, or a *reordering* quantifier
//! naming a comparison function over per-position coordinate UFs.

use std::fmt;

use crate::uf::Monotonicity;

/// A parsed universal quantifier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParsedQuantifier {
    /// `forall e1, e2 : e1 (<|<=) e2 <=> uf(e1) (<|<=) uf(e2)` — an
    /// index-array property local to one UF.
    Monotonic {
        /// The constrained UF.
        uf: String,
        /// Strict (`Increasing`) or non-strict (`NonDecreasing`).
        monotonicity: Monotonicity,
    },
    /// `forall n1, n2 : n1 < n2 <=> F(g1(n1), ...) < F(g1(n2), ...)` — a
    /// total order on the stored nonzeros (the paper's unique
    /// contribution). `comparator` is `F` (e.g. `MORTON`); when the
    /// comparison is plain lexicographic the keys appear as a tuple.
    Reordering {
        /// Comparison function name; `None` for a bare lexicographic
        /// tuple.
        comparator: Option<String>,
        /// The per-position coordinate UFs, in key order.
        coord_ufs: Vec<String>,
    },
}

/// Error from quantifier parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuantifierParseError {
    /// Description of the failure.
    pub msg: String,
}

impl fmt::Display for QuantifierParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "quantifier parse error: {}", self.msg)
    }
}

impl std::error::Error for QuantifierParseError {}

fn err<T>(msg: impl Into<String>) -> Result<T, QuantifierParseError> {
    Err(QuantifierParseError { msg: msg.into() })
}

/// Splits `s` on the first occurrence of `sep` outside parentheses.
fn split_top(s: &str, sep: &str) -> Option<(String, String)> {
    let bytes = s.as_bytes();
    let mut depth = 0i32;
    let mut k = 0;
    while k + sep.len() <= bytes.len() {
        match bytes[k] {
            b'(' => depth += 1,
            b')' => depth -= 1,
            _ => {}
        }
        if depth == 0 && s[k..].starts_with(sep) {
            return Some((s[..k].to_string(), s[k + sep.len()..].to_string()));
        }
        k += 1;
    }
    None
}

/// A side of the conclusion: `name(args...)` with args either bare
/// quantified variables or nested single-argument calls `g(var)`.
fn parse_side(s: &str, var: &str) -> Result<(String, Vec<String>), QuantifierParseError> {
    let s = s.trim();
    let open = match s.find('(') {
        Some(k) => k,
        None => return err(format!("expected a call, found `{s}`")),
    };
    if !s.ends_with(')') {
        return err(format!("unbalanced call in `{s}`"));
    }
    let name = s[..open].trim().to_string();
    let inner = &s[open + 1..s.len() - 1];
    // Split args at top-level commas.
    let mut args = Vec::new();
    let mut depth = 0i32;
    let mut start = 0;
    for (k, ch) in inner.char_indices() {
        match ch {
            '(' => depth += 1,
            ')' => depth -= 1,
            ',' if depth == 0 => {
                args.push(inner[start..k].trim().to_string());
                start = k + 1;
            }
            _ => {}
        }
    }
    if !inner.trim().is_empty() {
        args.push(inner[start..].trim().to_string());
    }
    // Each arg must be the quantified variable itself or `g(var)`.
    let mut coord_ufs = Vec::new();
    for a in &args {
        if a == var {
            coord_ufs.push(String::new()); // identity coordinate
        } else if let Some(open) = a.find('(') {
            let g = a[..open].trim();
            let arg = a[open + 1..a.len().saturating_sub(1)].trim();
            if !a.ends_with(')') || arg != var {
                return err(format!("argument `{a}` is not `{var}` or `g({var})`"));
            }
            coord_ufs.push(g.to_string());
        } else {
            return err(format!("argument `{a}` is not `{var}` or `g({var})`"));
        }
    }
    Ok((name, coord_ufs))
}

/// Parses one quantifier in the paper's notation.
///
/// # Errors
/// Returns a [`QuantifierParseError`] describing the first malformed
/// piece.
pub fn parse_quantifier(text: &str) -> Result<ParsedQuantifier, QuantifierParseError> {
    let t = text.trim();
    let rest = t
        .strip_prefix("forall")
        .ok_or_else(|| QuantifierParseError { msg: "expected `forall`".into() })?;
    let (vars_part, body) = match split_top(rest, ":") {
        Some(x) => x,
        None => return err("expected `:` after the quantified variables"),
    };
    let vars: Vec<String> = vars_part.split(',').map(|v| v.trim().to_string()).collect();
    if vars.len() != 2 || vars.iter().any(String::is_empty) {
        return err("expected exactly two quantified variables");
    }
    let (premise, conclusion) = match split_top(&body, "<=>") {
        Some(x) => x,
        None => return err("expected `<=>`"),
    };
    // Premise: v1 (<|<=) v2.
    let premise = premise.trim();
    let strict_premise = if premise == format!("{} < {}", vars[0], vars[1]) {
        true
    } else if premise == format!("{} <= {}", vars[0], vars[1]) {
        false
    } else {
        return err(format!("unrecognized premise `{premise}`"));
    };
    // Conclusion: side1 (<|<=) side2.
    let conclusion = conclusion.trim();
    let (lhs, op_strict, rhs) = if let Some((l, r)) = split_top(conclusion, "<=") {
        (l, false, r)
    } else if let Some((l, r)) = split_top(conclusion, "<") {
        (l, true, r)
    } else {
        return err(format!("unrecognized conclusion `{conclusion}`"));
    };
    let (lname, largs) = parse_side(&lhs, &vars[0])?;
    let (rname, rargs) = parse_side(&rhs, &vars[1])?;
    if lname != rname || largs != rargs {
        return err("conclusion sides must apply the same key to each variable");
    }
    // Shape dispatch: a single bare-variable argument means the key IS the
    // UF itself (monotonic); otherwise it is a reordering comparator over
    // coordinate UFs.
    if largs.len() == 1 && largs[0].is_empty() {
        let monotonicity = if op_strict {
            Monotonicity::Increasing
        } else {
            Monotonicity::NonDecreasing
        };
        if strict_premise != op_strict {
            // e1 <= e2 <=> f(e1) <= f(e2) and e1 < e2 <=> f(e1) < f(e2)
            // are the canonical forms; mixed forms are ambiguous.
            return err("premise and conclusion strictness must match");
        }
        Ok(ParsedQuantifier::Monotonic { uf: lname, monotonicity })
    } else {
        Ok(ParsedQuantifier::Reordering {
            comparator: Some(lname),
            coord_ufs: largs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_monotonic_nondecreasing() {
        let q = parse_quantifier(
            "forall e1, e2 : e1 <= e2 <=> rowptr(e1) <= rowptr(e2)",
        )
        .unwrap();
        assert_eq!(
            q,
            ParsedQuantifier::Monotonic {
                uf: "rowptr".into(),
                monotonicity: Monotonicity::NonDecreasing
            }
        );
    }

    #[test]
    fn parses_monotonic_increasing() {
        let q =
            parse_quantifier("forall e1, e2 : e1 < e2 <=> off(e1) < off(e2)").unwrap();
        assert_eq!(
            q,
            ParsedQuantifier::Monotonic {
                uf: "off".into(),
                monotonicity: Monotonicity::Increasing
            }
        );
    }

    #[test]
    fn parses_morton_reordering() {
        let q = parse_quantifier(
            "forall n1, n2 : n1 < n2 <=> MORTON(rowm(n1), colm(n1)) < MORTON(rowm(n2), colm(n2))",
        )
        .unwrap();
        assert_eq!(
            q,
            ParsedQuantifier::Reordering {
                comparator: Some("MORTON".into()),
                coord_ufs: vec!["rowm".into(), "colm".into()],
            }
        );
    }

    #[test]
    fn round_trips_descriptor_generated_text() {
        // The Monotonicity printer and this parser agree.
        for m in [Monotonicity::NonDecreasing, Monotonicity::Increasing] {
            let text = m.quantifier_text("someuf");
            let q = parse_quantifier(&text).unwrap();
            assert_eq!(
                q,
                ParsedQuantifier::Monotonic { uf: "someuf".into(), monotonicity: m }
            );
        }
    }

    #[test]
    fn rejects_malformed_quantifiers() {
        assert!(parse_quantifier("for e1, e2 : ...").is_err());
        assert!(parse_quantifier("forall e1 : e1 < e1 <=> f(e1) < f(e1)").is_err());
        assert!(parse_quantifier("forall e1, e2 : e1 < e2 <=> f(e1)").is_err());
        // Mismatched sides.
        assert!(parse_quantifier(
            "forall e1, e2 : e1 < e2 <=> f(e1) < g(e2)"
        )
        .is_err());
        // Mixed strictness on a monotonic form.
        assert!(parse_quantifier(
            "forall e1, e2 : e1 <= e2 <=> f(e1) < f(e2)"
        )
        .is_err());
    }

    #[test]
    fn mismatched_keys_rejected() {
        assert!(parse_quantifier(
            "forall n1, n2 : n1 < n2 <=> M(a(n1), b(n1)) < M(b(n2), a(n2))"
        )
        .is_err());
    }
}
