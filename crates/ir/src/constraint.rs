//! Affine (in)equality constraints over [`LinExpr`]s.
//!
//! Every constraint is stored in homogeneous form:
//! * `Eq(e)` means `e == 0`
//! * `Geq(e)` means `e >= 0`
//!
//! Strict inequalities from the surface syntax (`a < b`) are normalized at
//! parse time to `b - a - 1 >= 0`, which is exact over the integers.

use std::fmt;

use crate::expr::{LinExpr, VarId, VarNames};

/// A single constraint in homogeneous form.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Constraint {
    /// `expr == 0`.
    Eq(LinExpr),
    /// `expr >= 0`.
    Geq(LinExpr),
}

/// What normalization concluded about a constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Normalized {
    /// The constraint is still informative.
    Keep,
    /// The constraint is trivially true and can be dropped.
    Tautology,
    /// The constraint is trivially false; the conjunction is empty.
    Contradiction,
}

impl Constraint {
    /// Builds `lhs == rhs`.
    pub fn eq(lhs: LinExpr, rhs: LinExpr) -> Self {
        Constraint::Eq(lhs.sub(&rhs))
    }

    /// Builds `lhs <= rhs`, i.e. `rhs - lhs >= 0`.
    pub fn le(lhs: LinExpr, rhs: LinExpr) -> Self {
        Constraint::Geq(rhs.sub(&lhs))
    }

    /// Builds `lhs < rhs`, i.e. `rhs - lhs - 1 >= 0`.
    pub fn lt(lhs: LinExpr, rhs: LinExpr) -> Self {
        Constraint::Geq(rhs.sub(&lhs).add(&LinExpr::constant(-1)))
    }

    /// Builds `lhs >= rhs`.
    pub fn ge(lhs: LinExpr, rhs: LinExpr) -> Self {
        Constraint::le(rhs, lhs)
    }

    /// Builds `lhs > rhs`.
    pub fn gt(lhs: LinExpr, rhs: LinExpr) -> Self {
        Constraint::lt(rhs, lhs)
    }

    /// The underlying expression (`e` of `e == 0` / `e >= 0`).
    pub fn expr(&self) -> &LinExpr {
        match self {
            Constraint::Eq(e) | Constraint::Geq(e) => e,
        }
    }

    /// Mutable access to the underlying expression.
    pub fn expr_mut(&mut self) -> &mut LinExpr {
        match self {
            Constraint::Eq(e) | Constraint::Geq(e) => e,
        }
    }

    /// Returns `true` for equality constraints.
    pub fn is_eq(&self) -> bool {
        matches!(self, Constraint::Eq(_))
    }

    /// Returns `true` if variable `v` occurs anywhere in the constraint.
    pub fn uses_var(&self, v: VarId) -> bool {
        self.expr().uses_var(v)
    }

    /// Returns `true` if the constraint mentions the named UF anywhere.
    pub fn mentions_uf(&self, name: &str) -> bool {
        self.expr().mentions_uf(name)
    }

    /// Substitutes `v := repl` everywhere.
    pub fn substitute_var(&self, v: VarId, repl: &LinExpr) -> Constraint {
        match self {
            Constraint::Eq(e) => Constraint::Eq(e.substitute_var(v, repl)),
            Constraint::Geq(e) => Constraint::Geq(e.substitute_var(v, repl)),
        }
    }

    /// Rewrites all variable occurrences via `f`.
    pub fn map_vars(&self, f: &mut impl FnMut(VarId) -> LinExpr) -> Constraint {
        match self {
            Constraint::Eq(e) => Constraint::Eq(e.map_vars(f)),
            Constraint::Geq(e) => Constraint::Geq(e.map_vars(f)),
        }
    }

    /// Normalizes the constraint in place: divides through by the GCD of
    /// the coefficients (with integer tightening for inequalities) and
    /// classifies trivial constraints.
    ///
    /// For an equality `g | coeffs` but `g ∤ constant` there is no integer
    /// solution, so the result is [`Normalized::Contradiction`].
    pub fn normalize(&mut self) -> Normalized {
        // Canonical sign for equalities: leading coefficient positive.
        if let Constraint::Eq(e) = self {
            if let Some((c, _)) = e.terms.first() {
                if *c < 0 {
                    *e = e.scaled(-1);
                }
            }
        }
        let g = self.expr().terms_gcd();
        match self {
            Constraint::Eq(e) => {
                if g == 0 {
                    return if e.constant == 0 {
                        Normalized::Tautology
                    } else {
                        Normalized::Contradiction
                    };
                }
                if e.constant % g != 0 {
                    return Normalized::Contradiction;
                }
                if g > 1 {
                    e.constant /= g;
                    for (c, _) in &mut e.terms {
                        *c /= g;
                    }
                }
                Normalized::Keep
            }
            Constraint::Geq(e) => {
                if g == 0 {
                    return if e.constant >= 0 {
                        Normalized::Tautology
                    } else {
                        Normalized::Contradiction
                    };
                }
                if g > 1 {
                    // e >= 0  <=>  (e/g) >= 0 with the constant floored,
                    // which is the standard integer tightening.
                    for (c, _) in &mut e.terms {
                        *c /= g;
                    }
                    e.constant = e.constant.div_euclid(g);
                }
                Normalized::Keep
            }
        }
    }

    /// Renders the constraint with readable variable names, splitting
    /// positive and negative terms across the comparison operator.
    pub fn display_with<'a>(&'a self, names: &'a dyn VarNames) -> ConstraintDisplay<'a> {
        ConstraintDisplay { c: self, names }
    }
}

/// Display adapter returned by [`Constraint::display_with`].
pub struct ConstraintDisplay<'a> {
    c: &'a Constraint,
    names: &'a dyn VarNames,
}

impl fmt::Display for ConstraintDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (e, op) = match self.c {
            Constraint::Eq(e) => (e, "="),
            Constraint::Geq(e) => (e, ">="),
        };
        // Split into lhs (positive terms) and rhs (negated negative terms).
        let mut lhs = LinExpr::zero();
        let mut rhs = LinExpr::zero();
        for (c, a) in &e.terms {
            if *c > 0 {
                lhs.terms.push((*c, a.clone()));
            } else {
                rhs.terms.push((-*c, a.clone()));
            }
        }
        if e.constant > 0 {
            lhs.constant = e.constant;
        } else {
            rhs.constant = -e.constant;
        }
        // `0 >= rhs` reads better as `rhs <= 0`.
        if lhs.is_zero() && !rhs.is_zero() {
            let flipped = match self.c {
                Constraint::Eq(_) => "=",
                Constraint::Geq(_) => "<=",
            };
            return write!(f, "{} {} 0", rhs.display_with(self.names), flipped);
        }
        write!(
            f,
            "{} {} {}",
            lhs.display_with(self.names),
            op,
            rhs.display_with(self.names)
        )
    }
}

/// Tightened GCD-based normalization result for a whole constraint list:
/// `None` if a contradiction was found.
pub fn normalize_all(constraints: &mut Vec<Constraint>) -> Option<()> {
    let mut out = Vec::with_capacity(constraints.len());
    for mut c in constraints.drain(..) {
        c.expr_mut().canonicalize();
        match c.normalize() {
            Normalized::Keep => out.push(c),
            Normalized::Tautology => {}
            Normalized::Contradiction => return None,
        }
    }
    // Deterministic order + dedup.
    out.sort_by(constraint_order);
    out.dedup();
    *constraints = out;
    Some(())
}

/// Total order used to keep constraint lists deterministic: equalities
/// first, then by expression structure.
pub fn constraint_order(a: &Constraint, b: &Constraint) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    match (a, b) {
        (Constraint::Eq(_), Constraint::Geq(_)) => Ordering::Less,
        (Constraint::Geq(_), Constraint::Eq(_)) => Ordering::Greater,
        _ => cmp_expr(a.expr(), b.expr()),
    }
}

fn cmp_expr(a: &LinExpr, b: &LinExpr) -> std::cmp::Ordering {
    let ka: Vec<_> = a.terms.iter().map(|(c, at)| (at.clone(), *c)).collect();
    let kb: Vec<_> = b.terms.iter().map(|(c, at)| (at.clone(), *c)).collect();
    ka.cmp(&kb).then(a.constant.cmp(&b.constant))
}

/// Returns constraints that mention variable `v` partitioned as
/// `(lower, upper, equalities, opaque)` bounds, interpreting each
/// inequality `e >= 0` with top-level coefficient `c` of `v`:
/// `c > 0` gives a lower bound, `c < 0` an upper bound. Constraints where
/// `v` appears only inside UF arguments are `opaque`.
pub fn classify_for_var(
    constraints: &[Constraint],
    v: VarId,
) -> (Vec<Constraint>, Vec<Constraint>, Vec<Constraint>, Vec<Constraint>) {
    let mut lower = Vec::new();
    let mut upper = Vec::new();
    let mut eqs = Vec::new();
    let mut opaque = Vec::new();
    for c in constraints {
        if !c.uses_var(v) {
            continue;
        }
        let coeff = c.expr().coeff_of_var(v);
        let inside = c.expr().var_inside_uf(v);
        match c {
            Constraint::Eq(_) if coeff != 0 && !inside => eqs.push(c.clone()),
            Constraint::Geq(_) if coeff > 0 && !inside => lower.push(c.clone()),
            Constraint::Geq(_) if coeff < 0 && !inside => upper.push(c.clone()),
            _ => opaque.push(c.clone()),
        }
    }
    (lower, upper, eqs, opaque)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{Atom, DefaultNames};

    fn v(i: u32) -> VarId {
        VarId(i)
    }

    #[test]
    fn builders_normalize_to_homogeneous_form() {
        let c = Constraint::lt(LinExpr::var(v(0)), LinExpr::sym("N"));
        // N - v0 - 1 >= 0
        match &c {
            Constraint::Geq(e) => {
                assert_eq!(e.constant, -1);
                assert_eq!(e.coeff_of_var(v(0)), -1);
                assert_eq!(e.coeff_of(&Atom::Sym("N".into())), 1);
            }
            _ => panic!("expected Geq"),
        }
    }

    #[test]
    fn normalize_divides_by_gcd() {
        let mut c = Constraint::Eq(LinExpr {
            constant: 6,
            terms: vec![(2, Atom::Var(v(0))), (4, Atom::Var(v(1)))],
        });
        assert_eq!(c.normalize(), Normalized::Keep);
        assert_eq!(c.expr().constant, 3);
        assert_eq!(c.expr().coeff_of_var(v(0)), 1);
        assert_eq!(c.expr().coeff_of_var(v(1)), 2);
    }

    #[test]
    fn normalize_detects_integer_infeasibility() {
        // 2x + 1 == 0 has no integer solution.
        let mut c = Constraint::Eq(LinExpr {
            constant: 1,
            terms: vec![(2, Atom::Var(v(0)))],
        });
        assert_eq!(c.normalize(), Normalized::Contradiction);
    }

    #[test]
    fn normalize_tightens_inequalities() {
        // 2x - 1 >= 0  =>  x - 1 >= 0 over integers (x >= 1/2 => x >= 1).
        let mut c = Constraint::Geq(LinExpr {
            constant: -1,
            terms: vec![(2, Atom::Var(v(0)))],
        });
        assert_eq!(c.normalize(), Normalized::Keep);
        assert_eq!(c.expr().constant, -1);
        assert_eq!(c.expr().coeff_of_var(v(0)), 1);
    }

    #[test]
    fn trivial_constraints_classified() {
        let mut t = Constraint::Geq(LinExpr::constant(3));
        assert_eq!(t.normalize(), Normalized::Tautology);
        let mut bad = Constraint::Geq(LinExpr::constant(-3));
        assert_eq!(bad.normalize(), Normalized::Contradiction);
        let mut z = Constraint::Eq(LinExpr::zero());
        assert_eq!(z.normalize(), Normalized::Tautology);
    }

    #[test]
    fn classify_for_var_partitions_bounds() {
        let lo = Constraint::ge(LinExpr::var(v(0)), LinExpr::zero());
        let hi = Constraint::lt(LinExpr::var(v(0)), LinExpr::sym("N"));
        let eq = Constraint::eq(LinExpr::var(v(0)), LinExpr::sym("K"));
        let op = Constraint::eq(
            LinExpr::uf(crate::expr::UfCall::new("f", vec![LinExpr::var(v(0))])),
            LinExpr::zero(),
        );
        let all = vec![lo, hi, eq, op];
        let (l, u, e, o) = classify_for_var(&all, v(0));
        assert_eq!((l.len(), u.len(), e.len(), o.len()), (1, 1, 1, 1));
    }

    #[test]
    fn display_splits_sides() {
        let c = Constraint::lt(LinExpr::var(v(0)), LinExpr::sym("N"));
        let s = c.display_with(&DefaultNames).to_string();
        assert_eq!(s, "N >= v0 + 1");
    }

    #[test]
    fn normalize_all_dedups_and_sorts() {
        let c1 = Constraint::ge(LinExpr::var(v(0)), LinExpr::zero());
        let mut cs = vec![c1.clone(), c1.clone(), Constraint::Geq(LinExpr::constant(1))];
        assert!(normalize_all(&mut cs).is_some());
        assert_eq!(cs.len(), 1);
        let mut bad = vec![Constraint::Geq(LinExpr::constant(-1))];
        assert!(normalize_all(&mut bad).is_none());
    }
}
