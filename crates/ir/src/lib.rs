//! # spf-ir-sets
//!
//! Presburger sets and relations with **uninterpreted functions** — the
//! mathematical substrate of the Sparse Polyhedral Framework (SPF) used by
//! *"Code Synthesis for Sparse Tensor Format Conversion and Optimization"*
//! (CGO 2023). This crate plays the role of IEGenLib and the Omega library
//! in the paper's toolchain.
//!
//! The pieces:
//!
//! * [`expr`] — integer-linear expressions over tuple variables, symbolic
//!   constants, and UF calls such as `rowptr(i + 1)`.
//! * [`constraint`] — (in)equality constraints in homogeneous form with
//!   integer-exact normalization.
//! * [`formula`] — [`Set`] and [`Relation`] as unions of conjunctions, with
//!   [`Relation::inverse`], [`Relation::compose`], [`Relation::apply`], and
//!   simplification (existential elimination through equalities).
//! * [`parser`] — the IEGenLib-style surface syntax,
//!   e.g. `{[n,ii,jj] -> [i,j] : row1(n) = i && col1(n) = j}`.
//! * [`project`] — projection via substitution and exact Fourier–Motzkin.
//! * [`uf`] — UF signatures: domain, range, monotonicity.
//! * [`order`] — order keys: the semantics of reordering universal
//!   quantifiers (lexicographic / Morton / user-defined comparators).
//!
//! ## Example
//!
//! ```
//! use spf_ir::{parse_relation, parse_set};
//!
//! // The sparse-to-dense map of COO (Table 1 of the paper):
//! let coo = parse_relation(
//!     "{ [n, ii, jj] -> [i, j] : row1(n) = i && col1(n) = j && ii = i && jj = j \
//!        && 0 <= i < NR && 0 <= j < NC && 0 <= n < NNZ }",
//! ).unwrap();
//!
//! // Invert it and compose with itself: the identity conversion.
//! let mut id = coo.inverse().compose(&coo);
//! id.simplify();
//! assert_eq!(id.in_arity(), 3);
//! assert_eq!(id.out_arity(), 3);
//!
//! let dense = parse_set("{ [i, j] : 0 <= i < NR && 0 <= j < NC }").unwrap();
//! assert_eq!(dense.arity(), 2);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod constraint;
pub mod expr;
pub mod formula;
pub mod order;
pub mod parser;
pub mod project;
pub mod quantifier;
pub mod uf;

pub use constraint::Constraint;
pub use expr::{Atom, LinExpr, UfCall, VarId};
pub use formula::{Conjunction, Relation, Set};
pub use order::{Comparator, KeyDim, OrderKey};
pub use parser::{parse_relation, parse_set, ParseError};
pub use project::{project_onto, project_out};
pub use quantifier::{parse_quantifier, ParsedQuantifier, QuantifierParseError};
pub use uf::{Monotonicity, UfEnvironment, UfSignature};
