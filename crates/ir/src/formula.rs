//! Sets and relations of the sparse polyhedral framework.
//!
//! A [`Set`] is a union of [`Conjunction`]s over a named integer tuple; a
//! [`Relation`] is the same over a pair of tuples. Constraints may mention
//! uninterpreted functions, which is what distinguishes the *sparse*
//! polyhedral framework from the classic affine one.
//!
//! The operations implemented here mirror the IEGenLib surface the paper
//! relies on: [`Relation::inverse`], [`Relation::compose`],
//! [`Relation::apply`], plus simplification (constraint normalization and
//! existential-variable elimination through equalities).

use std::fmt;

use crate::constraint::{constraint_order, normalize_all, Constraint};
use crate::expr::{LinExpr, VarId, VarNames};

/// One conjunction of constraints over `arity` tuple variables plus a list
/// of existential variables.
///
/// Variable ids `0..arity` are tuple variables; ids `arity..arity+exists`
/// are existential variables local to this conjunction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Conjunction {
    arity: u32,
    exists: Vec<String>,
    /// The constraints; kept normalized and deterministically ordered by
    /// [`Conjunction::simplify`].
    pub constraints: Vec<Constraint>,
}

impl Conjunction {
    /// Creates an unconstrained conjunction over `arity` tuple variables.
    pub fn new(arity: u32) -> Self {
        Conjunction { arity, exists: Vec::new(), constraints: Vec::new() }
    }

    /// Number of tuple variables.
    pub fn arity(&self) -> u32 {
        self.arity
    }

    /// Names of the existential variables.
    pub fn exists(&self) -> &[String] {
        &self.exists
    }

    /// Total number of variables (tuple + existential).
    pub fn n_vars(&self) -> u32 {
        self.arity + self.exists.len() as u32
    }

    /// Returns `true` if `v` is an existential variable of this
    /// conjunction.
    pub fn is_existential(&self, v: VarId) -> bool {
        v.0 >= self.arity && v.0 < self.n_vars()
    }

    /// Adds a constraint.
    pub fn add(&mut self, c: Constraint) {
        self.constraints.push(c);
    }

    /// Introduces a fresh existential variable and returns its id.
    pub fn fresh_exist(&mut self, name: impl Into<String>) -> VarId {
        let id = self.n_vars();
        self.exists.push(name.into());
        VarId(id)
    }

    /// Rewrites every variable id through `f`. The caller is responsible
    /// for updating `arity`/`exists` consistently; this is the low-level
    /// building block for the relation operations.
    fn map_var_ids(&mut self, f: &impl Fn(VarId) -> VarId) {
        for c in &mut self.constraints {
            *c = c.map_vars(&mut |v| LinExpr::var(f(v)));
        }
    }

    /// If some equality defines existential `v` as `v = expr` with a unit
    /// top-level coefficient (and `v` not inside a UF argument of that same
    /// equality), returns `(constraint index, expr)`.
    fn solvable_equality(&self, v: VarId) -> Option<(usize, LinExpr)> {
        for (idx, c) in self.constraints.iter().enumerate() {
            let Constraint::Eq(e) = c else { continue };
            let coeff = e.coeff_of_var(v);
            if coeff.abs() != 1 || e.var_inside_uf(v) {
                continue;
            }
            // v = -(e - coeff*v)/coeff
            let mut rest = e.clone();
            rest.terms.retain(|(_, a)| !matches!(a, crate::expr::Atom::Var(w) if *w == v));
            let expr = rest.scaled(-coeff); // coeff is ±1 so this solves exactly
            return Some((idx, expr));
        }
        None
    }

    /// Simplifies in place. Returns `false` when the conjunction is
    /// detectably unsatisfiable (the caller should drop it).
    ///
    /// Simplification (1) canonicalizes and GCD-normalizes every
    /// constraint, (2) eliminates existential variables that are defined by
    /// an equality, and (3) compacts away unused existential variables.
    pub fn simplify(&mut self) -> bool {
        loop {
            if normalize_all(&mut self.constraints).is_none() {
                return false;
            }
            // Try to eliminate one existential variable per round.
            let mut changed = false;
            for raw in self.arity..self.n_vars() {
                let v = VarId(raw);
                if let Some((idx, expr)) = self.solvable_equality(v) {
                    // Don't self-substitute (expr must not mention v; it
                    // can't, since we removed v's top-level term and v was
                    // not inside a UF arg of this constraint — but it may
                    // appear in *other* UF args of the same expr).
                    if expr.uses_var(v) {
                        continue;
                    }
                    self.constraints.remove(idx);
                    for c in &mut self.constraints {
                        *c = c.substitute_var(v, &expr);
                    }
                    changed = true;
                    break;
                }
            }
            if !changed {
                break;
            }
        }
        self.compact_exists();
        normalize_all(&mut self.constraints).is_some()
    }

    /// Removes existential variables that no longer occur and renumbers
    /// the remaining ones densely.
    fn compact_exists(&mut self) {
        let n = self.n_vars();
        let mut used = vec![false; n as usize];
        let mut buf = Vec::new();
        for c in &self.constraints {
            buf.clear();
            c.expr().collect_vars(&mut buf);
            for v in &buf {
                if v.0 < n {
                    used[v.index()] = true;
                }
            }
        }
        let mut remap: Vec<Option<u32>> = vec![None; n as usize];
        for i in 0..self.arity {
            remap[i as usize] = Some(i);
        }
        let mut next = self.arity;
        let mut new_exists = Vec::new();
        for (k, name) in self.exists.iter().enumerate() {
            let old = self.arity as usize + k;
            if used[old] {
                remap[old] = Some(next);
                new_exists.push(name.clone());
                next += 1;
            }
        }
        if new_exists.len() == self.exists.len() {
            return;
        }
        self.exists = new_exists;
        self.map_var_ids(&|v| VarId(remap[v.index()].expect("used var must be mapped")));
    }

    /// Embeds this conjunction into a larger variable space via `f`,
    /// producing constraints only (arity bookkeeping is the caller's).
    fn remapped_constraints(&self, f: &impl Fn(VarId) -> VarId) -> Vec<Constraint> {
        self.constraints
            .iter()
            .map(|c| c.map_vars(&mut |v| LinExpr::var(f(v))))
            .collect()
    }

    /// Returns equality-defined expression for tuple variable `v` in terms
    /// of the remaining variables, if one exists (used by code generation to
    /// emit `let` bindings such as `j = col(k)`).
    pub fn defining_equality(&self, v: VarId) -> Option<LinExpr> {
        self.solvable_equality(v).map(|(_, e)| e)
    }

    /// Sorts constraints deterministically without further rewriting.
    pub fn sort_constraints(&mut self) {
        self.constraints.sort_by(constraint_order);
    }
}

/// A union of conjunctions over one named tuple.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Set {
    tuple: Vec<String>,
    conjs: Vec<Conjunction>,
}

impl Set {
    /// Creates a set with the given tuple variable names and a single
    /// unconstrained conjunction.
    pub fn universe(tuple: Vec<String>) -> Self {
        let arity = tuple.len() as u32;
        Set { tuple, conjs: vec![Conjunction::new(arity)] }
    }

    /// Creates a set from explicit conjunctions.
    pub fn from_conjunctions(tuple: Vec<String>, conjs: Vec<Conjunction>) -> Self {
        debug_assert!(conjs.iter().all(|c| c.arity() == tuple.len() as u32));
        Set { tuple, conjs }
    }

    /// An empty set (no conjunctions) over the given tuple.
    pub fn empty(tuple: Vec<String>) -> Self {
        Set { tuple, conjs: Vec::new() }
    }

    /// Tuple variable names.
    pub fn tuple(&self) -> &[String] {
        &self.tuple
    }

    /// Tuple arity.
    pub fn arity(&self) -> u32 {
        self.tuple.len() as u32
    }

    /// The conjunctions of the union.
    pub fn conjunctions(&self) -> &[Conjunction] {
        &self.conjs
    }

    /// Mutable access to the conjunctions.
    pub fn conjunctions_mut(&mut self) -> &mut Vec<Conjunction> {
        &mut self.conjs
    }

    /// Returns `true` if the set has no conjunctions (syntactically empty).
    pub fn is_empty(&self) -> bool {
        self.conjs.is_empty()
    }

    /// Union with another set over an identically named tuple (tuple names
    /// of `other` are ignored; arities must match).
    pub fn union(mut self, other: Set) -> Set {
        assert_eq!(self.arity(), other.arity(), "union arity mismatch");
        self.conjs.extend(other.conjs);
        self
    }

    /// Simplifies every conjunction, dropping unsatisfiable ones.
    pub fn simplify(&mut self) {
        self.conjs.retain_mut(|c| c.simplify());
    }

    /// Intersection with another set of the same arity: the cross product
    /// of conjunction pairs, each simplified (unsatisfiable pairs drop).
    ///
    /// # Panics
    /// Panics on arity mismatch.
    pub fn intersect(&self, other: &Set) -> Set {
        assert_eq!(self.arity(), other.arity(), "intersect arity mismatch");
        let arity = self.arity();
        let mut conjs = Vec::new();
        for a in &self.conjs {
            for b in &other.conjs {
                let mut nc = Conjunction::new(arity);
                let a_ex = a.exists.len() as u32;
                nc.exists.extend(a.exists.iter().cloned());
                nc.exists.extend(b.exists.iter().cloned());
                nc.constraints.extend(a.remapped_constraints(&|v: VarId| v));
                nc.constraints.extend(b.remapped_constraints(&|v: VarId| {
                    if v.0 < arity {
                        v
                    } else {
                        VarId(v.0 + a_ex)
                    }
                }));
                if nc.simplify() {
                    conjs.push(nc);
                }
            }
        }
        Set { tuple: self.tuple.clone(), conjs }
    }

    /// Variable names (tuple followed by a conjunction's existentials) for
    /// display of conjunction `k`.
    pub fn names_for(&self, k: usize) -> Vec<String> {
        let mut names = self.tuple.clone();
        names.extend(self.conjs[k].exists().iter().cloned());
        names
    }
}

/// Shared display logic for `Set` and `Relation` bodies.
macro_rules! fmt_union_body {
    () => {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            if self.conjs.is_empty() {
                write!(f, "{{ ")?;
                fmt_tuple_decl(self, f)?;
                return write!(f, " : FALSE }}");
            }
            for (k, c) in self.conjs.iter().enumerate() {
                if k > 0 {
                    write!(f, " union ")?;
                }
                write!(f, "{{ ")?;
                fmt_tuple_decl(self, f)?;
                let names = self.names_for(k);
                if !c.exists().is_empty() || !c.constraints.is_empty() {
                    write!(f, " : ")?;
                }
                if !c.exists().is_empty() {
                    write!(f, "exists({}) : ", c.exists().join(", "))?;
                }
                for (i, con) in c.constraints.iter().enumerate() {
                    if i > 0 {
                        write!(f, " && ")?;
                    }
                    write!(f, "{}", con.display_with(&names))?;
                }
                write!(f, " }}")?;
            }
            Ok(())
        }
    };
}

trait TupleDeclFmt {
    fn fmt_decl(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result;
}

impl TupleDeclFmt for Set {
    fn fmt_decl(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}]", self.tuple.join(", "))
    }
}

fn fmt_tuple_decl<T: TupleDeclFmt>(t: &T, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    t.fmt_decl(f)
}

impl fmt::Display for Set {
    fmt_union_body!();
}

/// A union of conjunctions over an input and an output tuple.
///
/// Variable ids `0..in_arity` are input tuple variables and
/// `in_arity..in_arity+out_arity` are output tuple variables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Relation {
    in_tuple: Vec<String>,
    out_tuple: Vec<String>,
    conjs: Vec<Conjunction>,
}

impl Relation {
    /// Creates a relation with a single unconstrained conjunction.
    pub fn universe(in_tuple: Vec<String>, out_tuple: Vec<String>) -> Self {
        let arity = (in_tuple.len() + out_tuple.len()) as u32;
        Relation { in_tuple, out_tuple, conjs: vec![Conjunction::new(arity)] }
    }

    /// Creates a relation from explicit conjunctions.
    pub fn from_conjunctions(
        in_tuple: Vec<String>,
        out_tuple: Vec<String>,
        conjs: Vec<Conjunction>,
    ) -> Self {
        debug_assert!(conjs
            .iter()
            .all(|c| c.arity() == (in_tuple.len() + out_tuple.len()) as u32));
        Relation { in_tuple, out_tuple, conjs }
    }

    /// Input tuple names.
    pub fn in_tuple(&self) -> &[String] {
        &self.in_tuple
    }

    /// Output tuple names.
    pub fn out_tuple(&self) -> &[String] {
        &self.out_tuple
    }

    /// Input arity.
    pub fn in_arity(&self) -> u32 {
        self.in_tuple.len() as u32
    }

    /// Output arity.
    pub fn out_arity(&self) -> u32 {
        self.out_tuple.len() as u32
    }

    /// The conjunctions of the union.
    pub fn conjunctions(&self) -> &[Conjunction] {
        &self.conjs
    }

    /// Mutable access to the conjunctions.
    pub fn conjunctions_mut(&mut self) -> &mut Vec<Conjunction> {
        &mut self.conjs
    }

    /// Id of the `k`-th input tuple variable.
    pub fn in_var(&self, k: usize) -> VarId {
        debug_assert!(k < self.in_tuple.len());
        VarId(k as u32)
    }

    /// Id of the `k`-th output tuple variable.
    pub fn out_var(&self, k: usize) -> VarId {
        debug_assert!(k < self.out_tuple.len());
        VarId((self.in_tuple.len() + k) as u32)
    }

    /// Simplifies every conjunction, dropping unsatisfiable ones.
    pub fn simplify(&mut self) {
        self.conjs.retain_mut(|c| c.simplify());
    }

    /// Swaps input and output tuples: `{x -> y : C}⁻¹ = {y -> x : C}`.
    pub fn inverse(&self) -> Relation {
        let a = self.in_arity();
        let b = self.out_arity();
        let conjs = self
            .conjs
            .iter()
            .map(|c| {
                let mut nc = Conjunction::new(a + b);
                nc.exists = c.exists.clone();
                nc.constraints = c.remapped_constraints(&|v: VarId| {
                    if v.0 < a {
                        VarId(v.0 + b) // input becomes output
                    } else if v.0 < a + b {
                        VarId(v.0 - a) // output becomes input
                    } else {
                        v // existentials keep their slots
                    }
                });
                nc
            })
            .collect();
        Relation {
            in_tuple: self.out_tuple.clone(),
            out_tuple: self.in_tuple.clone(),
            conjs,
        }
    }

    /// Functional composition `self ∘ other`: with `other : A → B` and
    /// `self : B → C`, produces `A → C`. The shared `B` tuple becomes
    /// existential and is eliminated by simplification where equalities
    /// allow (the usual case for the paper's format maps, which are
    /// functions).
    ///
    /// # Panics
    /// Panics when `other`'s output arity differs from `self`'s input
    /// arity.
    pub fn compose(&self, other: &Relation) -> Relation {
        let a = other.in_arity();
        let b = other.out_arity();
        assert_eq!(
            b,
            self.in_arity(),
            "compose arity mismatch: {} -> {} vs {} -> {}",
            other.in_arity(),
            other.out_arity(),
            self.in_arity(),
            self.out_arity()
        );
        let c = self.out_arity();
        let mut out_conjs = Vec::new();
        for oc in &other.conjs {
            for sc in &self.conjs {
                let o_ex = oc.exists.len() as u32;
                let mut nc = Conjunction::new(a + c);
                // Existential layout: [B tuple][other exists][self exists].
                for name in &other.out_tuple {
                    nc.exists.push(format!("{name}_mid"));
                }
                nc.exists.extend(oc.exists.iter().cloned());
                nc.exists.extend(sc.exists.iter().cloned());
                let b_base = a + c;
                // other: A -> B
                nc.constraints.extend(oc.remapped_constraints(&|v: VarId| {
                    if v.0 < a {
                        v
                    } else if v.0 < a + b {
                        VarId(b_base + (v.0 - a))
                    } else {
                        VarId(b_base + b + (v.0 - a - b))
                    }
                }));
                // self: B -> C
                nc.constraints.extend(sc.remapped_constraints(&|v: VarId| {
                    if v.0 < b {
                        VarId(b_base + v.0)
                    } else if v.0 < b + c {
                        VarId(a + (v.0 - b))
                    } else {
                        VarId(b_base + b + o_ex + (v.0 - b - c))
                    }
                }));
                if nc.simplify() {
                    out_conjs.push(nc);
                }
            }
        }
        Relation {
            in_tuple: other.in_tuple.clone(),
            out_tuple: self.out_tuple.clone(),
            conjs: out_conjs,
        }
    }

    /// Applies the relation to a set: with `self : A → B` and `s ⊆ A`,
    /// returns `{y ∈ B : ∃x ∈ s, x → y}`.
    pub fn apply(&self, s: &Set) -> Set {
        let a = self.in_arity();
        assert_eq!(a, s.arity(), "apply arity mismatch");
        let b = self.out_arity();
        let mut out_conjs = Vec::new();
        for rc in &self.conjs {
            for sc in s.conjunctions() {
                let r_ex = rc.exists.len() as u32;
                let mut nc = Conjunction::new(b);
                for name in &self.in_tuple {
                    nc.exists.push(format!("{name}_in"));
                }
                nc.exists.extend(rc.exists.iter().cloned());
                nc.exists.extend(sc.exists().iter().cloned());
                // relation: A -> B
                nc.constraints.extend(rc.remapped_constraints(&|v: VarId| {
                    if v.0 < a {
                        VarId(b + v.0)
                    } else if v.0 < a + b {
                        VarId(v.0 - a)
                    } else {
                        VarId(b + a + (v.0 - a - b))
                    }
                }));
                // set over A
                nc.constraints.extend(sc.remapped_constraints(&|v: VarId| {
                    if v.0 < a {
                        VarId(b + v.0)
                    } else {
                        VarId(b + a + r_ex + (v.0 - a))
                    }
                }));
                if nc.simplify() {
                    out_conjs.push(nc);
                }
            }
        }
        Set { tuple: self.out_tuple.clone(), conjs: out_conjs }
    }

    /// The domain of the relation: input tuples for which some output
    /// exists (output variables become existentials, eliminated where
    /// equalities allow).
    pub fn domain(&self) -> Set {
        let a = self.in_arity();
        let _b = self.out_arity();
        let conjs = self
            .conjs
            .iter()
            .filter_map(|c| {
                let mut nc = Conjunction::new(a);
                for name in &self.out_tuple {
                    nc.exists.push(format!("{name}_out"));
                }
                nc.exists.extend(c.exists.iter().cloned());
                nc.constraints = c.remapped_constraints(&|v: VarId| v);
                nc.simplify().then_some(nc)
            })
            .collect();
        Set { tuple: self.in_tuple.clone(), conjs }
    }

    /// The range of the relation: output tuples reachable from some
    /// input.
    pub fn range(&self) -> Set {
        self.inverse().domain()
    }

    /// Views the relation as a set over the concatenated
    /// `[input, output]` tuple — the paper uses this as the domain of the
    /// generated copy code ("the composed relation as a set").
    pub fn as_combined_set(&self) -> Set {
        let mut tuple = self.in_tuple.clone();
        tuple.extend(self.out_tuple.iter().cloned());
        Set { tuple, conjs: self.conjs.clone() }
    }

    /// Heuristic functionality test used to order synthesis: every output
    /// tuple variable must be defined by an equality over input variables,
    /// symbolic constants, and UFs of those (per conjunction).
    pub fn is_function(&self) -> bool {
        let a = self.in_arity();
        let b = self.out_arity();
        self.conjs.iter().all(|c| {
            (0..b).all(|k| {
                let v = VarId(a + k);
                match c.defining_equality(v) {
                    Some(e) => {
                        let mut vars = Vec::new();
                        e.collect_vars(&mut vars);
                        vars.iter().all(|w| w.0 < a)
                    }
                    None => false,
                }
            })
        })
    }

    /// Variable names (input ++ output ++ conjunction `k`'s existentials)
    /// for display purposes.
    pub fn names_for(&self, k: usize) -> Vec<String> {
        let mut names = self.in_tuple.clone();
        names.extend(self.out_tuple.iter().cloned());
        names.extend(self.conjs[k].exists().iter().cloned());
        names
    }
}

impl TupleDeclFmt for Relation {
    fn fmt_decl(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] -> [{}]",
            self.in_tuple.join(", "),
            self.out_tuple.join(", ")
        )
    }
}

impl fmt::Display for Relation {
    fmt_union_body!();
}

/// Variable-name resolution inside a specific conjunction of a set or
/// relation.
pub struct ConjNames {
    names: Vec<String>,
}

impl ConjNames {
    /// Builds a resolver from a full name list (tuple ++ existentials).
    pub fn new(names: Vec<String>) -> Self {
        ConjNames { names }
    }
}

impl VarNames for ConjNames {
    fn var_name(&self, v: VarId) -> String {
        self.names
            .get(v.index())
            .cloned()
            .unwrap_or_else(|| format!("v{}", v.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{LinExpr as E, UfCall, VarId};

    fn v(i: u32) -> VarId {
        VarId(i)
    }

    /// `{[i, j] : 0 <= i < N && 0 <= j < M}`
    fn rect_set() -> Set {
        let mut c = Conjunction::new(2);
        c.add(Constraint::ge(E::var(v(0)), E::zero()));
        c.add(Constraint::lt(E::var(v(0)), E::sym("N")));
        c.add(Constraint::ge(E::var(v(1)), E::zero()));
        c.add(Constraint::lt(E::var(v(1)), E::sym("M")));
        Set::from_conjunctions(vec!["i".into(), "j".into()], vec![c])
    }

    /// `{[i, j] -> [j, i]}` (interchange)
    fn interchange() -> Relation {
        let mut c = Conjunction::new(4);
        c.add(Constraint::eq(E::var(v(2)), E::var(v(1))));
        c.add(Constraint::eq(E::var(v(3)), E::var(v(0))));
        Relation::from_conjunctions(
            vec!["i".into(), "j".into()],
            vec!["jo".into(), "io".into()],
            vec![c],
        )
    }

    #[test]
    fn inverse_swaps_tuples() {
        let r = interchange();
        let inv = r.inverse();
        assert_eq!(inv.in_tuple(), &["jo", "io"]);
        assert_eq!(inv.out_tuple(), &["i", "j"]);
        // inverse of interchange is interchange: out0 = in1, out1 = in0.
        let c = &inv.conjunctions()[0];
        let mut con = c.constraints.clone();
        assert!(normalize_all(&mut con).is_some());
        // {[jo,io] -> [i,j] : i = io && j = jo}
        let expect1 = Constraint::eq(E::var(v(2)), E::var(v(1)));
        let expect2 = Constraint::eq(E::var(v(3)), E::var(v(0)));
        let mut expects = vec![expect1, expect2];
        assert!(normalize_all(&mut expects).is_some());
        assert_eq!(con, expects);
    }

    #[test]
    fn double_inverse_is_identity() {
        let r = interchange();
        let mut rr = r.inverse().inverse();
        let mut orig = r.clone();
        rr.simplify();
        orig.simplify();
        assert_eq!(rr, orig);
    }

    #[test]
    fn apply_interchange_to_rectangle() {
        let s = rect_set();
        let r = interchange();
        let mut out = r.apply(&s);
        out.simplify();
        assert_eq!(out.tuple(), &["jo", "io"]);
        assert_eq!(out.conjunctions().len(), 1);
        let c = &out.conjunctions()[0];
        // All existentials should have been eliminated by equalities.
        assert!(c.exists().is_empty(), "exists left: {:?}", c.exists());
        // Constraints: 0 <= jo < M, 0 <= io < N.
        assert_eq!(c.constraints.len(), 4);
        let names = out.names_for(0);
        let strs: Vec<String> = c
            .constraints
            .iter()
            .map(|x| x.display_with(&names).to_string())
            .collect();
        assert!(strs.iter().any(|s| s.contains("jo")));
        assert!(strs.iter().any(|s| s.contains("io")));
    }

    #[test]
    fn compose_interchange_twice_is_identity_map() {
        let r = interchange();
        let mut id = r.compose(&r);
        id.simplify();
        assert_eq!(id.conjunctions().len(), 1);
        let c = &id.conjunctions()[0];
        assert!(c.exists().is_empty());
        // Expect out0 = in0 && out1 = in1.
        let mut expect = vec![
            Constraint::eq(E::var(v(2)), E::var(v(0))),
            Constraint::eq(E::var(v(3)), E::var(v(1))),
        ];
        assert!(normalize_all(&mut expect).is_some());
        assert_eq!(c.constraints, expect);
    }

    #[test]
    fn compose_keeps_uf_constraints() {
        // other = {[n] -> [i] : i = row(n) && 0 <= n < NNZ}
        let mut oc = Conjunction::new(2);
        oc.add(Constraint::eq(
            E::var(v(1)),
            E::uf(UfCall::new("row", vec![E::var(v(0))])),
        ));
        oc.add(Constraint::ge(E::var(v(0)), E::zero()));
        oc.add(Constraint::lt(E::var(v(0)), E::sym("NNZ")));
        let other =
            Relation::from_conjunctions(vec!["n".into()], vec!["i".into()], vec![oc]);
        // self = {[i] -> [p] : p = i + 1}
        let mut sc = Conjunction::new(2);
        sc.add(Constraint::eq(
            E::var(v(1)),
            E::var(v(0)).add(&E::constant(1)),
        ));
        let selfr =
            Relation::from_conjunctions(vec!["i".into()], vec!["p".into()], vec![sc]);
        let mut comp = selfr.compose(&other);
        comp.simplify();
        assert_eq!(comp.in_tuple(), &["n"]);
        assert_eq!(comp.out_tuple(), &["p"]);
        let c = &comp.conjunctions()[0];
        assert!(c.exists().is_empty(), "mid tuple should be eliminated");
        // p = row(n) + 1 must survive.
        let has_uf_eq = c.constraints.iter().any(|x| {
            x.is_eq() && x.mentions_uf("row") && x.uses_var(v(1))
        });
        assert!(has_uf_eq, "constraints: {:?}", c.constraints);
    }

    #[test]
    fn simplify_drops_unsat_conjunction() {
        let mut c = Conjunction::new(1);
        c.add(Constraint::eq(E::var(v(0)), E::constant(1)));
        c.add(Constraint::eq(E::var(v(0)), E::constant(2)));
        let mut s = Set::from_conjunctions(vec!["i".into()], vec![c]);
        s.simplify();
        // i is a tuple var so it is not eliminated, but 1 = 2 arises only
        // through substitution of existentials; here both constraints stay
        // and the set remains (conservative). Build a directly
        // contradictory one instead:
        let mut c2 = Conjunction::new(1);
        c2.add(Constraint::Geq(E::constant(-1)));
        let mut s2 = Set::from_conjunctions(vec!["i".into()], vec![c2]);
        s2.simplify();
        assert!(s2.is_empty());
        let _ = s;
    }

    #[test]
    fn existential_elimination_through_equalities() {
        // {[i] : exists(e) : e = i + 1 && e < N}  =>  {[i] : i + 1 < N}
        let mut c = Conjunction::new(1);
        let e = c.fresh_exist("e");
        c.add(Constraint::eq(E::var(e), E::var(v(0)).add(&E::constant(1))));
        c.add(Constraint::lt(E::var(e), E::sym("N")));
        assert!(c.simplify());
        assert!(c.exists().is_empty());
        assert_eq!(c.constraints.len(), 1);
        let expect = {
            let mut x = Constraint::lt(E::var(v(0)).add(&E::constant(1)), E::sym("N"));
            x.normalize();
            x
        };
        assert_eq!(c.constraints[0], expect);
    }

    #[test]
    fn is_function_detects_affine_maps() {
        assert!(interchange().is_function());
        // {[i] -> [p] : p >= i} is not a function.
        let mut c = Conjunction::new(2);
        c.add(Constraint::ge(E::var(v(1)), E::var(v(0))));
        let r = Relation::from_conjunctions(vec!["i".into()], vec!["p".into()], vec![c]);
        assert!(!r.is_function());
    }

    #[test]
    fn compose_distributes_over_unions() {
        use crate::parser::parse_relation;
        // other: A -> B with two branches; self: B -> C single.
        let other = parse_relation(
            "{ [a] -> [b] : b = a && 0 <= a < 5 } union { [a] -> [b] : b = a + 100 && 5 <= a < 10 }",
        )
        .unwrap();
        let selfr = parse_relation("{ [b] -> [c] : c = 2 * b }").unwrap();
        let mut comp = selfr.compose(&other);
        comp.simplify();
        // Cross product of 2 x 1 conjunctions.
        assert_eq!(comp.conjunctions().len(), 2);
        // Each branch keeps its own definition of c.
        let texts: Vec<String> = (0..2)
            .map(|k| {
                let names = comp.names_for(k);
                comp.conjunctions()[k]
                    .constraints
                    .iter()
                    .map(|c| c.display_with(&names).to_string())
                    .collect::<Vec<_>>()
                    .join(" && ")
            })
            .collect();
        assert!(texts.iter().any(|t| t.contains("2 * a = c")), "{texts:?}");
        assert!(
            texts.iter().any(|t| t.contains("200")),
            "shifted branch doubled: {texts:?}"
        );
    }

    #[test]
    fn apply_distributes_over_unions() {
        use crate::parser::{parse_relation, parse_set};
        let r = parse_relation("{ [i] -> [o] : o = i + 1 }").unwrap();
        let s = parse_set("{ [i] : i = 0 } union { [i] : i = 10 }").unwrap();
        let mut out = r.apply(&s);
        out.simplify();
        assert_eq!(out.conjunctions().len(), 2);
    }

    #[test]
    fn intersect_conjoins_constraints() {
        use crate::parser::parse_set;
        let a = parse_set("{ [i] : 0 <= i < 10 }").unwrap();
        let b = parse_set("{ [i] : 5 <= i < 20 }").unwrap();
        let mut both = a.intersect(&b);
        both.simplify();
        let names = both.names_for(0);
        let strs: Vec<String> = both.conjunctions()[0]
            .constraints
            .iter()
            .map(|c| c.display_with(&names).to_string())
            .collect();
        assert!(strs.contains(&"i >= 5".to_string()), "{strs:?}");
        assert!(strs.contains(&"9 >= i".to_string()) || strs.iter().any(|s| s.contains("9")), "{strs:?}");
        // Disjoint intersection: the conjunction survives syntactically
        // (simplification is conservative about tuple-variable
        // infeasibility), but projecting the variable out exposes the
        // contradiction via Fourier-Motzkin.
        let c = parse_set("{ [i] : i >= 30 }").unwrap();
        let d = parse_set("{ [i] : i < 5 }").unwrap();
        let disjoint = c.intersect(&d);
        let mut proj = crate::project::project_out(&disjoint, 0);
        proj.simplify();
        assert!(proj.is_empty());
    }

    #[test]
    fn domain_and_range_of_function_relation() {
        // {[n] -> [i] : i = row(n) && 0 <= n < NNZ}
        let mut c = Conjunction::new(2);
        c.add(Constraint::eq(
            E::var(v(1)),
            E::uf(UfCall::new("row", vec![E::var(v(0))])),
        ));
        c.add(Constraint::ge(E::var(v(0)), E::zero()));
        c.add(Constraint::lt(E::var(v(0)), E::sym("NNZ")));
        let r = Relation::from_conjunctions(vec!["n".into()], vec!["i".into()], vec![c]);
        let dom = r.domain();
        assert_eq!(dom.tuple(), &["n"]);
        // The output var is defined by an equality, so it vanishes; the
        // bounds on n remain.
        let dc = &dom.conjunctions()[0];
        assert!(dc.exists().is_empty(), "{dc:?}");
        assert_eq!(dc.constraints.len(), 2);
        let rng = r.range();
        assert_eq!(rng.tuple(), &["i"]);
        // The range keeps `n` existential (i = row(n) can't eliminate n).
        assert_eq!(rng.conjunctions()[0].exists().len(), 1);
    }

    #[test]
    fn display_round_readable() {
        let s = rect_set();
        let txt = s.to_string();
        assert!(txt.starts_with("{ [i, j] :"));
        assert!(txt.contains("&&"));
        let r = interchange();
        assert!(r.to_string().contains("[i, j] -> [jo, io]"));
    }
}
