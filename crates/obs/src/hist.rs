//! Log-bucketed, lock-free, mergeable histograms, and the per-pair map
//! the engine keys them by.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Bucket `0` holds the value `0`; bucket `i >= 1` holds values whose
/// bit length is `i`, i.e. the half-open power-of-two range
/// `[2^(i-1), 2^i)`. 64-bit values need buckets `0..=64`.
const BUCKETS: usize = 65;

/// A lock-free histogram over `u64` values (nanoseconds, nnz counts)
/// with power-of-two buckets.
///
/// Recording is two relaxed `fetch_add`s plus one bucket increment —
/// cheap enough for the conversion hot path. Quantiles resolve to the
/// *upper bound* of the bucket containing the requested rank, so they
/// are conservative (never under-report) and stable across merges.
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// The bucket index for a value: its bit length.
fn bucket_of(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// The largest value bucket `i` can hold (its inclusive upper bound).
fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one value.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded values (saturating only at `u64` wrap, which a
    /// nanosecond counter reaches after ~584 years of busy time).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Folds `other`'s recordings into `self` (histograms are CRDT-style
    /// mergeable: bucket-wise addition).
    pub fn merge(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let v = theirs.load(Ordering::Relaxed);
            if v != 0 {
                mine.fetch_add(v, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(other.count(), Ordering::Relaxed);
        self.sum.fetch_add(other.sum(), Ordering::Relaxed);
    }

    /// The value at quantile `q` in `[0, 1]`: the inclusive upper bound
    /// of the bucket containing the `ceil(q * count)`-th smallest
    /// recording. Returns 0 on an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return bucket_upper(i);
            }
        }
        bucket_upper(BUCKETS - 1)
    }

    /// Median (see [`Histogram::quantile`]).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th percentile.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// `(inclusive upper bound, count)` for every non-empty bucket,
    /// ascending.
    pub fn nonempty_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n != 0).then_some((bucket_upper(i), n))
            })
            .collect()
    }
}

/// One `(src, dst)` pair's histograms: conversion latency and input nnz.
pub struct PairSnapshot {
    /// Human-readable pair label (`"SCOO->CSR"`).
    pub label: String,
    /// The pair's plan fingerprint (the engine's cache key).
    pub pair: u64,
    /// End-to-end conversion latency, nanoseconds.
    pub latency_nanos: Histogram,
    /// Input stored-entry counts.
    pub nnz: Histogram,
}

struct PairEntry {
    label: String,
    latency: Histogram,
    nnz: Histogram,
}

/// Per-`(src, dst)` histograms keyed by plan fingerprint.
///
/// The fast path (an already-seen pair) is one shared-lock map read plus
/// lock-free histogram recording; the write lock is taken only the first
/// time a pair appears.
#[derive(Default)]
pub struct PairHistograms {
    map: RwLock<HashMap<u64, Arc<PairEntry>>>,
}

impl PairHistograms {
    /// An empty map.
    pub fn new() -> Self {
        PairHistograms::default()
    }

    /// Records one conversion of `pair`: `latency_nanos` of wall time
    /// moving `nnz` stored entries. `label` is only invoked the first
    /// time the pair is seen.
    pub fn record(&self, pair: u64, label: impl FnOnce() -> String, latency_nanos: u64, nnz: u64) {
        let entry = {
            let map = self.map.read().unwrap_or_else(|e| e.into_inner());
            map.get(&pair).cloned()
        };
        let entry = match entry {
            Some(e) => e,
            None => {
                let mut map = self.map.write().unwrap_or_else(|e| e.into_inner());
                Arc::clone(map.entry(pair).or_insert_with(|| {
                    Arc::new(PairEntry {
                        label: label(),
                        latency: Histogram::new(),
                        nnz: Histogram::new(),
                    })
                }))
            }
        };
        entry.latency.record(latency_nanos);
        entry.nnz.record(nnz);
    }

    /// Number of distinct pairs recorded.
    pub fn len(&self) -> usize {
        self.map.read().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// True when no pair has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A point-in-time copy of every pair's histograms, sorted by label
    /// (then fingerprint) so exposition output is deterministic.
    pub fn snapshot(&self) -> Vec<PairSnapshot> {
        let entries: Vec<(u64, Arc<PairEntry>)> = {
            let map = self.map.read().unwrap_or_else(|e| e.into_inner());
            map.iter().map(|(k, v)| (*k, Arc::clone(v))).collect()
        };
        let mut out: Vec<PairSnapshot> = entries
            .into_iter()
            .map(|(pair, e)| {
                let latency = Histogram::new();
                latency.merge(&e.latency);
                let nnz = Histogram::new();
                nnz.merge(&e.nnz);
                PairSnapshot { label: e.label.clone(), pair, latency_nanos: latency, nnz }
            })
            .collect();
        out.sort_by(|a, b| a.label.cmp(&b.label).then(a.pair.cmp(&b.pair)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges_are_exact_powers_of_two() {
        // 0 is its own bucket; [2^(i-1), 2^i) shares bucket i.
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(7), 3);
        assert_eq!(bucket_of(8), 4);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), 64);
        // Upper bounds are inclusive and agree with the assignment.
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(2), 3);
        assert_eq!(bucket_upper(10), 1023);
        assert_eq!(bucket_upper(64), u64::MAX);
        for v in [0u64, 1, 2, 3, 4, 5, 127, 128, 129, 1 << 40] {
            assert!(v <= bucket_upper(bucket_of(v)), "value {v} above its bucket bound");
            if bucket_of(v) > 0 {
                assert!(
                    v > bucket_upper(bucket_of(v) - 1),
                    "value {v} belongs in an earlier bucket"
                );
            }
        }
    }

    #[test]
    fn quantiles_resolve_to_bucket_upper_bounds() {
        let h = Histogram::new();
        assert_eq!(h.p50(), 0, "empty histogram quantiles are 0");
        // 90 small values (bucket upper 1), 10 large (bucket upper 1023).
        for _ in 0..90 {
            h.record(1);
        }
        for _ in 0..10 {
            h.record(900);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum(), 90 + 9000);
        assert_eq!(h.p50(), 1);
        assert_eq!(h.quantile(0.90), 1);
        assert_eq!(h.p95(), 1023);
        assert_eq!(h.p99(), 1023);
        assert_eq!(h.quantile(1.0), 1023);
        assert_eq!(h.quantile(0.0), 1, "q=0 is the minimum's bucket");
    }

    #[test]
    fn merge_is_bucketwise_addition() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in [1u64, 2, 3] {
            a.record(v);
        }
        for v in [1000u64, 2000] {
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), 5);
        assert_eq!(a.sum(), 6 + 3000);
        assert_eq!(a.p99(), 2047);
        let buckets = a.nonempty_buckets();
        assert_eq!(buckets.iter().map(|(_, n)| n).sum::<u64>(), 5);
    }

    #[test]
    fn pair_histograms_key_by_fingerprint_and_sort_by_label() {
        let pairs = PairHistograms::new();
        pairs.record(2, || "b->c".into(), 100, 5);
        pairs.record(1, || "a->b".into(), 200, 6);
        pairs.record(2, || panic!("label closure must not re-run"), 300, 7);
        assert_eq!(pairs.len(), 2);
        let snap = pairs.snapshot();
        assert_eq!(snap[0].label, "a->b");
        assert_eq!(snap[1].label, "b->c");
        assert_eq!(snap[1].latency_nanos.count(), 2);
        assert_eq!(snap[1].nnz.sum(), 12);
    }
}
