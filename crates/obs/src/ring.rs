//! A lock-free, fixed-size, drop-oldest event log.
//!
//! Writers claim a global ticket with one `fetch_add`, then publish into
//! the slot the ticket maps to under a per-slot sequence word: `0` means
//! empty, [`WRITING`] means a writer is mid-publish, anything else is
//! `ticket + 1` of the event the slot holds. A writer that finds its slot
//! mid-publish (another writer lapped the ring while this one was
//! in-flight — requires `capacity` concurrent writers) **drops its event
//! and moves on** rather than waiting: the hot path never blocks.
//! Overwriting a previously published event (the normal full-ring case)
//! also counts toward [`EventRing::dropped`], so `recorded - dropped`
//! events are always retrievable.
//!
//! Every slot field is a plain atomic — no locks, no `unsafe`. Readers
//! snapshot slots with a seq/re-check protocol and simply skip slots that
//! are empty, mid-publish, or changed underneath them.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::{Event, EventKind};

/// Sentinel sequence value marking a slot a writer is publishing into.
const WRITING: u64 = u64::MAX;

#[derive(Default)]
struct Slot {
    /// `0` empty, [`WRITING`] mid-publish, else `ticket + 1`.
    seq: AtomicU64,
    kind: AtomicU64,
    pair: AtomicU64,
    nanos: AtomicU64,
    nnz: AtomicU64,
}

/// A lock-free fixed-size ring of [`Event`]s with drop-oldest semantics
/// and an exact dropped-event counter.
pub struct EventRing {
    slots: Box<[Slot]>,
    /// Total publish attempts (the ticket source).
    head: AtomicU64,
    /// Events no longer retrievable: overwritten by newer ones, or
    /// abandoned because their slot was mid-publish.
    dropped: AtomicU64,
}

impl EventRing {
    /// A ring holding at most `capacity` events (minimum 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        let mut slots = Vec::with_capacity(capacity);
        slots.resize_with(capacity, Slot::default);
        EventRing {
            slots: slots.into_boxed_slice(),
            head: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Maximum number of retained events.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events ever recorded (including ones since dropped).
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Events lost to overwrite (ring full) or publish contention.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Records one event. Never blocks, never allocates; O(1).
    pub fn push(&self, e: Event) {
        let ticket = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(ticket as usize) % self.slots.len()];
        let current = slot.seq.load(Ordering::Acquire);
        if current == WRITING {
            // Another writer is publishing into this slot right now (it
            // holds a ticket one full lap behind ours). Dropping *our*
            // event keeps the path lock-free; with any reasonable
            // capacity this needs `capacity` simultaneous writers.
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        if slot
            .seq
            .compare_exchange(current, WRITING, Ordering::AcqRel, Ordering::Relaxed)
            .is_err()
        {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        if current != 0 {
            // We just claimed a slot holding a published (older) event:
            // the drop-oldest case.
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        slot.kind.store(e.kind.code(), Ordering::Relaxed);
        slot.pair.store(e.pair, Ordering::Relaxed);
        slot.nanos.store(e.nanos, Ordering::Relaxed);
        slot.nnz.store(e.nnz, Ordering::Relaxed);
        slot.seq.store(ticket + 1, Ordering::Release);
    }

    /// A point-in-time copy of the retained events, oldest first. Slots
    /// mid-publish (or republished during the read) are skipped — the
    /// snapshot never contains a torn event.
    pub fn snapshot(&self) -> Vec<Event> {
        let mut out: Vec<(u64, Event)> = Vec::with_capacity(self.slots.len());
        for slot in self.slots.iter() {
            let seq = slot.seq.load(Ordering::Acquire);
            if seq == 0 || seq == WRITING {
                continue;
            }
            let kind = slot.kind.load(Ordering::Relaxed);
            let pair = slot.pair.load(Ordering::Relaxed);
            let nanos = slot.nanos.load(Ordering::Relaxed);
            let nnz = slot.nnz.load(Ordering::Relaxed);
            if slot.seq.load(Ordering::Acquire) != seq {
                continue; // republished underneath us: fields may be torn
            }
            let Some(kind) = EventKind::from_code(kind) else { continue };
            out.push((seq, Event { kind, pair, nanos, nnz }));
        }
        out.sort_by_key(|(seq, _)| *seq);
        out.into_iter().map(|(_, e)| e).collect()
    }

    /// Renders the retained events as a structured-text log, oldest
    /// first, with the recorded/dropped totals — the thing to print when
    /// a conversion fails and the counters alone don't say why.
    pub fn dump(&self) -> String {
        use std::fmt::Write as _;
        let events = self.snapshot();
        let mut out = String::new();
        let _ = writeln!(
            out,
            "events: {} recorded, {} dropped, {} retained (capacity {})",
            self.recorded(),
            self.dropped(),
            events.len(),
            self.capacity()
        );
        for e in &events {
            let _ = writeln!(
                out,
                "  {:<18} pair={:#018x} nnz={} nanos={}",
                e.kind.as_str(),
                e.pair,
                e.nnz,
                e.nanos
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: EventKind, pair: u64) -> Event {
        Event { kind, pair, nanos: pair * 10, nnz: pair * 100 }
    }

    #[test]
    fn retains_everything_under_capacity() {
        let ring = EventRing::new(8);
        for i in 0..5 {
            ring.push(ev(EventKind::RunFailed, i));
        }
        let got = ring.snapshot();
        assert_eq!(got.len(), 5);
        assert_eq!(ring.recorded(), 5);
        assert_eq!(ring.dropped(), 0);
        // Oldest first, fields intact.
        for (i, e) in got.iter().enumerate() {
            assert_eq!(e.pair, i as u64);
            assert_eq!(e.nnz, i as u64 * 100);
        }
    }

    #[test]
    fn overflow_drops_oldest_and_counts_drops() {
        let ring = EventRing::new(4);
        for i in 0..10 {
            ring.push(ev(EventKind::KernelDecline, i));
        }
        let got = ring.snapshot();
        assert_eq!(got.len(), 4, "ring retains exactly its capacity");
        let pairs: Vec<u64> = got.iter().map(|e| e.pair).collect();
        assert_eq!(pairs, [6, 7, 8, 9], "the oldest events are the ones dropped");
        assert_eq!(ring.recorded(), 10);
        assert_eq!(ring.dropped(), 6, "every overwrite counts");
    }

    #[test]
    fn capacity_is_at_least_one() {
        let ring = EventRing::new(0);
        assert_eq!(ring.capacity(), 1);
        ring.push(ev(EventKind::InputRejected, 1));
        ring.push(ev(EventKind::InputRejected, 2));
        let got = ring.snapshot();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].pair, 2);
        assert_eq!(ring.dropped(), 1);
    }

    #[test]
    fn dump_renders_totals_and_kinds() {
        let ring = EventRing::new(4);
        ring.push(ev(EventKind::KernelPanic, 3));
        ring.push(ev(EventKind::InputRejected, 4));
        let text = ring.dump();
        assert!(text.contains("2 recorded, 0 dropped, 2 retained"), "{text}");
        assert!(text.contains("kernel-panic"), "{text}");
        assert!(text.contains("input-rejected"), "{text}");
        assert!(text.contains("nnz=400"), "{text}");
    }

    #[test]
    fn concurrent_writers_never_lose_accounting() {
        const THREADS: u64 = 8;
        const PER_THREAD: u64 = 1000;
        let ring = EventRing::new(16);
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let ring = &ring;
                s.spawn(move || {
                    for i in 0..PER_THREAD {
                        ring.push(ev(EventKind::RunFailed, t * PER_THREAD + i));
                    }
                });
            }
        });
        assert_eq!(ring.recorded(), THREADS * PER_THREAD);
        let retained = ring.snapshot().len() as u64;
        assert!(retained <= 16);
        // recorded = dropped + retained (every event is exactly one).
        assert_eq!(
            ring.recorded(),
            ring.dropped() + retained,
            "accounting must balance exactly"
        );
    }
}
