//! # sparse-obs
//!
//! The observability layer the conversion engine and the core executor
//! emit into. The paper's pitch is that synthesized inspectors are
//! *inspectable* — SPF-IR stages you can see and optimize — and this
//! crate extends that visibility into the runtime: every conversion is a
//! sequence of named stages (`plan`, `verify`, `validate`, `admission`,
//! `kernel`, `interp`, `extract`), and each stage's outcome and duration
//! is observable without making the hot path block or allocate.
//!
//! Three mechanisms, all dependency-free:
//!
//! * **Spans** — a [`Subscriber`] receives one [`Span`] per completed
//!   stage (stage name, pair fingerprint, nanoseconds, outcome). The
//!   default [`NoopSubscriber`] compiles to a virtual call that does
//!   nothing, keeping the instrumented hot path within noise of the
//!   uninstrumented one (asserted in the `engine_cache`/`bench4`
//!   benches).
//! * **Event ring** — a lock-free fixed-size ring buffer of [`Event`]s
//!   (kernel panics, declined kernels, failed runs, rejected inputs).
//!   Writers never block and never allocate: when the ring is full the
//!   oldest event is overwritten and a dropped-event counter increments.
//!   [`EventRing::dump`] renders a structured-text log for debugging
//!   failed conversions.
//! * **Histograms** — log-bucketed, mergeable [`Histogram`]s with
//!   p50/p95/p99 accessors, grouped per `(src, dst)` fingerprint by
//!   [`PairHistograms`], rendered by the Prometheus-style text
//!   [`expo::MetricsText`] builder.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
// The ring and histograms sit on the engine's hot path; a panic here
// would defeat the engine's fault containment.
#![deny(clippy::unwrap_used)]
#![deny(clippy::expect_used)]

pub mod expo;
mod hist;
mod ring;

use std::sync::Mutex;

pub use hist::{Histogram, PairHistograms, PairSnapshot};
pub use ring::EventRing;

/// The named stages of one conversion, in pipeline order. Stage names
/// are **stable**: they appear in metric names, span records, and the
/// README's stats-semantics table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Plan acquisition: cache lookup plus (on a miss) synthesis and
    /// lowering.
    Plan,
    /// Static plan verification (`sparse-analyze`), when enabled.
    Verify,
    /// Input validation against the source descriptor's quantifier
    /// obligations.
    Validate,
    /// Admission control: destination-footprint estimation against the
    /// memory budget.
    Admission,
    /// A native-kernel execution attempt (hit, decline, or contained
    /// panic).
    Kernel,
    /// SPF-IR interpreter execution of the synthesized inspector.
    Interp,
    /// Destination-container extraction and output validation.
    Extract,
}

impl Stage {
    /// Every stage, in pipeline order.
    pub const ALL: [Stage; 7] = [
        Stage::Plan,
        Stage::Verify,
        Stage::Validate,
        Stage::Admission,
        Stage::Kernel,
        Stage::Interp,
        Stage::Extract,
    ];

    /// The stage's stable name.
    pub fn as_str(self) -> &'static str {
        match self {
            Stage::Plan => "plan",
            Stage::Verify => "verify",
            Stage::Validate => "validate",
            Stage::Admission => "admission",
            Stage::Kernel => "kernel",
            Stage::Interp => "interp",
            Stage::Extract => "extract",
        }
    }
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One completed stage of one conversion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Which stage completed.
    pub stage: Stage,
    /// The plan fingerprint of the `(src, dst)` pair being converted
    /// (0 when no plan is in scope yet).
    pub pair: u64,
    /// Wall time the stage took, in nanoseconds.
    pub nanos: u64,
    /// Whether the stage succeeded. A declined kernel and a failed
    /// validation both report `ok: false`; what happens next (fallback
    /// vs typed error) is the engine's policy, not the span's.
    pub ok: bool,
}

/// What went wrong (or sideways), for the event log. Events are the
/// *exceptional* path — successful conversions emit spans only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// A native kernel panicked; the panic was contained and the
    /// interpreter answered instead.
    KernelPanic,
    /// A native kernel declined the input (e.g. duplicate coordinates);
    /// the interpreter answered instead.
    KernelDecline,
    /// The interpreter path panicked; contained as a typed error.
    InterpPanic,
    /// The interpreter path returned a typed execution error.
    RunFailed,
    /// Input validation rejected the container before execution.
    InputRejected,
    /// Admission control refused the conversion (estimated footprint
    /// over budget).
    AdmissionRejected,
    /// Plan synthesis or lowering failed.
    PlanFailed,
    /// The static verifier rejected a freshly synthesized plan.
    PlanRejected,
    /// A batch item never started because the batch deadline expired.
    DeadlineExpired,
}

impl EventKind {
    fn code(self) -> u64 {
        match self {
            EventKind::KernelPanic => 1,
            EventKind::KernelDecline => 2,
            EventKind::InterpPanic => 3,
            EventKind::RunFailed => 4,
            EventKind::InputRejected => 5,
            EventKind::AdmissionRejected => 6,
            EventKind::PlanFailed => 7,
            EventKind::PlanRejected => 8,
            EventKind::DeadlineExpired => 9,
        }
    }

    fn from_code(code: u64) -> Option<EventKind> {
        Some(match code {
            1 => EventKind::KernelPanic,
            2 => EventKind::KernelDecline,
            3 => EventKind::InterpPanic,
            4 => EventKind::RunFailed,
            5 => EventKind::InputRejected,
            6 => EventKind::AdmissionRejected,
            7 => EventKind::PlanFailed,
            8 => EventKind::PlanRejected,
            9 => EventKind::DeadlineExpired,
            _ => return None,
        })
    }

    /// The kind's stable kebab-case name.
    pub fn as_str(self) -> &'static str {
        match self {
            EventKind::KernelPanic => "kernel-panic",
            EventKind::KernelDecline => "kernel-decline",
            EventKind::InterpPanic => "interp-panic",
            EventKind::RunFailed => "run-failed",
            EventKind::InputRejected => "input-rejected",
            EventKind::AdmissionRejected => "admission-rejected",
            EventKind::PlanFailed => "plan-failed",
            EventKind::PlanRejected => "plan-rejected",
            EventKind::DeadlineExpired => "deadline-expired",
        }
    }
}

impl std::fmt::Display for EventKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One exceptional occurrence. Fixed-size and `Copy` by design: an event
/// must fit a lock-free ring slot, so it carries fingerprints and
/// numbers, never strings — the dump renders them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// What happened.
    pub kind: EventKind,
    /// The plan fingerprint of the `(src, dst)` pair (0 when unknown).
    pub pair: u64,
    /// Nanoseconds spent in the failing stage, when measured (else 0).
    pub nanos: u64,
    /// The input's stored-entry count, when known (else 0).
    pub nnz: u64,
}

/// Receives spans and events from an instrumented engine. Implementations
/// must be cheap and non-blocking: they run inline on the conversion hot
/// path, concurrently from every engine worker thread.
pub trait Subscriber: Send + Sync {
    /// Whether this subscriber wants anything at all. The engine still
    /// feeds its own ring and histograms when this is `false`; it only
    /// skips the subscriber calls themselves.
    fn enabled(&self) -> bool {
        true
    }

    /// One stage of one conversion completed.
    fn span(&self, span: Span);

    /// Something exceptional happened.
    fn event(&self, event: Event);
}

/// The default subscriber: drops everything, reports itself disabled.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopSubscriber;

impl Subscriber for NoopSubscriber {
    fn enabled(&self) -> bool {
        false
    }

    fn span(&self, _span: Span) {}

    fn event(&self, _event: Event) {}
}

/// A subscriber that records everything it sees into memory — the
/// reference implementation, used by tests and the observability example
/// to assert exactly which stages ran.
#[derive(Debug, Default)]
pub struct CollectingSubscriber {
    spans: Mutex<Vec<Span>>,
    events: Mutex<Vec<Event>>,
}

impl CollectingSubscriber {
    /// An empty collector.
    pub fn new() -> Self {
        CollectingSubscriber::default()
    }

    /// Every span recorded so far, in arrival order.
    pub fn spans(&self) -> Vec<Span> {
        self.spans.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// Every event recorded so far, in arrival order.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// Spans for one stage, in arrival order.
    pub fn spans_for(&self, stage: Stage) -> Vec<Span> {
        self.spans().into_iter().filter(|s| s.stage == stage).collect()
    }
}

impl Subscriber for CollectingSubscriber {
    fn span(&self, span: Span) {
        self.spans.lock().unwrap_or_else(|e| e.into_inner()).push(span);
    }

    fn event(&self, event: Event) {
        self.events.lock().unwrap_or_else(|e| e.into_inner()).push(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_names_are_stable() {
        let names: Vec<&str> = Stage::ALL.iter().map(|s| s.as_str()).collect();
        assert_eq!(
            names,
            ["plan", "verify", "validate", "admission", "kernel", "interp", "extract"]
        );
    }

    #[test]
    fn event_kind_codes_round_trip() {
        for kind in [
            EventKind::KernelPanic,
            EventKind::KernelDecline,
            EventKind::InterpPanic,
            EventKind::RunFailed,
            EventKind::InputRejected,
            EventKind::AdmissionRejected,
            EventKind::PlanFailed,
            EventKind::PlanRejected,
            EventKind::DeadlineExpired,
        ] {
            assert_eq!(EventKind::from_code(kind.code()), Some(kind));
        }
        assert_eq!(EventKind::from_code(0), None);
        assert_eq!(EventKind::from_code(99), None);
    }

    #[test]
    fn collecting_subscriber_records_in_order() {
        let sub = CollectingSubscriber::new();
        assert!(sub.enabled());
        sub.span(Span { stage: Stage::Validate, pair: 7, nanos: 10, ok: true });
        sub.span(Span { stage: Stage::Interp, pair: 7, nanos: 20, ok: true });
        sub.event(Event { kind: EventKind::KernelDecline, pair: 7, nanos: 5, nnz: 3 });
        assert_eq!(sub.spans().len(), 2);
        assert_eq!(sub.spans_for(Stage::Interp).len(), 1);
        assert_eq!(sub.events()[0].kind, EventKind::KernelDecline);
    }

    #[test]
    fn noop_subscriber_is_disabled() {
        assert!(!NoopSubscriber.enabled());
    }
}
