//! Prometheus-style text exposition.
//!
//! [`MetricsText`] builds the classic `# HELP` / `# TYPE` / sample-line
//! format. Metric and label **names are stable API** — dashboards key on
//! them — and the engine's exposition is snapshot-tested against exactly
//! this renderer. Durations are exposed as integer nanosecond counters
//! (`*_nanoseconds_total`) rather than float seconds so values stay
//! exact and snapshot-normalizable; histograms are exposed summary-style
//! (p50/p95/p99 quantiles + `_count` + `_sum`), with the quantile values
//! taken from [`Histogram::quantile`]'s conservative bucket upper
//! bounds.

use std::fmt::Write as _;

use crate::Histogram;

/// Incremental builder for a Prometheus-style text page.
#[derive(Debug, Default)]
pub struct MetricsText {
    out: String,
}

/// Escapes a label value per the exposition format (backslash, quote,
/// newline).
fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

fn render_labels(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let body: Vec<String> =
        labels.iter().map(|(k, v)| format!("{k}=\"{}\"", escape_label(v))).collect();
    format!("{{{}}}", body.join(","))
}

impl MetricsText {
    /// An empty page.
    pub fn new() -> Self {
        MetricsText::default()
    }

    fn header(&mut self, name: &str, help: &str, kind: &str) {
        let _ = writeln!(self.out, "# HELP {name} {help}");
        let _ = writeln!(self.out, "# TYPE {name} {kind}");
    }

    /// One unlabelled monotone counter.
    pub fn counter(&mut self, name: &str, help: &str, value: u64) {
        self.header(name, help, "counter");
        let _ = writeln!(self.out, "{name} {value}");
    }

    /// One unlabelled gauge (a value that can go down, e.g. current
    /// cache occupancy).
    pub fn gauge(&mut self, name: &str, help: &str, value: u64) {
        self.header(name, help, "gauge");
        let _ = writeln!(self.out, "{name} {value}");
    }

    /// A summary-style rendering of one histogram under `labels`:
    /// quantile sample lines for p50/p95/p99 plus `_count` and `_sum`.
    /// Emits the `# HELP`/`# TYPE` header only when `first` is true, so
    /// several label sets can share one metric family.
    pub fn summary(
        &mut self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        hist: &Histogram,
        first: bool,
    ) {
        if first {
            self.header(name, help, "summary");
        }
        for (q, qv) in [("0.5", hist.p50()), ("0.95", hist.p95()), ("0.99", hist.p99())] {
            let mut all: Vec<(&str, &str)> = labels.to_vec();
            all.push(("quantile", q));
            let _ = writeln!(self.out, "{name}{} {qv}", render_labels(&all));
        }
        let labels = render_labels(labels);
        let _ = writeln!(self.out, "{name}_count{labels} {}", hist.count());
        let _ = writeln!(self.out, "{name}_sum{labels} {}", hist.sum());
    }

    /// The finished page.
    pub fn finish(self) -> String {
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The renderer's output format is load-bearing (the engine's
    /// `metrics_text` snapshot test builds on it), so pin it exactly on
    /// a deterministic input.
    #[test]
    fn exposition_snapshot() {
        let h = Histogram::new();
        for v in [1u64, 2, 3, 900] {
            h.record(v);
        }
        let mut page = MetricsText::new();
        page.counter("demo_conversions_total", "Conversions executed.", 4);
        page.gauge("demo_cached_plans", "Plans resident in the cache.", 2);
        page.summary(
            "demo_latency_nanoseconds",
            "Conversion latency.",
            &[("pair", "SCOO->CSR")],
            &h,
            true,
        );
        let expected = "\
# HELP demo_conversions_total Conversions executed.
# TYPE demo_conversions_total counter
demo_conversions_total 4
# HELP demo_cached_plans Plans resident in the cache.
# TYPE demo_cached_plans gauge
demo_cached_plans 2
# HELP demo_latency_nanoseconds Conversion latency.
# TYPE demo_latency_nanoseconds summary
demo_latency_nanoseconds{pair=\"SCOO->CSR\",quantile=\"0.5\"} 3
demo_latency_nanoseconds{pair=\"SCOO->CSR\",quantile=\"0.95\"} 1023
demo_latency_nanoseconds{pair=\"SCOO->CSR\",quantile=\"0.99\"} 1023
demo_latency_nanoseconds_count{pair=\"SCOO->CSR\"} 4
demo_latency_nanoseconds_sum{pair=\"SCOO->CSR\"} 906
";
        assert_eq!(page.finish(), expected);
    }

    #[test]
    fn label_values_are_escaped() {
        let rendered = render_labels(&[("pair", "a\"b\\c\nd")]);
        assert_eq!(rendered, "{pair=\"a\\\"b\\\\c\\nd\"}");
    }

    #[test]
    fn shared_family_emits_header_once() {
        let h = Histogram::new();
        h.record(5);
        let mut page = MetricsText::new();
        page.summary("m", "help", &[("pair", "a")], &h, true);
        page.summary("m", "help", &[("pair", "b")], &h, false);
        let text = page.finish();
        assert_eq!(text.matches("# TYPE m summary").count(), 1);
        assert_eq!(text.matches("m_count").count(), 2);
    }
}
