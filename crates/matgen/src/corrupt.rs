//! Systematic input corruption for fault-injection testing.
//!
//! The hardened execution layer promises that *no* input container —
//! however mangled its public fields — can panic the engine: every
//! corruption must surface as a typed error (or, for benign edge cases,
//! a correct result). This module produces the mangled containers: each
//! [`Corruption`] class violates one specific quantifier obligation of
//! the container's catalog descriptor, by mutating public fields so no
//! validating constructor can interfere.
//!
//! Classes are applied per container via [`corrupt_matrix`]; a class
//! that has no meaningful realization for a container (e.g. swapping
//! pointer entries in a pointerless COO) returns `None` so harnesses
//! can skip it rather than mistake "inapplicable" for "tolerated".

use sparse_formats::{AnyMatrix, CooMatrix, CscMatrix, CsrMatrix, EllMatrix, MortonCooMatrix};

/// One way to mangle a container. All classes except [`Corruption::Empty`]
/// produce an *invalid* input under the container's catalog descriptor
/// (sorted descriptors for coordinate containers); `Empty` is the benign
/// edge case — a valid zero-nonzero matrix that must convert successfully.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Corruption {
    /// Shorten one parallel array (length mismatch).
    TruncateArray,
    /// Swap two distinct pointer-array entries (breaks monotonicity).
    SwapPointerPair,
    /// Drive one stored index negative.
    NegativeIndex,
    /// Push one stored index past its declared bound.
    OversizedIndex,
    /// Repeat a coordinate a strict ordering quantifier forbids.
    DuplicateCoordinate,
    /// Replace one stored value with NaN.
    NonFiniteValue,
    /// Append a spurious trailing element to one array (length mismatch).
    ExtraLength,
    /// Not a corruption: replace the matrix with a *valid* empty one of
    /// the same dims. Conversions must succeed.
    Empty,
}

impl Corruption {
    /// Every class, in a stable order for exhaustive sweeps.
    pub const ALL: [Corruption; 8] = [
        Corruption::TruncateArray,
        Corruption::SwapPointerPair,
        Corruption::NegativeIndex,
        Corruption::OversizedIndex,
        Corruption::DuplicateCoordinate,
        Corruption::NonFiniteValue,
        Corruption::ExtraLength,
        Corruption::Empty,
    ];

    /// `true` for classes that produce a *valid* input (the engine must
    /// succeed); `false` for genuine corruption (the engine must return
    /// a typed error).
    pub fn is_benign(self) -> bool {
        matches!(self, Corruption::Empty)
    }
}

impl std::fmt::Display for Corruption {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{self:?}")
    }
}

/// Applies `class` to a copy of `m`, mutating public fields directly (no
/// validating constructor runs). Returns `None` when the class has no
/// realization for this container — too few nonzeros, no pointer array,
/// no row with enough entries.
pub fn corrupt_matrix(m: &AnyMatrix, class: Corruption) -> Option<AnyMatrix> {
    match m {
        AnyMatrix::Coo(c) => corrupt_coo(c, class).map(AnyMatrix::Coo),
        AnyMatrix::MortonCoo(mc) => {
            // Same storage as COO; the Morton ordering quantifier is the
            // descriptor's, so coordinate corruption applies unchanged.
            corrupt_coo(&mc.coo, class)
                .map(|coo| AnyMatrix::MortonCoo(MortonCooMatrix { coo }))
        }
        AnyMatrix::Csr(c) => corrupt_csr(c, class).map(AnyMatrix::Csr),
        AnyMatrix::Csc(c) => corrupt_csc(c, class).map(AnyMatrix::Csc),
        AnyMatrix::Ell(e) => corrupt_ell(e, class).map(AnyMatrix::Ell),
        // DIA is not a conversion source in the catalog (no executable
        // scan), so there is nothing to feed the engine.
        AnyMatrix::Dia(_) => None,
    }
}

fn corrupt_coo(m: &CooMatrix, class: Corruption) -> Option<CooMatrix> {
    let mut m = m.clone();
    match class {
        Corruption::TruncateArray => {
            if m.val.is_empty() {
                return None;
            }
            m.val.pop();
        }
        Corruption::SwapPointerPair => return None, // no pointer array
        Corruption::NegativeIndex => {
            *m.row.first_mut()? = -3;
        }
        Corruption::OversizedIndex => {
            *m.col.first_mut()? = m.nc as i64 + 7;
        }
        Corruption::DuplicateCoordinate => {
            if m.row.len() < 2 {
                return None;
            }
            m.row[1] = m.row[0];
            m.col[1] = m.col[0];
        }
        Corruption::NonFiniteValue => {
            *m.val.first_mut()? = f64::NAN;
        }
        Corruption::ExtraLength => {
            m.row.push(0);
        }
        Corruption::Empty => {
            m.row.clear();
            m.col.clear();
            m.val.clear();
        }
    }
    Some(m)
}

fn corrupt_csr(m: &CsrMatrix, class: Corruption) -> Option<CsrMatrix> {
    let mut m = m.clone();
    match class {
        Corruption::TruncateArray => {
            if m.val.is_empty() {
                return None;
            }
            m.val.pop();
        }
        Corruption::SwapPointerPair => {
            // Swap the first pair of *distinct* interior entries so the
            // pointer is provably non-monotone (or has broken ends).
            let w = m.rowptr.windows(2).position(|w| w[0] != w[1])?;
            m.rowptr.swap(w, w + 1);
        }
        Corruption::NegativeIndex => {
            *m.col.first_mut()? = -1;
        }
        Corruption::OversizedIndex => {
            *m.col.first_mut()? = m.nc as i64 + 9;
        }
        Corruption::DuplicateCoordinate => {
            // Needs a row with at least two entries.
            let w = m.rowptr.windows(2).position(|w| w[1] - w[0] >= 2)?;
            let s = m.rowptr[w] as usize;
            m.col[s + 1] = m.col[s];
        }
        Corruption::NonFiniteValue => {
            *m.val.first_mut()? = f64::NAN;
        }
        Corruption::ExtraLength => {
            m.col.push(0);
        }
        Corruption::Empty => {
            m.rowptr = vec![0; m.nr + 1];
            m.col.clear();
            m.val.clear();
        }
    }
    Some(m)
}

fn corrupt_csc(m: &CscMatrix, class: Corruption) -> Option<CscMatrix> {
    let mut m = m.clone();
    match class {
        Corruption::TruncateArray => {
            if m.val.is_empty() {
                return None;
            }
            m.val.pop();
        }
        Corruption::SwapPointerPair => {
            let w = m.colptr.windows(2).position(|w| w[0] != w[1])?;
            m.colptr.swap(w, w + 1);
        }
        Corruption::NegativeIndex => {
            *m.row.first_mut()? = -2;
        }
        Corruption::OversizedIndex => {
            *m.row.first_mut()? = m.nr as i64 + 11;
        }
        Corruption::DuplicateCoordinate => {
            let w = m.colptr.windows(2).position(|w| w[1] - w[0] >= 2)?;
            let s = m.colptr[w] as usize;
            m.row[s + 1] = m.row[s];
        }
        Corruption::NonFiniteValue => {
            *m.val.first_mut()? = f64::NAN;
        }
        Corruption::ExtraLength => {
            m.row.push(0);
        }
        Corruption::Empty => {
            m.colptr = vec![0; m.nc + 1];
            m.row.clear();
            m.val.clear();
        }
    }
    Some(m)
}

fn corrupt_ell(m: &EllMatrix, class: Corruption) -> Option<EllMatrix> {
    let mut m = m.clone();
    // The first occupied slot, for classes that mangle one entry.
    let occupied = m.col.iter().position(|&j| j >= 0);
    match class {
        Corruption::TruncateArray => {
            if m.data.is_empty() {
                return None;
            }
            m.data.pop();
        }
        Corruption::SwapPointerPair => return None, // no pointer array
        Corruption::NegativeIndex => {
            // A sentinel column with a nonzero value: "negative index"
            // in ELL terms is a padding-contract violation.
            let s = occupied?;
            m.col[s] = -1;
            m.data[s] = 5.0;
        }
        Corruption::OversizedIndex => {
            let s = occupied?;
            m.col[s] = m.nc as i64 + 3;
        }
        Corruption::DuplicateCoordinate => {
            // Needs a row with two occupied slots.
            let row = (0..m.nr).find(|&i| {
                let lo = i * m.width;
                m.col.get(lo..lo + m.width)
                    .is_some_and(|r| r.iter().filter(|&&j| j >= 0).count() >= 2)
            })?;
            let lo = row * m.width;
            m.col[lo + 1] = m.col[lo];
        }
        Corruption::NonFiniteValue => {
            let s = occupied?;
            m.data[s] = f64::NAN;
        }
        Corruption::ExtraLength => {
            m.col.push(0);
        }
        Corruption::Empty => {
            m.width = 0;
            m.col.clear();
            m.data.clear();
        }
    }
    Some(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse_formats::descriptors;
    use sparse_formats::validate_matrix;

    fn sample() -> CooMatrix {
        CooMatrix::from_triplets(
            4,
            5,
            vec![0, 0, 1, 2, 3],
            vec![1, 3, 0, 2, 4],
            vec![1.0, 2.0, 3.0, 4.0, 5.0],
        )
        .unwrap()
    }

    /// Each malicious class must actually produce an input the validator
    /// rejects under the container's catalog descriptor, and `Empty` must
    /// produce one it accepts — otherwise the fault-injection suite
    /// would be asserting against no-op corruption.
    #[test]
    fn classes_produce_invalid_inputs_by_construction() {
        let coo = sample();
        let containers: Vec<(AnyMatrix, _)> = vec![
            (AnyMatrix::Coo(coo.clone()), descriptors::scoo()),
            (AnyMatrix::Csr(CsrMatrix::from_coo(&coo)), descriptors::csr()),
            (AnyMatrix::Csc(CscMatrix::from_coo(&coo)), descriptors::csc()),
            (AnyMatrix::Ell(EllMatrix::from_coo(&coo)), descriptors::ell()),
            (AnyMatrix::MortonCoo(MortonCooMatrix::from_coo(&coo)), descriptors::mcoo()),
        ];
        for (container, desc) in &containers {
            for class in Corruption::ALL {
                let Some(bad) = corrupt_matrix(container, class) else {
                    continue;
                };
                let verdict = validate_matrix(desc, bad.as_ref());
                if class.is_benign() {
                    assert!(
                        verdict.is_ok(),
                        "{class} on {} should be valid: {verdict:?}",
                        container.label()
                    );
                } else {
                    assert!(
                        verdict.is_err(),
                        "{class} on {} escaped the validator",
                        container.label()
                    );
                }
            }
        }
    }

    #[test]
    fn applicability_is_reported_not_faked() {
        let coo = AnyMatrix::Coo(sample());
        assert!(corrupt_matrix(&coo, Corruption::SwapPointerPair).is_none());
        let empty = AnyMatrix::Coo(
            CooMatrix::from_triplets(3, 3, vec![], vec![], vec![]).unwrap(),
        );
        assert!(corrupt_matrix(&empty, Corruption::TruncateArray).is_none());
        assert!(corrupt_matrix(&empty, Corruption::NegativeIndex).is_none());
    }
}
