//! Parameterized sparse matrix generators.
//!
//! Each generator is deterministic in its seed and produces the structure
//! class named by its function: banded stencils (DIA-friendly), finite-
//! element-style clustered bands, uniform random, and power-law degree
//! distributions (web/circuit-like).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sparse_formats::{Coo3Tensor, CooMatrix};

/// 5-point Laplacian stencil on an `nx × ny` grid (matrix is
/// `(nx*ny) × (nx*ny)` with 5 diagonals) — the `ecology1` / `jnlbrng1`
/// structure class and the best case for DIA.
pub fn stencil5(nx: usize, ny: usize) -> CooMatrix {
    let n = nx * ny;
    let mut row = Vec::with_capacity(5 * n);
    let mut col = Vec::with_capacity(5 * n);
    let mut val = Vec::with_capacity(5 * n);
    for y in 0..ny {
        for x in 0..nx {
            let i = (y * nx + x) as i64;
            let mut push = |j: i64, v: f64| {
                row.push(i);
                col.push(j);
                val.push(v);
            };
            if y > 0 {
                push(i - nx as i64, -1.0);
            }
            if x > 0 {
                push(i - 1, -1.0);
            }
            push(i, 4.0);
            if x + 1 < nx {
                push(i + 1, -1.0);
            }
            if y + 1 < ny {
                push(i + nx as i64, -1.0);
            }
        }
    }
    CooMatrix::from_triplets(n, n, row, col, val).expect("stencil in range")
}

/// 7-point Laplacian stencil on an `nx × ny × nz` grid — the
/// `atmosmodd` / `Lin` / `Baumann` structure class.
pub fn stencil7(nx: usize, ny: usize, nz: usize) -> CooMatrix {
    let n = nx * ny * nz;
    let mut row = Vec::with_capacity(7 * n);
    let mut col = Vec::with_capacity(7 * n);
    let mut val = Vec::with_capacity(7 * n);
    let plane = (nx * ny) as i64;
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let i = (z * nx * ny + y * nx + x) as i64;
                let mut push = |j: i64, v: f64| {
                    row.push(i);
                    col.push(j);
                    val.push(v);
                };
                if z > 0 {
                    push(i - plane, -1.0);
                }
                if y > 0 {
                    push(i - nx as i64, -1.0);
                }
                if x > 0 {
                    push(i - 1, -1.0);
                }
                push(i, 6.0);
                if x + 1 < nx {
                    push(i + 1, -1.0);
                }
                if y + 1 < ny {
                    push(i + nx as i64, -1.0);
                }
                if z + 1 < nz {
                    push(i + plane, -1.0);
                }
            }
        }
    }
    CooMatrix::from_triplets(n, n, row, col, val).expect("stencil in range")
}

/// Banded matrix with the given diagonal offsets, each populated with
/// probability `fill` — the `majorbasis` (many diagonals) and
/// `dixmaanl` / `denormal` classes.
pub fn banded(n: usize, offsets: &[i64], fill: f64, seed: u64) -> CooMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut row = Vec::new();
    let mut col = Vec::new();
    let mut val = Vec::new();
    for i in 0..n as i64 {
        for &o in offsets {
            let j = i + o;
            if j >= 0 && (j as usize) < n && (fill >= 1.0 || rng.gen_bool(fill)) {
                row.push(i);
                col.push(j);
                val.push(rng.gen_range(-1.0..1.0));
            }
        }
    }
    CooMatrix::from_triplets(n, n, row, col, val).expect("band in range")
}

/// `count` evenly spread symmetric diagonal offsets (always including 0).
pub fn spread_offsets(count: usize, max_offset: i64) -> Vec<i64> {
    let mut offs = vec![0i64];
    let half = (count.saturating_sub(1)) / 2;
    for k in 1..=half {
        let o = (k as i64 * max_offset) / half.max(1) as i64;
        offs.push(o.max(k as i64));
        offs.push(-(o.max(k as i64)));
    }
    if count.is_multiple_of(2) && count > 1 {
        offs.push(max_offset + 1);
    }
    offs.sort_unstable();
    offs.dedup();
    offs
}

/// FEM-style matrix: dense `block × block` clusters along the diagonal
/// plus off-diagonal coupling blocks — the `pdb1HYS` / `cant` / `consph`
/// / `pwtk` class (high NNZ per row, clustered).
pub fn fem_like(n: usize, block: usize, couple: usize, seed: u64) -> CooMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let nb = n.div_ceil(block);
    let mut row = Vec::new();
    let mut col = Vec::new();
    let mut val = Vec::new();
    for b in 0..nb {
        let base = b * block;
        // Coupled blocks: self plus `couple` random neighbours.
        let mut partners = vec![b];
        for _ in 0..couple {
            let span = 8.max(nb / 64);
            let lo = b.saturating_sub(span);
            let hi = (b + span).min(nb - 1);
            partners.push(rng.gen_range(lo..=hi));
        }
        partners.sort_unstable();
        partners.dedup();
        for &p in &partners {
            let pbase = p * block;
            for r in 0..block.min(n - base) {
                for c in 0..block.min(n - pbase) {
                    if rng.gen_bool(0.6) {
                        row.push((base + r) as i64);
                        col.push((pbase + c) as i64);
                        val.push(rng.gen_range(-1.0..1.0));
                    }
                }
            }
        }
    }
    let mut m = CooMatrix::from_triplets(n, n, row, col, val).expect("fem in range");
    m.sort_row_major();
    dedup_coo(&mut m);
    m
}

/// Uniform random matrix with (approximately) `nnz` distinct nonzeros —
/// the `mac_econ_fwd500` / `cop20k_A` class.
pub fn random_uniform(nr: usize, nc: usize, nnz: usize, seed: u64) -> CooMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut row = Vec::with_capacity(nnz);
    let mut col = Vec::with_capacity(nnz);
    let mut val = Vec::with_capacity(nnz);
    for _ in 0..nnz {
        row.push(rng.gen_range(0..nr) as i64);
        col.push(rng.gen_range(0..nc) as i64);
        val.push(rng.gen_range(-1.0..1.0));
    }
    let mut m = CooMatrix::from_triplets(nr, nc, row, col, val).expect("random in range");
    m.sort_row_major();
    dedup_coo(&mut m);
    m
}

/// Power-law rows: a few very dense rows, a long sparse tail — the
/// `webbase1M` / `scircuit` class.
pub fn power_law(nr: usize, nc: usize, nnz: usize, seed: u64) -> CooMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut row = Vec::with_capacity(nnz);
    let mut col = Vec::with_capacity(nnz);
    let mut val = Vec::with_capacity(nnz);
    for _ in 0..nnz {
        // Zipf-ish row selection via inverse power transform.
        let u: f64 = rng.gen_range(0.0f64..1.0).max(1e-12);
        let r = ((nr as f64).powf(u) - 1.0) as usize % nr;
        row.push(r as i64);
        col.push(rng.gen_range(0..nc) as i64);
        val.push(rng.gen_range(-1.0..1.0));
    }
    let mut m = CooMatrix::from_triplets(nr, nc, row, col, val).expect("power in range");
    m.sort_row_major();
    dedup_coo(&mut m);
    m
}

/// Removes duplicate coordinates from a sorted COO matrix (keeping the
/// first value).
pub fn dedup_coo(m: &mut CooMatrix) {
    debug_assert!(m.is_sorted_row_major());
    let mut w = 0usize;
    for r in 0..m.nnz() {
        if w > 0 && m.row[r] == m.row[w - 1] && m.col[r] == m.col[w - 1] {
            continue;
        }
        m.row[w] = m.row[r];
        m.col[w] = m.col[r];
        m.val[w] = m.val[r];
        w += 1;
    }
    m.row.truncate(w);
    m.col.truncate(w);
    m.val.truncate(w);
}

/// Skewed random order-3 tensor with `nnz` entries — the FROSTT
/// (`darpa` / `fb-m` / `fb-s`) class: heavy-tailed first two modes,
/// near-uniform third.
pub fn skewed_tensor(
    dims: (usize, usize, usize),
    nnz: usize,
    seed: u64,
) -> Coo3Tensor {
    let mut rng = StdRng::seed_from_u64(seed);
    let (d0, d1, d2) = dims;
    let mut i0 = Vec::with_capacity(nnz);
    let mut i1 = Vec::with_capacity(nnz);
    let mut i2 = Vec::with_capacity(nnz);
    let mut val = Vec::with_capacity(nnz);
    let skew = |rng: &mut StdRng, extent: usize| -> i64 {
        let u: f64 = rng.gen_range(0.0f64..1.0).max(1e-12);
        (((extent as f64).powf(u) - 1.0) as usize % extent) as i64
    };
    for _ in 0..nnz {
        i0.push(skew(&mut rng, d0));
        i1.push(skew(&mut rng, d1));
        i2.push(rng.gen_range(0..d2) as i64);
        val.push(rng.gen_range(-1.0..1.0));
    }
    let mut t = Coo3Tensor::from_coords(dims, i0, i1, i2, val).expect("tensor in range");
    // Sources in Table 4 are lexicographically sorted COO with unique
    // coordinates (rank-based permutation assumes no duplicates).
    t.sort_by(|a, b| a.cmp(b));
    let mut w = 0usize;
    for r in 0..t.nnz() {
        if w > 0 && t.i0[r] == t.i0[w - 1] && t.i1[r] == t.i1[w - 1] && t.i2[r] == t.i2[w - 1]
        {
            continue;
        }
        t.i0[w] = t.i0[r];
        t.i1[w] = t.i1[r];
        t.i2[w] = t.i2[r];
        t.val[w] = t.val[r];
        w += 1;
    }
    t.i0.truncate(w);
    t.i1.truncate(w);
    t.i2.truncate(w);
    t.val.truncate(w);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stencil5_has_five_diagonals() {
        let m = stencil5(10, 10);
        assert_eq!(m.nr, 100);
        assert_eq!(m.diagonals(), vec![-10, -1, 0, 1, 10]);
        assert!(m.is_sorted_row_major());
    }

    #[test]
    fn stencil7_has_seven_diagonals() {
        let m = stencil7(5, 5, 5);
        assert_eq!(m.diagonals().len(), 7);
    }

    #[test]
    fn banded_respects_offsets() {
        let m = banded(50, &[-2, 0, 3], 1.0, 1);
        assert_eq!(m.diagonals(), vec![-2, 0, 3]);
        // Full fill: each diagonal contributes n - |offset| entries.
        assert_eq!(m.nnz(), 48 + 50 + 47);
    }

    #[test]
    fn spread_offsets_counts() {
        let offs = spread_offsets(22, 300);
        assert!(offs.len() >= 20 && offs.len() <= 23, "{offs:?}");
        assert!(offs.contains(&0));
        let mut sorted = offs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, offs);
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(random_uniform(40, 40, 200, 7), random_uniform(40, 40, 200, 7));
        assert_eq!(power_law(40, 40, 200, 7), power_law(40, 40, 200, 7));
        let a = fem_like(64, 8, 2, 3);
        assert_eq!(a, fem_like(64, 8, 2, 3));
    }

    #[test]
    fn dedup_removes_duplicates() {
        let mut m = CooMatrix::from_triplets(
            3,
            3,
            vec![0, 0, 1],
            vec![1, 1, 2],
            vec![1.0, 2.0, 3.0],
        )
        .unwrap();
        dedup_coo(&mut m);
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.val, vec![1.0, 3.0]);
    }

    #[test]
    fn power_law_is_skewed() {
        let m = power_law(1000, 1000, 20_000, 3);
        let mut counts = vec![0usize; 1000];
        for &r in &m.row {
            counts[r as usize] += 1;
        }
        counts.sort_unstable_by(|a, b| b.cmp(a));
        // Top 1% of rows hold far more than 1% of nonzeros.
        let top: usize = counts[..10].iter().sum();
        assert!(top * 10 > m.nnz(), "top={top} nnz={}", m.nnz());
    }

    #[test]
    fn skewed_tensor_sorted_and_in_range() {
        let t = skewed_tensor((100, 100, 20), 5_000, 9);
        assert!(t.nnz() > 0);
        for n in 1..t.nnz() {
            let a = [t.i0[n - 1], t.i1[n - 1], t.i2[n - 1]];
            let b = [t.i0[n], t.i1[n], t.i2[n]];
            assert!(a <= b);
        }
    }
}
