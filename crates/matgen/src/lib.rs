//! # sparse-matgen
//!
//! Deterministic synthetic generators reproducing the structure classes
//! and statistics of the paper's evaluation data — the 21 SuiteSparse
//! matrices of Table 3 and the three FROSTT tensors of Table 4 — plus
//! MatrixMarket I/O for substituting real data when available.
//!
//! ```
//! use sparse_matgen::suite::table3_suite;
//!
//! let suite = table3_suite();
//! assert_eq!(suite.len(), 21);
//! // `ecology1` is the paper's best DIA case: exactly 5 diagonals.
//! let eco = suite.iter().find(|s| s.name == "ecology1").unwrap();
//! let m = eco.generate(256); // scaled down 256x for a quick run
//! assert_eq!(m.diagonals().len(), 5);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod corrupt;
pub mod generators;
pub mod mm;
pub mod suite;
pub mod tns;

pub use corrupt::{corrupt_matrix, Corruption};
pub use generators::{
    banded, dedup_coo, fem_like, power_law, random_uniform, skewed_tensor,
    spread_offsets, stencil5, stencil7,
};
pub use mm::{read_matrix_market, write_matrix_market, MmError};
pub use tns::{read_tns, write_tns, TnsError};
pub use suite::{table3_suite, table4_suite, MatrixClass, MatrixSpec, TensorSpec};
