//! MatrixMarket I/O (coordinate, real, general) so real SuiteSparse
//! matrices can stand in for the synthetic twins when available.

use std::fmt;
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use sparse_formats::CooMatrix;

/// Errors raised while reading MatrixMarket files.
#[derive(Debug)]
pub enum MmError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Malformed header or entry.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description.
        msg: String,
    },
}

impl fmt::Display for MmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MmError::Io(e) => write!(f, "io: {e}"),
            MmError::Parse { line, msg } => write!(f, "line {line}: {msg}"),
        }
    }
}

impl std::error::Error for MmError {}

impl From<io::Error> for MmError {
    fn from(e: io::Error) -> Self {
        MmError::Io(e)
    }
}

fn parse_err(line: usize, msg: impl Into<String>) -> MmError {
    MmError::Parse { line, msg: msg.into() }
}

/// Reads a MatrixMarket coordinate file into COO. Supports `real`,
/// `integer`, and `pattern` fields and expands `symmetric` storage.
///
/// # Errors
/// Returns [`MmError`] for I/O failures or malformed content.
pub fn read_matrix_market(path: impl AsRef<Path>) -> Result<CooMatrix, MmError> {
    let f = File::open(path)?;
    read_matrix_market_from(BufReader::new(f))
}

/// Reader-based variant of [`read_matrix_market`].
///
/// # Errors
/// Returns [`MmError`] for I/O failures or malformed content.
pub fn read_matrix_market_from(r: impl BufRead) -> Result<CooMatrix, MmError> {
    let mut lines = r.lines().enumerate();
    // Header.
    let (lineno, header) = lines
        .next()
        .ok_or_else(|| parse_err(1, "empty file"))
        .and_then(|(k, l)| Ok((k + 1, l?)))?;
    let header = header.to_lowercase();
    if !header.starts_with("%%matrixmarket matrix coordinate") {
        return Err(parse_err(lineno, "expected coordinate MatrixMarket header"));
    }
    let pattern = header.contains("pattern");
    let symmetric = header.contains("symmetric");
    if header.contains("complex") || header.contains("hermitian") {
        return Err(parse_err(lineno, "complex/hermitian matrices unsupported"));
    }
    // Size line (skip comments).
    let mut dims: Option<(usize, usize, usize)> = None;
    let mut row = Vec::new();
    let mut col = Vec::new();
    let mut val = Vec::new();
    for (k, line) in lines {
        let lineno = k + 1;
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_ascii_whitespace();
        match dims {
            None => {
                let nr: usize = it
                    .next()
                    .and_then(|x| x.parse().ok())
                    .ok_or_else(|| parse_err(lineno, "bad rows"))?;
                let nc: usize = it
                    .next()
                    .and_then(|x| x.parse().ok())
                    .ok_or_else(|| parse_err(lineno, "bad cols"))?;
                let nnz: usize = it
                    .next()
                    .and_then(|x| x.parse().ok())
                    .ok_or_else(|| parse_err(lineno, "bad nnz"))?;
                dims = Some((nr, nc, nnz));
                row.reserve(nnz);
                col.reserve(nnz);
                val.reserve(nnz);
            }
            Some(_) => {
                let i: i64 = it
                    .next()
                    .and_then(|x| x.parse().ok())
                    .ok_or_else(|| parse_err(lineno, "bad row index"))?;
                let j: i64 = it
                    .next()
                    .and_then(|x| x.parse().ok())
                    .ok_or_else(|| parse_err(lineno, "bad col index"))?;
                let v: f64 = if pattern {
                    1.0
                } else {
                    it.next()
                        .and_then(|x| x.parse().ok())
                        .ok_or_else(|| parse_err(lineno, "bad value"))?
                };
                // 1-based in the file.
                row.push(i - 1);
                col.push(j - 1);
                val.push(v);
                if symmetric && i != j {
                    row.push(j - 1);
                    col.push(i - 1);
                    val.push(v);
                }
            }
        }
    }
    let (nr, nc, _) = dims.ok_or_else(|| parse_err(0, "missing size line"))?;
    let mut m = CooMatrix::from_triplets(nr, nc, row, col, val)
        .map_err(|e| parse_err(0, e.to_string()))?;
    m.sort_row_major();
    Ok(m)
}

/// Writes a COO matrix as a MatrixMarket coordinate file.
///
/// # Errors
/// Returns any underlying I/O failure.
pub fn write_matrix_market(path: impl AsRef<Path>, m: &CooMatrix) -> io::Result<()> {
    let f = File::create(path)?;
    let mut w = BufWriter::new(f);
    writeln!(w, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(w, "{} {} {}", m.nr, m.nc, m.nnz())?;
    for (i, j, v) in m.iter() {
        writeln!(w, "{} {} {}", i + 1, j + 1, v)?;
    }
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn round_trip_through_text() {
        let m = CooMatrix::from_triplets(
            3,
            4,
            vec![0, 1, 2],
            vec![1, 3, 0],
            vec![1.5, -2.0, 3.25],
        )
        .unwrap();
        let dir = std::env::temp_dir().join("sparse_synth_mm_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.mtx");
        write_matrix_market(&path, &m).unwrap();
        let back = read_matrix_market(&path).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn reads_pattern_and_symmetric() {
        let text = "%%MatrixMarket matrix coordinate pattern symmetric\n\
                    % comment\n\
                    3 3 2\n\
                    2 1\n\
                    3 3\n";
        let m = read_matrix_market_from(Cursor::new(text)).unwrap();
        // (2,1) expands to (1,2) as well; (3,3) stays single.
        assert_eq!(m.nnz(), 3);
        assert!(m.val.iter().all(|&v| v == 1.0));
    }

    #[test]
    fn rejects_bad_header() {
        let text = "%%MatrixMarket matrix array real general\n1 1\n1.0\n";
        assert!(read_matrix_market_from(Cursor::new(text)).is_err());
    }

    #[test]
    fn rejects_malformed_entries() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 x 1.0\n";
        assert!(read_matrix_market_from(Cursor::new(text)).is_err());
    }
}
