//! Synthetic twins of the paper's evaluation suite.
//!
//! Table 3 of the paper lists 21 SuiteSparse matrices; Table 4 lists
//! three FROSTT tensors. Those datasets are external, so this module
//! provides deterministic generators that reproduce each entry's
//! *structure class* and statistics (dimensions, NNZ, diagonal count) at
//! a configurable scale — `scale = 1` matches the paper's sizes, larger
//! scales shrink both dimensions and NNZ proportionally for quick runs.
//! The properties the experiments depend on (sortedness, rows, NNZ,
//! number of populated diagonals) are preserved exactly by class.

use sparse_formats::{Coo3Tensor, CooMatrix};

use crate::generators::{
    banded, fem_like, power_law, random_uniform, skewed_tensor, spread_offsets, stencil5,
    stencil7,
};

/// Structure class of a synthetic matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MatrixClass {
    /// 5-point stencil on a square grid (5 diagonals).
    Stencil5,
    /// 7-point stencil on a cube (7 diagonals).
    Stencil7,
    /// Banded with the given number of diagonals.
    Banded {
        /// Number of populated diagonals.
        diagonals: usize,
    },
    /// FEM-style clustered blocks.
    Fem {
        /// Dense block edge.
        block: usize,
        /// Off-diagonal coupling blocks per block row.
        couple: usize,
    },
    /// Uniform random.
    Random,
    /// Power-law row degrees.
    PowerLaw,
}

/// One entry of the synthetic Table-3 suite.
#[derive(Debug, Clone)]
pub struct MatrixSpec {
    /// SuiteSparse name this entry mirrors.
    pub name: &'static str,
    /// Rows at scale 1.
    pub nr: usize,
    /// Columns at scale 1.
    pub nc: usize,
    /// Nonzeros at scale 1 (approximate for stochastic classes).
    pub nnz: usize,
    /// Structure class.
    pub class: MatrixClass,
}

impl MatrixSpec {
    /// Generates the matrix at `scale` (dimensions and NNZ divided by
    /// `scale`), sorted row-major as the paper's evaluation assumes.
    pub fn generate(&self, scale: usize) -> CooMatrix {
        let scale = scale.max(1);
        let nr = (self.nr / scale).max(16);
        let nnz = (self.nnz / scale).max(nr);
        let seed = self
            .name
            .bytes()
            .fold(0u64, |h, b| h.wrapping_mul(131).wrapping_add(b as u64));
        let mut m = match &self.class {
            MatrixClass::Stencil5 => {
                let side = (nr as f64).sqrt().ceil() as usize;
                stencil5(side, side)
            }
            MatrixClass::Stencil7 => {
                let side = (nr as f64).cbrt().ceil() as usize;
                stencil7(side, side, side)
            }
            MatrixClass::Banded { diagonals } => {
                let max_off = (nr as i64 / 20).max(*diagonals as i64 + 1);
                let offsets = spread_offsets(*diagonals, max_off);
                // Fill chosen to land near the target NNZ.
                let fill =
                    (nnz as f64 / (offsets.len() as f64 * nr as f64)).clamp(0.05, 1.0);
                banded(nr, &offsets, fill, seed)
            }
            MatrixClass::Fem { block, couple } => {
                // Choose the couple count so block * block * couple * nb
                // lands near nnz.
                let per_row = (nnz / nr).max(1);
                let couple = (*couple).max(per_row / (block * 6 / 10).max(1)).max(1);
                fem_like(nr, *block, couple, seed)
            }
            MatrixClass::Random => random_uniform(nr, nr, nnz, seed),
            MatrixClass::PowerLaw => power_law(nr, nr, nnz, seed),
        };
        if !m.is_sorted_row_major() {
            m.sort_row_major();
        }
        m
    }

    /// Returns `true` for classes with a bounded diagonal count, i.e. the
    /// matrices DIA conversion is feasible on.
    pub fn dia_friendly(&self) -> bool {
        matches!(
            self.class,
            MatrixClass::Stencil5 | MatrixClass::Stencil7 | MatrixClass::Banded { .. }
        )
    }
}

/// The 21-entry synthetic Table-3 suite.
pub fn table3_suite() -> Vec<MatrixSpec> {
    use MatrixClass::*;
    vec![
        MatrixSpec { name: "pdb1HYS", nr: 36_417, nc: 36_417, nnz: 4_344_765, class: Fem { block: 12, couple: 6 } },
        MatrixSpec { name: "jnlbrng1", nr: 40_000, nc: 40_000, nnz: 199_200, class: Stencil5 },
        MatrixSpec { name: "obstclae", nr: 40_000, nc: 40_000, nnz: 197_608, class: Stencil5 },
        MatrixSpec { name: "chem_master1", nr: 40_401, nc: 40_401, nnz: 201_201, class: Stencil5 },
        MatrixSpec { name: "rma10", nr: 46_835, nc: 46_835, nnz: 2_374_001, class: Fem { block: 10, couple: 5 } },
        MatrixSpec { name: "dixmaanl", nr: 60_000, nc: 60_000, nnz: 299_998, class: Banded { diagonals: 5 } },
        MatrixSpec { name: "cant", nr: 62_451, nc: 62_451, nnz: 4_007_383, class: Fem { block: 12, couple: 5 } },
        MatrixSpec { name: "shyy161", nr: 76_480, nc: 76_480, nnz: 329_762, class: Banded { diagonals: 9 } },
        MatrixSpec { name: "consph", nr: 83_334, nc: 83_334, nnz: 6_010_480, class: Fem { block: 12, couple: 6 } },
        MatrixSpec { name: "denormal", nr: 89_400, nc: 89_400, nnz: 1_156_224, class: Banded { diagonals: 13 } },
        MatrixSpec { name: "Baumann", nr: 112_211, nc: 112_211, nnz: 748_331, class: Stencil7 },
        MatrixSpec { name: "cop20k_A", nr: 121_192, nc: 121_192, nnz: 2_624_331, class: Random },
        MatrixSpec { name: "shipsec1", nr: 140_874, nc: 140_874, nnz: 3_568_176, class: Fem { block: 10, couple: 4 } },
        MatrixSpec { name: "majorbasis", nr: 160_000, nc: 160_000, nnz: 1_750_416, class: Banded { diagonals: 22 } },
        MatrixSpec { name: "scircuit", nr: 170_998, nc: 170_998, nnz: 958_936, class: PowerLaw },
        MatrixSpec { name: "mac_econ_fwd500", nr: 206_500, nc: 206_500, nnz: 1_273_389, class: Random },
        MatrixSpec { name: "pwtk", nr: 217_918, nc: 217_918, nnz: 11_524_432, class: Fem { block: 12, couple: 7 } },
        MatrixSpec { name: "Lin", nr: 256_000, nc: 256_000, nnz: 1_766_400, class: Stencil7 },
        MatrixSpec { name: "ecology1", nr: 1_000_000, nc: 1_000_000, nnz: 4_996_000, class: Stencil5 },
        MatrixSpec { name: "webbase1M", nr: 1_000_005, nc: 1_000_005, nnz: 3_105_536, class: PowerLaw },
        MatrixSpec { name: "atmosmodd", nr: 1_270_432, nc: 1_270_432, nnz: 8_814_880, class: Stencil7 },
    ]
}

/// One entry of the synthetic Table-4 tensor suite.
#[derive(Debug, Clone)]
pub struct TensorSpec {
    /// FROSTT name this entry mirrors.
    pub name: &'static str,
    /// Mode extents at scale 1.
    pub dims: (usize, usize, usize),
    /// Nonzeros at scale 1.
    pub nnz: usize,
}

impl TensorSpec {
    /// Generates the tensor at `scale` (extents and NNZ divided by
    /// `scale`), lexicographically sorted.
    pub fn generate(&self, scale: usize) -> Coo3Tensor {
        let scale = scale.max(1);
        let dims = (
            (self.dims.0 / scale).max(8),
            (self.dims.1 / scale).max(8),
            (self.dims.2 / scale).max(8),
        );
        let nnz = (self.nnz / scale).max(64);
        let seed = self
            .name
            .bytes()
            .fold(1u64, |h, b| h.wrapping_mul(137).wrapping_add(b as u64));
        skewed_tensor(dims, nnz, seed)
    }
}

/// The three-entry synthetic Table-4 suite (darpa, fb-m, fb-s twins).
pub fn table4_suite() -> Vec<TensorSpec> {
    vec![
        TensorSpec { name: "darpa", dims: (22_476, 22_476, 23_776_223), nnz: 28_436_033 },
        TensorSpec { name: "fb-m", dims: (23_344_784, 23_344_784, 166), nnz: 99_590_916 },
        TensorSpec { name: "fb-s", dims: (38_955_429, 38_955_429, 532), nnz: 139_920_771 },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_21_entries_matching_table3() {
        let suite = table3_suite();
        assert_eq!(suite.len(), 21);
        let eco = suite.iter().find(|s| s.name == "ecology1").unwrap();
        assert_eq!(eco.nr, 1_000_000);
        assert!(eco.dia_friendly());
        let web = suite.iter().find(|s| s.name == "webbase1M").unwrap();
        assert!(!web.dia_friendly());
    }

    #[test]
    fn generated_matrices_are_sorted_and_sized() {
        for spec in table3_suite() {
            let m = spec.generate(256);
            assert!(m.is_sorted_row_major(), "{}", spec.name);
            assert!(m.nnz() > 0, "{}", spec.name);
            assert!(m.nr >= 16, "{}", spec.name);
        }
    }

    #[test]
    fn diagonal_counts_match_class() {
        let suite = table3_suite();
        let major = suite.iter().find(|s| s.name == "majorbasis").unwrap();
        let m = major.generate(64);
        // ~22 diagonals (the paper's worst DIA case).
        let d = m.diagonals().len();
        assert!((18..=24).contains(&d), "majorbasis diagonals = {d}");
        let eco = suite.iter().find(|s| s.name == "ecology1").unwrap();
        assert_eq!(eco.generate(64).diagonals().len(), 5);
    }

    #[test]
    fn tensor_suite_generates_scaled() {
        for spec in table4_suite() {
            let t = spec.generate(4096);
            assert!(t.nnz() >= 64, "{}", spec.name);
        }
    }

    #[test]
    fn generation_is_deterministic_per_name() {
        let spec = &table3_suite()[14]; // scircuit
        assert_eq!(spec.generate(128), spec.generate(128));
    }
}
