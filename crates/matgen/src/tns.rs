//! FROSTT `.tns` tensor I/O, so the real `darpa` / `fb-m` / `fb-s`
//! tensors can replace the synthetic Table-4 twins when available.
//!
//! The format is one nonzero per line: `i j k value` with 1-based
//! coordinates; `#`-prefixed lines are comments.

use std::fmt;
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use sparse_formats::Coo3Tensor;

/// Errors raised while reading `.tns` files.
#[derive(Debug)]
pub enum TnsError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Malformed entry.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description.
        msg: String,
    },
}

impl fmt::Display for TnsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TnsError::Io(e) => write!(f, "io: {e}"),
            TnsError::Parse { line, msg } => write!(f, "line {line}: {msg}"),
        }
    }
}

impl std::error::Error for TnsError {}

impl From<io::Error> for TnsError {
    fn from(e: io::Error) -> Self {
        TnsError::Io(e)
    }
}

/// Reads an order-3 `.tns` file; extents are inferred from the maximum
/// coordinate per mode. The result is lexicographically sorted.
///
/// # Errors
/// Returns [`TnsError`] for I/O failures, malformed lines, or tensors
/// whose order is not 3.
pub fn read_tns(path: impl AsRef<Path>) -> Result<Coo3Tensor, TnsError> {
    read_tns_from(BufReader::new(File::open(path)?))
}

/// Reader-based variant of [`read_tns`].
///
/// # Errors
/// See [`read_tns`].
pub fn read_tns_from(r: impl BufRead) -> Result<Coo3Tensor, TnsError> {
    let mut i0 = Vec::new();
    let mut i1 = Vec::new();
    let mut i2 = Vec::new();
    let mut val = Vec::new();
    for (k, line) in r.lines().enumerate() {
        let lineno = k + 1;
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') || t.starts_with('%') {
            continue;
        }
        let fields: Vec<&str> = t.split_ascii_whitespace().collect();
        if fields.len() != 4 {
            return Err(TnsError::Parse {
                line: lineno,
                msg: format!("expected `i j k value`, found {} fields", fields.len()),
            });
        }
        let parse_coord = |s: &str| -> Result<i64, TnsError> {
            s.parse::<i64>()
                .ok()
                .filter(|&v| v >= 1)
                .ok_or_else(|| TnsError::Parse {
                    line: lineno,
                    msg: format!("bad coordinate `{s}`"),
                })
        };
        i0.push(parse_coord(fields[0])? - 1);
        i1.push(parse_coord(fields[1])? - 1);
        i2.push(parse_coord(fields[2])? - 1);
        val.push(fields[3].parse::<f64>().map_err(|_| TnsError::Parse {
            line: lineno,
            msg: format!("bad value `{}`", fields[3]),
        })?);
    }
    let dims = (
        i0.iter().max().map_or(1, |&m| m as usize + 1),
        i1.iter().max().map_or(1, |&m| m as usize + 1),
        i2.iter().max().map_or(1, |&m| m as usize + 1),
    );
    let mut t = Coo3Tensor::from_coords(dims, i0, i1, i2, val)
        .map_err(|e| TnsError::Parse { line: 0, msg: e.to_string() })?;
    t.sort_by(|a, b| a.cmp(b));
    Ok(t)
}

/// Writes an order-3 tensor as `.tns` (1-based coordinates).
///
/// # Errors
/// Returns any underlying I/O failure.
pub fn write_tns(path: impl AsRef<Path>, t: &Coo3Tensor) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    for (c, v) in t.iter() {
        writeln!(w, "{} {} {} {}", c[0] + 1, c[1] + 1, c[2] + 1, v)?;
    }
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn round_trip() {
        let t = Coo3Tensor::from_coords(
            (3, 4, 5),
            vec![0, 2, 1],
            vec![3, 0, 1],
            vec![4, 2, 0],
            vec![1.5, -2.0, 3.0],
        )
        .unwrap();
        let dir = std::env::temp_dir().join("sparse_synth_tns_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.tns");
        write_tns(&path, &t).unwrap();
        let mut back = read_tns(&path).unwrap();
        let mut orig = t;
        orig.sort_by(|a, b| a.cmp(b));
        back.sort_by(|a, b| a.cmp(b));
        assert_eq!(back.i0, orig.i0);
        assert_eq!(back.val, orig.val);
    }

    #[test]
    fn skips_comments_and_infers_dims() {
        let text = "# a comment\n2 3 1 7.5\n1 1 4 -1\n";
        let t = read_tns_from(Cursor::new(text)).unwrap();
        assert_eq!(t.nnz(), 2);
        assert_eq!((t.nr, t.nc, t.nz), (2, 3, 4));
        // Sorted lexicographically: (0,0,3) first.
        assert_eq!(t.i0, vec![0, 1]);
        assert_eq!(t.val, vec![-1.0, 7.5]);
    }

    #[test]
    fn rejects_bad_lines() {
        assert!(read_tns_from(Cursor::new("1 2 3\n")).is_err());
        assert!(read_tns_from(Cursor::new("0 1 1 2.0\n")).is_err()); // 1-based
        assert!(read_tns_from(Cursor::new("1 1 1 xyz\n")).is_err());
    }
}
