//! Engine serving-layer benchmark: plan-cache amortization and batch
//! throughput.
//!
//! Measurements on a >=100k-nnz COO -> CSR conversion:
//!
//! 1. **plan acquisition** — what the cache eliminates: synthesizing +
//!    lowering a plan from scratch vs fetching it from a warm cache.
//!    This is the headline ratio (required >=10x; in practice several
//!    hundred x).
//! 2. **end-to-end** — a cold engine's first `convert` (synthesis + run)
//!    vs warm converts (run only). On large inputs the inspector
//!    execution dominates, so this ratio is modest by design — the cache
//!    removes the synthesis term, it cannot make execution faster.
//! 3. **overhead gates** — input validation and the observability
//!    layer's instrumentation (with the default `NoopSubscriber`) are
//!    each asserted to cost <5% next to raw execution.
//! 4. **batch** — `convert_batch` over copies of the input at several
//!    thread counts (wall-clock scaling requires >1 available CPU; the
//!    available parallelism is printed alongside).
//!
//! Run with `cargo bench -p sparse-bench --bench engine_cache`.

use std::time::{Duration, Instant};

use sparse_engine::{Engine, EngineConfig};
use sparse_formats::{descriptors, AnyMatrix, CooMatrix};

/// Deterministic scattered matrix, sorted row-major, ~143k nnz.
fn large_scoo() -> CooMatrix {
    let (nr, nc, stride) = (1000usize, 1000usize, 7usize);
    let mut row = Vec::new();
    let mut col = Vec::new();
    let mut val = Vec::new();
    for k in (0..nr * nc).step_by(stride) {
        row.push((k / nc) as i64);
        col.push((k % nc) as i64);
        val.push((k % 97) as f64 + 1.0);
    }
    CooMatrix::from_triplets(nr, nc, row, col, val).unwrap()
}

fn time<R>(mut f: impl FnMut() -> R) -> Duration {
    let t0 = Instant::now();
    std::hint::black_box(f());
    t0.elapsed()
}

fn median(mut samples: Vec<Duration>) -> Duration {
    samples.sort();
    samples[samples.len() / 2]
}

fn main() {
    const SAMPLES: usize = 5;
    let src = descriptors::scoo();
    let dst = descriptors::csr();
    let input = AnyMatrix::Coo(large_scoo());
    let nnz = input.nnz();
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    eprintln!(
        "engine_cache: COO -> CSR, {nnz} nnz, {SAMPLES} samples each, {cpus} CPU(s) available"
    );

    // 1. Plan acquisition: synthesis from scratch vs warm-cache fetch.
    let cold_plan = median(
        (0..SAMPLES)
            .map(|_| {
                let engine = Engine::new();
                time(|| engine.plan(&src, &dst).unwrap())
            })
            .collect(),
    );
    let engine = Engine::new();
    engine.plan(&src, &dst).unwrap();
    let warm_plan = median(
        (0..SAMPLES * 100)
            .map(|_| time(|| engine.plan(&src, &dst).unwrap()))
            .collect(),
    );
    let plan_ratio = cold_plan.as_secs_f64() / warm_plan.as_secs_f64().max(1e-9);
    eprintln!("  plan: cold synthesis          {cold_plan:>12.2?}");
    eprintln!("  plan: warm cache fetch        {warm_plan:>12.2?}   cold/warm = {plan_ratio:.0}x");
    assert!(
        plan_ratio >= 10.0,
        "plan cache must beat re-synthesis by >=10x (got {plan_ratio:.1}x)"
    );

    // 2. End-to-end conversions on the large input.
    let cold_convert = median(
        (0..SAMPLES)
            .map(|_| {
                let engine = Engine::new();
                time(|| engine.convert(&src, &dst, &input).unwrap())
            })
            .collect(),
    );
    let engine = Engine::new();
    engine.convert(&src, &dst, &input).unwrap();
    let warm_convert = median(
        (0..SAMPLES)
            .map(|_| time(|| engine.convert(&src, &dst, &input).unwrap()))
            .collect(),
    );
    assert_eq!(engine.stats().plans_synthesized, 1, "warm path must not synthesize");
    let e2e_ratio = cold_convert.as_secs_f64() / warm_convert.as_secs_f64();
    eprintln!("  convert: cold (synth + run)   {cold_convert:>12.2?}");
    eprintln!("  convert: warm (run only)      {warm_convert:>12.2?}   cold/warm = {e2e_ratio:.2}x");

    // 3. Input-validation overhead: the structural checks the hardened
    //    path (`run_matrix`) adds on top of raw execution
    //    (`run_matrix_unchecked`). Validation cost is measured directly
    //    (it is deterministic) rather than by differencing two noisy
    //    end-to-end timings, and must stay in the noise (<5%) next to
    //    the interpreter.
    let plan = engine.plan(&src, &dst).unwrap();
    let validate_only = median(
        (0..SAMPLES * 3)
            .map(|_| {
                time(|| {
                    sparse_formats::validate_matrix(&plan.synth.src, (&input).into()).unwrap()
                })
            })
            .collect(),
    );
    let unchecked = median(
        (0..SAMPLES * 3)
            .map(|_| time(|| plan.run_matrix_unchecked(&input).unwrap()))
            .collect(),
    );
    let overhead = validate_only.as_secs_f64() / unchecked.as_secs_f64();
    eprintln!("  run: execution (unchecked)    {unchecked:>12.2?}");
    eprintln!(
        "  run: input validation         {validate_only:>12.2?}   overhead = {:.2}%",
        overhead * 100.0
    );
    assert!(
        overhead < 0.05,
        "input validation must cost <5% of a conversion (got {:.2}%)",
        overhead * 100.0
    );

    // 4. Observability overhead: the engine's warm `convert` runs the
    //    *instrumented* pipeline — stage timers, span emission, the
    //    event ring, per-pair histograms — with the default
    //    `NoopSubscriber`. That whole layer must stay invisible next to
    //    the uninstrumented baseline (validation + raw execution),
    //    i.e. what the same warm conversion cost before the
    //    observability layer existed.
    let observed = median(
        (0..SAMPLES * 3)
            .map(|_| time(|| engine.convert(&src, &dst, &input).unwrap()))
            .collect(),
    );
    let baseline = median(
        (0..SAMPLES * 3)
            .map(|_| {
                time(|| {
                    sparse_formats::validate_matrix(&plan.synth.src, (&input).into()).unwrap();
                    plan.run_matrix_unchecked(&input).unwrap()
                })
            })
            .collect(),
    );
    let obs_overhead = observed.as_secs_f64() / baseline.as_secs_f64() - 1.0;
    eprintln!("  obs: baseline (validate+run)  {baseline:>12.2?}");
    eprintln!(
        "  obs: instrumented convert     {observed:>12.2?}   overhead = {:+.2}%",
        obs_overhead * 100.0
    );
    assert!(
        obs_overhead < 0.05,
        "NoopSubscriber instrumentation must cost <5% on the warm path (got {:+.2}%)",
        obs_overhead * 100.0
    );

    // 5. Batch throughput at several widths.
    let batch: Vec<AnyMatrix> = (0..16).map(|_| input.clone()).collect();
    for threads in [1usize, 2, 4, 8] {
        let engine = Engine::with_config(EngineConfig { threads, ..Default::default() });
        engine.plan(&src, &dst).unwrap(); // prime so timing is pure execution
        let total = median(
            (0..SAMPLES)
                .map(|_| {
                    time(|| {
                        for item in engine.convert_batch(&src, &dst, &batch).unwrap() {
                            item.unwrap();
                        }
                    })
                })
                .collect(),
        );
        let per = total / batch.len() as u32;
        eprintln!(
            "  batch x{} @ {threads} thread(s):      {total:>12.2?} total, {per:?}/conversion",
            batch.len()
        );
    }
}
