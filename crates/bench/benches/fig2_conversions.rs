//! Criterion benches for the Figure-2 conversion experiments: the
//! synthesized inspector vs the TACO / SPARSKIT / MKL comparator models
//! on a representative subset of the Table-3 suite.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sparse_baselines::{fig2, Library};
use sparse_bench::{build_conversion, Fig2Kind};
use sparse_formats::CsrMatrix;
use sparse_matgen::suite::table3_suite;
use sparse_synthesis::run as synth_run;
use spf_codegen::runtime::RtEnv;

const SCALE: usize = 256;
const MATRICES: [&str; 4] = ["jnlbrng1", "majorbasis", "scircuit", "ecology1"];

fn coo_env(m: &sparse_formats::CooMatrix) -> RtEnv<'_> {
    RtEnv::new()
        .with_sym("NR", m.nr as i64)
        .with_sym("NC", m.nc as i64)
        .with_sym("NNZ", m.nnz() as i64)
        .with_uf("row", m.row.clone())
        .with_uf("col", m.col.clone())
        .with_data("Acoo", m.val.clone())
}

fn bench_kind(c: &mut Criterion, kind: Fig2Kind, group_name: &str) {
    let conv = build_conversion(kind);
    let mut group = c.benchmark_group(group_name);
    for spec in table3_suite() {
        if !MATRICES.contains(&spec.name) {
            continue;
        }
        if matches!(kind, Fig2Kind::CooToDiaLinear | Fig2Kind::CooToDiaBinary)
            && !spec.dia_friendly()
        {
            continue;
        }
        let coo = spec.generate(SCALE);
        let csr = matches!(kind, Fig2Kind::CsrToCsc).then(|| CsrMatrix::from_coo(&coo));

        // Synthesized.
        let mut env = RtEnv::new();
        match (&csr, kind) {
            (Some(m), Fig2Kind::CsrToCsc) => synth_run::bind_csr(&mut env, &conv.synth.src, m).unwrap(),
            _ => synth_run::bind_coo(&mut env, &conv.synth.src, &coo).unwrap(),
        }
        group.bench_with_input(
            BenchmarkId::new("synthesized", spec.name),
            &(),
            |b, ()| b.iter(|| conv.execute_env(&mut env).unwrap()),
        );

        // Same inspector with ExecStats counting compiled out
        // (`execute_quiet`): the delta is the cost of statement/op
        // accounting on the interpreter hot path.
        group.bench_with_input(
            BenchmarkId::new("synthesized_nostats", spec.name),
            &(),
            |b, ()| b.iter(|| conv.execute_env_quiet(&mut env).unwrap()),
        );

        // Baselines.
        for lib in Library::ALL {
            let routine = match kind {
                Fig2Kind::CooToCsc => fig2::coo_to_csc(lib),
                Fig2Kind::CsrToCsc => fig2::csr_to_csc(lib),
                Fig2Kind::CooToCsr => fig2::coo_to_csr(lib),
                Fig2Kind::CooToDiaLinear | Fig2Kind::CooToDiaBinary => fig2::coo_to_dia(lib),
            };
            let mut env = match (&csr, kind) {
                (Some(m), Fig2Kind::CsrToCsc) => RtEnv::new()
                    .with_sym("NR", m.nr as i64)
                    .with_sym("NC", m.nc as i64)
                    .with_sym("NNZ", m.nnz() as i64)
                    .with_uf("rowptr", m.rowptr.clone())
                    .with_uf("col2", m.col.clone())
                    .with_data("Acsr", m.val.clone()),
                _ => coo_env(&coo),
            };
            group.bench_with_input(
                BenchmarkId::new(lib.name(), spec.name),
                &(),
                |b, ()| b.iter(|| routine.execute(&mut env).unwrap()),
            );
        }
    }
    group.finish();
}

fn fig2a(c: &mut Criterion) {
    bench_kind(c, Fig2Kind::CooToCsc, "fig2a_coo_to_csc");
}

fn fig2b(c: &mut Criterion) {
    bench_kind(c, Fig2Kind::CsrToCsc, "fig2b_csr_to_csc");
}

fn fig2c(c: &mut Criterion) {
    bench_kind(c, Fig2Kind::CooToCsr, "fig2c_coo_to_csr");
}

fn fig2d(c: &mut Criterion) {
    bench_kind(c, Fig2Kind::CooToDiaLinear, "fig2d_coo_to_dia_linear");
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = fig2a, fig2b, fig2c, fig2d
}
criterion_main!(benches);
