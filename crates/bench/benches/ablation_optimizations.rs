//! Ablation bench for the §3.3 design choices: how much each optimization
//! contributes on the paper's headline COO→CSR conversion.
//!
//! * `naive` — the synthesized loop chain as-is (permutation built and
//!   consulted, redundant bound updates, no fusion).
//! * `optimized` — redundancy removal + identity-permutation elimination
//!   + dead-code elimination + fusion (the shipping path).
//!
//! And for COO→DIA, linear vs binary membership search (Figure 3's
//! design choice in isolation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sparse_formats::descriptors;
use sparse_matgen::suite::table3_suite;
use sparse_synthesis::{run as synth_run, Conversion, SynthesisOptions};
use spf_codegen::runtime::RtEnv;

const SCALE: usize = 256;

fn ablation_csr(c: &mut Criterion) {
    let variants = [
        ("naive", SynthesisOptions { optimize: false, binary_search: false }),
        ("optimized", SynthesisOptions { optimize: true, binary_search: false }),
    ];
    let mut group = c.benchmark_group("ablation_coo_to_csr");
    for spec in table3_suite() {
        if !["jnlbrng1", "scircuit", "ecology1"].contains(&spec.name) {
            continue;
        }
        let coo = spec.generate(SCALE);
        for (label, opts) in variants {
            let conv =
                Conversion::new(&descriptors::scoo(), &descriptors::csr(), opts).unwrap();
            let mut env = RtEnv::new();
            synth_run::bind_coo(&mut env, &conv.synth.src, &coo).unwrap();
            group.bench_with_input(BenchmarkId::new(label, spec.name), &(), |b, ()| {
                b.iter(|| conv.execute_env(&mut env).unwrap())
            });
        }
    }
    group.finish();
}

fn ablation_dia_search(c: &mut Criterion) {
    let variants = [
        ("linear", SynthesisOptions { optimize: true, binary_search: false }),
        ("binary", SynthesisOptions { optimize: true, binary_search: true }),
    ];
    let mut group = c.benchmark_group("ablation_dia_search");
    for spec in table3_suite() {
        if !["dixmaanl", "majorbasis"].contains(&spec.name) {
            continue;
        }
        let coo = spec.generate(SCALE);
        for (label, opts) in variants {
            let conv =
                Conversion::new(&descriptors::scoo(), &descriptors::dia(), opts).unwrap();
            let mut env = RtEnv::new();
            synth_run::bind_coo(&mut env, &conv.synth.src, &coo).unwrap();
            group.bench_with_input(BenchmarkId::new(label, spec.name), &(), |b, ()| {
                b.iter(|| conv.execute_env(&mut env).unwrap())
            });
        }
    }
    group.finish();
}

/// Generated-executor overhead: the SPF-generated SpMV (interpreted)
/// against the native container kernel — quantifies the substrate tax
/// that inflates the Table-4 slowdown (see EXPERIMENTS.md note 2).
fn ablation_executor(c: &mut Criterion) {
    use sparse_formats::CsrMatrix;
    use sparse_synthesis::executor;
    use spf_computation::ComparatorRegistry;

    let coo = table3_suite()[8].generate(SCALE); // consph (FEM)
    let csr = CsrMatrix::from_coo(&coo);
    let x: Vec<f64> = (0..csr.nc).map(|k| (k % 9) as f64).collect();

    let comp = executor::spmv(&descriptors::csr()).unwrap();
    let compiled = comp.lower().unwrap();
    let mut env = RtEnv::new();
    synth_run::bind_csr(&mut env, &descriptors::csr(), &csr).unwrap();
    env.data.insert(executor::names::X.to_string(), x.clone().into());

    let mut group = c.benchmark_group("ablation_executor_spmv");
    group.bench_function("generated_interpreted", |b| {
        b.iter(|| {
            compiled.execute(&mut env, &ComparatorRegistry::new()).unwrap();
        })
    });
    group.bench_function("native_container", |b| {
        b.iter(|| std::hint::black_box(csr.spmv(&x)))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = ablation_csr, ablation_dia_search, ablation_executor
}
criterion_main!(benches);
