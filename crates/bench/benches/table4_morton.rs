//! Criterion bench for Table 4: synthesized COO3D→MCOO3 reordering vs the
//! hand-written HiCOO-style blocked z-Morton sort.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sparse_baselines::hicoo_morton_sort3;
use sparse_formats::descriptors;
use sparse_matgen::suite::table4_suite;
use sparse_synthesis::{run as synth_run, Conversion, SynthesisOptions};
use spf_codegen::runtime::RtEnv;

const SCALE: usize = 4096;

fn table4(c: &mut Criterion) {
    let conv = Conversion::new(
        &descriptors::scoo3(),
        &descriptors::mcoo3(),
        SynthesisOptions::default(),
    )
    .unwrap();
    let mut group = c.benchmark_group("table4_morton_reorder");
    for spec in table4_suite() {
        let t = spec.generate(SCALE);
        group.bench_with_input(BenchmarkId::new("hicoo", spec.name), &(), |b, ()| {
            b.iter(|| std::hint::black_box(hicoo_morton_sort3(&t, 7).nnz()))
        });
        let mut env = RtEnv::new();
        synth_run::bind_coo3(&mut env, &conv.synth.src, &t).unwrap();
        group.bench_with_input(BenchmarkId::new("synthesized", spec.name), &(), |b, ()| {
            b.iter(|| conv.execute_env(&mut env).unwrap())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = table4
}
criterion_main!(benches);
