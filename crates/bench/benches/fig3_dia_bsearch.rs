//! Criterion bench for Figure 3: COO→DIA with the synthesized linear
//! search vs the binary-search optimization, on the best (ecology1, 5
//! diagonals) and worst (majorbasis, 22 diagonals) DIA cases.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sparse_bench::{build_conversion, Fig2Kind};
use sparse_matgen::suite::table3_suite;
use sparse_synthesis::run as synth_run;
use spf_codegen::runtime::RtEnv;

const SCALE: usize = 256;

fn fig3(c: &mut Criterion) {
    let linear = build_conversion(Fig2Kind::CooToDiaLinear);
    let binary = build_conversion(Fig2Kind::CooToDiaBinary);
    let mut group = c.benchmark_group("fig3_dia_search");
    for spec in table3_suite() {
        if !["ecology1", "majorbasis", "jnlbrng1"].contains(&spec.name) {
            continue;
        }
        let coo = spec.generate(SCALE);
        for (label, conv) in [("linear", &linear), ("binary", &binary)] {
            let mut env = RtEnv::new();
            synth_run::bind_coo(&mut env, &conv.synth.src, &coo).unwrap();
            group.bench_with_input(
                BenchmarkId::new(label, spec.name),
                &(),
                |b, ()| b.iter(|| conv.execute_env(&mut env).unwrap()),
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = fig3
}
criterion_main!(benches);
