//! Measures the native kernel backend against the SPF-IR interpreter on
//! every kernel-backed catalog pair and writes the results to
//! `BENCH_4.json` (per-pair ns/nnz for both backends plus the speedup).
//! Also gates the observability layer: the instrumented interpreter path
//! with the default `NoopSubscriber` must cost <5% over the
//! uninstrumented one, summed across all pairs.
//!
//! Usage:
//!
//! ```text
//! bench4 [--n N] [--nnz M] [--reps K] [--out PATH]
//! ```
//!
//! Defaults: `--n 10000` (a 10k×10k matrix), `--nnz 1000000`,
//! `--reps 3` (minima are reported), `--out BENCH_4.json`.

use std::fmt::Write as _;

use sparse_bench::time_min;
use sparse_formats::descriptors;
use sparse_formats::{
    AnyMatrix, AnyTensor, CooMatrix, CscMatrix, CsrMatrix, FormatDescriptor, MortonCooMatrix,
};
use sparse_matgen::generators::{random_uniform, skewed_tensor};
use sparse_synthesis::{Conversion, SynthesisOptions};

struct Args {
    n: usize,
    nnz: usize,
    reps: usize,
    out: String,
}

fn parse_args() -> Args {
    let mut args =
        Args { n: 10_000, nnz: 1_000_000, reps: 3, out: "BENCH_4.json".to_string() };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--n" => args.n = it.next().and_then(|v| v.parse().ok()).expect("--n takes N"),
            "--nnz" => {
                args.nnz = it.next().and_then(|v| v.parse().ok()).expect("--nnz takes M")
            }
            "--reps" => {
                args.reps = it.next().and_then(|v| v.parse().ok()).expect("--reps takes K")
            }
            "--out" => args.out = it.next().expect("--out takes a path"),
            "--help" | "-h" => {
                println!("bench4 [--n N] [--nnz M] [--reps K] [--out PATH]");
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument `{other}` (try --help)");
                std::process::exit(2);
            }
        }
    }
    args
}

/// How a generated COO matrix is presented to the pair's source format.
#[derive(Clone, Copy)]
enum Src {
    Unsorted,
    Sorted,
    Morton,
    Csr,
    Csc,
}

fn matrix_pairs() -> Vec<(Src, FormatDescriptor, FormatDescriptor)> {
    use descriptors as d;
    vec![
        (Src::Sorted, d::scoo(), d::csr()),
        (Src::Unsorted, d::coo(), d::csr()),
        (Src::Sorted, d::scoo(), d::csc()),
        (Src::Csr, d::csr(), d::csc()),
        (Src::Csc, d::csc(), d::csr()),
        (Src::Csr, d::csr(), d::coo()),
        (Src::Csc, d::csc(), d::coo()),
        (Src::Sorted, d::scoo(), d::mcoo()),
        (Src::Morton, d::mcoo(), d::csr()),
        (Src::Unsorted, d::coo(), d::scoo().with_suffix("_d")),
    ]
}

/// Deterministic shuffle so the "unsorted COO" source actually exercises
/// the permutation machinery.
fn shuffled(mut m: CooMatrix, seed: u64) -> CooMatrix {
    let n = m.nnz();
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
    for i in (1..n).rev() {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let j = (state >> 33) as usize % (i + 1);
        m.row.swap(i, j);
        m.col.swap(i, j);
        m.val.swap(i, j);
    }
    m
}

struct Row {
    pair: String,
    nnz: usize,
    interp_ns: f64,
    kernel_ns: f64,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.interp_ns / self.kernel_ns
    }
}

fn main() {
    let args = parse_args();
    let base = random_uniform(args.n, args.n, args.nnz, 42);
    eprintln!(
        "bench4: {}x{} matrix, {} distinct nnz, reps={}",
        args.n,
        args.n,
        base.nnz(),
        args.reps
    );

    let mut rows: Vec<Row> = Vec::new();
    // The interpreter timings below run through the *instrumented* path
    // (`run_matrix_quiet` = `run_matrix_observed` + `NoopSubscriber`);
    // the totals pin its overhead against the uninstrumented
    // stats-collecting path across every pair.
    let mut quiet_total = 0.0f64;
    let mut unchecked_total = 0.0f64;
    for (kind, src, dst) in matrix_pairs() {
        let pair = format!("{} -> {}", src.name, dst.name);
        let conv = Conversion::new(&src, &dst, SynthesisOptions::default())
            .unwrap_or_else(|e| panic!("{pair}: synthesis failed: {e}"));
        assert!(conv.has_kernel(), "{pair}: no registered kernel");
        let input = match kind {
            Src::Unsorted => AnyMatrix::Coo(shuffled(base.clone(), 7)),
            Src::Sorted => AnyMatrix::Coo(base.clone()),
            Src::Morton => AnyMatrix::MortonCoo(MortonCooMatrix::from_coo(&base)),
            Src::Csr => AnyMatrix::Csr(CsrMatrix::from_coo(&base)),
            Src::Csc => AnyMatrix::Csc(CscMatrix::from_coo(&base)),
        };
        let nnz = input.nnz();

        // One untimed warmup so the first timed section doesn't absorb
        // allocator/page-fault startup and skew the overhead gate.
        conv.run_matrix_quiet(input.as_ref()).unwrap();
        let interp = time_min(args.reps, || {
            conv.run_matrix_quiet(input.as_ref()).unwrap();
        });
        let unchecked = time_min(args.reps, || {
            conv.run_matrix_unchecked(input.as_ref()).unwrap();
        });
        quiet_total += interp;
        unchecked_total += unchecked;
        let kernel = time_min(args.reps, || {
            conv.run_matrix_kernel(input.as_ref()).unwrap().unwrap();
        });
        let row = Row {
            pair,
            nnz,
            interp_ns: interp * 1e9 / nnz as f64,
            kernel_ns: kernel * 1e9 / nnz as f64,
        };
        eprintln!(
            "  {:<18} interp {:>8.2} ns/nnz   kernel {:>8.2} ns/nnz   {:>6.2}x",
            row.pair,
            row.interp_ns,
            row.kernel_ns,
            row.speedup()
        );
        rows.push(row);
    }

    // Tensor pairs: same matgen scale in three modes.
    let dim = (args.n / 8).max(8);
    let t = skewed_tensor((dim, dim, dim), args.nnz, 42);
    let mut sorted = t.clone();
    sorted.sort_by(|a, b| a.cmp(b));
    for (src, dst, input) in [
        (descriptors::coo3(), descriptors::mcoo3(), AnyTensor::Coo3(t)),
        (descriptors::scoo3(), descriptors::mcoo3(), AnyTensor::Coo3(sorted)),
    ] {
        let pair = format!("{} -> {}", src.name, dst.name);
        let conv = Conversion::new(&src, &dst, SynthesisOptions::default())
            .unwrap_or_else(|e| panic!("{pair}: synthesis failed: {e}"));
        assert!(conv.has_kernel(), "{pair}: no registered kernel");
        let nnz = input.nnz();
        conv.run_tensor_quiet(input.as_ref()).unwrap();
        let interp = time_min(args.reps, || {
            conv.run_tensor_quiet(input.as_ref()).unwrap();
        });
        let unchecked = time_min(args.reps, || {
            conv.run_tensor_unchecked(input.as_ref()).unwrap();
        });
        quiet_total += interp;
        unchecked_total += unchecked;
        let kernel = time_min(args.reps, || {
            conv.run_tensor_kernel(input.as_ref()).unwrap().unwrap();
        });
        let row = Row {
            pair,
            nnz,
            interp_ns: interp * 1e9 / nnz as f64,
            kernel_ns: kernel * 1e9 / nnz as f64,
        };
        eprintln!(
            "  {:<18} interp {:>8.2} ns/nnz   kernel {:>8.2} ns/nnz   {:>6.2}x",
            row.pair,
            row.interp_ns,
            row.kernel_ns,
            row.speedup()
        );
        rows.push(row);
    }

    let at_least_3x = rows.iter().filter(|r| r.speedup() >= 3.0).count();
    eprintln!("bench4: {}/{} pairs at >= 3x", at_least_3x, rows.len());

    // Observability gate: summed across every pair, the instrumented
    // interpreter (default `NoopSubscriber`) must sit within 5% of the
    // uninstrumented stats-collecting path.
    let obs_overhead = quiet_total / unchecked_total - 1.0;
    eprintln!(
        "bench4: instrumented interp {:.3}s vs unchecked {:.3}s, overhead {:+.2}%",
        quiet_total,
        unchecked_total,
        obs_overhead * 100.0
    );
    assert!(
        obs_overhead < 0.05,
        "NoopSubscriber instrumentation must cost <5% of interpreter time (got {:+.2}%)",
        obs_overhead * 100.0
    );

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"experiment\": \"native kernel backend vs SPF-IR interpreter\",");
    let _ = writeln!(json, "  \"matrix\": {{\"nr\": {}, \"nc\": {}, \"requested_nnz\": {}}},", args.n, args.n, args.nnz);
    let _ = writeln!(json, "  \"reps\": {},", args.reps);
    let _ = writeln!(json, "  \"pairs_at_least_3x\": {at_least_3x},");
    let _ = writeln!(json, "  \"pairs\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"pair\": \"{}\", \"nnz\": {}, \"interp_ns_per_nnz\": {:.3}, \"kernel_ns_per_nnz\": {:.3}, \"speedup\": {:.3}}}{}",
            r.pair, r.nnz, r.interp_ns, r.kernel_ns, r.speedup(), comma
        );
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");
    std::fs::write(&args.out, json).expect("writing the output file");
    eprintln!("bench4: wrote {}", args.out);
}
