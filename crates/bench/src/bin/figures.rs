//! Regenerates every table and figure of the paper's evaluation and
//! prints them with geomean summaries compared against the paper's
//! reported factors.
//!
//! Usage:
//!
//! ```text
//! figures [--scale N] [--reps K] [--only fig2a|fig2b|fig2c|fig2d|fig3|table3|table4|table5]
//! ```
//!
//! `--scale` divides the Table-3/Table-4 problem sizes (default 64: a
//! laptop-friendly run); `--reps` is the repetition count per timing
//! (default 3; minima are reported).

use sparse_bench::{
    geomean, geomean_speedup, run_fig2, run_table4, table5, Fig2Kind, Fig2Row,
};
use sparse_formats::descriptors;
use sparse_matgen::suite::{table3_suite, table4_suite};
use sparse_synthesis::{Conversion, SynthesisOptions};

struct Args {
    scale: usize,
    reps: usize,
    only: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args { scale: 64, reps: 3, only: None };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                args.scale = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--scale takes a positive integer");
            }
            "--reps" => {
                args.reps = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--reps takes a positive integer");
            }
            "--only" => {
                args.only = Some(it.next().expect("--only takes an experiment id"));
            }
            "--help" | "-h" => {
                println!(
                    "figures [--scale N] [--reps K] [--only fig2a|fig2b|fig2c|fig2d|fig3|table3|table4|table5|code]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument `{other}` (try --help)");
                std::process::exit(2);
            }
        }
    }
    args
}

fn want(args: &Args, id: &str) -> bool {
    args.only.as_deref().is_none_or(|o| o == id)
}

fn print_fig2(label: &str, rows: &[Fig2Row], paper_note: &str) {
    println!("\n=== {label} ===");
    println!(
        "{:<18}{:>10}{:>12}{:>12}{:>12}{:>12}",
        "matrix", "nnz", "ours(ms)", "TACO(ms)", "SPARSKIT", "MKL"
    );
    for r in rows {
        println!(
            "{:<18}{:>10}{:>12.3}{:>12.3}{:>12.3}{:>12.3}",
            r.matrix,
            r.nnz,
            r.ours * 1e3,
            r.baselines[0] * 1e3,
            r.baselines[1] * 1e3,
            r.baselines[2] * 1e3
        );
    }
    println!(
        "geomean speedup vs TACO: {:.2}x | vs SPARSKIT: {:.2}x | vs MKL: {:.2}x",
        geomean_speedup(rows, 0),
        geomean_speedup(rows, 1),
        geomean_speedup(rows, 2)
    );
    println!("paper: {paper_note}");
}

fn main() {
    let args = parse_args();
    println!(
        "sparse-synth evaluation harness (scale {}, reps {})",
        args.scale, args.reps
    );

    if want(&args, "table3") {
        println!("\n=== Table 3: synthetic matrix suite (at scale {}) ===", args.scale);
        println!("{:<18}{:>12}{:>12}{:>8}", "matrix", "rows", "nnz", "#diag");
        for spec in table3_suite() {
            let m = spec.generate(args.scale);
            let nd = if spec.dia_friendly() {
                m.diagonals().len().to_string()
            } else {
                "-".to_string()
            };
            println!("{:<18}{:>12}{:>12}{:>8}", spec.name, m.nr, m.nnz(), nd);
        }
    }

    if want(&args, "fig2a") {
        let rows = run_fig2(Fig2Kind::CooToCsc, args.scale, args.reps);
        print_fig2(
            Fig2Kind::CooToCsc.label(),
            &rows,
            "1.3x geomean speedup for COO->CSC",
        );
    }
    if want(&args, "fig2b") {
        let rows = run_fig2(Fig2Kind::CsrToCsc, args.scale, args.reps);
        print_fig2(
            Fig2Kind::CsrToCsc.label(),
            &rows,
            "1.5x geomean speedup for CSR->CSC",
        );
    }
    if want(&args, "fig2c") {
        let rows = run_fig2(Fig2Kind::CooToCsr, args.scale, args.reps);
        print_fig2(
            Fig2Kind::CooToCsr.label(),
            &rows,
            "2.85x geomean speedup for COO->CSR (no permutation generated)",
        );
    }
    if want(&args, "fig2d") {
        let rows = run_fig2(Fig2Kind::CooToDiaLinear, args.scale, args.reps);
        print_fig2(
            Fig2Kind::CooToDiaLinear.label(),
            &rows,
            "~5x slower than TACO; degrades with diagonal count (worst: majorbasis, best: ecology1)",
        );
        // The paper's crossover observation.
        if let (Some(best), Some(worst)) = (
            rows.iter().find(|r| r.matrix == "ecology1"),
            rows.iter().find(|r| r.matrix == "majorbasis"),
        ) {
            println!(
                "per-nonzero cost: ecology1 (5 diag) {:.1} ns vs majorbasis (22 diag) {:.1} ns",
                best.ours * 1e9 / best.nnz as f64,
                worst.ours * 1e9 / worst.nnz as f64
            );
        }
    }
    if want(&args, "fig3") {
        let rows = run_fig2(Fig2Kind::CooToDiaBinary, args.scale, args.reps);
        print_fig2(
            Fig2Kind::CooToDiaBinary.label(),
            &rows,
            "binary search: 3.1x/3.54x faster than SPARSKIT/MKL, 1.4x slower than TACO",
        );
    }

    if want(&args, "table4") {
        println!("\n=== Table 4: COO3D -> MCOO3 vs hand-written HiCOO z-Morton ===");
        let rows = run_table4(args.scale * 16, args.reps);
        println!(
            "{:<10}{:>12}{:>14}{:>14}{:>10}",
            "tensor", "nnz", "HiCOO(ms)", "ours(ms)", "ratio"
        );
        for r in &rows {
            println!(
                "{:<10}{:>12}{:>14.3}{:>14.3}{:>10.2}",
                r.tensor,
                r.nnz,
                r.hicoo * 1e3,
                r.ours * 1e3,
                r.ours / r.hicoo
            );
        }
        let slowdown = geomean(rows.iter().map(|r| r.ours / r.hicoo));
        println!("geomean slowdown vs HiCOO: {slowdown:.2}x (paper: 1.64x)");
        let _ = table4_suite();
    }

    if want(&args, "code") && args.only.is_some() {
        // Dump every evaluated conversion's synthesized C (paper-artifact
        // parity: the generated inspectors themselves).
        let pairs: Vec<(&str, Conversion)> = vec![
            (
                "scoo_to_csr",
                Conversion::new(
                    &descriptors::scoo(),
                    &descriptors::csr(),
                    SynthesisOptions::default(),
                )
                .unwrap(),
            ),
            (
                "scoo_to_csc",
                Conversion::new(
                    &descriptors::scoo(),
                    &descriptors::csc(),
                    SynthesisOptions::default(),
                )
                .unwrap(),
            ),
            (
                "csr_to_csc",
                Conversion::new(
                    &descriptors::csr(),
                    &descriptors::csc(),
                    SynthesisOptions::default(),
                )
                .unwrap(),
            ),
            (
                "scoo_to_dia_linear",
                Conversion::new(
                    &descriptors::scoo(),
                    &descriptors::dia(),
                    SynthesisOptions { optimize: true, binary_search: false },
                )
                .unwrap(),
            ),
            (
                "scoo_to_dia_binary",
                Conversion::new(
                    &descriptors::scoo(),
                    &descriptors::dia(),
                    SynthesisOptions { optimize: true, binary_search: true },
                )
                .unwrap(),
            ),
            (
                "scoo_to_mcoo",
                Conversion::new(
                    &descriptors::scoo(),
                    &descriptors::mcoo(),
                    SynthesisOptions::default(),
                )
                .unwrap(),
            ),
            (
                "scoo3_to_mcoo3",
                Conversion::new(
                    &descriptors::scoo3(),
                    &descriptors::mcoo3(),
                    SynthesisOptions::default(),
                )
                .unwrap(),
            ),
        ];
        for (name, conv) in pairs {
            println!("/* ================= {name} ================= */");
            println!("{}", conv.emit_c());
        }
    }

    if want(&args, "table5") {
        println!();
        println!("{}", table5());
    }
}
