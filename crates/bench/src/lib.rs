//! # sparse-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! paper's evaluation:
//!
//! * Figure 2a — COO→CSC vs TACO / SPARSKIT / MKL models
//! * Figure 2b — CSR→CSC
//! * Figure 2c — COO→CSR (the 2.85× headline)
//! * Figure 2d — COO→DIA with the synthesized linear search
//! * Figure 3  — COO→DIA with the binary-search optimization
//! * Table 4   — COO3D→MCOO3 vs the hand-written HiCOO z-Morton sort
//! * Table 5   — the qualitative feature matrix
//!
//! All Figure-2 comparators run on the same interpreter VM as the
//! synthesized inspectors (see `sparse-baselines`); the Table-4
//! comparator is native hand-optimized Rust, matching the paper's
//! hand-written/highly-optimized framing. Timings are wall-clock minima
//! over `reps` repetitions of the conversion work only (source binding is
//! outside the timer).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::time::Instant;

use sparse_baselines::{fig2, hicoo_morton_sort3, Library};
use sparse_formats::{descriptors, Coo3Tensor, CooMatrix, CsrMatrix};
use sparse_matgen::suite::{table3_suite, table4_suite, MatrixSpec};
use sparse_synthesis::{run as synth_run, Conversion, SynthesisOptions};
use spf_codegen::runtime::RtEnv;

/// One matrix row of a Figure-2 style experiment (times in seconds).
#[derive(Debug, Clone)]
pub struct Fig2Row {
    /// Matrix name (synthetic twin of the Table-3 entry).
    pub matrix: String,
    /// Nonzeros of the generated instance.
    pub nnz: usize,
    /// Synthesized-code time.
    pub ours: f64,
    /// Per-library baseline times, ordered as [`Library::ALL`].
    pub baselines: [f64; 3],
}

/// One tensor row of the Table-4 experiment.
#[derive(Debug, Clone)]
pub struct Table4Row {
    /// Tensor name (synthetic twin of the FROSTT entry).
    pub tensor: String,
    /// Nonzeros of the generated instance.
    pub nnz: usize,
    /// Hand-written HiCOO-style Morton sort time.
    pub hicoo: f64,
    /// Synthesized conversion time.
    pub ours: f64,
}

/// Times `f` as the minimum over `reps` runs.
pub fn time_min(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

/// Geometric mean of `xs` (empty input gives NaN).
pub fn geomean(xs: impl IntoIterator<Item = f64>) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for x in xs {
        log_sum += x.ln();
        n += 1;
    }
    if n == 0 {
        f64::NAN
    } else {
        (log_sum / n as f64).exp()
    }
}

/// Geomean speedup of `ours` against one baseline column
/// (`> 1` means the synthesized code is faster).
pub fn geomean_speedup(rows: &[Fig2Row], lib_idx: usize) -> f64 {
    geomean(rows.iter().map(|r| r.baselines[lib_idx] / r.ours))
}

/// Which conversion a Figure-2 experiment runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fig2Kind {
    /// Figure 2a.
    CooToCsc,
    /// Figure 2b.
    CsrToCsc,
    /// Figure 2c.
    CooToCsr,
    /// Figure 2d (synthesized linear search).
    CooToDiaLinear,
    /// Figure 3 (synthesized binary search).
    CooToDiaBinary,
}

impl Fig2Kind {
    /// Display label matching the paper.
    pub fn label(self) -> &'static str {
        match self {
            Fig2Kind::CooToCsc => "Fig 2a: COO -> CSC",
            Fig2Kind::CsrToCsc => "Fig 2b: CSR -> CSC",
            Fig2Kind::CooToCsr => "Fig 2c: COO -> CSR",
            Fig2Kind::CooToDiaLinear => "Fig 2d: COO -> DIA (linear search)",
            Fig2Kind::CooToDiaBinary => "Fig 3: COO -> DIA (binary search)",
        }
    }

    /// Restrict to matrices where the destination is feasible.
    fn applicable(self, spec: &MatrixSpec) -> bool {
        match self {
            Fig2Kind::CooToDiaLinear | Fig2Kind::CooToDiaBinary => spec.dia_friendly(),
            _ => true,
        }
    }
}

/// Builds the synthesized conversion for an experiment kind.
pub fn build_conversion(kind: Fig2Kind) -> Conversion {
    let opts = SynthesisOptions {
        optimize: true,
        binary_search: kind == Fig2Kind::CooToDiaBinary,
    };
    match kind {
        Fig2Kind::CooToCsc => {
            Conversion::new(&descriptors::scoo(), &descriptors::csc(), opts)
        }
        Fig2Kind::CsrToCsc => {
            Conversion::new(&descriptors::csr(), &descriptors::csc(), opts)
        }
        Fig2Kind::CooToCsr => {
            Conversion::new(&descriptors::scoo(), &descriptors::csr(), opts)
        }
        Fig2Kind::CooToDiaLinear | Fig2Kind::CooToDiaBinary => {
            Conversion::new(&descriptors::scoo(), &descriptors::dia(), opts)
        }
    }
    .expect("static descriptors synthesize")
}

fn baseline_routines(kind: Fig2Kind) -> Vec<sparse_baselines::VmRoutine> {
    Library::ALL
        .iter()
        .map(|&lib| match kind {
            Fig2Kind::CooToCsc => fig2::coo_to_csc(lib),
            Fig2Kind::CsrToCsc => fig2::csr_to_csc(lib),
            Fig2Kind::CooToCsr => fig2::coo_to_csr(lib),
            Fig2Kind::CooToDiaLinear | Fig2Kind::CooToDiaBinary => fig2::coo_to_dia(lib),
        })
        .collect()
}

/// Runs one Figure-2 experiment over the (scaled) Table-3 suite.
pub fn run_fig2(kind: Fig2Kind, scale: usize, reps: usize) -> Vec<Fig2Row> {
    let conv = build_conversion(kind);
    let routines = baseline_routines(kind);
    let mut rows = Vec::new();
    for spec in table3_suite() {
        if !kind.applicable(&spec) {
            continue;
        }
        let coo = spec.generate(scale);
        let csr = matches!(kind, Fig2Kind::CsrToCsc).then(|| CsrMatrix::from_coo(&coo));

        // Synthesized side: bind once, time execution only.
        let mut env = RtEnv::new();
        match (&csr, kind) {
            (Some(c), Fig2Kind::CsrToCsc) => {
                synth_run::bind_csr(&mut env, &conv.synth.src, c).unwrap()
            }
            _ => synth_run::bind_coo(&mut env, &conv.synth.src, &coo).unwrap(),
        }
        let ours = time_min(reps, || {
            conv.execute_env(&mut env).expect("synthesized conversion runs");
        });

        // Baseline side.
        let mut baselines = [0.0f64; 3];
        for (k, routine) in routines.iter().enumerate() {
            let mut env = match (&csr, kind) {
                (Some(c), Fig2Kind::CsrToCsc) => RtEnv::new()
                    .with_sym("NR", c.nr as i64)
                    .with_sym("NC", c.nc as i64)
                    .with_sym("NNZ", c.nnz() as i64)
                    .with_uf("rowptr", c.rowptr.clone())
                    .with_uf("col2", c.col.clone())
                    .with_data("Acsr", c.val.clone()),
                _ => RtEnv::new()
                    .with_sym("NR", coo.nr as i64)
                    .with_sym("NC", coo.nc as i64)
                    .with_sym("NNZ", coo.nnz() as i64)
                    .with_uf("row", coo.row.clone())
                    .with_uf("col", coo.col.clone())
                    .with_data("Acoo", coo.val.clone()),
            };
            baselines[k] = time_min(reps, || {
                routine.execute(&mut env).expect("baseline runs");
            });
        }
        rows.push(Fig2Row {
            matrix: spec.name.to_string(),
            nnz: coo.nnz(),
            ours,
            baselines,
        });
    }
    rows
}

/// Runs the Table-4 experiment over the (scaled) FROSTT twins.
pub fn run_table4(scale: usize, reps: usize) -> Vec<Table4Row> {
    let conv = Conversion::new(
        &descriptors::scoo3(),
        &descriptors::mcoo3(),
        SynthesisOptions::default(),
    )
    .expect("tensor reorder synthesizes");
    let mut rows = Vec::new();
    for spec in table4_suite() {
        let t = spec.generate(scale);
        let hicoo = time_min(reps, || {
            let out = hicoo_morton_sort3(&t, 7);
            std::hint::black_box(out.nnz());
        });
        let mut env = RtEnv::new();
        synth_run::bind_coo3(&mut env, &conv.synth.src, &t).unwrap();
        let ours = time_min(reps, || {
            conv.execute_env(&mut env).expect("synthesized reorder runs");
        });
        rows.push(Table4Row {
            tensor: spec.name.to_string(),
            nnz: t.nnz(),
            hicoo,
            ours,
        });
    }
    rows
}

/// Renders Table 5 of the paper — which descriptor features each tool
/// supports — with this implementation's row derived from the descriptor
/// API itself.
pub fn table5() -> String {
    let mut s = String::new();
    s.push_str("Table 5: format description support\n");
    s.push_str(&format!(
        "{:<22}{:>10}{:>10}{:>24}\n",
        "Tool", "Mapping", "Re-order", "Universal Quantifiers"
    ));
    for (tool, m, r, u) in [
        ("TACO", true, false, false),
        ("Nandy et al.", false, true, true),
        ("Venkat et al.", false, true, true),
    ] {
        s.push_str(&format!(
            "{:<22}{:>10}{:>10}{:>24}\n",
            tool,
            if m { "yes" } else { "no" },
            if r { "yes" } else { "no" },
            if u { "yes" } else { "no" }
        ));
    }
    // This work: verify each capability against the live descriptor API.
    let mapping = !descriptors::csr().sparse_to_dense.conjunctions().is_empty();
    let reorder = descriptors::mcoo().order.is_some();
    let quantifiers = !descriptors::csr().quantifier_texts().is_empty();
    s.push_str(&format!(
        "{:<22}{:>10}{:>10}{:>24}\n",
        "This work",
        if mapping { "yes" } else { "no" },
        if reorder { "yes" } else { "no" },
        if quantifiers { "yes" } else { "no" }
    ));
    s
}

/// A small sorted COO fixture for bench smoke tests.
pub fn small_fixture() -> CooMatrix {
    let spec = &table3_suite()[1]; // jnlbrng1 (stencil5)
    spec.generate(512)
}

/// A small sorted COO3 fixture.
pub fn small_tensor_fixture() -> Coo3Tensor {
    table4_suite()[0].generate(8192)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean([2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!(geomean(std::iter::empty::<f64>()).is_nan());
    }

    #[test]
    fn fig2c_runs_and_ours_wins_on_sorted_coo() {
        let rows = run_fig2(Fig2Kind::CooToCsr, 512, 2);
        assert_eq!(rows.len(), 21);
        // Shape check, not absolute numbers: the synthesized single-pass
        // code beats the sorting TACO model on geomean.
        let vs_taco = geomean_speedup(&rows, 0);
        assert!(vs_taco > 1.0, "expected a win over TACO, got {vs_taco:.2}x");
    }

    #[test]
    fn fig2d_restricts_to_dia_friendly() {
        let rows = run_fig2(Fig2Kind::CooToDiaLinear, 1024, 1);
        assert!(rows.len() < 21 && !rows.is_empty());
        assert!(rows.iter().any(|r| r.matrix == "ecology1"));
        assert!(rows.iter().all(|r| r.matrix != "webbase1M"));
    }

    #[test]
    fn fig3_binary_beats_linear() {
        let lin = run_fig2(Fig2Kind::CooToDiaLinear, 512, 2);
        let bin = run_fig2(Fig2Kind::CooToDiaBinary, 512, 2);
        let lin_g = geomean(lin.iter().map(|r| r.ours));
        let bin_g = geomean(bin.iter().map(|r| r.ours));
        assert!(bin_g < lin_g, "binary {bin_g} vs linear {lin_g}");
    }

    #[test]
    fn table4_runs() {
        let rows = run_table4(16384, 1);
        assert_eq!(rows.len(), 3);
        assert!(rows.iter().all(|r| r.ours > 0.0 && r.hicoo > 0.0));
    }

    #[test]
    fn table5_matches_paper_capabilities() {
        let t = table5();
        assert!(t.contains("This work"));
        let ours_line = t.lines().find(|l| l.starts_with("This work")).unwrap();
        assert_eq!(ours_line.matches("yes").count(), 3);
        let taco_line = t.lines().find(|l| l.starts_with("TACO")).unwrap();
        assert_eq!(taco_line.matches("yes").count(), 1);
    }
}
