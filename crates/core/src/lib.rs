//! # sparse-synthesis
//!
//! The primary contribution of *"Code Synthesis for Sparse Tensor Format
//! Conversion and Optimization"* (CGO 2023): automatic synthesis of
//! *inspector* code that converts a sparse tensor from one format to
//! another, driven entirely by format descriptors in the sparse
//! polyhedral framework.
//!
//! The pipeline:
//!
//! 1. [`analysis`] classifies the destination descriptor's constraints
//!    into the paper's Cases 1–5 (reproducing Table 2),
//! 2. [`synthesize()`](synthesize::synthesize) builds the naive SPF loop
//!    chain — permutation
//!    insertion, unknown-UF population, universal-quantifier enforcement,
//!    copy — then optimizes it (redundancy removal, identity-permutation
//!    elimination + dead-code elimination, loop fusion, optional binary
//!    search per Figure 3),
//! 3. [`run`] executes the compiled inspector on real containers.
//!
//! ```
//! use sparse_formats::{descriptors, CooMatrix, CsrMatrix};
//! use sparse_synthesis::{Conversion, SynthesisOptions};
//!
//! // The paper's headline experiment: sorted COO -> CSR.
//! let conv = Conversion::new(
//!     &descriptors::scoo(),
//!     &descriptors::csr(),
//!     SynthesisOptions::default(),
//! ).unwrap();
//!
//! // The permutation was proved identity and eliminated (the 2.85x story).
//! assert!(conv.synth.identity_eliminated);
//!
//! let coo = CooMatrix::from_triplets(
//!     3, 3, vec![0, 0, 2], vec![0, 2, 1], vec![1.0, 2.0, 3.0]).unwrap();
//! let (csr, _stats) = conv.run_coo_to_csr(&coo).unwrap();
//! assert_eq!(csr, CsrMatrix::from_coo(&coo));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod analysis;
pub mod executor;
pub mod kernels;
pub mod run;
pub mod synthesize;

pub use analysis::{analyze_destination, AnalysisError, DstAnalysis, DstVarKind};
pub use executor::{spmv, ttv_mode2};
pub use kernels::{KernelRegistry, MatrixKernelFn, TensorKernelFn};
pub use run::{
    bind_matrix, bind_tensor, extract_matrix, extract_tensor, Conversion, RunError,
};
pub use synthesize::{
    synthesize, PermutationKind, SynthesisError, SynthesisOptions,
    SynthesizedConversion, LIST_PREFIX, PERM_NAME,
};
