//! Destination-format analysis: classifying the constraints of the
//! composed relation per §3.2 of the paper.
//!
//! Given the destination descriptor's sparse-to-dense map, every
//! constraint mentioning an unknown (destination) UF is grouped under
//! that UF — reproducing Table 2 of the paper — and classified into the
//! paper's five cases:
//!
//! * **Case 1** — `uf(dense...) = f(dense...)`: a direct assignment over
//!   known coordinates.
//! * **Cases 2/3** — `uf(e) <= pos` / `pos < uf(e + 1)`: pointer bounds
//!   (CSR's `rowptr`), lowered to min/max updates.
//! * **Case 4** — `uf(pos) = f(dense...)`: a write at the nonzero's
//!   destination position (CSR's `col2`, MCOO's `row_m`/`col_m`), where
//!   the position comes from the permutation `P`.
//! * **Case 5** — `uf(v) = f(dense...)` with `v` otherwise unconstrained
//!   (DIA's `off(d) = j - i`): the values are collected into a unique
//!   ordered list, and `v` is later *recovered by search* in the copy
//!   loop.
//!
//! Destination tuple variables are classified alongside: aliases of dense
//! coordinates (`ii = i`), the storage *position* variable (the one the
//! data access relation exposes), and *find* variables bound through
//! Case 5 membership.

use std::collections::BTreeMap;
use std::fmt;

use sparse_formats::FormatDescriptor;
use spf_ir::constraint::Constraint;
use spf_ir::expr::{Atom, LinExpr, VarId};

/// Classification of one destination sparse-tuple variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DstVarKind {
    /// Equal to dense dimension `d` (e.g. CSR's `ii = i`).
    DenseAlias(usize),
    /// The storage-position variable: the data access relation's index
    /// (CSR's `k`, COO's `n2`). Its value is the nonzero's rank in the
    /// destination order.
    Position,
    /// Bound only through a Case-5 membership equation on the named UF
    /// (DIA's `d` via `off(d) = j - i`); recovered by search.
    Find {
        /// The searched UF.
        uf: String,
    },
}

/// A Case 1/4 equality: write `value` at `uf[arg]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteRule {
    /// Destination index array.
    pub uf: String,
    /// Index expression over destination tuple variables.
    pub arg: LinExpr,
    /// Stored value over destination tuple variables (aliases of dense
    /// coordinates).
    pub value: LinExpr,
    /// `true` when `arg` mentions the position variable (Case 4);
    /// `false` for pure dense-coordinate writes (Case 1).
    pub uses_position: bool,
}

/// A Case 2/3 inequality on a pointer-style UF.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoundRule {
    /// Destination index array (e.g. `rowptr`).
    pub uf: String,
    /// Index expression over destination tuple variables.
    pub arg: LinExpr,
    /// Bound value over destination tuple variables (mentions the
    /// position variable).
    pub value: LinExpr,
    /// `true` for Case 2 (`uf(arg) <= value`, lowered to a min update);
    /// `false` for Case 3 (`uf(arg) >= value`, lowered to a max update).
    pub is_min: bool,
}

/// A Case 5 membership equation `uf(var) = value`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MembershipRule {
    /// The UF whose value set is collected (e.g. `off`).
    pub uf: String,
    /// The find variable (destination tuple index).
    pub var: usize,
    /// Inserted value over destination tuple variables (aliases).
    pub value: LinExpr,
}

/// The full analysis of a destination format.
#[derive(Debug, Clone)]
pub struct DstAnalysis {
    /// Per destination sparse-tuple variable.
    pub var_kinds: Vec<DstVarKind>,
    /// The data index as an expression over destination tuple variables.
    pub data_index: LinExpr,
    /// Case 1/4 writes.
    pub writes: Vec<WriteRule>,
    /// Case 2/3 bounds.
    pub bounds: Vec<BoundRule>,
    /// Case 5 memberships.
    pub memberships: Vec<MembershipRule>,
    /// Table 2: for each unknown UF, the constraints that mention it
    /// (rendered in the descriptor's variable names).
    pub constraint_table: BTreeMap<String, Vec<String>>,
}

/// Errors raised during destination analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnalysisError {
    /// The data access relation does not define its output index.
    NoDataIndex,
    /// A constraint shape falls outside Cases 1–5.
    UnsupportedConstraint(String),
    /// A destination tuple variable could not be classified.
    UnclassifiedVar(String),
    /// The descriptor has more than one conjunction (unions are not
    /// supported as destinations).
    UnionDestination,
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::NoDataIndex => {
                write!(f, "data access relation does not define its output index")
            }
            AnalysisError::UnsupportedConstraint(c) => {
                write!(f, "constraint outside Cases 1-5: {c}")
            }
            AnalysisError::UnclassifiedVar(v) => {
                write!(f, "destination tuple variable `{v}` could not be classified")
            }
            AnalysisError::UnionDestination => {
                write!(f, "destination formats with unions are not supported")
            }
        }
    }
}

impl std::error::Error for AnalysisError {}

/// Splits `expr = 0` into `(uf_call, sign, rest)` when the expression has
/// exactly one top-level term that is a call to a UF declared by `desc`:
/// `sign * uf(args) + rest = expr`.
fn single_uf_term(
    e: &LinExpr,
    desc: &FormatDescriptor,
) -> Option<(spf_ir::UfCall, i64, LinExpr)> {
    let mut found: Option<(spf_ir::UfCall, i64)> = None;
    let mut rest = LinExpr::constant(e.constant);
    for (c, a) in &e.terms {
        match a {
            Atom::Uf(u) if desc.ufs.contains(&u.name) => {
                if found.is_some() || c.abs() != 1 {
                    return None; // two UF terms or non-unit coefficient
                }
                found = Some((u.clone(), *c));
            }
            other => {
                rest.terms.push((*c, other.clone()));
            }
        }
    }
    rest.canonicalize();
    found.map(|(u, s)| (u, s, rest))
}

/// Returns `true` when `e` only mentions variables for which
/// `allowed(var)` holds.
fn vars_all(e: &LinExpr, allowed: impl Fn(usize) -> bool) -> bool {
    let mut vars = Vec::new();
    e.collect_vars(&mut vars);
    vars.iter().all(|v| allowed(v.index()))
}

/// Analyzes a destination descriptor.
///
/// # Errors
/// Returns an [`AnalysisError`] when the descriptor's constraints fall
/// outside the supported fragment.
pub fn analyze_destination(desc: &FormatDescriptor) -> Result<DstAnalysis, AnalysisError> {
    let rel = &desc.sparse_to_dense;
    if rel.conjunctions().len() != 1 {
        return Err(AnalysisError::UnionDestination);
    }
    let s = rel.in_arity() as usize; // destination sparse tuple arity
    let rank = rel.out_arity() as usize;
    let conj = &rel.conjunctions()[0];
    let names = rel.names_for(0);

    // The data index over destination tuple variables.
    let da = &desc.data_access;
    let da_conj = da
        .conjunctions()
        .first()
        .ok_or(AnalysisError::NoDataIndex)?;
    let data_index = da_conj
        .defining_equality(VarId(da.in_arity()))
        .ok_or(AnalysisError::NoDataIndex)?;

    // Pass 1: dense aliases (`ii = i`).
    let mut var_kinds: Vec<Option<DstVarKind>> = vec![None; s];
    for c in &conj.constraints {
        let Constraint::Eq(e) = c else { continue };
        // Exactly two unit terms, one dst var, one dense var.
        if e.constant != 0 || e.terms.len() != 2 {
            continue;
        }
        let (c0, a0) = &e.terms[0];
        let (c1, a1) = &e.terms[1];
        if c0.abs() != 1 || c1.abs() != 1 || c0 + c1 != 0 {
            continue;
        }
        if let (Atom::Var(x), Atom::Var(y)) = (a0, a1) {
            let (dst, dense) = if (x.index()) < s && y.index() >= s {
                (x.index(), y.index() - s)
            } else if y.index() < s && x.index() >= s {
                (y.index(), x.index() - s)
            } else {
                continue;
            };
            if dense < rank {
                var_kinds[dst] = Some(DstVarKind::DenseAlias(dense));
            }
        }
    }

    // The position variable: the data index when it is a single variable,
    // otherwise every non-alias variable of the data index is either a
    // find variable (classified below) or an alias.
    if let Some(v) = data_index.as_single_var() {
        if v.index() < s && var_kinds[v.index()].is_none() {
            var_kinds[v.index()] = Some(DstVarKind::Position);
        }
    }

    // "Known" variables are dense coordinates and their aliases; the
    // position variable is known only to bound values (Cases 2/3).
    fn known(idx: usize, s: usize, rank: usize, kinds: &[Option<DstVarKind>]) -> bool {
        (idx >= s && idx < s + rank)
            || matches!(kinds.get(idx), Some(Some(DstVarKind::DenseAlias(_))))
    }
    fn pos(idx: usize, kinds: &[Option<DstVarKind>]) -> bool {
        matches!(kinds.get(idx), Some(Some(DstVarKind::Position)))
    }

    // Pass 2: classify UF constraints.
    let mut writes = Vec::new();
    let mut bounds = Vec::new();
    let mut memberships = Vec::new();
    let mut constraint_table: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for c in &conj.constraints {
        // Record Table-2 rows for every constraint mentioning a dst UF.
        for uf in desc.ufs.iter() {
            if c.mentions_uf(&uf.name) {
                constraint_table
                    .entry(uf.name.clone())
                    .or_default()
                    .push(c.display_with(&names).to_string());
            }
        }
        let Some((uf_call, sign, rest)) = single_uf_term(c.expr(), desc) else {
            // No destination UF at top level: bounds over dense/alias
            // variables (0 <= i < NR, ...) need no code; anything else
            // involving a dst UF nested deeper is unsupported.
            let mentions = desc.ufs.iter().any(|u| c.mentions_uf(&u.name));
            if mentions {
                return Err(AnalysisError::UnsupportedConstraint(
                    c.display_with(&names).to_string(),
                ));
            }
            continue;
        };
        // Normalize: sign * uf(args) + rest (=|>=) 0.
        match c {
            Constraint::Eq(_) => {
                // uf(args) = -sign * rest
                let value = rest.scaled(-sign);
                if !vars_all(&value, |idx| known(idx, s, rank, &var_kinds)) {
                    return Err(AnalysisError::UnsupportedConstraint(
                        c.display_with(&names).to_string(),
                    ));
                }
                // Classify the argument.
                let mut arg_vars = Vec::new();
                for a in &uf_call.args {
                    a.collect_vars(&mut arg_vars);
                }
                let unknown_arg_vars: Vec<usize> = arg_vars
                    .iter()
                    .map(|v| v.index())
                    .filter(|&idx| !known(idx, s, rank, &var_kinds))
                    .collect();
                if unknown_arg_vars.is_empty() {
                    // Case 1: pure dense-coordinate write.
                    writes.push(WriteRule {
                        uf: uf_call.name.clone(),
                        arg: uf_call.args[0].clone(),
                        value,
                        uses_position: false,
                    });
                } else if unknown_arg_vars.iter().all(|&idx| pos(idx, &var_kinds)) {
                    // Case 4: write at the storage position.
                    writes.push(WriteRule {
                        uf: uf_call.name.clone(),
                        arg: uf_call.args[0].clone(),
                        value,
                        uses_position: true,
                    });
                } else if unknown_arg_vars.len() == 1
                    && uf_call.args.len() == 1
                    && uf_call.args[0].as_single_var().is_some()
                {
                    // Case 5: membership equation; the variable is bound
                    // by search.
                    let var = unknown_arg_vars[0];
                    var_kinds[var] =
                        Some(DstVarKind::Find { uf: uf_call.name.clone() });
                    memberships.push(MembershipRule {
                        uf: uf_call.name.clone(),
                        var,
                        value,
                    });
                } else {
                    return Err(AnalysisError::UnsupportedConstraint(
                        c.display_with(&names).to_string(),
                    ));
                }
            }
            Constraint::Geq(_) => {
                // sign * uf(args) + rest >= 0.
                // sign = -1:  uf(args) <= rest       => min update (Case 2)
                // sign = +1:  uf(args) >= -rest      => max update (Case 3)
                let (is_min, value) = if sign < 0 {
                    (true, rest.clone())
                } else {
                    (false, rest.scaled(-1))
                };
                if !vars_all(&value, |idx| {
                    known(idx, s, rank, &var_kinds) || pos(idx, &var_kinds)
                }) || !uf_call
                    .args
                    .iter()
                    .all(|a| vars_all(a, |idx| known(idx, s, rank, &var_kinds)))
                {
                    return Err(AnalysisError::UnsupportedConstraint(
                        c.display_with(&names).to_string(),
                    ));
                }
                bounds.push(BoundRule {
                    uf: uf_call.name.clone(),
                    arg: uf_call.args[0].clone(),
                    value,
                    is_min,
                });
            }
        }
    }

    // Every destination variable must be classified by now.
    let var_kinds: Vec<DstVarKind> = var_kinds
        .into_iter()
        .enumerate()
        .map(|(idx, k)| {
            k.ok_or_else(|| AnalysisError::UnclassifiedVar(names[idx].clone()))
        })
        .collect::<Result<_, _>>()?;

    Ok(DstAnalysis {
        var_kinds,
        data_index,
        writes,
        bounds,
        memberships,
        constraint_table,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse_formats::descriptors;

    #[test]
    fn csr_analysis_matches_paper_cases() {
        let a = analyze_destination(&descriptors::csr()).unwrap();
        // [ii, k, jj]: ii aliases i, k is the position, jj aliases j.
        assert_eq!(a.var_kinds[0], DstVarKind::DenseAlias(0));
        assert_eq!(a.var_kinds[1], DstVarKind::Position);
        assert_eq!(a.var_kinds[2], DstVarKind::DenseAlias(1));
        // col2(k) = j  — one Case-4 write.
        assert_eq!(a.writes.len(), 1);
        assert!(a.writes[0].uses_position);
        assert_eq!(a.writes[0].uf, "col2");
        // rowptr(ii) <= k and k < rowptr(ii + 1) — one min, one max.
        assert_eq!(a.bounds.len(), 2);
        assert_eq!(a.bounds.iter().filter(|b| b.is_min).count(), 1);
        assert_eq!(a.bounds.iter().filter(|b| !b.is_min).count(), 1);
        assert!(a.memberships.is_empty());
    }

    #[test]
    fn coo_analysis_is_all_case4() {
        let a = analyze_destination(&descriptors::coo()).unwrap();
        assert_eq!(a.var_kinds[0], DstVarKind::Position);
        assert_eq!(a.writes.len(), 2);
        assert!(a.writes.iter().all(|w| w.uses_position));
        assert!(a.bounds.is_empty());
    }

    #[test]
    fn mcoo_constraint_table_matches_table2() {
        let a = analyze_destination(&descriptors::mcoo()).unwrap();
        // Table 2 of the paper: row_m and col_m each have constraints.
        assert!(a.constraint_table.contains_key("rowm"));
        assert!(a.constraint_table.contains_key("colm"));
        let rowm = &a.constraint_table["rowm"];
        assert!(rowm.iter().any(|c| c.contains("rowm(n)")));
    }

    #[test]
    fn dia_analysis_finds_membership() {
        let a = analyze_destination(&descriptors::dia()).unwrap();
        // [ii, d, jj]: ii aliases i, d is a find var, jj aliases j.
        assert_eq!(a.var_kinds[0], DstVarKind::DenseAlias(0));
        assert_eq!(a.var_kinds[1], DstVarKind::Find { uf: "off".into() });
        assert_eq!(a.var_kinds[2], DstVarKind::DenseAlias(1));
        assert_eq!(a.memberships.len(), 1);
        let m = &a.memberships[0];
        assert_eq!(m.uf, "off");
        // off(d) = j - i.
        let mut vars = Vec::new();
        m.value.collect_vars(&mut vars);
        assert_eq!(vars.len(), 2);
        // Data index is ND * ii + d.
        assert!(!a.data_index.terms.is_empty());
    }

    #[test]
    fn csc_analysis_mirrors_csr() {
        let a = analyze_destination(&descriptors::csc()).unwrap();
        // [jj, k, ii]: jj aliases j (dense dim 1), k position, ii aliases i.
        assert_eq!(a.var_kinds[0], DstVarKind::DenseAlias(1));
        assert_eq!(a.var_kinds[1], DstVarKind::Position);
        assert_eq!(a.var_kinds[2], DstVarKind::DenseAlias(0));
        assert_eq!(a.writes.len(), 1);
        assert_eq!(a.writes[0].uf, "row");
    }

    #[test]
    fn unsupported_constraint_shapes_are_reported() {
        use sparse_formats::descriptors::coo;
        use spf_ir::parse_relation;
        // Two destination UFs in one constraint: row1(n) = col1(n).
        let mut d = coo();
        d.sparse_to_dense = parse_relation(
            "{ [n, ii, jj] -> [i, j] : row1(n) = col1(n) && ii = i && jj = j              && 0 <= n < NNZ }",
        )
        .unwrap();
        assert!(matches!(
            analyze_destination(&d),
            Err(AnalysisError::UnsupportedConstraint(_))
        ));
        // A destination UF nested inside another constraint's UF argument.
        let mut d2 = coo();
        d2.sparse_to_dense = parse_relation(
            "{ [n, ii, jj] -> [i, j] : P(row1(n)) = 3 && ii = i && jj = j }",
        )
        .unwrap();
        assert!(matches!(
            analyze_destination(&d2),
            Err(AnalysisError::UnsupportedConstraint(_))
        ));
    }

    #[test]
    fn unclassifiable_variable_is_reported() {
        use sparse_formats::descriptors::coo;
        use spf_ir::parse_relation;
        // `ii` never tied to a dense coordinate or position.
        let mut d = coo();
        d.sparse_to_dense = parse_relation(
            "{ [n, ii, jj] -> [i, j] : row1(n) = i && col1(n) = j && jj = j              && 0 <= n < NNZ }",
        )
        .unwrap();
        assert!(matches!(
            analyze_destination(&d),
            Err(AnalysisError::UnclassifiedVar(v)) if v == "ii"
        ));
    }

    #[test]
    fn coo3_and_mcoo3_analyze() {
        for d in [descriptors::coo3(), descriptors::mcoo3(), descriptors::scoo3()] {
            let a = analyze_destination(&d).unwrap();
            assert_eq!(a.writes.len(), 3, "{}", d.name);
            assert_eq!(a.var_kinds[0], DstVarKind::Position);
        }
    }
}
