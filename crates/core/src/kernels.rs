//! Native-kernel registry: fused Rust implementations of hot catalog
//! conversions, keyed by the *structural fingerprints* of the source and
//! destination descriptors.
//!
//! The synthesized SPF-IR plan stays the source of truth — a kernel is an
//! optimization the engine may substitute when (and only when) the plan
//! for the same `(src, dst)` pair exists and verified clean. Lookup is by
//! `FormatDescriptor::fingerprint()`, which covers UF names as well as
//! structure — a renamed descriptor (`with_suffix`) gets its own
//! fingerprint and only matches kernels registered for that exact rename,
//! keeping the kernel's array roles aligned with the descriptor's.
//!
//! # Equivalence contract
//!
//! Every registered kernel must be **bit-identical** to the interpreter
//! path for every *valid* input (enforced by the differential suite in
//! `tests/differential.rs`). Where the two could diverge — duplicate
//! coordinates in an unordered COO source, which the permutation-based
//! plans collapse through first-occurrence ranks — the kernel *declines*
//! with an error instead of answering, and the engine transparently falls
//! back to the interpreter. A kernel error is therefore never a
//! conversion failure, just a de-optimization.

use std::collections::HashMap;
use std::sync::OnceLock;

use sparse_formats::{
    descriptors, AnyMatrix, AnyTensor, Coo3Tensor, CooMatrix, CscMatrix, CsrMatrix,
    FormatDescriptor, MatrixRef, MortonCoo3Tensor, MortonCooMatrix, TensorRef,
};
use spf_codegen::kernels::{
    coo_to_csr_parts, csr_to_csc_parts, expand_ptr, lex_sort_perm, morton_sort_perm,
    permute_f64, permute_i64,
};

use crate::run::RunError;

/// A native rank-2 conversion kernel: validated input in, validated
/// destination container out.
pub type MatrixKernelFn = fn(MatrixRef<'_>) -> Result<AnyMatrix, RunError>;

/// A native order-3 conversion kernel.
pub type TensorKernelFn = fn(TensorRef<'_>) -> Result<AnyTensor, RunError>;

/// The registry of native kernels, keyed by
/// `(src.fingerprint(), dst.fingerprint())`.
pub struct KernelRegistry {
    matrix: HashMap<(u64, u64), MatrixKernelFn>,
    tensor: HashMap<(u64, u64), TensorKernelFn>,
}

impl KernelRegistry {
    /// The process-wide registry of built-in kernels.
    pub fn global() -> &'static KernelRegistry {
        static REG: OnceLock<KernelRegistry> = OnceLock::new();
        REG.get_or_init(KernelRegistry::builtin)
    }

    /// Looks up a rank-2 kernel for a fingerprint pair.
    pub fn matrix_kernel(&self, src_fp: u64, dst_fp: u64) -> Option<MatrixKernelFn> {
        self.matrix.get(&(src_fp, dst_fp)).copied()
    }

    /// Looks up an order-3 kernel for a fingerprint pair.
    pub fn tensor_kernel(&self, src_fp: u64, dst_fp: u64) -> Option<TensorKernelFn> {
        self.tensor.get(&(src_fp, dst_fp)).copied()
    }

    /// Number of registered `(src, dst)` pairs across both ranks.
    pub fn len(&self) -> usize {
        self.matrix.len() + self.tensor.len()
    }

    /// True when no kernels are registered.
    pub fn is_empty(&self) -> bool {
        self.matrix.is_empty() && self.tensor.is_empty()
    }

    fn builtin() -> KernelRegistry {
        let mut matrix: HashMap<(u64, u64), MatrixKernelFn> = HashMap::new();
        let mut tensor: HashMap<(u64, u64), TensorKernelFn> = HashMap::new();
        let key = |s: &FormatDescriptor, d: &FormatDescriptor| (s.fingerprint(), d.fingerprint());

        // Coordinate sources (unordered, sorted, Morton) all bind the same
        // triplet storage; the kernels only assume what validation already
        // established for the *source* descriptor, so one implementation
        // serves all three.
        let coord_sources = [descriptors::coo(), descriptors::scoo(), descriptors::mcoo()];
        for s in &coord_sources {
            matrix.insert(key(s, &descriptors::csr()), k_coo_to_csr as MatrixKernelFn);
            matrix.insert(key(s, &descriptors::csc()), k_coo_to_csc);
            matrix.insert(key(s, &descriptors::mcoo()), k_coo_to_mcoo);
            matrix.insert(key(s, &descriptors::scoo().with_suffix("_d")), k_coo_to_scoo);
        }
        // coo -> scoo under the canonical names collides with the source
        // (same UF names); the catalog uses the `_d` rename above. Keep the
        // un-renamed destination too for engines that fingerprint their own
        // descriptor copies.
        matrix.insert(key(&descriptors::coo(), &descriptors::scoo()), k_coo_to_scoo);
        matrix.insert(key(&descriptors::csr(), &descriptors::csc()), k_csr_to_csc);
        matrix.insert(key(&descriptors::csc(), &descriptors::csr()), k_csc_to_csr);
        matrix.insert(key(&descriptors::csr(), &descriptors::coo()), k_csr_to_coo);
        matrix.insert(key(&descriptors::csc(), &descriptors::coo()), k_csc_to_coo);

        for s in &[descriptors::coo3(), descriptors::scoo3()] {
            tensor.insert(key(s, &descriptors::mcoo3()), k_coo3_to_mcoo3 as TensorKernelFn);
        }

        KernelRegistry { matrix, tensor }
    }
}

fn wrong_container(kernel: &str, got: &str) -> RunError {
    RunError::Unsupported(format!(
        "kernel `{kernel}` cannot run on a `{got}` container"
    ))
}

fn decline(kernel: &str, why: &str) -> RunError {
    RunError::Unsupported(format!(
        "kernel `{kernel}` declined ({why}); interpreter fallback required"
    ))
}

/// Coordinate-kind sources accept either a bare COO or a Morton COO — the
/// triplet storage is identical (mirrors `bind_matrix` dispatch).
fn coo_ref<'a>(m: MatrixRef<'a>) -> Option<&'a CooMatrix> {
    match m {
        MatrixRef::Coo(c) => Some(c),
        MatrixRef::MortonCoo(mc) => Some(&mc.coo),
        _ => None,
    }
}

fn k_coo_to_csr(m: MatrixRef<'_>) -> Result<AnyMatrix, RunError> {
    let c = coo_ref(m).ok_or_else(|| wrong_container("coo->csr", m.label()))?;
    let (rowptr, col, val) = coo_to_csr_parts(c.nr, &c.row, &c.col, &c.val);
    Ok(AnyMatrix::Csr(CsrMatrix::new(c.nr, c.nc, rowptr, col, val)?))
}

fn k_coo_to_csc(m: MatrixRef<'_>) -> Result<AnyMatrix, RunError> {
    let c = coo_ref(m).ok_or_else(|| wrong_container("coo->csc", m.label()))?;
    // Role-swapped counting sort: histogram columns, order rows inside.
    let (colptr, row, val) = coo_to_csr_parts(c.nc, &c.col, &c.row, &c.val);
    Ok(AnyMatrix::Csc(CscMatrix::new(c.nr, c.nc, colptr, row, val)?))
}

fn k_coo_to_scoo(m: MatrixRef<'_>) -> Result<AnyMatrix, RunError> {
    let c = coo_ref(m).ok_or_else(|| wrong_container("coo->scoo", m.label()))?;
    let perm = lex_sort_perm(&c.row, &c.col);
    // Duplicate coordinates collapse through the plan's first-occurrence
    // ranks; the sorted permutation can't reproduce that, so decline and
    // let the interpreter answer (valid unordered COO permits duplicates).
    if perm.windows(2).any(|w| c.row[w[0]] == c.row[w[1]] && c.col[w[0]] == c.col[w[1]]) {
        return Err(decline("coo->scoo", "duplicate coordinates"));
    }
    let out = CooMatrix::from_triplets(
        c.nr,
        c.nc,
        permute_i64(&c.row, &perm),
        permute_i64(&c.col, &perm),
        permute_f64(&c.val, &perm),
    )?;
    Ok(AnyMatrix::Coo(out))
}

fn k_coo_to_mcoo(m: MatrixRef<'_>) -> Result<AnyMatrix, RunError> {
    let c = coo_ref(m).ok_or_else(|| wrong_container("coo->mcoo", m.label()))?;
    let perm = morton_sort_perm(&[&c.row, &c.col]);
    if perm.windows(2).any(|w| c.row[w[0]] == c.row[w[1]] && c.col[w[0]] == c.col[w[1]]) {
        return Err(decline("coo->mcoo", "duplicate coordinates"));
    }
    let out = CooMatrix::from_triplets(
        c.nr,
        c.nc,
        permute_i64(&c.row, &perm),
        permute_i64(&c.col, &perm),
        permute_f64(&c.val, &perm),
    )?;
    Ok(AnyMatrix::MortonCoo(MortonCooMatrix::new(out)?))
}

fn k_csr_to_csc(m: MatrixRef<'_>) -> Result<AnyMatrix, RunError> {
    let MatrixRef::Csr(c) = m else {
        return Err(wrong_container("csr->csc", m.label()));
    };
    let (colptr, row, val) = csr_to_csc_parts(c.nr, c.nc, &c.rowptr, &c.col, &c.val);
    Ok(AnyMatrix::Csc(CscMatrix::new(c.nr, c.nc, colptr, row, val)?))
}

fn k_csc_to_csr(m: MatrixRef<'_>) -> Result<AnyMatrix, RunError> {
    let MatrixRef::Csc(c) = m else {
        return Err(wrong_container("csc->csr", m.label()));
    };
    // A CSC is the CSR of the transpose; transposing it back is the same
    // scatter with the roles swapped.
    let (rowptr, col, val) = csr_to_csc_parts(c.nc, c.nr, &c.colptr, &c.row, &c.val);
    Ok(AnyMatrix::Csr(CsrMatrix::new(c.nr, c.nc, rowptr, col, val)?))
}

fn k_csr_to_coo(m: MatrixRef<'_>) -> Result<AnyMatrix, RunError> {
    let MatrixRef::Csr(c) = m else {
        return Err(wrong_container("csr->coo", m.label()));
    };
    let row = expand_ptr(&c.rowptr);
    Ok(AnyMatrix::Coo(CooMatrix::from_triplets(
        c.nr,
        c.nc,
        row,
        c.col.clone(),
        c.val.clone(),
    )?))
}

fn k_csc_to_coo(m: MatrixRef<'_>) -> Result<AnyMatrix, RunError> {
    let MatrixRef::Csc(c) = m else {
        return Err(wrong_container("csc->coo", m.label()));
    };
    let col = expand_ptr(&c.colptr);
    Ok(AnyMatrix::Coo(CooMatrix::from_triplets(
        c.nr,
        c.nc,
        c.row.clone(),
        col,
        c.val.clone(),
    )?))
}

fn k_coo3_to_mcoo3(t: TensorRef<'_>) -> Result<AnyTensor, RunError> {
    let c: &Coo3Tensor = match t {
        TensorRef::Coo3(c) => c,
        TensorRef::MortonCoo3(mc) => &mc.coo,
    };
    let perm = morton_sort_perm(&[&c.i0, &c.i1, &c.i2]);
    if perm.windows(2).any(|w| {
        c.i0[w[0]] == c.i0[w[1]] && c.i1[w[0]] == c.i1[w[1]] && c.i2[w[0]] == c.i2[w[1]]
    }) {
        return Err(decline("coo3->mcoo3", "duplicate coordinates"));
    }
    let out = Coo3Tensor::from_coords(
        (c.nr, c.nc, c.nz),
        permute_i64(&c.i0, &perm),
        permute_i64(&c.i1, &perm),
        permute_i64(&c.i2, &perm),
        permute_f64(&c.val, &perm),
    )?;
    Ok(AnyTensor::MortonCoo3(MortonCoo3Tensor::new(out)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_hot_pairs() {
        let reg = KernelRegistry::global();
        assert!(reg.len() >= 10, "expected a full builtin registry, got {}", reg.len());
        let fp = |d: FormatDescriptor| d.fingerprint();
        for (s, d) in [
            (fp(descriptors::scoo()), fp(descriptors::csr())),
            (fp(descriptors::coo()), fp(descriptors::csr())),
            (fp(descriptors::csr()), fp(descriptors::csc())),
            (fp(descriptors::csr()), fp(descriptors::coo())),
            (fp(descriptors::coo()), fp(descriptors::scoo().with_suffix("_d"))),
            (fp(descriptors::scoo()), fp(descriptors::mcoo())),
        ] {
            assert!(reg.matrix_kernel(s, d).is_some(), "missing kernel for ({s:#x},{d:#x})");
        }
        assert!(reg
            .tensor_kernel(fp(descriptors::coo3()), fp(descriptors::mcoo3()))
            .is_some());
    }

    #[test]
    fn unregistered_pairs_miss() {
        let reg = KernelRegistry::global();
        // DIA destinations have no native kernel — the interpreter's
        // diagonal discovery is the only implementation.
        assert!(reg
            .matrix_kernel(
                descriptors::scoo().fingerprint(),
                descriptors::dia().fingerprint()
            )
            .is_none());
    }

    #[test]
    fn duplicate_coordinates_decline() {
        let coo = CooMatrix::from_triplets(
            2,
            2,
            vec![0, 0, 1],
            vec![1, 1, 0],
            vec![1.0, 2.0, 3.0],
        )
        .unwrap();
        let err = k_coo_to_scoo(MatrixRef::Coo(&coo)).unwrap_err();
        assert!(matches!(err, RunError::Unsupported(_)), "{err}");
        let err = k_coo_to_mcoo(MatrixRef::Coo(&coo)).unwrap_err();
        assert!(matches!(err, RunError::Unsupported(_)), "{err}");
    }
}
