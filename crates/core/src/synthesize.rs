//! The inspector synthesis algorithm (§3.2 of the paper) and its
//! optimization pipeline (§3.3).
//!
//! Given a source and a destination [`FormatDescriptor`], synthesis:
//!
//! 1. **inverts** the destination sparse-to-dense map and inserts the
//!    permutation `P`,
//! 2. **composes** it with the source map (`R = dst⁻¹ ∘ src`),
//! 3. solves each **unknown UF** from its constraints (Cases 1–5, see
//!    [`crate::analysis`]), emitting SPF statements that populate it,
//! 4. **enforces universal quantifiers** — reordering quantifiers through
//!    the `OrderedList` sort, monotonic quantifiers through an
//!    enforcement sweep,
//! 5. generates the **copy** statement over the composed relation.
//!
//! The result is a naive SPF [`Computation`] — a sparse loop chain — that
//! the §3.3 optimization pipeline then improves: redundancy removal,
//! *identity-permutation elimination* (when the source order implies the
//! destination order, `P.rank(...)` collapses to the source position and
//! dead-code elimination deletes the whole permutation chain — the
//! paper's COO→CSR fast path), loop fusion, and optionally the Figure 3
//! binary-search rewrite of DIA's linear search.

use std::fmt;

use sparse_formats::descriptors::{domain_alloc_size, range_max};
use sparse_formats::FormatDescriptor;
use spf_computation::{
    optimize as spf_optimize, Computation, FindSpec, Kernel, ListOrderSpec, LowerError,
    Stmt,
};
use spf_ir::constraint::Constraint;
use spf_ir::expr::{LinExpr, UfCall, VarId};
use spf_ir::formula::{Relation, Set};
use spf_ir::order::Comparator;
use spf_ir::uf::{Monotonicity, UfEnvironment, UfSignature};

use crate::analysis::{analyze_destination, AnalysisError, DstAnalysis, DstVarKind};

/// Options controlling synthesis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SynthesisOptions {
    /// Run the §3.3 optimization pipeline (redundancy removal, identity
    /// permutation elimination + DCE, fusion).
    pub optimize: bool,
    /// Replace linear membership search with binary search when the
    /// searched UF's monotonic quantifier licenses it (Figure 3).
    pub binary_search: bool,
}

impl Default for SynthesisOptions {
    fn default() -> Self {
        SynthesisOptions { optimize: true, binary_search: false }
    }
}

/// Errors raised by synthesis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SynthesisError {
    /// The source format has no executable scan (e.g. DIA as source).
    SourceNotScannable(String),
    /// Destination analysis failed.
    Analysis(AnalysisError),
    /// The destination requires more than one search variable.
    MultipleFindVars,
    /// A Case-5 UF's domain size is not a plain symbol that synthesis can
    /// set from the collected list length.
    NonSymbolicListLen(String),
    /// A UF signature lacks the domain/range information synthesis needs.
    MissingDomainInfo(String),
    /// The destination order key has fewer than two dimensions (rank
    /// lookups need composite keys).
    DegenerateOrderKey,
    /// Source and destination have different dense ranks.
    RankMismatch {
        /// Source rank.
        src: usize,
        /// Destination rank.
        dst: usize,
    },
    /// Lowering the synthesized computation failed.
    Lower(LowerError),
}

impl fmt::Display for SynthesisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthesisError::SourceNotScannable(n) => {
                write!(f, "format `{n}` is not supported as a conversion source")
            }
            SynthesisError::Analysis(e) => write!(f, "destination analysis: {e}"),
            SynthesisError::MultipleFindVars => {
                write!(f, "more than one search variable in the destination")
            }
            SynthesisError::NonSymbolicListLen(uf) => {
                write!(f, "domain size of `{uf}` is not a plain symbol")
            }
            SynthesisError::MissingDomainInfo(uf) => {
                write!(f, "missing domain/range declaration for `{uf}`")
            }
            SynthesisError::DegenerateOrderKey => {
                write!(f, "destination order key must have at least two dimensions")
            }
            SynthesisError::RankMismatch { src, dst } => {
                write!(f, "dense rank mismatch: source {src} vs destination {dst}")
            }
            SynthesisError::Lower(e) => write!(f, "lowering: {e}"),
        }
    }
}

impl std::error::Error for SynthesisError {}

impl From<AnalysisError> for SynthesisError {
    fn from(e: AnalysisError) -> Self {
        SynthesisError::Analysis(e)
    }
}

impl From<LowerError> for SynthesisError {
    fn from(e: LowerError) -> Self {
        SynthesisError::Lower(e)
    }
}

/// How the destination position of each nonzero is obtained.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PermutationKind {
    /// No permutation needed: destination order unconstrained, or the
    /// source order implies it. Positions are source positions.
    Identity,
    /// An `OrderedList` permutation `P` sorted with the given comparator.
    Ordered {
        /// Comparator specification.
        order: ListOrderSpec,
        /// Number of key columns.
        width: usize,
    },
}

/// A synthesized conversion: the naive and optimized computations plus
/// everything needed to inspect or execute them.
#[derive(Debug, Clone)]
pub struct SynthesizedConversion {
    /// Source descriptor.
    pub src: FormatDescriptor,
    /// Destination descriptor.
    pub dst: FormatDescriptor,
    /// The composed relation `R_{A_src -> A_dst}` (for inspection; the
    /// paper's step 2).
    pub composed: Relation,
    /// The destination analysis (constraint classification; Table 2).
    pub analysis: DstAnalysis,
    /// The synthesized computation (optimized when the options say so).
    pub computation: Computation,
    /// The naive computation before optimization, kept for ablation.
    pub naive: Computation,
    /// How destination positions are produced in the *naive* computation
    /// (the paper always generates `P` for ordered destinations).
    pub permutation: PermutationKind,
    /// `true` when optimization proved the permutation is the identity
    /// (source order implies destination order) and removed it.
    pub identity_eliminated: bool,
    /// Signatures of UFs *introduced by synthesis* (the permutation `P`):
    /// facts the static verifier may assume. `P`'s range is `[0, NNZ)` —
    /// a rank returned by a finalized list of one entry per scanned
    /// nonzero.
    pub synth_ufs: UfEnvironment,
    /// Human-readable solve order, e.g.
    /// `["P", "col2", "rowptr", "copy"]`.
    pub plan: Vec<String>,
}

/// Name of the synthesized permutation list.
pub const PERM_NAME: &str = "P";

/// Prefix for Case-5 value-collection lists (`L_off` etc.).
pub const LIST_PREFIX: &str = "L_";

/// Synthesizes the conversion from `src` to `dst`.
///
/// # Errors
/// Returns a [`SynthesisError`] when either descriptor falls outside the
/// supported fragment.
pub fn synthesize(
    src: &FormatDescriptor,
    dst: &FormatDescriptor,
    options: SynthesisOptions,
) -> Result<SynthesizedConversion, SynthesisError> {
    if src.rank != dst.rank {
        return Err(SynthesisError::RankMismatch { src: src.rank, dst: dst.rank });
    }
    let scan = src
        .scan
        .as_ref()
        .ok_or_else(|| SynthesisError::SourceNotScannable(src.name.clone()))?;
    let analysis = analyze_destination(dst)?;

    // Step 1 + 2: invert the destination map and compose with the source
    // map. (The permutation constraint `P(i,j) = [n2, ii, jj]` is tracked
    // as metadata — see `PermutationKind` — because `P` is tuple-valued.)
    let mut composed = dst.sparse_to_dense.inverse().compose(&src.sparse_to_dense);
    composed.simplify();

    // Which find variables exist?
    let find_vars: Vec<usize> = analysis
        .var_kinds
        .iter()
        .enumerate()
        .filter_map(|(idx, k)| matches!(k, DstVarKind::Find { .. }).then_some(idx))
        .collect();
    if find_vars.len() > 1 {
        return Err(SynthesisError::MultipleFindVars);
    }

    let scan_arity = scan.set.arity() as usize;
    let needs_position = analysis
        .var_kinds
        .iter()
        .any(|k| matches!(k, DstVarKind::Position));

    // The copy/write iteration space: the source scan set, extended with a
    // position variable `p` when the destination stores by rank. `p` is
    // defined by `p = P(key...)` when the destination carries a reordering
    // quantifier, else by the source data index.
    let mut copy_space = scan.set.clone();
    let p_pos = scan_arity; // tuple position of `p` when present
    let permutation = match (&dst.order, needs_position) {
        (_, false) => PermutationKind::Identity,
        // An unordered destination keeps the source order; when the
        // source data index enumerates nonzeros densely it doubles as the
        // rank, otherwise an insertion-ordered permutation compacts the
        // gaps (padded sources like ELL).
        (None, true) if src.contiguous_data => PermutationKind::Identity,
        (None, true) => PermutationKind::Ordered {
            order: ListOrderSpec::Insertion,
            width: src.rank,
        },
        (Some(key), true) => {
            if key.dims.len() < 2 {
                return Err(SynthesisError::DegenerateOrderKey);
            }
            PermutationKind::Ordered {
                order: comparator_spec(&key.comparator),
                width: key.dims.len(),
            }
        }
    };
    if needs_position {
        copy_space = extend_tuple(&copy_space, "p");
        let def = match &permutation {
            PermutationKind::Ordered { .. } => {
                // p = P(key dims over dense coordinates); for an
                // insertion-ordered permutation the key is simply the
                // dense coordinate tuple.
                let args = match &dst.order {
                    Some(key) => key_exprs(key, &scan.dense_pos),
                    None => scan
                        .dense_pos
                        .iter()
                        .map(|&pos| LinExpr::var(VarId(pos as u32)))
                        .collect(),
                };
                LinExpr::uf(UfCall::new(PERM_NAME, args))
            }
            PermutationKind::Identity => scan.data_index.clone(),
        };
        add_eq(&mut copy_space, VarId(p_pos as u32), def);
    }

    // Maps a destination-tuple expression into the copy space: aliases go
    // to their dense coordinate's scan position, the position variable to
    // `p`, find variables to the (single) appended find position.
    let dst_arity = dst.sparse_to_dense.in_arity() as usize;
    let find_tuple_pos = copy_space.arity() as usize; // appended by FindSpec
    let map_dst_expr = |e: &LinExpr| -> LinExpr {
        e.map_vars(&mut |v: VarId| {
            let idx = v.index();
            if idx < dst_arity {
                match &analysis.var_kinds[idx] {
                    DstVarKind::DenseAlias(d) => LinExpr::var(VarId(scan.dense_pos[*d] as u32)),
                    DstVarKind::Position => LinExpr::var(VarId(p_pos as u32)),
                    DstVarKind::Find { .. } => LinExpr::var(VarId(find_tuple_pos as u32)),
                }
            } else {
                // Dense coordinate.
                LinExpr::var(VarId(scan.dense_pos[idx - dst_arity] as u32))
            }
        })
    };

    let mut comp = Computation::new();
    let mut plan = Vec::new();
    let empty = Set::universe(vec![]);

    // --- Setup: allocations and list declarations -----------------------
    for w in &analysis.writes {
        let sig = dst
            .ufs
            .get(&w.uf)
            .ok_or_else(|| SynthesisError::MissingDomainInfo(w.uf.clone()))?;
        let size = domain_alloc_size(sig)
            .ok_or_else(|| SynthesisError::MissingDomainInfo(w.uf.clone()))?;
        comp.add_stmt(Stmt::new(
            format!("alloc {}", w.uf),
            Kernel::UfAlloc { uf: w.uf.clone(), size, init: LinExpr::constant(0) },
            empty.clone(),
        ));
    }
    // Pointer UFs: allocate once per UF, initialized to the range maximum
    // (the "+infinity" for min updates).
    let mut ptr_ufs: Vec<String> = analysis.bounds.iter().map(|b| b.uf.clone()).collect();
    ptr_ufs.sort();
    ptr_ufs.dedup();
    for uf in &ptr_ufs {
        let sig = dst
            .ufs
            .get(uf)
            .ok_or_else(|| SynthesisError::MissingDomainInfo(uf.clone()))?;
        let size = domain_alloc_size(sig)
            .ok_or_else(|| SynthesisError::MissingDomainInfo(uf.clone()))?;
        let init = range_max(sig)
            .ok_or_else(|| SynthesisError::MissingDomainInfo(uf.clone()))?;
        comp.add_stmt(Stmt::new(
            format!("alloc {uf}"),
            Kernel::UfAlloc { uf: uf.clone(), size, init },
            empty.clone(),
        ));
    }
    if let PermutationKind::Ordered { order, width } = &permutation {
        comp.add_stmt(Stmt::new(
            format!("declare permutation {PERM_NAME}"),
            Kernel::ListDecl {
                list: PERM_NAME.into(),
                width: *width,
                order: order.clone(),
                unique: false,
            },
            empty.clone(),
        ));
    }
    for m in &analysis.memberships {
        let sig = dst
            .ufs
            .get(&m.uf)
            .ok_or_else(|| SynthesisError::MissingDomainInfo(m.uf.clone()))?;
        // Strictly increasing quantifier => sorted unique list.
        let (order, unique) = match sig.monotonicity {
            Some(Monotonicity::Increasing) => (ListOrderSpec::Lexicographic, true),
            Some(Monotonicity::NonDecreasing) => (ListOrderSpec::Lexicographic, false),
            None => (ListOrderSpec::Insertion, true),
        };
        comp.add_stmt(Stmt::new(
            format!("declare value list for {}", m.uf),
            Kernel::ListDecl {
                list: format!("{LIST_PREFIX}{}", m.uf),
                width: 1,
                order,
                unique,
            },
            empty.clone(),
        ));
    }

    // --- Permutation population (paper: P is processed first) -----------
    if let PermutationKind::Ordered { .. } = &permutation {
        plan.push(PERM_NAME.to_string());
        let args = match &dst.order {
            Some(key) => key_exprs(key, &scan.dense_pos),
            None => scan
                .dense_pos
                .iter()
                .map(|&pos| LinExpr::var(VarId(pos as u32)))
                .collect(),
        };
        comp.add_stmt(Stmt::new(
            format!("insert into {PERM_NAME}"),
            Kernel::ListInsert { list: PERM_NAME.into(), args },
            scan.set.clone(),
        ));
        comp.add_stmt(Stmt::new(
            format!("finalize {PERM_NAME} (enforce reordering quantifier)"),
            Kernel::ListFinalize { list: PERM_NAME.into() },
            empty.clone(),
        ));
    }

    // --- Case 5: collect membership values, materialize, set symbols ----
    for m in &analysis.memberships {
        plan.push(m.uf.clone());
        let list = format!("{LIST_PREFIX}{}", m.uf);
        comp.add_stmt(Stmt::new(
            format!("collect values of {}", m.uf),
            Kernel::ListInsert {
                list: list.clone(),
                args: vec![map_dst_expr(&m.value)],
            },
            scan.set.clone(),
        ));
        comp.add_stmt(Stmt::new(
            format!("finalize values of {} (enforce monotonic quantifier)", m.uf),
            Kernel::ListFinalize { list: list.clone() },
            empty.clone(),
        ));
        comp.add_stmt(Stmt::new(
            format!("materialize {}", m.uf),
            Kernel::ListToUf { list: list.clone(), dim: 0, uf: m.uf.clone() },
            empty.clone(),
        ));
        // The UF's domain size must be a plain symbol we can now set
        // (DIA: ND = |off|).
        let sig = dst
            .ufs
            .get(&m.uf)
            .ok_or_else(|| SynthesisError::MissingDomainInfo(m.uf.clone()))?;
        let size = domain_alloc_size(sig)
            .ok_or_else(|| SynthesisError::MissingDomainInfo(m.uf.clone()))?;
        let sym = size
            .terms
            .iter()
            .find_map(|(c, a)| match a {
                spf_ir::Atom::Sym(s)
                    if *c == 1 && size.terms.len() == 1 && size.constant == 0 =>
                {
                    Some(s.clone())
                }
                _ => None,
            })
            .ok_or_else(|| SynthesisError::NonSymbolicListLen(m.uf.clone()))?;
        comp.add_stmt(Stmt::new(
            format!("set {sym} = |{}|", m.uf),
            Kernel::SymSetListLen { sym, list },
            empty.clone(),
        ));
    }

    // --- Destination data allocation ------------------------------------
    comp.add_stmt(Stmt::new(
        format!("alloc {}", dst.data_name),
        Kernel::DataAlloc { arr: dst.data_name.clone(), size_factors: dst.data_size.clone() },
        empty.clone(),
    ));

    // --- The write + copy loop over the (extended) source scan ----------
    let find_spec = if let Some(&fv) = find_vars.first() {
        let DstVarKind::Find { uf } = &analysis.var_kinds[fv] else { unreachable!() };
        let m = analysis
            .memberships
            .iter()
            .find(|m| m.var == fv)
            .ok_or_else(|| SynthesisError::MissingDomainInfo(uf.clone()))?;
        let sig = dst
            .ufs
            .get(uf)
            .ok_or_else(|| SynthesisError::MissingDomainInfo(uf.clone()))?;
        let size = domain_alloc_size(sig)
            .ok_or_else(|| SynthesisError::MissingDomainInfo(uf.clone()))?;
        let binary = options.binary_search
            && sig.monotonicity == Some(Monotonicity::Increasing);
        Some(FindSpec {
            var: "d".into(),
            uf: uf.clone(),
            lo: LinExpr::constant(0),
            hi: size,
            target: map_dst_expr(&m.value),
            binary,
        })
    } else {
        None
    };

    for w in &analysis.writes {
        plan.push(w.uf.clone());
        let stmt = Stmt::new(
            format!("populate {}", w.uf),
            Kernel::UfWrite {
                uf: w.uf.clone(),
                idx: map_dst_expr(&w.arg),
                value: map_dst_expr(&w.value),
            },
            copy_space.clone(),
        );
        comp.add_stmt(stmt);
    }
    for b in &analysis.bounds {
        if !plan.contains(&b.uf) {
            plan.push(b.uf.clone());
        }
        let kernel = if b.is_min {
            Kernel::UfMin {
                uf: b.uf.clone(),
                idx: map_dst_expr(&b.arg),
                value: map_dst_expr(&b.value),
            }
        } else {
            Kernel::UfMax {
                uf: b.uf.clone(),
                idx: map_dst_expr(&b.arg),
                // Case 3: uf(arg) >= value  =>  max update with value.
                value: map_dst_expr(&b.value),
            }
        };
        comp.add_stmt(Stmt::new(
            format!(
                "bound {} ({})",
                b.uf,
                if b.is_min { "case 2: min" } else { "case 3: max" }
            ),
            kernel,
            copy_space.clone(),
        ));
    }
    plan.push("copy".into());
    let mut copy_stmt = Stmt::new(
        "copy data",
        Kernel::Copy {
            dst: dst.data_name.clone(),
            dst_idx: map_dst_expr(&analysis.data_index),
            src: src.data_name.clone(),
            src_idx: scan_index_in_copy_space(&scan.data_index),
        },
        copy_space.clone(),
    );
    if let Some(f) = find_spec {
        copy_stmt = copy_stmt.with_find(f);
    }
    comp.add_stmt(copy_stmt);

    // --- Monotonic quantifier enforcement sweeps ------------------------
    for uf in &ptr_ufs {
        let sig = dst
            .ufs
            .get(uf)
            .ok_or_else(|| SynthesisError::MissingDomainInfo(uf.clone()))?;
        if sig.monotonicity.is_none() {
            continue;
        }
        // Backward sweep uf[size-2-e] = min(uf[size-2-e], uf[size-1-e])
        // over e in [0, size-1): repairs entries never min-updated
        // (empty rows) while preserving populated ones.
        let size = domain_alloc_size(sig)
            .ok_or_else(|| SynthesisError::MissingDomainInfo(uf.clone()))?;
        let mut sweep_space = Set::universe(vec!["e".into()]);
        {
            let conj = &mut sweep_space.conjunctions_mut()[0];
            conj.add(Constraint::ge(LinExpr::var(VarId(0)), LinExpr::zero()));
            conj.add(Constraint::lt(
                LinExpr::var(VarId(0)),
                size.add(&LinExpr::constant(-1)),
            ));
        }
        let idx = size.add(&LinExpr::constant(-2)).sub(&LinExpr::var(VarId(0)));
        let next = size.add(&LinExpr::constant(-1)).sub(&LinExpr::var(VarId(0)));
        comp.add_stmt(Stmt::new(
            format!("enforce monotonic quantifier on {uf}"),
            Kernel::UfMin {
                uf: uf.clone(),
                idx,
                value: LinExpr::uf(UfCall::new(uf.clone(), vec![next])),
            },
            sweep_space,
        ));
    }

    // --- Live-out and optimization ---------------------------------------
    for uf in dst.uf_names() {
        comp.mark_live(uf);
    }
    comp.mark_live(dst.data_name.clone());
    for s in &dst.extra_syms {
        comp.mark_live(s.clone());
    }

    let naive = comp.clone();
    let mut identity_eliminated = false;
    if options.optimize {
        // Identity-permutation elimination: when the source order implies
        // the destination order, `P` is the identity — replace its rank
        // lookups with the source position and let DCE delete the chain.
        let identity = matches!(&permutation, PermutationKind::Ordered { .. })
            && src.contiguous_data
            && match (&src.order, &dst.order) {
                (Some(s), Some(d)) => s.implies(d),
                _ => false,
            };
        if identity {
            eliminate_identity_permutation(&mut comp, &scan.data_index);
            identity_eliminated = true;
        }
        spf_optimize(&mut comp);
    }

    // Facts about synthesis-introduced UFs, for the static verifier: the
    // permutation `P` is a rank into a finalized list with one insert per
    // scanned nonzero, so its values lie in `[0, NNZ)`. (Padded sources
    // like ELL filter their padding in the scan set, and `NNZ` is bound to
    // the actual nonzero count, so the cardinality equality holds for
    // every scannable source.)
    let mut synth_ufs = UfEnvironment::new();
    if let PermutationKind::Ordered { width, .. } = &permutation {
        let domain = Set::universe((0..*width).map(|k| format!("k{k}")).collect());
        let mut range = Set::universe(vec!["r".into()]);
        {
            let conj = &mut range.conjunctions_mut()[0];
            conj.add(Constraint::ge(LinExpr::var(VarId(0)), LinExpr::zero()));
            conj.add(Constraint::lt(
                LinExpr::var(VarId(0)),
                LinExpr::sym(src.nnz_sym.clone()),
            ));
        }
        synth_ufs.insert(UfSignature {
            name: PERM_NAME.into(),
            arity: *width,
            domain,
            range,
            monotonicity: None,
        });
    }

    Ok(SynthesizedConversion {
        src: src.clone(),
        dst: dst.clone(),
        composed,
        analysis,
        computation: comp,
        naive,
        permutation,
        identity_eliminated,
        synth_ufs,
        plan,
    })
}

/// Rewrites every `p = P(...)` definition to `p = source position`,
/// leaving the permutation unreferenced so dead-code elimination removes
/// it — the optimization behind the paper's COO→CSR result.
fn eliminate_identity_permutation(comp: &mut Computation, src_data_index: &LinExpr) {
    for stmt in &mut comp.stmts {
        let arity = stmt.iter_space.tuple().len();
        for conj in stmt.iter_space.conjunctions_mut() {
            for c in &mut conj.constraints {
                if c.mentions_uf(PERM_NAME) {
                    // The constraint is `p - P(...) = 0` with `p` the last
                    // tuple position; rebuild it as `p - src_index = 0`.
                    let p = VarId((arity - 1) as u32);
                    *c = Constraint::eq(LinExpr::var(p), src_data_index.clone());
                }
            }
        }
    }
    // Re-simplify spaces (sort constraints) so structural equality for
    // fusion still holds across statements.
    for stmt in &mut comp.stmts {
        stmt.iter_space.simplify();
    }
}

/// The destination order key dims as expressions over the scan tuple.
fn key_exprs(key: &spf_ir::OrderKey, dense_pos: &[usize]) -> Vec<LinExpr> {
    key.dims
        .iter()
        .map(|d| {
            let mut e = LinExpr::constant(d.constant);
            for (dim, c) in d.coeffs.iter().enumerate() {
                if *c != 0 {
                    e.add_assign(&LinExpr::var(VarId(dense_pos[dim] as u32)).scaled(*c));
                }
            }
            e
        })
        .collect()
}

fn comparator_spec(c: &Comparator) -> ListOrderSpec {
    match c {
        Comparator::Lexicographic => ListOrderSpec::Lexicographic,
        Comparator::Morton => ListOrderSpec::Morton,
        Comparator::UserFn(name) => ListOrderSpec::Custom(name.clone()),
    }
}

/// The source data index is already expressed over the scan tuple, whose
/// positions are unchanged inside the copy space (extensions append).
fn scan_index_in_copy_space(e: &LinExpr) -> LinExpr {
    e.clone()
}

/// Appends a fresh tuple variable to a set.
fn extend_tuple(s: &Set, name: &str) -> Set {
    let mut tuple = s.tuple().to_vec();
    tuple.push(name.to_string());
    let new_arity = tuple.len() as u32;
    let conjs = s
        .conjunctions()
        .iter()
        .map(|c| {
            let mut nc = spf_ir::Conjunction::new(new_arity);
            for e in c.exists() {
                nc.fresh_exist(e.clone());
            }
            // Existing var ids keep their positions: tuple vars 0..n stay,
            // old existentials shift up by one.
            let old_arity = s.arity();
            for con in &c.constraints {
                nc.add(con.map_vars(&mut |v: VarId| {
                    if v.0 < old_arity {
                        LinExpr::var(v)
                    } else {
                        LinExpr::var(VarId(v.0 + 1))
                    }
                }));
            }
            nc
        })
        .collect();
    Set::from_conjunctions(tuple, conjs)
}

/// Adds the equality `var = def` to every conjunction of a set.
fn add_eq(s: &mut Set, var: VarId, def: LinExpr) {
    for conj in s.conjunctions_mut() {
        conj.add(Constraint::eq(LinExpr::var(var), def.clone()));
    }
}
