//! Executing synthesized conversions on real tensors: binding runtime
//! containers into the interpreter environment by their descriptor's UF
//! names, running the compiled inspector, and extracting the destination
//! container.

use std::borrow::Cow;
use std::fmt;
use std::time::Instant;

use sparse_formats::{
    AnyMatrix, AnyTensor, Coo3Tensor, CooMatrix, CscMatrix, CsrMatrix, DiaMatrix, EllMatrix,
    FormatDescriptor, FormatError, FormatKind, MatrixRef, MortonCoo3Tensor, MortonCooMatrix,
    TensorRef, ValidationError,
};
use sparse_obs::{Span, Stage, Subscriber};
use spf_codegen::interp::{ExecError, ExecStats};
use spf_codegen::runtime::RtEnv;
use spf_computation::{Compiled, ComparatorRegistry};

use crate::synthesize::{
    synthesize, SynthesisError, SynthesisOptions, SynthesizedConversion,
};

/// Errors raised while running a conversion.
#[derive(Debug)]
pub enum RunError {
    /// Synthesis failed.
    Synthesis(SynthesisError),
    /// Execution failed.
    Exec(ExecError),
    /// The produced destination data violates the format's invariants
    /// (this would indicate a synthesis bug).
    Format(FormatError),
    /// A name expected in the environment after execution is missing.
    MissingOutput(String),
    /// The descriptor is malformed for its structural kind (missing
    /// coordinate UF, pointer UF, or extra symbol). Binding and
    /// extraction report this instead of panicking so callers can feed
    /// untrusted descriptors through the dispatch layer.
    Descriptor(String),
    /// The descriptor/container pairing has no dispatch path: the
    /// descriptor's [`FormatKind`] is unsupported, the input container
    /// does not match the source descriptor, or the destination kind has
    /// no extractor.
    Unsupported(String),
    /// The input container violates a quantifier obligation of its
    /// source descriptor (non-monotone pointer, out-of-bounds index,
    /// unsorted coordinates, …). `check` names the failed runtime check
    /// (see `sparse_formats::validate::InputCheck::as_str`).
    InvalidInput {
        /// Stable kebab-case name of the failed check.
        check: &'static str,
        /// Human-readable specifics (offending index, observed value).
        detail: String,
    },
    /// Admission control refused the conversion: the estimated output
    /// footprint exceeds the configured memory budget.
    ResourceExhausted {
        /// What blew up (e.g. `"dia output"`, `"ell output"`).
        what: String,
        /// Estimated bytes the conversion would allocate.
        needed: u64,
        /// The configured budget in bytes.
        budget: u64,
    },
    /// A batch deadline expired before this item started executing.
    DeadlineExceeded {
        /// The configured per-batch deadline.
        deadline: std::time::Duration,
    },
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Synthesis(e) => write!(f, "synthesis: {e}"),
            RunError::Exec(e) => write!(f, "execution: {e}"),
            RunError::Format(e) => write!(f, "invalid output: {e}"),
            RunError::MissingOutput(n) => write!(f, "missing output `{n}`"),
            RunError::Descriptor(what) => write!(f, "malformed descriptor: {what}"),
            RunError::Unsupported(what) => write!(f, "unsupported dispatch: {what}"),
            RunError::InvalidInput { check, detail } => {
                write!(f, "invalid input [{check}]: {detail}")
            }
            RunError::ResourceExhausted { what, needed, budget } => write!(
                f,
                "resource exhausted: {what} needs ~{needed} bytes, budget is {budget}"
            ),
            RunError::DeadlineExceeded { deadline } => {
                write!(f, "deadline exceeded: batch budget {deadline:?} expired before start")
            }
        }
    }
}

impl std::error::Error for RunError {}

impl From<SynthesisError> for RunError {
    fn from(e: SynthesisError) -> Self {
        RunError::Synthesis(e)
    }
}

impl From<ExecError> for RunError {
    fn from(e: ExecError) -> Self {
        RunError::Exec(e)
    }
}

impl From<FormatError> for RunError {
    fn from(e: FormatError) -> Self {
        RunError::Format(e)
    }
}

impl From<ValidationError> for RunError {
    fn from(e: ValidationError) -> Self {
        RunError::InvalidInput { check: e.check.as_str(), detail: e.detail }
    }
}

/// A synthesized, compiled, ready-to-run conversion.
pub struct Conversion {
    /// The synthesis result (inspect `computation`, `composed`, `plan`).
    pub synth: SynthesizedConversion,
    compiled: Compiled,
    comparators: ComparatorRegistry,
    kernel: Option<crate::kernels::MatrixKernelFn>,
    tensor_kernel: Option<crate::kernels::TensorKernelFn>,
}

impl Conversion {
    /// Synthesizes and compiles the conversion from `src` to `dst`.
    ///
    /// When the [`crate::kernels::KernelRegistry`] holds a native kernel
    /// for this exact `(src, dst)` fingerprint pair it is resolved here
    /// too; callers opt into it via [`Conversion::run_matrix_kernel`].
    ///
    /// # Errors
    /// Propagates synthesis and lowering failures.
    pub fn new(
        src: &FormatDescriptor,
        dst: &FormatDescriptor,
        options: SynthesisOptions,
    ) -> Result<Self, RunError> {
        let synth = synthesize(src, dst, options)?;
        let compiled = synth.computation.lower().map_err(SynthesisError::Lower)?;
        let reg = crate::kernels::KernelRegistry::global();
        let (src_fp, dst_fp) = (src.fingerprint(), dst.fingerprint());
        Ok(Conversion {
            synth,
            compiled,
            comparators: ComparatorRegistry::new(),
            kernel: reg.matrix_kernel(src_fp, dst_fp),
            tensor_kernel: reg.tensor_kernel(src_fp, dst_fp),
        })
    }

    /// True when a native kernel is registered for this conversion's
    /// fingerprint pair (rank-2 or order-3).
    pub fn has_kernel(&self) -> bool {
        self.kernel.is_some() || self.tensor_kernel.is_some()
    }

    /// Runs the native kernel for this conversion, or `None` when no
    /// kernel is registered for the fingerprint pair.
    ///
    /// The input must already satisfy the source descriptor's validation
    /// obligations — kernels assume them the same way the interpreter's
    /// verified plan does. An `Err` from the kernel (including its own
    /// decline on inputs whose semantics it cannot reproduce, e.g.
    /// duplicate coordinates) means the caller should fall back to
    /// [`Conversion::run_matrix_quiet`]; it never means the conversion
    /// itself is impossible.
    pub fn run_matrix_kernel<'a>(
        &self,
        m: impl Into<MatrixRef<'a>>,
    ) -> Option<Result<AnyMatrix, RunError>> {
        self.kernel.map(|k| k(m.into()))
    }

    /// Order-3 analogue of [`Conversion::run_matrix_kernel`].
    pub fn run_tensor_kernel<'a>(
        &self,
        t: impl Into<TensorRef<'a>>,
    ) -> Option<Result<AnyTensor, RunError>> {
        self.tensor_kernel.map(|k| k(t.into()))
    }

    /// Replaces this conversion's native rank-2 kernel (or installs one
    /// where none was registered). This is a **fault-injection and
    /// benchmarking hook**: the engine's kernel-path accounting (panic
    /// containment, decline fallback, declined-time attribution) can only
    /// be regression-tested against kernels with known pathological
    /// behavior, which the built-in registry rightly refuses to carry.
    /// Production code paths never call this; the registry match in
    /// [`Conversion::new`] is the only source of real kernels.
    pub fn override_matrix_kernel(&mut self, kernel: crate::kernels::MatrixKernelFn) {
        self.kernel = Some(kernel);
    }

    /// Registers a user-defined comparator for `ListOrderSpec::Custom`
    /// order keys.
    pub fn register_comparator(
        &mut self,
        name: impl Into<String>,
        cmp: spf_codegen::runtime::CmpFn,
    ) {
        self.comparators.insert(name.into(), cmp);
    }

    /// Emits the synthesized inspector as C code.
    pub fn emit_c(&self) -> String {
        self.compiled.emit_c(&format!(
            "{}_to_{}",
            self.synth.src.name.to_lowercase(),
            self.synth.dst.name.to_lowercase()
        ))
    }

    /// Emits the synthesized inspector as a complete, compilable C99
    /// translation unit (prelude + `OrderedList` runtime + globals +
    /// function).
    pub fn emit_c_program(&self) -> String {
        self.compiled.emit_c_program(&format!(
            "{}_to_{}",
            self.synth.src.name.to_lowercase(),
            self.synth.dst.name.to_lowercase()
        ))
    }

    /// Runs the compiled inspector against a pre-populated environment.
    ///
    /// # Errors
    /// Propagates interpreter errors.
    pub fn execute_env(&self, env: &mut RtEnv<'_>) -> Result<ExecStats, RunError> {
        Ok(self.compiled.execute(env, &self.comparators)?)
    }

    /// [`Conversion::execute_env`] with [`ExecStats`] counting compiled
    /// out — the hot-path variant.
    ///
    /// # Errors
    /// Propagates interpreter errors.
    pub fn execute_env_quiet(&self, env: &mut RtEnv<'_>) -> Result<(), RunError> {
        Ok(self.compiled.execute_quiet(env, &self.comparators)?)
    }

    /// Binds a COO matrix as the conversion source (zero-copy: the
    /// matrix's arrays enter the environment borrowed).
    ///
    /// # Errors
    /// Returns [`RunError::Descriptor`] if the source descriptor lacks
    /// the coordinate UFs a COO binding needs.
    pub fn bind_coo_source<'a>(
        &self,
        env: &mut RtEnv<'a>,
        m: &'a CooMatrix,
    ) -> Result<(), RunError> {
        bind_coo(env, &self.synth.src, m)
    }

    /// Converts any rank-2 matrix: validates `m` against the *source*
    /// descriptor's quantifier obligations, binds it under the source
    /// descriptor's names, runs the inspector, and extracts the container
    /// the *destination* descriptor's [`FormatKind`] calls for. This is
    /// the one dispatch path every `run_x_to_y` shim (and the engine's
    /// `convert`) goes through.
    ///
    /// Inputs are untrusted: the static verifier only proves the plan
    /// correct *assuming* the source obligations hold, so they are
    /// established here first (see `sparse_formats::validate`). Use
    /// [`Conversion::run_matrix_unchecked`] to skip the `O(nnz)`
    /// validation sweep for inputs already known valid.
    ///
    /// # Errors
    /// Returns [`RunError::InvalidInput`] on a violated obligation; fails
    /// when `m`'s container does not match the source descriptor, when
    /// either kind has no dispatch rule, and on execution or output
    /// validation failures.
    pub fn run_matrix<'a>(
        &self,
        m: impl Into<MatrixRef<'a>>,
    ) -> Result<(AnyMatrix, ExecStats), RunError> {
        let m = m.into();
        sparse_formats::validate_matrix(&self.synth.src, m)?;
        self.run_matrix_unchecked(m)
    }

    /// [`Conversion::run_matrix`] without the input-validation sweep: the
    /// caller asserts `m` satisfies the source descriptor's obligations
    /// (e.g. it was just produced by a validated conversion). On inputs
    /// that don't, the inspector may return a typed execution error or
    /// silently produce garbage — it will not have its preconditions.
    ///
    /// # Errors
    /// Same contract as [`Conversion::run_matrix`], minus
    /// [`RunError::InvalidInput`].
    pub fn run_matrix_unchecked<'a>(
        &self,
        m: impl Into<MatrixRef<'a>>,
    ) -> Result<(AnyMatrix, ExecStats), RunError> {
        let m = m.into();
        let (nr, nc) = m.dims();
        let mut env = RtEnv::new();
        bind_matrix(&mut env, &self.synth.src, m)?;
        let stats = self.execute_env(&mut env)?;
        let out = extract_matrix(&mut env, &self.synth.dst, nr, nc)?;
        Ok((out, stats))
    }

    /// [`Conversion::run_matrix_unchecked`] with interpreter statistics
    /// compiled out: the engine's interpreter hot path. Same conversion
    /// semantics; only the [`ExecStats`] counters are dropped.
    ///
    /// # Errors
    /// Same contract as [`Conversion::run_matrix_unchecked`].
    pub fn run_matrix_quiet<'a>(
        &self,
        m: impl Into<MatrixRef<'a>>,
    ) -> Result<AnyMatrix, RunError> {
        self.run_matrix_observed(m, 0, &sparse_obs::NoopSubscriber)
    }

    /// [`Conversion::run_matrix_quiet`] emitting `interp` and `extract`
    /// stage spans into `obs` (keyed by the caller's `pair` plan
    /// fingerprint). This is the engine's instrumented interpreter path;
    /// a [`sparse_obs::NoopSubscriber`] makes it behaviorally identical
    /// to the quiet variant.
    ///
    /// # Errors
    /// Same contract as [`Conversion::run_matrix_unchecked`].
    pub fn run_matrix_observed<'a>(
        &self,
        m: impl Into<MatrixRef<'a>>,
        pair: u64,
        obs: &dyn Subscriber,
    ) -> Result<AnyMatrix, RunError> {
        let m = m.into();
        let (nr, nc) = m.dims();
        let mut env = RtEnv::new();
        bind_matrix(&mut env, &self.synth.src, m)?;
        let t0 = Instant::now();
        let executed = self.execute_env_quiet(&mut env);
        obs.span(Span {
            stage: Stage::Interp,
            pair,
            nanos: t0.elapsed().as_nanos() as u64,
            ok: executed.is_ok(),
        });
        executed?;
        let t1 = Instant::now();
        let out = extract_matrix(&mut env, &self.synth.dst, nr, nc);
        obs.span(Span {
            stage: Stage::Extract,
            pair,
            nanos: t1.elapsed().as_nanos() as u64,
            ok: out.is_ok(),
        });
        out
    }

    /// Converts any order-3 tensor; the tensor analogue of
    /// [`Conversion::run_matrix`] (input validated first).
    ///
    /// # Errors
    /// Same contract as [`Conversion::run_matrix`].
    pub fn run_tensor<'a>(
        &self,
        t: impl Into<TensorRef<'a>>,
    ) -> Result<(AnyTensor, ExecStats), RunError> {
        let t = t.into();
        sparse_formats::validate_tensor(&self.synth.src, t)?;
        self.run_tensor_unchecked(t)
    }

    /// [`Conversion::run_tensor`] without the input-validation sweep;
    /// tensor analogue of [`Conversion::run_matrix_unchecked`].
    ///
    /// # Errors
    /// Same contract as [`Conversion::run_tensor`], minus
    /// [`RunError::InvalidInput`].
    pub fn run_tensor_unchecked<'a>(
        &self,
        t: impl Into<TensorRef<'a>>,
    ) -> Result<(AnyTensor, ExecStats), RunError> {
        let t = t.into();
        let dims = t.dims();
        let mut env = RtEnv::new();
        bind_tensor(&mut env, &self.synth.src, t)?;
        let stats = self.execute_env(&mut env)?;
        let out = extract_tensor(&mut env, &self.synth.dst, dims)?;
        Ok((out, stats))
    }

    /// Order-3 analogue of [`Conversion::run_matrix_quiet`].
    ///
    /// # Errors
    /// Same contract as [`Conversion::run_tensor_unchecked`].
    pub fn run_tensor_quiet<'a>(
        &self,
        t: impl Into<TensorRef<'a>>,
    ) -> Result<AnyTensor, RunError> {
        self.run_tensor_observed(t, 0, &sparse_obs::NoopSubscriber)
    }

    /// Order-3 analogue of [`Conversion::run_matrix_observed`].
    ///
    /// # Errors
    /// Same contract as [`Conversion::run_tensor_unchecked`].
    pub fn run_tensor_observed<'a>(
        &self,
        t: impl Into<TensorRef<'a>>,
        pair: u64,
        obs: &dyn Subscriber,
    ) -> Result<AnyTensor, RunError> {
        let t = t.into();
        let dims = t.dims();
        let mut env = RtEnv::new();
        bind_tensor(&mut env, &self.synth.src, t)?;
        let t0 = Instant::now();
        let executed = self.execute_env_quiet(&mut env);
        obs.span(Span {
            stage: Stage::Interp,
            pair,
            nanos: t0.elapsed().as_nanos() as u64,
            ok: executed.is_ok(),
        });
        executed?;
        let t1 = Instant::now();
        let out = extract_tensor(&mut env, &self.synth.dst, dims);
        obs.span(Span {
            stage: Stage::Extract,
            pair,
            nanos: t1.elapsed().as_nanos() as u64,
            ok: out.is_ok(),
        });
        out
    }

    /// Converts a COO matrix to CSR (destination descriptor must be
    /// CSR-shaped).
    ///
    /// # Errors
    /// Propagates execution errors and output validation failures.
    pub fn run_coo_to_csr(&self, m: &CooMatrix) -> Result<(CsrMatrix, ExecStats), RunError> {
        let (out, stats) = self.run_matrix(m)?;
        Ok((expect_csr(out)?, stats))
    }

    /// Converts a COO matrix to CSC.
    ///
    /// # Errors
    /// Propagates execution errors and output validation failures.
    pub fn run_coo_to_csc(&self, m: &CooMatrix) -> Result<(CscMatrix, ExecStats), RunError> {
        let (out, stats) = self.run_matrix(m)?;
        Ok((expect_csc(out)?, stats))
    }

    /// Converts a CSR matrix to CSC.
    ///
    /// # Errors
    /// Propagates execution errors and output validation failures.
    pub fn run_csr_to_csc(&self, m: &CsrMatrix) -> Result<(CscMatrix, ExecStats), RunError> {
        let (out, stats) = self.run_matrix(m)?;
        Ok((expect_csc(out)?, stats))
    }

    /// Converts a CSR matrix to COO.
    ///
    /// # Errors
    /// Propagates execution errors and output validation failures.
    pub fn run_csr_to_coo(&self, m: &CsrMatrix) -> Result<(CooMatrix, ExecStats), RunError> {
        let (out, stats) = self.run_matrix(m)?;
        Ok((expect_coo(out)?, stats))
    }

    /// Converts a COO matrix to DIA.
    ///
    /// # Errors
    /// Propagates execution errors and output validation failures.
    pub fn run_coo_to_dia(&self, m: &CooMatrix) -> Result<(DiaMatrix, ExecStats), RunError> {
        let (out, stats) = self.run_matrix(m)?;
        match out {
            AnyMatrix::Dia(d) => Ok((d, stats)),
            other => Err(unexpected_output("dia", other.label())),
        }
    }

    /// Converts a COO matrix to Morton-ordered COO.
    ///
    /// # Errors
    /// Propagates execution errors and output validation failures.
    pub fn run_coo_to_mcoo(
        &self,
        m: &CooMatrix,
    ) -> Result<(MortonCooMatrix, ExecStats), RunError> {
        let (out, stats) = self.run_matrix(m)?;
        match out {
            AnyMatrix::MortonCoo(mc) => Ok((mc, stats)),
            other => Err(unexpected_output("mcoo", other.label())),
        }
    }

    /// Converts a COO matrix to sorted COO (row-major).
    ///
    /// # Errors
    /// Propagates execution errors and output validation failures.
    pub fn run_coo_to_scoo(&self, m: &CooMatrix) -> Result<(CooMatrix, ExecStats), RunError> {
        let (out, stats) = self.run_matrix(m)?;
        Ok((expect_coo(out)?, stats))
    }

    /// Converts a CSC matrix to CSR.
    ///
    /// # Errors
    /// Propagates execution errors and output validation failures.
    pub fn run_csc_to_csr(&self, m: &CscMatrix) -> Result<(CsrMatrix, ExecStats), RunError> {
        let (out, stats) = self.run_matrix(m)?;
        Ok((expect_csr(out)?, stats))
    }

    /// Converts a CSC matrix to COO (kept in the source's column-major
    /// order).
    ///
    /// # Errors
    /// Propagates execution errors and output validation failures.
    pub fn run_csc_to_coo(&self, m: &CscMatrix) -> Result<(CooMatrix, ExecStats), RunError> {
        let (out, stats) = self.run_matrix(m)?;
        Ok((expect_coo(out)?, stats))
    }

    /// Converts an ELL matrix to CSR (compacting the padding).
    ///
    /// # Errors
    /// Propagates execution errors and output validation failures.
    pub fn run_ell_to_csr(&self, m: &EllMatrix) -> Result<(CsrMatrix, ExecStats), RunError> {
        let (out, stats) = self.run_matrix(m)?;
        Ok((expect_csr(out)?, stats))
    }

    /// Converts an ELL matrix to COO.
    ///
    /// # Errors
    /// Propagates execution errors and output validation failures.
    pub fn run_ell_to_coo(&self, m: &EllMatrix) -> Result<(CooMatrix, ExecStats), RunError> {
        let (out, stats) = self.run_matrix(m)?;
        Ok((expect_coo(out)?, stats))
    }

    /// Converts an order-3 COO tensor to Morton-ordered COO3.
    ///
    /// # Errors
    /// Propagates execution errors and output validation failures.
    pub fn run_coo3_to_mcoo3(
        &self,
        t: &Coo3Tensor,
    ) -> Result<(MortonCoo3Tensor, ExecStats), RunError> {
        let (out, stats) = self.run_tensor(t)?;
        match out {
            AnyTensor::MortonCoo3(mt) => Ok((mt, stats)),
            AnyTensor::Coo3(_) => Err(unexpected_output("mcoo3", "coo3")),
        }
    }
}

fn unexpected_output(wanted: &str, got: &str) -> RunError {
    RunError::Unsupported(format!(
        "destination descriptor produced `{got}`, caller expected `{wanted}`"
    ))
}

fn expect_coo(out: AnyMatrix) -> Result<CooMatrix, RunError> {
    match out {
        AnyMatrix::Coo(m) => Ok(m),
        other => Err(unexpected_output("coo", other.label())),
    }
}

fn expect_csr(out: AnyMatrix) -> Result<CsrMatrix, RunError> {
    match out {
        AnyMatrix::Csr(m) => Ok(m),
        other => Err(unexpected_output("csr", other.label())),
    }
}

fn expect_csc(out: AnyMatrix) -> Result<CscMatrix, RunError> {
    match out {
        AnyMatrix::Csc(m) => Ok(m),
        other => Err(unexpected_output("csc", other.label())),
    }
}

/// Binds any rank-2 container as the conversion source, dispatching on
/// the *descriptor's* structural kind and checking that the container
/// matches it. Coordinate-kind descriptors (COO, sorted COO, Morton COO)
/// accept either a bare [`CooMatrix`] or a [`MortonCooMatrix`] — the
/// storage is identical; ordering is the descriptor's claim.
///
/// Binding is zero-copy: every index/data array enters the environment as
/// a borrowed `Cow` slice, so the cost is O(1) per array regardless of
/// `nnz`; the interpreter clones an array only if the plan writes to it.
///
/// # Errors
/// Returns [`RunError::Unsupported`] on a kind/container mismatch.
pub fn bind_matrix<'a>(
    env: &mut RtEnv<'a>,
    desc: &FormatDescriptor,
    m: MatrixRef<'a>,
) -> Result<(), RunError> {
    let kind = desc.kind();
    match (kind, m) {
        (FormatKind::Coo | FormatKind::SortedCoo | FormatKind::MortonCoo, MatrixRef::Coo(c)) => {
            bind_coo(env, desc, c)?;
        }
        (
            FormatKind::Coo | FormatKind::SortedCoo | FormatKind::MortonCoo,
            MatrixRef::MortonCoo(mc),
        ) => {
            bind_coo(env, desc, &mc.coo)?;
        }
        (FormatKind::Csr, MatrixRef::Csr(c)) => bind_csr(env, desc, c)?,
        (FormatKind::Csc, MatrixRef::Csc(c)) => bind_csc(env, desc, c)?,
        (FormatKind::Dia, MatrixRef::Dia(d)) => bind_dia(env, desc, d)?,
        (FormatKind::Ell, MatrixRef::Ell(e)) => bind_ell(env, desc, e)?,
        (kind, m) => {
            return Err(RunError::Unsupported(format!(
                "cannot bind `{}` input under source descriptor `{}` (kind {kind:?})",
                m.label(),
                desc.name
            )))
        }
    }
    Ok(())
}

/// Binds any order-3 container as the conversion source; tensor analogue
/// of [`bind_matrix`].
///
/// # Errors
/// Returns [`RunError::Unsupported`] on a kind/container mismatch.
pub fn bind_tensor<'a>(
    env: &mut RtEnv<'a>,
    desc: &FormatDescriptor,
    t: TensorRef<'a>,
) -> Result<(), RunError> {
    let kind = desc.kind();
    match (kind, t) {
        (FormatKind::Coo3 | FormatKind::MortonCoo3, TensorRef::Coo3(c)) => {
            bind_coo3(env, desc, c)?;
        }
        (FormatKind::Coo3 | FormatKind::MortonCoo3, TensorRef::MortonCoo3(mc)) => {
            bind_coo3(env, desc, &mc.coo)?;
        }
        (kind, t) => {
            return Err(RunError::Unsupported(format!(
                "cannot bind `{}` input under source descriptor `{}` (kind {kind:?})",
                t.label(),
                desc.name
            )))
        }
    }
    Ok(())
}

/// Extracts whichever rank-2 container the destination descriptor's
/// structural kind calls for, validating format invariants (including the
/// Morton-order quantifier for Morton destinations).
///
/// # Errors
/// Fails on missing outputs, invariant violations, or a destination kind
/// with no extractor (ELL destinations are outside the synthesizable
/// fragment: the padded width `ELLW` is not produced by the inspector).
pub fn extract_matrix(
    env: &mut RtEnv<'_>,
    desc: &FormatDescriptor,
    nr: usize,
    nc: usize,
) -> Result<AnyMatrix, RunError> {
    match desc.kind() {
        FormatKind::Coo | FormatKind::SortedCoo => {
            Ok(AnyMatrix::Coo(extract_coo(env, desc, nr, nc)?))
        }
        FormatKind::MortonCoo => {
            let coo = extract_coo(env, desc, nr, nc)?;
            Ok(AnyMatrix::MortonCoo(MortonCooMatrix::new(coo)?))
        }
        FormatKind::Csr => Ok(AnyMatrix::Csr(extract_csr(env, desc, nr, nc)?)),
        FormatKind::Csc => Ok(AnyMatrix::Csc(extract_csc(env, desc, nr, nc)?)),
        FormatKind::Dia => Ok(AnyMatrix::Dia(extract_dia(env, desc, nr, nc)?)),
        kind => Err(RunError::Unsupported(format!(
            "no extractor for destination descriptor `{}` (kind {kind:?})",
            desc.name
        ))),
    }
}

/// Extracts whichever order-3 container the destination descriptor's
/// structural kind calls for; tensor analogue of [`extract_matrix`].
///
/// # Errors
/// Fails on missing outputs, invariant violations, or an unsupported
/// destination kind.
pub fn extract_tensor(
    env: &mut RtEnv<'_>,
    desc: &FormatDescriptor,
    dims: (usize, usize, usize),
) -> Result<AnyTensor, RunError> {
    match desc.kind() {
        FormatKind::Coo3 => Ok(AnyTensor::Coo3(extract_coo3(env, desc, dims)?)),
        FormatKind::MortonCoo3 => {
            let coo = extract_coo3(env, desc, dims)?;
            Ok(AnyTensor::MortonCoo3(MortonCoo3Tensor::new(coo)?))
        }
        kind => Err(RunError::Unsupported(format!(
            "no tensor extractor for destination descriptor `{}` (kind {kind:?})",
            desc.name
        ))),
    }
}

fn dims_to_env(env: &mut RtEnv<'_>, desc: &FormatDescriptor, dims: &[usize], nnz: usize) {
    for (sym, &d) in desc.dim_syms.iter().zip(dims) {
        env.syms.insert(sym.clone(), d as i64);
    }
    env.syms.insert(desc.nnz_sym.clone(), nnz as i64);
}

/// The coordinate UF a binding/extraction needs, or a typed error when
/// the descriptor has no UF at that dimension (too few entries, or an
/// uncompressed `None` slot).
fn coord_uf(desc: &FormatDescriptor, d: usize, role: &str) -> Result<String, RunError> {
    desc.coord_ufs.get(d).and_then(Clone::clone).ok_or_else(|| {
        RunError::Descriptor(format!(
            "descriptor `{}` has no {role} (coord_ufs[{d}] is absent)",
            desc.name
        ))
    })
}

/// The descriptor's pointer UF (the monotonic one), or a typed error for
/// descriptors without one.
fn pointer_uf(desc: &FormatDescriptor) -> Result<String, RunError> {
    desc.ufs
        .iter()
        .find(|s| s.monotonicity.is_some())
        .map(|s| s.name.clone())
        .ok_or_else(|| {
            RunError::Descriptor(format!(
                "descriptor `{}` declares no monotonic pointer UF",
                desc.name
            ))
        })
}

/// The descriptor's sole layout UF (ELL column slots, DIA offsets).
fn sole_uf(desc: &FormatDescriptor, role: &str) -> Result<String, RunError> {
    desc.ufs.iter().next().map(|s| s.name.clone()).ok_or_else(|| {
        RunError::Descriptor(format!("descriptor `{}` declares no {role} UF", desc.name))
    })
}

/// The descriptor's `i`-th extra symbol (ELL width, DIA diagonal count).
fn extra_sym(desc: &FormatDescriptor, i: usize, role: &str) -> Result<String, RunError> {
    desc.extra_syms.get(i).cloned().ok_or_else(|| {
        RunError::Descriptor(format!(
            "descriptor `{}` has no {role} symbol (extra_syms[{i}] is absent)",
            desc.name
        ))
    })
}

/// Binds a COO matrix under the descriptor's names (coordinate UFs from
/// `coord_ufs`, data under `data_name`).
///
/// # Errors
/// Returns [`RunError::Descriptor`] if the descriptor lacks row/column
/// coordinate UFs.
pub fn bind_coo<'a>(
    env: &mut RtEnv<'a>,
    desc: &FormatDescriptor,
    m: &'a CooMatrix,
) -> Result<(), RunError> {
    dims_to_env(env, desc, &[m.nr, m.nc], m.nnz());
    let row = coord_uf(desc, 0, "row UF")?;
    let col = coord_uf(desc, 1, "column UF")?;
    env.ufs.insert(row, Cow::Borrowed(&m.row[..]));
    env.ufs.insert(col, Cow::Borrowed(&m.col[..]));
    env.data.insert(desc.data_name.clone(), Cow::Borrowed(&m.val[..]));
    Ok(())
}

/// Binds an order-3 COO tensor.
///
/// # Errors
/// Returns [`RunError::Descriptor`] if any of the three mode UFs is
/// absent.
pub fn bind_coo3<'a>(
    env: &mut RtEnv<'a>,
    desc: &FormatDescriptor,
    t: &'a Coo3Tensor,
) -> Result<(), RunError> {
    dims_to_env(env, desc, &[t.nr, t.nc, t.nz], t.nnz());
    let u0 = coord_uf(desc, 0, "mode-0 UF")?;
    let u1 = coord_uf(desc, 1, "mode-1 UF")?;
    let u2 = coord_uf(desc, 2, "mode-2 UF")?;
    env.ufs.insert(u0, Cow::Borrowed(&t.i0[..]));
    env.ufs.insert(u1, Cow::Borrowed(&t.i1[..]));
    env.ufs.insert(u2, Cow::Borrowed(&t.i2[..]));
    env.data.insert(desc.data_name.clone(), Cow::Borrowed(&t.val[..]));
    Ok(())
}

/// Binds a CSR matrix under the descriptor's names.
///
/// # Errors
/// Returns [`RunError::Descriptor`] without a pointer or column UF.
pub fn bind_csr<'a>(
    env: &mut RtEnv<'a>,
    desc: &FormatDescriptor,
    m: &'a CsrMatrix,
) -> Result<(), RunError> {
    dims_to_env(env, desc, &[m.nr, m.nc], m.nnz());
    env.ufs.insert(pointer_uf(desc)?, Cow::Borrowed(&m.rowptr[..]));
    let col = coord_uf(desc, 1, "column UF")?;
    env.ufs.insert(col, Cow::Borrowed(&m.col[..]));
    env.data.insert(desc.data_name.clone(), Cow::Borrowed(&m.val[..]));
    Ok(())
}

/// Binds an ELL matrix under the descriptor's names (padded slot layout:
/// `ellcol`, data, and the `ELLW` width symbol; `NNZ` is the *actual*
/// nonzero count, excluding padding).
///
/// # Errors
/// Returns [`RunError::Descriptor`] without a column UF or width symbol.
pub fn bind_ell<'a>(
    env: &mut RtEnv<'a>,
    desc: &FormatDescriptor,
    m: &'a EllMatrix,
) -> Result<(), RunError> {
    // stored_nnz (not to_coo) so a corrupt container cannot index
    // out of bounds before the interpreter's own bounds checks run.
    dims_to_env(env, desc, &[m.nr, m.nc], m.stored_nnz());
    env.syms.insert(extra_sym(desc, 0, "padded width")?, m.width as i64);
    env.ufs.insert(sole_uf(desc, "column slot")?, Cow::Borrowed(&m.col[..]));
    env.data.insert(desc.data_name.clone(), Cow::Borrowed(&m.data[..]));
    Ok(())
}

/// Binds a DIA matrix under the descriptor's names (for executor use:
/// `off`, the data block, and the `ND` symbol).
///
/// # Errors
/// Returns [`RunError::Descriptor`] without an offset UF or diagonal
/// count symbol.
pub fn bind_dia<'a>(
    env: &mut RtEnv<'a>,
    desc: &FormatDescriptor,
    m: &'a DiaMatrix,
) -> Result<(), RunError> {
    // stored_nnz (not to_coo) so a corrupt container cannot index
    // out of bounds before the interpreter's own bounds checks run.
    dims_to_env(env, desc, &[m.nr, m.nc], m.stored_nnz());
    env.syms.insert(extra_sym(desc, 0, "diagonal count")?, m.nd() as i64);
    env.ufs.insert(sole_uf(desc, "offset")?, Cow::Borrowed(&m.off[..]));
    env.data.insert(desc.data_name.clone(), Cow::Borrowed(&m.data[..]));
    Ok(())
}

/// Binds a CSC matrix under the descriptor's names.
///
/// # Errors
/// Returns [`RunError::Descriptor`] without a pointer or row UF.
pub fn bind_csc<'a>(
    env: &mut RtEnv<'a>,
    desc: &FormatDescriptor,
    m: &'a CscMatrix,
) -> Result<(), RunError> {
    dims_to_env(env, desc, &[m.nr, m.nc], m.nnz());
    env.ufs.insert(pointer_uf(desc)?, Cow::Borrowed(&m.colptr[..]));
    let row = coord_uf(desc, 0, "row UF")?;
    env.ufs.insert(row, Cow::Borrowed(&m.row[..]));
    env.data.insert(desc.data_name.clone(), Cow::Borrowed(&m.val[..]));
    Ok(())
}

// Extraction removes the array from the environment: inspector-produced
// outputs are `Cow::Owned`, making this an O(1) move rather than a clone.
fn take_uf(env: &mut RtEnv<'_>, name: &str) -> Result<Vec<i64>, RunError> {
    env.take_uf(name)
        .ok_or_else(|| RunError::MissingOutput(name.to_string()))
}

fn take_data(env: &mut RtEnv<'_>, name: &str) -> Result<Vec<f64>, RunError> {
    env.take_data(name)
        .ok_or_else(|| RunError::MissingOutput(name.to_string()))
}

/// Extracts a (validated) CSR matrix written under `desc`'s names.
///
/// # Errors
/// Fails on missing outputs or invariant violations.
pub fn extract_csr(
    env: &mut RtEnv<'_>,
    desc: &FormatDescriptor,
    nr: usize,
    nc: usize,
) -> Result<CsrMatrix, RunError> {
    let rowptr = take_uf(env, &pointer_uf(desc)?)?;
    let col = take_uf(env, &coord_uf(desc, 1, "column UF")?)?;
    let val = take_data(env, &desc.data_name)?;
    Ok(CsrMatrix::new(nr, nc, rowptr, col, val)?)
}

/// Extracts a (validated) CSC matrix.
///
/// # Errors
/// Fails on missing outputs or invariant violations.
pub fn extract_csc(
    env: &mut RtEnv<'_>,
    desc: &FormatDescriptor,
    nr: usize,
    nc: usize,
) -> Result<CscMatrix, RunError> {
    let colptr = take_uf(env, &pointer_uf(desc)?)?;
    let row = take_uf(env, &coord_uf(desc, 0, "row UF")?)?;
    let val = take_data(env, &desc.data_name)?;
    Ok(CscMatrix::new(nr, nc, colptr, row, val)?)
}

/// Extracts a (validated) COO matrix.
///
/// # Errors
/// Fails on missing outputs or invariant violations.
pub fn extract_coo(
    env: &mut RtEnv<'_>,
    desc: &FormatDescriptor,
    nr: usize,
    nc: usize,
) -> Result<CooMatrix, RunError> {
    let row = take_uf(env, &coord_uf(desc, 0, "row UF")?)?;
    let col = take_uf(env, &coord_uf(desc, 1, "column UF")?)?;
    let val = take_data(env, &desc.data_name)?;
    Ok(CooMatrix::from_triplets(nr, nc, row, col, val)?)
}

/// Extracts a (validated) order-3 COO tensor.
///
/// # Errors
/// Fails on missing outputs or invariant violations.
pub fn extract_coo3(
    env: &mut RtEnv<'_>,
    desc: &FormatDescriptor,
    dims: (usize, usize, usize),
) -> Result<Coo3Tensor, RunError> {
    let i0 = take_uf(env, &coord_uf(desc, 0, "mode-0 UF")?)?;
    let i1 = take_uf(env, &coord_uf(desc, 1, "mode-1 UF")?)?;
    let i2 = take_uf(env, &coord_uf(desc, 2, "mode-2 UF")?)?;
    let val = take_data(env, &desc.data_name)?;
    Ok(Coo3Tensor::from_coords(dims, i0, i1, i2, val)?)
}

/// Extracts a (validated) DIA matrix.
///
/// # Errors
/// Fails on missing outputs or invariant violations.
pub fn extract_dia(
    env: &mut RtEnv<'_>,
    desc: &FormatDescriptor,
    nr: usize,
    nc: usize,
) -> Result<DiaMatrix, RunError> {
    let off = take_uf(env, &sole_uf(desc, "offset")?)?;
    let data = take_data(env, &desc.data_name)?;
    Ok(DiaMatrix::new(nr, nc, off, data)?)
}

/// Convenience: synthesize with `options` and convert in one call.
///
/// # Errors
/// Propagates synthesis and execution failures.
pub fn convert_coo_to_csr(
    src: &FormatDescriptor,
    dst: &FormatDescriptor,
    m: &CooMatrix,
    options: SynthesisOptions,
) -> Result<CsrMatrix, RunError> {
    let conv = Conversion::new(src, dst, options)?;
    Ok(conv.run_coo_to_csr(m)?.0)
}
