//! Executing synthesized conversions on real tensors: binding runtime
//! containers into the interpreter environment by their descriptor's UF
//! names, running the compiled inspector, and extracting the destination
//! container.

use std::fmt;

use sparse_formats::{
    Coo3Tensor, CooMatrix, CscMatrix, CsrMatrix, DiaMatrix, EllMatrix,
    FormatDescriptor, FormatError, MortonCoo3Tensor, MortonCooMatrix,
};
use spf_codegen::interp::{ExecError, ExecStats};
use spf_codegen::runtime::RtEnv;
use spf_computation::{Compiled, ComparatorRegistry};

use crate::synthesize::{
    synthesize, SynthesisError, SynthesisOptions, SynthesizedConversion,
};

/// Errors raised while running a conversion.
#[derive(Debug)]
pub enum RunError {
    /// Synthesis failed.
    Synthesis(SynthesisError),
    /// Execution failed.
    Exec(ExecError),
    /// The produced destination data violates the format's invariants
    /// (this would indicate a synthesis bug).
    Format(FormatError),
    /// A name expected in the environment after execution is missing.
    MissingOutput(String),
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Synthesis(e) => write!(f, "synthesis: {e}"),
            RunError::Exec(e) => write!(f, "execution: {e}"),
            RunError::Format(e) => write!(f, "invalid output: {e}"),
            RunError::MissingOutput(n) => write!(f, "missing output `{n}`"),
        }
    }
}

impl std::error::Error for RunError {}

impl From<SynthesisError> for RunError {
    fn from(e: SynthesisError) -> Self {
        RunError::Synthesis(e)
    }
}

impl From<ExecError> for RunError {
    fn from(e: ExecError) -> Self {
        RunError::Exec(e)
    }
}

impl From<FormatError> for RunError {
    fn from(e: FormatError) -> Self {
        RunError::Format(e)
    }
}

/// A synthesized, compiled, ready-to-run conversion.
pub struct Conversion {
    /// The synthesis result (inspect `computation`, `composed`, `plan`).
    pub synth: SynthesizedConversion,
    compiled: Compiled,
    comparators: ComparatorRegistry,
}

impl Conversion {
    /// Synthesizes and compiles the conversion from `src` to `dst`.
    ///
    /// # Errors
    /// Propagates synthesis and lowering failures.
    pub fn new(
        src: &FormatDescriptor,
        dst: &FormatDescriptor,
        options: SynthesisOptions,
    ) -> Result<Self, RunError> {
        let synth = synthesize(src, dst, options)?;
        let compiled = synth.computation.lower().map_err(SynthesisError::Lower)?;
        Ok(Conversion { synth, compiled, comparators: ComparatorRegistry::new() })
    }

    /// Registers a user-defined comparator for `ListOrderSpec::Custom`
    /// order keys.
    pub fn register_comparator(
        &mut self,
        name: impl Into<String>,
        cmp: spf_codegen::runtime::CmpFn,
    ) {
        self.comparators.insert(name.into(), cmp);
    }

    /// Emits the synthesized inspector as C code.
    pub fn emit_c(&self) -> String {
        self.compiled.emit_c(&format!(
            "{}_to_{}",
            self.synth.src.name.to_lowercase(),
            self.synth.dst.name.to_lowercase()
        ))
    }

    /// Emits the synthesized inspector as a complete, compilable C99
    /// translation unit (prelude + `OrderedList` runtime + globals +
    /// function).
    pub fn emit_c_program(&self) -> String {
        self.compiled.emit_c_program(&format!(
            "{}_to_{}",
            self.synth.src.name.to_lowercase(),
            self.synth.dst.name.to_lowercase()
        ))
    }

    /// Runs the compiled inspector against a pre-populated environment.
    ///
    /// # Errors
    /// Propagates interpreter errors.
    pub fn execute_env(&self, env: &mut RtEnv) -> Result<ExecStats, RunError> {
        Ok(self.compiled.execute(env, &self.comparators)?)
    }

    /// Binds a COO matrix as the conversion source.
    pub fn bind_coo_source(&self, env: &mut RtEnv, m: &CooMatrix) {
        bind_coo(env, &self.synth.src, m);
    }

    /// Converts a COO matrix to CSR (destination descriptor must be
    /// CSR-shaped).
    ///
    /// # Errors
    /// Propagates execution errors and output validation failures.
    pub fn run_coo_to_csr(&self, m: &CooMatrix) -> Result<(CsrMatrix, ExecStats), RunError> {
        let mut env = RtEnv::new();
        bind_coo(&mut env, &self.synth.src, m);
        let stats = self.execute_env(&mut env)?;
        let out = extract_csr(&env, &self.synth.dst, m.nr, m.nc)?;
        Ok((out, stats))
    }

    /// Converts a COO matrix to CSC.
    ///
    /// # Errors
    /// Propagates execution errors and output validation failures.
    pub fn run_coo_to_csc(&self, m: &CooMatrix) -> Result<(CscMatrix, ExecStats), RunError> {
        let mut env = RtEnv::new();
        bind_coo(&mut env, &self.synth.src, m);
        let stats = self.execute_env(&mut env)?;
        let out = extract_csc(&env, &self.synth.dst, m.nr, m.nc)?;
        Ok((out, stats))
    }

    /// Converts a CSR matrix to CSC.
    ///
    /// # Errors
    /// Propagates execution errors and output validation failures.
    pub fn run_csr_to_csc(&self, m: &CsrMatrix) -> Result<(CscMatrix, ExecStats), RunError> {
        let mut env = RtEnv::new();
        bind_csr(&mut env, &self.synth.src, m);
        let stats = self.execute_env(&mut env)?;
        let out = extract_csc(&env, &self.synth.dst, m.nr, m.nc)?;
        Ok((out, stats))
    }

    /// Converts a CSR matrix to COO.
    ///
    /// # Errors
    /// Propagates execution errors and output validation failures.
    pub fn run_csr_to_coo(&self, m: &CsrMatrix) -> Result<(CooMatrix, ExecStats), RunError> {
        let mut env = RtEnv::new();
        bind_csr(&mut env, &self.synth.src, m);
        let stats = self.execute_env(&mut env)?;
        let out = extract_coo(&env, &self.synth.dst, m.nr, m.nc)?;
        Ok((out, stats))
    }

    /// Converts a COO matrix to DIA.
    ///
    /// # Errors
    /// Propagates execution errors and output validation failures.
    pub fn run_coo_to_dia(&self, m: &CooMatrix) -> Result<(DiaMatrix, ExecStats), RunError> {
        let mut env = RtEnv::new();
        bind_coo(&mut env, &self.synth.src, m);
        let stats = self.execute_env(&mut env)?;
        let out = extract_dia(&env, &self.synth.dst, m.nr, m.nc)?;
        Ok((out, stats))
    }

    /// Converts a COO matrix to Morton-ordered COO.
    ///
    /// # Errors
    /// Propagates execution errors and output validation failures.
    pub fn run_coo_to_mcoo(
        &self,
        m: &CooMatrix,
    ) -> Result<(MortonCooMatrix, ExecStats), RunError> {
        let mut env = RtEnv::new();
        bind_coo(&mut env, &self.synth.src, m);
        let stats = self.execute_env(&mut env)?;
        let out = extract_coo(&env, &self.synth.dst, m.nr, m.nc)?;
        Ok((MortonCooMatrix::new(out)?, stats))
    }

    /// Converts a COO matrix to sorted COO (row-major).
    ///
    /// # Errors
    /// Propagates execution errors and output validation failures.
    pub fn run_coo_to_scoo(&self, m: &CooMatrix) -> Result<(CooMatrix, ExecStats), RunError> {
        let mut env = RtEnv::new();
        bind_coo(&mut env, &self.synth.src, m);
        let stats = self.execute_env(&mut env)?;
        let out = extract_coo(&env, &self.synth.dst, m.nr, m.nc)?;
        Ok((out, stats))
    }

    /// Converts a CSC matrix to CSR.
    ///
    /// # Errors
    /// Propagates execution errors and output validation failures.
    pub fn run_csc_to_csr(&self, m: &CscMatrix) -> Result<(CsrMatrix, ExecStats), RunError> {
        let mut env = RtEnv::new();
        bind_csc(&mut env, &self.synth.src, m);
        let stats = self.execute_env(&mut env)?;
        let out = extract_csr(&env, &self.synth.dst, m.nr, m.nc)?;
        Ok((out, stats))
    }

    /// Converts a CSC matrix to COO (kept in the source's column-major
    /// order).
    ///
    /// # Errors
    /// Propagates execution errors and output validation failures.
    pub fn run_csc_to_coo(&self, m: &CscMatrix) -> Result<(CooMatrix, ExecStats), RunError> {
        let mut env = RtEnv::new();
        bind_csc(&mut env, &self.synth.src, m);
        let stats = self.execute_env(&mut env)?;
        let out = extract_coo(&env, &self.synth.dst, m.nr, m.nc)?;
        Ok((out, stats))
    }

    /// Converts an ELL matrix to CSR (compacting the padding).
    ///
    /// # Errors
    /// Propagates execution errors and output validation failures.
    pub fn run_ell_to_csr(&self, m: &EllMatrix) -> Result<(CsrMatrix, ExecStats), RunError> {
        let mut env = RtEnv::new();
        bind_ell(&mut env, &self.synth.src, m);
        let stats = self.execute_env(&mut env)?;
        let out = extract_csr(&env, &self.synth.dst, m.nr, m.nc)?;
        Ok((out, stats))
    }

    /// Converts an ELL matrix to COO.
    ///
    /// # Errors
    /// Propagates execution errors and output validation failures.
    pub fn run_ell_to_coo(&self, m: &EllMatrix) -> Result<(CooMatrix, ExecStats), RunError> {
        let mut env = RtEnv::new();
        bind_ell(&mut env, &self.synth.src, m);
        let stats = self.execute_env(&mut env)?;
        let out = extract_coo(&env, &self.synth.dst, m.nr, m.nc)?;
        Ok((out, stats))
    }

    /// Converts an order-3 COO tensor to Morton-ordered COO3.
    ///
    /// # Errors
    /// Propagates execution errors and output validation failures.
    pub fn run_coo3_to_mcoo3(
        &self,
        t: &Coo3Tensor,
    ) -> Result<(MortonCoo3Tensor, ExecStats), RunError> {
        let mut env = RtEnv::new();
        bind_coo3(&mut env, &self.synth.src, t);
        let stats = self.execute_env(&mut env)?;
        let out = extract_coo3(&env, &self.synth.dst, (t.nr, t.nc, t.nz))?;
        Ok((MortonCoo3Tensor::new(out)?, stats))
    }
}

fn dims_to_env(env: &mut RtEnv, desc: &FormatDescriptor, dims: &[usize], nnz: usize) {
    for (sym, &d) in desc.dim_syms.iter().zip(dims) {
        env.syms.insert(sym.clone(), d as i64);
    }
    env.syms.insert(desc.nnz_sym.clone(), nnz as i64);
}

/// Binds a COO matrix under the descriptor's names (coordinate UFs from
/// `coord_ufs`, data under `data_name`).
pub fn bind_coo(env: &mut RtEnv, desc: &FormatDescriptor, m: &CooMatrix) {
    dims_to_env(env, desc, &[m.nr, m.nc], m.nnz());
    let row = desc.coord_ufs[0].clone().expect("COO row UF");
    let col = desc.coord_ufs[1].clone().expect("COO col UF");
    env.ufs.insert(row, m.row.clone());
    env.ufs.insert(col, m.col.clone());
    env.data.insert(desc.data_name.clone(), m.val.clone());
}

/// Binds an order-3 COO tensor.
pub fn bind_coo3(env: &mut RtEnv, desc: &FormatDescriptor, t: &Coo3Tensor) {
    dims_to_env(env, desc, &[t.nr, t.nc, t.nz], t.nnz());
    let u0 = desc.coord_ufs[0].clone().expect("COO3 mode-0 UF");
    let u1 = desc.coord_ufs[1].clone().expect("COO3 mode-1 UF");
    let u2 = desc.coord_ufs[2].clone().expect("COO3 mode-2 UF");
    env.ufs.insert(u0, t.i0.clone());
    env.ufs.insert(u1, t.i1.clone());
    env.ufs.insert(u2, t.i2.clone());
    env.data.insert(desc.data_name.clone(), t.val.clone());
}

/// Finds the descriptor's pointer UF (the monotonic one).
fn pointer_uf(desc: &FormatDescriptor) -> String {
    desc.ufs
        .iter()
        .find(|s| s.monotonicity.is_some())
        .map(|s| s.name.clone())
        .expect("compressed format has a monotonic pointer UF")
}

/// Binds a CSR matrix under the descriptor's names.
pub fn bind_csr(env: &mut RtEnv, desc: &FormatDescriptor, m: &CsrMatrix) {
    dims_to_env(env, desc, &[m.nr, m.nc], m.nnz());
    env.ufs.insert(pointer_uf(desc), m.rowptr.clone());
    let col = desc.coord_ufs[1].clone().expect("CSR column UF");
    env.ufs.insert(col, m.col.clone());
    env.data.insert(desc.data_name.clone(), m.val.clone());
}

/// Binds an ELL matrix under the descriptor's names (padded slot layout:
/// `ellcol`, data, and the `ELLW` width symbol; `NNZ` is the *actual*
/// nonzero count, excluding padding).
pub fn bind_ell(env: &mut RtEnv, desc: &FormatDescriptor, m: &EllMatrix) {
    dims_to_env(env, desc, &[m.nr, m.nc], m.to_coo().nnz());
    env.syms.insert(desc.extra_syms[0].clone(), m.width as i64);
    let col_name = desc
        .ufs
        .iter()
        .next()
        .map(|s| s.name.clone())
        .expect("ELL has a column UF");
    env.ufs.insert(col_name, m.col.clone());
    env.data.insert(desc.data_name.clone(), m.data.clone());
}

/// Binds a DIA matrix under the descriptor's names (for executor use:
/// `off`, the data block, and the `ND` symbol).
pub fn bind_dia(env: &mut RtEnv, desc: &FormatDescriptor, m: &DiaMatrix) {
    dims_to_env(env, desc, &[m.nr, m.nc], m.to_coo().nnz());
    env.syms.insert(desc.extra_syms[0].clone(), m.nd() as i64);
    let off_name = desc
        .ufs
        .iter()
        .next()
        .map(|s| s.name.clone())
        .expect("DIA has an offset UF");
    env.ufs.insert(off_name, m.off.clone());
    env.data.insert(desc.data_name.clone(), m.data.clone());
}

/// Binds a CSC matrix under the descriptor's names.
pub fn bind_csc(env: &mut RtEnv, desc: &FormatDescriptor, m: &CscMatrix) {
    dims_to_env(env, desc, &[m.nr, m.nc], m.nnz());
    env.ufs.insert(pointer_uf(desc), m.colptr.clone());
    let row = desc.coord_ufs[0].clone().expect("CSC row UF");
    env.ufs.insert(row, m.row.clone());
    env.data.insert(desc.data_name.clone(), m.val.clone());
}

fn take_uf(env: &RtEnv, name: &str) -> Result<Vec<i64>, RunError> {
    env.ufs
        .get(name)
        .cloned()
        .ok_or_else(|| RunError::MissingOutput(name.to_string()))
}

fn take_data(env: &RtEnv, name: &str) -> Result<Vec<f64>, RunError> {
    env.data
        .get(name)
        .cloned()
        .ok_or_else(|| RunError::MissingOutput(name.to_string()))
}

/// Extracts a (validated) CSR matrix written under `desc`'s names.
///
/// # Errors
/// Fails on missing outputs or invariant violations.
pub fn extract_csr(
    env: &RtEnv,
    desc: &FormatDescriptor,
    nr: usize,
    nc: usize,
) -> Result<CsrMatrix, RunError> {
    let rowptr = take_uf(env, &pointer_uf(desc))?;
    let col = take_uf(env, desc.coord_ufs[1].as_ref().expect("CSR column UF"))?;
    let val = take_data(env, &desc.data_name)?;
    Ok(CsrMatrix::new(nr, nc, rowptr, col, val)?)
}

/// Extracts a (validated) CSC matrix.
///
/// # Errors
/// Fails on missing outputs or invariant violations.
pub fn extract_csc(
    env: &RtEnv,
    desc: &FormatDescriptor,
    nr: usize,
    nc: usize,
) -> Result<CscMatrix, RunError> {
    let colptr = take_uf(env, &pointer_uf(desc))?;
    let row = take_uf(env, desc.coord_ufs[0].as_ref().expect("CSC row UF"))?;
    let val = take_data(env, &desc.data_name)?;
    Ok(CscMatrix::new(nr, nc, colptr, row, val)?)
}

/// Extracts a (validated) COO matrix.
///
/// # Errors
/// Fails on missing outputs or invariant violations.
pub fn extract_coo(
    env: &RtEnv,
    desc: &FormatDescriptor,
    nr: usize,
    nc: usize,
) -> Result<CooMatrix, RunError> {
    let row = take_uf(env, desc.coord_ufs[0].as_ref().expect("COO row UF"))?;
    let col = take_uf(env, desc.coord_ufs[1].as_ref().expect("COO col UF"))?;
    let val = take_data(env, &desc.data_name)?;
    Ok(CooMatrix::from_triplets(nr, nc, row, col, val)?)
}

/// Extracts a (validated) order-3 COO tensor.
///
/// # Errors
/// Fails on missing outputs or invariant violations.
pub fn extract_coo3(
    env: &RtEnv,
    desc: &FormatDescriptor,
    dims: (usize, usize, usize),
) -> Result<Coo3Tensor, RunError> {
    let i0 = take_uf(env, desc.coord_ufs[0].as_ref().expect("mode-0 UF"))?;
    let i1 = take_uf(env, desc.coord_ufs[1].as_ref().expect("mode-1 UF"))?;
    let i2 = take_uf(env, desc.coord_ufs[2].as_ref().expect("mode-2 UF"))?;
    let val = take_data(env, &desc.data_name)?;
    Ok(Coo3Tensor::from_coords(dims, i0, i1, i2, val)?)
}

/// Extracts a (validated) DIA matrix.
///
/// # Errors
/// Fails on missing outputs or invariant violations.
pub fn extract_dia(
    env: &RtEnv,
    desc: &FormatDescriptor,
    nr: usize,
    nc: usize,
) -> Result<DiaMatrix, RunError> {
    let off_name = desc
        .ufs
        .iter()
        .next()
        .map(|s| s.name.clone())
        .ok_or_else(|| RunError::MissingOutput("off".into()))?;
    let off = take_uf(env, &off_name)?;
    let data = take_data(env, &desc.data_name)?;
    Ok(DiaMatrix::new(nr, nc, off, data)?)
}

/// Convenience: synthesize with `options` and convert in one call.
///
/// # Errors
/// Propagates synthesis and execution failures.
pub fn convert_coo_to_csr(
    src: &FormatDescriptor,
    dst: &FormatDescriptor,
    m: &CooMatrix,
    options: SynthesisOptions,
) -> Result<CsrMatrix, RunError> {
    let conv = Conversion::new(src, dst, options)?;
    Ok(conv.run_coo_to_csr(m)?.0)
}
