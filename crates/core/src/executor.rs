//! Executor generation: computations *over* a sparse format, derived from
//! its descriptor.
//!
//! The paper's motivation for synthesizing conversions into the SPF-IR is
//! that "by directly synthesizing the sparse format code to SPF and
//! expressing the original computation in SPF, both can be optimized in
//! tandem". This module provides that other half: given any scannable
//! format descriptor, it generates the SpMV executor
//! `y[i] += A[data(n)] * x[j]` as an SPF computation over the format's
//! iteration space — so a conversion inspector and the executor that
//! consumes its output live in one representation.

use sparse_formats::FormatDescriptor;
use spf_computation::{Computation, Kernel, Stmt};
use spf_ir::expr::{LinExpr, VarId};
use spf_ir::formula::Set;

use crate::synthesize::SynthesisError;

/// Standard names used by generated executors.
pub mod names {
    /// Output vector data space.
    pub const Y: &str = "y";
    /// Input vector data space.
    pub const X: &str = "x";
}

/// Generates the SpMV executor `y = A x` for a (rank-2, scannable)
/// format: one pass over the format's own iteration space.
///
/// The result reads the format's index arrays and data array under their
/// descriptor names, reads `x`, and accumulates into `y` (which it
/// allocates to `NR` zeros).
///
/// # Errors
/// Fails for formats without a scan (e.g. DIA as stored here) or with a
/// rank other than 2.
pub fn spmv(desc: &FormatDescriptor) -> Result<Computation, SynthesisError> {
    if desc.rank != 2 {
        return Err(SynthesisError::RankMismatch { src: desc.rank, dst: 2 });
    }
    let scan = desc
        .scan
        .as_ref()
        .ok_or_else(|| SynthesisError::SourceNotScannable(desc.name.clone()))?;
    let mut comp = Computation::new();
    comp.add_stmt(Stmt::new(
        format!("alloc {}", names::Y),
        Kernel::DataAlloc {
            arr: names::Y.into(),
            size_factors: vec![LinExpr::sym(desc.dim_syms[0].clone())],
        },
        Set::universe(vec![]),
    ));
    let i = LinExpr::var(VarId(scan.dense_pos[0] as u32));
    let j = LinExpr::var(VarId(scan.dense_pos[1] as u32));
    comp.add_stmt(Stmt::new(
        format!("spmv over {}", desc.name),
        Kernel::DataAxpy {
            y: names::Y.into(),
            y_idx: i,
            a: desc.data_name.clone(),
            a_idx: scan.data_index.clone(),
            x: names::X.into(),
            x_idx: j,
        },
        scan.set.clone(),
    ));
    comp.mark_live(names::Y);
    Ok(comp)
}

/// Generates the mode-2 tensor-times-vector executor
/// `Y[i, j] += A[data(n)] * x[k]` for a rank-3 scannable format; the
/// output `Y` is a dense `NR × NC` row-major array.
///
/// # Errors
/// Fails for formats without a scan or with a rank other than 3.
pub fn ttv_mode2(desc: &FormatDescriptor) -> Result<Computation, SynthesisError> {
    if desc.rank != 3 {
        return Err(SynthesisError::RankMismatch { src: desc.rank, dst: 3 });
    }
    let scan = desc
        .scan
        .as_ref()
        .ok_or_else(|| SynthesisError::SourceNotScannable(desc.name.clone()))?;
    let mut comp = Computation::new();
    comp.add_stmt(Stmt::new(
        format!("alloc {}", names::Y),
        Kernel::DataAlloc {
            arr: names::Y.into(),
            size_factors: vec![
                LinExpr::sym(desc.dim_syms[0].clone()),
                LinExpr::sym(desc.dim_syms[1].clone()),
            ],
        },
        Set::universe(vec![]),
    ));
    let i = LinExpr::var(VarId(scan.dense_pos[0] as u32));
    let j = LinExpr::var(VarId(scan.dense_pos[1] as u32));
    let k = LinExpr::var(VarId(scan.dense_pos[2] as u32));
    // Y[i * NC + j]
    let y_idx = {
        let mut e = LinExpr::zero();
        e.add_assign(
            &i.mul_expr(&LinExpr::sym(desc.dim_syms[1].clone())),
        );
        e.add_assign(&j);
        e
    };
    comp.add_stmt(Stmt::new(
        format!("ttv(mode 2) over {}", desc.name),
        Kernel::DataAxpy {
            y: names::Y.into(),
            y_idx,
            a: desc.data_name.clone(),
            a_idx: scan.data_index.clone(),
            x: names::X.into(),
            x_idx: k,
        },
        scan.set.clone(),
    ));
    comp.mark_live(names::Y);
    Ok(comp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse_formats::descriptors;
    use sparse_formats::{Coo3Tensor, CooMatrix, CscMatrix, CsrMatrix, MortonCooMatrix};
    use spf_codegen::runtime::RtEnv;
    use spf_computation::ComparatorRegistry;

    fn sample() -> CooMatrix {
        CooMatrix::from_triplets(
            3,
            4,
            vec![0, 0, 1, 2],
            vec![0, 2, 3, 1],
            vec![1.0, 2.0, 3.0, 4.0],
        )
        .unwrap()
    }

    fn run_spmv(comp: &Computation, env: &mut RtEnv<'_>, x: &[f64]) -> Vec<f64> {
        env.data.insert(names::X.into(), x.to_vec().into());
        let compiled = comp.lower().unwrap();
        compiled.execute(env, &ComparatorRegistry::new()).unwrap();
        env.data[names::Y].to_vec()
    }

    #[test]
    fn spmv_over_coo_matches_container() {
        let coo = sample();
        let comp = spmv(&descriptors::scoo()).unwrap();
        let mut env = RtEnv::new();
        crate::run::bind_coo(&mut env, &descriptors::scoo(), &coo).unwrap();
        let x = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(run_spmv(&comp, &mut env, &x), coo.spmv(&x));
    }

    #[test]
    fn spmv_over_csr_matches_container() {
        let csr = CsrMatrix::from_coo(&sample());
        let comp = spmv(&descriptors::csr()).unwrap();
        let mut env = RtEnv::new();
        crate::run::bind_csr(&mut env, &descriptors::csr(), &csr).unwrap();
        let x = [1.0, -1.0, 0.5, 2.0];
        assert_eq!(run_spmv(&comp, &mut env, &x), csr.spmv(&x));
    }

    #[test]
    fn spmv_over_csc_matches_container() {
        let csc = CscMatrix::from_coo(&sample());
        let comp = spmv(&descriptors::csc()).unwrap();
        let mut env = RtEnv::new();
        crate::run::bind_csc(&mut env, &descriptors::csc(), &csc).unwrap();
        let x = [2.0, 0.0, 1.0, -1.0];
        assert_eq!(run_spmv(&comp, &mut env, &x), csc.spmv(&x));
    }

    #[test]
    fn spmv_over_mcoo_matches_container() {
        // Executor over the reordered format: the point of the paper's
        // mode-agnostic orderings.
        let m = MortonCooMatrix::from_coo(&sample());
        let comp = spmv(&descriptors::mcoo()).unwrap();
        let mut env = RtEnv::new();
        crate::run::bind_coo(&mut env, &descriptors::mcoo(), &m.coo).unwrap();
        let x = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(run_spmv(&comp, &mut env, &x), m.coo.spmv(&x));
    }

    #[test]
    fn ttv_over_coo3_matches_container() {
        let t = Coo3Tensor::from_coords(
            (2, 3, 4),
            vec![0, 1, 1],
            vec![2, 0, 2],
            vec![1, 3, 0],
            vec![1.0, 2.0, 3.0],
        )
        .unwrap();
        let comp = ttv_mode2(&descriptors::scoo3()).unwrap();
        let mut env = RtEnv::new();
        crate::run::bind_coo3(&mut env, &descriptors::scoo3(), &t).unwrap();
        env.data.insert(names::X.into(), vec![1.0, 10.0, 100.0, 1000.0].into());
        let compiled = comp.lower().unwrap();
        compiled.execute(&mut env, &ComparatorRegistry::new()).unwrap();
        let want = t.ttv_mode2(&[1.0, 10.0, 100.0, 1000.0]);
        assert_eq!(env.data[names::Y], want.vals);
    }

    #[test]
    fn spmv_over_dia_matches_container() {
        use sparse_formats::DiaMatrix;
        // Tridiagonal-ish matrix; the DIA executor iterates the (row,
        // diagonal) grid with the membership guard.
        let coo = CooMatrix::from_triplets(
            4,
            4,
            vec![0, 0, 1, 2, 3, 3],
            vec![0, 1, 2, 1, 2, 3],
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
        )
        .unwrap();
        let dia = DiaMatrix::from_coo(&coo);
        let desc = descriptors::dia_executable();
        let comp = spmv(&desc).unwrap();
        let mut env = RtEnv::new();
        crate::run::bind_dia(&mut env, &desc, &dia).unwrap();
        let x = [1.0, -2.0, 3.0, 0.5];
        let got = run_spmv(&comp, &mut env, &x);
        let want = dia.spmv(&x);
        for (a, b) in got.iter().zip(&want) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn dia_is_rejected_as_unscannable() {
        assert!(matches!(
            spmv(&descriptors::dia()),
            Err(SynthesisError::SourceNotScannable(_))
        ));
    }

    #[test]
    fn rank_mismatch_rejected() {
        assert!(spmv(&descriptors::scoo3()).is_err());
        assert!(ttv_mode2(&descriptors::scoo()).is_err());
    }

    #[test]
    fn emitted_c_is_the_expected_kernel() {
        let comp = spmv(&descriptors::csr()).unwrap();
        let c = comp.lower().unwrap().emit_c("spmv_csr");
        assert!(c.contains("y[i] += Acsr[k] * x[j];"), "{c}");
    }
}
