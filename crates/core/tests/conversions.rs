//! End-to-end tests: every synthesized conversion agrees with the
//! reference (oracle) conversion on randomized sparse inputs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sparse_formats::descriptors;
use sparse_formats::{
    Coo3Tensor, CooMatrix, CscMatrix, CsrMatrix, DiaMatrix, MortonCoo3Tensor,
    MortonCooMatrix,
};
use sparse_synthesis::{Conversion, PermutationKind, SynthesisOptions};

/// Deterministic random sparse matrix with unique coordinates.
fn random_coo(nr: usize, nc: usize, nnz: usize, seed: u64, sorted: bool) -> CooMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut coords = std::collections::BTreeSet::new();
    while coords.len() < nnz.min(nr * nc) {
        coords.insert((rng.gen_range(0..nr) as i64, rng.gen_range(0..nc) as i64));
    }
    let mut coords: Vec<(i64, i64)> = coords.into_iter().collect();
    if !sorted {
        // Shuffle to exercise permutation paths.
        for i in (1..coords.len()).rev() {
            let j = rng.gen_range(0..=i);
            coords.swap(i, j);
        }
    }
    let (row, col): (Vec<i64>, Vec<i64>) = coords.into_iter().unzip();
    let val: Vec<f64> = (0..row.len()).map(|k| k as f64 + 1.0).collect();
    CooMatrix::from_triplets(nr, nc, row, col, val).unwrap()
}

/// A banded matrix (DIA-friendly).
fn banded_coo(n: usize, offsets: &[i64], seed: u64) -> CooMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut row = Vec::new();
    let mut col = Vec::new();
    let mut val = Vec::new();
    for i in 0..n as i64 {
        for &o in offsets {
            let j = i + o;
            if j >= 0 && (j as usize) < n && rng.gen_bool(0.8) {
                row.push(i);
                col.push(j);
                val.push(rng.gen_range(-5.0..5.0));
            }
        }
    }
    CooMatrix::from_triplets(n, n, row, col, val).unwrap()
}

fn random_coo3(dims: (usize, usize, usize), nnz: usize, seed: u64) -> Coo3Tensor {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut coords = std::collections::BTreeSet::new();
    while coords.len() < nnz {
        coords.insert((
            rng.gen_range(0..dims.0) as i64,
            rng.gen_range(0..dims.1) as i64,
            rng.gen_range(0..dims.2) as i64,
        ));
    }
    let mut i0 = Vec::new();
    let mut i1 = Vec::new();
    let mut i2 = Vec::new();
    let mut val = Vec::new();
    for (k, (a, b, c)) in coords.into_iter().enumerate() {
        i0.push(a);
        i1.push(b);
        i2.push(c);
        val.push(k as f64 + 0.5);
    }
    Coo3Tensor::from_coords(dims, i0, i1, i2, val).unwrap()
}

#[test]
fn scoo_to_csr_matches_oracle_and_elides_permutation() {
    let conv = Conversion::new(
        &descriptors::scoo(),
        &descriptors::csr(),
        SynthesisOptions::default(),
    )
    .unwrap();
    assert!(conv.synth.identity_eliminated);
    for seed in 0..5 {
        let mut coo = random_coo(40, 30, 200, seed, true);
        coo.sort_row_major();
        let (got, _) = conv.run_coo_to_csr(&coo).unwrap();
        assert_eq!(got, CsrMatrix::from_coo(&coo), "seed {seed}");
    }
}

#[test]
fn unsorted_coo_to_csr_uses_permutation() {
    let conv = Conversion::new(
        &descriptors::coo(),
        &descriptors::csr(),
        SynthesisOptions::default(),
    )
    .unwrap();
    assert!(!conv.synth.identity_eliminated);
    assert!(matches!(conv.synth.permutation, PermutationKind::Ordered { .. }));
    for seed in 0..5 {
        let coo = random_coo(25, 35, 150, seed, false);
        let (got, _) = conv.run_coo_to_csr(&coo).unwrap();
        assert_eq!(got, CsrMatrix::from_coo(&coo), "seed {seed}");
    }
}

#[test]
fn scoo_to_csc_matches_oracle() {
    let conv = Conversion::new(
        &descriptors::scoo(),
        &descriptors::csc(),
        SynthesisOptions::default(),
    )
    .unwrap();
    // Row-major source does NOT imply column-major destination.
    assert!(!conv.synth.identity_eliminated);
    for seed in 0..5 {
        let mut coo = random_coo(30, 20, 180, seed, true);
        coo.sort_row_major();
        let (got, _) = conv.run_coo_to_csc(&coo).unwrap();
        assert_eq!(got, CscMatrix::from_coo(&coo), "seed {seed}");
    }
}

#[test]
fn csr_to_csc_matches_oracle() {
    let conv = Conversion::new(
        &descriptors::csr(),
        &descriptors::csc(),
        SynthesisOptions::default(),
    )
    .unwrap();
    for seed in 0..5 {
        let csr = CsrMatrix::from_coo(&random_coo(35, 25, 160, seed, true));
        let (got, _) = conv.run_csr_to_csc(&csr).unwrap();
        assert_eq!(got, CscMatrix::from_csr(&csr), "seed {seed}");
    }
}

#[test]
fn csr_to_coo_matches_oracle() {
    let conv = Conversion::new(
        &descriptors::csr(),
        &descriptors::coo(),
        SynthesisOptions::default(),
    )
    .unwrap();
    let csr = CsrMatrix::from_coo(&random_coo(20, 20, 80, 7, true));
    let (got, _) = conv.run_csr_to_coo(&csr).unwrap();
    assert_eq!(got, csr.to_coo());
}

#[test]
fn scoo_to_dia_matches_oracle_linear_search() {
    let conv = Conversion::new(
        &descriptors::scoo(),
        &descriptors::dia(),
        SynthesisOptions::default(),
    )
    .unwrap();
    for seed in 0..4 {
        let mut coo = banded_coo(30, &[-3, -1, 0, 2, 5], seed);
        coo.sort_row_major();
        let (got, _) = conv.run_coo_to_dia(&coo).unwrap();
        let want = DiaMatrix::from_coo(&coo);
        assert_eq!(got, want, "seed {seed}");
        got.validate().unwrap();
    }
}

#[test]
fn scoo_to_dia_binary_search_agrees_with_linear() {
    let linear = Conversion::new(
        &descriptors::scoo(),
        &descriptors::dia(),
        SynthesisOptions { optimize: true, binary_search: false },
    )
    .unwrap();
    let binary = Conversion::new(
        &descriptors::scoo(),
        &descriptors::dia(),
        SynthesisOptions { optimize: true, binary_search: true },
    )
    .unwrap();
    let mut coo = banded_coo(50, &[-7, -2, 0, 1, 4, 9], 42);
    coo.sort_row_major();
    let (a, stats_lin) = linear.run_coo_to_dia(&coo).unwrap();
    let (b, stats_bin) = binary.run_coo_to_dia(&coo).unwrap();
    assert_eq!(a, b);
    // The binary search does asymptotically less work in the copy loop.
    assert!(
        stats_bin.loop_iterations < stats_lin.loop_iterations,
        "binary {} vs linear {}",
        stats_bin.loop_iterations,
        stats_lin.loop_iterations
    );
}

#[test]
fn coo_to_mcoo_matches_oracle() {
    let conv = Conversion::new(
        &descriptors::scoo(),
        &descriptors::mcoo(),
        SynthesisOptions::default(),
    )
    .unwrap();
    assert!(!conv.synth.identity_eliminated);
    for seed in 0..4 {
        let mut coo = random_coo(32, 32, 120, seed, true);
        coo.sort_row_major();
        let (got, _) = conv.run_coo_to_mcoo(&coo).unwrap();
        let want = MortonCooMatrix::from_coo(&coo);
        assert_eq!(got, want, "seed {seed}");
    }
}

#[test]
fn mcoo_to_csr_round_trips() {
    // Morton-ordered source back to CSR: the reverse direction, requiring
    // a row-major permutation.
    let conv = Conversion::new(
        &descriptors::mcoo(),
        &descriptors::csr(),
        SynthesisOptions::default(),
    )
    .unwrap();
    let coo = random_coo(24, 24, 100, 3, true);
    let m = MortonCooMatrix::from_coo(&coo);
    let mut env = spf_codegen::runtime::RtEnv::new();
    sparse_synthesis::run::bind_coo(&mut env, &conv.synth.src, &m.coo).unwrap();
    conv.execute_env(&mut env).unwrap();
    let got =
        sparse_synthesis::run::extract_csr(&mut env, &conv.synth.dst, coo.nr, coo.nc).unwrap();
    assert_eq!(got, CsrMatrix::from_coo(&coo));
}

#[test]
fn coo3_to_mcoo3_matches_oracle() {
    let conv = Conversion::new(
        &descriptors::scoo3(),
        &descriptors::mcoo3(),
        SynthesisOptions::default(),
    )
    .unwrap();
    for seed in 0..3 {
        let t = random_coo3((16, 16, 16), 200, seed);
        let (got, _) = conv.run_coo3_to_mcoo3(&t).unwrap();
        let want = MortonCoo3Tensor::from_coo3(&t);
        assert_eq!(got, want, "seed {seed}");
    }
}

#[test]
fn coo_to_scoo_sorts() {
    let conv = Conversion::new(
        &descriptors::coo(),
        &descriptors::scoo().with_suffix("_d"),
        SynthesisOptions::default(),
    )
    .unwrap();
    let coo = random_coo(20, 20, 90, 11, false);
    assert!(!coo.is_sorted_row_major());
    let (got, _) = conv.run_coo_to_scoo(&coo).unwrap();
    assert!(got.is_sorted_row_major());
    let mut want = coo.clone();
    want.sort_row_major();
    assert_eq!(got, want);
}

#[test]
fn empty_matrix_converts() {
    let conv = Conversion::new(
        &descriptors::scoo(),
        &descriptors::csr(),
        SynthesisOptions::default(),
    )
    .unwrap();
    let coo = CooMatrix::from_triplets(5, 5, vec![], vec![], vec![]).unwrap();
    let (got, _) = conv.run_coo_to_csr(&coo).unwrap();
    assert_eq!(got.rowptr, vec![0; 6]);
    assert!(got.col.is_empty());
}

#[test]
fn empty_rows_leading_and_trailing() {
    let conv = Conversion::new(
        &descriptors::scoo(),
        &descriptors::csr(),
        SynthesisOptions::default(),
    )
    .unwrap();
    // Only row 2 of 6 is populated.
    let coo = CooMatrix::from_triplets(
        6,
        4,
        vec![2, 2],
        vec![1, 3],
        vec![1.0, 2.0],
    )
    .unwrap();
    let (got, _) = conv.run_coo_to_csr(&coo).unwrap();
    assert_eq!(got, CsrMatrix::from_coo(&coo));
    assert_eq!(got.rowptr, vec![0, 0, 0, 2, 2, 2, 2]);
}

#[test]
fn single_element_matrix() {
    let conv = Conversion::new(
        &descriptors::scoo(),
        &descriptors::dia(),
        SynthesisOptions::default(),
    )
    .unwrap();
    let coo = CooMatrix::from_triplets(3, 3, vec![1], vec![2], vec![9.0]).unwrap();
    let (got, _) = conv.run_coo_to_dia(&coo).unwrap();
    assert_eq!(got.off, vec![1]);
    assert_eq!(got.get(1, 2), 9.0);
}

#[test]
fn naive_and_optimized_agree() {
    // The unoptimized loop chain computes the same CSR as the optimized
    // one (redundancy removal / DCE / fusion preserve semantics).
    let opt = Conversion::new(
        &descriptors::scoo(),
        &descriptors::csr(),
        SynthesisOptions { optimize: true, binary_search: false },
    )
    .unwrap();
    let naive = Conversion::new(
        &descriptors::scoo(),
        &descriptors::csr(),
        SynthesisOptions { optimize: false, binary_search: false },
    )
    .unwrap();
    let mut coo = random_coo(30, 30, 140, 5, true);
    coo.sort_row_major();
    let (a, stats_opt) = opt.run_coo_to_csr(&coo).unwrap();
    let (b, stats_naive) = naive.run_coo_to_csr(&coo).unwrap();
    assert_eq!(a, b);
    // Optimization strictly reduces executed statements.
    assert!(stats_opt.statements < stats_naive.statements);
}

#[test]
fn synthesized_c_code_mentions_expected_structure() {
    let conv = Conversion::new(
        &descriptors::scoo(),
        &descriptors::mcoo(),
        SynthesisOptions::default(),
    )
    .unwrap();
    let c = conv.emit_c();
    // The paper's running example: an OrderedList populated per nonzero
    // with the Morton comparator, then rank retrieval in the copy loop.
    assert!(c.contains("new OrderedList(2, MORTON"), "{c}");
    assert!(c.contains("P.insert(i, j);"), "{c}");
    assert!(c.contains("int p = P.rank(i, j);"), "{c}");
    assert!(c.contains("int i = row1[n];"), "{c}");
}

#[test]
fn csr_fast_path_c_code_has_no_permutation() {
    let conv = Conversion::new(
        &descriptors::scoo(),
        &descriptors::csr(),
        SynthesisOptions::default(),
    )
    .unwrap();
    let c = conv.emit_c();
    assert!(!c.contains("OrderedList"), "{c}");
    assert!(!c.contains("P.rank"), "{c}");
    // One fused pass over the nonzeros plus the monotonic sweep
    // (remaining `for` loops are allocation fills).
    assert_eq!(c.matches("for (int n = 0; n < NNZ; n++)").count(), 1, "{c}");
    assert_eq!(c.matches("for (int e").count(), 1, "{c}");
    // The fused loop contains the col2 write, the rowptr min update, and
    // the copy.
    assert!(c.contains("col2[p]"), "{c}");
    assert!(c.contains("rowptr[i] = MIN(rowptr[i], p);"), "{c}");
}

#[test]
fn ell_to_csr_compacts_padding() {
    use sparse_formats::EllMatrix;
    let conv = Conversion::new(
        &descriptors::ell(),
        &descriptors::csr(),
        SynthesisOptions::default(),
    )
    .unwrap();
    // ELL's data index has padding gaps, so the identity fast path must
    // NOT fire even though the orders match; a permutation compacts.
    assert!(!conv.synth.identity_eliminated);
    for seed in 0..3 {
        let coo = random_coo(18, 22, 90, seed, true);
        let ell = EllMatrix::from_coo(&coo);
        let (got, _) = conv.run_ell_to_csr(&ell).unwrap();
        assert_eq!(got, CsrMatrix::from_coo(&coo), "seed {seed}");
    }
}

#[test]
fn ell_to_coo_preserves_order_via_insertion_permutation() {
    use sparse_formats::EllMatrix;
    use sparse_synthesis::PermutationKind;
    let conv = Conversion::new(
        &descriptors::ell(),
        &descriptors::coo(),
        SynthesisOptions::default(),
    )
    .unwrap();
    // Unordered destination + gappy source: an insertion-ordered
    // permutation compacts positions while keeping source order.
    assert!(matches!(
        conv.synth.permutation,
        PermutationKind::Ordered { .. }
    ));
    let coo = {
        let mut m = random_coo(12, 15, 50, 9, true);
        m.sort_row_major();
        m
    };
    let ell = EllMatrix::from_coo(&coo);
    let (got, _) = conv.run_ell_to_coo(&ell).unwrap();
    assert_eq!(got, coo);
}

#[test]
fn csc_to_csr_matches_oracle() {
    let conv = Conversion::new(
        &descriptors::csc(),
        &descriptors::csr(),
        SynthesisOptions::default(),
    )
    .unwrap();
    // Column-major source, row-major destination: permutation required.
    assert!(!conv.synth.identity_eliminated);
    for seed in 0..4 {
        let coo = random_coo(22, 18, 120, seed, true);
        let csc = CscMatrix::from_coo(&coo);
        let (got, _) = conv.run_csc_to_csr(&csc).unwrap();
        assert_eq!(got, CsrMatrix::from_coo(&coo), "seed {seed}");
    }
}

#[test]
fn csc_to_coo_keeps_column_major_order() {
    let conv = Conversion::new(
        &descriptors::csc(),
        &descriptors::coo(),
        SynthesisOptions::default(),
    )
    .unwrap();
    let coo = random_coo(15, 15, 60, 2, true);
    let csc = CscMatrix::from_coo(&coo);
    let (got, _) = conv.run_csc_to_coo(&csc).unwrap();
    // Unordered destination keeps the source (column-major) order.
    assert_eq!(got, csc.to_coo());
}

#[test]
fn missing_custom_comparator_surfaces_as_error() {
    use sparse_formats::descriptors::ScanInfo;
    use sparse_formats::FormatDescriptor;
    use spf_ir::order::{Comparator, KeyDim, OrderKey};
    use spf_ir::{parse_relation, parse_set, LinExpr, UfSignature, VarId};

    // A destination ordered by an unregistered user-defined comparator.
    let mut ufs = spf_ir::UfEnvironment::new();
    ufs.insert(
        UfSignature::parse("rowx", "{ [x] : 0 <= x < NNZ }", "{ [i] : 0 <= i < NR }", None)
            .unwrap(),
    );
    ufs.insert(
        UfSignature::parse("colx", "{ [x] : 0 <= x < NNZ }", "{ [j] : 0 <= j < NC }", None)
            .unwrap(),
    );
    let mut scan_set =
        parse_set("{ [n, i, j] : i = rowx(n) && j = colx(n) && 0 <= n < NNZ }").unwrap();
    scan_set.simplify();
    let dst = FormatDescriptor {
        name: "XCOO".into(),
        rank: 2,
        sparse_to_dense: parse_relation(
            "{ [n, ii, jj] -> [i, j] : rowx(n) = i && colx(n) = j && ii = i && jj = j \
             && 0 <= n < NNZ }",
        )
        .unwrap(),
        data_access: parse_relation("{ [n, ii, jj] -> [d0] : d0 = n }").unwrap(),
        scan: Some(ScanInfo {
            set: scan_set,
            dense_pos: vec![1, 2],
            data_index: LinExpr::var(VarId(0)),
        }),
        ufs,
        order: Some(OrderKey {
            comparator: Comparator::UserFn("NOT_REGISTERED".into()),
            dims: vec![KeyDim::coord(2, 0), KeyDim::coord(2, 1)],
        }),
        data_name: "Ax".into(),
        data_size: vec![LinExpr::sym("NNZ")],
        dim_syms: vec!["NR".into(), "NC".into()],
        nnz_sym: "NNZ".into(),
        extra_syms: vec![],
        coord_ufs: vec![Some("rowx".into()), Some("colx".into())],
        contiguous_data: true,
    };
    let conv =
        Conversion::new(&descriptors::scoo(), &dst, SynthesisOptions::default()).unwrap();
    let coo = random_coo(5, 5, 10, 1, true);
    let mut env = spf_codegen::runtime::RtEnv::new();
    sparse_synthesis::run::bind_coo(&mut env, &conv.synth.src, &coo).unwrap();
    let err = conv.execute_env(&mut env).unwrap_err();
    assert!(err.to_string().contains("comparator NOT_REGISTERED"), "{err}");
}
