//! Compiles the emitted C99 inspectors with the system C compiler and
//! runs them, verifying the *generated source code* — not just the
//! interpreter — against the reference conversions. Skipped when no `cc`
//! is available.

use std::io::Write as _;
use std::process::Command;

use sparse_formats::descriptors;
use sparse_formats::{CooMatrix, CsrMatrix, DiaMatrix, MortonCooMatrix};
use sparse_synthesis::{Conversion, SynthesisOptions};

fn cc_available() -> bool {
    Command::new("cc")
        .arg("--version")
        .output()
        .map(|o| o.status.success())
        .unwrap_or(false)
}

fn fixture() -> CooMatrix {
    let mut m = CooMatrix::from_triplets(
        6,
        7,
        vec![0, 0, 1, 2, 2, 4, 5, 5],
        vec![1, 4, 2, 0, 5, 4, 3, 6],
        vec![1.5, 2.0, -3.0, 4.0, 5.5, 6.0, 7.0, -8.0],
    )
    .unwrap();
    m.sort_row_major();
    m
}

/// Renders a C array literal.
fn c_ints(v: &[i64]) -> String {
    v.iter().map(|x| x.to_string()).collect::<Vec<_>>().join(", ")
}

fn c_doubles(v: &[f64]) -> String {
    v.iter().map(|x| format!("{x:?}")).collect::<Vec<_>>().join(", ")
}

/// Compiles `program` + `main_body` and returns the run's stdout lines.
fn compile_and_run(test_name: &str, program: &str, main_body: &str) -> Vec<String> {
    let dir = std::env::temp_dir().join(format!("sparse_synth_cc_{test_name}"));
    std::fs::create_dir_all(&dir).unwrap();
    let src_path = dir.join("prog.c");
    let bin_path = dir.join("prog");
    let mut f = std::fs::File::create(&src_path).unwrap();
    writeln!(f, "#include <stdio.h>").unwrap();
    writeln!(f, "{program}").unwrap();
    writeln!(f, "int main(void) {{\n{main_body}\n  return 0;\n}}").unwrap();
    drop(f);
    let out = Command::new("cc")
        .arg("-O1")
        .arg("-std=c99")
        .arg(&src_path)
        .arg("-o")
        .arg(&bin_path)
        .output()
        .expect("cc runs");
    assert!(
        out.status.success(),
        "cc failed:\n{}\nsource:\n{}",
        String::from_utf8_lossy(&out.stderr),
        std::fs::read_to_string(&src_path).unwrap()
    );
    let run = Command::new(&bin_path).output().expect("binary runs");
    assert!(run.status.success(), "binary failed");
    String::from_utf8(run.stdout)
        .unwrap()
        .lines()
        .map(str::to_string)
        .collect()
}

/// Assignments for the shape symbols, restricted to the ones the emitted
/// program actually declares (optimization can make NR/NC dead).
fn sym_assigns(program: &str, syms: &[(&str, usize)]) -> String {
    syms.iter()
        .filter(|(name, _)| program.contains(&format!("int {name};")))
        .map(|(name, v)| format!("  {name} = {v};"))
        .collect::<Vec<_>>()
        .join("\n")
}

fn parse_ints(line: &str) -> Vec<i64> {
    line.split_whitespace().map(|t| t.parse().unwrap()).collect()
}

fn parse_doubles(line: &str) -> Vec<f64> {
    line.split_whitespace().map(|t| t.parse().unwrap()).collect()
}

#[test]
fn compiled_c_coo_to_csr_matches_reference() {
    if !cc_available() {
        eprintln!("skipping: no C compiler");
        return;
    }
    let coo = fixture();
    let conv = Conversion::new(
        &descriptors::scoo(),
        &descriptors::csr(),
        SynthesisOptions::default(),
    )
    .unwrap();
    let program = conv.emit_c_program();
    let assigns = sym_assigns(
        &program,
        &[("NR", coo.nr), ("NC", coo.nc), ("NNZ", coo.nnz())],
    );
    let main_body = format!(
        r#"
{assigns}
  static int row1_s[] = {{{rows}}};
  static int col1_s[] = {{{cols}}};
  static double acoo_s[] = {{{vals}}};
  row1 = row1_s; col1 = col1_s; Acoo = acoo_s;
  scoo_to_csr();
  for (int i = 0; i <= NR; i++) printf("%d ", rowptr[i]);
  printf("\n");
  for (int n = 0; n < NNZ; n++) printf("%d ", col2[n]);
  printf("\n");
  for (int n = 0; n < NNZ; n++) printf("%.17g ", Acsr[n]);
  printf("\n");"#,
        rows = c_ints(&coo.row),
        cols = c_ints(&coo.col),
        vals = c_doubles(&coo.val),
    );
    let lines = compile_and_run("coo_csr", &program, &main_body);
    let want = CsrMatrix::from_coo(&coo);
    assert_eq!(parse_ints(&lines[0]), want.rowptr);
    assert_eq!(parse_ints(&lines[1]), want.col);
    assert_eq!(parse_doubles(&lines[2]), want.val);
}

#[test]
fn compiled_c_coo_to_mcoo_matches_reference() {
    if !cc_available() {
        eprintln!("skipping: no C compiler");
        return;
    }
    let coo = fixture();
    let conv = Conversion::new(
        &descriptors::scoo(),
        &descriptors::mcoo(),
        SynthesisOptions::default(),
    )
    .unwrap();
    let program = conv.emit_c_program();
    assert!(program.contains("ol_init(&P, 2, ol_cmp_morton, 0);"), "{program}");
    let assigns = sym_assigns(
        &program,
        &[("NR", coo.nr), ("NC", coo.nc), ("NNZ", coo.nnz())],
    );
    let main_body = format!(
        r#"
{assigns}
  static int row1_s[] = {{{rows}}};
  static int col1_s[] = {{{cols}}};
  static double acoo_s[] = {{{vals}}};
  row1 = row1_s; col1 = col1_s; Acoo = acoo_s;
  scoo_to_mcoo();
  for (int n = 0; n < NNZ; n++) printf("%d ", rowm[n]);
  printf("\n");
  for (int n = 0; n < NNZ; n++) printf("%d ", colm[n]);
  printf("\n");
  for (int n = 0; n < NNZ; n++) printf("%.17g ", Amcoo[n]);
  printf("\n");"#,
        rows = c_ints(&coo.row),
        cols = c_ints(&coo.col),
        vals = c_doubles(&coo.val),
    );
    let lines = compile_and_run("coo_mcoo", &program, &main_body);
    let want = MortonCooMatrix::from_coo(&coo);
    assert_eq!(parse_ints(&lines[0]), want.coo.row);
    assert_eq!(parse_ints(&lines[1]), want.coo.col);
    assert_eq!(parse_doubles(&lines[2]), want.coo.val);
}

#[test]
fn compiled_c_coo_to_dia_binary_matches_reference() {
    if !cc_available() {
        eprintln!("skipping: no C compiler");
        return;
    }
    let coo = fixture();
    let conv = Conversion::new(
        &descriptors::scoo(),
        &descriptors::dia(),
        SynthesisOptions { optimize: true, binary_search: true },
    )
    .unwrap();
    let program = conv.emit_c_program();
    assert!(program.contains("binary search"), "{program}");
    let assigns = sym_assigns(
        &program,
        &[("NR", coo.nr), ("NC", coo.nc), ("NNZ", coo.nnz())],
    );
    let main_body = format!(
        r#"
{assigns}
  static int row1_s[] = {{{rows}}};
  static int col1_s[] = {{{cols}}};
  static double acoo_s[] = {{{vals}}};
  row1 = row1_s; col1 = col1_s; Acoo = acoo_s;
  scoo_to_dia();
  printf("%d\n", ND);
  for (int d = 0; d < ND; d++) printf("%d ", off[d]);
  printf("\n");
  for (int q = 0; q < ND * NR; q++) printf("%.17g ", Adia[q]);
  printf("\n");"#,
        rows = c_ints(&coo.row),
        cols = c_ints(&coo.col),
        vals = c_doubles(&coo.val),
    );
    let lines = compile_and_run("coo_dia", &program, &main_body);
    let want = DiaMatrix::from_coo(&coo);
    assert_eq!(parse_ints(&lines[0]), vec![want.nd() as i64]);
    assert_eq!(parse_ints(&lines[1]), want.off);
    assert_eq!(parse_doubles(&lines[2]), want.data);
}
