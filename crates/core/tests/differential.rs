//! Differential tests: every registered native kernel must be
//! **bit-identical** to the SPF-IR interpreter on every valid input.
//!
//! This is the equivalence proof the engine's kernel backend rests on —
//! a kernel only ever substitutes for the interpreter, so any observable
//! difference is a bug in the kernel (or a case the kernel must decline,
//! like duplicate coordinates in an unordered COO source).
//!
//! Inputs come from `sparse_matgen`'s generator families plus a fixed
//! battery of structural edge cases: empty matrices, `0×N` / `N×0`
//! shapes, all-empty rows, and fully dense rows.

use proptest::prelude::*;
use sparse_formats::descriptors;
use sparse_formats::{AnyMatrix, AnyTensor, Coo3Tensor, CooMatrix, CscMatrix, CsrMatrix,
    FormatDescriptor, MortonCooMatrix};
use sparse_matgen::generators::{power_law, random_uniform};
use sparse_synthesis::{Conversion, SynthesisOptions};

/// How to present a generated COO matrix to a conversion's *source*
/// descriptor.
#[derive(Clone, Copy, Debug)]
enum Src {
    /// Unordered triplets (shuffled deterministically).
    Unsorted,
    /// Row-major sorted triplets (`SCOO`).
    Sorted,
    /// Morton-ordered triplets (`MCOO`).
    Morton,
    /// Compressed rows.
    Csr,
    /// Compressed columns.
    Csc,
}

/// Every kernel-backed matrix pair in the conversion catalog, with the
/// source container each needs. Covers all eight distinct rank-2 kernel
/// implementations.
fn kernel_pairs() -> Vec<(Src, FormatDescriptor, FormatDescriptor)> {
    use descriptors as d;
    vec![
        (Src::Sorted, d::scoo(), d::csr()),
        (Src::Unsorted, d::coo(), d::csr()),
        (Src::Sorted, d::scoo(), d::csc()),
        (Src::Csr, d::csr(), d::csc()),
        (Src::Csc, d::csc(), d::csr()),
        (Src::Csr, d::csr(), d::coo()),
        (Src::Csc, d::csc(), d::coo()),
        (Src::Sorted, d::scoo(), d::mcoo()),
        (Src::Morton, d::mcoo(), d::csr()),
        (Src::Unsorted, d::coo(), d::scoo().with_suffix("_d")),
    ]
}

/// Deterministic Fisher–Yates driven by a seed, so "unsorted" inputs are
/// reproducibly scrambled without duplicating coordinates.
fn shuffled(mut m: CooMatrix, seed: u64) -> CooMatrix {
    let n = m.nnz();
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
    for i in (1..n).rev() {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let j = (state >> 33) as usize % (i + 1);
        m.row.swap(i, j);
        m.col.swap(i, j);
        m.val.swap(i, j);
    }
    m
}

fn make_input(kind: Src, base: &CooMatrix, seed: u64) -> AnyMatrix {
    match kind {
        Src::Unsorted => AnyMatrix::Coo(shuffled(base.clone(), seed)),
        Src::Sorted => {
            let mut m = base.clone();
            m.sort_row_major();
            AnyMatrix::Coo(m)
        }
        Src::Morton => AnyMatrix::MortonCoo(MortonCooMatrix::from_coo(base)),
        Src::Csr => AnyMatrix::Csr(CsrMatrix::from_coo(base)),
        Src::Csc => AnyMatrix::Csc(CscMatrix::from_coo(base)),
    }
}

/// The assertion at the heart of the suite: for one pair and one input,
/// the kernel's answer must equal the interpreter's, field for field.
fn assert_kernel_matches_interpreter(
    conv: &Conversion,
    pair: &str,
    input: &AnyMatrix,
) {
    let kernel = conv
        .run_matrix_kernel(input.as_ref())
        .unwrap_or_else(|| panic!("{pair}: no kernel registered"))
        .unwrap_or_else(|e| panic!("{pair}: kernel declined a valid input: {e}"));
    let interp = conv
        .run_matrix_quiet(input.as_ref())
        .unwrap_or_else(|e| panic!("{pair}: interpreter failed: {e}"));
    assert_eq!(kernel, interp, "{pair}: kernel and interpreter disagree");
}

fn conversions() -> Vec<(Src, String, Conversion)> {
    kernel_pairs()
        .into_iter()
        .map(|(kind, src, dst)| {
            let pair = format!("{} -> {}", src.name, dst.name);
            let conv = Conversion::new(&src, &dst, SynthesisOptions::default())
                .unwrap_or_else(|e| panic!("{pair}: synthesis failed: {e}"));
            assert!(conv.has_kernel(), "{pair}: expected a registered kernel");
            (kind, pair, conv)
        })
        .collect()
}

/// Edge-case battery: shapes and row profiles that historically break
/// pointer-array kernels.
fn edge_cases() -> Vec<CooMatrix> {
    let m = |nr, nc, row: Vec<i64>, col: Vec<i64>| {
        let val = (0..row.len()).map(|k| k as f64 + 1.0).collect();
        CooMatrix::from_triplets(nr, nc, row, col, val).unwrap()
    };
    vec![
        // Entirely empty, square.
        m(4, 4, vec![], vec![]),
        // 0×N and N×0 (no rows / no columns at all).
        m(0, 7, vec![], vec![]),
        m(7, 0, vec![], vec![]),
        // 0×0.
        m(0, 0, vec![], vec![]),
        // Single entry in the last slot.
        m(3, 3, vec![2], vec![2]),
        // Empty rows between occupied ones.
        m(6, 4, vec![0, 0, 3, 5], vec![1, 3, 0, 2]),
        // One fully dense row amid empty ones.
        m(5, 6, vec![2, 2, 2, 2, 2, 2], vec![0, 1, 2, 3, 4, 5]),
        // Dense single column (every row occupied once).
        m(6, 3, vec![0, 1, 2, 3, 4, 5], vec![1, 1, 1, 1, 1, 1]),
        // 1×N dense row.
        m(1, 8, vec![0; 8], (0..8).collect()),
        // N×1 dense column.
        m(8, 1, (0..8).collect(), vec![0; 8]),
    ]
}

#[test]
fn kernels_match_interpreter_on_edge_cases() {
    for (kind, pair, conv) in &conversions() {
        for (i, base) in edge_cases().iter().enumerate() {
            let input = make_input(*kind, base, i as u64 + 1);
            assert_kernel_matches_interpreter(conv, &format!("{pair} [edge {i}]"), &input);
        }
    }
}

#[test]
fn kernels_match_interpreter_on_generator_suite() {
    for (kind, pair, conv) in &conversions() {
        for seed in 0..4u64 {
            for base in [
                random_uniform(40, 30, 220, seed),
                power_law(50, 20, 260, seed),
            ] {
                let input = make_input(*kind, &base, seed + 7);
                assert_kernel_matches_interpreter(conv, pair, &input);
            }
        }
    }
}

#[test]
fn tensor_kernels_match_interpreter() {
    use sparse_matgen::generators::skewed_tensor;
    for (sorted, src, dst) in [
        (false, descriptors::coo3(), descriptors::mcoo3()),
        (true, descriptors::scoo3(), descriptors::mcoo3()),
    ] {
        let pair = format!("{} -> {}", src.name, dst.name);
        let conv = Conversion::new(&src, &dst, SynthesisOptions::default())
            .unwrap_or_else(|e| panic!("{pair}: synthesis failed: {e}"));
        assert!(conv.has_kernel(), "{pair}: expected a registered kernel");
        for seed in 0..4u64 {
            let mut t = skewed_tensor((12, 10, 14), 160, seed);
            if sorted {
                t.sort_by(|a, b| a.cmp(b));
            }
            let input = AnyTensor::Coo3(t);
            let kernel = conv
                .run_tensor_kernel(input.as_ref())
                .unwrap_or_else(|| panic!("{pair}: no kernel"))
                .unwrap_or_else(|e| panic!("{pair}: kernel declined: {e}"));
            let interp = conv
                .run_tensor_quiet(input.as_ref())
                .unwrap_or_else(|e| panic!("{pair}: interpreter failed: {e}"));
            assert_eq!(kernel, interp, "{pair} seed {seed}");
        }
        // Empty tensor.
        let empty = AnyTensor::Coo3(
            Coo3Tensor::from_coords((3, 3, 3), vec![], vec![], vec![], vec![]).unwrap(),
        );
        let kernel = conv.run_tensor_kernel(empty.as_ref()).unwrap().unwrap();
        let interp = conv.run_tensor_quiet(empty.as_ref()).unwrap();
        assert_eq!(kernel, interp, "{pair} empty");
    }
}

#[test]
fn duplicate_coordinates_are_declined_not_mismatched() {
    // Unordered COO tolerates duplicate coordinates, but the permutation
    // plans collapse them through first-occurrence ranks — an order the
    // sort-based kernels cannot reproduce. The kernel must decline (and
    // the engine then falls back); answering differently would be a bug.
    let coo = CooMatrix::from_triplets(
        3,
        3,
        vec![1, 0, 1, 2],
        vec![2, 1, 2, 0],
        vec![1.0, 2.0, 3.0, 4.0],
    )
    .unwrap();
    let conv = Conversion::new(
        &descriptors::coo(),
        &descriptors::scoo().with_suffix("_d"),
        SynthesisOptions::default(),
    )
    .unwrap();
    let res = conv.run_matrix_kernel(&coo).expect("kernel registered");
    assert!(res.is_err(), "duplicate coordinates must be declined");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Randomized differential check across every kernel-backed matrix
    /// pair: dims (including degenerate 0/1 extents), density, and seed
    /// are all driven by proptest.
    #[test]
    fn prop_kernels_match_interpreter(
        nr in 0usize..24,
        nc in 0usize..24,
        fill in 0usize..300,
        seed in 0u64..u64::MAX,
    ) {
        let nnz = fill.min(nr * nc);
        let base = random_uniform(nr.max(1), nc.max(1), nnz, seed);
        // random_uniform needs nonzero dims to sample; rebuild the truly
        // degenerate shapes as empty matrices with the real dims.
        let base = if nr == 0 || nc == 0 {
            CooMatrix::from_triplets(nr, nc, vec![], vec![], vec![]).unwrap()
        } else {
            base
        };
        for (kind, pair, conv) in &conversions() {
            let input = make_input(*kind, &base, seed ^ 0xabcd);
            assert_kernel_matches_interpreter(conv, pair, &input);
        }
    }
}
