//! Untrusted-input validation: structural checks of runtime containers
//! against the *source descriptor's* quantifier obligations.
//!
//! The static plan verifier (`sparse-analyze`) proves a synthesized
//! inspector correct **under the descriptor's universal quantifiers** —
//! e.g. that a CSR source's `rowptr` is non-decreasing and spans
//! `0..=NNZ`. Those quantifiers are *assumptions about the input*: a
//! caller can hand the engine a `CsrMatrix` whose public fields violate
//! every one of them, and the proved-correct inspector then produces
//! silent garbage or out-of-bounds accesses. This module is the runtime
//! half of that contract: every obligation the verifier assumed is
//! checked structurally against the concrete container *before binding*,
//! and violations come back as a typed [`ValidationError`] naming the
//! failed check.
//!
//! Checks are dispatched on the descriptor's [`FormatKind`] plus its
//! [`OrderKey`], never on the container alone, so the same `CooMatrix`
//! is accepted under an unordered `COO` descriptor but rejected under
//! `SCOO` when its nonzeros are out of row-major order.
//!
//! Validation is `O(nnz)` with small constants (single pass per array,
//! no allocation) — measured under 5% of the cost of the conversions it
//! guards (see EXPERIMENTS.md).

use spf_codegen::morton::morton_cmp;
use spf_ir::order::{Comparator, OrderKey};

use crate::containers::{
    Coo3Tensor, CooMatrix, CscMatrix, CsrMatrix, DiaMatrix, EllMatrix, MatrixRef, TensorRef,
};
use crate::descriptors::FormatDescriptor;
use crate::FormatKind;

/// The named runtime checks, each the dynamic counterpart of a static
/// verifier obligation (see [`InputCheck::static_counterpart`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InputCheck {
    /// Parallel arrays must have consistent (declared) lengths.
    ArrayLengths,
    /// A pointer array must start at 0 and end at `NNZ` (its declared
    /// range in Table 1).
    PointerEnds,
    /// A pointer array must be non-decreasing (its monotonic universal
    /// quantifier).
    PointerMonotone,
    /// Every stored index must lie inside the declared dense bounds
    /// (the UF's declared range).
    IndexBounds,
    /// Nonzeros must respect the descriptor's reordering universal
    /// quantifier (row-major, column-major, Morton, …).
    Ordering,
    /// A strict ordering quantifier forbids two nonzeros at the same
    /// coordinates.
    DuplicateCoordinate,
    /// Stored values must be finite (no NaN/±Inf — they break the
    /// bit-exactness contract of every downstream comparison).
    ValueFinite,
    /// Padding slots (ELL sentinel slots, DIA out-of-matrix positions)
    /// must hold zero, and ELL padding must trail the row.
    PaddingZero,
}

impl InputCheck {
    /// Stable kebab-case name, used in error messages and logs.
    pub fn as_str(self) -> &'static str {
        match self {
            InputCheck::ArrayLengths => "array-lengths",
            InputCheck::PointerEnds => "pointer-ends",
            InputCheck::PointerMonotone => "pointer-monotone",
            InputCheck::IndexBounds => "index-bounds",
            InputCheck::Ordering => "ordering",
            InputCheck::DuplicateCoordinate => "duplicate-coordinate",
            InputCheck::ValueFinite => "value-finite",
            InputCheck::PaddingZero => "padding-zero",
        }
    }

    /// The static-verifier diagnostic whose *assumption* this runtime
    /// check discharges, when one exists. The verifier proves the plan
    /// correct given the obligation; this check establishes the
    /// obligation for a concrete input. `None` marks checks with no
    /// static counterpart (they guard runtime-only hazards).
    pub fn static_counterpart(self) -> Option<&'static str> {
        match self {
            InputCheck::ArrayLengths => Some("SA005"),
            InputCheck::PointerEnds => Some("SA004"),
            InputCheck::PointerMonotone => Some("SA006"),
            InputCheck::IndexBounds => Some("SA003"),
            InputCheck::Ordering | InputCheck::DuplicateCoordinate => Some("SA007"),
            InputCheck::ValueFinite | InputCheck::PaddingZero => None,
        }
    }
}

impl std::fmt::Display for InputCheck {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A violated input obligation: which check failed, and where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidationError {
    /// The failed check.
    pub check: InputCheck,
    /// Human-readable specifics (offending index, observed value, …).
    pub detail: String,
}

impl ValidationError {
    fn new(check: InputCheck, detail: impl Into<String>) -> Self {
        ValidationError { check, detail: detail.into() }
    }
}

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.check, self.detail)
    }
}

impl std::error::Error for ValidationError {}

/// Validates any rank-2 container against the obligations of `desc`.
///
/// Dispatches on the descriptor's structural [`FormatKind`] exactly like
/// the bind layer: coordinate-kind descriptors accept both `Coo` and
/// `MortonCoo` containers (the storage is identical; ordering is the
/// *descriptor's* claim and is checked here against `desc`'s
/// [`OrderKey`]). A descriptor/container pairing with no bind path is
/// *not* this module's concern and passes through (`Ok`): the dispatch
/// layer reports it as an unsupported conversion.
///
/// # Errors
/// Returns the first violated obligation.
pub fn validate_matrix(
    desc: &FormatDescriptor,
    m: MatrixRef<'_>,
) -> Result<(), ValidationError> {
    match (desc.kind(), m) {
        (FormatKind::Coo | FormatKind::SortedCoo | FormatKind::MortonCoo, MatrixRef::Coo(c)) => {
            validate_coo_like(desc, c)
        }
        (
            FormatKind::Coo | FormatKind::SortedCoo | FormatKind::MortonCoo,
            MatrixRef::MortonCoo(mc),
        ) => validate_coo_like(desc, &mc.coo),
        (FormatKind::Csr, MatrixRef::Csr(c)) => validate_csr(c),
        (FormatKind::Csc, MatrixRef::Csc(c)) => validate_csc(c),
        (FormatKind::Dia, MatrixRef::Dia(d)) => validate_dia(d),
        (FormatKind::Ell, MatrixRef::Ell(e)) => validate_ell(e),
        // Kind/container mismatch or unsupported kind: the bind layer
        // owns that error.
        _ => Ok(()),
    }
}

/// Validates any order-3 container against the obligations of `desc`;
/// tensor analogue of [`validate_matrix`].
///
/// # Errors
/// Returns the first violated obligation.
pub fn validate_tensor(
    desc: &FormatDescriptor,
    t: TensorRef<'_>,
) -> Result<(), ValidationError> {
    match (desc.kind(), t) {
        (FormatKind::Coo3 | FormatKind::MortonCoo3, TensorRef::Coo3(c)) => {
            validate_coo3_like(desc, c)
        }
        (FormatKind::Coo3 | FormatKind::MortonCoo3, TensorRef::MortonCoo3(mc)) => {
            validate_coo3_like(desc, &mc.coo)
        }
        _ => Ok(()),
    }
}

/// `0 <= v < extent`, compared in `u64` so absurd extents never wrap.
fn in_bounds(v: i64, extent: usize) -> bool {
    v >= 0 && (v as u64) < extent as u64
}

fn check_finite(vals: &[f64], what: &str) -> Result<(), ValidationError> {
    match vals.iter().position(|v| !v.is_finite()) {
        None => Ok(()),
        Some(p) => Err(ValidationError::new(
            InputCheck::ValueFinite,
            format!("{what}[{p}] = {} is not finite", vals[p]),
        )),
    }
}

/// Evaluates one [`OrderKey`] dimension at a dense coordinate, in `i128`
/// so corrupt-but-bounds-checked coordinates can never overflow.
fn eval_key_dim(coeffs: &[i64], constant: i64, coords: &[i64]) -> i128 {
    let mut acc = constant as i128;
    for (c, x) in coeffs.iter().zip(coords) {
        acc += (*c as i128) * (*x as i128);
    }
    acc
}

/// Compares two nonzeros' dense coordinates under `key`. Returns `None`
/// for user-defined comparators, which cannot be evaluated structurally.
fn key_cmp(key: &OrderKey, a: &[i64], b: &[i64]) -> Option<std::cmp::Ordering> {
    match &key.comparator {
        Comparator::Lexicographic => {
            for dim in &key.dims {
                let ka = eval_key_dim(&dim.coeffs, dim.constant, a);
                let kb = eval_key_dim(&dim.coeffs, dim.constant, b);
                match ka.cmp(&kb) {
                    std::cmp::Ordering::Equal => continue,
                    other => return Some(other),
                }
            }
            Some(std::cmp::Ordering::Equal)
        }
        Comparator::Morton => {
            // Catalog Morton keys are identity coordinates; evaluate the
            // affine form anyway so shifted keys stay honest. Coordinates
            // are bounds-checked before ordering runs, so the i64
            // narrowing cannot truncate.
            let ka: Vec<i64> = key
                .dims
                .iter()
                .map(|d| eval_key_dim(&d.coeffs, d.constant, a) as i64)
                .collect();
            let kb: Vec<i64> = key
                .dims
                .iter()
                .map(|d| eval_key_dim(&d.coeffs, d.constant, b) as i64)
                .collect();
            Some(morton_cmp(&ka, &kb))
        }
        Comparator::UserFn(_) => None,
    }
}

/// If every dimension of `key` is a bare coordinate (unit coefficient,
/// zero constant), returns the coordinate positions. This is every
/// catalog key; it makes the per-pair comparison a handful of `i64`
/// compares instead of generic affine evaluation.
fn identity_dims(key: &OrderKey) -> Option<Vec<usize>> {
    key.dims
        .iter()
        .map(|d| {
            if d.constant != 0 {
                return None;
            }
            let mut unit = None;
            for (p, &c) in d.coeffs.iter().enumerate() {
                match c {
                    0 => {}
                    1 if unit.is_none() && p < 3 => unit = Some(p),
                    _ => return None,
                }
            }
            unit
        })
        .collect()
}

/// Checks the reordering quantifier
/// `∀ n1 < n2 : key(n1) < key(n2)` over adjacent nonzeros.
///
/// `coords(n)` yields the dense coordinates of nonzero `n` (already
/// bounds-checked). A strict quantifier also forbids equal keys over
/// *identical coordinates* — a duplicate nonzero.
fn check_order(
    key: &OrderKey,
    nnz: usize,
    coords: impl Fn(usize) -> [i64; 3],
    rank: usize,
) -> Result<(), ValidationError> {
    if matches!(key.comparator, Comparator::UserFn(_)) {
        return Ok(()); // user-defined comparator: not checkable
    }
    if nnz < 2 {
        return Ok(());
    }
    let fast = identity_dims(key);
    let mut prev = coords(0);
    for n in 1..nnz {
        let cur = coords(n);
        let ord = match (&key.comparator, &fast) {
            (Comparator::Lexicographic, Some(dims)) => {
                let mut o = std::cmp::Ordering::Equal;
                for &p in dims {
                    o = prev[p].cmp(&cur[p]);
                    if o != std::cmp::Ordering::Equal {
                        break;
                    }
                }
                Some(o)
            }
            (Comparator::Morton, Some(dims)) => {
                // Gather the key coordinates on the stack; `morton_cmp`
                // takes slices, so no per-pair allocation.
                let mut ka = [0i64; 3];
                let mut kb = [0i64; 3];
                for (t, &p) in dims.iter().enumerate() {
                    ka[t] = prev[p];
                    kb[t] = cur[p];
                }
                Some(morton_cmp(&ka[..dims.len()], &kb[..dims.len()]))
            }
            _ => key_cmp(key, &prev[..rank], &cur[..rank]),
        };
        match ord {
            None => return Ok(()),
            Some(std::cmp::Ordering::Greater) => {
                return Err(ValidationError::new(
                    InputCheck::Ordering,
                    format!(
                        "nonzeros {} and {} are out of {} order ({:?} then {:?})",
                        n - 1,
                        n,
                        key.comparator,
                        &prev[..rank],
                        &cur[..rank]
                    ),
                ));
            }
            Some(std::cmp::Ordering::Equal) if prev[..rank] == cur[..rank] => {
                return Err(ValidationError::new(
                    InputCheck::DuplicateCoordinate,
                    format!(
                        "nonzeros {} and {} share coordinates {:?} under a strict order",
                        n - 1,
                        n,
                        &prev[..rank]
                    ),
                ));
            }
            Some(_) => {}
        }
        prev = cur;
    }
    Ok(())
}

fn validate_coo_like(
    desc: &FormatDescriptor,
    m: &CooMatrix,
) -> Result<(), ValidationError> {
    if m.row.len() != m.col.len() || m.row.len() != m.val.len() {
        return Err(ValidationError::new(
            InputCheck::ArrayLengths,
            format!(
                "COO row/col/val lengths differ: {}/{}/{}",
                m.row.len(),
                m.col.len(),
                m.val.len()
            ),
        ));
    }
    // Fast path for the catalog's coordinate descriptors: unordered, or
    // an identity lexicographic key over both coordinates. One fused,
    // branch-light sweep accumulates a single validity flag (`&`, not
    // `&&`, so the loop vectorizes); the precise per-check loops below
    // run only when something failed, to locate and describe it.
    let fast: Option<Option<(usize, usize)>> = match &desc.order {
        None => Some(None),
        Some(k) if matches!(k.comparator, Comparator::Lexicographic) => {
            match identity_dims(k).as_deref() {
                // Both coordinates must appear in the key: equal keys then
                // imply identical coordinates, i.e. a duplicate, so the
                // sweep can demand strictly increasing keys.
                Some(&[p0, p1]) if (p0, p1) == (0, 1) || (p0, p1) == (1, 0) => {
                    Some(Some((p0, p1)))
                }
                _ => None,
            }
        }
        _ => None,
    };
    if let Some(order2) = fast {
        let (row, col, val) = (&m.row[..], &m.col[..], &m.val[..]);
        let mut ok = true;
        for ((&i, &j), &v) in row.iter().zip(col).zip(val) {
            ok &= in_bounds(i, m.nr) & in_bounds(j, m.nc) & v.is_finite();
        }
        if let Some((p0, p1)) = order2 {
            for (rw, cw) in row.windows(2).zip(col.windows(2)) {
                let a = [rw[0], cw[0]];
                let b = [rw[1], cw[1]];
                ok &= (a[p0], a[p1]) < (b[p0], b[p1]);
            }
        }
        if ok {
            return Ok(());
        }
    }
    for (n, (&i, &j)) in m.row.iter().zip(&m.col).enumerate() {
        if !in_bounds(i, m.nr) || !in_bounds(j, m.nc) {
            return Err(ValidationError::new(
                InputCheck::IndexBounds,
                format!("nonzero {n} at ({i}, {j}) outside {}x{}", m.nr, m.nc),
            ));
        }
    }
    check_finite(&m.val, "val")?;
    if let Some(key) = &desc.order {
        check_order(key, m.nnz(), |n| [m.row[n], m.col[n], 0], 2)?;
    }
    Ok(())
}

fn validate_coo3_like(
    desc: &FormatDescriptor,
    t: &Coo3Tensor,
) -> Result<(), ValidationError> {
    if t.i0.len() != t.i1.len() || t.i0.len() != t.i2.len() || t.i0.len() != t.val.len() {
        return Err(ValidationError::new(
            InputCheck::ArrayLengths,
            format!(
                "COO3 coordinate/val lengths differ: {}/{}/{}/{}",
                t.i0.len(),
                t.i1.len(),
                t.i2.len(),
                t.val.len()
            ),
        ));
    }
    for n in 0..t.i0.len() {
        let (a, b, c) = (t.i0[n], t.i1[n], t.i2[n]);
        if !in_bounds(a, t.nr) || !in_bounds(b, t.nc) || !in_bounds(c, t.nz) {
            return Err(ValidationError::new(
                InputCheck::IndexBounds,
                format!(
                    "nonzero {n} at ({a}, {b}, {c}) outside {}x{}x{}",
                    t.nr, t.nc, t.nz
                ),
            ));
        }
    }
    check_finite(&t.val, "val")?;
    if let Some(key) = &desc.order {
        check_order(key, t.nnz(), |n| [t.i0[n], t.i1[n], t.i2[n]], 3)?;
    }
    Ok(())
}

/// Shared pointer-array obligations: length `n_major + 1`, ends `0..=nnz`,
/// non-decreasing. Returns the windows as `(start, end)` pairs is left to
/// the caller; this only establishes that slicing by them is safe.
fn validate_pointer(
    ptr: &[i64],
    n_major: usize,
    nnz: usize,
    what: &str,
) -> Result<(), ValidationError> {
    if ptr.len() != n_major + 1 {
        return Err(ValidationError::new(
            InputCheck::ArrayLengths,
            format!("{what} has length {}, expected {}", ptr.len(), n_major + 1),
        ));
    }
    let first = ptr[0];
    let last = ptr[ptr.len() - 1];
    if first != 0 || last != nnz as i64 {
        return Err(ValidationError::new(
            InputCheck::PointerEnds,
            format!("{what} spans {first}..={last}, expected 0..={nnz}"),
        ));
    }
    if let Some(p) = ptr.windows(2).position(|w| w[0] > w[1]) {
        return Err(ValidationError::new(
            InputCheck::PointerMonotone,
            format!(
                "{what}[{p}] = {} exceeds {what}[{}] = {}",
                ptr[p],
                p + 1,
                ptr[p + 1]
            ),
        ));
    }
    Ok(())
}

/// Shared compressed-format obligations for the minor index array:
/// bounds, strict intra-segment ordering, no duplicates. The pointer is
/// already validated, so the window slicing is in-bounds.
fn validate_compressed_minor(
    ptr: &[i64],
    idx: &[i64],
    extent: usize,
    what: &str,
) -> Result<(), ValidationError> {
    for (n, &j) in idx.iter().enumerate() {
        if !in_bounds(j, extent) {
            return Err(ValidationError::new(
                InputCheck::IndexBounds,
                format!("{what}[{n}] = {j} outside 0..{extent}"),
            ));
        }
    }
    for w in 0..ptr.len() - 1 {
        let (s, e) = (ptr[w] as usize, ptr[w + 1] as usize);
        for n in s + 1..e {
            if idx[n] == idx[n - 1] {
                return Err(ValidationError::new(
                    InputCheck::DuplicateCoordinate,
                    format!("{what} repeats index {} inside segment {w}", idx[n]),
                ));
            }
            if idx[n] < idx[n - 1] {
                return Err(ValidationError::new(
                    InputCheck::Ordering,
                    format!(
                        "{what} not increasing inside segment {w}: {} then {}",
                        idx[n - 1],
                        idx[n]
                    ),
                ));
            }
        }
    }
    Ok(())
}

fn validate_csr(m: &CsrMatrix) -> Result<(), ValidationError> {
    if m.col.len() != m.val.len() {
        return Err(ValidationError::new(
            InputCheck::ArrayLengths,
            format!("CSR col/val lengths differ: {}/{}", m.col.len(), m.val.len()),
        ));
    }
    validate_pointer(&m.rowptr, m.nr, m.val.len(), "CSR rowptr")?;
    validate_compressed_minor(&m.rowptr, &m.col, m.nc, "CSR col")?;
    check_finite(&m.val, "val")
}

fn validate_csc(m: &CscMatrix) -> Result<(), ValidationError> {
    if m.row.len() != m.val.len() {
        return Err(ValidationError::new(
            InputCheck::ArrayLengths,
            format!("CSC row/val lengths differ: {}/{}", m.row.len(), m.val.len()),
        ));
    }
    validate_pointer(&m.colptr, m.nc, m.val.len(), "CSC colptr")?;
    validate_compressed_minor(&m.colptr, &m.row, m.nr, "CSC row")?;
    check_finite(&m.val, "val")
}

fn validate_dia(m: &DiaMatrix) -> Result<(), ValidationError> {
    let nd = m.off.len();
    let expected = nd.checked_mul(m.nr).ok_or_else(|| {
        ValidationError::new(
            InputCheck::ArrayLengths,
            format!("DIA nd * nr overflows ({nd} * {})", m.nr),
        )
    })?;
    if m.data.len() != expected {
        return Err(ValidationError::new(
            InputCheck::ArrayLengths,
            format!("DIA data has length {}, expected nd * nr = {expected}", m.data.len()),
        ));
    }
    for w in 1..nd {
        if m.off[w] == m.off[w - 1] {
            return Err(ValidationError::new(
                InputCheck::DuplicateCoordinate,
                format!("DIA offset {} appears twice", m.off[w]),
            ));
        }
        if m.off[w] < m.off[w - 1] {
            return Err(ValidationError::new(
                InputCheck::Ordering,
                format!("DIA offsets not increasing: {} then {}", m.off[w - 1], m.off[w]),
            ));
        }
    }
    for (d, &o) in m.off.iter().enumerate() {
        // Declared range of `off` in Table 1: -NR < o < NC.
        if o <= -(m.nr.min(i64::MAX as usize) as i64) || o >= m.nc as i64 {
            return Err(ValidationError::new(
                InputCheck::IndexBounds,
                format!("DIA off[{d}] = {o} outside -{} < o < {}", m.nr, m.nc),
            ));
        }
    }
    check_finite(&m.data, "data")?;
    for i in 0..m.nr {
        for (d, &o) in m.off.iter().enumerate() {
            let j = i as i64 + o;
            if (j < 0 || j >= m.nc as i64) && m.data[i * nd + d] != 0.0 {
                return Err(ValidationError::new(
                    InputCheck::PaddingZero,
                    format!("DIA out-of-matrix slot (row {i}, diagonal {d}) holds a nonzero"),
                ));
            }
        }
    }
    Ok(())
}

fn validate_ell(m: &EllMatrix) -> Result<(), ValidationError> {
    let expected = m.nr.checked_mul(m.width).ok_or_else(|| {
        ValidationError::new(
            InputCheck::ArrayLengths,
            format!("ELL nr * width overflows ({} * {})", m.nr, m.width),
        )
    })?;
    if m.col.len() != expected || m.data.len() != expected {
        return Err(ValidationError::new(
            InputCheck::ArrayLengths,
            format!(
                "ELL col/data have lengths {}/{}, expected nr * width = {expected}",
                m.col.len(),
                m.data.len()
            ),
        ));
    }
    check_finite(&m.data, "data")?;
    for i in 0..m.nr {
        let row = &m.col[i * m.width..(i + 1) * m.width];
        let mut seen_pad = false;
        for (s, &j) in row.iter().enumerate() {
            if j < 0 {
                seen_pad = true;
                if m.data[i * m.width + s] != 0.0 {
                    return Err(ValidationError::new(
                        InputCheck::PaddingZero,
                        format!("ELL padded slot (row {i}, slot {s}) holds a nonzero"),
                    ));
                }
                continue;
            }
            if seen_pad {
                return Err(ValidationError::new(
                    InputCheck::PaddingZero,
                    format!("ELL row {i} has an occupied slot {s} after padding"),
                ));
            }
            if !in_bounds(j, m.nc) {
                return Err(ValidationError::new(
                    InputCheck::IndexBounds,
                    format!("ELL col (row {i}, slot {s}) = {j} outside 0..{}", m.nc),
                ));
            }
            if s > 0 && row[s - 1] >= 0 {
                if j == row[s - 1] {
                    return Err(ValidationError::new(
                        InputCheck::DuplicateCoordinate,
                        format!("ELL row {i} repeats column {j}"),
                    ));
                }
                if j < row[s - 1] {
                    return Err(ValidationError::new(
                        InputCheck::Ordering,
                        format!(
                            "ELL row {i} columns not increasing: {} then {j}",
                            row[s - 1]
                        ),
                    ));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptors;
    use crate::containers::MortonCooMatrix;

    fn coo_sorted() -> CooMatrix {
        CooMatrix::from_triplets(
            3,
            4,
            vec![0, 0, 1, 2],
            vec![0, 2, 3, 0],
            vec![1.0, 2.0, 3.0, 4.0],
        )
        .unwrap()
    }

    #[test]
    fn accepts_valid_inputs_under_matching_descriptors() {
        let coo = coo_sorted();
        validate_matrix(&descriptors::coo(), MatrixRef::Coo(&coo)).unwrap();
        validate_matrix(&descriptors::scoo(), MatrixRef::Coo(&coo)).unwrap();
        let csr = CsrMatrix::from_coo(&coo);
        validate_matrix(&descriptors::csr(), MatrixRef::Csr(&csr)).unwrap();
        let csc = CscMatrix::from_coo(&coo);
        validate_matrix(&descriptors::csc(), MatrixRef::Csc(&csc)).unwrap();
        let ell = EllMatrix::from_coo(&coo);
        validate_matrix(&descriptors::ell(), MatrixRef::Ell(&ell)).unwrap();
        let dia = DiaMatrix::from_coo(&coo);
        validate_matrix(&descriptors::dia(), MatrixRef::Dia(&dia)).unwrap();
        let mcoo = MortonCooMatrix::from_coo(&coo);
        validate_matrix(&descriptors::mcoo(), MatrixRef::MortonCoo(&mcoo)).unwrap();
    }

    #[test]
    fn order_obligation_is_the_descriptors_not_the_containers() {
        // Unsorted nonzeros: fine under COO, an ordering violation under
        // SCOO, and a Morton violation under MCOO.
        let coo =
            CooMatrix::from_triplets(3, 3, vec![2, 0], vec![0, 1], vec![1.0, 2.0]).unwrap();
        validate_matrix(&descriptors::coo(), MatrixRef::Coo(&coo)).unwrap();
        let err = validate_matrix(&descriptors::scoo(), MatrixRef::Coo(&coo)).unwrap_err();
        assert_eq!(err.check, InputCheck::Ordering);
        let err = validate_matrix(&descriptors::mcoo(), MatrixRef::Coo(&coo)).unwrap_err();
        assert_eq!(err.check, InputCheck::Ordering);
    }

    #[test]
    fn duplicate_coordinates_rejected_under_strict_orders() {
        let coo = CooMatrix::from_triplets(
            3,
            3,
            vec![1, 1],
            vec![2, 2],
            vec![1.0, 2.0],
        )
        .unwrap();
        // Unordered COO tolerates duplicates (they accumulate).
        validate_matrix(&descriptors::coo(), MatrixRef::Coo(&coo)).unwrap();
        let err = validate_matrix(&descriptors::scoo(), MatrixRef::Coo(&coo)).unwrap_err();
        assert_eq!(err.check, InputCheck::DuplicateCoordinate);
    }

    #[test]
    fn csr_obligations() {
        let mut csr = CsrMatrix::from_coo(&coo_sorted());
        csr.rowptr[1] = 3;
        csr.rowptr[2] = 2; // non-monotone
        let err = validate_matrix(&descriptors::csr(), MatrixRef::Csr(&csr)).unwrap_err();
        assert_eq!(err.check, InputCheck::PointerMonotone);

        let mut csr = CsrMatrix::from_coo(&coo_sorted());
        csr.col[0] = 99;
        let err = validate_matrix(&descriptors::csr(), MatrixRef::Csr(&csr)).unwrap_err();
        assert_eq!(err.check, InputCheck::IndexBounds);

        let mut csr = CsrMatrix::from_coo(&coo_sorted());
        csr.col[1] = csr.col[0];
        let err = validate_matrix(&descriptors::csr(), MatrixRef::Csr(&csr)).unwrap_err();
        assert_eq!(err.check, InputCheck::DuplicateCoordinate);

        let mut csr = CsrMatrix::from_coo(&coo_sorted());
        csr.val.pop();
        let err = validate_matrix(&descriptors::csr(), MatrixRef::Csr(&csr)).unwrap_err();
        assert_eq!(err.check, InputCheck::ArrayLengths);

        let mut csr = CsrMatrix::from_coo(&coo_sorted());
        *csr.rowptr.last_mut().unwrap() += 1;
        let err = validate_matrix(&descriptors::csr(), MatrixRef::Csr(&csr)).unwrap_err();
        assert_eq!(err.check, InputCheck::PointerEnds);
    }

    #[test]
    fn non_finite_values_rejected() {
        let mut coo = coo_sorted();
        coo.val[2] = f64::NAN;
        let err = validate_matrix(&descriptors::coo(), MatrixRef::Coo(&coo)).unwrap_err();
        assert_eq!(err.check, InputCheck::ValueFinite);

        let mut csc = CscMatrix::from_coo(&coo_sorted());
        csc.val[0] = f64::INFINITY;
        let err = validate_matrix(&descriptors::csc(), MatrixRef::Csc(&csc)).unwrap_err();
        assert_eq!(err.check, InputCheck::ValueFinite);
    }

    #[test]
    fn dia_and_ell_padding_obligations() {
        let mut dia = DiaMatrix::from_coo(&coo_sorted());
        dia.data.pop();
        let err = validate_matrix(&descriptors::dia(), MatrixRef::Dia(&dia)).unwrap_err();
        assert_eq!(err.check, InputCheck::ArrayLengths);

        // Nonzero in an out-of-matrix DIA slot.
        let dia = DiaMatrix { nr: 2, nc: 2, off: vec![1], data: vec![5.0, 7.0] };
        let err = validate_matrix(&descriptors::dia(), MatrixRef::Dia(&dia)).unwrap_err();
        assert_eq!(err.check, InputCheck::PaddingZero);

        let mut ell = EllMatrix::from_coo(&coo_sorted());
        // Interior padding: make slot 0 a sentinel while slot 1 stays.
        ell.col[0] = -1;
        ell.data[0] = 0.0;
        let err = validate_matrix(&descriptors::ell(), MatrixRef::Ell(&ell)).unwrap_err();
        assert_eq!(err.check, InputCheck::PaddingZero);
    }

    #[test]
    fn tensor_obligations() {
        let t = Coo3Tensor::from_coords(
            (2, 2, 2),
            vec![1, 0],
            vec![0, 1],
            vec![0, 1],
            vec![1.0, 2.0],
        )
        .unwrap();
        validate_tensor(&descriptors::coo3(), TensorRef::Coo3(&t)).unwrap();
        let err = validate_tensor(&descriptors::scoo3(), TensorRef::Coo3(&t)).unwrap_err();
        assert_eq!(err.check, InputCheck::Ordering);

        let mut short = t.clone();
        short.i2.pop();
        let err = validate_tensor(&descriptors::coo3(), TensorRef::Coo3(&short)).unwrap_err();
        assert_eq!(err.check, InputCheck::ArrayLengths);
    }

    #[test]
    fn mismatched_pairings_pass_through_to_dispatch() {
        // CSR container under a COO descriptor: not validation's call.
        let csr = CsrMatrix::from_coo(&coo_sorted());
        validate_matrix(&descriptors::coo(), MatrixRef::Csr(&csr)).unwrap();
    }

    #[test]
    fn static_counterparts_are_stable() {
        assert_eq!(InputCheck::PointerMonotone.static_counterpart(), Some("SA006"));
        assert_eq!(InputCheck::Ordering.static_counterpart(), Some("SA007"));
        assert_eq!(InputCheck::ValueFinite.static_counterpart(), None);
        assert_eq!(InputCheck::PointerMonotone.as_str(), "pointer-monotone");
    }
}
