//! Compressed Sparse Row (CSR) container.
//!
//! CSR compresses rows into a `rowptr` array (the paper's monotonic UF)
//! with per-nonzero column indices (`col2`) ordered row-major — the
//! destination of the paper's headline COO→CSR experiment (Figure 2c).

use super::coo::CooMatrix;
use super::dense::DenseMatrix;
use crate::FormatError;

/// A CSR matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    /// Number of rows (`NR`).
    pub nr: usize,
    /// Number of columns (`NC`).
    pub nc: usize,
    /// Row pointers (`rowptr`), length `nr + 1`, non-decreasing.
    pub rowptr: Vec<i64>,
    /// Column index per nonzero (`col2`), sorted within each row.
    pub col: Vec<i64>,
    /// Value per nonzero.
    pub val: Vec<f64>,
}

impl CsrMatrix {
    /// Builds and validates a CSR matrix.
    ///
    /// # Errors
    /// Returns [`FormatError`] when any invariant fails (see
    /// [`CsrMatrix::validate`]).
    pub fn new(
        nr: usize,
        nc: usize,
        rowptr: Vec<i64>,
        col: Vec<i64>,
        val: Vec<f64>,
    ) -> Result<Self, FormatError> {
        let m = CsrMatrix { nr, nc, rowptr, col, val };
        m.validate()?;
        Ok(m)
    }

    /// Checks every invariant of the format descriptor: pointer length
    /// and range (its domain/range in Table 1), monotonicity (its
    /// universal quantifier), column bounds, and intra-row ordering (the
    /// second universal quantifier).
    ///
    /// # Errors
    /// Returns the first violated invariant.
    pub fn validate(&self) -> Result<(), FormatError> {
        if self.rowptr.len() != self.nr + 1 {
            return Err(FormatError::LengthMismatch {
                what: "CSR rowptr (must be nr + 1)",
                lens: vec![self.rowptr.len(), self.nr + 1],
            });
        }
        if self.col.len() != self.val.len() {
            return Err(FormatError::LengthMismatch {
                what: "CSR col/val",
                lens: vec![self.col.len(), self.val.len()],
            });
        }
        let nnz = self.val.len() as i64;
        // The length check above guarantees rowptr is non-empty; the -1
        // sentinel keeps this total (and failing) if that ever regresses.
        let first = self.rowptr.first().copied().unwrap_or(-1);
        let last = self.rowptr.last().copied().unwrap_or(-1);
        if first != 0 || last != nnz {
            return Err(FormatError::BadPointerEnds { what: "CSR rowptr", first, last, nnz });
        }
        if self.rowptr.windows(2).any(|w| w[0] > w[1]) {
            return Err(FormatError::NotMonotonic { what: "CSR rowptr" });
        }
        for i in 0..self.nr {
            let (s, e) = (self.rowptr[i] as usize, self.rowptr[i + 1] as usize);
            let row = &self.col[s..e];
            if row.iter().any(|&j| j < 0 || j as usize >= self.nc) {
                return Err(FormatError::CoordinateOutOfRange {
                    coords: row.to_vec(),
                    dims: vec![self.nr, self.nc],
                });
            }
            if row.windows(2).any(|w| w[0] >= w[1]) {
                return Err(FormatError::NotSorted { what: "CSR columns within a row" });
            }
        }
        Ok(())
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.val.len()
    }

    /// Reference conversion from COO (the test oracle): counting sort by
    /// row, then per-row column sort.
    pub fn from_coo(coo: &CooMatrix) -> Self {
        let nnz = coo.nnz();
        let mut rowptr = vec![0i64; coo.nr + 1];
        for &i in &coo.row {
            rowptr[i as usize + 1] += 1;
        }
        for i in 0..coo.nr {
            rowptr[i + 1] += rowptr[i];
        }
        let mut next = rowptr.clone();
        let mut col = vec![0i64; nnz];
        let mut val = vec![0.0; nnz];
        for (i, j, v) in coo.iter() {
            let p = next[i as usize] as usize;
            col[p] = j;
            val[p] = v;
            next[i as usize] += 1;
        }
        // Sort within rows by column; the position tiebreak makes the
        // unstable sort equivalent to the stable one it replaced.
        for i in 0..coo.nr {
            let (s, e) = (rowptr[i] as usize, rowptr[i + 1] as usize);
            let mut keyed: Vec<(i64, usize)> = (s..e).map(|p| (col[p], p)).collect();
            keyed.sort_unstable();
            let (c_new, v_new): (Vec<i64>, Vec<f64>) =
                keyed.iter().map(|&(c, p)| (c, val[p])).unzip();
            col[s..e].copy_from_slice(&c_new);
            val[s..e].copy_from_slice(&v_new);
        }
        CsrMatrix { nr: coo.nr, nc: coo.nc, rowptr, col, val }
    }

    /// Converts back to row-major-sorted COO.
    pub fn to_coo(&self) -> CooMatrix {
        let mut row = Vec::with_capacity(self.nnz());
        for i in 0..self.nr {
            for _ in self.rowptr[i]..self.rowptr[i + 1] {
                row.push(i as i64);
            }
        }
        CooMatrix {
            nr: self.nr,
            nc: self.nc,
            row,
            col: self.col.clone(),
            val: self.val.clone(),
        }
    }

    /// Materializes as dense.
    pub fn to_dense(&self) -> DenseMatrix {
        self.to_coo().to_dense()
    }

    /// Sparse matrix–vector product `y = A x`.
    ///
    /// # Panics
    /// Panics when `x.len() != nc`.
    #[allow(clippy::needless_range_loop)] // index math mirrors the kernels
    pub fn spmv(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.nc);
        let mut y = vec![0.0; self.nr];
        for i in 0..self.nr {
            let mut acc = 0.0;
            for k in self.rowptr[i] as usize..self.rowptr[i + 1] as usize {
                acc += self.val[k] * x[self.col[k] as usize];
            }
            y[i] = acc;
        }
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_coo() -> CooMatrix {
        CooMatrix::from_triplets(
            3,
            4,
            vec![0, 0, 1, 2],
            vec![2, 0, 3, 0],
            vec![2.0, 1.0, 3.0, 4.0],
        )
        .unwrap()
    }

    #[test]
    fn from_coo_reference() {
        let csr = CsrMatrix::from_coo(&sample_coo());
        assert_eq!(csr.rowptr, vec![0, 2, 3, 4]);
        assert_eq!(csr.col, vec![0, 2, 3, 0]);
        assert_eq!(csr.val, vec![1.0, 2.0, 3.0, 4.0]);
        csr.validate().unwrap();
    }

    #[test]
    fn handles_empty_rows() {
        let coo =
            CooMatrix::from_triplets(4, 2, vec![3], vec![1], vec![7.0]).unwrap();
        let csr = CsrMatrix::from_coo(&coo);
        assert_eq!(csr.rowptr, vec![0, 0, 0, 0, 1]);
        csr.validate().unwrap();
    }

    #[test]
    fn round_trip_through_coo() {
        let coo = sample_coo();
        let csr = CsrMatrix::from_coo(&coo);
        let mut back = csr.to_coo();
        back.sort_row_major();
        let mut orig = coo;
        orig.sort_row_major();
        assert_eq!(back, orig);
    }

    #[test]
    fn validate_catches_violations() {
        // Bad pointer end.
        assert!(matches!(
            CsrMatrix::new(1, 2, vec![0, 2], vec![0], vec![1.0]),
            Err(FormatError::BadPointerEnds { .. })
        ));
        // Non-monotonic pointer.
        assert!(matches!(
            CsrMatrix::new(2, 2, vec![0, 2, 1], vec![0], vec![1.0]),
            Err(FormatError::LengthMismatch { .. }) | Err(FormatError::NotMonotonic { .. })
        ));
        // Unsorted columns in a row.
        assert!(matches!(
            CsrMatrix::new(1, 3, vec![0, 2], vec![2, 1], vec![1.0, 2.0]),
            Err(FormatError::NotSorted { .. })
        ));
    }

    #[test]
    fn spmv_agrees_with_dense() {
        let coo = sample_coo();
        let csr = CsrMatrix::from_coo(&coo);
        let x = [1.0, -1.0, 0.5, 2.0];
        assert_eq!(csr.spmv(&x), coo.to_dense().spmv(&x));
    }
}
