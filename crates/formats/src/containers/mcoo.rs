//! Morton-ordered COO containers (`MCOO` / `MCOO3` in Table 1).
//!
//! These are COO layouts whose nonzeros are sorted by the Morton (Z-order)
//! code of their dense coordinates — the reordering universal quantifier
//! that distinguishes this paper's descriptor language from prior format
//! abstractions. HiCOO and ALTO use this family of orderings for locality
//! in mode-agnostic tensor kernels.

use spf_codegen::kernels::morton_sort_perm;
use spf_codegen::morton::morton_cmp;

use super::coo::{Coo3Tensor, CooMatrix};
use crate::FormatError;

/// A Morton-ordered COO matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct MortonCooMatrix {
    /// The underlying coordinate storage (`row_m`, `col_m`).
    pub coo: CooMatrix,
}

impl MortonCooMatrix {
    /// Wraps a COO matrix after checking the Morton-order universal
    /// quantifier
    /// `∀n1, n2 : n1 < n2 ⟺ MORTON(row(n1), col(n1)) < MORTON(row(n2), col(n2))`.
    ///
    /// # Errors
    /// Returns [`FormatError::NotSorted`] when the order is violated.
    pub fn new(coo: CooMatrix) -> Result<Self, FormatError> {
        let m = MortonCooMatrix { coo };
        m.validate()?;
        Ok(m)
    }

    /// Reference conversion: sorts a COO matrix into Morton order.
    ///
    /// Uses the precomputed-key Morton sort (codes packed into `u128`
    /// where they fit, position tiebreak), so the result is identical to
    /// a stable comparison sort by [`morton_cmp`].
    pub fn from_coo(coo: &CooMatrix) -> Self {
        let mut sorted = coo.clone();
        let idx = morton_sort_perm(&[&coo.row, &coo.col]);
        sorted.permute(&idx);
        MortonCooMatrix { coo: sorted }
    }

    /// Checks the Morton ordering invariant.
    ///
    /// # Errors
    /// Returns [`FormatError::NotSorted`] when consecutive nonzeros are
    /// out of Z-order.
    pub fn validate(&self) -> Result<(), FormatError> {
        for n in 1..self.coo.nnz() {
            let a = [self.coo.row[n - 1], self.coo.col[n - 1]];
            let b = [self.coo.row[n], self.coo.col[n]];
            if morton_cmp(&a, &b) == std::cmp::Ordering::Greater {
                return Err(FormatError::NotSorted { what: "MCOO Morton order" });
            }
        }
        Ok(())
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.coo.nnz()
    }
}

/// A Morton-ordered order-3 COO tensor (`MCOO3`).
#[derive(Debug, Clone, PartialEq)]
pub struct MortonCoo3Tensor {
    /// The underlying coordinate storage.
    pub coo: Coo3Tensor,
}

impl MortonCoo3Tensor {
    /// Wraps a tensor after checking the 3-D Morton order.
    ///
    /// # Errors
    /// Returns [`FormatError::NotSorted`] when the order is violated.
    pub fn new(coo: Coo3Tensor) -> Result<Self, FormatError> {
        let t = MortonCoo3Tensor { coo };
        t.validate()?;
        Ok(t)
    }

    /// Reference conversion: sorts a COO3 tensor into Morton order (the
    /// oracle for the Table 4 experiment), via the precomputed-key
    /// Morton sort.
    pub fn from_coo3(coo: &Coo3Tensor) -> Self {
        let mut sorted = coo.clone();
        let idx = morton_sort_perm(&[&coo.i0, &coo.i1, &coo.i2]);
        sorted.permute(&idx);
        MortonCoo3Tensor { coo: sorted }
    }

    /// Checks the Morton ordering invariant.
    ///
    /// # Errors
    /// Returns [`FormatError::NotSorted`] when consecutive nonzeros are
    /// out of Z-order.
    pub fn validate(&self) -> Result<(), FormatError> {
        for n in 1..self.coo.nnz() {
            let a = [self.coo.i0[n - 1], self.coo.i1[n - 1], self.coo.i2[n - 1]];
            let b = [self.coo.i0[n], self.coo.i1[n], self.coo.i2[n]];
            if morton_cmp(&a, &b) == std::cmp::Ordering::Greater {
                return Err(FormatError::NotSorted { what: "MCOO3 Morton order" });
            }
        }
        Ok(())
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.coo.nnz()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_coo_sorts_and_validates() {
        let coo = CooMatrix::from_triplets(
            4,
            4,
            vec![3, 0, 1, 2],
            vec![3, 0, 1, 2],
            vec![4.0, 1.0, 2.0, 3.0],
        )
        .unwrap();
        let m = MortonCooMatrix::from_coo(&coo);
        m.validate().unwrap();
        // Z-order on the diagonal is just the diagonal order.
        assert_eq!(m.coo.row, vec![0, 1, 2, 3]);
        assert_eq!(m.coo.val, vec![1.0, 2.0, 3.0, 4.0]);
        // Values preserved as a multiset and dense equality holds.
        assert_eq!(m.coo.to_dense(), coo.to_dense());
    }

    #[test]
    fn new_rejects_out_of_order() {
        let coo = CooMatrix::from_triplets(
            2,
            2,
            vec![1, 0],
            vec![1, 0],
            vec![1.0, 2.0],
        )
        .unwrap();
        assert!(matches!(
            MortonCooMatrix::new(coo),
            Err(FormatError::NotSorted { .. })
        ));
    }

    #[test]
    fn mcoo3_round_trip_values() {
        let t = Coo3Tensor::from_coords(
            (4, 4, 4),
            vec![3, 0, 2],
            vec![1, 1, 0],
            vec![0, 2, 3],
            vec![1.0, 2.0, 3.0],
        )
        .unwrap();
        let m = MortonCoo3Tensor::from_coo3(&t);
        m.validate().unwrap();
        assert_eq!(m.nnz(), 3);
        // TTV results agree (order-insensitive check).
        let x = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(m.coo.ttv_mode2(&x), t.ttv_mode2(&x));
    }
}
