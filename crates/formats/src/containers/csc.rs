//! Compressed Sparse Column (CSC) container — the transpose-ordered twin
//! of CSR and the destination of the paper's COO→CSC and CSR→CSC
//! experiments (Figures 2a and 2b).

use super::coo::CooMatrix;
use super::csr::CsrMatrix;
use super::dense::DenseMatrix;
use crate::FormatError;

/// A CSC matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct CscMatrix {
    /// Number of rows (`NR`).
    pub nr: usize,
    /// Number of columns (`NC`).
    pub nc: usize,
    /// Column pointers (`colptr`), length `nc + 1`, non-decreasing.
    pub colptr: Vec<i64>,
    /// Row index per nonzero (`row`), sorted within each column.
    pub row: Vec<i64>,
    /// Value per nonzero.
    pub val: Vec<f64>,
}

impl CscMatrix {
    /// Builds and validates a CSC matrix.
    ///
    /// # Errors
    /// Returns [`FormatError`] when any invariant fails.
    pub fn new(
        nr: usize,
        nc: usize,
        colptr: Vec<i64>,
        row: Vec<i64>,
        val: Vec<f64>,
    ) -> Result<Self, FormatError> {
        let m = CscMatrix { nr, nc, colptr, row, val };
        m.validate()?;
        Ok(m)
    }

    /// Checks pointer shape, monotonicity, row bounds, and intra-column
    /// ordering — the CSC descriptor's domain/range and universal
    /// quantifiers.
    ///
    /// # Errors
    /// Returns the first violated invariant.
    pub fn validate(&self) -> Result<(), FormatError> {
        if self.colptr.len() != self.nc + 1 {
            return Err(FormatError::LengthMismatch {
                what: "CSC colptr (must be nc + 1)",
                lens: vec![self.colptr.len(), self.nc + 1],
            });
        }
        if self.row.len() != self.val.len() {
            return Err(FormatError::LengthMismatch {
                what: "CSC row/val",
                lens: vec![self.row.len(), self.val.len()],
            });
        }
        let nnz = self.val.len() as i64;
        // The length check above guarantees colptr is non-empty; the -1
        // sentinel keeps this total (and failing) if that ever regresses.
        let first = self.colptr.first().copied().unwrap_or(-1);
        let last = self.colptr.last().copied().unwrap_or(-1);
        if first != 0 || last != nnz {
            return Err(FormatError::BadPointerEnds { what: "CSC colptr", first, last, nnz });
        }
        if self.colptr.windows(2).any(|w| w[0] > w[1]) {
            return Err(FormatError::NotMonotonic { what: "CSC colptr" });
        }
        for j in 0..self.nc {
            let (s, e) = (self.colptr[j] as usize, self.colptr[j + 1] as usize);
            let colrows = &self.row[s..e];
            if colrows.iter().any(|&i| i < 0 || i as usize >= self.nr) {
                return Err(FormatError::CoordinateOutOfRange {
                    coords: colrows.to_vec(),
                    dims: vec![self.nr, self.nc],
                });
            }
            if colrows.windows(2).any(|w| w[0] >= w[1]) {
                return Err(FormatError::NotSorted { what: "CSC rows within a column" });
            }
        }
        Ok(())
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.val.len()
    }

    /// Reference conversion from COO: counting sort by column, then
    /// per-column row sort.
    pub fn from_coo(coo: &CooMatrix) -> Self {
        let nnz = coo.nnz();
        let mut colptr = vec![0i64; coo.nc + 1];
        for &j in &coo.col {
            colptr[j as usize + 1] += 1;
        }
        for j in 0..coo.nc {
            colptr[j + 1] += colptr[j];
        }
        let mut next = colptr.clone();
        let mut row = vec![0i64; nnz];
        let mut val = vec![0.0; nnz];
        for (i, j, v) in coo.iter() {
            let p = next[j as usize] as usize;
            row[p] = i;
            val[p] = v;
            next[j as usize] += 1;
        }
        // Position tiebreak makes the unstable sort equivalent to the
        // stable one it replaced.
        for j in 0..coo.nc {
            let (s, e) = (colptr[j] as usize, colptr[j + 1] as usize);
            let mut keyed: Vec<(i64, usize)> = (s..e).map(|p| (row[p], p)).collect();
            keyed.sort_unstable();
            let (r_new, v_new): (Vec<i64>, Vec<f64>) =
                keyed.iter().map(|&(r, p)| (r, val[p])).unzip();
            row[s..e].copy_from_slice(&r_new);
            val[s..e].copy_from_slice(&v_new);
        }
        CscMatrix { nr: coo.nr, nc: coo.nc, colptr, row, val }
    }

    /// Reference conversion from CSR (the CSR→CSC oracle).
    pub fn from_csr(csr: &CsrMatrix) -> Self {
        Self::from_coo(&csr.to_coo())
    }

    /// Converts to column-major-sorted COO.
    pub fn to_coo(&self) -> CooMatrix {
        let mut col = Vec::with_capacity(self.nnz());
        for j in 0..self.nc {
            for _ in self.colptr[j]..self.colptr[j + 1] {
                col.push(j as i64);
            }
        }
        CooMatrix {
            nr: self.nr,
            nc: self.nc,
            row: self.row.clone(),
            col,
            val: self.val.clone(),
        }
    }

    /// Materializes as dense.
    pub fn to_dense(&self) -> DenseMatrix {
        self.to_coo().to_dense()
    }

    /// Sparse matrix–vector product `y = A x`.
    ///
    /// # Panics
    /// Panics when `x.len() != nc`.
    #[allow(clippy::needless_range_loop)] // index math mirrors the kernels
    pub fn spmv(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.nc);
        let mut y = vec![0.0; self.nr];
        for j in 0..self.nc {
            let xj = x[j];
            for k in self.colptr[j] as usize..self.colptr[j + 1] as usize {
                y[self.row[k] as usize] += self.val[k] * xj;
            }
        }
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_coo() -> CooMatrix {
        CooMatrix::from_triplets(
            3,
            4,
            vec![0, 0, 1, 2],
            vec![2, 0, 3, 0],
            vec![2.0, 1.0, 3.0, 4.0],
        )
        .unwrap()
    }

    #[test]
    fn from_coo_reference() {
        let csc = CscMatrix::from_coo(&sample_coo());
        assert_eq!(csc.colptr, vec![0, 2, 2, 3, 4]);
        assert_eq!(csc.row, vec![0, 2, 0, 1]);
        assert_eq!(csc.val, vec![1.0, 4.0, 2.0, 3.0]);
        csc.validate().unwrap();
    }

    #[test]
    fn from_csr_matches_from_coo() {
        let coo = sample_coo();
        let via_csr = CscMatrix::from_csr(&CsrMatrix::from_coo(&coo));
        let direct = CscMatrix::from_coo(&coo);
        assert_eq!(via_csr, direct);
    }

    #[test]
    fn dense_round_trip() {
        let coo = sample_coo();
        let csc = CscMatrix::from_coo(&coo);
        assert_eq!(csc.to_dense(), coo.to_dense());
    }

    #[test]
    fn spmv_agrees_with_dense() {
        let coo = sample_coo();
        let csc = CscMatrix::from_coo(&coo);
        let x = [2.0, 0.0, -1.0, 1.0];
        assert_eq!(csc.spmv(&x), coo.to_dense().spmv(&x));
    }

    #[test]
    fn validate_catches_unsorted_rows() {
        assert!(matches!(
            CscMatrix::new(3, 1, vec![0, 2], vec![2, 1], vec![1.0, 2.0]),
            Err(FormatError::NotSorted { .. })
        ));
    }
}
