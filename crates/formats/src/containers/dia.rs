//! Diagonal (DIA) container.
//!
//! DIA compresses each populated diagonal of a matrix (Figure 1 of the
//! paper): a sorted `off` array of diagonal offsets `j - i` and a dense
//! `ND × NR` data block addressed as `kd = ND * ii + d` (the paper's data
//! access relation). Zero padding fills positions whose diagonal leaves
//! the matrix. DIA is the destination of the paper's hardest experiment
//! (Figure 2d and the binary-search variant of Figure 3).

use super::coo::CooMatrix;
use super::dense::DenseMatrix;
use crate::FormatError;

/// A DIA matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct DiaMatrix {
    /// Number of rows (`NR`).
    pub nr: usize,
    /// Number of columns (`NC`).
    pub nc: usize,
    /// Sorted diagonal offsets `j - i` (`off`), strictly increasing.
    pub off: Vec<i64>,
    /// Data, length `nd * nr`, addressed `data[i * nd + d]` per the
    /// paper's `kd = ND * ii + d`.
    pub data: Vec<f64>,
}

impl DiaMatrix {
    /// Builds and validates a DIA matrix.
    ///
    /// # Errors
    /// Returns [`FormatError`] when any invariant fails.
    pub fn new(
        nr: usize,
        nc: usize,
        off: Vec<i64>,
        data: Vec<f64>,
    ) -> Result<Self, FormatError> {
        let m = DiaMatrix { nr, nc, off, data };
        m.validate()?;
        Ok(m)
    }

    /// Checks the descriptor invariants: `off` strictly increasing (its
    /// universal quantifier), offsets within matrix bounds, data length
    /// `nd * nr`, and zero padding outside the matrix.
    ///
    /// # Errors
    /// Returns the first violated invariant.
    pub fn validate(&self) -> Result<(), FormatError> {
        if self.off.windows(2).any(|w| w[0] >= w[1]) {
            return Err(FormatError::NotSorted { what: "DIA offsets" });
        }
        if let Some(&o) = self
            .off
            .iter()
            .find(|&&o| o <= -(self.nr as i64) || o >= self.nc as i64)
        {
            return Err(FormatError::CoordinateOutOfRange {
                coords: vec![o],
                dims: vec![self.nr, self.nc],
            });
        }
        // checked_mul: with corrupt public fields `nd * nr` can exceed
        // usize, and a wrapping product must read as a length mismatch,
        // not an arithmetic panic.
        let expected = self.nd().checked_mul(self.nr);
        if expected != Some(self.data.len()) {
            return Err(FormatError::LengthMismatch {
                what: "DIA data (must be nd * nr)",
                lens: vec![self.data.len(), expected.unwrap_or(usize::MAX)],
            });
        }
        for i in 0..self.nr {
            for (d, &o) in self.off.iter().enumerate() {
                let j = i as i64 + o;
                if (j < 0 || j >= self.nc as i64) && self.data[i * self.nd() + d] != 0.0 {
                    return Err(FormatError::NonzeroPadding {
                        what: "DIA out-of-matrix slot",
                        row: i,
                        diag: d,
                    });
                }
            }
        }
        Ok(())
    }

    /// Number of stored diagonals (`ND`).
    pub fn nd(&self) -> usize {
        self.off.len()
    }

    /// Structural nonzero count: in-matrix slots holding a nonzero value.
    /// Total (never panics), even on containers whose public fields
    /// violate the invariants — out-of-range slots simply don't count.
    pub fn stored_nnz(&self) -> usize {
        let nd = self.nd();
        let mut nnz = 0;
        for i in 0..self.nr {
            for (d, &o) in self.off.iter().enumerate() {
                let j = i as i64 + o;
                if j < 0 || j >= self.nc as i64 {
                    continue;
                }
                if let Some(slot) = i.checked_mul(nd).and_then(|k| k.checked_add(d)) {
                    if self.data.get(slot).is_some_and(|&v| v != 0.0) {
                        nnz += 1;
                    }
                }
            }
        }
        nnz
    }

    /// Value at `(i, j)`; zero when the diagonal is absent.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        match self.off.binary_search(&(j as i64 - i as i64)) {
            Ok(d) => self.data[i * self.nd() + d],
            Err(_) => 0.0,
        }
    }

    /// Reference conversion from COO (the test oracle).
    pub fn from_coo(coo: &CooMatrix) -> Self {
        let off = coo.diagonals();
        let nd = off.len();
        let mut data = vec![0.0; nd * coo.nr];
        for (i, j, v) in coo.iter() {
            // `off` is exactly coo.diagonals(), so the search always hits.
            if let Ok(d) = off.binary_search(&(j - i)) {
                data[i as usize * nd + d] += v;
            }
        }
        DiaMatrix { nr: coo.nr, nc: coo.nc, off, data }
    }

    /// Converts to row-major-sorted COO, dropping explicit zeros
    /// introduced by padding.
    pub fn to_coo(&self) -> CooMatrix {
        let mut row = Vec::new();
        let mut col = Vec::new();
        let mut val = Vec::new();
        for i in 0..self.nr {
            for (d, &o) in self.off.iter().enumerate() {
                let j = i as i64 + o;
                if j < 0 || j >= self.nc as i64 {
                    continue;
                }
                let v = self.data[i * self.nd() + d];
                if v != 0.0 {
                    row.push(i as i64);
                    col.push(j);
                    val.push(v);
                }
            }
        }
        CooMatrix { nr: self.nr, nc: self.nc, row, col, val }
    }

    /// Materializes as dense.
    pub fn to_dense(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.nr, self.nc);
        for i in 0..self.nr {
            for (d, &o) in self.off.iter().enumerate() {
                let j = i as i64 + o;
                if j >= 0 && j < self.nc as i64 {
                    out.set(i, j as usize, self.data[i * self.nd() + d]);
                }
            }
        }
        out
    }

    /// Sparse matrix–vector product `y = A x` over the diagonal layout.
    ///
    /// # Panics
    /// Panics when `x.len() != nc`.
    pub fn spmv(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.nc);
        let nd = self.nd();
        let mut y = vec![0.0; self.nr];
        for (d, &o) in self.off.iter().enumerate() {
            let lo = 0.max(-o) as usize;
            let hi = self.nr.min((self.nc as i64 - o).max(0) as usize);
            for i in lo..hi {
                y[i] += self.data[i * nd + d] * x[(i as i64 + o) as usize];
            }
        }
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tri_coo() -> CooMatrix {
        // Tridiagonal 4x4 with distinct values.
        let mut row = Vec::new();
        let mut col = Vec::new();
        let mut val = Vec::new();
        let mut v = 1.0;
        for i in 0..4i64 {
            for j in (i - 1).max(0)..=(i + 1).min(3) {
                row.push(i);
                col.push(j);
                val.push(v);
                v += 1.0;
            }
        }
        CooMatrix::from_triplets(4, 4, row, col, val).unwrap()
    }

    #[test]
    fn from_coo_reference() {
        let coo = tri_coo();
        let dia = DiaMatrix::from_coo(&coo);
        assert_eq!(dia.off, vec![-1, 0, 1]);
        assert_eq!(dia.nd(), 3);
        dia.validate().unwrap();
        assert_eq!(dia.to_dense(), coo.to_dense());
    }

    #[test]
    fn get_absent_diagonal_is_zero() {
        let dia = DiaMatrix::from_coo(&tri_coo());
        assert_eq!(dia.get(0, 3), 0.0);
        assert_eq!(dia.get(0, 0), 1.0);
    }

    #[test]
    fn round_trip_through_coo() {
        let coo = tri_coo();
        let dia = DiaMatrix::from_coo(&coo);
        let mut back = dia.to_coo();
        back.sort_row_major();
        let mut orig = coo;
        orig.sort_row_major();
        assert_eq!(back, orig);
    }

    #[test]
    fn spmv_agrees_with_dense() {
        let coo = tri_coo();
        let dia = DiaMatrix::from_coo(&coo);
        let x = [1.0, 2.0, 3.0, 4.0];
        let expect = coo.to_dense().spmv(&x);
        let got = dia.spmv(&x);
        for (a, b) in got.iter().zip(&expect) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn validate_catches_violations() {
        // Unsorted offsets.
        assert!(matches!(
            DiaMatrix::new(2, 2, vec![1, 0], vec![0.0; 4]),
            Err(FormatError::NotSorted { .. })
        ));
        // Wrong data length.
        assert!(matches!(
            DiaMatrix::new(2, 2, vec![0], vec![0.0; 3]),
            Err(FormatError::LengthMismatch { .. })
        ));
        // Nonzero padding in an out-of-matrix slot: offset 1 at row 1 of a
        // 2x2 lands at column 2 (outside).
        assert!(matches!(
            DiaMatrix::new(2, 2, vec![1], vec![5.0, 7.0]),
            Err(FormatError::NonzeroPadding { .. })
        ));
        // Offset outside the matrix entirely.
        assert!(matches!(
            DiaMatrix::new(2, 2, vec![5], vec![0.0, 0.0]),
            Err(FormatError::CoordinateOutOfRange { .. })
        ));
    }
}
