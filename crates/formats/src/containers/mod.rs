//! Runtime sparse containers: the concrete data structures the format
//! descriptors describe, with validation against the descriptor
//! invariants, reference conversions (the test oracles for synthesized
//! code), and per-format SpMV/TTV kernels.

pub mod any;
pub mod bcsr;
pub mod coo;
pub mod csc;
pub mod csf;
pub mod csr;
pub mod dense;
pub mod dia;
pub mod ell;
pub mod hicoo;
pub mod mcoo;

pub use any::{AnyMatrix, AnyTensor, MatrixRef, TensorRef};
pub use bcsr::BcsrMatrix;
pub use coo::{Coo3Tensor, CooMatrix};
pub use csc::CscMatrix;
pub use csf::CsfTensor;
pub use csr::CsrMatrix;
pub use dense::DenseMatrix;
pub use dia::DiaMatrix;
pub use ell::EllMatrix;
pub use hicoo::HicooTensor;
pub use mcoo::{MortonCoo3Tensor, MortonCooMatrix};
