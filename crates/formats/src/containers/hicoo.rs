//! HiCOO: hierarchical blocked Morton-ordered COO storage (Li, Sun,
//! Vuduc, SC'18) — the format whose hand-written z-Morton reordering step
//! the paper compares against in Table 4.
//!
//! Nonzeros are sorted in Z-order and grouped into `2^b × 2^b × 2^b`
//! blocks: a block pointer array (`bptr`), per-block block coordinates,
//! and compact per-nonzero in-block offsets. The whole-tensor Morton sort
//! that builds this layout is exactly what the synthesized COO3D→MCOO3
//! conversion produces, which is why the paper's comparison is apt.

use spf_codegen::morton::morton_cmp;

use super::coo::Coo3Tensor;
use super::dense::DenseMatrix;
use super::mcoo::MortonCoo3Tensor;
use crate::FormatError;

/// A HiCOO-compressed order-3 tensor.
#[derive(Debug, Clone, PartialEq)]
pub struct HicooTensor {
    /// Mode extents.
    pub dims: (usize, usize, usize),
    /// Log2 of the block edge length.
    pub block_bits: u32,
    /// Block pointers into the nonzero arrays, length `nblocks + 1`.
    pub bptr: Vec<i64>,
    /// Block coordinates per block (mode 0).
    pub bi: Vec<i64>,
    /// Block coordinates per block (mode 1).
    pub bj: Vec<i64>,
    /// Block coordinates per block (mode 2).
    pub bk: Vec<i64>,
    /// In-block offsets per nonzero (mode 0), `< 2^block_bits`.
    pub ei: Vec<u16>,
    /// In-block offsets per nonzero (mode 1).
    pub ej: Vec<u16>,
    /// In-block offsets per nonzero (mode 2).
    pub ek: Vec<u16>,
    /// Values.
    pub val: Vec<f64>,
}

impl HicooTensor {
    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.val.len()
    }

    /// Number of blocks.
    pub fn nblocks(&self) -> usize {
        self.bi.len()
    }

    /// Builds HiCOO from a Morton-ordered tensor (blocks are contiguous
    /// under Z-order because the curve is hierarchical).
    ///
    /// # Panics
    /// Panics when `block_bits > 16` (in-block offsets are `u16`).
    pub fn from_mcoo3(m: &MortonCoo3Tensor, block_bits: u32) -> Self {
        assert!(block_bits <= 16, "block offsets are u16");
        let t = &m.coo;
        let mask = (1i64 << block_bits) - 1;
        let mut out = HicooTensor {
            dims: (t.nr, t.nc, t.nz),
            block_bits,
            bptr: vec![0],
            bi: Vec::new(),
            bj: Vec::new(),
            bk: Vec::new(),
            ei: Vec::with_capacity(t.nnz()),
            ej: Vec::with_capacity(t.nnz()),
            ek: Vec::with_capacity(t.nnz()),
            val: t.val.clone(),
        };
        for n in 0..t.nnz() {
            let (bi, bj, bk) = (
                t.i0[n] >> block_bits,
                t.i1[n] >> block_bits,
                t.i2[n] >> block_bits,
            );
            // bi/bj/bk are pushed in lockstep, so their last elements
            // exist (or not) together.
            let new_block = match (out.bi.last(), out.bj.last(), out.bk.last()) {
                (Some(&pbi), Some(&pbj), Some(&pbk)) => (pbi, pbj, pbk) != (bi, bj, bk),
                _ => true,
            };
            if new_block {
                out.bi.push(bi);
                out.bj.push(bj);
                out.bk.push(bk);
                out.bptr.push(n as i64);
            }
            // bptr is seeded with [0] and only ever grows.
            if let Some(end) = out.bptr.last_mut() {
                *end = n as i64 + 1;
            }
            out.ei.push((t.i0[n] & mask) as u16);
            out.ej.push((t.i1[n] & mask) as u16);
            out.ek.push((t.i2[n] & mask) as u16);
        }
        // bptr holds ends; rebuild as starts + final end.
        let mut bptr = Vec::with_capacity(out.nblocks() + 1);
        bptr.push(0i64);
        bptr.extend(out.bptr.iter().skip(1).copied());
        out.bptr = bptr;
        out
    }

    /// Builds HiCOO from an arbitrary COO tensor (Morton sort first).
    pub fn from_coo3(t: &Coo3Tensor, block_bits: u32) -> Self {
        Self::from_mcoo3(&MortonCoo3Tensor::from_coo3(t), block_bits)
    }

    /// Checks structural invariants: pointer shape/monotonicity, in-block
    /// offsets within the block edge, coordinates in range, and the
    /// Z-order of blocks.
    ///
    /// # Errors
    /// Returns the first violated invariant.
    pub fn validate(&self) -> Result<(), FormatError> {
        if self.bptr.len() != self.nblocks() + 1 {
            return Err(FormatError::LengthMismatch {
                what: "HiCOO bptr (must be nblocks + 1)",
                lens: vec![self.bptr.len(), self.nblocks() + 1],
            });
        }
        if self.bptr.first() != Some(&0)
            || *self.bptr.last().unwrap_or(&0) != self.nnz() as i64
        {
            return Err(FormatError::BadPointerEnds {
                what: "HiCOO bptr",
                first: *self.bptr.first().unwrap_or(&-1),
                last: *self.bptr.last().unwrap_or(&-1),
                nnz: self.nnz() as i64,
            });
        }
        if self.bptr.windows(2).any(|w| w[0] >= w[1]) {
            return Err(FormatError::NotMonotonic { what: "HiCOO bptr (blocks non-empty)" });
        }
        let edge = 1u16 << self.block_bits;
        if self
            .ei
            .iter()
            .chain(&self.ej)
            .chain(&self.ek)
            .any(|&e| e >= edge)
        {
            return Err(FormatError::CoordinateOutOfRange {
                coords: vec![edge as i64],
                dims: vec![edge as usize],
            });
        }
        for b in 1..self.nblocks() {
            let a = [self.bi[b - 1], self.bj[b - 1], self.bk[b - 1]];
            let c = [self.bi[b], self.bj[b], self.bk[b]];
            if morton_cmp(&a, &c) != std::cmp::Ordering::Less {
                return Err(FormatError::NotSorted { what: "HiCOO block Z-order" });
            }
        }
        Ok(())
    }

    /// Expands back to a Morton-ordered COO tensor.
    pub fn to_coo3(&self) -> Coo3Tensor {
        let mut t = Coo3Tensor {
            nr: self.dims.0,
            nc: self.dims.1,
            nz: self.dims.2,
            i0: Vec::with_capacity(self.nnz()),
            i1: Vec::with_capacity(self.nnz()),
            i2: Vec::with_capacity(self.nnz()),
            val: self.val.clone(),
        };
        for b in 0..self.nblocks() {
            for n in self.bptr[b] as usize..self.bptr[b + 1] as usize {
                t.i0.push((self.bi[b] << self.block_bits) + self.ei[n] as i64);
                t.i1.push((self.bj[b] << self.block_bits) + self.ej[n] as i64);
                t.i2.push((self.bk[b] << self.block_bits) + self.ek[n] as i64);
            }
        }
        t
    }

    /// Mode-2 tensor-times-vector, block by block (the locality HiCOO is
    /// built for).
    ///
    /// # Panics
    /// Panics when `x.len()` differs from the mode-2 extent.
    pub fn ttv_mode2(&self, x: &[f64]) -> DenseMatrix {
        assert_eq!(x.len(), self.dims.2);
        let mut out = DenseMatrix::zeros(self.dims.0, self.dims.1);
        for b in 0..self.nblocks() {
            let (i0, j0, k0) = (
                self.bi[b] << self.block_bits,
                self.bj[b] << self.block_bits,
                self.bk[b] << self.block_bits,
            );
            for n in self.bptr[b] as usize..self.bptr[b + 1] as usize {
                let i = (i0 + self.ei[n] as i64) as usize;
                let j = (j0 + self.ej[n] as i64) as usize;
                let k = (k0 + self.ek[n] as i64) as usize;
                let cur = out.get(i, j);
                out.set(i, j, cur + self.val[n] * x[k]);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tensor() -> Coo3Tensor {
        Coo3Tensor::from_coords(
            (16, 16, 16),
            vec![0, 1, 8, 8, 15, 3],
            vec![0, 2, 9, 8, 15, 12],
            vec![1, 0, 3, 8, 15, 7],
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
        )
        .unwrap()
    }

    #[test]
    fn round_trip_through_mcoo3() {
        let t = tensor();
        let h = HicooTensor::from_coo3(&t, 2);
        h.validate().unwrap();
        let back = h.to_coo3();
        let want = MortonCoo3Tensor::from_coo3(&t).coo;
        assert_eq!(back, want);
    }

    #[test]
    fn blocks_partition_the_nonzeros() {
        let h = HicooTensor::from_coo3(&tensor(), 3);
        h.validate().unwrap();
        assert_eq!(*h.bptr.last().unwrap() as usize, h.nnz());
        // 16/8 = 2 blocks per mode; the six points land in >= 2 blocks.
        assert!(h.nblocks() >= 2);
    }

    #[test]
    fn ttv_matches_reference() {
        let t = tensor();
        let h = HicooTensor::from_coo3(&t, 2);
        let x: Vec<f64> = (0..16).map(|k| (k % 5) as f64).collect();
        assert_eq!(h.ttv_mode2(&x), t.ttv_mode2(&x));
    }

    #[test]
    fn validate_catches_bad_offsets() {
        let mut h = HicooTensor::from_coo3(&tensor(), 2);
        h.ei[0] = 99;
        assert!(matches!(
            h.validate(),
            Err(FormatError::CoordinateOutOfRange { .. })
        ));
    }

    #[test]
    fn validate_catches_block_order() {
        let mut h = HicooTensor::from_coo3(&tensor(), 2);
        if h.nblocks() >= 2 {
            h.bi.swap(0, 1);
            h.bj.swap(0, 1);
            h.bk.swap(0, 1);
            assert!(matches!(h.validate(), Err(FormatError::NotSorted { .. })));
        }
    }

    #[test]
    fn empty_tensor() {
        let t = Coo3Tensor::from_coords((4, 4, 4), vec![], vec![], vec![], vec![]).unwrap();
        let h = HicooTensor::from_coo3(&t, 1);
        h.validate().unwrap();
        assert_eq!(h.nblocks(), 0);
        assert_eq!(h.to_coo3().nnz(), 0);
    }
}
