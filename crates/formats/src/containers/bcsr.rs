//! Blocked Compressed Sparse Row (BCSR) container — the blocked format of
//! Figure 1 of the paper.
//!
//! The matrix is tiled into `bh × bw` blocks; block rows are compressed
//! CSR-style (`browptr`, `bcol`) and each referenced block stores a dense
//! `bh × bw` tile (zero-padded).

use super::coo::CooMatrix;
use super::dense::DenseMatrix;
use crate::FormatError;

/// A BCSR matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct BcsrMatrix {
    /// Number of rows of the logical matrix.
    pub nr: usize,
    /// Number of columns of the logical matrix.
    pub nc: usize,
    /// Block height.
    pub bh: usize,
    /// Block width.
    pub bw: usize,
    /// Block-row pointers, length `ceil(nr / bh) + 1`.
    pub browptr: Vec<i64>,
    /// Block-column index per stored block, sorted within a block row.
    pub bcol: Vec<i64>,
    /// Dense tiles, `bh * bw` values per stored block, row-major within
    /// the tile.
    pub data: Vec<f64>,
}

impl BcsrMatrix {
    /// Number of block rows.
    pub fn block_rows(&self) -> usize {
        self.nr.div_ceil(self.bh)
    }

    /// Number of block columns.
    pub fn block_cols(&self) -> usize {
        self.nc.div_ceil(self.bw)
    }

    /// Number of stored blocks.
    pub fn nblocks(&self) -> usize {
        self.bcol.len()
    }

    /// Checks pointer shape and monotonicity, block-column bounds and
    /// ordering, tile data length, and zero padding outside the logical
    /// matrix.
    ///
    /// # Errors
    /// Returns the first violated invariant.
    pub fn validate(&self) -> Result<(), FormatError> {
        if self.browptr.len() != self.block_rows() + 1 {
            return Err(FormatError::LengthMismatch {
                what: "BCSR browptr (must be block_rows + 1)",
                lens: vec![self.browptr.len(), self.block_rows() + 1],
            });
        }
        // The length check above guarantees browptr is non-empty; the -1
        // sentinel keeps this total (and failing) if that ever regresses.
        let first = self.browptr.first().copied().unwrap_or(-1);
        let last = self.browptr.last().copied().unwrap_or(-1);
        if first != 0 || last != self.nblocks() as i64 {
            return Err(FormatError::BadPointerEnds {
                what: "BCSR browptr",
                first,
                last,
                nnz: self.nblocks() as i64,
            });
        }
        if self.browptr.windows(2).any(|w| w[0] > w[1]) {
            return Err(FormatError::NotMonotonic { what: "BCSR browptr" });
        }
        if self.data.len() != self.nblocks() * self.bh * self.bw {
            return Err(FormatError::LengthMismatch {
                what: "BCSR data (must be nblocks * bh * bw)",
                lens: vec![self.data.len(), self.nblocks() * self.bh * self.bw],
            });
        }
        for bi in 0..self.block_rows() {
            let (s, e) = (self.browptr[bi] as usize, self.browptr[bi + 1] as usize);
            let row = &self.bcol[s..e];
            if row.iter().any(|&bj| bj < 0 || bj as usize >= self.block_cols()) {
                return Err(FormatError::CoordinateOutOfRange {
                    coords: row.to_vec(),
                    dims: vec![self.block_rows(), self.block_cols()],
                });
            }
            if row.windows(2).any(|w| w[0] >= w[1]) {
                return Err(FormatError::NotSorted {
                    what: "BCSR block columns within a block row",
                });
            }
            // Zero padding outside the logical matrix.
            for (b, &bj) in row.iter().enumerate() {
                let blk = s + b;
                for r in 0..self.bh {
                    for c in 0..self.bw {
                        let gi = bi * self.bh + r;
                        let gj = bj as usize * self.bw + c;
                        let v = self.data[(blk * self.bh + r) * self.bw + c];
                        if (gi >= self.nr || gj >= self.nc) && v != 0.0 {
                            return Err(FormatError::NonzeroPadding {
                                what: "BCSR out-of-matrix slot",
                                row: gi,
                                diag: gj,
                            });
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Reference conversion from COO.
    pub fn from_coo(coo: &CooMatrix, bh: usize, bw: usize) -> Self {
        assert!(bh > 0 && bw > 0, "block dims must be positive");
        let brs = coo.nr.div_ceil(bh);
        let bcs = coo.nc.div_ceil(bw);
        // Which blocks are populated?
        let mut present = vec![false; brs * bcs];
        for (i, j, _) in coo.iter() {
            present[(i as usize / bh) * bcs + (j as usize / bw)] = true;
        }
        let mut browptr = vec![0i64; brs + 1];
        let mut bcol = Vec::new();
        let mut block_pos = vec![usize::MAX; brs * bcs];
        for bi in 0..brs {
            for bj in 0..bcs {
                if present[bi * bcs + bj] {
                    block_pos[bi * bcs + bj] = bcol.len();
                    bcol.push(bj as i64);
                }
            }
            browptr[bi + 1] = bcol.len() as i64;
        }
        let mut data = vec![0.0; bcol.len() * bh * bw];
        for (i, j, v) in coo.iter() {
            let (i, j) = (i as usize, j as usize);
            let blk = block_pos[(i / bh) * bcs + (j / bw)];
            data[(blk * bh + i % bh) * bw + j % bw] += v;
        }
        BcsrMatrix { nr: coo.nr, nc: coo.nc, bh, bw, browptr, bcol, data }
    }

    /// Converts to COO (explicit zeros inside stored blocks dropped).
    pub fn to_coo(&self) -> CooMatrix {
        let mut row = Vec::new();
        let mut col = Vec::new();
        let mut val = Vec::new();
        for bi in 0..self.block_rows() {
            for blk in self.browptr[bi] as usize..self.browptr[bi + 1] as usize {
                let bj = self.bcol[blk] as usize;
                for r in 0..self.bh {
                    for c in 0..self.bw {
                        let gi = bi * self.bh + r;
                        let gj = bj * self.bw + c;
                        if gi >= self.nr || gj >= self.nc {
                            continue;
                        }
                        let v = self.data[(blk * self.bh + r) * self.bw + c];
                        if v != 0.0 {
                            row.push(gi as i64);
                            col.push(gj as i64);
                            val.push(v);
                        }
                    }
                }
            }
        }
        CooMatrix { nr: self.nr, nc: self.nc, row, col, val }
    }

    /// Materializes as dense.
    pub fn to_dense(&self) -> DenseMatrix {
        self.to_coo().to_dense()
    }

    /// Sparse matrix–vector product `y = A x` over tiles.
    ///
    /// # Panics
    /// Panics when `x.len() != nc`.
    pub fn spmv(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.nc);
        let mut y = vec![0.0; self.nr];
        for bi in 0..self.block_rows() {
            for blk in self.browptr[bi] as usize..self.browptr[bi + 1] as usize {
                let bj = self.bcol[blk] as usize;
                for r in 0..self.bh {
                    let gi = bi * self.bh + r;
                    if gi >= self.nr {
                        break;
                    }
                    let mut acc = 0.0;
                    for c in 0..self.bw {
                        let gj = bj * self.bw + c;
                        if gj >= self.nc {
                            break;
                        }
                        acc += self.data[(blk * self.bh + r) * self.bw + c] * x[gj];
                    }
                    y[gi] += acc;
                }
            }
        }
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CooMatrix {
        CooMatrix::from_triplets(
            5,
            5,
            vec![0, 1, 1, 3, 4, 4],
            vec![0, 0, 3, 2, 1, 4],
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
        )
        .unwrap()
    }

    #[test]
    fn from_coo_reference_and_validate() {
        let b = BcsrMatrix::from_coo(&sample(), 2, 2);
        b.validate().unwrap();
        assert_eq!(b.block_rows(), 3);
        assert_eq!(b.block_cols(), 3);
        // Blocks: (0,0) covers rows 0-1 cols 0-1; (0,1) covers (1,3);
        // (1,1) covers (3,2); (2,0) covers (4,1); (2,2) covers (4,4).
        assert_eq!(b.nblocks(), 5);
    }

    #[test]
    fn dense_round_trip_and_spmv() {
        let coo = sample();
        let b = BcsrMatrix::from_coo(&coo, 2, 3);
        assert_eq!(b.to_dense(), coo.to_dense());
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let expect = coo.to_dense().spmv(&x);
        for (a, e) in b.spmv(&x).iter().zip(&expect) {
            assert!((a - e).abs() < 1e-12);
        }
    }

    #[test]
    fn odd_sized_matrix_pads_cleanly() {
        let coo = CooMatrix::from_triplets(3, 3, vec![2], vec![2], vec![9.0]).unwrap();
        let b = BcsrMatrix::from_coo(&coo, 2, 2);
        b.validate().unwrap();
        assert_eq!(b.to_dense(), coo.to_dense());
    }

    #[test]
    fn validate_rejects_unsorted_block_columns() {
        let mut b = BcsrMatrix::from_coo(&sample(), 2, 2);
        // Swap two block columns in the same block row to break ordering.
        if b.browptr[1] - b.browptr[0] >= 2 {
            b.bcol.swap(0, 1);
            assert!(matches!(b.validate(), Err(FormatError::NotSorted { .. })));
        }
    }
}
