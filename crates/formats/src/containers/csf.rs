//! CSF: compressed sparse fiber storage for order-3 tensors (Smith &
//! Karypis; the layout behind TACO's sparse tensor levels).
//!
//! CSF compresses each tensor mode in turn, like CSR applied
//! hierarchically: level 0 stores the distinct `i` values, level 1 the
//! `(i, j)` fibers of each `i`, level 2 the nonzeros of each fiber. It is
//! the natural companion to the lexicographically sorted COO the paper's
//! evaluation assumes.

use super::coo::Coo3Tensor;
use super::dense::DenseMatrix;
use crate::FormatError;

/// A mode-(0,1,2) CSF tensor.
#[derive(Debug, Clone, PartialEq)]
pub struct CsfTensor {
    /// Mode extents.
    pub dims: (usize, usize, usize),
    /// Distinct mode-0 coordinates, sorted ascending.
    pub idx0: Vec<i64>,
    /// Fiber pointers per level-0 entry, length `idx0.len() + 1`.
    pub ptr1: Vec<i64>,
    /// Mode-1 coordinates per fiber, sorted within each level-0 slice.
    pub idx1: Vec<i64>,
    /// Nonzero pointers per fiber, length `idx1.len() + 1`.
    pub ptr2: Vec<i64>,
    /// Mode-2 coordinates per nonzero, sorted within each fiber.
    pub idx2: Vec<i64>,
    /// Values.
    pub val: Vec<f64>,
}

impl CsfTensor {
    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.val.len()
    }

    /// Builds CSF from a (lexicographically sorted, duplicate-free) COO
    /// tensor; unsorted input is sorted first (unstable with position
    /// tiebreak, equivalent to the stable sort it replaced).
    pub fn from_coo3(t: &Coo3Tensor) -> Self {
        let mut t = t.clone();
        t.sort_by(|a, b| a.cmp(b));
        let mut out = CsfTensor {
            dims: (t.nr, t.nc, t.nz),
            idx0: Vec::new(),
            ptr1: vec![0],
            idx1: Vec::new(),
            ptr2: vec![0],
            idx2: t.i2.clone(),
            val: t.val.clone(),
        };
        for n in 0..t.nnz() {
            let new_i = out.idx0.last() != Some(&t.i0[n]);
            let new_fiber = new_i || out.idx1.last() != Some(&t.i1[n]);
            if new_i {
                out.idx0.push(t.i0[n]);
                out.ptr1.push(out.idx1.len() as i64);
            }
            // ptr1/ptr2 are seeded with [0] and only ever grow, so a last
            // element always exists.
            if new_fiber {
                out.idx1.push(t.i1[n]);
                out.ptr2.push(out.idx2.len() as i64);
                if let Some(end) = out.ptr1.last_mut() {
                    *end = out.idx1.len() as i64;
                }
            }
            if let Some(end) = out.ptr2.last_mut() {
                *end = n as i64 + 1;
            }
        }
        out
    }

    /// Checks pointer shapes, monotonicity, coordinate ranges, and
    /// per-level ordering.
    ///
    /// # Errors
    /// Returns the first violated invariant.
    pub fn validate(&self) -> Result<(), FormatError> {
        if self.ptr1.len() != self.idx0.len() + 1 || self.ptr2.len() != self.idx1.len() + 1 {
            return Err(FormatError::LengthMismatch {
                what: "CSF pointer levels",
                lens: vec![self.ptr1.len(), self.idx0.len() + 1, self.ptr2.len(), self.idx1.len() + 1],
            });
        }
        if self.idx2.len() != self.val.len() {
            return Err(FormatError::LengthMismatch {
                what: "CSF idx2/val",
                lens: vec![self.idx2.len(), self.val.len()],
            });
        }
        if self.ptr1.first() != Some(&0)
            || *self.ptr1.last().unwrap_or(&-1) != self.idx1.len() as i64
            || self.ptr2.first() != Some(&0)
            || *self.ptr2.last().unwrap_or(&-1) != self.nnz() as i64
        {
            return Err(FormatError::BadPointerEnds {
                what: "CSF pointers",
                first: *self.ptr1.first().unwrap_or(&-1),
                last: *self.ptr2.last().unwrap_or(&-1),
                nnz: self.nnz() as i64,
            });
        }
        if self.ptr1.windows(2).any(|w| w[0] >= w[1])
            || self.ptr2.windows(2).any(|w| w[0] >= w[1])
        {
            return Err(FormatError::NotMonotonic { what: "CSF pointers (fibers non-empty)" });
        }
        if self.idx0.windows(2).any(|w| w[0] >= w[1]) {
            return Err(FormatError::NotSorted { what: "CSF level-0 coordinates" });
        }
        for f in 0..self.idx0.len() {
            let slice = &self.idx1[self.ptr1[f] as usize..self.ptr1[f + 1] as usize];
            if slice.windows(2).any(|w| w[0] >= w[1]) {
                return Err(FormatError::NotSorted { what: "CSF level-1 coordinates" });
            }
        }
        for f in 0..self.idx1.len() {
            let slice = &self.idx2[self.ptr2[f] as usize..self.ptr2[f + 1] as usize];
            if slice.windows(2).any(|w| w[0] >= w[1]) {
                return Err(FormatError::NotSorted { what: "CSF level-2 coordinates" });
            }
        }
        let (d0, d1, d2) = self.dims;
        let in_range = self.idx0.iter().all(|&i| i >= 0 && (i as usize) < d0)
            && self.idx1.iter().all(|&j| j >= 0 && (j as usize) < d1)
            && self.idx2.iter().all(|&k| k >= 0 && (k as usize) < d2);
        if !in_range {
            return Err(FormatError::CoordinateOutOfRange {
                coords: vec![],
                dims: vec![d0, d1, d2],
            });
        }
        Ok(())
    }

    /// Expands back to lexicographically sorted COO.
    pub fn to_coo3(&self) -> Coo3Tensor {
        let mut t = Coo3Tensor {
            nr: self.dims.0,
            nc: self.dims.1,
            nz: self.dims.2,
            i0: Vec::with_capacity(self.nnz()),
            i1: Vec::with_capacity(self.nnz()),
            i2: self.idx2.clone(),
            val: self.val.clone(),
        };
        for a in 0..self.idx0.len() {
            for f in self.ptr1[a] as usize..self.ptr1[a + 1] as usize {
                for _ in self.ptr2[f] as usize..self.ptr2[f + 1] as usize {
                    t.i0.push(self.idx0[a]);
                    t.i1.push(self.idx1[f]);
                }
            }
        }
        t
    }

    /// Mode-2 tensor-times-vector over the fiber hierarchy.
    ///
    /// # Panics
    /// Panics when `x.len()` differs from the mode-2 extent.
    pub fn ttv_mode2(&self, x: &[f64]) -> DenseMatrix {
        assert_eq!(x.len(), self.dims.2);
        let mut out = DenseMatrix::zeros(self.dims.0, self.dims.1);
        for a in 0..self.idx0.len() {
            let i = self.idx0[a] as usize;
            for f in self.ptr1[a] as usize..self.ptr1[a + 1] as usize {
                let j = self.idx1[f] as usize;
                let mut acc = 0.0;
                for n in self.ptr2[f] as usize..self.ptr2[f + 1] as usize {
                    acc += self.val[n] * x[self.idx2[n] as usize];
                }
                let cur = out.get(i, j);
                out.set(i, j, cur + acc);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tensor() -> Coo3Tensor {
        Coo3Tensor::from_coords(
            (4, 5, 6),
            vec![2, 0, 0, 2, 3, 0],
            vec![1, 3, 3, 1, 0, 0],
            vec![5, 2, 4, 0, 1, 1],
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
        )
        .unwrap()
    }

    #[test]
    fn round_trip() {
        let t = tensor();
        let csf = CsfTensor::from_coo3(&t);
        csf.validate().unwrap();
        let back = csf.to_coo3();
        let mut want = t;
        want.sort_by(|a, b| a.cmp(b));
        assert_eq!(back, want);
    }

    #[test]
    fn compression_shares_prefixes() {
        let csf = CsfTensor::from_coo3(&tensor());
        // i values {0, 2, 3}; fibers: (0,0),(0,3),(2,1),(3,0) = 4.
        assert_eq!(csf.idx0, vec![0, 2, 3]);
        assert_eq!(csf.idx1.len(), 4);
        assert_eq!(csf.nnz(), 6);
    }

    #[test]
    fn ttv_matches_reference() {
        let t = tensor();
        let csf = CsfTensor::from_coo3(&t);
        let x: Vec<f64> = (0..6).map(|k| 1.0 + k as f64).collect();
        assert_eq!(csf.ttv_mode2(&x), t.ttv_mode2(&x));
    }

    #[test]
    fn validate_catches_unsorted_fibers() {
        let mut csf = CsfTensor::from_coo3(&tensor());
        csf.idx0.swap(0, 1);
        assert!(matches!(csf.validate(), Err(FormatError::NotSorted { .. })));
    }

    #[test]
    fn empty_tensor() {
        let t = Coo3Tensor::from_coords((2, 2, 2), vec![], vec![], vec![], vec![]).unwrap();
        let csf = CsfTensor::from_coo3(&t);
        csf.validate().unwrap();
        assert_eq!(csf.nnz(), 0);
        assert_eq!(csf.to_coo3().nnz(), 0);
    }
}
