//! Type-erased containers for generic any-to-any dispatch.
//!
//! The conversion engine (and `sparse-synthesis`'s generic `run_matrix`
//! path) needs to accept "some sparse matrix" and return "some sparse
//! matrix" where the concrete container is chosen by the *destination
//! descriptor* at runtime. [`AnyMatrix`] / [`AnyTensor`] are the owned
//! sums over the shipped containers, and [`MatrixRef`] / [`TensorRef`]
//! the borrowed views used on the input side so callers never clone just
//! to dispatch.

use crate::containers::{
    Coo3Tensor, CooMatrix, CscMatrix, CsrMatrix, DiaMatrix, EllMatrix, MortonCoo3Tensor,
    MortonCooMatrix,
};

/// An owned rank-2 sparse matrix in any of the shipped containers.
#[derive(Debug, Clone, PartialEq)]
pub enum AnyMatrix {
    /// Coordinate storage (unordered or sorted — the container is the
    /// same; ordering is a descriptor-level invariant).
    Coo(CooMatrix),
    /// Compressed rows.
    Csr(CsrMatrix),
    /// Compressed columns.
    Csc(CscMatrix),
    /// Diagonal storage.
    Dia(DiaMatrix),
    /// Padded slot-per-row storage.
    Ell(EllMatrix),
    /// Morton-ordered coordinates.
    MortonCoo(MortonCooMatrix),
}

impl AnyMatrix {
    /// `(rows, cols)`.
    pub fn dims(&self) -> (usize, usize) {
        match self {
            AnyMatrix::Coo(m) => (m.nr, m.nc),
            AnyMatrix::Csr(m) => (m.nr, m.nc),
            AnyMatrix::Csc(m) => (m.nr, m.nc),
            AnyMatrix::Dia(m) => (m.nr, m.nc),
            AnyMatrix::Ell(m) => (m.nr, m.nc),
            AnyMatrix::MortonCoo(m) => (m.coo.nr, m.coo.nc),
        }
    }

    /// Stored-entry count. For DIA and ELL this counts occupied slots
    /// (structural nonzeros), not padding.
    pub fn nnz(&self) -> usize {
        match self {
            AnyMatrix::Coo(m) => m.val.len(),
            AnyMatrix::Csr(m) => m.val.len(),
            AnyMatrix::Csc(m) => m.val.len(),
            AnyMatrix::Dia(m) => m.stored_nnz(),
            AnyMatrix::Ell(m) => m.stored_nnz(),
            AnyMatrix::MortonCoo(m) => m.coo.val.len(),
        }
    }

    /// A borrowed view for dispatch without cloning.
    pub fn as_ref(&self) -> MatrixRef<'_> {
        match self {
            AnyMatrix::Coo(m) => MatrixRef::Coo(m),
            AnyMatrix::Csr(m) => MatrixRef::Csr(m),
            AnyMatrix::Csc(m) => MatrixRef::Csc(m),
            AnyMatrix::Dia(m) => MatrixRef::Dia(m),
            AnyMatrix::Ell(m) => MatrixRef::Ell(m),
            AnyMatrix::MortonCoo(m) => MatrixRef::MortonCoo(m),
        }
    }

    /// Short container label (`"coo"`, `"csr"`, …) for error messages.
    pub fn label(&self) -> &'static str {
        self.as_ref().label()
    }
}

/// A borrowed rank-2 sparse matrix in any of the shipped containers.
#[derive(Debug, Clone, Copy)]
pub enum MatrixRef<'a> {
    /// Coordinate storage.
    Coo(&'a CooMatrix),
    /// Compressed rows.
    Csr(&'a CsrMatrix),
    /// Compressed columns.
    Csc(&'a CscMatrix),
    /// Diagonal storage.
    Dia(&'a DiaMatrix),
    /// Padded slot-per-row storage.
    Ell(&'a EllMatrix),
    /// Morton-ordered coordinates.
    MortonCoo(&'a MortonCooMatrix),
}

impl MatrixRef<'_> {
    /// `(rows, cols)`.
    pub fn dims(&self) -> (usize, usize) {
        match self {
            MatrixRef::Coo(m) => (m.nr, m.nc),
            MatrixRef::Csr(m) => (m.nr, m.nc),
            MatrixRef::Csc(m) => (m.nr, m.nc),
            MatrixRef::Dia(m) => (m.nr, m.nc),
            MatrixRef::Ell(m) => (m.nr, m.nc),
            MatrixRef::MortonCoo(m) => (m.coo.nr, m.coo.nc),
        }
    }

    /// Short container label (`"coo"`, `"csr"`, …) for error messages.
    pub fn label(&self) -> &'static str {
        match self {
            MatrixRef::Coo(_) => "coo",
            MatrixRef::Csr(_) => "csr",
            MatrixRef::Csc(_) => "csc",
            MatrixRef::Dia(_) => "dia",
            MatrixRef::Ell(_) => "ell",
            MatrixRef::MortonCoo(_) => "mcoo",
        }
    }
}

/// An owned order-3 sparse tensor in any of the shipped containers.
#[derive(Debug, Clone, PartialEq)]
pub enum AnyTensor {
    /// Coordinate storage (unordered or sorted).
    Coo3(Coo3Tensor),
    /// Morton-ordered coordinates.
    MortonCoo3(MortonCoo3Tensor),
}

impl AnyTensor {
    /// `(mode0, mode1, mode2)` extents.
    pub fn dims(&self) -> (usize, usize, usize) {
        match self {
            AnyTensor::Coo3(t) => (t.nr, t.nc, t.nz),
            AnyTensor::MortonCoo3(t) => (t.coo.nr, t.coo.nc, t.coo.nz),
        }
    }

    /// Stored-entry count.
    pub fn nnz(&self) -> usize {
        match self {
            AnyTensor::Coo3(t) => t.val.len(),
            AnyTensor::MortonCoo3(t) => t.coo.val.len(),
        }
    }

    /// A borrowed view for dispatch without cloning.
    pub fn as_ref(&self) -> TensorRef<'_> {
        match self {
            AnyTensor::Coo3(t) => TensorRef::Coo3(t),
            AnyTensor::MortonCoo3(t) => TensorRef::MortonCoo3(t),
        }
    }

    /// Short container label for error messages.
    pub fn label(&self) -> &'static str {
        self.as_ref().label()
    }
}

/// A borrowed order-3 sparse tensor in any of the shipped containers.
#[derive(Debug, Clone, Copy)]
pub enum TensorRef<'a> {
    /// Coordinate storage.
    Coo3(&'a Coo3Tensor),
    /// Morton-ordered coordinates.
    MortonCoo3(&'a MortonCoo3Tensor),
}

impl TensorRef<'_> {
    /// `(mode0, mode1, mode2)` extents.
    pub fn dims(&self) -> (usize, usize, usize) {
        match self {
            TensorRef::Coo3(t) => (t.nr, t.nc, t.nz),
            TensorRef::MortonCoo3(t) => (t.coo.nr, t.coo.nc, t.coo.nz),
        }
    }

    /// Short container label for error messages.
    pub fn label(&self) -> &'static str {
        match self {
            TensorRef::Coo3(_) => "coo3",
            TensorRef::MortonCoo3(_) => "mcoo3",
        }
    }
}

macro_rules! impl_any_from {
    ($($enm:ident :: $var:ident ( $container:ty ), $refenm:ident;)+) => {$(
        impl From<$container> for $enm {
            fn from(m: $container) -> Self {
                $enm::$var(m)
            }
        }
        impl<'a> From<&'a $container> for $refenm<'a> {
            fn from(m: &'a $container) -> Self {
                $refenm::$var(m)
            }
        }
    )+};
}

impl_any_from! {
    AnyMatrix::Coo(CooMatrix), MatrixRef;
    AnyMatrix::Csr(CsrMatrix), MatrixRef;
    AnyMatrix::Csc(CscMatrix), MatrixRef;
    AnyMatrix::Dia(DiaMatrix), MatrixRef;
    AnyMatrix::Ell(EllMatrix), MatrixRef;
    AnyMatrix::MortonCoo(MortonCooMatrix), MatrixRef;
    AnyTensor::Coo3(Coo3Tensor), TensorRef;
    AnyTensor::MortonCoo3(MortonCoo3Tensor), TensorRef;
}

impl<'a> From<&'a AnyMatrix> for MatrixRef<'a> {
    fn from(m: &'a AnyMatrix) -> Self {
        m.as_ref()
    }
}

impl<'a> From<&'a AnyTensor> for TensorRef<'a> {
    fn from(t: &'a AnyTensor) -> Self {
        t.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FormatError;

    fn sample_coo() -> CooMatrix {
        CooMatrix::from_triplets(3, 4, vec![0, 1, 2], vec![1, 0, 3], vec![1.0, 2.0, 3.0])
            .unwrap()
    }

    #[test]
    fn dims_and_nnz_agree_across_variants() -> Result<(), FormatError> {
        let coo = sample_coo();
        let any = AnyMatrix::from(coo.clone());
        assert_eq!(any.dims(), (3, 4));
        assert_eq!(any.nnz(), 3);
        assert_eq!(any.label(), "coo");
        assert_eq!(MatrixRef::from(&coo).dims(), (3, 4));
        Ok(())
    }

    #[test]
    fn ell_nnz_ignores_padding() {
        let ell = EllMatrix::new(
            2,
            3,
            2,
            vec![0, 2, 1, -1],
            vec![1.0, 2.0, 3.0, 0.0],
        )
        .unwrap();
        let any = AnyMatrix::from(ell);
        assert_eq!(any.nnz(), 3);
    }

    #[test]
    fn tensor_roundtrip() {
        let t = Coo3Tensor::from_coords(
            (2, 2, 2),
            vec![0, 1],
            vec![1, 0],
            vec![0, 1],
            vec![1.0, 2.0],
        )
        .unwrap();
        let any = AnyTensor::from(t);
        assert_eq!(any.dims(), (2, 2, 2));
        assert_eq!(any.nnz(), 2);
        assert_eq!(any.label(), "coo3");
    }
}
