//! Dense matrix/tensor helpers used as conversion oracles in tests.

use std::fmt;

/// A dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    /// Number of rows.
    pub nr: usize,
    /// Number of columns.
    pub nc: usize,
    /// Row-major values, length `nr * nc`.
    pub vals: Vec<f64>,
}

impl DenseMatrix {
    /// Creates an all-zero matrix.
    pub fn zeros(nr: usize, nc: usize) -> Self {
        DenseMatrix { nr, nc, vals: vec![0.0; nr * nc] }
    }

    /// Builds from row-major values.
    ///
    /// # Panics
    /// Panics when `vals.len() != nr * nc`.
    pub fn from_rows(nr: usize, nc: usize, vals: Vec<f64>) -> Self {
        assert_eq!(vals.len(), nr * nc, "dense value count mismatch");
        DenseMatrix { nr, nc, vals }
    }

    /// Value at `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.vals[i * self.nc + j]
    }

    /// Sets the value at `(i, j)`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.vals[i * self.nc + j] = v;
    }

    /// Number of structurally nonzero entries (exact zero test).
    pub fn count_nonzeros(&self) -> usize {
        self.vals.iter().filter(|v| **v != 0.0).count()
    }

    /// Dense matrix–vector product `y = A x`.
    ///
    /// # Panics
    /// Panics when `x.len() != nc`.
    #[allow(clippy::needless_range_loop)] // index math mirrors the kernels
    pub fn spmv(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.nc);
        let mut y = vec![0.0; self.nr];
        for i in 0..self.nr {
            let mut acc = 0.0;
            for j in 0..self.nc {
                acc += self.get(i, j) * x[j];
            }
            y[i] = acc;
        }
        y
    }
}

impl fmt::Display for DenseMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.nr {
            for j in 0..self.nc {
                if j > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{:6.2}", self.get(i, j))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_set_roundtrip() {
        let mut m = DenseMatrix::zeros(2, 3);
        m.set(1, 2, 5.0);
        assert_eq!(m.get(1, 2), 5.0);
        assert_eq!(m.get(0, 0), 0.0);
        assert_eq!(m.count_nonzeros(), 1);
    }

    #[test]
    fn spmv_matches_hand_computation() {
        let m = DenseMatrix::from_rows(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.spmv(&[1.0, 1.0]), vec![3.0, 7.0]);
    }
}
