//! ELLPACK (ELL) container — an extension format beyond the paper's
//! Table 1, exercising the descriptor machinery on a padded layout.
//!
//! ELL stores up to `W` nonzeros per row in a dense `NR × W` block of
//! column indices plus values, padding short rows with a sentinel column
//! of `-1` and zero values. Data is addressed `data[i * W + s]` with slot
//! `s` holding the `s`-th nonzero of row `i` in column order.

use super::coo::CooMatrix;
use super::dense::DenseMatrix;
use crate::FormatError;

/// An ELL matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct EllMatrix {
    /// Number of rows (`NR`).
    pub nr: usize,
    /// Number of columns (`NC`).
    pub nc: usize,
    /// Slots per row (`W`): the maximum row population.
    pub width: usize,
    /// Column index per slot, `-1` for padding; length `nr * width`.
    pub col: Vec<i64>,
    /// Value per slot (0 for padding); length `nr * width`.
    pub data: Vec<f64>,
}

impl EllMatrix {
    /// Builds and validates an ELL matrix.
    ///
    /// # Errors
    /// Returns [`FormatError`] when any invariant fails.
    pub fn new(
        nr: usize,
        nc: usize,
        width: usize,
        col: Vec<i64>,
        data: Vec<f64>,
    ) -> Result<Self, FormatError> {
        let m = EllMatrix { nr, nc, width, col, data };
        m.validate()?;
        Ok(m)
    }

    /// Checks slot-array lengths, column bounds, per-row column ordering,
    /// and zero padding.
    ///
    /// # Errors
    /// Returns the first violated invariant.
    pub fn validate(&self) -> Result<(), FormatError> {
        // checked_mul: corrupt fields can push `nr * width` past usize,
        // and a wrapping product must read as a length mismatch, not an
        // arithmetic panic.
        let expected = self.nr.checked_mul(self.width);
        if expected != Some(self.col.len()) || self.data.len() != self.col.len() {
            return Err(FormatError::LengthMismatch {
                what: "ELL col/data (must be nr * width)",
                lens: vec![self.col.len(), self.data.len(), expected.unwrap_or(usize::MAX)],
            });
        }
        for i in 0..self.nr {
            let row = &self.col[i * self.width..(i + 1) * self.width];
            let mut seen_pad = false;
            let mut prev = -1i64;
            for (s, &j) in row.iter().enumerate() {
                if j < 0 {
                    seen_pad = true;
                    if self.data[i * self.width + s] != 0.0 {
                        return Err(FormatError::NonzeroPadding {
                            what: "ELL padded slot",
                            row: i,
                            diag: s,
                        });
                    }
                    continue;
                }
                if seen_pad {
                    return Err(FormatError::NotSorted {
                        what: "ELL padding must trail the row",
                    });
                }
                if j as usize >= self.nc {
                    return Err(FormatError::CoordinateOutOfRange {
                        coords: vec![j],
                        dims: vec![self.nr, self.nc],
                    });
                }
                if s > 0 && row[s - 1] >= 0 && j <= prev {
                    return Err(FormatError::NotSorted { what: "ELL columns within a row" });
                }
                prev = j;
            }
        }
        Ok(())
    }

    /// Structural nonzero count: occupied (non-sentinel) slots. Total
    /// (never panics), even on invariant-violating containers.
    pub fn stored_nnz(&self) -> usize {
        self.col.iter().filter(|&&c| c >= 0).count()
    }

    /// Reference conversion from COO.
    pub fn from_coo(coo: &CooMatrix) -> Self {
        let mut counts = vec![0usize; coo.nr];
        for &i in &coo.row {
            counts[i as usize] += 1;
        }
        let width = counts.iter().copied().max().unwrap_or(0);
        let mut col = vec![-1i64; coo.nr * width];
        let mut data = vec![0.0; coo.nr * width];
        // Insert in row-major order so slots are column-sorted.
        let mut sorted = coo.clone();
        sorted.sort_row_major();
        let mut next = vec![0usize; coo.nr];
        for (i, j, v) in sorted.iter() {
            let s = next[i as usize];
            col[i as usize * width + s] = j;
            data[i as usize * width + s] = v;
            next[i as usize] += 1;
        }
        EllMatrix { nr: coo.nr, nc: coo.nc, width, col, data }
    }

    /// Converts to row-major-sorted COO (padding dropped).
    pub fn to_coo(&self) -> CooMatrix {
        let mut row = Vec::new();
        let mut colv = Vec::new();
        let mut val = Vec::new();
        for i in 0..self.nr {
            for s in 0..self.width {
                let j = self.col[i * self.width + s];
                if j >= 0 {
                    row.push(i as i64);
                    colv.push(j);
                    val.push(self.data[i * self.width + s]);
                }
            }
        }
        CooMatrix { nr: self.nr, nc: self.nc, row, col: colv, val }
    }

    /// Materializes as dense.
    pub fn to_dense(&self) -> DenseMatrix {
        self.to_coo().to_dense()
    }

    /// Sparse matrix–vector product `y = A x`.
    ///
    /// # Panics
    /// Panics when `x.len() != nc`.
    #[allow(clippy::needless_range_loop)] // index math mirrors the kernels
    pub fn spmv(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.nc);
        let mut y = vec![0.0; self.nr];
        for i in 0..self.nr {
            let mut acc = 0.0;
            for s in 0..self.width {
                let j = self.col[i * self.width + s];
                if j >= 0 {
                    acc += self.data[i * self.width + s] * x[j as usize];
                }
            }
            y[i] = acc;
        }
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CooMatrix {
        CooMatrix::from_triplets(
            3,
            4,
            vec![0, 0, 1, 2, 2, 2],
            vec![2, 0, 3, 0, 1, 3],
            vec![2.0, 1.0, 3.0, 4.0, 5.0, 6.0],
        )
        .unwrap()
    }

    #[test]
    fn from_coo_pads_short_rows() {
        let ell = EllMatrix::from_coo(&sample());
        assert_eq!(ell.width, 3);
        ell.validate().unwrap();
        assert_eq!(&ell.col[0..3], &[0, 2, -1]);
        assert_eq!(&ell.col[3..6], &[3, -1, -1]);
        assert_eq!(&ell.col[6..9], &[0, 1, 3]);
    }

    #[test]
    fn dense_round_trip_and_spmv() {
        let coo = sample();
        let ell = EllMatrix::from_coo(&coo);
        assert_eq!(ell.to_dense(), coo.to_dense());
        let x = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(ell.spmv(&x), coo.to_dense().spmv(&x));
    }

    #[test]
    fn validate_catches_interior_padding() {
        let bad = EllMatrix {
            nr: 1,
            nc: 4,
            width: 3,
            col: vec![-1, 2, 3],
            data: vec![0.0, 1.0, 2.0],
        };
        assert!(matches!(bad.validate(), Err(FormatError::NotSorted { .. })));
    }

    #[test]
    fn validate_catches_nonzero_padding() {
        let bad = EllMatrix {
            nr: 1,
            nc: 4,
            width: 2,
            col: vec![1, -1],
            data: vec![1.0, 3.0],
        };
        assert!(matches!(bad.validate(), Err(FormatError::NonzeroPadding { .. })));
    }
}
