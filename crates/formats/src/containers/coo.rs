//! Coordinate (COO) containers for matrices and order-3 tensors.
//!
//! COO stores each nonzero's coordinates in parallel index arrays plus a
//! value array (Figure 1 of the paper). The matrix variant corresponds to
//! the `COO` descriptor (UFs `row1`, `col1`), the sorted variant to the
//! paper's evaluation assumption ("COO is assumed to be sorted
//! lexicographically row first"), and the tensor variant to `COO3D`.

use std::cmp::Ordering;

use super::dense::DenseMatrix;
use crate::FormatError;

/// A COO matrix: parallel `row`/`col`/`val` arrays.
#[derive(Debug, Clone, PartialEq)]
pub struct CooMatrix {
    /// Number of rows (`NR`).
    pub nr: usize,
    /// Number of columns (`NC`).
    pub nc: usize,
    /// Row index per nonzero (`row1`).
    pub row: Vec<i64>,
    /// Column index per nonzero (`col1`).
    pub col: Vec<i64>,
    /// Value per nonzero.
    pub val: Vec<f64>,
}

impl CooMatrix {
    /// Builds from triplets after validating coordinate bounds and array
    /// lengths.
    ///
    /// # Errors
    /// Returns [`FormatError`] for mismatched lengths or out-of-range
    /// coordinates.
    pub fn from_triplets(
        nr: usize,
        nc: usize,
        row: Vec<i64>,
        col: Vec<i64>,
        val: Vec<f64>,
    ) -> Result<Self, FormatError> {
        if row.len() != col.len() || row.len() != val.len() {
            return Err(FormatError::LengthMismatch {
                what: "COO row/col/val",
                lens: vec![row.len(), col.len(), val.len()],
            });
        }
        for (&i, &j) in row.iter().zip(&col) {
            if i < 0 || i as usize >= nr || j < 0 || j as usize >= nc {
                return Err(FormatError::CoordinateOutOfRange {
                    coords: vec![i, j],
                    dims: vec![nr, nc],
                });
            }
        }
        Ok(CooMatrix { nr, nc, row, col, val })
    }

    /// Number of stored nonzeros (`NNZ`).
    pub fn nnz(&self) -> usize {
        self.val.len()
    }

    /// Returns `true` when nonzeros are sorted lexicographically row
    /// first — the paper's source-format assumption.
    pub fn is_sorted_row_major(&self) -> bool {
        self.row
            .iter()
            .zip(&self.col)
            .zip(self.row.iter().skip(1).zip(self.col.iter().skip(1)))
            .all(|((i1, j1), (i2, j2))| (i1, j1) <= (i2, j2))
    }

    /// Sorts nonzeros lexicographically row first (equivalent to a
    /// stable sort: ties are broken by original position).
    pub fn sort_row_major(&mut self) {
        // Precompute the keys once so the sort's comparisons are
        // contiguous tuple compares rather than gathers through `idx`.
        let mut keyed: Vec<(i64, i64, usize)> = (0..self.nnz())
            .map(|p| (self.row[p], self.col[p], p))
            .collect();
        keyed.sort_unstable();
        let idx: Vec<usize> = keyed.into_iter().map(|(_, _, p)| p).collect();
        self.permute(&idx);
    }

    /// Reorders nonzeros so that position `p` holds old position
    /// `perm[p]`.
    pub fn permute(&mut self, perm: &[usize]) {
        debug_assert_eq!(perm.len(), self.nnz());
        self.row = perm.iter().map(|&p| self.row[p]).collect();
        self.col = perm.iter().map(|&p| self.col[p]).collect();
        self.val = perm.iter().map(|&p| self.val[p]).collect();
    }

    /// Iterates `(i, j, v)` triplets.
    pub fn iter(&self) -> impl Iterator<Item = (i64, i64, f64)> + '_ {
        self.row
            .iter()
            .zip(&self.col)
            .zip(&self.val)
            .map(|((&i, &j), &v)| (i, j, v))
    }

    /// Materializes as a dense matrix (duplicates accumulate).
    pub fn to_dense(&self) -> DenseMatrix {
        let mut d = DenseMatrix::zeros(self.nr, self.nc);
        for (i, j, v) in self.iter() {
            let cur = d.get(i as usize, j as usize);
            d.set(i as usize, j as usize, cur + v);
        }
        d
    }

    /// Sparse matrix–vector product `y = A x`.
    ///
    /// # Panics
    /// Panics when `x.len() != nc`.
    pub fn spmv(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.nc);
        let mut y = vec![0.0; self.nr];
        for (i, j, v) in self.iter() {
            y[i as usize] += v * x[j as usize];
        }
        y
    }

    /// The set of distinct diagonals `j - i` present, sorted ascending —
    /// DIA's `ND` is this set's size.
    pub fn diagonals(&self) -> Vec<i64> {
        let mut ds: Vec<i64> = self.row.iter().zip(&self.col).map(|(&i, &j)| j - i).collect();
        ds.sort_unstable();
        ds.dedup();
        ds
    }
}

/// An order-3 COO tensor (`COO3D` in Table 1 of the paper).
#[derive(Debug, Clone, PartialEq)]
pub struct Coo3Tensor {
    /// Mode-0 extent (`NR`).
    pub nr: usize,
    /// Mode-1 extent (`NC`).
    pub nc: usize,
    /// Mode-2 extent (`NZ`).
    pub nz: usize,
    /// Mode-0 coordinate per nonzero (`row1`).
    pub i0: Vec<i64>,
    /// Mode-1 coordinate per nonzero (`col1`).
    pub i1: Vec<i64>,
    /// Mode-2 coordinate per nonzero (`z1`).
    pub i2: Vec<i64>,
    /// Value per nonzero.
    pub val: Vec<f64>,
}

impl Coo3Tensor {
    /// Builds from coordinate lists after validation.
    ///
    /// # Errors
    /// Returns [`FormatError`] for mismatched lengths or out-of-range
    /// coordinates.
    pub fn from_coords(
        dims: (usize, usize, usize),
        i0: Vec<i64>,
        i1: Vec<i64>,
        i2: Vec<i64>,
        val: Vec<f64>,
    ) -> Result<Self, FormatError> {
        let (nr, nc, nz) = dims;
        if i0.len() != i1.len() || i0.len() != i2.len() || i0.len() != val.len() {
            return Err(FormatError::LengthMismatch {
                what: "COO3 coords/val",
                lens: vec![i0.len(), i1.len(), i2.len(), val.len()],
            });
        }
        for ((&a, &b), &c) in i0.iter().zip(&i1).zip(&i2) {
            if a < 0
                || a as usize >= nr
                || b < 0
                || b as usize >= nc
                || c < 0
                || c as usize >= nz
            {
                return Err(FormatError::CoordinateOutOfRange {
                    coords: vec![a, b, c],
                    dims: vec![nr, nc, nz],
                });
            }
        }
        Ok(Coo3Tensor { nr, nc, nz, i0, i1, i2, val })
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.val.len()
    }

    /// Iterates `([i, j, k], v)`.
    pub fn iter(&self) -> impl Iterator<Item = ([i64; 3], f64)> + '_ {
        (0..self.nnz()).map(move |n| ([self.i0[n], self.i1[n], self.i2[n]], self.val[n]))
    }

    /// Tensor-times-vector along mode 2: `Y[i, j] = Σ_k A[i,j,k] x[k]`,
    /// returned as a dense matrix.
    ///
    /// # Panics
    /// Panics when `x.len() != nz`.
    pub fn ttv_mode2(&self, x: &[f64]) -> DenseMatrix {
        assert_eq!(x.len(), self.nz);
        let mut out = DenseMatrix::zeros(self.nr, self.nc);
        for (c, v) in self.iter() {
            let cur = out.get(c[0] as usize, c[1] as usize);
            out.set(c[0] as usize, c[1] as usize, cur + v * x[c[2] as usize]);
        }
        out
    }

    /// Sorts nonzeros with `cmp` over coordinate triples (equivalent to
    /// a stable sort: ties are broken by original position).
    pub fn sort_by(&mut self, mut cmp: impl FnMut(&[i64], &[i64]) -> Ordering) {
        let mut idx: Vec<usize> = (0..self.nnz()).collect();
        idx.sort_unstable_by(|&a, &b| {
            cmp(
                &[self.i0[a], self.i1[a], self.i2[a]],
                &[self.i0[b], self.i1[b], self.i2[b]],
            )
            .then(a.cmp(&b))
        });
        self.permute(&idx);
    }

    /// Reorders nonzeros so that position `p` holds old position
    /// `perm[p]`.
    pub fn permute(&mut self, perm: &[usize]) {
        debug_assert_eq!(perm.len(), self.nnz());
        self.i0 = perm.iter().map(|&p| self.i0[p]).collect();
        self.i1 = perm.iter().map(|&p| self.i1[p]).collect();
        self.i2 = perm.iter().map(|&p| self.i2[p]).collect();
        self.val = perm.iter().map(|&p| self.val[p]).collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CooMatrix {
        // 3x4:
        // [1 0 2 0]
        // [0 0 0 3]
        // [4 0 0 0]
        CooMatrix::from_triplets(
            3,
            4,
            vec![0, 0, 1, 2],
            vec![0, 2, 3, 0],
            vec![1.0, 2.0, 3.0, 4.0],
        )
        .unwrap()
    }

    #[test]
    fn validation_rejects_bad_input() {
        assert!(matches!(
            CooMatrix::from_triplets(2, 2, vec![0], vec![0, 1], vec![1.0]),
            Err(FormatError::LengthMismatch { .. })
        ));
        assert!(matches!(
            CooMatrix::from_triplets(2, 2, vec![5], vec![0], vec![1.0]),
            Err(FormatError::CoordinateOutOfRange { .. })
        ));
    }

    #[test]
    fn dense_round_trip() {
        let m = sample();
        let d = m.to_dense();
        assert_eq!(d.get(0, 2), 2.0);
        assert_eq!(d.get(2, 0), 4.0);
        assert_eq!(d.count_nonzeros(), 4);
    }

    #[test]
    fn sortedness_detection_and_sorting() {
        let mut m = CooMatrix::from_triplets(
            2,
            2,
            vec![1, 0],
            vec![0, 1],
            vec![1.0, 2.0],
        )
        .unwrap();
        assert!(!m.is_sorted_row_major());
        m.sort_row_major();
        assert!(m.is_sorted_row_major());
        assert_eq!(m.row, vec![0, 1]);
        assert_eq!(m.val, vec![2.0, 1.0]);
    }

    #[test]
    fn spmv_agrees_with_dense() {
        let m = sample();
        let x = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(m.spmv(&x), m.to_dense().spmv(&x));
    }

    #[test]
    fn diagonals_are_sorted_unique() {
        let m = sample();
        // j - i: 0, 2, 2, -2
        assert_eq!(m.diagonals(), vec![-2, 0, 2]);
    }

    #[test]
    fn coo3_ttv_matches_manual() {
        let t = Coo3Tensor::from_coords(
            (2, 2, 3),
            vec![0, 1, 1],
            vec![1, 0, 0],
            vec![0, 2, 1],
            vec![1.0, 2.0, 3.0],
        )
        .unwrap();
        let y = t.ttv_mode2(&[1.0, 10.0, 100.0]);
        assert_eq!(y.get(0, 1), 1.0);
        assert_eq!(y.get(1, 0), 2.0 * 100.0 + 3.0 * 10.0);
    }

    #[test]
    fn coo3_sort_by_reorders() {
        let mut t = Coo3Tensor::from_coords(
            (2, 2, 2),
            vec![1, 0],
            vec![0, 1],
            vec![0, 1],
            vec![9.0, 8.0],
        )
        .unwrap();
        t.sort_by(|a, b| a.cmp(b));
        assert_eq!(t.i0, vec![0, 1]);
        assert_eq!(t.val, vec![8.0, 9.0]);
    }
}
