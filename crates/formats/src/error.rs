//! Validation errors shared by all format containers.

use std::fmt;

/// A violated format invariant.
#[derive(Debug, Clone, PartialEq)]
pub enum FormatError {
    /// Parallel arrays have inconsistent lengths.
    LengthMismatch {
        /// What was being validated.
        what: &'static str,
        /// The observed lengths.
        lens: Vec<usize>,
    },
    /// A coordinate (or offset) lies outside the tensor dimensions.
    CoordinateOutOfRange {
        /// The offending coordinates.
        coords: Vec<i64>,
        /// The tensor dimensions.
        dims: Vec<usize>,
    },
    /// A pointer array does not start at 0 / end at NNZ.
    BadPointerEnds {
        /// What was being validated.
        what: &'static str,
        /// First pointer value.
        first: i64,
        /// Last pointer value.
        last: i64,
        /// Expected final value.
        nnz: i64,
    },
    /// A pointer array is not non-decreasing (its monotonic universal
    /// quantifier fails).
    NotMonotonic {
        /// What was being validated.
        what: &'static str,
    },
    /// An ordering invariant (a reordering universal quantifier) fails.
    NotSorted {
        /// What was being validated.
        what: &'static str,
    },
    /// A padding slot holds a nonzero value.
    NonzeroPadding {
        /// What was being validated.
        what: &'static str,
        /// Row of the offending slot.
        row: usize,
        /// Diagonal/slot index of the offending slot.
        diag: usize,
    },
}

impl fmt::Display for FormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FormatError::LengthMismatch { what, lens } => {
                write!(f, "{what}: inconsistent lengths {lens:?}")
            }
            FormatError::CoordinateOutOfRange { coords, dims } => {
                write!(f, "coordinates {coords:?} out of range for dims {dims:?}")
            }
            FormatError::BadPointerEnds { what, first, last, nnz } => {
                write!(f, "{what}: starts at {first}, ends at {last}, expected 0..={nnz}")
            }
            FormatError::NotMonotonic { what } => write!(f, "{what}: not non-decreasing"),
            FormatError::NotSorted { what } => write!(f, "{what}: ordering violated"),
            FormatError::NonzeroPadding { what, row, diag } => {
                write!(f, "{what}: nonzero padding at ({row}, {diag})")
            }
        }
    }
}

impl std::error::Error for FormatError {}
