//! # sparse-formats
//!
//! Sparse tensor formats for the CGO 2023 reproduction: the **format
//! descriptors** of Table 1 (sparse-to-dense maps, data access relations,
//! UF domains/ranges, and universal quantifiers — both monotonic and
//! reordering), plus the **runtime containers** those descriptors
//! describe, with validation, reference conversions (the oracles for
//! synthesized code), and per-format SpMV/TTV kernels.
//!
//! ```
//! use sparse_formats::containers::{CooMatrix, CsrMatrix};
//! use sparse_formats::descriptors;
//!
//! // The Table-1 descriptor for CSR:
//! let csr = descriptors::csr();
//! assert_eq!(csr.uf_names(), vec!["col2", "rowptr"]);
//! println!("{}", csr.table1_row());
//!
//! // And the runtime container it describes:
//! let coo = CooMatrix::from_triplets(
//!     2, 2, vec![0, 1], vec![1, 0], vec![1.0, 2.0]).unwrap();
//! let m = CsrMatrix::from_coo(&coo);
//! m.validate().unwrap();
//! ```

#![warn(missing_docs)]
// No panicking escape hatches in production code: every failure must
// surface as a typed error (tests may assert freely; see clippy.toml).
#![deny(clippy::unwrap_used)]
#![deny(clippy::expect_used)]
#![warn(rust_2018_idioms)]

pub mod containers;
pub mod descriptors;
pub mod error;
pub mod validate;

pub use containers::{
    AnyMatrix, AnyTensor, BcsrMatrix, Coo3Tensor, CooMatrix, CscMatrix, CsfTensor, CsrMatrix,
    DenseMatrix, DiaMatrix, EllMatrix, HicooTensor, MatrixRef, MortonCoo3Tensor,
    MortonCooMatrix, TensorRef,
};
pub use descriptors::{
    domain_alloc_size, range_max, FormatDescriptor, FormatKind, ScanInfo, StructuralHasher,
};
pub use error::FormatError;
pub use validate::{validate_matrix, validate_tensor, InputCheck, ValidationError};
