//! Sparse format descriptors — §3.1 and Table 1 of the paper.
//!
//! A [`FormatDescriptor`] packages everything the synthesis algorithm
//! needs about a format:
//!
//! * the **sparse-to-dense map** (a [`Relation`] from the sparse iteration
//!   space to dense coordinates),
//! * the **data access relation** (sparse iteration space → data index),
//! * the **domain and range of every uninterpreted function** (a
//!   [`UfEnvironment`] of [`UfSignature`]s, including monotonicity
//!   properties), and
//! * the **universal quantifiers**: monotonic quantifiers live on the UF
//!   signatures; reordering quantifiers are captured semantically as an
//!   [`OrderKey`] over the dense coordinates.
//!
//! Additionally each descriptor that can act as a conversion *source*
//! carries a [`ScanInfo`]: an executable iteration set over
//! `[sparse positions..., dense coords...]` whose loop nest enumerates the
//! stored nonzeros (this is what the sparse-to-dense map denotes,
//! pre-simplified so the code generator can scan it directly).

use std::collections::BTreeMap;
use std::fmt::{self, Write as _};

use spf_ir::expr::{Atom, LinExpr, VarId};
use spf_ir::formula::{Relation, Set};
use spf_ir::order::{KeyDim, OrderKey};
use spf_ir::parser::{parse_relation, parse_set};
use spf_ir::uf::{Monotonicity, UfEnvironment, UfSignature};

/// How to iterate a format as a conversion source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanInfo {
    /// Iteration set over `[sparse..., dense...]`; scanning it visits each
    /// stored nonzero once with the dense coordinates bound.
    pub set: Set,
    /// Tuple position of each dense coordinate (`dense_pos[d]` = where
    /// dense dimension `d` lives in `set`'s tuple).
    pub dense_pos: Vec<usize>,
    /// Source data index of the current nonzero, over `set`'s tuple.
    pub data_index: LinExpr,
}

/// A complete sparse tensor format description (one row of Table 1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FormatDescriptor {
    /// Format name, e.g. `"CSR"`.
    pub name: String,
    /// Dense rank (2 for matrices, 3 for order-3 tensors).
    pub rank: usize,
    /// The sparse-to-dense map `R_{A_fmt -> A_D}`.
    pub sparse_to_dense: Relation,
    /// The data access relation `D_{I_fmt -> A_fmt}`.
    pub data_access: Relation,
    /// Source-side executable iteration information; `None` for formats
    /// not yet supported as sources (e.g. DIA, whose stored entries
    /// include padding).
    pub scan: Option<ScanInfo>,
    /// Signatures of this format's uninterpreted functions.
    pub ufs: UfEnvironment,
    /// The reordering universal quantifier, as an order over dense
    /// coordinates; `None` when nonzero order is unconstrained.
    pub order: Option<OrderKey>,
    /// Name of the data array (e.g. `"Acsr"`).
    pub data_name: String,
    /// Size of the data array as a product of factors over symbolic
    /// constants (products let DIA declare `ND * NR`).
    pub data_size: Vec<LinExpr>,
    /// Shape symbols per dense dimension, e.g. `["NR", "NC"]`.
    pub dim_syms: Vec<String>,
    /// The nonzero-count symbol (shared by all formats of one tensor).
    pub nnz_sym: String,
    /// Symbols owned by this format that synthesis must produce when it
    /// is the destination (e.g. DIA's `ND`).
    pub extra_syms: Vec<String>,
    /// Per dense dimension, the UF of this format that stores that
    /// coordinate directly, if any (e.g. COO: `[row1, col1]`). Used to
    /// render reordering quantifiers in the paper's notation.
    pub coord_ufs: Vec<Option<String>>,
    /// `true` when the data index enumerates the stored nonzeros densely
    /// (`0..NNZ` with no gaps) — COO/CSR/CSC-style layouts. Padded
    /// layouts (ELL, DIA) set `false`; synthesis then may not substitute
    /// the source data index for a destination rank.
    pub contiguous_data: bool,
}

/// The classification of a descriptor onto a runtime container family,
/// derived from the descriptor's *structure* (monotonic pointer UFs,
/// stored-coordinate UFs, data contiguity, and order key) rather than its
/// name. Generic bind/extract dispatch keys on this.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FormatKind {
    /// Unordered coordinate storage ([`crate::CooMatrix`]).
    Coo,
    /// Lexicographically ordered coordinate storage (row- or column-major;
    /// container is still [`crate::CooMatrix`]).
    SortedCoo,
    /// Morton-ordered coordinate storage ([`crate::MortonCooMatrix`]).
    MortonCoo,
    /// Compressed rows ([`crate::CsrMatrix`]).
    Csr,
    /// Compressed columns ([`crate::CscMatrix`]).
    Csc,
    /// Diagonal storage ([`crate::DiaMatrix`]).
    Dia,
    /// Padded slot-per-row storage ([`crate::EllMatrix`]).
    Ell,
    /// Order-3 coordinate storage ([`crate::Coo3Tensor`]), sorted or not.
    Coo3,
    /// Morton-ordered order-3 coordinates ([`crate::MortonCoo3Tensor`]).
    MortonCoo3,
    /// No runtime container maps onto this descriptor (e.g. BCSR, whose
    /// blocked map is outside the synthesizable fragment).
    Unsupported,
}

/// FNV-1a, the stable structural hash behind
/// [`FormatDescriptor::fingerprint`]. Not `DefaultHasher`: descriptor
/// fingerprints key the conversion-engine plan cache and must be
/// identical across processes and builds.
#[derive(Debug, Clone)]
pub struct StructuralHasher {
    state: u64,
}

impl StructuralHasher {
    /// Fresh hasher at the FNV-1a offset basis.
    pub fn new() -> Self {
        StructuralHasher { state: 0xcbf2_9ce4_8422_2325 }
    }

    /// Absorbs raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    /// Absorbs a length-prefixed string (prefixing prevents adjacent
    /// fields from sliding into each other).
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write(s.as_bytes());
    }

    /// Absorbs a value's `Display` rendering without materializing it as
    /// a `String` (the fingerprint sits on the engine's warm path, where
    /// per-lookup allocations would dominate a cache hit). Framed by a
    /// trailing length, equivalent in collision resistance to
    /// [`StructuralHasher::write_str`]'s leading one.
    pub fn write_display(&mut self, value: impl fmt::Display) {
        struct Absorb<'a> {
            h: &'a mut StructuralHasher,
            n: u64,
        }
        impl fmt::Write for Absorb<'_> {
            fn write_str(&mut self, s: &str) -> fmt::Result {
                self.h.write(s.as_bytes());
                self.n += s.len() as u64;
                Ok(())
            }
        }
        let mut sink = Absorb { h: self, n: 0 };
        let _ = write!(sink, "{value}");
        let n = sink.n;
        self.write_u64(n);
    }

    /// Absorbs a `u64`.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// The accumulated 64-bit hash.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for StructuralHasher {
    fn default() -> Self {
        StructuralHasher::new()
    }
}

impl FormatDescriptor {
    /// A stable 64-bit fingerprint of this descriptor's *structural
    /// content*: the sparse-to-dense and data-access relations, every UF
    /// signature (name, domain, range, monotonicity), the scan info, the
    /// order key, and the shape/data symbols.
    ///
    /// Two clones always agree; any structural edit (changing a UF
    /// domain, the order key, a relation constraint, …) changes the
    /// fingerprint. The conversion engine keys its plan cache on this, so
    /// the hash is deterministic across processes (FNV-1a over canonical
    /// renderings, never pointer or `HashMap`-order identity).
    pub fn fingerprint(&self) -> u64 {
        // Deliberately skips `self.name`: the fingerprint captures what
        // the descriptor *means*, so renaming a format (or reusing a
        // descriptor under another label) still hits the same cached plan.
        let mut h = StructuralHasher::new();
        h.write_u64(self.rank as u64);
        h.write_display(&self.sparse_to_dense);
        h.write_display(&self.data_access);
        match &self.scan {
            None => h.write_u64(0),
            Some(scan) => {
                h.write_u64(1);
                h.write_display(&scan.set);
                h.write_u64(scan.dense_pos.len() as u64);
                for &p in &scan.dense_pos {
                    h.write_u64(p as u64);
                }
                h.write_display(&scan.data_index);
            }
        }
        // UfEnvironment iterates in deterministic (name) order.
        h.write_u64(self.ufs.iter().count() as u64);
        for sig in self.ufs.iter() {
            h.write_str(&sig.name);
            h.write_u64(sig.arity as u64);
            h.write_display(&sig.domain);
            h.write_display(&sig.range);
            match sig.monotonicity {
                None => h.write_u64(0),
                Some(m) => {
                    h.write_u64(1);
                    h.write_display(m);
                }
            }
        }
        match &self.order {
            None => h.write_u64(0),
            Some(k) => {
                h.write_u64(1);
                h.write_display(k);
            }
        }
        h.write_str(&self.data_name);
        h.write_u64(self.data_size.len() as u64);
        for e in &self.data_size {
            h.write_display(e);
        }
        h.write_u64(self.dim_syms.len() as u64);
        for s in &self.dim_syms {
            h.write_str(s);
        }
        h.write_str(&self.nnz_sym);
        h.write_u64(self.extra_syms.len() as u64);
        for s in &self.extra_syms {
            h.write_str(s);
        }
        h.write_u64(self.coord_ufs.len() as u64);
        for c in &self.coord_ufs {
            match c {
                None => h.write_u64(0),
                Some(n) => {
                    h.write_u64(1);
                    h.write_str(n);
                }
            }
        }
        h.write_u64(self.contiguous_data as u64);
        h.finish()
    }

    /// Classifies this descriptor onto a runtime container family (see
    /// [`FormatKind`]) from its structure alone.
    pub fn kind(&self) -> FormatKind {
        use spf_ir::order::Comparator;
        let pointer = self
            .ufs
            .iter()
            .find(|s| s.monotonicity == Some(spf_ir::uf::Monotonicity::NonDecreasing));
        let increasing = self
            .ufs
            .iter()
            .any(|s| s.monotonicity == Some(spf_ir::uf::Monotonicity::Increasing));
        match self.rank {
            2 => {
                if pointer.is_some() {
                    // Compressed along one dimension: the stored
                    // coordinate UF says which.
                    if self.coord_ufs.get(1).is_some_and(Option::is_some) {
                        FormatKind::Csr
                    } else if self.coord_ufs.first().is_some_and(Option::is_some) {
                        FormatKind::Csc
                    } else {
                        FormatKind::Unsupported
                    }
                } else if !self.contiguous_data {
                    // Padded layouts: DIA declares a strictly increasing
                    // offset UF, ELL a plain padded column UF.
                    if increasing && self.extra_syms.len() == 1 {
                        FormatKind::Dia
                    } else if self.extra_syms.len() == 1 {
                        FormatKind::Ell
                    } else {
                        FormatKind::Unsupported
                    }
                } else if self.coord_ufs.iter().all(Option::is_some) {
                    match &self.order {
                        None => FormatKind::Coo,
                        Some(k) if k.comparator == Comparator::Morton => FormatKind::MortonCoo,
                        Some(_) => FormatKind::SortedCoo,
                    }
                } else {
                    FormatKind::Unsupported
                }
            }
            3 => {
                if !self.contiguous_data || !self.coord_ufs.iter().all(Option::is_some) {
                    return FormatKind::Unsupported;
                }
                match &self.order {
                    Some(k) if k.comparator == Comparator::Morton => FormatKind::MortonCoo3,
                    _ => FormatKind::Coo3,
                }
            }
            _ => FormatKind::Unsupported,
        }
    }

    /// Renders the paper's universal-quantifier column for this format:
    /// the reordering quantifier (if any) followed by each monotonic
    /// quantifier.
    pub fn quantifier_texts(&self) -> Vec<String> {
        let mut out = Vec::new();
        if let Some(order) = &self.order {
            let coord_names: Vec<String> = self
                .coord_ufs
                .iter()
                .enumerate()
                .map(|(d, u)| u.clone().unwrap_or_else(|| format!("d{d}")))
                .collect();
            out.push(order.quantifier_text(&coord_names));
        }
        for sig in self.ufs.iter() {
            if let Some(m) = sig.monotonicity {
                out.push(m.quantifier_text(&sig.name));
            }
        }
        out
    }

    /// Renders the full Table-1 row (maps, domains/ranges, quantifiers).
    pub fn table1_row(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!("Format: {}\n", self.name));
        s.push_str(&format!("  R_{{A_{} -> A_D}} = {}\n", self.name, self.sparse_to_dense));
        s.push_str(&format!(
            "  D_{{I_{} -> A_{}}} = {}\n",
            self.name, self.name, self.data_access
        ));
        for sig in self.ufs.iter() {
            s.push_str(&format!(
                "  domain({}) = {}, range({}) = {}\n",
                sig.name, sig.domain, sig.name, sig.range
            ));
        }
        for q in self.quantifier_texts() {
            s.push_str(&format!("  {q}\n"));
        }
        s
    }

    /// All uninterpreted-function names of this format.
    pub fn uf_names(&self) -> Vec<String> {
        self.ufs.iter().map(|s| s.name.clone()).collect()
    }

    /// Returns a copy with every UF name, the data name, and the
    /// format-owned symbols suffixed by `suffix` — used when source and
    /// destination formats would otherwise share names (e.g. COO →
    /// sorted-COO).
    pub fn with_suffix(&self, suffix: &str) -> FormatDescriptor {
        let mut map: BTreeMap<String, String> = BTreeMap::new();
        for name in self.uf_names() {
            map.insert(name.clone(), format!("{name}{suffix}"));
        }
        for sym in &self.extra_syms {
            map.insert(sym.clone(), format!("{sym}{suffix}"));
        }
        let mut out = self.clone();
        out.name = format!("{}{suffix}", self.name);
        out.data_name = format!("{}{suffix}", self.data_name);
        rename_in_relation(&mut out.sparse_to_dense, &map);
        rename_in_relation(&mut out.data_access, &map);
        if let Some(scan) = &mut out.scan {
            rename_in_set(&mut scan.set, &map);
            scan.data_index = rename_in_expr(&scan.data_index, &map);
        }
        out.data_size = out.data_size.iter().map(|e| rename_in_expr(e, &map)).collect();
        let mut ufs = UfEnvironment::new();
        for sig in self.ufs.iter() {
            let mut sig = sig.clone();
            sig.name = map[&sig.name].clone();
            // Domains/ranges mention shared shape symbols only; rename
            // format-owned symbols inside them too.
            rename_in_set(&mut sig.domain, &map);
            rename_in_set(&mut sig.range, &map);
            ufs.insert(sig);
        }
        out.ufs = ufs;
        out.extra_syms = self
            .extra_syms
            .iter()
            .map(|s| map.get(s).cloned().unwrap_or_else(|| s.clone()))
            .collect();
        out.coord_ufs = self
            .coord_ufs
            .iter()
            .map(|o| o.as_ref().map(|n| map.get(n).cloned().unwrap_or_else(|| n.clone())))
            .collect();
        out
    }
}

/// Renames UF calls and symbols in an expression per `map`.
fn rename_in_expr(e: &LinExpr, map: &BTreeMap<String, String>) -> LinExpr {
    fn rename_atom(a: &Atom, map: &BTreeMap<String, String>) -> Atom {
        match a {
            Atom::Var(v) => Atom::Var(*v),
            Atom::Sym(s) => Atom::Sym(map.get(s).cloned().unwrap_or_else(|| s.clone())),
            Atom::Uf(u) => {
                let name = map.get(&u.name).cloned().unwrap_or_else(|| u.name.clone());
                Atom::Uf(spf_ir::UfCall::new(
                    name,
                    u.args.iter().map(|x| rename_in_expr(x, map)).collect(),
                ))
            }
            Atom::Prod(fs) => Atom::Prod(fs.iter().map(|x| rename_atom(x, map)).collect()),
        }
    }
    let mut out = LinExpr::constant(e.constant);
    for (c, a) in &e.terms {
        out.terms.push((*c, rename_atom(a, map)));
    }
    out.canonicalize();
    out
}

/// Renames UF calls and symbols throughout a set.
pub fn rename_in_set(s: &mut Set, map: &BTreeMap<String, String>) {
    for conj in s.conjunctions_mut() {
        for c in &mut conj.constraints {
            *c.expr_mut() = rename_in_expr(c.expr(), map);
        }
    }
}

/// Renames UF calls and symbols throughout a relation.
pub fn rename_in_relation(r: &mut Relation, map: &BTreeMap<String, String>) {
    for conj in r.conjunctions_mut() {
        for c in &mut conj.constraints {
            *c.expr_mut() = rename_in_expr(c.expr(), map);
        }
    }
}

/// Extracts the (exclusive) allocation size of a unary UF from its domain
/// set: the tightest upper bound plus one. E.g. `{[x] : 0 <= x <= NR}`
/// gives `NR + 1`, `{[x] : 0 <= x < NNZ}` gives `NNZ`.
pub fn domain_alloc_size(sig: &UfSignature) -> Option<LinExpr> {
    let conj = sig.domain.conjunctions().first()?;
    let v = VarId(0);
    let mut best: Option<LinExpr> = None;
    for c in &conj.constraints {
        let spf_ir::Constraint::Geq(e) = c else { continue };
        if e.coeff_of_var(v) == -1 && !e.var_inside_uf(v) {
            // -x + rest >= 0  =>  x <= rest  =>  size = rest + 1
            let mut rest = e.clone();
            rest.terms.retain(|(_, a)| !matches!(a, Atom::Var(w) if *w == v));
            let size = rest.add(&LinExpr::constant(1));
            // Prefer the first (descriptors declare a single upper bound).
            if best.is_none() {
                best = Some(size);
            }
        }
    }
    best
}

/// Extracts the initialization value for min-style population of a UF:
/// the (inclusive) maximum of its range, used as the "+infinity" initial
/// value. E.g. range `{[y] : 0 <= y <= NNZ}` gives `NNZ`.
pub fn range_max(sig: &UfSignature) -> Option<LinExpr> {
    let conj = sig.range.conjunctions().first()?;
    let v = VarId(0);
    for c in &conj.constraints {
        let spf_ir::Constraint::Geq(e) = c else { continue };
        if e.coeff_of_var(v) == -1 && !e.var_inside_uf(v) {
            let mut rest = e.clone();
            rest.terms.retain(|(_, a)| !matches!(a, Atom::Var(w) if *w == v));
            return Some(rest);
        }
    }
    None
}

// The three parsers below consume only string literals baked into this
// module (the Table 1 catalog); a parse failure is a typo-in-the-source
// class of bug that every descriptor unit test hits immediately, so
// panicking is correct and the no-panic lint is waived.

#[allow(clippy::expect_used)]
fn sig(
    name: &str,
    domain: &str,
    range: &str,
    mono: Option<Monotonicity>,
) -> UfSignature {
    UfSignature::parse(name, domain, range, mono).expect("static signature parses")
}

#[allow(clippy::expect_used)]
fn simplified_set(src: &str) -> Set {
    let mut s = parse_set(src).expect("static set parses");
    s.simplify();
    s
}

#[allow(clippy::expect_used)]
fn rel(src: &str) -> Relation {
    parse_relation(src).expect("static relation parses")
}

/// The COO descriptor (Table 1, row `COO`): unordered coordinate storage
/// with UFs `row1`, `col1`.
pub fn coo() -> FormatDescriptor {
    let mut ufs = UfEnvironment::new();
    ufs.insert(sig("row1", "{ [x] : 0 <= x < NNZ }", "{ [i] : 0 <= i < NR }", None));
    ufs.insert(sig("col1", "{ [x] : 0 <= x < NNZ }", "{ [j] : 0 <= j < NC }", None));
    FormatDescriptor {
        name: "COO".into(),
        rank: 2,
        sparse_to_dense: rel(
            "{ [n, ii, jj] -> [i, j] : row1(n) = i && col1(n) = j && ii = i && jj = j \
             && 0 <= i < NR && 0 <= j < NC && 0 <= n < NNZ }",
        ),
        data_access: rel("{ [n, ii, jj] -> [d0] : d0 = n }"),
        scan: Some(ScanInfo {
            set: simplified_set(
                "{ [n, i, j] : i = row1(n) && j = col1(n) && 0 <= n < NNZ }",
            ),
            dense_pos: vec![1, 2],
            data_index: LinExpr::var(VarId(0)),
        }),
        ufs,
        order: None,
        data_name: "Acoo".into(),
        data_size: vec![LinExpr::sym("NNZ")],
        dim_syms: vec!["NR".into(), "NC".into()],
        nnz_sym: "NNZ".into(),
        extra_syms: vec![],
        coord_ufs: vec![Some("row1".into()), Some("col1".into())],
        contiguous_data: true,
    }
}

/// Sorted COO: the paper's evaluation source ("COO is assumed to be
/// sorted lexicographically row first") — COO plus a lexicographic
/// reordering quantifier.
pub fn scoo() -> FormatDescriptor {
    let mut d = coo();
    d.name = "SCOO".into();
    d.order = Some(OrderKey::row_major(2));
    d
}

/// The CSR descriptor (Table 1, row `CSR`): monotonic `rowptr` plus
/// row-major-ordered `col2`.
pub fn csr() -> FormatDescriptor {
    let mut ufs = UfEnvironment::new();
    ufs.insert(sig(
        "rowptr",
        "{ [x] : 0 <= x <= NR }",
        "{ [n] : 0 <= n <= NNZ }",
        Some(Monotonicity::NonDecreasing),
    ));
    ufs.insert(sig("col2", "{ [x] : 0 <= x < NNZ }", "{ [j] : 0 <= j < NC }", None));
    FormatDescriptor {
        name: "CSR".into(),
        rank: 2,
        sparse_to_dense: rel(
            "{ [ii, k, jj] -> [i, j] : ii = i && jj = j && col2(k) = j \
             && 0 <= ii < NR && rowptr(ii) <= k < rowptr(ii + 1) }",
        ),
        data_access: rel("{ [ii, k, jj] -> [d0] : d0 = k }"),
        scan: Some(ScanInfo {
            set: simplified_set(
                "{ [i, k, j] : 0 <= i < NR && rowptr(i) <= k < rowptr(i + 1) \
                 && j = col2(k) }",
            ),
            dense_pos: vec![0, 2],
            data_index: LinExpr::var(VarId(1)),
        }),
        ufs,
        order: Some(OrderKey::row_major(2)),
        data_name: "Acsr".into(),
        data_size: vec![LinExpr::sym("NNZ")],
        dim_syms: vec!["NR".into(), "NC".into()],
        nnz_sym: "NNZ".into(),
        extra_syms: vec![],
        coord_ufs: vec![None, Some("col2".into())],
        contiguous_data: true,
    }
}

/// The CSC descriptor (Table 1, row `CSC`): monotonic `colptr` plus
/// column-major-ordered `row`.
pub fn csc() -> FormatDescriptor {
    let mut ufs = UfEnvironment::new();
    ufs.insert(sig(
        "colptr",
        "{ [x] : 0 <= x <= NC }",
        "{ [n] : 0 <= n <= NNZ }",
        Some(Monotonicity::NonDecreasing),
    ));
    ufs.insert(sig("row", "{ [x] : 0 <= x < NNZ }", "{ [i] : 0 <= i < NR }", None));
    FormatDescriptor {
        name: "CSC".into(),
        rank: 2,
        sparse_to_dense: rel(
            "{ [jj, k, ii] -> [i, j] : jj = j && ii = i && row(k) = i \
             && 0 <= jj < NC && colptr(jj) <= k < colptr(jj + 1) }",
        ),
        data_access: rel("{ [jj, k, ii] -> [d0] : d0 = k }"),
        scan: Some(ScanInfo {
            set: simplified_set(
                "{ [j, k, i] : 0 <= j < NC && colptr(j) <= k < colptr(j + 1) \
                 && i = row(k) }",
            ),
            dense_pos: vec![2, 0],
            data_index: LinExpr::var(VarId(1)),
        }),
        ufs,
        // Column-major: sort by (j, i).
        order: Some(OrderKey::lex(vec![KeyDim::coord(2, 1), KeyDim::coord(2, 0)])),
        data_name: "Acsc".into(),
        data_size: vec![LinExpr::sym("NNZ")],
        dim_syms: vec!["NR".into(), "NC".into()],
        nnz_sym: "NNZ".into(),
        extra_syms: vec![],
        coord_ufs: vec![Some("row".into()), None],
        contiguous_data: true,
    }
}

/// The DIA descriptor (Table 1, row `DIA`): strictly increasing `off`
/// with dense per-diagonal storage addressed `kd = ND * ii + d`.
pub fn dia() -> FormatDescriptor {
    let mut ufs = UfEnvironment::new();
    ufs.insert(sig(
        "off",
        "{ [x] : 0 <= x < ND }",
        "{ [o] : 0 - NR < o && o < NC }",
        Some(Monotonicity::Increasing),
    ));
    FormatDescriptor {
        name: "DIA".into(),
        rank: 2,
        sparse_to_dense: rel(
            "{ [ii, d, jj] -> [i, j] : i = ii && 0 <= i < NR && 0 <= d < ND \
             && j = i + off(d) && 0 <= j < NC && jj = j }",
        ),
        data_access: rel("{ [ii, d, jj] -> [kd] : kd = ND * ii + d }"),
        // DIA stores padding, so it is not supported as a conversion
        // source in this release.
        scan: None,
        ufs,
        order: None,
        data_name: "Adia".into(),
        data_size: vec![LinExpr::sym("ND"), LinExpr::sym("NR")],
        dim_syms: vec!["NR".into(), "NC".into()],
        nnz_sym: "NNZ".into(),
        extra_syms: vec!["ND".into()],
        coord_ufs: vec![None, None],
        contiguous_data: false,
    }
}

/// DIA with an executable scan, for *executor* generation (SpMV over the
/// diagonal layout). Not usable as a conversion source: DIA stores
/// explicit zeros (padding inside the matrix), so a conversion would
/// copy them; an executor merely multiplies them by zero.
pub fn dia_executable() -> FormatDescriptor {
    let mut d = dia();
    d.scan = Some(ScanInfo {
        set: simplified_set(
            "{ [i, dd, j] : 0 <= i < NR && 0 <= dd < ND && j = i + off(dd) \
             && 0 <= j < NC }",
        ),
        dense_pos: vec![0, 2],
        data_index: {
            let i = LinExpr::var(VarId(0));
            let dd = LinExpr::var(VarId(1));
            i.mul_expr(&LinExpr::sym("ND")).add(&dd)
        },
    });
    d
}

/// The MCOO descriptor (Table 1, row `MCOO`): COO sorted by the Morton
/// code of `(i, j)` — the reordering universal quantifier that motivates
/// the paper.
pub fn mcoo() -> FormatDescriptor {
    let mut ufs = UfEnvironment::new();
    ufs.insert(sig("rowm", "{ [x] : 0 <= x < NNZ }", "{ [i] : 0 <= i < NR }", None));
    ufs.insert(sig("colm", "{ [x] : 0 <= x < NNZ }", "{ [j] : 0 <= j < NC }", None));
    FormatDescriptor {
        name: "MCOO".into(),
        rank: 2,
        sparse_to_dense: rel(
            "{ [n, ii, jj] -> [i, j] : rowm(n) = i && colm(n) = j && ii = i && jj = j \
             && 0 <= i < NR && 0 <= j < NC && 0 <= n < NNZ }",
        ),
        data_access: rel("{ [n, ii, jj] -> [d0] : d0 = n }"),
        scan: Some(ScanInfo {
            set: simplified_set(
                "{ [n, i, j] : i = rowm(n) && j = colm(n) && 0 <= n < NNZ }",
            ),
            dense_pos: vec![1, 2],
            data_index: LinExpr::var(VarId(0)),
        }),
        ufs,
        order: Some(OrderKey::morton(2)),
        data_name: "Amcoo".into(),
        data_size: vec![LinExpr::sym("NNZ")],
        dim_syms: vec!["NR".into(), "NC".into()],
        nnz_sym: "NNZ".into(),
        extra_syms: vec![],
        coord_ufs: vec![Some("rowm".into()), Some("colm".into())],
        contiguous_data: true,
    }
}

/// The COO3D descriptor (Table 1, row `COO3D`).
pub fn coo3() -> FormatDescriptor {
    let mut ufs = UfEnvironment::new();
    ufs.insert(sig("row1", "{ [x] : 0 <= x < NNZ }", "{ [i] : 0 <= i < NR }", None));
    ufs.insert(sig("col1", "{ [x] : 0 <= x < NNZ }", "{ [j] : 0 <= j < NC }", None));
    ufs.insert(sig("z1", "{ [x] : 0 <= x < NNZ }", "{ [k] : 0 <= k < NZ }", None));
    FormatDescriptor {
        name: "COO3D".into(),
        rank: 3,
        sparse_to_dense: rel(
            "{ [n, ii, jj, kk] -> [i, j, k] : row1(n) = i && col1(n) = j && z1(n) = k \
             && ii = i && jj = j && kk = k && 0 <= i < NR && 0 <= j < NC \
             && 0 <= k < NZ && 0 <= n < NNZ }",
        ),
        data_access: rel("{ [n, ii, jj, kk] -> [d0] : d0 = n }"),
        scan: Some(ScanInfo {
            set: simplified_set(
                "{ [n, i, j, k] : i = row1(n) && j = col1(n) && k = z1(n) \
                 && 0 <= n < NNZ }",
            ),
            dense_pos: vec![1, 2, 3],
            data_index: LinExpr::var(VarId(0)),
        }),
        ufs,
        order: None,
        data_name: "Acoo3".into(),
        data_size: vec![LinExpr::sym("NNZ")],
        dim_syms: vec!["NR".into(), "NC".into(), "NZ".into()],
        nnz_sym: "NNZ".into(),
        extra_syms: vec![],
        coord_ufs: vec![Some("row1".into()), Some("col1".into()), Some("z1".into())],
        contiguous_data: true,
    }
}

/// Sorted COO3D: lexicographically ordered source tensor, as assumed by
/// the Table 4 experiment.
pub fn scoo3() -> FormatDescriptor {
    let mut d = coo3();
    d.name = "SCOO3".into();
    d.order = Some(OrderKey::row_major(3));
    d
}

/// The MCOO3 descriptor (Table 1, row `MCOO3`): Morton-ordered order-3
/// COO — the destination of the Table 4 reordering experiment.
pub fn mcoo3() -> FormatDescriptor {
    let mut ufs = UfEnvironment::new();
    ufs.insert(sig("rowm", "{ [x] : 0 <= x < NNZ }", "{ [i] : 0 <= i < NR }", None));
    ufs.insert(sig("colm", "{ [x] : 0 <= x < NNZ }", "{ [j] : 0 <= j < NC }", None));
    ufs.insert(sig("zm", "{ [x] : 0 <= x < NNZ }", "{ [k] : 0 <= k < NZ }", None));
    FormatDescriptor {
        name: "MCOO3".into(),
        rank: 3,
        sparse_to_dense: rel(
            "{ [n, ii, jj, kk] -> [i, j, k] : rowm(n) = i && colm(n) = j && zm(n) = k \
             && ii = i && jj = j && kk = k && 0 <= i < NR && 0 <= j < NC \
             && 0 <= k < NZ && 0 <= n < NNZ }",
        ),
        data_access: rel("{ [n, ii, jj, kk] -> [d0] : d0 = n }"),
        scan: Some(ScanInfo {
            set: simplified_set(
                "{ [n, i, j, k] : i = rowm(n) && j = colm(n) && k = zm(n) \
                 && 0 <= n < NNZ }",
            ),
            dense_pos: vec![1, 2, 3],
            data_index: LinExpr::var(VarId(0)),
        }),
        ufs,
        order: Some(OrderKey::morton(3)),
        data_name: "Amcoo3".into(),
        data_size: vec![LinExpr::sym("NNZ")],
        dim_syms: vec!["NR".into(), "NC".into(), "NZ".into()],
        nnz_sym: "NNZ".into(),
        extra_syms: vec![],
        coord_ufs: vec![Some("rowm".into()), Some("colm".into()), Some("zm".into())],
        contiguous_data: true,
    }
}

/// The ELL descriptor — an extension beyond the paper's Table 1: padded
/// slot storage with `W` (`ELLW`) entries per row, addressed
/// `kd = ELLW * ii + s`. The padding sentinel (`col = -1`) keeps the
/// iteration space guarded by `0 <= j`. Supported as a conversion
/// *source*; destination support would require per-row slot counters,
/// which the paper's Cases 1–5 do not cover (documented in DESIGN.md).
pub fn ell() -> FormatDescriptor {
    let mut ufs = UfEnvironment::new();
    ufs.insert(sig(
        "ellcol",
        "{ [x] : 0 <= x < ELLW * NR }",
        "{ [j] : 0 - 1 <= j < NC }",
        None,
    ));
    FormatDescriptor {
        name: "ELL".into(),
        rank: 2,
        sparse_to_dense: rel(
            "{ [ii, ss, jj] -> [i, j] : ii = i && jj = j && ellcol(ELLW * ii + ss) = j \
             && 0 <= ii < NR && 0 <= ss < ELLW && 0 <= j < NC }",
        ),
        data_access: rel("{ [ii, ss, jj] -> [kd] : kd = ELLW * ii + ss }"),
        scan: Some(ScanInfo {
            set: simplified_set(
                "{ [i, s, j] : 0 <= i < NR && 0 <= s < ELLW \
                 && j = ellcol(ELLW * i + s) && 0 <= j }",
            ),
            dense_pos: vec![0, 2],
            data_index: {
                let i = LinExpr::var(VarId(0));
                let s_var = LinExpr::var(VarId(1));
                i.mul_expr(&LinExpr::sym("ELLW")).add(&s_var)
            },
        }),
        ufs,
        order: Some(OrderKey::row_major(2)),
        data_name: "Aell".into(),
        data_size: vec![LinExpr::sym("ELLW"), LinExpr::sym("NR")],
        dim_syms: vec!["NR".into(), "NC".into()],
        nnz_sym: "NNZ".into(),
        extra_syms: vec!["ELLW".into()],
        coord_ufs: vec![None, None],
        contiguous_data: false,
    }
}

/// The BCSR descriptor (Figure 1's blocked format) — display-only: the
/// blocked sparse-to-dense map needs integer division (`bi = i / BH`),
/// which is outside the affine-with-UFs fragment, so BCSR participates in
/// Table-1 rendering and runtime validation but not (yet) synthesis.
pub fn bcsr(bh: i64, bw: i64) -> FormatDescriptor {
    let mut ufs = UfEnvironment::new();
    ufs.insert(sig(
        "browptr",
        "{ [x] : 0 <= x <= NBR }",
        "{ [n] : 0 <= n <= NB }",
        Some(Monotonicity::NonDecreasing),
    ));
    ufs.insert(sig("bcol", "{ [x] : 0 <= x < NB }", "{ [bj] : 0 <= bj < NBC }", None));
    FormatDescriptor {
        name: format!("BCSR{bh}x{bw}"),
        rank: 2,
        // Block coordinates appear as explicit tuple variables with the
        // residues r, c: i = BH * bi + r, j = BW * bj + c.
        sparse_to_dense: rel(&format!(
            "{{ [bi, kb, r, c] -> [i, j] : i = {bh} * bi + r && j = {bw} * bcol(kb) + c \
             && 0 <= bi < NBR && browptr(bi) <= kb < browptr(bi + 1) \
             && 0 <= r < {bh} && 0 <= c < {bw} && 0 <= i < NR && 0 <= j < NC }}"
        )),
        data_access: rel(&format!(
            "{{ [bi, kb, r, c] -> [kd] : kd = {bh} * {bw} * kb + {bw} * r + c }}"
        )),
        scan: None,
        ufs,
        order: None,
        data_name: "Abcsr".into(),
        data_size: vec![LinExpr::sym("NB"), LinExpr::constant(bh * bw)],
        dim_syms: vec!["NR".into(), "NC".into()],
        nnz_sym: "NNZ".into(),
        extra_syms: vec!["NBR".into(), "NBC".into(), "NB".into()],
        coord_ufs: vec![None, None],
        contiguous_data: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_roundtrip_all_descriptors() {
        for d in [coo(), scoo(), csr(), csc(), dia(), mcoo(), coo3(), scoo3(), mcoo3()] {
            // Maps parse back from their own display.
            let printed = d.sparse_to_dense.to_string();
            let back = parse_relation(&printed).unwrap();
            assert_eq!(back.in_arity(), d.sparse_to_dense.in_arity(), "{}", d.name);
            assert_eq!(back.out_arity(), d.rank as u32, "{}", d.name);
            // The row renders without panicking and mentions the name.
            assert!(d.table1_row().contains(&d.name));
        }
    }

    #[test]
    fn scan_sets_are_existential_free() {
        for d in [coo(), scoo(), csr(), csc(), mcoo(), coo3(), scoo3(), mcoo3()] {
            let scan = d.scan.expect("scan info");
            for conj in scan.set.conjunctions() {
                assert!(conj.exists().is_empty(), "{}", d.name);
            }
            assert_eq!(scan.dense_pos.len(), d.rank);
        }
    }

    #[test]
    fn alloc_sizes_from_domains() {
        let c = csr();
        let rowptr = c.ufs.get("rowptr").unwrap();
        let size = domain_alloc_size(rowptr).unwrap();
        // {0 <= x <= NR} => NR + 1
        assert_eq!(size, LinExpr::sym("NR").add(&LinExpr::constant(1)));
        let col2 = c.ufs.get("col2").unwrap();
        assert_eq!(domain_alloc_size(col2).unwrap(), LinExpr::sym("NNZ"));
    }

    #[test]
    fn range_max_gives_min_init() {
        let c = csr();
        let rowptr = c.ufs.get("rowptr").unwrap();
        // range {0 <= n <= NNZ} => init for min-population is NNZ.
        assert_eq!(range_max(rowptr).unwrap(), LinExpr::sym("NNZ"));
    }

    #[test]
    fn order_keys_match_paper() {
        assert!(scoo().order.unwrap().implies(&csr().order.unwrap()));
        assert!(!scoo().order.unwrap().implies(&csc().order.unwrap()));
        assert_eq!(
            mcoo().order.unwrap().comparator,
            spf_ir::order::Comparator::Morton
        );
    }

    #[test]
    fn quantifier_text_for_mcoo() {
        let texts = mcoo().quantifier_texts();
        assert_eq!(texts.len(), 1);
        assert!(texts[0].contains("MORTON(rowm(n1), colm(n1))"));
    }

    #[test]
    fn csr_quantifiers_include_monotonic_rowptr() {
        let texts = csr().quantifier_texts();
        assert!(texts.iter().any(|t| t.contains("rowptr(e1) <= rowptr(e2)")));
    }

    #[test]
    fn suffix_renaming_is_consistent() {
        let d = coo().with_suffix("_dst");
        assert_eq!(d.name, "COO_dst");
        assert!(d.ufs.contains("row1_dst"));
        assert!(!d.ufs.contains("row1"));
        assert!(d.sparse_to_dense.to_string().contains("row1_dst(n)"));
        assert_eq!(d.data_name, "Acoo_dst");
        // Shared shape symbols stay shared.
        assert!(d.sparse_to_dense.to_string().contains("NR"));
    }

    #[test]
    fn ell_descriptor_scans_and_renders() {
        let d = ell();
        assert!(d.scan.is_some());
        assert!(d.table1_row().contains("ellcol"));
        // The data index is the product-form ELLW * i + s.
        let scan = d.scan.unwrap();
        assert!(format!("{}", scan.data_index).contains("ELLW"));
    }

    #[test]
    fn bcsr_descriptor_renders_table1_row() {
        let d = bcsr(2, 3);
        assert_eq!(d.name, "BCSR2x3");
        let row = d.table1_row();
        assert!(row.contains("browptr"));
        assert!(row.contains("2 * bi"));
        assert!(d.scan.is_none());
        // Monotonic quantifier present.
        assert!(d
            .quantifier_texts()
            .iter()
            .any(|t| t.contains("browptr(e1) <= browptr(e2)")));
    }

    #[test]
    fn dia_data_size_is_nd_times_nr() {
        let d = dia();
        assert_eq!(
            d.data_size,
            vec![LinExpr::sym("ND"), LinExpr::sym("NR")]
        );
    }
}
