//! Property-based tests on the runtime containers: every format's
//! reference conversion round-trips through COO/dense, validates its own
//! invariants, and computes the same SpMV.

use proptest::prelude::*;
use sparse_formats::{
    BcsrMatrix, CooMatrix, CscMatrix, CsrMatrix, DiaMatrix, EllMatrix, MortonCooMatrix,
};

fn arb_coo() -> impl Strategy<Value = CooMatrix> {
    (1usize..20, 1usize..20)
        .prop_flat_map(|(nr, nc)| {
            let coords = proptest::collection::btree_set((0..nr, 0..nc), 0..48);
            (Just(nr), Just(nc), coords)
        })
        .prop_map(|(nr, nc, coords)| {
            let row: Vec<i64> = coords.iter().map(|&(i, _)| i as i64).collect();
            let col: Vec<i64> = coords.iter().map(|&(_, j)| j as i64).collect();
            // Values strictly nonzero so padding drops are detectable.
            let val: Vec<f64> = (0..coords.len()).map(|k| k as f64 + 1.0).collect();
            CooMatrix::from_triplets(nr, nc, row, col, val).expect("valid")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn csr_round_trip_and_validate(coo in arb_coo()) {
        let csr = CsrMatrix::from_coo(&coo);
        csr.validate().unwrap();
        prop_assert_eq!(csr.to_dense(), coo.to_dense());
        let mut back = csr.to_coo();
        back.sort_row_major();
        let mut orig = coo;
        orig.sort_row_major();
        prop_assert_eq!(back, orig);
    }

    #[test]
    fn csc_round_trip_and_validate(coo in arb_coo()) {
        let csc = CscMatrix::from_coo(&coo);
        csc.validate().unwrap();
        prop_assert_eq!(csc.to_dense(), coo.to_dense());
    }

    #[test]
    fn dia_round_trip_and_validate(coo in arb_coo()) {
        let dia = DiaMatrix::from_coo(&coo);
        dia.validate().unwrap();
        prop_assert_eq!(dia.to_dense(), coo.to_dense());
        prop_assert_eq!(dia.nd(), coo.diagonals().len());
    }

    #[test]
    fn ell_round_trip_and_validate(coo in arb_coo()) {
        let ell = EllMatrix::from_coo(&coo);
        ell.validate().unwrap();
        prop_assert_eq!(ell.to_dense(), coo.to_dense());
    }

    #[test]
    fn bcsr_round_trip_and_validate(coo in arb_coo(), bh in 1usize..4, bw in 1usize..4) {
        let b = BcsrMatrix::from_coo(&coo, bh, bw);
        b.validate().unwrap();
        prop_assert_eq!(b.to_dense(), coo.to_dense());
    }

    #[test]
    fn mcoo_is_a_permutation(coo in arb_coo()) {
        let m = MortonCooMatrix::from_coo(&coo);
        m.validate().unwrap();
        prop_assert_eq!(m.coo.to_dense(), coo.to_dense());
        prop_assert_eq!(m.nnz(), coo.nnz());
    }

    #[test]
    fn all_spmv_agree(coo in arb_coo()) {
        let x: Vec<f64> = (0..coo.nc).map(|k| ((k * 7 % 5) as f64) - 2.0).collect();
        let want = coo.to_dense().spmv(&x);
        let close = |got: Vec<f64>| {
            got.iter().zip(&want).all(|(a, b)| (a - b).abs() < 1e-9)
        };
        prop_assert!(close(coo.spmv(&x)));
        prop_assert!(close(CsrMatrix::from_coo(&coo).spmv(&x)));
        prop_assert!(close(CscMatrix::from_coo(&coo).spmv(&x)));
        prop_assert!(close(DiaMatrix::from_coo(&coo).spmv(&x)));
        prop_assert!(close(EllMatrix::from_coo(&coo).spmv(&x)));
        prop_assert!(close(BcsrMatrix::from_coo(&coo, 2, 2).spmv(&x)));
    }

    /// Morton comparison is a strict weak ordering consistent with the
    /// encoded codes (checked exhaustively elsewhere; sampled here at
    /// larger coordinates).
    #[test]
    fn morton_cmp_consistent_with_codes(
        a in (0i64..1 << 20, 0i64..1 << 20),
        b in (0i64..1 << 20, 0i64..1 << 20),
    ) {
        use spf_codegen::morton::{morton_cmp, morton_encode};
        let ca = morton_encode(&[a.0, a.1], 21);
        let cb = morton_encode(&[b.0, b.1], 21);
        prop_assert_eq!(morton_cmp(&[a.0, a.1], &[b.0, b.1]), ca.cmp(&cb));
    }
}

/// Arbitrary small order-3 tensor with unique coordinates.
fn arb_coo3() -> impl Strategy<Value = sparse_formats::Coo3Tensor> {
    (2usize..12, 2usize..12, 2usize..12)
        .prop_flat_map(|(d0, d1, d2)| {
            let coords = proptest::collection::btree_set((0..d0, 0..d1, 0..d2), 0..40);
            (Just((d0, d1, d2)), coords)
        })
        .prop_map(|(dims, coords)| {
            let i0: Vec<i64> = coords.iter().map(|&(a, _, _)| a as i64).collect();
            let i1: Vec<i64> = coords.iter().map(|&(_, b, _)| b as i64).collect();
            let i2: Vec<i64> = coords.iter().map(|&(_, _, c)| c as i64).collect();
            let val: Vec<f64> = (0..coords.len()).map(|k| k as f64 + 1.0).collect();
            sparse_formats::Coo3Tensor::from_coords(dims, i0, i1, i2, val).expect("valid")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn hicoo_round_trip_and_ttv(t in arb_coo3(), bits in 1u32..4) {
        use sparse_formats::{HicooTensor, MortonCoo3Tensor};
        let h = HicooTensor::from_coo3(&t, bits);
        h.validate().unwrap();
        prop_assert_eq!(h.to_coo3(), MortonCoo3Tensor::from_coo3(&t).coo);
        let x: Vec<f64> = (0..t.nz).map(|k| (k % 3) as f64).collect();
        prop_assert_eq!(h.ttv_mode2(&x), t.ttv_mode2(&x));
    }

    #[test]
    fn csf_round_trip_and_ttv(t in arb_coo3()) {
        use sparse_formats::CsfTensor;
        let csf = CsfTensor::from_coo3(&t);
        csf.validate().unwrap();
        let mut want = t.clone();
        want.sort_by(|a, b| a.cmp(b));
        prop_assert_eq!(csf.to_coo3(), want);
        let x: Vec<f64> = (0..t.nz).map(|k| (k % 4) as f64 - 1.0).collect();
        prop_assert_eq!(csf.ttv_mode2(&x), t.ttv_mode2(&x));
    }
}
