//! Properties of the descriptor fingerprint (the plan-cache key) and the
//! structural [`FormatKind`] classification: fingerprints are stable
//! across clones, pairwise distinct across the shipped format catalog,
//! and sensitive to structural edits (UF domains, order keys, relations).

use proptest::prelude::*;
use sparse_formats::descriptors as d;
use sparse_formats::{FormatDescriptor, FormatKind};
use spf_ir::order::{Comparator, KeyDim, OrderKey};
use spf_ir::parser::parse_set;

/// Every shipped descriptor, labelled. `dia_executable` is the same
/// format as `dia` with a scan attached, so it is structurally distinct
/// too.
fn catalog() -> Vec<(&'static str, FormatDescriptor)> {
    vec![
        ("coo", d::coo()),
        ("scoo", d::scoo()),
        ("csr", d::csr()),
        ("csc", d::csc()),
        ("dia", d::dia()),
        ("dia_executable", d::dia_executable()),
        ("ell", d::ell()),
        ("mcoo", d::mcoo()),
        ("bcsr", d::bcsr(2, 2)),
        ("coo3", d::coo3()),
        ("scoo3", d::scoo3()),
        ("mcoo3", d::mcoo3()),
    ]
}

#[test]
fn fingerprints_pairwise_distinct_across_catalog() {
    let cat = catalog();
    for (i, (na, a)) in cat.iter().enumerate() {
        for (nb, b) in cat.iter().skip(i + 1) {
            assert_ne!(
                a.fingerprint(),
                b.fingerprint(),
                "{na} and {nb} must not collide"
            );
        }
    }
}

#[test]
fn fingerprint_ignores_display_name() {
    let mut a = d::csr();
    let fp = a.fingerprint();
    a.name = "csr_renamed".into();
    assert_eq!(a.fingerprint(), fp, "renaming a format is not structural");
}

#[test]
fn kind_classifies_every_shipped_descriptor() {
    use FormatKind::*;
    let expected = [
        ("coo", Coo),
        ("scoo", SortedCoo),
        ("csr", Csr),
        ("csc", Csc),
        ("dia", Dia),
        ("dia_executable", Dia),
        ("ell", Ell),
        ("mcoo", MortonCoo),
        ("bcsr", Unsupported),
        ("coo3", Coo3),
        ("scoo3", Coo3),
        ("mcoo3", MortonCoo3),
    ];
    let cat = catalog();
    for ((name, desc), (ename, ekind)) in cat.iter().zip(expected.iter()) {
        assert_eq!(name, ename, "catalog/expectation order");
        assert_eq!(desc.kind(), *ekind, "{name} misclassified");
    }
}

#[test]
fn with_suffix_preserves_kind() {
    for (name, desc) in catalog() {
        assert_eq!(
            desc.with_suffix("_dst").kind(),
            desc.kind(),
            "{name}: suffixing UF names must not change the kind"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fingerprint_stable_across_clones(idx in 0usize..12) {
        let (_, desc) = catalog().swap_remove(idx);
        let copy = desc.clone();
        prop_assert_eq!(desc.fingerprint(), copy.fingerprint());
        // And deterministic across repeated evaluation.
        prop_assert_eq!(desc.fingerprint(), desc.fingerprint());
    }

    #[test]
    fn fingerprint_changes_when_uf_domain_changes(idx in 0usize..12, bound in 1i64..1000) {
        let (_, desc) = catalog().swap_remove(idx);
        let Some(sig) = desc.ufs.iter().next().cloned() else {
            // bcsr-like descriptors always declare UFs; guard anyway.
            return Ok(());
        };
        let mut edited = desc.clone();
        let mut sig = sig;
        sig.domain = parse_set(&format!("{{ [x] : 0 <= x <= {bound} }}")).unwrap();
        prop_assume!(sig.domain != desc.ufs.get(&sig.name).unwrap().domain);
        edited.ufs.insert(sig);
        prop_assert_ne!(desc.fingerprint(), edited.fingerprint());
    }

    #[test]
    fn fingerprint_changes_when_order_changes(idx in 0usize..12) {
        let (_, desc) = catalog().swap_remove(idx);
        let mut edited = desc.clone();
        // Replace the order spec with something no shipped format uses.
        let new_order = OrderKey {
            comparator: Comparator::UserFn("FP_TEST_CMP".into()),
            dims: vec![KeyDim::affine(vec![7; desc.rank], 3)],
        };
        prop_assume!(desc.order.as_ref() != Some(&new_order));
        edited.order = Some(new_order);
        prop_assert_ne!(desc.fingerprint(), edited.fingerprint());
    }

    #[test]
    fn fingerprint_changes_when_monotonicity_dropped(idx in 0usize..12) {
        let (_, desc) = catalog().swap_remove(idx);
        let Some(sig) = desc
            .ufs
            .iter()
            .find(|s| s.monotonicity.is_some())
            .cloned()
        else {
            return Ok(()); // format has no monotonic UF (e.g. COO)
        };
        let mut edited = desc.clone();
        let mut sig = sig;
        sig.monotonicity = None;
        edited.ufs.insert(sig);
        prop_assert_ne!(desc.fingerprint(), edited.fingerprint());
    }
}
