//! Property test for polyhedra scanning: the lowered loop nest visits
//! exactly the integer points of the iteration set, for arbitrary boxes
//! with random extra affine constraints (which the scanner may turn into
//! tighter bounds or guards — either way the visited set must match a
//! brute-force enumeration).

use proptest::prelude::*;
use spf_codegen::ast::{Expr, SlotAlloc, Stmt};
use spf_codegen::interp::{compile, execute};
use spf_codegen::runtime::RtEnv;
use spf_codegen::scan::lower_set;
use spf_ir::constraint::Constraint;
use spf_ir::expr::{LinExpr, VarId};
use spf_ir::formula::{Conjunction, Set};

/// One random extra constraint: `c0*v0 + c1*v1 (+ c2*v2) + k >= 0`.
#[derive(Debug, Clone)]
struct ExtraIneq {
    coeffs: Vec<i64>,
    k: i64,
}

fn arb_space(nvars: usize) -> impl Strategy<Value = (Vec<i64>, Vec<ExtraIneq>)> {
    let bounds = proptest::collection::vec(1i64..8, nvars);
    let extra = proptest::collection::vec(
        (proptest::collection::vec(-2i64..=2, nvars), -6i64..=6)
            .prop_map(|(coeffs, k)| ExtraIneq { coeffs, k }),
        0..3,
    );
    (bounds, extra)
}

fn build_set(bounds: &[i64], extra: &[ExtraIneq]) -> Set {
    let n = bounds.len() as u32;
    let mut conj = Conjunction::new(n);
    for (p, &b) in bounds.iter().enumerate() {
        conj.add(Constraint::ge(LinExpr::var(VarId(p as u32)), LinExpr::zero()));
        conj.add(Constraint::lt(LinExpr::var(VarId(p as u32)), LinExpr::constant(b)));
    }
    for e in extra {
        let mut expr = LinExpr::constant(e.k);
        for (p, &c) in e.coeffs.iter().enumerate() {
            expr.add_assign(&LinExpr::var(VarId(p as u32)).scaled(c));
        }
        conj.add(Constraint::Geq(expr));
    }
    let names = (0..bounds.len()).map(|p| format!("v{p}")).collect();
    let mut s = Set::from_conjunctions(names, vec![conj]);
    s.simplify();
    s
}

/// Brute-force count of integer points satisfying the original
/// constraints.
fn brute_force(bounds: &[i64], extra: &[ExtraIneq]) -> i64 {
    fn rec(bounds: &[i64], extra: &[ExtraIneq], point: &mut Vec<i64>) -> i64 {
        if point.len() == bounds.len() {
            let ok = extra.iter().all(|e| {
                e.k + e
                    .coeffs
                    .iter()
                    .zip(point.iter())
                    .map(|(c, v)| c * v)
                    .sum::<i64>()
                    >= 0
            });
            return i64::from(ok);
        }
        let mut total = 0;
        for v in 0..bounds[point.len()] {
            point.push(v);
            total += rec(bounds, extra, point);
            point.pop();
        }
        total
    }
    rec(bounds, extra, &mut Vec::new())
}

fn scanned_count(set: &Set) -> i64 {
    let mut slots = SlotAlloc::new();
    let stmts = lower_set(set, &mut slots, |_vars| {
        vec![Stmt::UfWrite {
            uf: "count".into(),
            idx: Expr::Const(0),
            value: Expr::add(Expr::uf_read("count", Expr::Const(0)), Expr::Const(1)),
        }]
    })
    .expect("scannable");
    let prog = compile(&stmts, &slots);
    let mut env = RtEnv::new().with_uf("count", vec![0]);
    execute(&prog, &mut env).expect("runs");
    env.ufs["count"][0]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn scan_visits_exactly_the_set_2d((bounds, extra) in arb_space(2)) {
        let set = build_set(&bounds, &extra);
        // Simplification can prove the set empty; brute force must agree.
        let want = brute_force(&bounds, &extra);
        let got = if set.is_empty() { 0 } else { scanned_count(&set) };
        prop_assert_eq!(got, want, "bounds {:?} extra {:?}", bounds, extra);
    }

    #[test]
    fn scan_visits_exactly_the_set_3d((bounds, extra) in arb_space(3)) {
        let set = build_set(&bounds, &extra);
        let want = brute_force(&bounds, &extra);
        let got = if set.is_empty() { 0 } else { scanned_count(&set) };
        prop_assert_eq!(got, want, "bounds {:?} extra {:?}", bounds, extra);
    }
}
