//! # spf-codegen
//!
//! Code generation and execution for the Sparse Polyhedral Framework: the
//! CodeGen+ role in the toolchain of *"Code Synthesis for Sparse Tensor
//! Format Conversion and Optimization"* (CGO 2023).
//!
//! * [`scan`] lowers iteration [`Set`](spf_ir::Set)s — including
//!   UF-bounded loops like `rowptr(i) <= k < rowptr(i+1)` and unsolvable
//!   membership guards like DIA's `off(d) + i = j` — to a loop [`ast`].
//! * [`cemit`] prints the AST as C (the paper's output language).
//! * [`interp`] compiles the AST to a register-resolved program and
//!   executes it in-process against a [`runtime::RtEnv`], making
//!   synthesized inspectors directly benchmarkable.
//! * [`runtime`] provides the environment plus the paper's `OrderedList`
//!   permutation abstraction and [`morton`] ordering.
//!
//! ## Example: scan a CSR iteration space
//!
//! ```
//! use spf_codegen::ast::{Expr, SlotAlloc, Stmt};
//! use spf_codegen::interp::{compile, execute};
//! use spf_codegen::runtime::RtEnv;
//! use spf_codegen::scan::lower_set;
//! use spf_ir::parse_set;
//!
//! let mut space = parse_set(
//!     "{ [i, k, j] : 0 <= i < NR && rowptr(i) <= k < rowptr(i + 1) && j = col(k) }",
//! ).unwrap();
//! space.simplify();
//!
//! let mut slots = SlotAlloc::new();
//! let stmts = lower_set(&space, &mut slots, |vars| {
//!     vec![Stmt::UfMax {
//!         uf: "maxcol".into(),
//!         idx: Expr::Const(0),
//!         value: vars.expr(2), // j
//!     }]
//! }).unwrap();
//!
//! let prog = compile(&stmts, &slots);
//! let mut env = RtEnv::new()
//!     .with_sym("NR", 2)
//!     .with_uf("rowptr", vec![0, 2, 3])
//!     .with_uf("col", vec![4, 7, 1])
//!     .with_uf("maxcol", vec![-1]);
//! execute(&prog, &mut env).unwrap();
//! assert_eq!(env.ufs["maxcol"], vec![7]);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod ast;
pub mod cemit;
pub mod cruntime;
pub mod interp;
pub mod kernels;
pub mod morton;
pub mod runtime;
pub mod scan;
pub mod tile;
pub mod unroll;

pub use ast::{CmpOp, Cond, Expr, Slot, SlotAlloc, Stmt};
pub use cemit::{emit_c99_block, emit_c_block, emit_c_function, Dialect, C_PRELUDE};
pub use cruntime::C_ORDERED_LIST_RUNTIME;
pub use interp::{compile, execute, execute_quiet, ExecError, ExecStats, Program};
pub use morton::{morton_cmp, morton_decode, morton_encode};
pub use runtime::{ListError, ListOrder, OrderedList, RtEnv};
pub use scan::{lower_set, LoweredVars, ScanError};
pub use tile::tile_loops;
pub use unroll::unroll_loops;
