//! Morton (Z-order) encoding and comparison.
//!
//! The paper's MCOO / MCOO3 formats sort nonzeros by the Morton code of
//! their dense coordinates — the bit-interleaving of the coordinate words.
//! Formats like HiCOO and ALTO use this ordering to improve locality for
//! mode-agnostic tensor computations.
//!
//! Two entry points:
//!
//! * [`morton_encode`] materializes the interleaved code (useful up to a
//!   total of 128 bits, i.e. 64 bits per coordinate across 2 dims or 42
//!   bits across 3);
//! * [`morton_cmp`] compares two coordinate tuples in Z-order *without*
//!   materializing codes, using the classic most-significant-differing-bit
//!   trick, so it works for any rank and full 63-bit coordinates.

use std::cmp::Ordering;

/// Returns `true` when the most significant set bit of `x ^ y` is higher
/// than that of any lower-order difference — i.e. `msb(x) < msb(x ^ y)`
/// with `x < y`. This is Chan's `less_msb` predicate.
#[inline]
fn less_msb(x: u64, y: u64) -> bool {
    x < y && x < (x ^ y)
}

/// Compares two coordinate tuples in Morton (Z-curve) order.
///
/// Coordinates must be non-negative; the comparison is exact for values up
/// to `2^63 - 1` and any rank.
///
/// # Panics
/// Panics when the tuples have different lengths or contain negative
/// coordinates (debug builds only for the sign check).
pub fn morton_cmp(a: &[i64], b: &[i64]) -> Ordering {
    assert_eq!(a.len(), b.len(), "morton_cmp rank mismatch");
    // Find the dimension whose coordinate pair differs in the highest bit;
    // the tuple order is decided by that dimension. On msb ties the later
    // dimension wins, matching `morton_encode` which interleaves dimension
    // `d` at bit `b * rank + d` (later dimensions are more significant
    // within each bit group).
    let mut top_dim = 0usize;
    let mut top_xor = 0u64;
    for (d, (&x, &y)) in a.iter().zip(b.iter()).enumerate() {
        debug_assert!(x >= 0 && y >= 0, "morton coordinates must be non-negative");
        let xor = (x as u64) ^ (y as u64);
        if xor != 0 && !less_msb(xor, top_xor) {
            top_dim = d;
            top_xor = xor;
        }
    }
    if top_xor == 0 {
        Ordering::Equal
    } else {
        a[top_dim].cmp(&b[top_dim])
    }
}

/// Interleaves the low `bits` bits of each coordinate into a single Morton
/// code, dimension 0 contributing the least-significant bit of each group.
///
/// `rank * bits` must not exceed 128.
///
/// # Panics
/// Panics when the product of rank and `bits` exceeds 128 or any
/// coordinate does not fit in `bits` bits.
pub fn morton_encode(coords: &[i64], bits: u32) -> u128 {
    let rank = coords.len() as u32;
    assert!(rank * bits <= 128, "morton code would exceed 128 bits");
    let mut code: u128 = 0;
    for (d, &c) in coords.iter().enumerate() {
        assert!(c >= 0, "morton coordinates must be non-negative");
        assert!(
            bits == 64 || (c as u128) < (1u128 << bits),
            "coordinate {c} does not fit in {bits} bits"
        );
        let c = c as u128;
        for b in 0..bits {
            code |= ((c >> b) & 1) << (b * rank + d as u32);
        }
    }
    code
}

/// Decodes a Morton code produced by [`morton_encode`] back into
/// coordinates.
pub fn morton_decode(code: u128, rank: usize, bits: u32) -> Vec<i64> {
    let mut out = vec![0i64; rank];
    for (d, slot) in out.iter_mut().enumerate() {
        let mut c: i64 = 0;
        for b in 0..bits {
            c |= (((code >> (b * rank as u32 + d as u32)) & 1) as i64) << b;
        }
        *slot = c;
    }
    out
}

/// Number of bits needed to Morton-encode coordinates below `extent`.
pub fn bits_for_extent(extent: usize) -> u32 {
    usize::BITS - extent.saturating_sub(1).leading_zeros()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip() {
        for &(i, j) in &[(0i64, 0i64), (1, 0), (0, 1), (5, 9), (1023, 511)] {
            let code = morton_encode(&[i, j], 10);
            assert_eq!(morton_decode(code, 2, 10), vec![i, j]);
        }
    }

    #[test]
    fn cmp_agrees_with_encoded_order_2d() {
        let pts: Vec<[i64; 2]> = (0..16)
            .flat_map(|i| (0..16).map(move |j| [i, j]))
            .collect();
        for a in &pts {
            for b in &pts {
                let ea = morton_encode(a, 8);
                let eb = morton_encode(b, 8);
                assert_eq!(
                    morton_cmp(a, b),
                    ea.cmp(&eb),
                    "disagreement at {a:?} vs {b:?}"
                );
            }
        }
    }

    #[test]
    fn cmp_agrees_with_encoded_order_3d() {
        let pts: Vec<[i64; 3]> = (0..6)
            .flat_map(|i| (0..6).flat_map(move |j| (0..6).map(move |k| [i, j, k])))
            .collect();
        for a in &pts {
            for b in &pts {
                let ea = morton_encode(a, 8);
                let eb = morton_encode(b, 8);
                assert_eq!(morton_cmp(a, b), ea.cmp(&eb));
            }
        }
    }

    #[test]
    fn z_curve_visits_quadrants_in_order() {
        // The 2x2 Z curve is (0,0), (1,0), (0,1), (1,1) when dim 0 holds
        // the low interleaved bit (row = dim 0 varies fastest in the pair).
        let mut pts = vec![[0i64, 0], [0, 1], [1, 0], [1, 1]];
        pts.sort_by(|a, b| morton_cmp(a, b));
        assert_eq!(pts, vec![[0, 0], [1, 0], [0, 1], [1, 1]]);
    }

    #[test]
    fn bits_for_extent_bounds() {
        assert_eq!(bits_for_extent(1), 0);
        assert_eq!(bits_for_extent(2), 1);
        assert_eq!(bits_for_extent(3), 2);
        assert_eq!(bits_for_extent(1024), 10);
        assert_eq!(bits_for_extent(1025), 11);
    }

    #[test]
    fn equal_tuples_compare_equal() {
        assert_eq!(morton_cmp(&[3, 4, 5], &[3, 4, 5]), Ordering::Equal);
    }
}
