//! Polyhedra scanning: lowering an iteration [`Set`] to a loop nest.
//!
//! This is the CodeGen+ role in the paper's toolchain, restricted to the
//! shapes sparse format descriptors produce:
//!
//! * a tuple variable *defined by an equality* over earlier variables
//!   (e.g. `j = col(k)`) lowers to a `let` binding;
//! * a variable with unit-coefficient lower/upper bounds over earlier
//!   variables (e.g. `rowptr(i) <= k < rowptr(i+1)`) lowers to a `for`
//!   loop, folding multiple bounds with max/min;
//! * every remaining constraint (e.g. the DIA diagonal-membership
//!   equation `off(d) + i = j`, where `d` cannot be solved) lowers to a
//!   guard `if` at the innermost point — which is exactly the linear
//!   search the paper describes for COO→DIA copy code.
//!
//! Unions of conjunctions lower to a sequence of independent nests.

use std::fmt;

use spf_ir::constraint::Constraint;
use spf_ir::expr::{Atom, LinExpr, VarId};
use spf_ir::formula::{Conjunction, Set};

use crate::ast::{CmpOp, Cond, Expr, Slot, SlotAlloc, Stmt};

/// Errors raised while lowering a set to loops.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScanError {
    /// A tuple variable has neither a defining equality nor usable bounds.
    NoBounds {
        /// The variable's name.
        var: String,
    },
    /// The conjunction still has existential variables after
    /// simplification; iteration spaces must be existential-free.
    LeftoverExistential {
        /// The existential's name.
        var: String,
    },
}

impl fmt::Display for ScanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScanError::NoBounds { var } => {
                write!(f, "tuple variable `{var}` has no usable bounds or definition")
            }
            ScanError::LeftoverExistential { var } => {
                write!(f, "iteration space still has existential `{var}`")
            }
        }
    }
}

impl std::error::Error for ScanError {}

/// The loop variables of one lowered conjunction, in tuple order.
#[derive(Debug, Clone)]
pub struct LoweredVars {
    /// `(name, slot)` per tuple position.
    pub vars: Vec<(String, Slot)>,
}

impl LoweredVars {
    /// Expression reading tuple position `p`.
    pub fn expr(&self, p: usize) -> Expr {
        let (name, slot) = &self.vars[p];
        Expr::Var(name.clone(), *slot)
    }

    /// Slot of tuple position `p`.
    pub fn slot(&self, p: usize) -> Slot {
        self.vars[p].1
    }
}

/// Converts a linear expression to an AST expression using `vmap` for
/// variables.
pub fn lin_to_expr(
    e: &LinExpr,
    vmap: &dyn Fn(VarId) -> Expr,
) -> Result<Expr, ScanError> {
    let mut acc: Option<Expr> = if e.constant != 0 {
        Some(Expr::Const(e.constant))
    } else {
        None
    };
    for (c, atom) in &e.terms {
        let base = match atom {
            Atom::Var(v) => vmap(*v),
            Atom::Sym(s) => Expr::Sym(s.clone()),
            Atom::Prod(fs) => {
                let mut acc: Option<Expr> = None;
                for a in fs {
                    let fe = lin_to_expr(&spf_ir::LinExpr::term(1, a.clone()), vmap)?;
                    acc = Some(match acc {
                        None => fe,
                        Some(x) => Expr::mul(x, fe),
                    });
                }
                acc.unwrap_or(Expr::Const(1))
            }
            Atom::Uf(u) => {
                if u.args.len() == 1 {
                    Expr::uf_read(u.name.clone(), lin_to_expr(&u.args[0], vmap)?)
                } else {
                    // By convention a multi-argument UF is a rank lookup in
                    // an OrderedList — the permutation `P(i, j)` of §3.2.
                    Expr::ListRank {
                        list: u.name.clone(),
                        args: u
                            .args
                            .iter()
                            .map(|a| lin_to_expr(a, vmap))
                            .collect::<Result<Vec<_>, _>>()?,
                    }
                }
            }
        };
        let term = match *c {
            1 => base,
            -1 => {
                // Handled below through Sub when accumulating.
                base
            }
            c => Expr::mul(Expr::Const(c.abs()), base),
        };
        acc = Some(match (acc, *c < 0) {
            (None, false) => term,
            (None, true) => Expr::sub(Expr::Const(0), term),
            (Some(a), false) => Expr::add(a, term),
            (Some(a), true) => Expr::sub(a, term),
        });
    }
    Ok(acc.unwrap_or(Expr::Const(0)))
}

/// Returns the variables mentioned by `e` (top level and inside UF args).
fn vars_of(e: &LinExpr) -> Vec<VarId> {
    let mut out = Vec::new();
    e.collect_vars(&mut out);
    out.sort();
    out.dedup();
    out
}

struct ConjScan<'a> {
    conj: &'a Conjunction,
    used: Vec<bool>,
    lowered: LoweredVars,
}

impl<'a> ConjScan<'a> {
    /// Finds an equality defining tuple var `p` strictly from variables
    /// `< p`: returns the solved expression.
    fn defining_equality(&mut self, p: u32) -> Result<Option<LinExpr>, ScanError> {
        let v = VarId(p);
        for (idx, c) in self.conj.constraints.iter().enumerate() {
            if self.used[idx] {
                continue;
            }
            let Constraint::Eq(e) = c else { continue };
            let coeff = e.coeff_of_var(v);
            // Non-unit coefficients cannot define the variable exactly;
            // the constraint stays behind as a guard.
            if coeff.abs() != 1 || e.var_inside_uf(v) {
                continue;
            }
            let mut rest = e.clone();
            rest.terms.retain(|(_, a)| !matches!(a, Atom::Var(w) if *w == v));
            let solved = rest.scaled(-coeff);
            if vars_of(&solved).iter().all(|w| w.0 < p) {
                self.used[idx] = true;
                return Ok(Some(solved));
            }
        }
        Ok(None)
    }

    /// Collects loop bounds for tuple var `p` from constraints over
    /// earlier variables. Returns `(lowers, uppers_exclusive)`.
    fn bounds(&mut self, p: u32) -> Result<(Vec<LinExpr>, Vec<LinExpr>), ScanError> {
        let v = VarId(p);
        let mut lowers = Vec::new();
        let mut uppers = Vec::new();
        for (idx, c) in self.conj.constraints.iter().enumerate() {
            if self.used[idx] {
                continue;
            }
            let Constraint::Geq(e) = c else { continue };
            let coeff = e.coeff_of_var(v);
            // Non-unit coefficients do not make exact integer loop
            // bounds; such constraints become guards instead.
            if coeff.abs() != 1 || e.var_inside_uf(v) {
                continue;
            }
            let mut rest = e.clone();
            rest.terms.retain(|(_, a)| !matches!(a, Atom::Var(w) if *w == v));
            if !vars_of(&rest).iter().all(|w| w.0 < p) {
                continue; // involves later vars; stays as a guard
            }
            if coeff > 0 {
                // v + rest >= 0  =>  v >= -rest
                lowers.push(rest.scaled(-1));
                self.used[idx] = true;
            } else {
                // -v + rest >= 0  =>  v <= rest  =>  v < rest + 1
                uppers.push(rest.add(&LinExpr::constant(1)));
                self.used[idx] = true;
            }
        }
        Ok((lowers, uppers))
    }
}

/// Lowers `set` to a statement list, invoking `body` once per conjunction
/// to produce the innermost statements.
///
/// # Errors
/// Returns a [`ScanError`] when the set's shape is outside the supported
/// fragment (see module docs).
pub fn lower_set(
    set: &Set,
    slots: &mut SlotAlloc,
    mut body: impl FnMut(&LoweredVars) -> Vec<Stmt>,
) -> Result<Vec<Stmt>, ScanError> {
    let mut out = Vec::new();
    for conj in set.conjunctions() {
        if let Some(name) = conj.exists().first() {
            return Err(ScanError::LeftoverExistential { var: name.clone() });
        }
        let names: Vec<String> = set.tuple().to_vec();
        let mut scan = ConjScan {
            conj,
            used: vec![false; conj.constraints.len()],
            lowered: LoweredVars { vars: Vec::new() },
        };
        // Allocate slots for every tuple variable up front so the variable
        // map is total.
        for name in &names {
            let slot = slots.alloc(name.clone());
            scan.lowered.vars.push((name.clone(), slot));
        }
        let lowered = scan.lowered.clone();
        let vmap = |v: VarId| -> Expr {
            let (name, slot) = &lowered.vars[v.index()];
            Expr::Var(name.clone(), *slot)
        };

        // Plan each tuple position: Let or For.
        enum Level {
            Let(Expr),
            For { lo: Expr, hi: Expr },
        }
        let mut levels: Vec<Level> = Vec::new();
        for p in 0..set.arity() {
            if let Some(def) = scan.defining_equality(p)? {
                levels.push(Level::Let(lin_to_expr(&def, &vmap)?));
                continue;
            }
            let (lowers, uppers) = scan.bounds(p)?;
            if lowers.is_empty() || uppers.is_empty() {
                return Err(ScanError::NoBounds { var: names[p as usize].clone() });
            }
            let lo = lowers
                .iter()
                .map(|e| lin_to_expr(e, &vmap))
                .collect::<Result<Vec<_>, _>>()?
                .into_iter()
                .reduce(Expr::max)
                .expect("non-empty");
            let hi = uppers
                .iter()
                .map(|e| lin_to_expr(e, &vmap))
                .collect::<Result<Vec<_>, _>>()?
                .into_iter()
                .reduce(Expr::min)
                .expect("non-empty");
            levels.push(Level::For { lo, hi });
        }

        // Remaining constraints become guards, each placed as soon as its
        // last-mentioned tuple variable is bound (a guard evaluated any
        // later could observe partially-defined state — e.g. a rank
        // lookup on an ELL padding slot — and any earlier would read
        // unbound variables).
        let arity = set.arity() as usize;
        let mut guards_at: Vec<Vec<(Expr, CmpOp, Expr)>> = vec![Vec::new(); arity];
        let mut free_guards: Vec<(Expr, CmpOp, Expr)> = Vec::new();
        for (idx, c) in conj.constraints.iter().enumerate() {
            if scan.used[idx] {
                continue;
            }
            let (op, e) = match c {
                Constraint::Eq(e) => (CmpOp::Eq, e),
                Constraint::Geq(e) => (CmpOp::Ge, e),
            };
            let clause = (lin_to_expr(e, &vmap)?, op, Expr::Const(0));
            match vars_of(e).into_iter().map(|v| v.index()).max() {
                Some(p) => guards_at[p].push(clause),
                None => free_guards.push(clause),
            }
        }

        // Assemble inside-out: at each tuple position, first wrap the
        // guards that become evaluable there, then the binding itself.
        let mut inner: Vec<Stmt> = body(&lowered);
        for (p, level) in levels.into_iter().enumerate().rev() {
            let clauses = std::mem::take(&mut guards_at[p]);
            if !clauses.is_empty() {
                inner = vec![Stmt::If { cond: Cond { clauses }, body: inner }];
            }
            let (name, slot) = lowered.vars[p].clone();
            match level {
                Level::Let(value) => {
                    inner.insert(0, Stmt::Let { var: name, slot, value });
                }
                Level::For { lo, hi } => {
                    inner = vec![Stmt::For { var: name, slot, lo, hi, body: inner }];
                }
            }
        }
        if !free_guards.is_empty() {
            inner = vec![Stmt::If { cond: Cond { clauses: free_guards }, body: inner }];
        }
        out.extend(inner);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{compile, execute};
    use crate::runtime::RtEnv;
    use spf_ir::parse_set;

    /// Lower and execute, recording visited tuples into `visit` arrays.
    fn run_and_collect(
        src: &str,
        env: &mut RtEnv<'_>,
        record: usize,
    ) -> Vec<Vec<i64>> {
        let mut set = parse_set(src).unwrap();
        set.simplify();
        let mut slots = SlotAlloc::new();
        let counter = Expr::uf_read("cnt", Expr::Const(0));
        let stmts = lower_set(&set, &mut slots, |vars| {
            let mut body = Vec::new();
            for p in 0..record {
                body.push(Stmt::UfWrite {
                    uf: format!("visit{p}"),
                    idx: counter.clone(),
                    value: vars.expr(p),
                });
            }
            body.push(Stmt::UfWrite {
                uf: "cnt".into(),
                idx: Expr::Const(0),
                value: Expr::add(counter.clone(), Expr::Const(1)),
            });
            body
        })
        .unwrap();
        let cap = 4096;
        env.ufs.insert("cnt".into(), vec![0].into());
        for p in 0..record {
            env.ufs.insert(format!("visit{p}"), vec![-1; cap].into());
        }
        let prog = compile(&stmts, &slots);
        execute(&prog, env).unwrap();
        let n = env.ufs["cnt"][0] as usize;
        (0..record)
            .map(|p| env.ufs[&format!("visit{p}")][..n].to_vec())
            .collect()
    }

    #[test]
    fn rectangle_scans_row_major() {
        let mut env = RtEnv::new().with_sym("N", 2).with_sym("M", 3);
        let v = run_and_collect("{ [i, j] : 0 <= i < N && 0 <= j < M }", &mut env, 2);
        assert_eq!(v[0], vec![0, 0, 0, 1, 1, 1]);
        assert_eq!(v[1], vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn csr_space_scans_with_uf_bounds_and_let() {
        // 2x? CSR with rows [0..2) and [2..3).
        let mut env = RtEnv::new()
            .with_sym("N", 2)
            .with_uf("rowptr", vec![0, 2, 3])
            .with_uf("col", vec![4, 7, 1]);
        let v = run_and_collect(
            "{ [i, k, j] : 0 <= i < N && rowptr(i) <= k < rowptr(i + 1) && j = col(k) }",
            &mut env,
            3,
        );
        assert_eq!(v[0], vec![0, 0, 1]);
        assert_eq!(v[1], vec![0, 1, 2]);
        assert_eq!(v[2], vec![4, 7, 1]);
    }

    #[test]
    fn guard_emitted_for_unsolvable_equation() {
        // DIA-style membership: iterate d, keep only off(d) = j - i.
        let mut env = RtEnv::new()
            .with_sym("ND", 3)
            .with_uf("off", vec![-1, 0, 2]);
        // Fixed i=1, j=3: only d with off(d)=2 (d=2) survives.
        let v = run_and_collect(
            "{ [d] : 0 <= d < ND && off(d) = 2 }",
            &mut env,
            1,
        );
        assert_eq!(v[0], vec![2]);
    }

    #[test]
    fn triangular_space() {
        let mut env = RtEnv::new().with_sym("N", 4);
        let v = run_and_collect("{ [i, j] : 0 <= i < N && 0 <= j <= i }", &mut env, 2);
        assert_eq!(v[0], vec![0, 1, 1, 2, 2, 2, 3, 3, 3, 3]);
        assert_eq!(v[1], vec![0, 0, 1, 0, 1, 2, 0, 1, 2, 3]);
    }

    #[test]
    fn union_lowers_to_sequence() {
        let mut env = RtEnv::new();
        let v = run_and_collect(
            "{ [i] : 0 <= i < 2 } union { [i] : 5 <= i < 7 }",
            &mut env,
            1,
        );
        assert_eq!(v[0], vec![0, 1, 5, 6]);
    }

    #[test]
    fn missing_bounds_is_an_error() {
        let mut set = parse_set("{ [i] : i >= 0 }").unwrap();
        set.simplify();
        let mut slots = SlotAlloc::new();
        let err = lower_set(&set, &mut slots, |_| Vec::new()).unwrap_err();
        assert_eq!(err, ScanError::NoBounds { var: "i".into() });
    }

    #[test]
    fn max_of_two_lower_bounds() {
        let mut env = RtEnv::new().with_sym("N", 10);
        let v = run_and_collect(
            "{ [i, j] : 0 <= i < 3 && 0 <= j < 5 && i <= j }",
            &mut env,
            2,
        );
        // j starts at max(0, i).
        assert_eq!(v[0], vec![0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2]);
        assert_eq!(v[1], vec![0, 1, 2, 3, 4, 1, 2, 3, 4, 2, 3, 4]);
    }
}
