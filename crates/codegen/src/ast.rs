//! The loop AST produced by polyhedra scanning and executed by the
//! interpreter.
//!
//! Nodes carry both a human-readable variable name (used by the C emitter)
//! and a register *slot* (used by the interpreter), assigned by a
//! [`SlotAlloc`]. Statements are the operations the synthesis algorithm
//! needs to emit: index-array reads/writes, min/max updates used for
//! Case 2/3 constraints, `OrderedList` operations for reordering
//! quantifiers, data copies, and allocations.

use std::fmt;

/// Register slot in the interpreter's variable file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Slot(pub u32);

/// Allocates register slots for loop variables, symbols, and temporaries.
#[derive(Debug, Default, Clone)]
pub struct SlotAlloc {
    names: Vec<String>,
}

impl SlotAlloc {
    /// Creates an empty allocator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a new slot for `name` (names may repeat; slots are
    /// unique).
    pub fn alloc(&mut self, name: impl Into<String>) -> Slot {
        let s = Slot(self.names.len() as u32);
        self.names.push(name.into());
        s
    }

    /// Returns the slot previously allocated for `name`, if any (latest
    /// allocation wins).
    pub fn lookup(&self, name: &str) -> Option<Slot> {
        self.names
            .iter()
            .rposition(|n| n == name)
            .map(|i| Slot(i as u32))
    }

    /// Name of a slot.
    pub fn name(&self, s: Slot) -> &str {
        &self.names[s.0 as usize]
    }

    /// Number of allocated slots.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Returns `true` when no slots are allocated.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

/// Scalar integer expressions evaluated by the interpreter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// Integer literal.
    Const(i64),
    /// Loop variable / temporary, by name and slot.
    Var(String, Slot),
    /// Symbolic constant (e.g. `NNZ`), resolved against the runtime
    /// environment; may be updated during execution via [`Stmt::SymSet`].
    Sym(String),
    /// Read of an index array: `uf[idx]`.
    UfRead {
        /// Array name.
        uf: String,
        /// Index expression.
        idx: Box<Expr>,
    },
    /// Rank lookup in an [`OrderedList`](crate::runtime::OrderedList):
    /// `P.rank(args...)` — the paper's permutation retrieval.
    ListRank {
        /// List name.
        list: String,
        /// Key expressions.
        args: Vec<Expr>,
    },
    /// Number of (unique) entries in an ordered list.
    ListLen(String),
    /// `a + b`.
    Add(Box<Expr>, Box<Expr>),
    /// `a - b`.
    Sub(Box<Expr>, Box<Expr>),
    /// `a * b`.
    Mul(Box<Expr>, Box<Expr>),
    /// `a / b` (Euclidean floor division; used by loop unrolling and
    /// tiling transforms).
    Div(Box<Expr>, Box<Expr>),
    /// `min(a, b)`.
    Min(Box<Expr>, Box<Expr>),
    /// `max(a, b)`.
    Max(Box<Expr>, Box<Expr>),
}

// The `add`/`sub`/`mul` constructors build AST nodes rather than perform
// arithmetic; operator traits would be misleading here.
#[allow(clippy::should_implement_trait)]
impl Expr {
    /// Convenience constructor for binary nodes.
    pub fn add(a: Expr, b: Expr) -> Expr {
        Expr::Add(Box::new(a), Box::new(b))
    }

    /// `a - b`.
    pub fn sub(a: Expr, b: Expr) -> Expr {
        Expr::Sub(Box::new(a), Box::new(b))
    }

    /// `a * b`.
    pub fn mul(a: Expr, b: Expr) -> Expr {
        Expr::Mul(Box::new(a), Box::new(b))
    }

    /// `a / b` (floor division).
    pub fn div(a: Expr, b: Expr) -> Expr {
        Expr::Div(Box::new(a), Box::new(b))
    }

    /// `min(a, b)`.
    pub fn min(a: Expr, b: Expr) -> Expr {
        Expr::Min(Box::new(a), Box::new(b))
    }

    /// `max(a, b)`.
    pub fn max(a: Expr, b: Expr) -> Expr {
        Expr::Max(Box::new(a), Box::new(b))
    }

    /// Read `uf[idx]`.
    pub fn uf_read(uf: impl Into<String>, idx: Expr) -> Expr {
        Expr::UfRead { uf: uf.into(), idx: Box::new(idx) }
    }
}

/// Comparison operators for guards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Evaluates the comparison on two integers.
    #[inline]
    pub fn eval(self, a: i64, b: i64) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }

    /// The C spelling.
    pub fn c_str(self) -> &'static str {
        match self {
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

/// A guard condition: conjunction of comparisons.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cond {
    /// The conjuncts; the guard holds when all comparisons do.
    pub clauses: Vec<(Expr, CmpOp, Expr)>,
}

impl Cond {
    /// Single-comparison guard.
    pub fn cmp(lhs: Expr, op: CmpOp, rhs: Expr) -> Self {
        Cond { clauses: vec![(lhs, op, rhs)] }
    }
}

/// Statements of the generated inspector programs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// `for (var = lo; var < hi; var++) body`.
    For {
        /// Loop variable name (for display).
        var: String,
        /// Loop variable slot.
        slot: Slot,
        /// Inclusive lower bound.
        lo: Expr,
        /// Exclusive upper bound.
        hi: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `var = value;` — a scalar binding such as `j = col[k]`.
    Let {
        /// Variable name.
        var: String,
        /// Variable slot.
        slot: Slot,
        /// Bound value.
        value: Expr,
    },
    /// `if (cond) body`.
    If {
        /// Guard condition.
        cond: Cond,
        /// Guarded statements.
        body: Vec<Stmt>,
    },
    /// Binary search for `var` in `[lo, hi)` such that
    /// `key(var) == target`, executing `body` with `var` bound on success.
    /// Requires `key` to be non-decreasing in `var` — guaranteed by a
    /// monotonic universal quantifier (the paper's Figure 3 optimization).
    FindBinary {
        /// Search variable name.
        var: String,
        /// Search variable slot.
        slot: Slot,
        /// Inclusive lower bound of the search range.
        lo: Expr,
        /// Exclusive upper bound of the search range.
        hi: Expr,
        /// Monotone key; must mention `var`.
        key: Box<Expr>,
        /// Value to find.
        target: Box<Expr>,
        /// Statements executed when the key is found.
        body: Vec<Stmt>,
    },
    /// `uf[idx] = value;`
    UfWrite {
        /// Array name.
        uf: String,
        /// Index expression.
        idx: Expr,
        /// Stored value.
        value: Expr,
    },
    /// `uf[idx] = min(uf[idx], value);` — Case 2 of the synthesis
    /// algorithm.
    UfMin {
        /// Array name.
        uf: String,
        /// Index expression.
        idx: Expr,
        /// Candidate value.
        value: Expr,
    },
    /// `uf[idx] = max(uf[idx], value);` — Case 3 of the synthesis
    /// algorithm.
    UfMax {
        /// Array name.
        uf: String,
        /// Index expression.
        idx: Expr,
        /// Candidate value.
        value: Expr,
    },
    /// Allocate (or reallocate) integer array `uf` with `size` elements
    /// initialized to `init`.
    UfAlloc {
        /// Array name.
        uf: String,
        /// Element count.
        size: Expr,
        /// Fill value.
        init: Expr,
    },
    /// Allocate (or reallocate) data array `arr` with `size` zeros.
    DataAlloc {
        /// Array name.
        arr: String,
        /// Element count.
        size: Expr,
    },
    /// `list.insert(args...)` — the paper's `OrderedList` insertion.
    ListInsert {
        /// List name.
        list: String,
        /// Key expressions.
        args: Vec<Expr>,
    },
    /// Finalize an ordered list: sort by its comparator (deduplicating
    /// when the list was declared unique) and build the rank index.
    ListFinalize {
        /// List name.
        list: String,
    },
    /// Materialize column `dim` of the finalized list into array `uf`
    /// (e.g. DIA's sorted `off` array).
    ListToUf {
        /// List name.
        list: String,
        /// Key column to copy.
        dim: usize,
        /// Destination array.
        uf: String,
    },
    /// `sym = value;` — set a symbolic constant at run time
    /// (e.g. `ND = off_list.len()`).
    SymSet {
        /// Symbol name.
        sym: String,
        /// New value.
        value: Expr,
    },
    /// `y[y_idx] += a[a_idx] * x[x_idx];` on the f64 data arrays — the
    /// multiply-accumulate used by generated *executors* such as SpMV.
    DataAxpy {
        /// Accumulator array.
        y: String,
        /// Accumulator index.
        y_idx: Expr,
        /// Matrix data array.
        a: String,
        /// Matrix data index.
        a_idx: Expr,
        /// Input vector array.
        x: String,
        /// Input vector index.
        x_idx: Expr,
    },
    /// `dst[dst_idx] = src[src_idx];` on the f64 data arrays — the
    /// synthesis copy operation.
    Copy {
        /// Destination data space.
        dst: String,
        /// Destination index.
        dst_idx: Expr,
        /// Source data space.
        src: String,
        /// Source index.
        src_idx: Expr,
    },
    /// A comment carried through to the C emitter.
    Comment(String),
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Const(c) => write!(f, "{c}"),
            Expr::Var(name, _) => write!(f, "{name}"),
            Expr::Sym(s) => write!(f, "{s}"),
            Expr::UfRead { uf, idx } => write!(f, "{uf}[{idx}]"),
            Expr::ListRank { list, args } => {
                write!(f, "{list}.rank(")?;
                for (k, a) in args.iter().enumerate() {
                    if k > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Expr::ListLen(l) => write!(f, "{l}.size()"),
            Expr::Add(a, b) => write!(f, "({a} + {b})"),
            Expr::Sub(a, b) => write!(f, "({a} - {b})"),
            Expr::Mul(a, b) => write!(f, "({a} * {b})"),
            Expr::Div(a, b) => write!(f, "({a} / {b})"),
            Expr::Min(a, b) => write!(f, "MIN({a}, {b})"),
            Expr::Max(a, b) => write!(f, "MAX({a}, {b})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_alloc_latest_wins() {
        let mut a = SlotAlloc::new();
        let s0 = a.alloc("i");
        let s1 = a.alloc("j");
        let s2 = a.alloc("i"); // shadowing
        assert_eq!(a.lookup("i"), Some(s2));
        assert_eq!(a.lookup("j"), Some(s1));
        assert_eq!(a.name(s0), "i");
        assert_eq!(a.len(), 3);
        assert!(a.lookup("zz").is_none());
    }

    #[test]
    fn expr_display() {
        let mut a = SlotAlloc::new();
        let i = a.alloc("i");
        let e = Expr::add(
            Expr::uf_read("rowptr", Expr::Var("i".into(), i)),
            Expr::Const(1),
        );
        assert_eq!(e.to_string(), "(rowptr[i] + 1)");
        let m = Expr::min(Expr::Sym("NNZ".into()), Expr::Const(0));
        assert_eq!(m.to_string(), "MIN(NNZ, 0)");
    }

    #[test]
    fn cmp_op_eval() {
        assert!(CmpOp::Eq.eval(3, 3));
        assert!(CmpOp::Ne.eval(3, 4));
        assert!(CmpOp::Lt.eval(3, 4));
        assert!(CmpOp::Le.eval(3, 3));
        assert!(CmpOp::Gt.eval(4, 3));
        assert!(CmpOp::Ge.eval(4, 4));
        assert!(!CmpOp::Lt.eval(4, 3));
    }
}
