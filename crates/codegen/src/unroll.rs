//! Loop unrolling — one of the classic SPF transformations the paper
//! lists ("SPF supports many loop transformations including fusion,
//! skewing, unrolling, tiling, and others").
//!
//! Unrolling happens after scanning, on the loop AST: a `for` over
//! `[lo, hi)` splits into a main loop of `(hi - lo) / F` unrolled steps
//! plus an epilogue for the remainder. Each unrolled step rebinds the
//! original loop variable's register with a `let`, so body statements
//! run unchanged.

use crate::ast::{Expr, Slot, SlotAlloc, Stmt};

/// Unrolls by `factor` every `for` loop (recursively) whose variable is
/// named `var`. Returns the number of loops rewritten.
///
/// # Panics
/// Panics when `factor < 2`.
pub fn unroll_loops(
    stmts: &mut Vec<Stmt>,
    var: &str,
    factor: i64,
    slots: &mut SlotAlloc,
) -> usize {
    assert!(factor >= 2, "unroll factor must be at least 2");
    let mut count = 0;
    let mut out = Vec::with_capacity(stmts.len());
    for s in stmts.drain(..) {
        out.extend(unroll_stmt(s, var, factor, slots, &mut count));
    }
    *stmts = out;
    count
}

fn unroll_stmt(
    s: Stmt,
    var: &str,
    factor: i64,
    slots: &mut SlotAlloc,
    count: &mut usize,
) -> Vec<Stmt> {
    match s {
        Stmt::For { var: v, slot, lo, hi, mut body } if v == var => {
            *count += 1;
            // Recurse first so nested same-named loops (shadowing) also
            // unroll.
            let mut inner = Vec::new();
            for b in body.drain(..) {
                inner.extend(unroll_stmt(b, var, factor, slots, count));
            }
            build_unrolled(&v, slot, lo, hi, inner, factor, slots)
        }
        Stmt::For { var: v, slot, lo, hi, mut body } => {
            let mut inner = Vec::new();
            for b in body.drain(..) {
                inner.extend(unroll_stmt(b, var, factor, slots, count));
            }
            vec![Stmt::For { var: v, slot, lo, hi, body: inner }]
        }
        Stmt::If { cond, mut body } => {
            let mut inner = Vec::new();
            for b in body.drain(..) {
                inner.extend(unroll_stmt(b, var, factor, slots, count));
            }
            vec![Stmt::If { cond, body: inner }]
        }
        other => vec![other],
    }
}

fn build_unrolled(
    var: &str,
    slot: Slot,
    lo: Expr,
    hi: Expr,
    body: Vec<Stmt>,
    factor: i64,
    slots: &mut SlotAlloc,
) -> Vec<Stmt> {
    // Hoist the bounds so they evaluate once.
    let lo_slot = slots.alloc(format!("{var}_lo"));
    let hi_slot = slots.alloc(format!("{var}_hi"));
    let steps_slot = slots.alloc(format!("{var}_steps"));
    let u_slot = slots.alloc(format!("{var}_u"));
    let lo_v = Expr::Var(format!("{var}_lo"), lo_slot);
    let hi_v = Expr::Var(format!("{var}_hi"), hi_slot);
    let steps_v = Expr::Var(format!("{var}_steps"), steps_slot);
    let u_v = Expr::Var(format!("{var}_u"), u_slot);

    let mut main_body = Vec::with_capacity(body.len() * factor as usize + factor as usize);
    for k in 0..factor {
        // var = lo + factor*u + k, rebinding the original slot so the
        // body is reused verbatim.
        main_body.push(Stmt::Let {
            var: var.to_string(),
            slot,
            value: Expr::add(
                Expr::add(lo_v.clone(), Expr::mul(Expr::Const(factor), u_v.clone())),
                Expr::Const(k),
            ),
        });
        main_body.extend(body.clone());
    }

    vec![
        Stmt::Let { var: format!("{var}_lo"), slot: lo_slot, value: lo },
        Stmt::Let { var: format!("{var}_hi"), slot: hi_slot, value: hi },
        Stmt::Let {
            var: format!("{var}_steps"),
            slot: steps_slot,
            value: Expr::div(
                Expr::max(Expr::sub(hi_v.clone(), lo_v.clone()), Expr::Const(0)),
                Expr::Const(factor),
            ),
        },
        Stmt::For {
            var: format!("{var}_u"),
            slot: u_slot,
            lo: Expr::Const(0),
            hi: steps_v.clone(),
            body: main_body,
        },
        // Epilogue: the remaining `(hi - lo) mod factor` iterations.
        Stmt::For {
            var: var.to_string(),
            slot,
            lo: Expr::add(lo_v, Expr::mul(Expr::Const(factor), steps_v)),
            hi: hi_v,
            body,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{compile, execute};
    use crate::runtime::RtEnv;

    /// Builds `for n in 0..N { acc[0] += n }` and returns (stmts, slots).
    fn sum_loop() -> (Vec<Stmt>, SlotAlloc) {
        let mut slots = SlotAlloc::new();
        let n = slots.alloc("n");
        let stmts = vec![
            Stmt::UfAlloc { uf: "acc".into(), size: Expr::Const(1), init: Expr::Const(0) },
            Stmt::For {
                var: "n".into(),
                slot: n,
                lo: Expr::Const(0),
                hi: Expr::Sym("N".into()),
                body: vec![Stmt::UfWrite {
                    uf: "acc".into(),
                    idx: Expr::Const(0),
                    value: Expr::add(
                        Expr::uf_read("acc", Expr::Const(0)),
                        Expr::Var("n".into(), n),
                    ),
                }],
            },
        ];
        (stmts, slots)
    }

    #[test]
    fn unrolled_loop_computes_the_same_sum() {
        for total in [0i64, 1, 2, 3, 7, 8, 9, 100] {
            for factor in [2i64, 3, 4] {
                let (mut stmts, mut slots) = sum_loop();
                let n = unroll_loops(&mut stmts, "n", factor, &mut slots);
                assert_eq!(n, 1);
                let prog = compile(&stmts, &slots);
                let mut env = RtEnv::new().with_sym("N", total);
                execute(&prog, &mut env).unwrap();
                assert_eq!(
                    env.ufs["acc"],
                    vec![total * (total - 1).max(0) / 2],
                    "total {total} factor {factor}"
                );
            }
        }
    }

    #[test]
    fn unroll_reduces_loop_iterations() {
        let (mut stmts, mut slots) = sum_loop();
        unroll_loops(&mut stmts, "n", 4, &mut slots);
        let prog = compile(&stmts, &slots);
        let mut env = RtEnv::new().with_sym("N", 100);
        let stats = execute(&prog, &mut env).unwrap();
        // 25 unrolled steps + 0 epilogue instead of 100.
        assert_eq!(stats.loop_iterations, 25);
    }

    #[test]
    fn non_matching_loops_untouched() {
        let (mut stmts, mut slots) = sum_loop();
        assert_eq!(unroll_loops(&mut stmts, "zzz", 2, &mut slots), 0);
        assert_eq!(stmts.len(), 2);
    }

    #[test]
    fn emitted_c_shows_epilogue() {
        let (mut stmts, mut slots) = sum_loop();
        unroll_loops(&mut stmts, "n", 2, &mut slots);
        let c = crate::cemit::emit_c_block(&stmts);
        assert!(c.contains("n_steps"), "{c}");
        // Two unrolled body copies in the main loop plus the epilogue.
        assert_eq!(c.matches("acc[0] = (acc[0] + n);").count(), 3, "{c}");
    }
}
