//! The C implementation of the `OrderedList` runtime abstraction,
//! embedded as a string so emitted inspectors form complete, compilable
//! translation units (see [`crate::cemit`]'s C99 dialect).
//!
//! The paper introduces `OrderedList` as the runtime class backing
//! reordering universal quantifiers; this is its portable C99 rendering:
//! insert-then-sort with rank retrieval by binary search over the sorted
//! keys (keys are unique for the formats in scope).

/// C99 `OrderedList` implementation: `ol_init`, `ol_insert`,
/// `ol_finalize`, `ol_rank`, `ol_size`, `ol_key`, plus the LEX and MORTON
/// comparators. User-defined comparators are `extern` functions with the
/// `ol_cmp_fn` signature, named after the universal quantifier's
/// function.
pub const C_ORDERED_LIST_RUNTIME: &str = r#"
/* ---- OrderedList runtime (see paper section 3.2) ------------------- */
typedef int (*ol_cmp_fn)(const int *a, const int *b, int width);

static int ol_cmp_lex(const int *a, const int *b, int width) {
    for (int d = 0; d < width; d++) {
        if (a[d] != b[d]) return a[d] < b[d] ? -1 : 1;
    }
    return 0;
}

static int ol_less_msb(unsigned x, unsigned y) { return x < y && x < (x ^ y); }

static int ol_cmp_morton(const int *a, const int *b, int width) {
    int top = 0;
    unsigned top_xor = 0;
    for (int d = 0; d < width; d++) {
        unsigned x = (unsigned)a[d] ^ (unsigned)b[d];
        if (x != 0 && !ol_less_msb(x, top_xor)) { top = d; top_xor = x; }
    }
    if (top_xor == 0) return 0;
    return a[top] < b[top] ? -1 : 1;
}

typedef struct {
    int width;
    int unique;
    ol_cmp_fn cmp;        /* NULL = insertion order */
    long n, cap;
    int *rows;            /* n * width */
    int finalized;
} OrderedList;

static void ol_init(OrderedList *l, int width, ol_cmp_fn cmp, int unique) {
    l->width = width; l->unique = unique; l->cmp = cmp;
    l->n = 0; l->cap = 0; l->rows = 0; l->finalized = 0;
}

static void ol_insert(OrderedList *l, int width, const int *key) {
    if (l->n == l->cap) {
        l->cap = l->cap ? l->cap * 2 : 64;
        l->rows = (int *)realloc(l->rows, (size_t)l->cap * width * sizeof(int));
    }
    memcpy(l->rows + l->n * width, key, (size_t)width * sizeof(int));
    l->n++;
}

static OrderedList *ol_sort_ctx;
static int ol_qsort_cmp(const void *pa, const void *pb) {
    return ol_sort_ctx->cmp((const int *)pa, (const int *)pb, ol_sort_ctx->width);
}

static void ol_finalize(OrderedList *l) {
    if (l->finalized) return;
    if (l->cmp) {
        ol_sort_ctx = l;
        qsort(l->rows, (size_t)l->n, (size_t)l->width * sizeof(int), ol_qsort_cmp);
    }
    if (l->unique && l->n > 1) {
        long w = 1;
        for (long r = 1; r < l->n; r++) {
            if (memcmp(l->rows + r * l->width, l->rows + (w - 1) * l->width,
                       (size_t)l->width * sizeof(int)) != 0) {
                memmove(l->rows + w * l->width, l->rows + r * l->width,
                        (size_t)l->width * sizeof(int));
                w++;
            }
        }
        l->n = w;
    }
    l->finalized = 1;
}

static long ol_size(const OrderedList *l) { return l->n; }

static int ol_key(const OrderedList *l, long pos, int dim) {
    return l->rows[pos * l->width + dim];
}

/* Rank by binary search; keys are unique in the formats in scope. With
 * an insertion-order list (cmp == NULL) this falls back to linear scan. */
static long ol_rank(const OrderedList *l, int width, const int *key) {
    if (!l->cmp) {
        for (long r = 0; r < l->n; r++) {
            if (memcmp(l->rows + r * width, key, (size_t)width * sizeof(int)) == 0)
                return r;
        }
        return -1;
    }
    long lo = 0, hi = l->n;
    while (lo < hi) {
        long mid = lo + (hi - lo) / 2;
        if (l->cmp(l->rows + mid * width, key, width) < 0) lo = mid + 1; else hi = mid;
    }
    return lo;
}
/* --------------------------------------------------------------------- */
"#;
