//! C code emission for generated inspectors.
//!
//! The paper's artifact emits C from the SPF-IR; this module provides the
//! same capability so synthesized conversions can be inspected, golden-
//! tested, and compiled externally. `OrderedList` operations are emitted
//! against the small runtime class shown in §3.2 of the paper
//! (`P = new OrderedList(...)`, `P.insert(...)`, `P.rank(...)`).

use std::fmt::Write as _;

use crate::ast::{CmpOp, Expr, Stmt};

/// Output dialect of the emitter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dialect {
    /// The paper's listing style: `P.insert(i, j)`, `P.rank(i, j)` —
    /// readable pseudo-C matching the figures in §3.2.
    PaperListing,
    /// Compilable C99 against the embedded `OrderedList` runtime
    /// ([`crate::cruntime::C_ORDERED_LIST_RUNTIME`]): `ol_insert(&P, 2,
    /// (int[]){i, j})` and friends.
    C99,
}

fn expr_str(e: &Expr, d: Dialect) -> String {
    match (e, d) {
        (Expr::ListRank { list, args }, Dialect::C99) => {
            let rendered: Vec<String> = args.iter().map(|a| expr_str(a, d)).collect();
            format!(
                "ol_rank(&{list}, {}, (int[]){{{}}})",
                args.len(),
                rendered.join(", ")
            )
        }
        (Expr::ListLen(l), Dialect::C99) => format!("ol_size(&{l})"),
        (Expr::UfRead { uf, idx }, _) => format!("{uf}[{}]", expr_str(idx, d)),
        (Expr::Add(a, b), _) => format!("({} + {})", expr_str(a, d), expr_str(b, d)),
        (Expr::Sub(a, b), _) => format!("({} - {})", expr_str(a, d), expr_str(b, d)),
        (Expr::Mul(a, b), _) => format!("({} * {})", expr_str(a, d), expr_str(b, d)),
        (Expr::Div(a, b), _) => format!("({} / {})", expr_str(a, d), expr_str(b, d)),
        (Expr::Min(a, b), _) => format!("MIN({}, {})", expr_str(a, d), expr_str(b, d)),
        (Expr::Max(a, b), _) => format!("MAX({}, {})", expr_str(a, d), expr_str(b, d)),
        (other, _) => other.to_string(),
    }
}

/// Standard prelude: bounds macros used by min/max folds.
pub const C_PRELUDE: &str = "\
#include <stdlib.h>
#include <string.h>
#define MIN(a, b) ((a) < (b) ? (a) : (b))
#define MAX(a, b) ((a) > (b) ? (a) : (b))
";

/// Emits a statement list as the body of a C function named `name`.
///
/// The emitted code is self-contained modulo the [`C_PRELUDE`] and an
/// `OrderedList` class providing `insert`, `finalize`, `rank`, `size` and
/// `key` — the runtime abstraction the paper introduces for reordering
/// constraints.
pub fn emit_c_function(name: &str, stmts: &[Stmt]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "void {name}(void) {{");
    for s in stmts {
        emit_stmt(&mut out, s, 1, Dialect::PaperListing);
    }
    out.push_str("}\n");
    out
}

/// Emits a statement list as a compilable C99 function body (no wrapper);
/// pair with [`crate::cruntime::C_ORDERED_LIST_RUNTIME`] and the
/// [`C_PRELUDE`].
pub fn emit_c99_block(stmts: &[Stmt], depth: usize) -> String {
    let mut out = String::new();
    for s in stmts {
        emit_stmt(&mut out, s, depth, Dialect::C99);
    }
    out
}

/// Emits a bare statement list (no function wrapper), e.g. for embedding
/// in documentation.
pub fn emit_c_block(stmts: &[Stmt]) -> String {
    let mut out = String::new();
    for s in stmts {
        emit_stmt(&mut out, s, 0, Dialect::PaperListing);
    }
    out
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn cmp_str(op: CmpOp) -> &'static str {
    op.c_str()
}

fn emit_stmt(out: &mut String, s: &Stmt, depth: usize, d: Dialect) {
    match s {
        Stmt::For { var, lo, hi, body, .. } => {
            indent(out, depth);
            let (lo, hi) = (expr_str(lo, d), expr_str(hi, d));
            let _ = writeln!(out, "for (int {var} = {lo}; {var} < {hi}; {var}++) {{");
            for b in body {
                emit_stmt(out, b, depth + 1, d);
            }
            indent(out, depth);
            out.push_str("}\n");
        }
        Stmt::Let { var, value, .. } => {
            indent(out, depth);
            let _ = writeln!(out, "int {var} = {};", expr_str(value, d));
        }
        Stmt::If { cond, body } => {
            indent(out, depth);
            let clauses: Vec<String> = cond
                .clauses
                .iter()
                .map(|(a, op, b)| {
                    format!("{} {} {}", expr_str(a, d), cmp_str(*op), expr_str(b, d))
                })
                .collect();
            let _ = writeln!(out, "if ({}) {{", clauses.join(" && "));
            for b in body {
                emit_stmt(out, b, depth + 1, d);
            }
            indent(out, depth);
            out.push_str("}\n");
        }
        Stmt::FindBinary { var, lo, hi, key, target, body, .. } => {
            // Lower-bound binary search over the monotone key.
            let key_s = expr_str(key, d);
            let target_s = expr_str(target, d);
            let lo_s = expr_str(lo, d);
            let hi_s = expr_str(hi, d);
            indent(out, depth);
            let _ = writeln!(out, "{{ // binary search for {var} with {key_s} == {target_s}");
            indent(out, depth + 1);
            let _ = writeln!(out, "int lo_ = {lo_s}, hi_ = {hi_s};");
            indent(out, depth + 1);
            out.push_str("while (lo_ < hi_) {\n");
            indent(out, depth + 2);
            let _ = writeln!(out, "int {var} = lo_ + (hi_ - lo_) / 2;");
            indent(out, depth + 2);
            let _ = writeln!(out, "if ({key_s} < {target_s}) lo_ = {var} + 1; else hi_ = {var};");
            indent(out, depth + 1);
            out.push_str("}\n");
            indent(out, depth + 1);
            let _ = writeln!(out, "int {var} = lo_;");
            indent(out, depth + 1);
            let _ = writeln!(out, "if ({var} < {hi_s} && {key_s} == {target_s}) {{");
            for b in body {
                emit_stmt(out, b, depth + 2, d);
            }
            indent(out, depth + 1);
            out.push_str("}\n");
            indent(out, depth);
            out.push_str("}\n");
        }
        Stmt::UfWrite { uf, idx, value } => {
            indent(out, depth);
            let _ = writeln!(out, "{uf}[{}] = {};", expr_str(idx, d), expr_str(value, d));
        }
        Stmt::UfMin { uf, idx, value } => {
            indent(out, depth);
            let (i, v) = (expr_str(idx, d), expr_str(value, d));
            let _ = writeln!(out, "{uf}[{i}] = MIN({uf}[{i}], {v});");
        }
        Stmt::UfMax { uf, idx, value } => {
            indent(out, depth);
            let (i, v) = (expr_str(idx, d), expr_str(value, d));
            let _ = writeln!(out, "{uf}[{i}] = MAX({uf}[{i}], {v});");
        }
        Stmt::UfAlloc { uf, size, init } => {
            indent(out, depth);
            let (size, init) = (expr_str(size, d), expr_str(init, d));
            let _ = writeln!(out, "{uf} = (int*)malloc(sizeof(int) * ({size}));");
            indent(out, depth);
            let _ = writeln!(
                out,
                "for (int a_ = 0; a_ < {size}; a_++) {uf}[a_] = {init};"
            );
        }
        Stmt::DataAlloc { arr, size } => {
            indent(out, depth);
            let _ = writeln!(
                out,
                "{arr} = (double*)calloc({}, sizeof(double));",
                expr_str(size, d)
            );
        }
        Stmt::ListInsert { list, args } => {
            indent(out, depth);
            let rendered: Vec<String> = args.iter().map(|a| expr_str(a, d)).collect();
            match d {
                Dialect::PaperListing => {
                    let _ = writeln!(out, "{list}.insert({});", rendered.join(", "));
                }
                Dialect::C99 => {
                    let _ = writeln!(
                        out,
                        "ol_insert(&{list}, {}, (int[]){{{}}});",
                        args.len(),
                        rendered.join(", ")
                    );
                }
            }
        }
        Stmt::ListFinalize { list } => {
            indent(out, depth);
            match d {
                Dialect::PaperListing => {
                    let _ = writeln!(out, "{list}.finalize();");
                }
                Dialect::C99 => {
                    let _ = writeln!(out, "ol_finalize(&{list});");
                }
            }
        }
        Stmt::ListToUf { list, dim, uf } => {
            indent(out, depth);
            match d {
                Dialect::PaperListing => {
                    let _ = writeln!(out, "{uf} = (int*)malloc(sizeof(int) * {list}.size());");
                    indent(out, depth);
                    let _ = writeln!(
                        out,
                        "for (int p_ = 0; p_ < {list}.size(); p_++) {uf}[p_] = {list}.key(p_, {dim});"
                    );
                }
                Dialect::C99 => {
                    let _ = writeln!(
                        out,
                        "{uf} = (int*)malloc(sizeof(int) * ol_size(&{list}));"
                    );
                    indent(out, depth);
                    let _ = writeln!(
                        out,
                        "for (int p_ = 0; p_ < ol_size(&{list}); p_++) {uf}[p_] = ol_key(&{list}, p_, {dim});"
                    );
                }
            }
        }
        Stmt::SymSet { sym, value } => {
            indent(out, depth);
            let _ = writeln!(out, "{sym} = {};", expr_str(value, d));
        }
        Stmt::DataAxpy { y, y_idx, a, a_idx, x, x_idx } => {
            indent(out, depth);
            let _ = writeln!(
                out,
                "{y}[{}] += {a}[{}] * {x}[{}];",
                expr_str(y_idx, d),
                expr_str(a_idx, d),
                expr_str(x_idx, d)
            );
        }
        Stmt::Copy { dst, dst_idx, src, src_idx } => {
            indent(out, depth);
            let _ = writeln!(
                out,
                "{dst}[{}] = {src}[{}];",
                expr_str(dst_idx, d),
                expr_str(src_idx, d)
            );
        }
        Stmt::Comment(text) => {
            indent(out, depth);
            let _ = writeln!(out, "// {text}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Cond, Expr, SlotAlloc};

    #[test]
    fn emits_csr_style_nest() {
        let mut slots = SlotAlloc::new();
        let i = slots.alloc("i");
        let k = slots.alloc("k");
        let stmts = vec![Stmt::For {
            var: "i".into(),
            slot: i,
            lo: Expr::Const(0),
            hi: Expr::Sym("NR".into()),
            body: vec![Stmt::For {
                var: "k".into(),
                slot: k,
                lo: Expr::uf_read("rowptr", Expr::Var("i".into(), i)),
                hi: Expr::uf_read(
                    "rowptr",
                    Expr::add(Expr::Var("i".into(), i), Expr::Const(1)),
                ),
                body: vec![Stmt::Let {
                    var: "j".into(),
                    slot: slots.alloc("j"),
                    value: Expr::uf_read("col", Expr::Var("k".into(), k)),
                }],
            }],
        }];
        let c = emit_c_function("walk_csr", &stmts);
        assert!(c.contains("for (int i = 0; i < NR; i++) {"));
        assert!(c.contains("for (int k = rowptr[i]; k < rowptr[(i + 1)]; k++) {"));
        assert!(c.contains("int j = col[k];"));
    }

    #[test]
    fn emits_guard_and_copy() {
        let mut slots = SlotAlloc::new();
        let d = slots.alloc("d");
        let stmts = vec![Stmt::If {
            cond: Cond::cmp(
                Expr::uf_read("off", Expr::Var("d".into(), d)),
                crate::ast::CmpOp::Eq,
                Expr::Const(2),
            ),
            body: vec![Stmt::Copy {
                dst: "A_dia".into(),
                dst_idx: Expr::Var("d".into(), d),
                src: "A_coo".into(),
                src_idx: Expr::Const(0),
            }],
        }];
        let c = emit_c_block(&stmts);
        assert!(c.contains("if (off[d] == 2) {"));
        assert!(c.contains("A_dia[d] = A_coo[0];"));
    }

    #[test]
    fn emits_ordered_list_protocol() {
        let stmts = vec![
            Stmt::ListInsert {
                list: "P".into(),
                args: vec![Expr::Const(1), Expr::Const(2)],
            },
            Stmt::ListFinalize { list: "P".into() },
            Stmt::ListToUf { list: "P".into(), dim: 0, uf: "off".into() },
        ];
        let c = emit_c_block(&stmts);
        assert!(c.contains("P.insert(1, 2);"));
        assert!(c.contains("P.finalize();"));
        assert!(c.contains("off[p_] = P.key(p_, 0);"));
    }

    #[test]
    fn emits_binary_search() {
        let mut slots = SlotAlloc::new();
        let d = slots.alloc("d");
        let stmts = vec![Stmt::FindBinary {
            var: "d".into(),
            slot: d,
            lo: Expr::Const(0),
            hi: Expr::Sym("ND".into()),
            key: Box::new(Expr::uf_read("off", Expr::Var("d".into(), d))),
            target: Box::new(Expr::Const(5)),
            body: vec![Stmt::Comment("hit".into())],
        }];
        let c = emit_c_block(&stmts);
        assert!(c.contains("while (lo_ < hi_)"));
        assert!(c.contains("if (off[d] < 5) lo_ = d + 1; else hi_ = d;"));
    }
}
