//! Hand-optimized native conversion kernels.
//!
//! The interpreter ([`crate::interp`]) executes any synthesized plan; these
//! kernels are fused, allocation-minimal Rust implementations of the *hot*
//! conversion shapes — counting-sort COO→CSR/CSC, pointer-transpose
//! CSR↔CSC, pointer-expansion CSR/CSC→COO, and permutation sorts for
//! lexicographic / Morton reordering. They operate on raw index/value
//! slices so the container layer (`sparse-formats`) and the registry layer
//! (`sparse-synthesis`) can compose them without intermediate copies.
//!
//! Every kernel is *semantically pinned to the interpreter*: for identical
//! valid inputs it must produce bit-identical outputs to the synthesized
//! SPF-IR plan for the same conversion (the differential suite in
//! `sparse-synthesis` enforces this). In particular the permutation sorts
//! reproduce the stable first-occurrence semantics of
//! [`crate::runtime::OrderedList`] by tie-breaking on the original
//! position, and the Morton sort mirrors `OrderedList::finalize` exactly
//! (same bit-width selection, same encoded-vs-comparator split).
//!
//! # Preconditions
//!
//! Kernels assume *validated* inputs (coordinates in-bounds, pointer
//! arrays monotone — what `sparse_formats::validate` establishes and the
//! engine requires before selecting a kernel). Out-of-range coordinates
//! panic via slice indexing rather than corrupt memory; callers that
//! cannot guarantee validation must not call these.

use crate::morton::{bits_for_extent, morton_cmp, morton_encode};

/// Counting-sort a COO triplet stream into CSR parts
/// `(rowptr, col, val)` for an `nr`-row matrix.
///
/// Single pass to histogram rows, prefix sum, scatter, then a per-row sort
/// by `(col, source position)` — skipped for rows whose columns already
/// arrive ascending (the common row-major-sorted input), so sorted inputs
/// convert in pure O(nnz).
pub fn coo_to_csr_parts(
    nr: usize,
    row: &[i64],
    col: &[i64],
    val: &[f64],
) -> (Vec<i64>, Vec<i64>, Vec<f64>) {
    let nnz = row.len();
    let mut rowptr = vec![0i64; nr + 1];
    for &r in row {
        rowptr[r as usize + 1] += 1;
    }
    for i in 0..nr {
        rowptr[i + 1] += rowptr[i];
    }
    // Scatter source positions into row segments, preserving input order
    // within each row (the counting sort is stable).
    let mut next: Vec<i64> = rowptr[..nr].to_vec();
    let mut perm = vec![0usize; nnz];
    for (p, &r) in row.iter().enumerate() {
        let slot = &mut next[r as usize];
        perm[*slot as usize] = p;
        *slot += 1;
    }
    // Per-row column sort; position tie-break keeps duplicate columns in
    // input order, matching the interpreter's stable OrderedList ranks.
    for r in 0..nr {
        let (lo, hi) = (rowptr[r] as usize, rowptr[r + 1] as usize);
        let seg = &mut perm[lo..hi];
        if !seg.windows(2).all(|w| col[w[0]] <= col[w[1]]) {
            seg.sort_unstable_by_key(|&p| (col[p], p));
        }
    }
    let out_col = perm.iter().map(|&p| col[p]).collect();
    let out_val = perm.iter().map(|&p| val[p]).collect();
    (rowptr, out_col, out_val)
}

/// Transposes CSR parts into CSC parts `(colptr, row, val)` — or, by role
/// symmetry, CSC parts into CSR parts.
///
/// The row-major scan scatters entries into column buckets in row order,
/// so each output column's rows arrive already ascending: no secondary
/// sort is needed, giving O(nnz + nr + nc) with perfect output order.
pub fn csr_to_csc_parts(
    nr: usize,
    nc: usize,
    rowptr: &[i64],
    col: &[i64],
    val: &[f64],
) -> (Vec<i64>, Vec<i64>, Vec<f64>) {
    let nnz = col.len();
    let mut colptr = vec![0i64; nc + 1];
    for &c in col {
        colptr[c as usize + 1] += 1;
    }
    for j in 0..nc {
        colptr[j + 1] += colptr[j];
    }
    let mut next: Vec<i64> = colptr[..nc].to_vec();
    let mut out_row = vec![0i64; nnz];
    let mut out_val = vec![0f64; nnz];
    for r in 0..nr {
        let (lo, hi) = (rowptr[r] as usize, rowptr[r + 1] as usize);
        for p in lo..hi {
            let slot = &mut next[col[p] as usize];
            out_row[*slot as usize] = r as i64;
            out_val[*slot as usize] = val[p];
            *slot += 1;
        }
    }
    (colptr, out_row, out_val)
}

/// Expands a compressed pointer array (`rowptr`/`colptr`) into the
/// per-entry major coordinate — the only work in CSR→COO / CSC→COO since
/// the minor coordinate and values carry over verbatim.
pub fn expand_ptr(ptr: &[i64]) -> Vec<i64> {
    let n = ptr.len().saturating_sub(1);
    let nnz = ptr.last().copied().unwrap_or(0).max(0) as usize;
    let mut out = Vec::with_capacity(nnz);
    for i in 0..n {
        let (lo, hi) = (ptr[i], ptr[i + 1]);
        out.resize(out.len() + (hi - lo).max(0) as usize, i as i64);
    }
    out
}

/// Returns the permutation sorting entries lexicographically by
/// `(row, col)` — the COO "sorted row-major" order. Keys are read once
/// and the unstable sort tie-breaks on the source position, reproducing a
/// stable sort's order without its allocation profile.
pub fn lex_sort_perm(row: &[i64], col: &[i64]) -> Vec<usize> {
    let mut perm: Vec<usize> = (0..row.len()).collect();
    if perm.windows(2).all(|w| {
        (row[w[0]], col[w[0]]) <= (row[w[1]], col[w[1]])
    }) {
        return perm;
    }
    perm.sort_unstable_by_key(|&p| (row[p], col[p], p));
    perm
}

/// Returns the permutation sorting entries into Morton (Z-curve) order
/// over the given coordinate columns (one slice per dimension, equal
/// lengths).
///
/// Mirrors `OrderedList::finalize`'s Morton path bit-for-bit: the code
/// width is chosen from the maximum coordinate, codes are materialized as
/// `u128` whenever `rank * bits <= 128` (position tie-break keeps equal
/// codes in insertion order), and wider spaces fall back to the
/// comparator-based [`morton_cmp`] with the same tie-break.
pub fn morton_sort_perm(dims: &[&[i64]]) -> Vec<usize> {
    let n = dims.first().map_or(0, |d| d.len());
    let rank = dims.len() as u32;
    let mut perm: Vec<usize> = (0..n).collect();
    let max = dims
        .iter()
        .flat_map(|d| d.iter().copied())
        .max()
        .unwrap_or(0)
        .max(0);
    let bits = bits_for_extent(max as usize + 1);
    if rank * bits <= 128 {
        let mut keyed: Vec<(u128, usize)> = perm
            .iter()
            .map(|&p| {
                let coords: Vec<i64> = dims.iter().map(|d| d[p]).collect();
                (morton_encode(&coords, bits), p)
            })
            .collect();
        keyed.sort_unstable_by_key(|&(code, p)| (code, p));
        for (slot, (_, p)) in perm.iter_mut().zip(keyed) {
            *slot = p;
        }
    } else {
        let key = |p: usize| -> Vec<i64> { dims.iter().map(|d| d[p]).collect() };
        perm.sort_unstable_by(|&a, &b| {
            morton_cmp(&key(a), &key(b)).then(a.cmp(&b))
        });
    }
    perm
}

/// Applies a permutation to an index column.
pub fn permute_i64(src: &[i64], perm: &[usize]) -> Vec<i64> {
    perm.iter().map(|&p| src[p]).collect()
}

/// Applies a permutation to a value column.
pub fn permute_f64(src: &[f64], perm: &[usize]) -> Vec<f64> {
    perm.iter().map(|&p| src[p]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coo_to_csr_sorts_within_rows() {
        // (row, col, val): shuffled, with an empty row 1.
        let row = [2i64, 0, 2, 0, 3];
        let col = [3i64, 1, 0, 0, 2];
        let val = [1.0, 2.0, 3.0, 4.0, 5.0];
        let (rowptr, c, v) = coo_to_csr_parts(4, &row, &col, &val);
        assert_eq!(rowptr, vec![0, 2, 2, 4, 5]);
        assert_eq!(c, vec![0, 1, 0, 3, 2]);
        assert_eq!(v, vec![4.0, 2.0, 3.0, 1.0, 5.0]);
    }

    #[test]
    fn coo_to_csr_sorted_fast_path_is_identity() {
        let row = [0i64, 0, 1, 2];
        let col = [0i64, 2, 1, 0];
        let val = [1.0, 2.0, 3.0, 4.0];
        let (rowptr, c, v) = coo_to_csr_parts(3, &row, &col, &val);
        assert_eq!(rowptr, vec![0, 2, 3, 4]);
        assert_eq!(c, col.to_vec());
        assert_eq!(v, val.to_vec());
    }

    #[test]
    fn transpose_round_trips() {
        // 3x4: entries (0,1)=1 (0,3)=2 (1,0)=3 (2,1)=4 (2,2)=5.
        let rowptr = [0i64, 2, 3, 5];
        let col = [1i64, 3, 0, 1, 2];
        let val = [1.0, 2.0, 3.0, 4.0, 5.0];
        let (colptr, r, v) = csr_to_csc_parts(3, 4, &rowptr, &col, &val);
        assert_eq!(colptr, vec![0, 1, 3, 4, 5]);
        assert_eq!(r, vec![1, 0, 2, 2, 0]);
        assert_eq!(v, vec![3.0, 1.0, 4.0, 5.0, 2.0]);
        // Transposing back recovers the original.
        let (rp2, c2, v2) = csr_to_csc_parts(4, 3, &colptr, &r, &v);
        assert_eq!(rp2, rowptr.to_vec());
        assert_eq!(c2, col.to_vec());
        assert_eq!(v2, val.to_vec());
    }

    #[test]
    fn expand_ptr_repeats_majors() {
        assert_eq!(expand_ptr(&[0, 2, 2, 5]), vec![0, 0, 2, 2, 2]);
        assert_eq!(expand_ptr(&[0]), Vec::<i64>::new());
        assert_eq!(expand_ptr(&[]), Vec::<i64>::new());
    }

    #[test]
    fn lex_perm_matches_stable_sort() {
        let row = [1i64, 0, 1, 0, 1];
        let col = [0i64, 1, 1, 0, 0];
        let perm = lex_sort_perm(&row, &col);
        let mut want: Vec<usize> = (0..5).collect();
        want.sort_by_key(|&p| (row[p], col[p]));
        assert_eq!(perm, want);
    }

    #[test]
    fn morton_perm_matches_comparator_sort() {
        let i0 = [3i64, 0, 2, 1, 3, 0];
        let i1 = [1i64, 2, 2, 0, 1, 0];
        let perm = morton_sort_perm(&[&i0, &i1]);
        let mut want: Vec<usize> = (0..6).collect();
        want.sort_by(|&a, &b| morton_cmp(&[i0[a], i1[a]], &[i0[b], i1[b]]));
        assert_eq!(perm, want);
    }

    #[test]
    fn morton_perm_empty_and_single() {
        assert_eq!(morton_sort_perm(&[&[], &[]]), Vec::<usize>::new());
        assert_eq!(morton_sort_perm(&[&[7], &[3]]), vec![0]);
    }
}
