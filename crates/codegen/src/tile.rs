//! Loop tiling (strip-mining) — the last of the paper's list of SPF
//! transformations ("fusion, skewing, unrolling, tiling, and others").
//!
//! Like [`crate::unroll`], tiling runs on the loop AST after scanning: a
//! `for` over `[lo, hi)` becomes a tile loop over tile indices and an
//! intra-tile loop reusing the original variable's register, so body
//! statements are unchanged.

use crate::ast::{Expr, Slot, SlotAlloc, Stmt};

/// Strip-mines by `tile` every `for` loop (recursively) whose variable is
/// named `var`. Returns the number of loops rewritten.
///
/// # Panics
/// Panics when `tile < 2`.
pub fn tile_loops(
    stmts: &mut Vec<Stmt>,
    var: &str,
    tile: i64,
    slots: &mut SlotAlloc,
) -> usize {
    assert!(tile >= 2, "tile size must be at least 2");
    let mut count = 0;
    let mut out = Vec::with_capacity(stmts.len());
    for s in stmts.drain(..) {
        out.extend(tile_stmt(s, var, tile, slots, &mut count));
    }
    *stmts = out;
    count
}

fn tile_stmt(
    s: Stmt,
    var: &str,
    tile: i64,
    slots: &mut SlotAlloc,
    count: &mut usize,
) -> Vec<Stmt> {
    match s {
        Stmt::For { var: v, slot, lo, hi, mut body } => {
            let mut inner = Vec::new();
            for b in body.drain(..) {
                inner.extend(tile_stmt(b, var, tile, slots, count));
            }
            if v == var {
                *count += 1;
                build_tiled(&v, slot, lo, hi, inner, tile, slots)
            } else {
                vec![Stmt::For { var: v, slot, lo, hi, body: inner }]
            }
        }
        Stmt::If { cond, mut body } => {
            let mut inner = Vec::new();
            for b in body.drain(..) {
                inner.extend(tile_stmt(b, var, tile, slots, count));
            }
            vec![Stmt::If { cond, body: inner }]
        }
        other => vec![other],
    }
}

fn build_tiled(
    var: &str,
    slot: Slot,
    lo: Expr,
    hi: Expr,
    body: Vec<Stmt>,
    tile: i64,
    slots: &mut SlotAlloc,
) -> Vec<Stmt> {
    let lo_slot = slots.alloc(format!("{var}_lo"));
    let hi_slot = slots.alloc(format!("{var}_hi"));
    let t_slot = slots.alloc(format!("{var}_t"));
    let lo_v = Expr::Var(format!("{var}_lo"), lo_slot);
    let hi_v = Expr::Var(format!("{var}_hi"), hi_slot);
    let t_v = Expr::Var(format!("{var}_t"), t_slot);

    // Number of tiles: ceil((hi - lo) / tile) = (hi - lo + tile - 1) / tile,
    // clamped at zero for empty ranges.
    let tiles = Expr::div(
        Expr::max(
            Expr::add(Expr::sub(hi_v.clone(), lo_v.clone()), Expr::Const(tile - 1)),
            Expr::Const(0),
        ),
        Expr::Const(tile),
    );
    let tile_base = Expr::add(lo_v.clone(), Expr::mul(Expr::Const(tile), t_v.clone()));

    vec![
        Stmt::Let { var: format!("{var}_lo"), slot: lo_slot, value: lo },
        Stmt::Let { var: format!("{var}_hi"), slot: hi_slot, value: hi },
        Stmt::For {
            var: format!("{var}_t"),
            slot: t_slot,
            lo: Expr::Const(0),
            hi: tiles,
            body: vec![Stmt::For {
                var: var.to_string(),
                slot,
                lo: tile_base.clone(),
                hi: Expr::min(hi_v, Expr::add(tile_base, Expr::Const(tile))),
                body,
            }],
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{compile, execute};
    use crate::runtime::RtEnv;

    fn visit_loop() -> (Vec<Stmt>, SlotAlloc) {
        let mut slots = SlotAlloc::new();
        let n = slots.alloc("n");
        let stmts = vec![
            Stmt::UfAlloc { uf: "seen".into(), size: Expr::Sym("N".into()), init: Expr::Const(0) },
            Stmt::For {
                var: "n".into(),
                slot: n,
                lo: Expr::Const(0),
                hi: Expr::Sym("N".into()),
                body: vec![Stmt::UfWrite {
                    uf: "seen".into(),
                    idx: Expr::Var("n".into(), n),
                    value: Expr::add(
                        Expr::uf_read("seen", Expr::Var("n".into(), n)),
                        Expr::Const(1),
                    ),
                }],
            },
        ];
        (stmts, slots)
    }

    #[test]
    fn tiled_loop_visits_each_point_once() {
        for total in [0i64, 1, 5, 16, 17, 31] {
            for tile in [2i64, 4, 8] {
                let (mut stmts, mut slots) = visit_loop();
                assert_eq!(tile_loops(&mut stmts, "n", tile, &mut slots), 1);
                let prog = compile(&stmts, &slots);
                let mut env = RtEnv::new().with_sym("N", total);
                execute(&prog, &mut env).unwrap();
                assert!(
                    env.ufs["seen"].iter().all(|&x| x == 1),
                    "total {total} tile {tile}: {:?}",
                    env.ufs["seen"]
                );
            }
        }
    }

    #[test]
    fn nested_loops_tile_the_named_one_only() {
        let mut slots = SlotAlloc::new();
        let i = slots.alloc("i");
        let j = slots.alloc("j");
        let mut stmts = vec![
            Stmt::UfAlloc { uf: "c".into(), size: Expr::Const(1), init: Expr::Const(0) },
            Stmt::For {
                var: "i".into(),
                slot: i,
                lo: Expr::Const(0),
                hi: Expr::Const(6),
                body: vec![Stmt::For {
                    var: "j".into(),
                    slot: j,
                    lo: Expr::Const(0),
                    hi: Expr::Const(5),
                    body: vec![Stmt::UfWrite {
                        uf: "c".into(),
                        idx: Expr::Const(0),
                        value: Expr::add(Expr::uf_read("c", Expr::Const(0)), Expr::Const(1)),
                    }],
                }],
            },
        ];
        assert_eq!(tile_loops(&mut stmts, "j", 2, &mut slots), 1);
        let prog = compile(&stmts, &slots);
        let mut env = RtEnv::new();
        execute(&prog, &mut env).unwrap();
        assert_eq!(env.ufs["c"], vec![30]);
    }

    #[test]
    fn emitted_c_shows_tile_structure() {
        let (mut stmts, mut slots) = visit_loop();
        tile_loops(&mut stmts, "n", 8, &mut slots);
        let c = crate::cemit::emit_c_block(&stmts);
        assert!(c.contains("for (int n_t = 0;"), "{c}");
        assert!(c.contains("MIN(n_hi, "), "{c}");
    }
}
