//! Runtime support for generated inspectors: the environment binding
//! uninterpreted functions to index arrays, and the `OrderedList`
//! permutation abstraction of §3.2 of the paper.
//!
//! The paper's synthesized code for COO→MCOO is:
//!
//! ```c
//! P = new OrderedList(2, 1, MORTON(), "<");
//! for (int c0 = 0; c0 < NNZ; c0++) {
//!     P.insert(row1(c0), col1(c0));
//! }
//! ```
//!
//! [`OrderedList`] implements that abstraction: keys are inserted in source
//! order, `finalize` sorts them with the declared comparator (stably, so
//! insertion order breaks ties), and `rank` retrieves the re-ordered
//! position of a nonzero — the permutation `P`. The paper notes that rank
//! retrieval "incurs overhead"; this implementation reproduces that cost
//! profile with a hash-map rank index.

use std::borrow::Cow;
use std::cmp::Ordering;
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::Arc;

use crate::morton::morton_cmp;

/// A fast non-cryptographic hasher (Fx-style multiply-xor) for the rank
/// index. Rank retrieval is on the inspector's per-nonzero hot path; the
/// default SipHash would dominate the conversion cost and distort the
/// comparison the paper makes (its permutation uses plain array
/// machinery).
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.hash = (self.hash.rotate_left(5) ^ b as u64).wrapping_mul(FX_SEED);
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.hash = (self.hash.rotate_left(5) ^ v).wrapping_mul(FX_SEED);
    }

    #[inline]
    fn write_i64(&mut self, v: i64) {
        self.write_u64(v as u64);
    }
}

type FxBuild = BuildHasherDefault<FxHasher>;

/// Maximum key width supported by [`OrderedList`].
pub const MAX_KEY_WIDTH: usize = 4;

/// Fixed-width key buffer used by the rank index.
type KeyBuf = [i64; MAX_KEY_WIDTH];

fn key_buf(key: &[i64]) -> KeyBuf {
    let mut buf = [i64::MIN; MAX_KEY_WIDTH];
    buf[..key.len()].copy_from_slice(key);
    buf
}

/// A shared user-defined comparison function over integer key tuples.
pub type CmpFn = Arc<dyn Fn(&[i64], &[i64]) -> Ordering + Send + Sync>;

/// Comparison semantics of an [`OrderedList`].
#[derive(Clone)]
pub enum ListOrder {
    /// Keep insertion order (no reordering quantifier on the destination).
    Insertion,
    /// Lexicographic over the key tuple.
    Lexicographic,
    /// Morton / Z-order over the key tuple.
    Morton,
    /// User-defined comparison function (the paper requires full
    /// definitions for functions appearing only in universal quantifiers).
    Custom(CmpFn),
}

impl fmt::Debug for ListOrder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ListOrder::Insertion => write!(f, "Insertion"),
            ListOrder::Lexicographic => write!(f, "Lexicographic"),
            ListOrder::Morton => write!(f, "Morton"),
            ListOrder::Custom(_) => write!(f, "Custom(..)"),
        }
    }
}

impl ListOrder {
    fn cmp(&self, a: &[i64], b: &[i64]) -> Ordering {
        match self {
            ListOrder::Insertion => Ordering::Equal,
            ListOrder::Lexicographic => a.cmp(b),
            ListOrder::Morton => morton_cmp(a, b),
            ListOrder::Custom(f) => f(a, b),
        }
    }
}

/// Errors raised by [`OrderedList`] operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ListError {
    /// Key width differs from the declared width.
    WidthMismatch {
        /// Declared width.
        expect: usize,
        /// Provided width.
        got: usize,
    },
    /// `rank`/`key_col` called before `finalize`.
    NotFinalized,
    /// `insert` called after `finalize`.
    AlreadyFinalized,
    /// `rank` key was never inserted.
    UnknownKey(Vec<i64>),
    /// Column index out of range in `key_col`.
    BadColumn(usize),
}

impl fmt::Display for ListError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ListError::WidthMismatch { expect, got } => {
                write!(f, "key width mismatch: expected {expect}, got {got}")
            }
            ListError::NotFinalized => write!(f, "ordered list not finalized"),
            ListError::AlreadyFinalized => write!(f, "ordered list already finalized"),
            ListError::UnknownKey(k) => write!(f, "key {k:?} not present"),
            ListError::BadColumn(c) => write!(f, "key column {c} out of range"),
        }
    }
}

impl std::error::Error for ListError {}

/// The permutation abstraction: an insert-then-sort list of integer keys
/// with rank retrieval.
#[derive(Debug, Clone)]
pub struct OrderedList {
    width: usize,
    unique: bool,
    order: ListOrder,
    rows: Vec<i64>,
    finalized: bool,
    ranks: HashMap<KeyBuf, i64, FxBuild>,
}

impl OrderedList {
    /// Creates a list of `width`-column keys ordered by `order`. With
    /// `unique`, duplicate keys collapse at finalize (used to build DIA's
    /// `off` array, where many nonzeros share one diagonal).
    ///
    /// # Panics
    /// Panics when `width` is zero or exceeds [`MAX_KEY_WIDTH`].
    pub fn new(width: usize, order: ListOrder, unique: bool) -> Self {
        assert!(
            (1..=MAX_KEY_WIDTH).contains(&width),
            "key width must be in 1..={MAX_KEY_WIDTH}"
        );
        OrderedList {
            width,
            unique,
            order,
            rows: Vec::new(),
            finalized: false,
            ranks: HashMap::default(),
        }
    }

    /// Declared key width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Returns `true` once [`OrderedList::finalize`] has run.
    pub fn is_finalized(&self) -> bool {
        self.finalized
    }

    /// Inserts a key in source order.
    ///
    /// # Errors
    /// Fails when the width differs from the declaration or the list is
    /// already finalized.
    pub fn insert(&mut self, key: &[i64]) -> Result<(), ListError> {
        if self.finalized {
            return Err(ListError::AlreadyFinalized);
        }
        if key.len() != self.width {
            return Err(ListError::WidthMismatch { expect: self.width, got: key.len() });
        }
        self.rows.extend_from_slice(key);
        Ok(())
    }

    /// Sorts the keys by the declared comparator (stable, so insertion
    /// order breaks ties), optionally deduplicates, and builds the rank
    /// index. Idempotent once called.
    pub fn finalize(&mut self) {
        if self.finalized {
            return;
        }
        let w = self.width;
        let n = self.rows.len() / w;
        let mut idx: Vec<usize> = (0..n).collect();
        match &self.order {
            ListOrder::Insertion => {}
            ListOrder::Morton => {
                // Precompute interleaved keys when they fit in 128 bits —
                // the sort then compares plain integers instead of
                // invoking the bitwise comparator per comparison.
                let max = self.rows.iter().copied().max().unwrap_or(0).max(0);
                let bits = crate::morton::bits_for_extent(max as usize + 1);
                if (w as u32) * bits <= 128 {
                    let mut keyed: Vec<(u128, u32)> = idx
                        .iter()
                        .map(|&r| {
                            (
                                crate::morton::morton_encode(
                                    &self.rows[r * w..r * w + w],
                                    bits,
                                ),
                                r as u32,
                            )
                        })
                        .collect();
                    keyed.sort_by_key(|&(code, r)| (code, r));
                    idx = keyed.into_iter().map(|(_, r)| r as usize).collect();
                } else {
                    idx.sort_by(|&a, &b| {
                        morton_cmp(&self.rows[a * w..a * w + w], &self.rows[b * w..b * w + w])
                    });
                }
            }
            order => {
                idx.sort_by(|&a, &b| {
                    order.cmp(&self.rows[a * w..a * w + w], &self.rows[b * w..b * w + w])
                });
            }
        }
        let mut sorted = Vec::with_capacity(self.rows.len());
        let mut ranks: HashMap<KeyBuf, i64, FxBuild> =
            HashMap::with_capacity_and_hasher(n, FxBuild::default());
        let mut rank: i64 = 0;
        for &r in &idx {
            let row = &self.rows[r * w..r * w + w];
            let buf = key_buf(row);
            if self.unique {
                if let std::collections::hash_map::Entry::Vacant(e) = ranks.entry(buf) {
                    e.insert(rank);
                    sorted.extend_from_slice(row);
                    rank += 1;
                }
            } else {
                // First occurrence wins; duplicates (which sorted formats
                // do not produce) keep the earliest rank.
                ranks.entry(buf).or_insert(rank);
                sorted.extend_from_slice(row);
                rank += 1;
            }
        }
        self.rows = sorted;
        self.ranks = ranks;
        self.finalized = true;
    }

    /// Number of (unique) keys; before finalize, the raw insertion count.
    pub fn len(&self) -> usize {
        self.rows.len() / self.width
    }

    /// Returns `true` when no keys are present.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Retrieves the re-ordered position of `key` — the permutation
    /// `P(key)`.
    ///
    /// # Errors
    /// Fails before finalize or for unknown keys.
    pub fn rank(&self, key: &[i64]) -> Result<i64, ListError> {
        if !self.finalized {
            return Err(ListError::NotFinalized);
        }
        if key.len() != self.width {
            return Err(ListError::WidthMismatch { expect: self.width, got: key.len() });
        }
        self.ranks
            .get(&key_buf(key))
            .copied()
            .ok_or_else(|| ListError::UnknownKey(key.to_vec()))
    }

    /// Value of key column `dim` at sorted position `pos`.
    ///
    /// # Errors
    /// Fails before finalize or for a column out of range.
    pub fn key_col(&self, pos: usize, dim: usize) -> Result<i64, ListError> {
        if !self.finalized {
            return Err(ListError::NotFinalized);
        }
        if dim >= self.width {
            return Err(ListError::BadColumn(dim));
        }
        Ok(self.rows[pos * self.width + dim])
    }
}

/// The runtime environment a generated inspector executes against:
/// symbolic constants, integer index arrays (the uninterpreted functions),
/// f64 data spaces, and ordered lists.
///
/// Index and data arrays are [`Cow`] slices so containers bind without
/// copying: the source matrix's arrays enter as `Cow::Borrowed` in O(1),
/// and the interpreter clones an array only on its first write
/// (copy-on-write). Arrays the inspector allocates itself are
/// `Cow::Owned`, so extracting a freshly produced output is an O(1) move
/// (see [`RtEnv::take_uf`]) rather than a full clone.
#[derive(Debug, Default)]
pub struct RtEnv<'a> {
    /// Symbolic constants such as `NR`, `NC`, `NNZ`; inspectors may add
    /// more (e.g. `ND`) during execution.
    pub syms: BTreeMap<String, i64>,
    /// Index arrays keyed by UF name.
    pub ufs: BTreeMap<String, Cow<'a, [i64]>>,
    /// Data arrays keyed by data-space name.
    pub data: BTreeMap<String, Cow<'a, [f64]>>,
    /// Ordered lists keyed by name; must be declared (inserted here)
    /// before executing programs that reference them.
    pub lists: BTreeMap<String, OrderedList>,
}

impl<'a> RtEnv<'a> {
    /// Creates an empty environment.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets a symbolic constant (builder style).
    pub fn with_sym(mut self, name: impl Into<String>, v: i64) -> Self {
        self.syms.insert(name.into(), v);
        self
    }

    /// Binds an index array (builder style); accepts an owned `Vec` or a
    /// borrowed slice (zero-copy).
    pub fn with_uf(mut self, name: impl Into<String>, v: impl Into<Cow<'a, [i64]>>) -> Self {
        self.ufs.insert(name.into(), v.into());
        self
    }

    /// Binds a data array (builder style); accepts an owned `Vec` or a
    /// borrowed slice (zero-copy).
    pub fn with_data(mut self, name: impl Into<String>, v: impl Into<Cow<'a, [f64]>>) -> Self {
        self.data.insert(name.into(), v.into());
        self
    }

    /// Declares an ordered list (builder style).
    pub fn with_list(mut self, name: impl Into<String>, l: OrderedList) -> Self {
        self.lists.insert(name.into(), l);
        self
    }

    /// Removes an index array and returns it owned — O(1) for arrays the
    /// inspector produced (`Cow::Owned`), a clone only for arrays still
    /// borrowed from the caller.
    pub fn take_uf(&mut self, name: &str) -> Option<Vec<i64>> {
        self.ufs.remove(name).map(Cow::into_owned)
    }

    /// Removes a data array and returns it owned; same cost profile as
    /// [`RtEnv::take_uf`].
    pub fn take_data(&mut self, name: &str) -> Option<Vec<f64>> {
        self.data.remove(name).map(Cow::into_owned)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insertion_order_list_keeps_order() {
        let mut l = OrderedList::new(2, ListOrder::Insertion, false);
        l.insert(&[5, 1]).unwrap();
        l.insert(&[2, 9]).unwrap();
        l.finalize();
        assert_eq!(l.rank(&[5, 1]).unwrap(), 0);
        assert_eq!(l.rank(&[2, 9]).unwrap(), 1);
    }

    #[test]
    fn lexicographic_sort_and_rank() {
        let mut l = OrderedList::new(2, ListOrder::Lexicographic, false);
        for k in [[2i64, 3], [0, 1], [2, 0], [1, 7]] {
            l.insert(&k).unwrap();
        }
        l.finalize();
        assert_eq!(l.rank(&[0, 1]).unwrap(), 0);
        assert_eq!(l.rank(&[1, 7]).unwrap(), 1);
        assert_eq!(l.rank(&[2, 0]).unwrap(), 2);
        assert_eq!(l.rank(&[2, 3]).unwrap(), 3);
        assert_eq!(l.len(), 4);
    }

    #[test]
    fn unique_list_dedups_like_dia_offsets() {
        let mut l = OrderedList::new(1, ListOrder::Lexicographic, true);
        for k in [3i64, -1, 3, 0, -1, 3] {
            l.insert(&[k]).unwrap();
        }
        l.finalize();
        assert_eq!(l.len(), 3);
        assert_eq!(l.key_col(0, 0).unwrap(), -1);
        assert_eq!(l.key_col(1, 0).unwrap(), 0);
        assert_eq!(l.key_col(2, 0).unwrap(), 3);
        assert_eq!(l.rank(&[-1]).unwrap(), 0);
        assert_eq!(l.rank(&[3]).unwrap(), 2);
    }

    #[test]
    fn morton_list_orders_by_z_curve() {
        let mut l = OrderedList::new(2, ListOrder::Morton, false);
        // Z-order on 2x2: (0,0) (1,0) (0,1) (1,1).
        for k in [[1i64, 1], [0, 1], [1, 0], [0, 0]] {
            l.insert(&k).unwrap();
        }
        l.finalize();
        assert_eq!(l.rank(&[0, 0]).unwrap(), 0);
        assert_eq!(l.rank(&[1, 0]).unwrap(), 1);
        assert_eq!(l.rank(&[0, 1]).unwrap(), 2);
        assert_eq!(l.rank(&[1, 1]).unwrap(), 3);
    }

    #[test]
    fn custom_comparator() {
        // Reverse lexicographic.
        let cmp: CmpFn = Arc::new(|a, b| b.cmp(a));
        let mut l = OrderedList::new(1, ListOrder::Custom(cmp), false);
        for k in [1i64, 3, 2] {
            l.insert(&[k]).unwrap();
        }
        l.finalize();
        assert_eq!(l.rank(&[3]).unwrap(), 0);
        assert_eq!(l.rank(&[1]).unwrap(), 2);
    }

    #[test]
    fn errors_are_reported() {
        let mut l = OrderedList::new(2, ListOrder::Lexicographic, false);
        assert_eq!(
            l.insert(&[1]),
            Err(ListError::WidthMismatch { expect: 2, got: 1 })
        );
        assert_eq!(l.rank(&[1, 2]), Err(ListError::NotFinalized));
        l.insert(&[1, 2]).unwrap();
        l.finalize();
        assert_eq!(l.insert(&[3, 4]), Err(ListError::AlreadyFinalized));
        assert_eq!(l.rank(&[9, 9]), Err(ListError::UnknownKey(vec![9, 9])));
        assert_eq!(l.key_col(0, 5), Err(ListError::BadColumn(5)));
    }

    #[test]
    fn env_builders() {
        let env = RtEnv::new()
            .with_sym("NNZ", 4)
            .with_uf("row1", vec![0, 0, 1, 1])
            .with_data("A", vec![1.0, 2.0, 3.0, 4.0])
            .with_list("P", OrderedList::new(2, ListOrder::Lexicographic, false));
        assert_eq!(env.syms["NNZ"], 4);
        assert_eq!(env.ufs["row1"].len(), 4);
        assert_eq!(env.data["A"].len(), 4);
        assert!(env.lists.contains_key("P"));
    }
}
