//! In-process execution of generated inspectors.
//!
//! The paper compiles its synthesized SPF code to C; here the loop AST is
//! *compiled* to a register-resolved form ([`Program`]) and interpreted
//! directly, so synthesized conversions are executable and benchmarkable
//! without a C toolchain. Name resolution happens once at compile time:
//! loop variables become register indices and UF/data/list names become
//! dense table indices, leaving only array indexing in the hot loops.

use std::borrow::Cow;
use std::collections::HashMap;
use std::fmt;

use crate::ast::{CmpOp, Expr, SlotAlloc, Stmt};
use crate::runtime::{ListError, OrderedList, RtEnv};

/// Errors raised during execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// A symbolic constant was read before being bound.
    UnboundSym(String),
    /// An index array was accessed before allocation/binding.
    UnboundUf(String),
    /// A data array was accessed before allocation/binding.
    UnboundData(String),
    /// An ordered list was used without being declared in the environment.
    UnboundList(String),
    /// Out-of-bounds index-array access.
    OobUf {
        /// Array name.
        name: String,
        /// Offending index.
        idx: i64,
        /// Array length.
        len: usize,
    },
    /// Out-of-bounds data-array access.
    OobData {
        /// Array name.
        name: String,
        /// Offending index.
        idx: i64,
        /// Array length.
        len: usize,
    },
    /// Division by zero in a generated expression.
    DivByZero,
    /// Negative allocation size.
    BadAlloc {
        /// Array name.
        name: String,
        /// Requested size.
        size: i64,
    },
    /// An ordered-list operation failed.
    List(ListError),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::UnboundSym(s) => write!(f, "symbol `{s}` is unbound"),
            ExecError::UnboundUf(s) => write!(f, "index array `{s}` is unbound"),
            ExecError::UnboundData(s) => write!(f, "data array `{s}` is unbound"),
            ExecError::UnboundList(s) => write!(f, "ordered list `{s}` is undeclared"),
            ExecError::OobUf { name, idx, len } => {
                write!(f, "index array `{name}`[{idx}] out of bounds (len {len})")
            }
            ExecError::OobData { name, idx, len } => {
                write!(f, "data array `{name}`[{idx}] out of bounds (len {len})")
            }
            ExecError::DivByZero => write!(f, "division by zero"),
            ExecError::BadAlloc { name, size } => {
                write!(f, "negative allocation of `{name}` ({size})")
            }
            ExecError::List(e) => write!(f, "ordered list error: {e}"),
        }
    }
}

impl std::error::Error for ExecError {}

impl From<ListError> for ExecError {
    fn from(e: ListError) -> Self {
        ExecError::List(e)
    }
}

/// Execution statistics, useful for asserting algorithmic shape in tests
/// (e.g. the DIA linear search executes `O(NNZ · ND)` iterations while the
/// binary-search variant does not).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Total loop iterations executed.
    pub loop_iterations: u64,
    /// Total statements executed (loops counted once per entry).
    pub statements: u64,
}

#[derive(Debug, Clone)]
enum CExpr {
    Const(i64),
    Reg(u32),
    Sym(u32),
    UfRead { uf: u32, idx: Box<CExpr> },
    ListRank { list: u32, args: Vec<CExpr> },
    ListLen(u32),
    Add(Box<CExpr>, Box<CExpr>),
    Sub(Box<CExpr>, Box<CExpr>),
    Mul(Box<CExpr>, Box<CExpr>),
    Div(Box<CExpr>, Box<CExpr>),
    Min(Box<CExpr>, Box<CExpr>),
    Max(Box<CExpr>, Box<CExpr>),
}

#[derive(Debug, Clone)]
enum CStmt {
    For { slot: u32, lo: CExpr, hi: CExpr, body: Vec<CStmt> },
    Let { slot: u32, value: CExpr },
    If { clauses: Vec<(CExpr, CmpOp, CExpr)>, body: Vec<CStmt> },
    FindBinary { slot: u32, lo: CExpr, hi: CExpr, key: CExpr, target: CExpr, body: Vec<CStmt> },
    UfWrite { uf: u32, idx: CExpr, value: CExpr },
    UfMin { uf: u32, idx: CExpr, value: CExpr },
    UfMax { uf: u32, idx: CExpr, value: CExpr },
    UfAlloc { uf: u32, size: CExpr, init: CExpr },
    DataAlloc { arr: u32, size: CExpr },
    ListInsert { list: u32, args: Vec<CExpr> },
    ListFinalize { list: u32 },
    ListToUf { list: u32, dim: usize, uf: u32 },
    SymSet { sym: u32, value: CExpr },
    DataAxpy { y: u32, y_idx: CExpr, a: u32, a_idx: CExpr, x: u32, x_idx: CExpr },
    Copy { dst: u32, dst_idx: CExpr, src: u32, src_idx: CExpr },
    Nop,
}

#[derive(Debug, Default)]
struct Interner {
    names: Vec<String>,
    map: HashMap<String, u32>,
}

impl Interner {
    fn intern(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.map.get(name) {
            return id;
        }
        let id = self.names.len() as u32;
        self.names.push(name.to_string());
        self.map.insert(name.to_string(), id);
        id
    }
}

/// A compiled inspector: resolved statements plus the name tables needed
/// to bind a [`RtEnv`] at execution time.
#[derive(Debug)]
pub struct Program {
    stmts: Vec<CStmt>,
    n_slots: usize,
    syms: Vec<String>,
    ufs: Vec<String>,
    data: Vec<String>,
    lists: Vec<String>,
}

impl Program {
    /// Names of the symbolic constants the program references.
    pub fn sym_names(&self) -> &[String] {
        &self.syms
    }

    /// Names of the index arrays the program references.
    pub fn uf_names(&self) -> &[String] {
        &self.ufs
    }

    /// Names of the data arrays the program references.
    pub fn data_names(&self) -> &[String] {
        &self.data
    }

    /// Names of the ordered lists the program references.
    pub fn list_names(&self) -> &[String] {
        &self.lists
    }
}

struct Compiler {
    syms: Interner,
    ufs: Interner,
    data: Interner,
    lists: Interner,
}

impl Compiler {
    /// Builds a binary node, folding `Const op Const` at compile time so the
    /// interpreter never revisits arithmetic on literals (`Div` folds only
    /// when the divisor is nonzero — a literal division by zero must still
    /// surface as a runtime [`ExecError::DivByZero`]).
    fn binary(
        a: CExpr,
        b: CExpr,
        fold: fn(i64, i64) -> Option<i64>,
        build: fn(Box<CExpr>, Box<CExpr>) -> CExpr,
    ) -> CExpr {
        if let (CExpr::Const(x), CExpr::Const(y)) = (&a, &b) {
            if let Some(v) = fold(*x, *y) {
                return CExpr::Const(v);
            }
        }
        build(Box::new(a), Box::new(b))
    }

    fn expr(&mut self, e: &Expr) -> CExpr {
        match e {
            Expr::Const(c) => CExpr::Const(*c),
            Expr::Var(_, slot) => CExpr::Reg(slot.0),
            Expr::Sym(s) => CExpr::Sym(self.syms.intern(s)),
            Expr::UfRead { uf, idx } => CExpr::UfRead {
                uf: self.ufs.intern(uf),
                idx: Box::new(self.expr(idx)),
            },
            Expr::ListRank { list, args } => CExpr::ListRank {
                list: self.lists.intern(list),
                args: args.iter().map(|a| self.expr(a)).collect(),
            },
            Expr::ListLen(l) => CExpr::ListLen(self.lists.intern(l)),
            Expr::Add(a, b) => Self::binary(
                self.expr(a),
                self.expr(b),
                |x, y| Some(x.wrapping_add(y)),
                CExpr::Add,
            ),
            Expr::Sub(a, b) => Self::binary(
                self.expr(a),
                self.expr(b),
                |x, y| Some(x.wrapping_sub(y)),
                CExpr::Sub,
            ),
            Expr::Mul(a, b) => Self::binary(
                self.expr(a),
                self.expr(b),
                |x, y| Some(x.wrapping_mul(y)),
                CExpr::Mul,
            ),
            Expr::Div(a, b) => Self::binary(
                self.expr(a),
                self.expr(b),
                |x, y| (y != 0).then(|| x.div_euclid(y)),
                CExpr::Div,
            ),
            Expr::Min(a, b) => Self::binary(
                self.expr(a),
                self.expr(b),
                |x, y| Some(x.min(y)),
                CExpr::Min,
            ),
            Expr::Max(a, b) => Self::binary(
                self.expr(a),
                self.expr(b),
                |x, y| Some(x.max(y)),
                CExpr::Max,
            ),
        }
    }

    fn stmt(&mut self, s: &Stmt) -> CStmt {
        match s {
            Stmt::For { slot, lo, hi, body, .. } => CStmt::For {
                slot: slot.0,
                lo: self.expr(lo),
                hi: self.expr(hi),
                body: body.iter().map(|x| self.stmt(x)).collect(),
            },
            Stmt::Let { slot, value, .. } => {
                CStmt::Let { slot: slot.0, value: self.expr(value) }
            }
            Stmt::If { cond, body } => CStmt::If {
                clauses: cond
                    .clauses
                    .iter()
                    .map(|(a, op, b)| (self.expr(a), *op, self.expr(b)))
                    .collect(),
                body: body.iter().map(|x| self.stmt(x)).collect(),
            },
            Stmt::FindBinary { slot, lo, hi, key, target, body, .. } => CStmt::FindBinary {
                slot: slot.0,
                lo: self.expr(lo),
                hi: self.expr(hi),
                key: self.expr(key),
                target: self.expr(target),
                body: body.iter().map(|x| self.stmt(x)).collect(),
            },
            Stmt::UfWrite { uf, idx, value } => CStmt::UfWrite {
                uf: self.ufs.intern(uf),
                idx: self.expr(idx),
                value: self.expr(value),
            },
            Stmt::UfMin { uf, idx, value } => CStmt::UfMin {
                uf: self.ufs.intern(uf),
                idx: self.expr(idx),
                value: self.expr(value),
            },
            Stmt::UfMax { uf, idx, value } => CStmt::UfMax {
                uf: self.ufs.intern(uf),
                idx: self.expr(idx),
                value: self.expr(value),
            },
            Stmt::UfAlloc { uf, size, init } => CStmt::UfAlloc {
                uf: self.ufs.intern(uf),
                size: self.expr(size),
                init: self.expr(init),
            },
            Stmt::DataAlloc { arr, size } => CStmt::DataAlloc {
                arr: self.data.intern(arr),
                size: self.expr(size),
            },
            Stmt::ListInsert { list, args } => CStmt::ListInsert {
                list: self.lists.intern(list),
                args: args.iter().map(|a| self.expr(a)).collect(),
            },
            Stmt::ListFinalize { list } => {
                CStmt::ListFinalize { list: self.lists.intern(list) }
            }
            Stmt::ListToUf { list, dim, uf } => CStmt::ListToUf {
                list: self.lists.intern(list),
                dim: *dim,
                uf: self.ufs.intern(uf),
            },
            Stmt::SymSet { sym, value } => CStmt::SymSet {
                sym: self.syms.intern(sym),
                value: self.expr(value),
            },
            Stmt::DataAxpy { y, y_idx, a, a_idx, x, x_idx } => CStmt::DataAxpy {
                y: self.data.intern(y),
                y_idx: self.expr(y_idx),
                a: self.data.intern(a),
                a_idx: self.expr(a_idx),
                x: self.data.intern(x),
                x_idx: self.expr(x_idx),
            },
            Stmt::Copy { dst, dst_idx, src, src_idx } => CStmt::Copy {
                dst: self.data.intern(dst),
                dst_idx: self.expr(dst_idx),
                src: self.data.intern(src),
                src_idx: self.expr(src_idx),
            },
            Stmt::Comment(_) => CStmt::Nop,
        }
    }
}

/// Compiles a statement list into an executable [`Program`].
pub fn compile(stmts: &[Stmt], slots: &SlotAlloc) -> Program {
    let mut c = Compiler {
        syms: Interner::default(),
        ufs: Interner::default(),
        data: Interner::default(),
        lists: Interner::default(),
    };
    let compiled = stmts.iter().map(|s| c.stmt(s)).collect();
    Program {
        stmts: compiled,
        n_slots: slots.len(),
        syms: c.syms.names,
        ufs: c.ufs.names,
        data: c.data.names,
        lists: c.lists.names,
    }
}

/// The interpreter state. `STATS` selects at monomorphization time whether
/// per-statement/per-iteration counters are maintained; the quiet variant
/// ([`execute_quiet`]) carries no counting overhead in its hot loops.
struct Machine<'p, 'a, const STATS: bool> {
    prog: &'p Program,
    regs: Vec<i64>,
    syms: Vec<Option<i64>>,
    ufs: Vec<Option<Cow<'a, [i64]>>>,
    data: Vec<Option<Cow<'a, [f64]>>>,
    lists: Vec<Option<OrderedList>>,
    stats: ExecStats,
    key_buf: Vec<i64>,
}

impl<'p, 'a, const STATS: bool> Machine<'p, 'a, STATS> {
    #[inline]
    fn eval(&mut self, e: &CExpr) -> Result<i64, ExecError> {
        Ok(match e {
            CExpr::Const(c) => *c,
            CExpr::Reg(r) => self.regs[*r as usize],
            CExpr::Sym(s) => self.syms[*s as usize]
                .ok_or_else(|| ExecError::UnboundSym(self.prog.syms[*s as usize].clone()))?,
            CExpr::UfRead { uf, idx } => {
                let i = self.eval(idx)?;
                let table = self.ufs[*uf as usize].as_ref().ok_or_else(|| {
                    ExecError::UnboundUf(self.prog.ufs[*uf as usize].clone())
                })?;
                if i < 0 || i as usize >= table.len() {
                    return Err(ExecError::OobUf {
                        name: self.prog.ufs[*uf as usize].clone(),
                        idx: i,
                        len: table.len(),
                    });
                }
                table[i as usize]
            }
            CExpr::ListRank { list, args } => {
                let mut key = std::mem::take(&mut self.key_buf);
                key.clear();
                for a in args {
                    key.push(self.eval(a)?);
                }
                let l = self.lists[*list as usize].as_ref().ok_or_else(|| {
                    ExecError::UnboundList(self.prog.lists[*list as usize].clone())
                })?;
                let r = l.rank(&key);
                self.key_buf = key;
                r?
            }
            CExpr::ListLen(list) => {
                let l = self.lists[*list as usize].as_ref().ok_or_else(|| {
                    ExecError::UnboundList(self.prog.lists[*list as usize].clone())
                })?;
                l.len() as i64
            }
            CExpr::Add(a, b) => self.eval(a)?.wrapping_add(self.eval(b)?),
            CExpr::Sub(a, b) => self.eval(a)?.wrapping_sub(self.eval(b)?),
            CExpr::Mul(a, b) => self.eval(a)?.wrapping_mul(self.eval(b)?),
            CExpr::Div(a, b) => {
                let d = self.eval(b)?;
                if d == 0 {
                    return Err(ExecError::DivByZero);
                }
                self.eval(a)?.div_euclid(d)
            }
            CExpr::Min(a, b) => self.eval(a)?.min(self.eval(b)?),
            CExpr::Max(a, b) => self.eval(a)?.max(self.eval(b)?),
        })
    }

    fn run_block(&mut self, block: &'p [CStmt]) -> Result<(), ExecError> {
        for s in block {
            self.run_stmt(s)?;
        }
        Ok(())
    }

    fn uf_slot_mut<'m>(
        ufs: &'m mut [Option<Cow<'a, [i64]>>],
        names: &[String],
        uf: u32,
        idx: i64,
    ) -> Result<&'m mut i64, ExecError> {
        let table = ufs[uf as usize]
            .as_mut()
            .ok_or_else(|| ExecError::UnboundUf(names[uf as usize].clone()))?;
        let len = table.len();
        if idx < 0 || idx as usize >= len {
            return Err(ExecError::OobUf { name: names[uf as usize].clone(), idx, len });
        }
        // Clone-on-first-write: arrays bound as `Cow::Borrowed` are copied
        // here exactly once; already-owned arrays mutate in place.
        Ok(&mut table.to_mut()[idx as usize])
    }

    fn run_stmt(&mut self, s: &'p CStmt) -> Result<(), ExecError> {
        if STATS {
            self.stats.statements += 1;
        }
        match s {
            CStmt::For { slot, lo, hi, body } => {
                let lo = self.eval(lo)?;
                let hi = self.eval(hi)?;
                let mut v = lo;
                while v < hi {
                    self.regs[*slot as usize] = v;
                    if STATS {
                        self.stats.loop_iterations += 1;
                    }
                    self.run_block(body)?;
                    v += 1;
                }
            }
            CStmt::Let { slot, value } => {
                self.regs[*slot as usize] = self.eval(value)?;
            }
            CStmt::If { clauses, body } => {
                let mut ok = true;
                for (a, op, b) in clauses {
                    let av = self.eval(a)?;
                    let bv = self.eval(b)?;
                    if !op.eval(av, bv) {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    self.run_block(body)?;
                }
            }
            CStmt::FindBinary { slot, lo, hi, key, target, body } => {
                let mut lo_v = self.eval(lo)?;
                let mut hi_v = self.eval(hi)?;
                // The bounds are loop-invariant per entry (the bisection
                // never writes state `lo`/`hi` could read), so the original
                // upper bound is hoisted instead of re-evaluated after the
                // search.
                let hi_orig = hi_v;
                let target_v = self.eval(target)?;
                // Leftmost position where key(pos) >= target, by bisection;
                // the key is monotone non-decreasing by construction.
                while lo_v < hi_v {
                    let mid = lo_v + (hi_v - lo_v) / 2;
                    self.regs[*slot as usize] = mid;
                    if STATS {
                        self.stats.loop_iterations += 1;
                    }
                    let kv = self.eval(key)?;
                    if kv < target_v {
                        lo_v = mid + 1;
                    } else {
                        hi_v = mid;
                    }
                }
                if lo_v < hi_orig {
                    self.regs[*slot as usize] = lo_v;
                    let kv = self.eval(key)?;
                    if kv == target_v {
                        self.run_block(body)?;
                    }
                }
            }
            CStmt::UfWrite { uf, idx, value } => {
                let i = self.eval(idx)?;
                let v = self.eval(value)?;
                *Self::uf_slot_mut(&mut self.ufs, &self.prog.ufs, *uf, i)? = v;
            }
            CStmt::UfMin { uf, idx, value } => {
                let i = self.eval(idx)?;
                let v = self.eval(value)?;
                let slot = Self::uf_slot_mut(&mut self.ufs, &self.prog.ufs, *uf, i)?;
                if v < *slot {
                    *slot = v;
                }
            }
            CStmt::UfMax { uf, idx, value } => {
                let i = self.eval(idx)?;
                let v = self.eval(value)?;
                let slot = Self::uf_slot_mut(&mut self.ufs, &self.prog.ufs, *uf, i)?;
                if v > *slot {
                    *slot = v;
                }
            }
            CStmt::UfAlloc { uf, size, init } => {
                let n = self.eval(size)?;
                if n < 0 {
                    return Err(ExecError::BadAlloc {
                        name: self.prog.ufs[*uf as usize].clone(),
                        size: n,
                    });
                }
                let init = self.eval(init)?;
                self.ufs[*uf as usize] = Some(Cow::Owned(vec![init; n as usize]));
            }
            CStmt::DataAlloc { arr, size } => {
                let n = self.eval(size)?;
                if n < 0 {
                    return Err(ExecError::BadAlloc {
                        name: self.prog.data[*arr as usize].clone(),
                        size: n,
                    });
                }
                self.data[*arr as usize] = Some(Cow::Owned(vec![0.0; n as usize]));
            }
            CStmt::ListInsert { list, args } => {
                let mut key = std::mem::take(&mut self.key_buf);
                key.clear();
                for a in args {
                    key.push(self.eval(a)?);
                }
                let l = self.lists[*list as usize].as_mut().ok_or_else(|| {
                    ExecError::UnboundList(self.prog.lists[*list as usize].clone())
                })?;
                let r = l.insert(&key);
                self.key_buf = key;
                r?;
            }
            CStmt::ListFinalize { list } => {
                let l = self.lists[*list as usize].as_mut().ok_or_else(|| {
                    ExecError::UnboundList(self.prog.lists[*list as usize].clone())
                })?;
                l.finalize();
            }
            CStmt::ListToUf { list, dim, uf } => {
                let l = self.lists[*list as usize].as_ref().ok_or_else(|| {
                    ExecError::UnboundList(self.prog.lists[*list as usize].clone())
                })?;
                let n = l.len();
                let mut out = Vec::with_capacity(n);
                for p in 0..n {
                    out.push(l.key_col(p, *dim)?);
                }
                self.ufs[*uf as usize] = Some(Cow::Owned(out));
            }
            CStmt::SymSet { sym, value } => {
                let v = self.eval(value)?;
                self.syms[*sym as usize] = Some(v);
            }
            CStmt::DataAxpy { y, y_idx, a, a_idx, x, x_idx } => {
                let yi = self.eval(y_idx)?;
                let ai = self.eval(a_idx)?;
                let xi = self.eval(x_idx)?;
                let read = |data: &[Option<Cow<'a, [f64]>>],
                            names: &[String],
                            arr: u32,
                            idx: i64|
                 -> Result<f64, ExecError> {
                    let v = data[arr as usize].as_ref().ok_or_else(|| {
                        ExecError::UnboundData(names[arr as usize].clone())
                    })?;
                    if idx < 0 || idx as usize >= v.len() {
                        return Err(ExecError::OobData {
                            name: names[arr as usize].clone(),
                            idx,
                            len: v.len(),
                        });
                    }
                    Ok(v[idx as usize])
                };
                let av = read(&self.data, &self.prog.data, *a, ai)?;
                let xv = read(&self.data, &self.prog.data, *x, xi)?;
                let y_arr = self.data[*y as usize].as_mut().ok_or_else(|| {
                    ExecError::UnboundData(self.prog.data[*y as usize].clone())
                })?;
                if yi < 0 || yi as usize >= y_arr.len() {
                    return Err(ExecError::OobData {
                        name: self.prog.data[*y as usize].clone(),
                        idx: yi,
                        len: y_arr.len(),
                    });
                }
                y_arr.to_mut()[yi as usize] += av * xv;
            }
            CStmt::Copy { dst, dst_idx, src, src_idx } => {
                let di = self.eval(dst_idx)?;
                let si = self.eval(src_idx)?;
                let sv = {
                    let s_arr = self.data[*src as usize].as_ref().ok_or_else(|| {
                        ExecError::UnboundData(self.prog.data[*src as usize].clone())
                    })?;
                    if si < 0 || si as usize >= s_arr.len() {
                        return Err(ExecError::OobData {
                            name: self.prog.data[*src as usize].clone(),
                            idx: si,
                            len: s_arr.len(),
                        });
                    }
                    s_arr[si as usize]
                };
                let d_arr = self.data[*dst as usize].as_mut().ok_or_else(|| {
                    ExecError::UnboundData(self.prog.data[*dst as usize].clone())
                })?;
                if di < 0 || di as usize >= d_arr.len() {
                    return Err(ExecError::OobData {
                        name: self.prog.data[*dst as usize].clone(),
                        idx: di,
                        len: d_arr.len(),
                    });
                }
                d_arr.to_mut()[di as usize] = sv;
            }
            CStmt::Nop => {}
        }
        Ok(())
    }
}

fn run_machine<'a, const STATS: bool>(
    prog: &Program,
    env: &mut RtEnv<'a>,
) -> Result<ExecStats, ExecError> {
    let mut m = Machine::<'_, 'a, STATS> {
        prog,
        regs: vec![0; prog.n_slots],
        syms: prog.syms.iter().map(|n| env.syms.get(n).copied()).collect(),
        ufs: prog.ufs.iter().map(|n| env.ufs.remove(n)).collect(),
        data: prog.data.iter().map(|n| env.data.remove(n)).collect(),
        lists: prog.lists.iter().map(|n| env.lists.remove(n)).collect(),
        stats: ExecStats::default(),
        key_buf: Vec::with_capacity(4),
    };
    let result = m.run_block(&prog.stmts);
    // Move state back regardless of success so callers can inspect it.
    for (name, val) in prog.syms.iter().zip(m.syms) {
        if let Some(v) = val {
            env.syms.insert(name.clone(), v);
        }
    }
    for (name, val) in prog.ufs.iter().zip(m.ufs) {
        if let Some(v) = val {
            env.ufs.insert(name.clone(), v);
        }
    }
    for (name, val) in prog.data.iter().zip(m.data) {
        if let Some(v) = val {
            env.data.insert(name.clone(), v);
        }
    }
    for (name, val) in prog.lists.iter().zip(m.lists) {
        if let Some(v) = val {
            env.lists.insert(name.clone(), v);
        }
    }
    result.map(|()| m.stats)
}

/// Executes a compiled program against an environment, counting statements
/// and loop iterations ([`ExecStats`]).
///
/// On success the environment reflects all writes: new index arrays,
/// data arrays, updated symbols, and finalized lists. On error the
/// environment still contains everything moved back (partial state), so
/// callers can inspect it.
///
/// # Errors
/// Returns an [`ExecError`] on unbound names, out-of-bounds accesses, bad
/// allocations, or ordered-list misuse.
pub fn execute(prog: &Program, env: &mut RtEnv<'_>) -> Result<ExecStats, ExecError> {
    run_machine::<true>(prog, env)
}

/// Executes a compiled program without maintaining [`ExecStats`] counters.
///
/// Identical semantics to [`execute`] — same writes, same errors, same
/// partial state on failure — but the per-statement and per-iteration
/// counter bumps are compiled out entirely, which is the right trade for
/// release benchmarks and the engine's hot path where the counts are
/// never read.
///
/// # Errors
/// Returns an [`ExecError`] on unbound names, out-of-bounds accesses, bad
/// allocations, or ordered-list misuse.
pub fn execute_quiet(prog: &Program, env: &mut RtEnv<'_>) -> Result<(), ExecError> {
    run_machine::<false>(prog, env).map(|_| ())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Cond, Slot};
    use crate::runtime::ListOrder;

    fn var(name: &str, s: Slot) -> Expr {
        Expr::Var(name.into(), s)
    }

    /// Histogram: for n in 0..NNZ { count[row[n]] += ... } via UfMax of
    /// positions — here a simple UfWrite exercise building `last[r] = n`.
    #[test]
    fn simple_loop_writes() {
        let mut slots = SlotAlloc::new();
        let n = slots.alloc("n");
        let stmts = vec![
            Stmt::UfAlloc { uf: "last".into(), size: Expr::Sym("NR".into()), init: Expr::Const(-1) },
            Stmt::For {
                var: "n".into(),
                slot: n,
                lo: Expr::Const(0),
                hi: Expr::Sym("NNZ".into()),
                body: vec![Stmt::UfWrite {
                    uf: "last".into(),
                    idx: Expr::uf_read("row", var("n", n)),
                    value: var("n", n),
                }],
            },
        ];
        let prog = compile(&stmts, &slots);
        let mut env = RtEnv::new()
            .with_sym("NNZ", 5)
            .with_sym("NR", 3)
            .with_uf("row", vec![0, 1, 1, 2, 0]);
        let stats = execute(&prog, &mut env).unwrap();
        assert_eq!(env.ufs["last"], vec![4, 2, 3]);
        assert_eq!(stats.loop_iterations, 5);
    }

    #[test]
    fn min_max_updates() {
        let mut slots = SlotAlloc::new();
        let n = slots.alloc("n");
        let stmts = vec![
            Stmt::UfAlloc { uf: "lo".into(), size: Expr::Const(1), init: Expr::Sym("BIG".into()) },
            Stmt::UfAlloc { uf: "hi".into(), size: Expr::Const(1), init: Expr::Const(0) },
            Stmt::For {
                var: "n".into(),
                slot: n,
                lo: Expr::Const(0),
                hi: Expr::Const(4),
                body: vec![
                    Stmt::UfMin {
                        uf: "lo".into(),
                        idx: Expr::Const(0),
                        value: Expr::uf_read("x", var("n", n)),
                    },
                    Stmt::UfMax {
                        uf: "hi".into(),
                        idx: Expr::Const(0),
                        value: Expr::uf_read("x", var("n", n)),
                    },
                ],
            },
        ];
        let prog = compile(&stmts, &slots);
        let mut env = RtEnv::new()
            .with_sym("BIG", i64::MAX)
            .with_uf("x", vec![7, 3, 9, 5]);
        execute(&prog, &mut env).unwrap();
        assert_eq!(env.ufs["lo"], vec![3]);
        assert_eq!(env.ufs["hi"], vec![9]);
    }

    #[test]
    fn guard_filters_iterations() {
        let mut slots = SlotAlloc::new();
        let i = slots.alloc("i");
        let stmts = vec![
            Stmt::UfAlloc { uf: "out".into(), size: Expr::Const(1), init: Expr::Const(0) },
            Stmt::For {
                var: "i".into(),
                slot: i,
                lo: Expr::Const(0),
                hi: Expr::Const(10),
                body: vec![Stmt::If {
                    cond: Cond::cmp(var("i", i), CmpOp::Ge, Expr::Const(7)),
                    body: vec![Stmt::UfMax {
                        uf: "out".into(),
                        idx: Expr::Const(0),
                        value: var("i", i),
                    }],
                }],
            },
        ];
        let prog = compile(&stmts, &slots);
        let mut env = RtEnv::new();
        execute(&prog, &mut env).unwrap();
        assert_eq!(env.ufs["out"], vec![9]);
    }

    #[test]
    fn list_insert_finalize_rank_roundtrip() {
        let mut slots = SlotAlloc::new();
        let n = slots.alloc("n");
        let stmts = vec![
            Stmt::For {
                var: "n".into(),
                slot: n,
                lo: Expr::Const(0),
                hi: Expr::Const(4),
                body: vec![Stmt::ListInsert {
                    list: "P".into(),
                    args: vec![
                        Expr::uf_read("row", var("n", n)),
                        Expr::uf_read("col", var("n", n)),
                    ],
                }],
            },
            Stmt::ListFinalize { list: "P".into() },
            Stmt::UfAlloc { uf: "perm".into(), size: Expr::Const(4), init: Expr::Const(-1) },
            Stmt::For {
                var: "n".into(),
                slot: n,
                lo: Expr::Const(0),
                hi: Expr::Const(4),
                body: vec![Stmt::UfWrite {
                    uf: "perm".into(),
                    idx: var("n", n),
                    value: Expr::ListRank {
                        list: "P".into(),
                        args: vec![
                            Expr::uf_read("row", var("n", n)),
                            Expr::uf_read("col", var("n", n)),
                        ],
                    },
                }],
            },
        ];
        let prog = compile(&stmts, &slots);
        // Column-major-ish input; lexicographic list sorts to row-major.
        let mut env = RtEnv::new()
            .with_uf("row", vec![1, 0, 1, 0])
            .with_uf("col", vec![0, 1, 1, 0])
            .with_list("P", OrderedList::new(2, ListOrder::Lexicographic, false));
        execute(&prog, &mut env).unwrap();
        // (1,0)->2 (0,1)->1 (1,1)->3 (0,0)->0
        assert_eq!(env.ufs["perm"], vec![2, 1, 3, 0]);
    }

    #[test]
    fn find_binary_locates_offsets() {
        let mut slots = SlotAlloc::new();
        let d = slots.alloc("d");
        // off = [-2, 0, 3]; find d with off[d] == 3, write it out.
        let stmts = vec![
            Stmt::UfAlloc { uf: "out".into(), size: Expr::Const(1), init: Expr::Const(-1) },
            Stmt::FindBinary {
                var: "d".into(),
                slot: d,
                lo: Expr::Const(0),
                hi: Expr::Const(3),
                key: Box::new(Expr::uf_read("off", var("d", d))),
                target: Box::new(Expr::Const(3)),
                body: vec![Stmt::UfWrite {
                    uf: "out".into(),
                    idx: Expr::Const(0),
                    value: var("d", d),
                }],
            },
        ];
        let prog = compile(&stmts, &slots);
        let mut env = RtEnv::new().with_uf("off", vec![-2, 0, 3]);
        execute(&prog, &mut env).unwrap();
        assert_eq!(env.ufs["out"], vec![2]);

        // Missing target leaves out untouched.
        let stmts_missing = vec![
            Stmt::UfAlloc { uf: "out".into(), size: Expr::Const(1), init: Expr::Const(-1) },
            Stmt::FindBinary {
                var: "d".into(),
                slot: d,
                lo: Expr::Const(0),
                hi: Expr::Const(3),
                key: Box::new(Expr::uf_read("off", var("d", d))),
                target: Box::new(Expr::Const(2)),
                body: vec![Stmt::UfWrite {
                    uf: "out".into(),
                    idx: Expr::Const(0),
                    value: var("d", d),
                }],
            },
        ];
        let prog2 = compile(&stmts_missing, &slots);
        let mut env2 = RtEnv::new().with_uf("off", vec![-2, 0, 3]);
        execute(&prog2, &mut env2).unwrap();
        assert_eq!(env2.ufs["out"], vec![-1]);
    }

    #[test]
    fn copy_moves_data() {
        let mut slots = SlotAlloc::new();
        let n = slots.alloc("n");
        let stmts = vec![
            Stmt::DataAlloc { arr: "B".into(), size: Expr::Const(3) },
            Stmt::For {
                var: "n".into(),
                slot: n,
                lo: Expr::Const(0),
                hi: Expr::Const(3),
                body: vec![Stmt::Copy {
                    dst: "B".into(),
                    dst_idx: Expr::sub(Expr::Const(2), var("n", n)),
                    src: "A".into(),
                    src_idx: var("n", n),
                }],
            },
        ];
        let prog = compile(&stmts, &slots);
        let mut env = RtEnv::new().with_data("A", vec![1.0, 2.0, 3.0]);
        execute(&prog, &mut env).unwrap();
        assert_eq!(env.data["B"], vec![3.0, 2.0, 1.0]);
    }

    #[test]
    fn sym_set_and_list_len() {
        let stmts = vec![
            Stmt::ListInsert { list: "L".into(), args: vec![Expr::Const(5)] },
            Stmt::ListInsert { list: "L".into(), args: vec![Expr::Const(5)] },
            Stmt::ListInsert { list: "L".into(), args: vec![Expr::Const(7)] },
            Stmt::ListFinalize { list: "L".into() },
            Stmt::SymSet { sym: "ND".into(), value: Expr::ListLen("L".into()) },
            Stmt::ListToUf { list: "L".into(), dim: 0, uf: "off".into() },
        ];
        let slots = SlotAlloc::new();
        let prog = compile(&stmts, &slots);
        let mut env =
            RtEnv::new().with_list("L", OrderedList::new(1, ListOrder::Lexicographic, true));
        execute(&prog, &mut env).unwrap();
        assert_eq!(env.syms["ND"], 2);
        assert_eq!(env.ufs["off"], vec![5, 7]);
    }

    #[test]
    fn errors_surface_with_names() {
        let stmts = vec![Stmt::UfWrite {
            uf: "ghost".into(),
            idx: Expr::Const(0),
            value: Expr::Const(1),
        }];
        let slots = SlotAlloc::new();
        let prog = compile(&stmts, &slots);
        let mut env = RtEnv::new();
        let err = execute(&prog, &mut env).unwrap_err();
        assert_eq!(err, ExecError::UnboundUf("ghost".into()));

        let stmts = vec![Stmt::UfWrite {
            uf: "a".into(),
            idx: Expr::Const(5),
            value: Expr::Const(1),
        }];
        let prog = compile(&stmts, &slots);
        let mut env = RtEnv::new().with_uf("a", vec![0, 0]);
        let err = execute(&prog, &mut env).unwrap_err();
        assert!(matches!(err, ExecError::OobUf { idx: 5, len: 2, .. }));
    }

    #[test]
    fn empty_loop_runs_zero_iterations() {
        let mut slots = SlotAlloc::new();
        let n = slots.alloc("n");
        let stmts = vec![
            Stmt::UfAlloc { uf: "out".into(), size: Expr::Const(1), init: Expr::Const(7) },
            Stmt::For {
                var: "n".into(),
                slot: n,
                lo: Expr::Const(5),
                hi: Expr::Const(5),
                body: vec![Stmt::UfWrite {
                    uf: "out".into(),
                    idx: Expr::Const(0),
                    value: Expr::Const(0),
                }],
            },
        ];
        let prog = compile(&stmts, &slots);
        let mut env = RtEnv::new();
        let stats = execute(&prog, &mut env).unwrap();
        assert_eq!(env.ufs["out"], vec![7]);
        assert_eq!(stats.loop_iterations, 0);
    }

    #[test]
    fn find_binary_boundary_elements() {
        let mut slots = SlotAlloc::new();
        let d = slots.alloc("d");
        for (target, expect) in [(-9i64, 0i64), (42, 4), (7, -1)] {
            let stmts = vec![
                Stmt::UfAlloc { uf: "hit".into(), size: Expr::Const(1), init: Expr::Const(-1) },
                Stmt::FindBinary {
                    var: "d".into(),
                    slot: d,
                    lo: Expr::Const(0),
                    hi: Expr::Const(5),
                    key: Box::new(Expr::uf_read("off", Expr::Var("d".into(), d))),
                    target: Box::new(Expr::Const(target)),
                    body: vec![Stmt::UfWrite {
                        uf: "hit".into(),
                        idx: Expr::Const(0),
                        value: Expr::Var("d".into(), d),
                    }],
                },
            ];
            let prog = compile(&stmts, &slots);
            let mut env = RtEnv::new().with_uf("off", vec![-9, -1, 3, 10, 42]);
            execute(&prog, &mut env).unwrap();
            assert_eq!(env.ufs["hit"], vec![expect], "target {target}");
        }
    }

    #[test]
    fn negative_index_read_is_oob() {
        let stmts = vec![Stmt::UfWrite {
            uf: "out".into(),
            idx: Expr::Const(0),
            value: Expr::uf_read("a", Expr::Const(-1)),
        }];
        let slots = SlotAlloc::new();
        let prog = compile(&stmts, &slots);
        let mut env = RtEnv::new().with_uf("a", vec![1]).with_uf("out", vec![0]);
        assert!(matches!(
            execute(&prog, &mut env),
            Err(ExecError::OobUf { idx: -1, .. })
        ));
    }

    #[test]
    fn env_restored_after_error() {
        let stmts = vec![
            Stmt::UfWrite { uf: "a".into(), idx: Expr::Const(0), value: Expr::Const(9) },
            Stmt::UfWrite { uf: "a".into(), idx: Expr::Const(99), value: Expr::Const(1) },
        ];
        let slots = SlotAlloc::new();
        let prog = compile(&stmts, &slots);
        let mut env = RtEnv::new().with_uf("a", vec![0]);
        assert!(execute(&prog, &mut env).is_err());
        // Partial state visible: first write landed.
        assert_eq!(env.ufs["a"], vec![9]);
    }
}
