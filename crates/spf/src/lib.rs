//! # spf-computation
//!
//! The SPF intermediate representation (SPF-IR) from *"An Object-Oriented
//! Interface to The Sparse Polyhedral Library"* (COMPSAC'21), as used by
//! *"Code Synthesis for Sparse Tensor Format Conversion and Optimization"*
//! (CGO 2023): computations made of statements with iteration spaces and
//! schedules, composable transformations (redundancy removal, dead-code
//! elimination, loop fusion, interchange), C code generation, and direct
//! in-process execution.
//!
//! ```
//! use spf_computation::{Computation, Kernel, Stmt};
//! use spf_computation::computation::ComparatorRegistry;
//! use spf_codegen::runtime::RtEnv;
//! use spf_ir::{parse_set, LinExpr, VarId};
//!
//! // for (n = 0; n < NNZ; n++) out[n] = 2 * n;
//! let mut space = parse_set("{ [n] : 0 <= n < NNZ }").unwrap();
//! space.simplify();
//! let mut comp = Computation::new();
//! comp.add_stmt(Stmt::new(
//!     "double",
//!     Kernel::UfWrite {
//!         uf: "out".into(),
//!         idx: LinExpr::var(VarId(0)),
//!         value: LinExpr::var(VarId(0)).scaled(2),
//!     },
//!     space,
//! ));
//! let compiled = comp.lower().unwrap();
//! let mut env = RtEnv::new().with_sym("NNZ", 4).with_uf("out", vec![0; 4]);
//! compiled.execute(&mut env, &ComparatorRegistry::new()).unwrap();
//! assert_eq!(env.ufs["out"], vec![0, 2, 4, 6]);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod computation;
pub mod graph;
pub mod stmt;
pub mod transform;

pub use computation::{Compiled, ComparatorRegistry, Computation, LowerError};
pub use stmt::{FindSpec, Kernel, ListOrderSpec, Stmt};
pub use graph::to_dot;
pub use transform::{
    dead_code_elimination, fuse_loops, interchange, optimize, remove_redundant, shift,
    skew,
};
